(* stoke — command-line driver for the STOKE-FP reproduction.

   Subcommands: list, show, optimize, refine, validate, verify, sweep,
   frontier, encode, disasm, lint, raytrace, diffusion. *)

open Cmdliner

let kernel_registry =
  Kernels.Libimf.all
  @ [ ("s3d_exp", Kernels.S3d.exp_spec) ]
  @ Kernels.Aek_kernels.all_specs

let find_kernel name =
  match List.assoc_opt name kernel_registry with
  | Some spec -> Ok spec
  | None ->
    Error
      (Printf.sprintf "unknown kernel %S (try: %s)" name
         (String.concat ", " (List.map fst kernel_registry)))

let kernel_arg =
  let doc = "Kernel name (see $(b,stoke list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let eta_arg =
  let doc = "Precision budget η in ULPs (e.g. 1e6)." in
  Arg.(value & opt float 0. & info [ "eta" ] ~docv:"ULPS" ~doc)

let proposals_arg =
  let doc = "Search proposal budget." in
  Arg.(value & opt int 200_000 & info [ "proposals" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let engine_arg =
  (* derived from [Exec.engine_names] so the CLI can never drift from the
     library's spellings *)
  let engines =
    List.map
      (fun n ->
        match Sandbox.Exec.engine_of_string n with
        | Ok e -> (n, e)
        | Error e -> failwith e)
      Sandbox.Exec.engine_names
  in
  let doc =
    "Execution engine: $(b,compiled) (default) translates each proposal once \
     into specialized closures and replays them per test case; \
     $(b,batched) translates once and steps every test case lane-wise \
     through each instruction (struct-of-arrays register files, one reset \
     per proposal, whole-proposal cutoff aborts); $(b,native) encodes each \
     proposal to real machine code and runs all lanes inside a guarded \
     worker process, falling back per-proposal to batched for instructions \
     hardware does not execute bit-identically (and entirely where \
     mmap-exec is denied); $(b,interp) steps the reference interpreter on \
     every run.  Results are bit-identical for a fixed seed; interp exists \
     as the oracle and for debugging."
  in
  Arg.(
    value
    & opt (enum engines) Sandbox.Exec.Compiled
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let rewrite_file_arg =
  let doc = "Assembly file holding a rewrite (defaults to the target)." in
  Arg.(value & opt (some file) None & info [ "rewrite" ] ~docv:"FILE" ~doc)

let read_program path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Parser.parse_program_exn s

let exit_err msg =
  Printf.eprintf "stoke: %s\n" msg;
  exit 1

(* ----- telemetry options (see docs/TELEMETRY.md) ----- *)

let trace_out_arg =
  let doc =
    "Write the JSONL telemetry stream (one event per line) to $(docv); with \
     --domains N, chain $(i,i) writes $(docv).chain$(i,i) instead."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Print a final metrics summary as one JSON object on stderr." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let progress_arg =
  let doc =
    "Print a progress line to stderr every $(docv) search proposals (during \
     validation: at every Geweke check and new maximum)."
  in
  Arg.(value & opt (some int) None & info [ "progress" ] ~docv:"N" ~doc)

let field ev key = List.assoc_opt key ev.Obs.Sink.fields
let field_int ev key = Option.bind (field ev key) Obs.Json.to_int_opt
let field_float ev key = Option.bind (field ev key) Obs.Json.to_float_opt
let iget ev key = Option.value ~default:0 (field_int ev key)
let fget ev key = Option.value ~default:0. (field_float ev key)

let progress_printer ev =
  match ev.Obs.Sink.name with
  | "progress" ->
    Printf.eprintf
      "progress: chain %d iter %d  best %.1f  current %.1f  accepted %d  %.0f evals/s\n%!"
      (iget ev "chain") (iget ev "iter") (fget ev "best_total")
      (fget ev "current_total") (iget ev "accepted") (fget ev "evals_per_s")
  | "geweke" ->
    Printf.eprintf "progress: iter %d  Geweke Z %.3f  (%d samples)\n%!"
      (iget ev "iter") (fget ev "z") (iget ev "n_samples")
  | "val_new_max" ->
    Printf.eprintf "progress: iter %d  new max error %.3e ULPs\n%!"
      (iget ev "iter") (fget ev "err_ulps")
  | _ -> ()

(* A sink combining --trace-out (JSONL file) and --progress (stderr). *)
let make_sink ~trace_out ~progress =
  let file =
    match trace_out with
    | None -> Obs.Sink.null
    | Some path -> (
      try Obs.Sink.to_file path
      with Sys_error e -> exit_err (Printf.sprintf "--trace-out: %s" e))
  in
  let printer =
    match progress with
    | None -> Obs.Sink.null
    | Some _ -> Obs.Sink.callback progress_printer
  in
  Obs.Sink.tee file printer

let sandbox_counters_json () =
  let c = Sandbox.Exec.Counters.snapshot () in
  Obs.Json.Obj
    [
      ("runs", Obs.Json.Int c.Sandbox.Exec.Counters.runs);
      ("instrs", Obs.Json.Int c.Sandbox.Exec.Counters.instrs);
      ("cycles", Obs.Json.Int c.Sandbox.Exec.Counters.cycles);
      ("faults", Obs.Json.Int c.Sandbox.Exec.Counters.faults);
    ]

let print_metrics fields = prerr_endline (Obs.Json.to_string (Obs.Json.Obj fields))

(* ----- list ----- *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, spec) ->
        let p = spec.Sandbox.Spec.program in
        Printf.printf "%-8s %3d LOC  %4d cycles  arity %d\n" name
          (Program.length p) (Latency.of_program p) (Sandbox.Spec.arity spec))
      kernel_registry
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark kernels")
    Term.(const run $ const ())

(* ----- show ----- *)

let show_cmd =
  let run name =
    match find_kernel name with
    | Error e -> exit_err e
    | Ok spec ->
      let p = spec.Sandbox.Spec.program in
      Printf.printf "# %s: %d LOC, %d cycles (static latency model)\n" name
        (Program.length p) (Latency.of_program p);
      print_endline (Program.to_string p)
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a kernel's target assembly")
    Term.(const run $ kernel_arg)

(* ----- optimize ----- *)

let optimize_cmd =
  let run name eta proposals seed domains no_prune no_static_screen engine out
      trace_out metrics progress deadline stop_when checkpoint checkpoint_every
      resume =
    match find_kernel name with
    | Error e -> exit_err e
    | Ok spec ->
      let stop_when =
        match Search.Control.stop_policy_of_string stop_when with
        | Some p -> p
        | None ->
          exit_err
            (Printf.sprintf
               "--stop-when: unknown policy %S (try exhaust, first-correct, \
                or cost-below:<float>)"
               stop_when)
      in
      let snapshot =
        Option.map
          (fun path ->
            match Search.Snapshot.read ~path with
            | Ok s -> s
            | Error e -> exit_err (Printf.sprintf "--resume: %s" e))
          resume
      in
      (* --resume restores the snapshot's domain count unless --domains
         explicitly overrides it (which the fingerprint check will then
         reject loudly — the chain layout is part of the trajectory). *)
      let domains =
        match domains, snapshot with
        | Some d, _ -> d
        | None, Some s -> s.Search.Snapshot.domains
        | None, None -> 1
      in
      let config =
        {
          Search.Optimizer.default_config with
          Search.Optimizer.proposals;
          seed = Int64.of_int seed;
          prune = not no_prune;
          static_screen = not no_static_screen;
          engine;
          stop_when;
          deadline_s = deadline;
        }
      in
      if metrics then Sandbox.Exec.Counters.enable ();
      let t0 = Obs.Clock.now_ns () in
      let orchestrated =
        domains > 1 || Option.is_some checkpoint || Option.is_some snapshot
      in
      let result =
        if not orchestrated then begin
          let sink = make_sink ~trace_out ~progress in
          Fun.protect
            ~finally:(fun () -> Obs.Sink.close sink)
            (fun () ->
              Stoke.optimize ~config ~obs:sink ?progress_every:progress
                ~eta:(Ulp.of_float eta) spec)
        end
        else begin
          let tests = Stoke.make_tests ~seed:(Int64.of_int (seed + 100)) spec in
          (* one sink per chain, created inside its domain; the stderr
             progress printer is shared (it only writes a line) *)
          let obs ~chain =
            make_sink
              ~trace_out:
                (Option.map
                   (fun path -> Printf.sprintf "%s.chain%d" path chain)
                   trace_out)
              ~progress
          in
          let orch_obs = make_sink ~trace_out ~progress in
          Fun.protect
            ~finally:(fun () -> Obs.Sink.close orch_obs)
            (fun () ->
              try
                Search.Parallel.run ~domains ~obs ~orch_obs
                  ?progress_every:progress
                  ?checkpoint:
                    (Option.map (fun p -> (p, checkpoint_every)) checkpoint)
                  ?resume:snapshot ~spec
                  ~params:(Search.Cost.default_params ~eta:(Ulp.of_float eta))
                  ~tests ~config ()
              with Invalid_argument msg -> exit_err msg)
        end
      in
      if metrics then
        print_metrics
          [
            ("command", Obs.Json.String "optimize");
            ("kernel", Obs.Json.String name);
            ("domains", Obs.Json.Int (Stdlib.max 1 domains));
            ( "stop_reason",
              Obs.Json.String
                (Search.Control.stop_reason_to_string
                   result.Search.Optimizer.stop_reason) );
            ( "failed_chains",
              Obs.Json.Int result.Search.Optimizer.failed_chains );
            ("proposals_made", Obs.Json.Int result.Search.Optimizer.proposals_made);
            ("accepted", Obs.Json.Int result.Search.Optimizer.accepted);
            ("evaluations", Obs.Json.Int result.Search.Optimizer.evaluations);
            ( "tests_executed",
              Obs.Json.Int result.Search.Optimizer.tests_executed );
            ("pruned_evals", Obs.Json.Int result.Search.Optimizer.pruned_evals);
            ("cache_hits", Obs.Json.Int result.Search.Optimizer.cache_hits);
            ( "engine",
              Obs.Json.String (Sandbox.Exec.engine_to_string engine) );
            ( "compile_count",
              Obs.Json.Int result.Search.Optimizer.compile_count );
            ( "compiled_runs",
              Obs.Json.Int result.Search.Optimizer.compiled_runs );
            ( "batched_runs",
              Obs.Json.Int result.Search.Optimizer.batched_runs );
            ( "batch_prunes",
              Obs.Json.Int result.Search.Optimizer.batch_prunes );
            ( "native_runs",
              Obs.Json.Int result.Search.Optimizer.native_runs );
            ( "encode_count",
              Obs.Json.Int result.Search.Optimizer.encode_count );
            ( "encoder_fallbacks",
              Obs.Json.Int result.Search.Optimizer.encoder_fallbacks );
            ( "worker_respawns",
              Obs.Json.Int result.Search.Optimizer.worker_respawns );
            ( "static_rejects",
              Obs.Json.Int result.Search.Optimizer.static_rejects );
            ("elapsed_s", Obs.Json.Float (Obs.Clock.elapsed_s ~since:t0));
            ("moves", Search.Optimizer.moves_json result.Search.Optimizer.moves);
            ("sandbox", sandbox_counters_json ());
          ];
      let target = spec.Sandbox.Spec.program in
      (match result.Search.Optimizer.best_correct with
       | None -> print_endline "no η-correct rewrite found"
       | Some p ->
         Printf.printf
           "# target %d LOC / %d cycles -> rewrite %d LOC / %d cycles (%.2fx)\n"
           (Program.length target) (Latency.of_program target)
           (Program.length p) (Latency.of_program p)
           (float_of_int (Latency.of_program target)
           /. float_of_int (max 1 (Latency.of_program p)));
         let text = Program.to_string p in
         (match out with
          | None -> print_endline text
          | Some path ->
            let oc = open_out path in
            output_string oc (text ^ "\n");
            close_out oc;
            Printf.printf "# written to %s\n" path))
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Run N independent parallel search chains (OCaml domains).  \
             Defaults to 1, or to the snapshot's domain count with \
             $(b,--resume).")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget for the whole search.  Chains notice the \
             deadline at their next control poll and exit with their \
             partial-but-valid best; combine with --checkpoint to resume \
             later.")
  in
  let stop_when_arg =
    Arg.(
      value & opt string "exhaust"
      & info [ "stop-when" ] ~docv:"POLICY"
          ~doc:
            "Cooperative early-stop policy: $(b,exhaust) (run the full \
             budget), $(b,first-correct) (stop all chains once any chain \
             finds an η-correct rewrite faster than the target), or \
             $(b,cost-below:C) (stop once any chain's best total cost \
             drops below C).")
  in
  let checkpoint_arg =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a resumable search snapshot to $(docv) (atomically) \
             every --checkpoint-every seconds and when the run ends.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt float 60.
      & info [ "checkpoint-every" ] ~docv:"SECS"
          ~doc:"Snapshot cadence for --checkpoint (default 60).")
  in
  let resume_arg =
    Arg.(
      value & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Continue a previous run from a --checkpoint snapshot.  The \
             kernel, seed, proposal budget, and search options must match \
             the original run (checked by fingerprint); stopping options \
             (--deadline, --stop-when, checkpoint cadence) may change.")
  in
  let no_prune_arg =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable early-termination cost evaluation and the proposal cost \
             cache: run every test case to completion on every proposal.  \
             The winning rewrite is bit-identical either way for a fixed \
             seed; this escape hatch exists to measure the saving (compare \
             the tests_executed counter with --metrics) and to rule pruning \
             out when debugging.")
  in
  let no_static_screen_arg =
    Arg.(
      value & flag
      & info [ "no-static-screen" ]
          ~doc:
            "Disable the static undef-read screen: evaluate every proposal \
             on test cases even when dataflow analysis proves it reads a \
             location nothing defined.  Screened and unscreened searches \
             follow different random streams (the screen skips the \
             acceptance draw for rejected proposals), so fixed-seed winners \
             differ; both still find η-correct rewrites.  Compare the \
             static_rejects counter with --metrics.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Search for a faster η-correct rewrite")
    Term.(
      const run $ kernel_arg $ eta_arg $ proposals_arg $ seed_arg $ domains_arg
      $ no_prune_arg $ no_static_screen_arg $ engine_arg $ out_arg
      $ trace_out_arg $ metrics_arg $ progress_arg $ deadline_arg
      $ stop_when_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg)

(* ----- refine ----- *)

let refine_cmd =
  let run name eta proposals seed engine trace_out progress =
    match find_kernel name with
    | Error e -> exit_err e
    | Ok spec ->
      let config =
        {
          Search.Optimizer.default_config with
          Search.Optimizer.proposals;
          seed = Int64.of_int seed;
          engine;
        }
      in
      let sink = make_sink ~trace_out ~progress in
      let r =
        Fun.protect
          ~finally:(fun () -> Obs.Sink.close sink)
          (fun () ->
            Stoke.optimize_refined ~config ~obs:sink ~seed:(Int64.of_int seed)
              ~eta:(Ulp.of_float eta) spec)
      in
      Printf.printf "rounds: %d, counterexamples fed back: %d\n" r.Stoke.rounds
        r.Stoke.counterexamples;
      (match r.Stoke.rewrite with
       | None -> print_endline "no validated rewrite survived refinement"
       | Some p ->
         Printf.printf "# validated rewrite: %d LOC / %d cycles (target %d/%d)\n"
           (Program.length p) (Latency.of_program p)
           (Program.length spec.Sandbox.Spec.program)
           (Latency.of_program spec.Sandbox.Spec.program);
         print_endline (Program.to_string p));
      match r.Stoke.verdict with
      | None -> ()
      | Some v ->
        Printf.printf "# validation: max error %s ULPs, mixed %b\n"
          (Ulp.to_string v.Validate.Driver.max_err)
          v.Validate.Driver.mixed
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Counterexample-refined optimization: search, validate, feed failures \
          back into the test set, repeat")
    Term.(
      const run $ kernel_arg $ eta_arg $ proposals_arg $ seed_arg $ engine_arg
      $ trace_out_arg $ progress_arg)

(* ----- validate ----- *)

let validate_cmd =
  let run name eta rewrite_file proposals min_samples chains engine trace_out
      progress =
    match find_kernel name with
    | Error e -> exit_err e
    | Ok spec ->
      let rewrite =
        match rewrite_file with
        | None -> spec.Sandbox.Spec.program
        | Some path -> read_program path
      in
      let sink = make_sink ~trace_out ~progress in
      Fun.protect ~finally:(fun () -> Obs.Sink.close sink) @@ fun () ->
      if chains <= 1 then begin
        let config =
          {
            Validate.Driver.default_config with
            Validate.Driver.max_proposals = proposals;
            min_samples;
          }
        in
        let v =
          Stoke.validate ~config ~obs:sink ~engine ~eta:(Ulp.of_float eta)
            spec rewrite
        in
        Printf.printf
          "max observed error: %s ULPs (at input %s)\nmixed: %b (Geweke Z = %.3f after %d iterations)\nvalidated within η: %b\n"
          (Ulp.to_string v.Validate.Driver.max_err)
          (String.concat ", "
             (Array.to_list
                (Array.map (Printf.sprintf "%g") v.Validate.Driver.max_err_input)))
          v.Validate.Driver.mixed v.Validate.Driver.geweke_z
          v.Validate.Driver.iterations v.Validate.Driver.validated
      end
      else begin
        let config =
          {
            Validate.Multi_chain.default_config with
            Validate.Multi_chain.chains;
            proposals_per_chain = proposals / chains;
          }
        in
        let errfn = Validate.Errfn.create ~engine spec ~rewrite in
        let v =
          Validate.Multi_chain.run ~obs:sink ~config ~eta:(Ulp.of_float eta)
            errfn
        in
        Printf.printf
          "max observed error: %s ULPs across %d chains (per-chain: %s)\nmixed: %b (Gelman-Rubin R-hat = %.4f)\nvalidated within η: %b\n"
          (Ulp.to_string v.Validate.Multi_chain.max_err)
          chains
          (String.concat ", "
             (Array.to_list (Array.map Ulp.to_string v.Validate.Multi_chain.per_chain_max)))
          v.Validate.Multi_chain.mixed v.Validate.Multi_chain.r_hat
          v.Validate.Multi_chain.validated
      end
  in
  let chains_arg =
    Arg.(
      value & opt int 1
      & info [ "chains" ] ~docv:"N"
          ~doc:
            "Run N independent validation chains and judge mixing with the \
             Gelman-Rubin R-hat instead of the single-chain Geweke test.")
  in
  let min_samples_arg =
    Arg.(
      value & opt int Validate.Driver.default_config.Validate.Driver.min_samples
      & info [ "min-samples" ] ~docv:"N"
          ~doc:
            "Minimum number of error samples before any mixing check (Geweke) \
             may run; a budget that ends below the floor reports mixed=false \
             rather than judging an undersized chain.  Single-chain mode only.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"MCMC-validate a rewrite's maximum ULP error against the target")
    Term.(
      const run $ kernel_arg $ eta_arg $ rewrite_file_arg $ proposals_arg
      $ min_samples_arg $ chains_arg $ engine_arg $ trace_out_arg
      $ progress_arg)

(* ----- verify ----- *)

(* The rewrites the repo ships next to their specs — what `verify --all`
   checks each kernel against (kernels without one verify against
   themselves, exercising the bit-wise tier). *)
let shipped_rewrites =
  [
    ("sin", ("sin_assoc", Kernels.Libimf.sin_assoc_rewrite));
    ("scale", ("scale_rewrite", Kernels.Aek_kernels.scale_rewrite));
    ("dot", ("dot_rewrite", Kernels.Aek_kernels.dot_rewrite));
    ("add", ("add_rewrite", Kernels.Aek_kernels.add_rewrite));
    ("delta", ("delta_rewrite", Kernels.Aek_kernels.delta_rewrite));
  ]

type verify_row = {
  vr_kernel : string;
  vr_rewrite : string;
  vr_bitwise : string;  (* yes / no / abort *)
  vr_tier : string;  (* bitwise / taylor / interval / - *)
  vr_sound : float option;
  vr_observed : float option;
  vr_outcome : Verify.Verifier.outcome;
}

let tier_of_outcome = function
  | Verify.Verifier.Proved_bitwise -> "bitwise"
  | Verify.Verifier.Taylor_bound _ -> "taylor"
  | Verify.Verifier.Static_bound _ -> "interval"
  | Verify.Verifier.Refuted_bitwise | Verify.Verifier.Not_verifiable _ -> "-"

let tier_rank = function
  | "bitwise" -> 3
  | "taylor" -> 2
  | "interval" -> 1
  | _ -> 0

(* Largest absolute output difference between target and rewrite on one
   input vector (infinite when either program faults). *)
let abs_error_at spec rewrite xs =
  let tc = Sandbox.Spec.testcase_of_floats spec xs in
  let run p =
    let m, r =
      Sandbox.Exec.run_testcase ~mem_size:spec.Sandbox.Spec.mem_size p tc
    in
    match r.Sandbox.Exec.outcome with
    | Sandbox.Exec.Finished -> Some (Sandbox.Spec.read_outputs spec m)
    | Sandbox.Exec.Faulted _ -> None
  in
  match (run spec.Sandbox.Spec.program, run rewrite) with
  | Some vt, Some vr ->
    let worst = ref 0. in
    Array.iter2
      (fun a b ->
        match (a, b) with
        | Sandbox.Spec.Vf64 x, Sandbox.Spec.Vf64 y
        | Sandbox.Spec.Vf32 x, Sandbox.Spec.Vf32 y ->
          worst := Float.max !worst (Float.abs (x -. y))
        | _ -> worst := Float.infinity)
      vt vr;
    !worst
  | _ -> Float.infinity

(* The analysis divides absolute error by the ULP size at the target's
   output magnitude; the observed column must use the same unit or the
   two are incomparable (bit-distance ULPs explode near zeros). *)
let scaled_ulp_unit spec outcome =
  let range =
    match outcome with
    | Verify.Verifier.Taylor_bound a -> Some a.Verify.Taylor.target_range
    | Verify.Verifier.Static_bound a -> Some a.Verify.Interval.target_range
    | _ -> None
  in
  match range with
  | None -> None
  | Some r ->
    let n_out = List.length spec.Sandbox.Spec.outputs in
    let single =
      List.exists (Verify.Interval.single_output spec)
        (List.init n_out (fun i -> i))
    in
    Some (Verify.Interval.ulp_size_at (Verify.Interval.mag r) ~single)

let verify_one ~taylor ~eta ~observed ~engine ~kname spec rewrite_label rewrite
    =
  let bitwise =
    match Verify.Symbolic.equivalent spec ~rewrite with
    | Ok true -> "yes"
    | Ok false -> "no"
    | Error _ -> "abort"
  in
  let outcome = Stoke.verify ~taylor ~eta spec rewrite in
  let observed_ulps =
    if not observed then None
    else if Program.equal rewrite spec.Sandbox.Spec.program then Some 0.
    else begin
      let config =
        {
          Validate.Driver.default_config with
          Validate.Driver.max_proposals = 50_000;
          min_samples = 10_000;
          check_every = 10_000;
        }
      in
      (* the MCMC hunt finds the adversarial input; the error is then
         re-measured in the analysis's scaled-ULP currency *)
      let v = Stoke.validate ~config ~engine ~eta spec rewrite in
      match scaled_ulp_unit spec outcome with
      | None -> Some (Ulp.to_float v.Validate.Driver.max_err)
      | Some unit_size ->
        let worst = ref (abs_error_at spec rewrite v.Validate.Driver.max_err_input) in
        let g = Rng.Xoshiro256.create 1L in
        for _ = 1 to 2_000 do
          let xs = Sandbox.Spec.random_floats g spec in
          worst := Float.max !worst (abs_error_at spec rewrite xs)
        done;
        Some (!worst /. unit_size)
    end
  in
  {
    vr_kernel = kname;
    vr_rewrite = rewrite_label;
    vr_bitwise = bitwise;
    vr_tier = tier_of_outcome outcome;
    vr_sound = Verify.Verifier.sound_ulps outcome;
    vr_observed = observed_ulps;
    vr_outcome = outcome;
  }

let verify_row_json r =
  Obs.Json.Obj
    [
      ("kernel", Obs.Json.String r.vr_kernel);
      ("rewrite", Obs.Json.String r.vr_rewrite);
      ("bitwise", Obs.Json.String r.vr_bitwise);
      ("tier", Obs.Json.String r.vr_tier);
      ( "sound_ulps",
        match r.vr_sound with
        | None -> Obs.Json.Null
        | Some s -> Obs.Json.Float s );
      ( "observed_ulps",
        match r.vr_observed with
        | None -> Obs.Json.Null
        | Some o -> Obs.Json.Float o );
    ]

let print_verify_table rows =
  Printf.printf "%-10s %-16s %-7s %-9s %13s %13s\n" "kernel" "rewrite"
    "bitwise" "tier" "sound-ulps" "observed-ulps";
  List.iter
    (fun r ->
      Printf.printf "%-10s %-16s %-7s %-9s %13s %13s\n" r.vr_kernel
        r.vr_rewrite r.vr_bitwise r.vr_tier
        (match r.vr_sound with
         | None -> "-"
         | Some s -> Printf.sprintf "%.3g" s)
        (match r.vr_observed with
         | None -> "-"
         | Some o -> Printf.sprintf "%.3g" o))
    rows

(* Baseline regression check: every baseline row must still verify at no
   weaker a tier and no looser a sound bound (1% slack for float noise;
   run with --bb-timeout 0 so branch-and-bound effort is deterministic). *)
let check_against_baseline rows path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let json =
    match Obs.Json.of_string text with
    | Ok j -> j
    | Error e -> exit_err (Printf.sprintf "%s: %s" path e)
  in
  let baseline_rows =
    match Obs.Json.member "rows" json with
    | Some (Obs.Json.List l) -> l
    | _ -> exit_err (Printf.sprintf "%s: missing \"rows\" list" path)
  in
  let str key j =
    match Obs.Json.member key j with
    | Some (Obs.Json.String s) -> s
    | _ -> exit_err (Printf.sprintf "%s: row missing %S" path key)
  in
  let regressions = ref [] in
  let flag fmt = Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt in
  List.iter
    (fun b ->
      let kernel = str "kernel" b and rewrite = str "rewrite" b in
      let id = Printf.sprintf "%s/%s" kernel rewrite in
      match
        List.find_opt
          (fun r -> r.vr_kernel = kernel && r.vr_rewrite = rewrite)
          rows
      with
      | None -> flag "%s: pair missing from this run" id
      | Some r ->
        let b_tier = str "tier" b in
        if tier_rank r.vr_tier < tier_rank b_tier then
          flag "%s: tier weakened %s -> %s" id b_tier r.vr_tier;
        (match Option.bind (Obs.Json.member "sound_ulps" b) Obs.Json.to_float_opt,
               r.vr_sound with
         | Some b_sound, Some sound ->
           if sound > (b_sound *. 1.01) +. 1e-9 then
             flag "%s: sound bound loosened %.6g -> %.6g ULPs" id b_sound sound
         | Some b_sound, None ->
           flag "%s: sound bound %.6g ULPs lost" id b_sound
         | None, _ -> ()))
    baseline_rows;
  match !regressions with
  | [] ->
    Printf.printf "baseline %s: ok (%d pairs)\n" path (List.length baseline_rows)
  | rs ->
    Printf.eprintf "stoke verify: %d regression(s) past %s:\n" (List.length rs)
      path;
    List.iter (fun r -> Printf.eprintf "  %s\n" r) (List.rev rs);
    exit 1

let verify_cmd =
  let run all name eta rewrite_file bb_depth bb_boxes bb_timeout fpcore json
      observed check_baseline write_baseline engine =
    let taylor =
      {
        Verify.Bbound.max_depth = bb_depth;
        max_boxes = bb_boxes;
        timeout_s = bb_timeout;
      }
    in
    let eta = Ulp.of_float eta in
    let rows =
      if all then begin
        if fpcore then exit_err "--fpcore needs a single kernel, not --all";
        if Option.is_some rewrite_file then
          exit_err "--rewrite needs a single kernel, not --all";
        List.map
          (fun (kname, spec) ->
            let label, rewrite =
              match List.assoc_opt kname shipped_rewrites with
              | Some (label, p) -> (label, p)
              | None -> ("self", spec.Sandbox.Spec.program)
            in
            verify_one ~taylor ~eta ~observed ~engine ~kname spec label
              rewrite)
          kernel_registry
      end
      else begin
        let name =
          match name with
          | Some n -> n
          | None -> exit_err "KERNEL required (or use --all)"
        in
        match find_kernel name with
        | Error e -> exit_err e
        | Ok spec ->
          let label, rewrite =
            match rewrite_file with
            | Some path -> (Filename.basename path, read_program path)
            | None -> (
              match List.assoc_opt name shipped_rewrites with
              | Some (label, p) -> (label, p)
              | None -> ("self", spec.Sandbox.Spec.program))
          in
          if fpcore then begin
            match Verify.Fpcore.difference spec ~rewrite with
            | Ok text ->
              print_endline text;
              exit 0
            | Error e -> exit_err (Printf.sprintf "--fpcore: %s" e)
          end;
          [ verify_one ~taylor ~eta ~observed ~engine ~kname:name spec label
              rewrite ]
      end
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("command", Obs.Json.String "verify");
                ("rows", Obs.Json.List (List.map verify_row_json rows));
              ]))
    else begin
      print_verify_table rows;
      if not all then
        List.iter
          (fun r ->
            Printf.printf "%s\n" (Verify.Verifier.outcome_to_string r.vr_outcome))
          rows
    end;
    (match write_baseline with
     | None -> ()
     | Some path ->
       let oc = open_out path in
       output_string oc
         (Obs.Json.to_string
            (Obs.Json.Obj
               [ ("rows", Obs.Json.List (List.map verify_row_json rows)) ])
         ^ "\n");
       close_out oc;
       Printf.printf "baseline written to %s\n" path);
    match check_baseline with
    | None -> ()
    | Some path -> check_against_baseline rows path
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Verify every built-in kernel against its shipped rewrite (or \
             itself when none ships) and print the per-kernel table.")
  in
  let kernel_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"KERNEL")
  in
  let bb_depth_arg =
    Arg.(
      value
      & opt int Verify.Bbound.default_config.Verify.Bbound.max_depth
      & info [ "bb-depth" ] ~docv:"N"
          ~doc:
            "Branch-and-bound subdivision depth for the Taylor tier.  \
             Deeper never loosens the bound (with --bb-timeout 0).")
  in
  let bb_boxes_arg =
    Arg.(
      value
      & opt int Verify.Bbound.default_config.Verify.Bbound.max_boxes
      & info [ "bb-boxes" ] ~docv:"N"
          ~doc:"Branch-and-bound box-evaluation budget for the Taylor tier.")
  in
  let bb_timeout_arg =
    Arg.(
      value
      & opt float Verify.Bbound.default_config.Verify.Bbound.timeout_s
      & info [ "bb-timeout" ] ~docv:"SECS"
          ~doc:
            "CPU-time cutoff per analysis for the Taylor tier; 0 disables \
             it, making the reported bound deterministic (required for \
             baseline comparisons).")
  in
  let fpcore_flag =
    Arg.(
      value & flag
      & info [ "fpcore" ]
          ~doc:
            "Print the verification obligation (target − rewrite) as \
             FPCore and exit — the interchange format of external \
             round-off analyzers (FPTaylor, Daisy, Herbie).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the result table as one JSON object.")
  in
  let observed_flag =
    Arg.(
      value & flag
      & info [ "observed" ]
          ~doc:
            "Also hunt for the largest observed error with a short MCMC \
             validation run and report it next to the sound bound.")
  in
  let check_baseline_arg =
    Arg.(
      value & opt (some file) None
      & info [ "check-baseline" ] ~docv:"FILE"
          ~doc:
            "Compare against a baseline written by --write-baseline; exit \
             nonzero if any pair verifies at a weaker tier or a looser \
             sound bound.  Use with --bb-timeout 0.")
  in
  let write_baseline_arg =
    Arg.(
      value & opt (some string) None
      & info [ "write-baseline" ] ~docv:"FILE"
          ~doc:"Write this run's table as a baseline for --check-baseline.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Static verification: symbolic bit-wise equivalence, sound \
          Taylor-form round-off bounds with branch-and-bound, interval \
          analysis (see docs/VERIFY.md)")
    Term.(
      const run $ all_flag $ kernel_opt_arg $ eta_arg $ rewrite_file_arg
      $ bb_depth_arg $ bb_boxes_arg $ bb_timeout_arg $ fpcore_flag $ json_flag
      $ observed_flag $ check_baseline_arg $ write_baseline_arg $ engine_arg)

(* ----- sweep ----- *)

let sweep_cmd =
  let run name proposals seed validate_results engine trace_out progress =
    match find_kernel name with
    | Error e -> exit_err e
    | Ok spec ->
      let config =
        {
          Search.Optimizer.default_config with
          Search.Optimizer.proposals;
          seed = Int64.of_int seed;
          engine;
        }
      in
      let sink = make_sink ~trace_out ~progress in
      let points =
        Fun.protect
          ~finally:(fun () -> Obs.Sink.close sink)
          (fun () ->
            Stoke.precision_sweep ~config ~validate_results ~obs:sink
              ~seed:(Int64.of_int seed) spec)
      in
      Printf.printf "%-12s %6s %8s %8s %s\n" "eta" "LOC" "cycles" "speedup"
        "validated-err";
      List.iter
        (fun (p : Stoke.sweep_point) ->
          Printf.printf "%-12s %6d %8d %8.2f %s\n"
            (Ulp.to_string p.Stoke.eta)
            p.Stoke.loc p.Stoke.latency p.Stoke.speedup
            (match p.Stoke.validated_err with
             | None -> "-"
             | Some e -> Ulp.to_string e))
        points
  in
  let validate_flag =
    Arg.(value & flag & info [ "validate" ] ~doc:"Also validate each point.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Precision sweep over the η grid (Figure 4/5)")
    Term.(
      const run $ kernel_arg $ proposals_arg $ seed_arg $ validate_flag
      $ engine_arg $ trace_out_arg $ progress_arg)

(* ----- frontier ----- *)

let frontier_cmd =
  let run name etas proposals seed cold warm_frac max_demotions sweep_back
      sound_promote no_validate checkpoint resume engine trace_out progress =
    match find_kernel name with
    | Error e -> exit_err e
    | Ok spec ->
      let etas =
        match etas with
        | None -> None
        | Some s ->
          let parse tok =
            match float_of_string_opt (String.trim tok) with
            | Some f when f >= 0. -> Ulp.of_float f
            | _ -> exit_err (Printf.sprintf "--etas: bad value %S" tok)
          in
          Some (List.map parse (String.split_on_char ',' s))
      in
      let config =
        {
          Search.Optimizer.default_config with
          Search.Optimizer.proposals;
          seed = Int64.of_int seed;
          engine;
        }
      in
      let resume =
        match resume with
        | None -> None
        | Some path -> (
          match Search.Frontier.read_snapshot ~spec ~path with
          | Ok s -> Some s
          | Error e -> exit_err (Printf.sprintf "--resume: %s" e))
      in
      let sink = make_sink ~trace_out ~progress in
      let r =
        Fun.protect
          ~finally:(fun () -> Obs.Sink.close sink)
          (fun () ->
            try
              Stoke.frontier ~config ~validate_results:(not no_validate)
                ?etas ~warm:(not cold) ~warm_frac ~max_demotions ~sweep_back
                ~sound_promote ~obs:sink ?checkpoint ?resume
                ~seed:(Int64.of_int seed) spec
            with Invalid_argument e -> exit_err e)
      in
      Printf.printf "%-12s %6s %8s %8s %14s %5s %10s %s\n" "eta" "LOC"
        "cycles" "speedup" "validated-err" "warm" "proposals" "demotions";
      List.iter
        (fun (p : Search.Frontier.point) ->
          Printf.printf "%-12s %6d %8d %8.2f %14s %5s %10d %d\n"
            (Ulp.to_string p.Search.Frontier.eta)
            p.Search.Frontier.loc p.Search.Frontier.latency
            p.Search.Frontier.speedup
            (match p.Search.Frontier.validated_err with
             | None -> "-"
             | Some e -> Ulp.to_string e)
            (if p.Search.Frontier.warm then "yes" else "no")
            p.Search.Frontier.proposals_used p.Search.Frontier.demotions)
        r.Search.Frontier.points;
      Printf.printf "pareto frontier (%d of %d points):\n"
        (List.length r.Search.Frontier.pareto)
        (List.length r.Search.Frontier.points);
      List.iter
        (fun (p : Search.Frontier.point) ->
          Printf.printf "  %8d cycles  err <= %s ULPs  (eta %s)\n"
            p.Search.Frontier.latency
            (Ulp.to_string (Search.Frontier.err_bound p))
            (Ulp.to_string p.Search.Frontier.eta))
        r.Search.Frontier.pareto;
      Printf.printf
        "search proposals: %d of %d cold budget (%.1f%%), %d demotions, %d \
         counterexamples, %d sound promotions\n"
        r.Search.Frontier.total_proposals r.Search.Frontier.cold_budget
        (100.
        *. float_of_int r.Search.Frontier.total_proposals
        /. float_of_int (max 1 r.Search.Frontier.cold_budget))
        r.Search.Frontier.demotions r.Search.Frontier.tests_added
        r.Search.Frontier.promotions
  in
  let etas_arg =
    let doc =
      "Comma-separated η grid in ULPs (e.g. $(b,1,1e4,1e8)); defaults to \
       the paper's grid 10^0..10^18."
    in
    Arg.(value & opt (some string) None & info [ "etas" ] ~docv:"LIST" ~doc)
  in
  let cold_flag =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Disable warm-starting: every η runs cold with the full budget \
             (bit-identical winners to $(b,stoke sweep)).")
  in
  let warm_frac_arg =
    Arg.(
      value & opt float 0.25
      & info [ "warm-frac" ] ~docv:"F"
          ~doc:"Fraction of --proposals granted to each warm-started point.")
  in
  let max_demotions_arg =
    Arg.(
      value & opt int 2
      & info [ "max-demotions" ] ~docv:"N"
          ~doc:"Re-search rounds after a validation failure per point.")
  in
  let sweep_back_flag =
    Arg.(
      value & flag
      & info [ "sweep-back" ]
          ~doc:
            "After the tight-to-loose walk, sweep back loose-to-tight, \
             adopting a looser point's winner wherever it is faster and \
             survives re-validation at the tighter η.")
  in
  let sound_promote_flag =
    Arg.(
      value & flag
      & info [ "sound-promote" ]
          ~doc:
            "Before spending MCMC budget on a candidate, try the static \
             verifier (bit-wise / Taylor branch-and-bound / interval); a \
             candidate whose sound bound is ≤ η is promoted immediately \
             with the certified bound as its error.")
  in
  let no_validate_flag =
    Arg.(
      value & flag
      & info [ "no-validate" ]
          ~doc:"Skip MCMC validation (curve reports search-only results).")
  in
  let checkpoint_arg =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Write a frontier snapshot to $(docv) after every point.")
  in
  let resume_arg =
    Arg.(
      value & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:"Resume the walk from a frontier snapshot.")
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:
         "One-run speedup-vs-η Pareto frontier with warm-started chains \
          (Figure 9/10; see docs/SWEEP.md)")
    Term.(
      const run $ kernel_arg $ etas_arg $ proposals_arg $ seed_arg
      $ cold_flag $ warm_frac_arg $ max_demotions_arg $ sweep_back_flag
      $ sound_promote_flag $ no_validate_flag $ checkpoint_arg $ resume_arg
      $ engine_arg $ trace_out_arg $ progress_arg)

(* ----- encode ----- *)

let encode_cmd =
  let run name asm_file =
    match find_kernel name with
    | Error e -> exit_err e
    | Ok spec ->
      let program, what =
        match asm_file with
        | None -> (spec.Sandbox.Spec.program, name)
        | Some path -> (read_program path, path)
      in
      List.iter
        (fun i ->
          match Encoder.encode_instr i with
          | Ok bytes ->
            Printf.printf "%-40s %s%s\n" (Instr.to_string i)
              (Encoder.hex bytes)
              (if Sandbox.Native.native_instr i then ""
               else "   [batched fallback]")
          | Error e ->
            Printf.printf "%-40s <unencodable: %s>\n" (Instr.to_string i) e)
        (Program.instrs program);
      (* what the native engine would actually run: the whole guarded
         trampoline, when this platform and program admit one *)
      if Sandbox.Native.available () then begin
        let m =
          Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size ()
        in
        match Sandbox.Native.create_batch m [| Sandbox.Testcase.empty |] with
        | None -> Printf.printf "\n%s: native worker unavailable\n" what
        | Some b ->
          (match Sandbox.Native.compile b program with
           | None ->
             Printf.printf
               "\n%s: no native trampoline (some instruction falls back)\n"
               what
           | Some np ->
             Printf.printf "\n%s: native trampoline, %d bytes:\n%s\n" what
               (String.length (Sandbox.Native.code np))
               (Encoder.hex (Sandbox.Native.code np)))
      end
      else Printf.printf "\n%s: native execution unavailable here\n" what
  in
  let asm_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "asm" ] ~docv:"FILE"
          ~doc:
            "Encode this assembly file against KERNEL's machine instead of \
             the kernel's own target program.")
  in
  Cmd.v
    (Cmd.info "encode"
       ~doc:
         "Hex-dump a kernel's (or assembly file's) machine-code encoding, \
          flagging instructions the native engine would not run, plus the \
          full native trampoline when available")
    Term.(const run $ kernel_arg $ asm_arg)

(* ----- disasm ----- *)

let disasm_cmd =
  let run path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let bytes = really_input_string ic len in
    close_in ic;
    match Decoder.disassemble bytes with
    | Ok text -> print_endline text
    | Error e -> exit_err e
  in
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble raw machine-code bytes")
    Term.(const run $ file_arg)

(* ----- raytrace ----- *)

let raytrace_cmd =
  let run out width height samples variant seed =
    let ops =
      match variant with
      | "native" -> Apps.Raytracer.native_ops ()
      | "target" -> Apps.Raytracer.kernel_ops Apps.Raytracer.target_kernels
      | "rewrite" ->
        Apps.Raytracer.kernel_ops
          {
            Apps.Raytracer.k_scale = Kernels.Aek_kernels.scale_rewrite;
            k_dot = Kernels.Aek_kernels.dot_rewrite;
            k_add = Kernels.Aek_kernels.add_rewrite;
            k_delta = Kernels.Aek_kernels.delta_rewrite;
          }
      | "invalid" ->
        Apps.Raytracer.kernel_ops
          {
            Apps.Raytracer.target_kernels with
            Apps.Raytracer.k_delta = Kernels.Aek_kernels.delta_prime;
          }
      | other -> exit_err (Printf.sprintf "unknown variant %S" other)
    in
    let img, stats =
      Apps.Raytracer.render ~width ~height ~samples ~seed:(Int64.of_int seed) ops
    in
    Apps.Ppm.write img out;
    Printf.printf "wrote %s (%dx%d, %d samples): %d kernel calls, %d cycles\n"
      out width height samples stats.Apps.Raytracer.kernel_calls
      stats.Apps.Raytracer.kernel_cycles
  in
  let out_arg =
    Arg.(value & opt string "aek.ppm" & info [ "o"; "output" ] ~docv:"FILE")
  in
  let w_arg = Arg.(value & opt int 64 & info [ "width" ]) in
  let h_arg = Arg.(value & opt int 48 & info [ "height" ]) in
  let s_arg = Arg.(value & opt int 6 & info [ "samples" ]) in
  let variant_arg =
    Arg.(
      value
      & opt string "target"
      & info [ "kernels" ] ~docv:"native|target|rewrite|invalid")
  in
  Cmd.v
    (Cmd.info "raytrace" ~doc:"Render the aek scene through chosen kernels")
    Term.(const run $ out_arg $ w_arg $ h_arg $ s_arg $ variant_arg $ seed_arg)

(* ----- lint ----- *)

let lint_cmd =
  let run name asm_file =
    match find_kernel name with
    | Error e -> exit_err e
    | Ok spec ->
      let program, what =
        match asm_file with
        | None -> (spec.Sandbox.Spec.program, name)
        | Some path -> (read_program path, path)
      in
      let diags = Analysis.Dataflow.lint_program spec program in
      (match diags with
       | [] -> Printf.printf "%s: clean (%d slots)\n" what (Program.length program)
       | _ ->
         Printf.printf "%s: %d finding(s)\n" what (List.length diags);
         List.iter
           (fun d -> print_endline ("  " ^ Analysis.Dataflow.diag_to_string program d))
           diags;
         exit 1)
  in
  let asm_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "asm" ] ~docv:"FILE"
          ~doc:
            "Lint this assembly file against KERNEL's live-ins and \
             live-outs instead of the kernel's own target program.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static diagnostics over a kernel or an assembly file: undef \
          reads, dead slots, dead writes, self-moves (exit 1 on findings)")
    Term.(const run $ kernel_arg $ asm_arg)

(* ----- diffusion ----- *)

let diffusion_cmd =
  let run rewrite_file =
    let baseline = Apps.Diffusion.run Apps.Diffusion.default_config in
    Printf.printf
      "target:  checksum %.9e, %d exp calls, %d exp cycles, %d total cycles\n"
      baseline.Apps.Diffusion.checksum baseline.Apps.Diffusion.exp_calls
      baseline.Apps.Diffusion.exp_cycles baseline.Apps.Diffusion.total_cycles;
    match rewrite_file with
    | None -> ()
    | Some path ->
      let p = read_program path in
      let o = Apps.Diffusion.run ~exp_program:p Apps.Diffusion.default_config in
      Printf.printf
        "rewrite: checksum %.9e, %d total cycles -> task speedup %.2fx, tolerated: %b\n"
        o.Apps.Diffusion.checksum o.Apps.Diffusion.total_cycles
        (Apps.Diffusion.speedup ~baseline o)
        (Apps.Diffusion.tolerates ~baseline o)
  in
  Cmd.v
    (Cmd.info "diffusion" ~doc:"Run the S3D diffusion leaf task")
    Term.(const run $ rewrite_file_arg)

(* ----- serve ----- *)

let socket_arg =
  let doc = "Unix-domain socket path the daemon listens on." in
  Arg.(
    value
    & opt string "/tmp/stoke.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let run socket state_dir workers max_queue deadline checkpoint_every
      io_timeout max_domains trace_out =
    let log = make_sink ~trace_out ~progress:None in
    let cfg =
      {
        (Serve.Server.default_config ~socket_path:socket ~state_dir
           ~kernels:kernel_registry)
        with
        Serve.Server.workers;
        max_queue;
        default_deadline_s = deadline;
        checkpoint_every_s = checkpoint_every;
        io_timeout_s = io_timeout;
        max_domains;
        log;
      }
    in
    Fun.protect
      ~finally:(fun () -> Obs.Sink.close log)
      (fun () ->
        Serve.Server.run
          ~on_ready:(fun srv ->
            let stop _ = Serve.Server.shutdown srv in
            Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
            Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
            Printf.eprintf "stoke serve: listening on %s (state in %s)\n%!"
              socket state_dir)
          cfg)
  in
  let state_dir_arg =
    Arg.(
      value
      & opt string "/tmp/stoke-serve"
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Durable job state: per-job checkpoints and memoized results \
             live here and survive daemon restarts.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"Concurrent jobs (each may use several search domains).")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Admission bound; jobs beyond it are rejected, not queued.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline" ] ~docv:"SECS"
          ~doc:"Deadline for jobs that do not carry their own.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt float 10.
      & info [ "checkpoint-every" ] ~docv:"SECS"
          ~doc:"Snapshot cadence for running jobs (default 10).")
  in
  let io_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "io-timeout" ] ~docv:"SECS"
          ~doc:
            "Per-connection socket read/write timeout: a client that \
             never sends its request, or stops draining its event \
             stream, is disconnected after $(docv) seconds (default \
             30).")
  in
  let max_domains_arg =
    Arg.(
      value & opt int 4
      & info [ "max-domains" ] ~docv:"N"
          ~doc:"Cap on the search domains any one job may request.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent search daemon (Unix-domain socket, durable \
          job state, cross-job result memoization)")
    Term.(
      const run $ socket_arg $ state_dir_arg $ workers_arg $ max_queue_arg
      $ deadline_arg $ checkpoint_every_arg $ io_timeout_arg
      $ max_domains_arg $ trace_out_arg)

(* ----- submit ----- *)

let submit_cmd =
  let run socket op kernel eta etas proposals seed domains deadline
      rewrite_file tenant quiet =
    let action =
      match op with
      | "ping" -> Serve.Protocol.Ping
      | "shutdown" -> Serve.Protocol.Shutdown
      | "optimize" ->
        Serve.Protocol.Optimize { eta; proposals; seed; domains }
      | "frontier" ->
        let etas =
          match etas with
          | [] -> List.map Ulp.to_float Stoke.default_etas
          | es -> es
        in
        Serve.Protocol.Frontier { etas; proposals; seed }
      | "validate" -> (
        match rewrite_file with
        | None -> exit_err "validate needs --rewrite FILE"
        | Some path ->
          let ic = open_in path in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          Serve.Protocol.Validate { eta; rewrite = text; seed })
      | other -> exit_err (Printf.sprintf "unknown op %S" other)
    in
    let req =
      {
        Serve.Protocol.kernel;
        tenant;
        deadline_s = deadline;
        action;
      }
    in
    let on_event ev =
      if not quiet then print_endline (Obs.Sink.event_to_string ev)
    in
    match Serve.Client.submit ~socket_path:socket ~on_event req with
    | Error e -> exit_err e
    | Ok terminal ->
      if quiet then print_endline (Obs.Sink.event_to_string terminal);
      let ok =
        terminal.Obs.Sink.name = "pong"
        || Serve.Client.job_status terminal = "ok"
      in
      exit (if ok then 0 else 1)
  in
  let op_arg =
    let doc =
      "Job type: $(b,optimize), $(b,frontier), $(b,validate), $(b,ping), \
       or $(b,shutdown)."
    in
    Arg.(value & opt string "optimize" & info [ "op" ] ~docv:"OP" ~doc)
  in
  let kernel_opt_arg =
    let doc = "Kernel name (see $(b,stoke list)); unused for ping/shutdown." in
    Arg.(value & pos 0 string "" & info [] ~docv:"KERNEL" ~doc)
  in
  let etas_arg =
    Arg.(
      value
      & opt (list float) []
      & info [ "etas" ] ~docv:"ULPS,..."
          ~doc:"η grid for --op frontier (defaults to the paper's grid).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Search domains to request (the server may cap this).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS" ~doc:"Per-job wall-clock budget.")
  in
  let tenant_arg =
    Arg.(
      value
      & opt string Serve.Protocol.default_tenant
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"Fair-share group this job is accounted to.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ]
          ~doc:"Print only the terminal job_end event, not the full stream.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a job to a running stoke serve daemon and stream its \
             events")
    Term.(
      const run $ socket_arg $ op_arg $ kernel_opt_arg $ eta_arg $ etas_arg
      $ proposals_arg $ seed_arg $ domains_arg $ deadline_arg
      $ rewrite_file_arg $ tenant_arg $ quiet_arg)

let main =
  let info =
    Cmd.info "stoke" ~version:"1.0.0"
      ~doc:"Stochastic optimization of floating-point programs with tunable precision"
  in
  Cmd.group info
    [
      list_cmd; show_cmd; optimize_cmd; refine_cmd; validate_cmd; verify_cmd;
      sweep_cmd; frontier_cmd; serve_cmd; submit_cmd;
      encode_cmd; disasm_cmd; lint_cmd; raytrace_cmd; diffusion_cmd;
    ]

let () = exit (Cmd.eval main)
