(** Parallel search orchestrator: independent MCMC chains on OCaml 5
    domains, mirroring the paper's 16 search threads (§6), plus the
    control plane that makes long runs operable — cooperative early-stop,
    wall-clock deadlines, chain-crash isolation, and checkpoint/resume.

    Chains share {e almost} nothing — each domain builds its own cost
    context, machines, and (when [obs] is given) its own event sink — so
    the result is deterministic for a given seed: chain [i] runs with seed
    [seed + i] and the best η-correct rewrite across chains wins (ties by
    lower latency, then lower chain index).  The one shared structure is a
    {!Control.t} of atomics (scoreboard, stop flag, publication slots),
    which no chain reads on its hot path: polls are amortized to every
    {!Control.poll_interval} proposals and never touch an RNG, so under
    the default [Exhaust] policy the winner is bit-identical to a run
    without the control plane. *)

val run :
  ?domains:int ->
  ?obs:(chain:int -> Obs.Sink.t) ->
  ?orch_obs:Obs.Sink.t ->
  ?progress_every:int ->
  ?checkpoint:string * float ->
  ?resume:Snapshot.t ->
  ?on_chain_start:(int -> unit) ->
  ?control:Control.t ->
  spec:Sandbox.Spec.t ->
  params:Cost.params ->
  tests:Sandbox.Testcase.t array ->
  config:Optimizer.config ->
  unit ->
  Optimizer.result
(** [domains] defaults to [Domain.recommended_domain_count ()], capped
    at 8.  The returned trace is the winning chain's trace;
    [evaluations], [proposals_made], [accepted], and the per-kind
    [moves] arrays are summed across {e surviving} chains (into fresh
    arrays, leaving each chain's own counters untouched);
    [failed_chains] counts the rest, and [stop_reason] says why the run
    ended.

    {b Stop policies and deadlines} come from [config.stop_when] /
    [config.deadline_s] and are shared by all chains: the first chain to
    satisfy the policy (or observe the deadline) flips the shared stop
    flag, every chain exits at its next poll with its partial-but-valid
    state, and the merge proceeds as usual.

    {b Fault isolation}: an exception escaping one chain (including the
    [on_chain_start] hook) is caught inside its domain, recorded as a
    [chain_crash] event on that chain's sink (and on [orch_obs] after the
    join), counted in [failed_chains] — and the survivors' merged result
    is still returned.  Only if {e every} chain crashes does [run] raise
    ([Failure], carrying the first chain's error).

    {b Checkpointing}: [checkpoint:(path, every_s)] makes the
    orchestrator write a {!Snapshot} to [path] (atomically) every
    [every_s] seconds while chains run, and once more after the join
    (so the final image reflects early-stop, deadline, or crash state).
    [resume:snapshot] starts every chain from its publication in a prior
    snapshot; the snapshot's config fingerprint must match this run's or
    [run] raises [Invalid_argument] immediately.  Resuming an [Exhaust]
    run reproduces the uninterrupted run's winner bit-identically.

    [obs] is a factory, not a sink: it is called once {e inside} each
    domain ([~chain] ranging over [0..domains-1]) so every chain owns a
    private sink — e.g. one JSONL file per chain — and no event delivery
    crosses domains.  Each chain's sink is closed when that chain
    finishes.  [orch_obs] is the {e orchestrator's} sink, used only from
    the spawning domain ([resume], [snapshot_write], post-join
    [chain_crash] events).  [progress_every] is forwarded to every chain.

    [on_chain_start] runs inside each domain before its optimizer starts
    — a test hook for fault injection; treat it as part of the chain.

    [control] substitutes a caller-owned control plane for the one [run]
    would build from [config] — the hook a daemon uses to cancel an
    in-flight job ({!Control.request_stop} with {!Control.Cancelled})
    from outside the run.  The caller must create it with
    [~chains:domains] matching this run's domain count; when given,
    [config.stop_when] / [config.deadline_s] are read from the control
    plane the caller built, not from [config]. *)
