(** Parallel search: independent MCMC chains on OCaml 5 domains, mirroring
    the paper's 16 search threads (§6).

    Chains share nothing — each domain builds its own cost context and
    machines — so the result is deterministic for a given seed: chain [i]
    runs with seed [seed + i] and the best η-correct rewrite across chains
    wins (ties by lower latency, then lower chain index). *)

val run :
  ?domains:int ->
  spec:Sandbox.Spec.t ->
  params:Cost.params ->
  tests:Sandbox.Testcase.t array ->
  config:Optimizer.config ->
  unit ->
  Optimizer.result
(** [domains] defaults to [Domain.recommended_domain_count ()], capped
    at 8.  The returned trace is the winning chain's trace; [evaluations]
    and [proposals_made] are summed across chains. *)
