(** Parallel search: independent MCMC chains on OCaml 5 domains, mirroring
    the paper's 16 search threads (§6).

    Chains share nothing — each domain builds its own cost context,
    machines, and (when [obs] is given) its own event sink — so the
    result is deterministic for a given seed: chain [i] runs with seed
    [seed + i] and the best η-correct rewrite across chains wins (ties
    by lower latency, then lower chain index). *)

val run :
  ?domains:int ->
  ?obs:(chain:int -> Obs.Sink.t) ->
  ?progress_every:int ->
  spec:Sandbox.Spec.t ->
  params:Cost.params ->
  tests:Sandbox.Testcase.t array ->
  config:Optimizer.config ->
  unit ->
  Optimizer.result
(** [domains] defaults to [Domain.recommended_domain_count ()], capped
    at 8.  The returned trace is the winning chain's trace;
    [evaluations], [proposals_made], [accepted], and the per-kind
    [moves] arrays are summed across chains (into fresh arrays, leaving
    each chain's own counters untouched).

    [obs] is a factory, not a sink: it is called once {e inside} each
    domain ([~chain] ranging over [0..domains-1]) so every chain owns a
    private sink — e.g. one JSONL file per chain — and no event
    delivery crosses domains.  Each chain's sink is closed when that
    chain finishes.  [progress_every] is forwarded to every chain. *)
