(** The paper's four proposal moves (§2.2), applied in place with undo.

    - {b Opcode}: replace one instruction's opcode with another admitting
      the same operand shape.
    - {b Operand}: replace one operand with another of the same kind.
    - {b Swap}: exchange two slots (either may be [Unused]).
    - {b Instruction}: replace a slot with [Unused] or with a freshly
      random instruction.

    All four are ergodic over the slot-array program space and symmetric,
    as required by the Metropolis ratio. *)

type kind =
  | Opcode_move
  | Operand_move
  | Swap_move
  | Instruction_move

type undo

val propose : Rng.Xoshiro256.t -> Pools.t -> Program.t -> (kind * undo) option
(** Mutates the program; [None] when the drawn move is inapplicable (e.g.
    opcode move on an empty program) — callers simply redraw. *)

val undo : Program.t -> undo -> unit

val kind_to_string : kind -> string
