(** Operand and opcode pools for the proposal distribution.

    Pools are derived from the target: its registers plus a few scratch
    registers, its immediates (notably the 64-bit constants loaded via
    [movabs]) plus small canonical values, and the memory operands it
    references.  This mirrors STOKE's practice of drawing operands from the
    target's context so proposals stay relevant. *)

type t

val make : target:Program.t -> spec:Sandbox.Spec.t -> t

val operands_of_kind : t -> Shape.kind -> Operand.t array
(** May be empty (e.g. no memory operands in a register-only kernel). *)

val opcodes_with_shape : t -> Shape.kind array -> Opcode.t array
(** Opcodes admitting the given shape whose every kind has a non-empty
    operand pool. *)

val all_opcodes : t -> Opcode.t array
(** Opcodes for the instruction move (every shape instantiable). *)

val random_instr : Rng.Xoshiro256.t -> t -> Instr.t
(** A uniformly random well-formed instruction over the pools. *)
