let better_result (a : Optimizer.result) (b : Optimizer.result) =
  (* prefer an η-correct rewrite; among those, the lowest perf *)
  match a.Optimizer.best_correct_cost, b.Optimizer.best_correct_cost with
  | Some ca, Some cb -> if cb.Cost.perf < ca.Cost.perf then b else a
  | Some _, None -> a
  | None, Some _ -> b
  | None, None ->
    if b.Optimizer.best_overall_cost.Cost.total
       < a.Optimizer.best_overall_cost.Cost.total
    then b
    else a

let run ?domains ?obs ?(orch_obs = Obs.Sink.null) ?progress_every ?checkpoint
    ?resume ?on_chain_start ?control ~spec ~params ~tests ~config () =
  let n =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> Stdlib.min 8 (Domain.recommended_domain_count ())
  in
  let fp = Snapshot.fingerprint ~spec ~params ~config ~tests ~domains:n in
  (match resume with
   | Some (s : Snapshot.t) when s.Snapshot.fingerprint <> fp ->
     invalid_arg
       (Printf.sprintf
          "Parallel.run: snapshot fingerprint %s does not match this run's \
           %s — the spec, cost params, search config, tests, or domain \
           count changed since the snapshot was written"
          s.Snapshot.fingerprint fp)
   | _ -> ());
  let control =
    match control with
    | Some c -> c
    | None ->
      Control.create
        ?deadline_s:config.Optimizer.deadline_s
        ~stop_when:config.Optimizer.stop_when ~chains:n ()
  in
  let resume_pub i =
    match resume with
    | Some (s : Snapshot.t) when i < Array.length s.Snapshot.chains ->
      s.Snapshot.chains.(i)
    | _ -> None
  in
  (match resume with
   | None -> ()
   | Some s ->
     Obs.Sink.emit orch_obs "resume"
       [
         ("fingerprint", Obs.Json.String fp);
         ("domains", Obs.Json.Int n);
         ("prior_elapsed_s", Obs.Json.Float s.Snapshot.elapsed_s);
         ( "chains_live",
           Obs.Json.Int
             (Array.fold_left
                (fun acc -> function
                  | Some (p : Control.chain_pub) when not p.Control.completed
                    ->
                    acc + 1
                  | _ -> acc)
                0 s.Snapshot.chains) );
       ]);
  (* Everything a chain touches — cost context, machines, and its sink —
     is created inside the chain itself, so domains share no mutable
     state (beyond the atomics in [control]) and per-domain telemetry
     cannot race.  The chain catches its own exceptions: a crash is data
     ([Error]), not control flow, so one bad chain cannot take down the
     join. *)
  let chain i =
    let sink =
      match obs with
      | None -> Obs.Sink.null
      | Some make -> make ~chain:i
    in
    Fun.protect
      ~finally:(fun () ->
        Obs.Sink.close sink;
        Control.mark_done control ~chain:i)
      (fun () ->
        try
          (match on_chain_start with Some f -> f i | None -> ());
          let ctx =
            Cost.create ~use_cache:config.Optimizer.prune
              ~engine:config.Optimizer.engine spec params tests
          in
          let cfg =
            { config with
              Optimizer.seed = Int64.add config.Optimizer.seed (Int64.of_int i)
            }
          in
          Ok
            (Optimizer.run ~obs:sink ?progress_every ~control ~chain_id:i
               ?resume:(resume_pub i) ctx cfg)
        with e ->
          let err = Printexc.to_string e in
          Control.mark_crashed control ~chain:i;
          Obs.Sink.emit sink "chain_crash"
            [ ("chain", Obs.Json.Int i); ("error", Obs.Json.String err) ];
          Error err)
  in
  let t_start = Obs.Clock.now_ns () in
  let prior_elapsed =
    match resume with Some s -> s.Snapshot.elapsed_s | None -> 0.
  in
  let write_snapshot path =
    (* A chain that has not republished since the resume keeps its image
       from the resumed snapshot — overwriting it with [None] would lose
       its only record. *)
    let chains =
      Array.mapi
        (fun i latest ->
          match latest with Some _ -> latest | None -> resume_pub i)
        (Control.published control)
    in
    let snap =
      {
        Snapshot.version = Snapshot.current_version;
        fingerprint = fp;
        domains = n;
        stop_reason =
          Option.map Control.stop_reason_to_string
            (Control.stop_reason control);
        elapsed_s = prior_elapsed +. Obs.Clock.elapsed_s ~since:t_start;
        chains;
      }
    in
    Snapshot.write ~path snap;
    Obs.Sink.emit orch_obs "snapshot_write"
      [
        ("path", Obs.Json.String path);
        ("elapsed_s", Obs.Json.Float snap.Snapshot.elapsed_s);
        ( "chains_published",
          Obs.Json.Int
            (Array.fold_left
               (fun acc c -> if Option.is_some c then acc + 1 else acc)
               0 chains) );
      ]
  in
  let handles = Array.init n (fun i -> Domain.spawn (fun () -> chain i)) in
  (* With checkpointing on, the spawning domain doubles as the watcher:
     it naps until either the cadence elapses or every chain has marked
     itself done, then joins.  Without it, join directly — no added
     latency. *)
  (match checkpoint with
   | None -> ()
   | Some (path, every_s) ->
     let last = ref (Obs.Clock.now_ns ()) in
     while Control.finished control < n do
       Unix.sleepf 0.02;
       if Obs.Clock.elapsed_s ~since:!last >= every_s then begin
         write_snapshot path;
         last := Obs.Clock.now_ns ()
       end
     done);
  let results = Array.map Domain.join handles in
  Array.iteri
    (fun i r ->
      match r with
      | Ok _ -> ()
      | Error err ->
        Obs.Sink.emit orch_obs "chain_crash"
          [ ("chain", Obs.Json.Int i); ("error", Obs.Json.String err) ])
    results;
  (* The post-join snapshot captures the terminal state: completed chains
     are marked unresumable, and an early-stop/deadline/crash leaves an
     image to resume from. *)
  (match checkpoint with
   | Some (path, _) -> write_snapshot path
   | None -> ());
  let failed =
    Array.fold_left
      (fun acc -> function Error _ -> acc + 1 | Ok _ -> acc)
      0 results
  in
  let ok_results =
    List.filter_map
      (function Ok r -> Some r | Error _ -> None)
      (Array.to_list results)
  in
  match ok_results with
  | [] ->
    let first_err =
      Array.fold_left
        (fun acc r ->
          match acc, r with None, Error e -> Some e | _ -> acc)
        None results
    in
    failwith
      ("Parallel.run: all chains crashed; first error: "
      ^ Option.value first_err ~default:"unknown")
  | first :: rest ->
    let best = List.fold_left better_result first rest in
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 ok_results in
    (* Sum per-kind move stats into fresh arrays: reusing the winning
       chain's arrays in place would corrupt that chain's result, and
       keeping them un-summed would break the accepted =
       Σ accepted_by_kind invariant that holds for a single chain. *)
    let sum_kind proj =
      Array.init 4 (fun k ->
          List.fold_left (fun acc r -> acc + (proj r).(k)) 0 ok_results)
    in
    let moves =
      {
        Optimizer.proposed =
          sum_kind (fun r -> r.Optimizer.moves.Optimizer.proposed);
        accepted_by_kind =
          sum_kind (fun r -> r.Optimizer.moves.Optimizer.accepted_by_kind);
      }
    in
    { best with
      Optimizer.proposals_made = sum (fun r -> r.Optimizer.proposals_made);
      accepted = sum (fun r -> r.Optimizer.accepted);
      evaluations = sum (fun r -> r.Optimizer.evaluations);
      tests_executed = sum (fun r -> r.Optimizer.tests_executed);
      pruned_evals = sum (fun r -> r.Optimizer.pruned_evals);
      cache_hits = sum (fun r -> r.Optimizer.cache_hits);
      compile_count = sum (fun r -> r.Optimizer.compile_count);
      compiled_runs = sum (fun r -> r.Optimizer.compiled_runs);
      batched_runs = sum (fun r -> r.Optimizer.batched_runs);
      batch_prunes = sum (fun r -> r.Optimizer.batch_prunes);
      native_runs = sum (fun r -> r.Optimizer.native_runs);
      encode_count = sum (fun r -> r.Optimizer.encode_count);
      encoder_fallbacks = sum (fun r -> r.Optimizer.encoder_fallbacks);
      worker_respawns = sum (fun r -> r.Optimizer.worker_respawns);
      static_rejects = sum (fun r -> r.Optimizer.static_rejects);
      moves;
      stop_reason =
        (match Control.stop_reason control with
         | Some r -> r
         | None -> Control.Exhausted);
      failed_chains = failed
    }
