let better_result (a : Optimizer.result) (b : Optimizer.result) =
  (* prefer an η-correct rewrite; among those, the lowest perf *)
  match a.Optimizer.best_correct_cost, b.Optimizer.best_correct_cost with
  | Some ca, Some cb -> if cb.Cost.perf < ca.Cost.perf then b else a
  | Some _, None -> a
  | None, Some _ -> b
  | None, None ->
    if b.Optimizer.best_overall_cost.Cost.total
       < a.Optimizer.best_overall_cost.Cost.total
    then b
    else a

let run ?domains ?obs ?progress_every ~spec ~params ~tests ~config () =
  let n =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> Stdlib.min 8 (Domain.recommended_domain_count ())
  in
  (* Everything a chain touches — cost context, machines, and its sink —
     is created inside the chain itself, so domains share no mutable
     state and per-domain telemetry cannot race. *)
  let chain i =
    let sink =
      match obs with
      | None -> Obs.Sink.null
      | Some make -> make ~chain:i
    in
    Fun.protect
      ~finally:(fun () -> Obs.Sink.close sink)
      (fun () ->
        let ctx =
          Cost.create ~use_cache:config.Optimizer.prune
            ~engine:config.Optimizer.engine spec params tests
        in
        let cfg =
          { config with
            Optimizer.seed = Int64.add config.Optimizer.seed (Int64.of_int i) }
        in
        Optimizer.run ~obs:sink ?progress_every ctx cfg)
  in
  if n = 1 then chain 0
  else begin
    let handles = List.init n (fun i -> Domain.spawn (fun () -> chain i)) in
    let results = List.map Domain.join handles in
    match results with
    | [] -> assert false
    | first :: rest ->
      let best = List.fold_left better_result first rest in
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
      (* Sum per-kind move stats into fresh arrays: reusing the winning
         chain's arrays in place would corrupt that chain's result, and
         keeping them un-summed would break the accepted =
         Σ accepted_by_kind invariant that holds for a single chain. *)
      let sum_kind proj =
        Array.init 4 (fun k ->
            List.fold_left (fun acc r -> acc + (proj r).(k)) 0 results)
      in
      let moves =
        {
          Optimizer.proposed =
            sum_kind (fun r -> r.Optimizer.moves.Optimizer.proposed);
          accepted_by_kind =
            sum_kind (fun r -> r.Optimizer.moves.Optimizer.accepted_by_kind);
        }
      in
      { best with
        Optimizer.proposals_made = sum (fun r -> r.Optimizer.proposals_made);
        accepted = sum (fun r -> r.Optimizer.accepted);
        evaluations = sum (fun r -> r.Optimizer.evaluations);
        tests_executed = sum (fun r -> r.Optimizer.tests_executed);
        pruned_evals = sum (fun r -> r.Optimizer.pruned_evals);
        cache_hits = sum (fun r -> r.Optimizer.cache_hits);
        compile_count = sum (fun r -> r.Optimizer.compile_count);
        compiled_runs = sum (fun r -> r.Optimizer.compiled_runs);
        static_rejects = sum (fun r -> r.Optimizer.static_rejects);
        moves
      }
  end
