type config = {
  proposals : int;
  strategy : Strategy.t;
  seed : int64;
  padding : int;
  restarts : int;
  trace_points : int;
  prune : bool;
  engine : Sandbox.Exec.engine;
  static_screen : bool;
  stop_when : Control.stop_policy;
  deadline_s : float option;
}

let default_config =
  {
    proposals = 200_000;
    strategy = Strategy.Mcmc { beta = 1.0 };
    seed = 1L;
    padding = 4;
    restarts = 1;
    trace_points = 60;
    prune = true;
    engine = Sandbox.Exec.Compiled;
    static_screen = true;
    stop_when = Control.Exhaust;
    deadline_s = None;
  }

type trace_entry = {
  iter : int;
  best_total : float;
  current_total : float;
}

type move_stats = {
  proposed : int array;
  accepted_by_kind : int array;
}

type result = {
  best_correct : Program.t option;
  best_correct_cost : Cost.cost option;
  best_overall : Program.t;
  best_overall_cost : Cost.cost;
  trace : trace_entry list;
  proposals_made : int;
  accepted : int;
  evaluations : int;
  tests_executed : int;
  pruned_evals : int;
  cache_hits : int;
  compile_count : int;
  compiled_runs : int;
  batched_runs : int;
  batch_prunes : int;
  native_runs : int;
  encode_count : int;
  encoder_fallbacks : int;
  worker_respawns : int;
  static_rejects : int;
  moves : move_stats;
  stop_reason : Control.stop_reason;
  failed_chains : int;
}

(* Raised at a poll point when the control plane requests a stop; caught in
   [run_from], which returns the partial-but-valid state accumulated so
   far. *)
exception Stop_now

let kind_index = function
  | Transform.Opcode_move -> 0
  | Transform.Operand_move -> 1
  | Transform.Swap_move -> 2
  | Transform.Instruction_move -> 3

(* Logarithmically spaced checkpoints in [1, n]. *)
let checkpoints n count =
  let rec go acc i =
    if i > count then List.rev acc
    else begin
      let v =
        int_of_float
          (Float.pow (float_of_int n) (float_of_int i /. float_of_int count))
      in
      let v = Stdlib.max 1 v in
      match acc with
      | prev :: _ when prev >= v -> go ((prev + 1) :: acc) (i + 1)
      | _ -> go (v :: acc) (i + 1)
    end
  in
  go [] 1

type chain_state = {
  mutable best_correct : Program.t option;
  mutable best_correct_cost : Cost.cost option;
  mutable best_overall : Program.t;
  mutable best_overall_cost : Cost.cost;
  mutable accepted : int;
  mutable proposals_made : int;
  mutable static_rejects : int;
  mutable trace_rev : trace_entry list;
  moves : move_stats;
}

let kind_names =
  [ Transform.Opcode_move; Transform.Operand_move; Transform.Swap_move;
    Transform.Instruction_move ]

let moves_json (moves : move_stats) =
  Obs.Json.Obj
    (List.map
       (fun kind ->
         let i = kind_index kind in
         ( Transform.kind_to_string kind,
           Obs.Json.Obj
             [
               ("proposed", Obs.Json.Int moves.proposed.(i));
               ("accepted", Obs.Json.Int moves.accepted_by_kind.(i));
             ] ))
       kind_names)

(* Counter values at the start of a [run_from], so events and the returned
   result report totals for this run even when a context is reused. *)
type anchors = {
  t0 : int64;  (** {!Obs.Clock.now_ns} reading *)
  evals0 : int;
  tests0 : int;
  pruned0 : int;
  hits0 : int;
  compiles0 : int;
  cruns0 : int;
  bruns0 : int;
  bprunes0 : int;
  nruns0 : int;
  encodes0 : int;
  efallbacks0 : int;
  respawns0 : int;
}

(* Shared by the log-spaced "checkpoint" and the fixed-cadence "progress"
   events. *)
let emit_point obs name ~chain ~iter ~anchors ctx state ~current_total =
  let elapsed = Obs.Clock.elapsed_s ~since:anchors.t0 in
  let evals = Cost.evaluations ctx - anchors.evals0 in
  Obs.Sink.emit obs name
    [
      ("chain", Obs.Json.Int chain);
      ("iter", Obs.Json.Int iter);
      ("best_total", Obs.Json.Float state.best_overall_cost.Cost.total);
      ("current_total", Obs.Json.Float current_total);
      ("proposals_made", Obs.Json.Int state.proposals_made);
      ("accepted", Obs.Json.Int state.accepted);
      ("evaluations", Obs.Json.Int evals);
      ("tests_executed", Obs.Json.Int (Cost.tests_executed ctx - anchors.tests0));
      ("pruned_evals", Obs.Json.Int (Cost.pruned_evals ctx - anchors.pruned0));
      ("cache_hits", Obs.Json.Int (Cost.cache_hits ctx - anchors.hits0));
      ("compile_count", Obs.Json.Int (Cost.compile_count ctx - anchors.compiles0));
      ("compiled_runs", Obs.Json.Int (Cost.compiled_runs ctx - anchors.cruns0));
      ("batched_runs", Obs.Json.Int (Cost.batched_runs ctx - anchors.bruns0));
      ("batch_prunes", Obs.Json.Int (Cost.batch_prunes ctx - anchors.bprunes0));
      ("native_runs", Obs.Json.Int (Cost.native_runs ctx - anchors.nruns0));
      ("encode_count", Obs.Json.Int (Cost.encode_count ctx - anchors.encodes0));
      ( "encoder_fallbacks",
        Obs.Json.Int (Cost.encoder_fallbacks ctx - anchors.efallbacks0) );
      ( "worker_respawns",
        Obs.Json.Int (Cost.worker_respawns ctx - anchors.respawns0) );
      ("static_rejects", Obs.Json.Int state.static_rejects);
      ("elapsed_s", Obs.Json.Float elapsed);
      ( "evals_per_s",
        Obs.Json.Float
          (if elapsed > 0. then float_of_int evals /. elapsed else 0.) );
    ]

let run_chain ~obs ~progress_every ~control ~chain_id ~master_rng ~restart
    ~anchors ~screen_env ctx pools config init g ?start state =
  (* On resume [start] carries the exact (padded) slot array from the
     snapshot — re-padding would change slot indices and break the RNG
     replay, so only fresh restarts pad. *)
  let cur, start_iter =
    match start with
    | Some (p, it) -> (p, it)
    | None -> (Program.with_padding config.padding (Program.instrs init), 0)
  in
  let cur_cost = ref (Cost.eval_full ctx cur) in
  let note_candidate ~notify cost =
    let improved = ref false in
    if Cost.correct cost then begin
      let better =
        match state.best_correct_cost with
        | None -> true
        | Some c -> cost.Cost.perf < c.Cost.perf
      in
      if better then begin
        state.best_correct <- Some (Program.copy cur);
        state.best_correct_cost <- Some cost;
        improved := true
      end
    end;
    if cost.Cost.total < state.best_overall_cost.Cost.total then begin
      state.best_overall <- Program.copy cur;
      state.best_overall_cost <- cost;
      improved := true
    end;
    if notify && !improved then
      Option.iter
        (fun c ->
          Control.note_best c ~correct:(Cost.correct cost)
            ~total:cost.Cost.total)
        control
  in
  (* The starting program never notifies the control plane: in optimization
     mode the start IS the target, so [First_correct] would otherwise fire
     before a single proposal.  The policy reads "first correct
     improvement". *)
  if start = None then note_candidate ~notify:false !cur_cost;
  let publish_pub c ~iter ~completed =
    Control.publish c
      {
        Control.chain = chain_id;
        seed = config.seed;
        restart;
        iter;
        completed;
        rng = Rng.Xoshiro256.state g;
        master_rng;
        cur = Program.copy cur;
        best_correct = Option.map Program.copy state.best_correct;
        best_overall = Program.copy state.best_overall;
        proposals_made = state.proposals_made;
        accepted = state.accepted;
        static_rejects = state.static_rejects;
        moves_proposed = Array.copy state.moves.proposed;
        moves_accepted = Array.copy state.moves.accepted_by_kind;
        trace_rev =
          List.map
            (fun e -> (e.iter, e.best_total, e.current_total))
            state.trace_rev;
      }
  in
  let observing = Obs.Sink.enabled obs in
  let marks =
    ref
      (List.filter
         (fun m -> m > start_iter)
         (checkpoints config.proposals config.trace_points))
  in
  for iter = start_iter + 1 to config.proposals do
    state.proposals_made <- state.proposals_made + 1;
    (match Transform.propose g pools cur with
     | None -> ()
     | Some (kind, undo) ->
       state.moves.proposed.(kind_index kind) <-
         state.moves.proposed.(kind_index kind) + 1;
       if
         config.static_screen
         && Analysis.Screen.has_undef_read screen_env cur
       then begin
         (* The proposal reads a location nothing defined: reject before
            any test case runs.  The acceptance-bound RNG draw is skipped,
            so screened and unscreened searches follow different random
            streams — but each is still bit-identical across engine and
            prune settings. *)
         state.static_rejects <- state.static_rejects + 1;
         Transform.undo cur undo
       end
       else begin
       (* Draw the acceptance randomness before evaluating: a proposal is
          accepted iff its total stays within [limit], so any evaluation
          provably exceeding [limit] can abort early — the prune decision
          and the accept decision are the same float comparison, which is
          what makes pruned and unpruned runs bit-identical. *)
       let limit =
         match Strategy.accept_bound config.strategy g ~iter with
         | None -> Float.infinity
         | Some b -> !cur_cost.Cost.total +. b
       in
       let verdict =
         Cost.eval ?cutoff:(if config.prune then Some limit else None) ctx cur
       in
       (match verdict with
        | Cost.Pruned _ -> Transform.undo cur undo
        | Cost.Evaluated proposal_cost ->
          if proposal_cost.Cost.total <= limit then begin
            state.accepted <- state.accepted + 1;
            state.moves.accepted_by_kind.(kind_index kind) <-
              state.moves.accepted_by_kind.(kind_index kind) + 1;
            cur_cost := proposal_cost;
            note_candidate ~notify:true proposal_cost
          end
          else Transform.undo cur undo)
       end);
    (match !marks with
     | m :: rest when iter >= m ->
       state.trace_rev <-
         {
           iter;
           best_total = state.best_overall_cost.Cost.total;
           current_total = !cur_cost.Cost.total;
         }
         :: state.trace_rev;
       marks := rest;
       if observing then
         emit_point obs "checkpoint" ~chain:restart ~iter ~anchors ctx state
           ~current_total:!cur_cost.Cost.total
     | _ -> ());
    (match progress_every with
     | Some n when observing && n > 0 && iter mod n = 0 ->
       emit_point obs "progress" ~chain:restart ~iter ~anchors ctx state
         ~current_total:!cur_cost.Cost.total
     | _ -> ());
    (* Control poll, amortized to one [land] + branch per proposal.  It
       reads no RNG, so attaching a control plane whose policy never fires
       leaves the search bit-identical. *)
    if iter land (Control.poll_interval - 1) = 0 then begin
      match control with
      | None -> ()
      | Some c ->
        publish_pub c ~iter ~completed:false;
        if Control.should_stop c then begin
          if observing then
            Obs.Sink.emit obs "early_stop"
              [
                ("chain", Obs.Json.Int chain_id);
                ("restart", Obs.Json.Int restart);
                ("iter", Obs.Json.Int iter);
                ( "reason",
                  Obs.Json.String
                    (match Control.stop_reason c with
                     | Some r -> Control.stop_reason_to_string r
                     | None -> "unknown") );
              ];
          raise Stop_now
        end
    end
  done

let run_from ?(obs = Obs.Sink.null) ?progress_every ?control ?(chain_id = 0)
    ?resume ctx config init =
  let anchors =
    {
      t0 = Obs.Clock.now_ns ();
      evals0 = Cost.evaluations ctx;
      tests0 = Cost.tests_executed ctx;
      pruned0 = Cost.pruned_evals ctx;
      hits0 = Cost.cache_hits ctx;
      compiles0 = Cost.compile_count ctx;
      cruns0 = Cost.compiled_runs ctx;
      bruns0 = Cost.batched_runs ctx;
      bprunes0 = Cost.batch_prunes ctx;
      nruns0 = Cost.native_runs ctx;
      encodes0 = Cost.encode_count ctx;
      efallbacks0 = Cost.encoder_fallbacks ctx;
      respawns0 = Cost.worker_respawns ctx;
    }
  in
  let control =
    match control with
    | Some _ as c -> c
    | None ->
      if config.stop_when <> Control.Exhaust || config.deadline_s <> None then
        Some
          (Control.create ?deadline_s:config.deadline_s
             ~stop_when:config.stop_when ~chains:(chain_id + 1) ())
      else None
  in
  let spec = Cost.spec ctx in
  let pools = Pools.make ~target:spec.Sandbox.Spec.program ~spec in
  let g =
    match resume with
    | Some (r : Control.chain_pub) -> Rng.Xoshiro256.of_state r.master_rng
    | None -> Rng.Xoshiro256.create config.seed
  in
  let init_cost = Cost.eval_full ctx init in
  let state =
    match resume with
    | None ->
      {
        best_correct = None;
        best_correct_cost = None;
        best_overall = Program.copy init;
        best_overall_cost = init_cost;
        accepted = 0;
        proposals_made = 0;
        static_rejects = 0;
        trace_rev = [];
        moves =
          { proposed = Array.make 4 0; accepted_by_kind = Array.make 4 0 };
      }
    | Some r ->
      (* Costs are recomputed rather than serialized: evaluation is
         deterministic, so the recomputed cost is bit-identical to the one
         observed before the snapshot (and the snapshot stays honest even
         if its writer lied). *)
      let best_correct = Option.map Program.copy r.best_correct in
      let best_correct_cost = Option.map (Cost.eval_full ctx) best_correct in
      let best_overall = Program.copy r.best_overall in
      {
        best_correct;
        best_correct_cost;
        best_overall;
        best_overall_cost = Cost.eval_full ctx best_overall;
        accepted = r.accepted;
        proposals_made = r.proposals_made;
        static_rejects = r.static_rejects;
        trace_rev =
          List.map
            (fun (iter, best_total, current_total) ->
              { iter; best_total; current_total })
            r.trace_rev;
        moves =
          {
            proposed = Array.copy r.moves_proposed;
            accepted_by_kind = Array.copy r.moves_accepted;
          };
      }
  in
  let observing = Obs.Sink.enabled obs in
  if observing then
    Obs.Sink.emit obs "search_start"
      [
        ("proposals", Obs.Json.Int config.proposals);
        ("strategy", Obs.Json.String (Strategy.to_string config.strategy));
        ("seed", Obs.Json.String (Int64.to_string config.seed));
        ("padding", Obs.Json.Int config.padding);
        ("restarts", Obs.Json.Int config.restarts);
        ("trace_points", Obs.Json.Int config.trace_points);
        ("engine", Obs.Json.String (Sandbox.Exec.engine_to_string (Cost.engine ctx)));
        ("static_screen", Obs.Json.Bool config.static_screen);
        ("stop_when", Obs.Json.String (Control.stop_policy_to_string config.stop_when));
        ( "deadline_s",
          match config.deadline_s with
          | None -> Obs.Json.Null
          | Some d -> Obs.Json.Float d );
        ("resumed", Obs.Json.Bool (Option.is_some resume));
        ("init_total", Obs.Json.Float init_cost.Cost.total);
      ];
  let screen_env = Analysis.Screen.env_of_spec spec in
  let restarts = Stdlib.max 1 config.restarts in
  let start_restart =
    match resume with
    | Some (r : Control.chain_pub) when not r.completed -> r.restart
    | Some _ -> restarts + 1
    | None -> 1
  in
  let stopped = ref None in
  (try
     for restart = start_restart to restarts do
       if observing then
         Obs.Sink.emit obs "chain_start" [ ("chain", Obs.Json.Int restart) ];
       let g_restart, start =
         match resume with
         | Some (r : Control.chain_pub) when restart = r.restart ->
           (* The master already paid the split for this restart before the
              snapshot; [r.rng] continues that stream mid-flight. *)
           (Rng.Xoshiro256.of_state r.rng, Some (Program.copy r.cur, r.iter))
         | _ -> (Rng.Xoshiro256.split g, None)
       in
       run_chain ~obs ~progress_every ~control ~chain_id
         ~master_rng:(Rng.Xoshiro256.state g) ~restart ~anchors ~screen_env
         ctx pools config init g_restart ?start state
     done;
     (* Budget exhausted: publish a terminal record so a checkpoint written
        after this point marks the chain as not-resumable. *)
     Option.iter
       (fun c ->
         let gs = Rng.Xoshiro256.state g in
         Control.publish c
           {
             Control.chain = chain_id;
             seed = config.seed;
             restart = restarts;
             iter = config.proposals;
             completed = true;
             rng = gs;
             master_rng = gs;
             cur = Program.copy state.best_overall;
             best_correct = Option.map Program.copy state.best_correct;
             best_overall = Program.copy state.best_overall;
             proposals_made = state.proposals_made;
             accepted = state.accepted;
             static_rejects = state.static_rejects;
             moves_proposed = Array.copy state.moves.proposed;
             moves_accepted = Array.copy state.moves.accepted_by_kind;
             trace_rev =
               List.map
                 (fun e -> (e.iter, e.best_total, e.current_total))
                 state.trace_rev;
           })
       control
   with Stop_now ->
     stopped :=
       Option.bind control Control.stop_reason);
  let stop_reason = Option.value !stopped ~default:Control.Exhausted in
  let live_out = Sandbox.Spec.live_out_set spec in
  let best_correct =
    Option.map (fun p -> Liveness.dce p ~live_out) state.best_correct
  in
  (* DCE can only remove instructions with no live effect, but re-evaluate
     to keep the reported cost honest. *)
  let best_correct, best_correct_cost =
    match best_correct with
    | None -> (None, None)
    | Some p ->
      let c = Cost.eval_full ctx p in
      if Cost.correct c then (Some p, Some c)
      else (state.best_correct, state.best_correct_cost)
  in
  let result =
    {
      best_correct;
      best_correct_cost;
      best_overall = state.best_overall;
      best_overall_cost = state.best_overall_cost;
      trace = List.rev state.trace_rev;
      proposals_made = state.proposals_made;
      accepted = state.accepted;
      (* Counters are anchored: they count THIS run's work, matching the
         telemetry, even when the cost context is reused across runs. *)
      evaluations = Cost.evaluations ctx - anchors.evals0;
      tests_executed = Cost.tests_executed ctx - anchors.tests0;
      pruned_evals = Cost.pruned_evals ctx - anchors.pruned0;
      cache_hits = Cost.cache_hits ctx - anchors.hits0;
      compile_count = Cost.compile_count ctx - anchors.compiles0;
      compiled_runs = Cost.compiled_runs ctx - anchors.cruns0;
      batched_runs = Cost.batched_runs ctx - anchors.bruns0;
      batch_prunes = Cost.batch_prunes ctx - anchors.bprunes0;
      native_runs = Cost.native_runs ctx - anchors.nruns0;
      encode_count = Cost.encode_count ctx - anchors.encodes0;
      encoder_fallbacks = Cost.encoder_fallbacks ctx - anchors.efallbacks0;
      worker_respawns = Cost.worker_respawns ctx - anchors.respawns0;
      static_rejects = state.static_rejects;
      moves = state.moves;
      stop_reason;
      failed_chains = 0;
    }
  in
  if observing then begin
    let elapsed = Obs.Clock.elapsed_s ~since:anchors.t0 in
    Obs.Sink.emit obs "search_end"
      [
        ("best_correct", Obs.Json.Bool (Option.is_some result.best_correct));
        ( "best_correct_perf",
          match result.best_correct_cost with
          | None -> Obs.Json.Null
          | Some c -> Obs.Json.Float c.Cost.perf );
        ( "best_correct_loc",
          match result.best_correct with
          | None -> Obs.Json.Null
          | Some p -> Obs.Json.Int (Program.length p) );
        ("best_overall_total", Obs.Json.Float result.best_overall_cost.Cost.total);
        ("proposals_made", Obs.Json.Int result.proposals_made);
        ("accepted", Obs.Json.Int result.accepted);
        ( "acceptance_rate",
          Obs.Json.Float
            (if result.proposals_made = 0 then 0.
             else float_of_int result.accepted /. float_of_int result.proposals_made)
        );
        ("evaluations", Obs.Json.Int result.evaluations);
        ("tests_executed", Obs.Json.Int result.tests_executed);
        ("pruned_evals", Obs.Json.Int result.pruned_evals);
        ("cache_hits", Obs.Json.Int result.cache_hits);
        ("compile_count", Obs.Json.Int result.compile_count);
        ("compiled_runs", Obs.Json.Int result.compiled_runs);
        ("batched_runs", Obs.Json.Int result.batched_runs);
        ("batch_prunes", Obs.Json.Int result.batch_prunes);
        ("native_runs", Obs.Json.Int result.native_runs);
        ("encode_count", Obs.Json.Int result.encode_count);
        ("encoder_fallbacks", Obs.Json.Int result.encoder_fallbacks);
        ("worker_respawns", Obs.Json.Int result.worker_respawns);
        ("static_rejects", Obs.Json.Int result.static_rejects);
        ( "stop_reason",
          Obs.Json.String (Control.stop_reason_to_string result.stop_reason) );
        ("elapsed_s", Obs.Json.Float elapsed);
        ( "evals_per_s",
          Obs.Json.Float
            (if elapsed > 0. then
               float_of_int result.evaluations /. elapsed
             else 0.) );
        ("moves", moves_json result.moves);
      ]
  end;
  result

let warm_pub config ~rng ~master_rng ?best_correct init =
  {
    Control.chain = 0;
    seed = config.seed;
    restart = 1;
    iter = 0;
    completed = false;
    rng;
    master_rng;
    cur = Program.with_padding config.padding (Program.instrs init);
    best_correct = Option.map Program.copy best_correct;
    best_overall = Program.copy init;
    proposals_made = 0;
    accepted = 0;
    static_rejects = 0;
    moves_proposed = Array.make 4 0;
    moves_accepted = Array.make 4 0;
    trace_rev = [];
  }

let run ?obs ?progress_every ?control ?chain_id ?resume ctx config =
  run_from ?obs ?progress_every ?control ?chain_id ?resume ctx config
    (Cost.spec ctx).Sandbox.Spec.program

let synthesize ?obs ?progress_every ctx config ~slots =
  if slots <= 0 then invalid_arg "Optimizer.synthesize: need positive slots";
  (* the chain pads its starting program, so an empty program with padding
     [slots] gives exactly [slots] free slots *)
  run_from ?obs ?progress_every ctx
    { config with padding = slots }
    (Program.of_instrs [])
