type config = {
  proposals : int;
  strategy : Strategy.t;
  seed : int64;
  padding : int;
  restarts : int;
  trace_points : int;
  prune : bool;
  engine : Sandbox.Exec.engine;
  static_screen : bool;
}

let default_config =
  {
    proposals = 200_000;
    strategy = Strategy.Mcmc { beta = 1.0 };
    seed = 1L;
    padding = 4;
    restarts = 1;
    trace_points = 60;
    prune = true;
    engine = Sandbox.Exec.Compiled;
    static_screen = true;
  }

type trace_entry = {
  iter : int;
  best_total : float;
  current_total : float;
}

type move_stats = {
  proposed : int array;
  accepted_by_kind : int array;
}

type result = {
  best_correct : Program.t option;
  best_correct_cost : Cost.cost option;
  best_overall : Program.t;
  best_overall_cost : Cost.cost;
  trace : trace_entry list;
  proposals_made : int;
  accepted : int;
  evaluations : int;
  tests_executed : int;
  pruned_evals : int;
  cache_hits : int;
  compile_count : int;
  compiled_runs : int;
  static_rejects : int;
  moves : move_stats;
}

let kind_index = function
  | Transform.Opcode_move -> 0
  | Transform.Operand_move -> 1
  | Transform.Swap_move -> 2
  | Transform.Instruction_move -> 3

(* Logarithmically spaced checkpoints in [1, n]. *)
let checkpoints n count =
  let rec go acc i =
    if i > count then List.rev acc
    else begin
      let v =
        int_of_float
          (Float.pow (float_of_int n) (float_of_int i /. float_of_int count))
      in
      let v = Stdlib.max 1 v in
      match acc with
      | prev :: _ when prev >= v -> go ((prev + 1) :: acc) (i + 1)
      | _ -> go (v :: acc) (i + 1)
    end
  in
  go [] 1

type chain_state = {
  mutable best_correct : Program.t option;
  mutable best_correct_cost : Cost.cost option;
  mutable best_overall : Program.t;
  mutable best_overall_cost : Cost.cost;
  mutable accepted : int;
  mutable proposals_made : int;
  mutable static_rejects : int;
  mutable trace_rev : trace_entry list;
  moves : move_stats;
}

let kind_names =
  [ Transform.Opcode_move; Transform.Operand_move; Transform.Swap_move;
    Transform.Instruction_move ]

let moves_json (moves : move_stats) =
  Obs.Json.Obj
    (List.map
       (fun kind ->
         let i = kind_index kind in
         ( Transform.kind_to_string kind,
           Obs.Json.Obj
             [
               ("proposed", Obs.Json.Int moves.proposed.(i));
               ("accepted", Obs.Json.Int moves.accepted_by_kind.(i));
             ] ))
       kind_names)

(* Counter values at the start of a [run_from], so events report rates and
   totals for this run even when a context is reused. *)
type anchors = {
  t0 : int64;  (** {!Obs.Clock.now_ns} reading *)
  evals0 : int;
  tests0 : int;
  pruned0 : int;
  hits0 : int;
  compiles0 : int;
  cruns0 : int;
}

(* Shared by the log-spaced "checkpoint" and the fixed-cadence "progress"
   events. *)
let emit_point obs name ~chain ~iter ~anchors ctx state ~current_total =
  let elapsed = Obs.Clock.elapsed_s ~since:anchors.t0 in
  let evals = Cost.evaluations ctx - anchors.evals0 in
  Obs.Sink.emit obs name
    [
      ("chain", Obs.Json.Int chain);
      ("iter", Obs.Json.Int iter);
      ("best_total", Obs.Json.Float state.best_overall_cost.Cost.total);
      ("current_total", Obs.Json.Float current_total);
      ("proposals_made", Obs.Json.Int state.proposals_made);
      ("accepted", Obs.Json.Int state.accepted);
      ("evaluations", Obs.Json.Int evals);
      ("tests_executed", Obs.Json.Int (Cost.tests_executed ctx - anchors.tests0));
      ("pruned_evals", Obs.Json.Int (Cost.pruned_evals ctx - anchors.pruned0));
      ("cache_hits", Obs.Json.Int (Cost.cache_hits ctx - anchors.hits0));
      ("compile_count", Obs.Json.Int (Cost.compile_count ctx - anchors.compiles0));
      ("compiled_runs", Obs.Json.Int (Cost.compiled_runs ctx - anchors.cruns0));
      ("static_rejects", Obs.Json.Int state.static_rejects);
      ("elapsed_s", Obs.Json.Float elapsed);
      ( "evals_per_s",
        Obs.Json.Float
          (if elapsed > 0. then float_of_int evals /. elapsed else 0.) );
    ]

let run_chain ~obs ~progress_every ~chain ~anchors ~screen_env ctx pools config
    init g state =
  let cur = Program.with_padding config.padding (Program.instrs init) in
  let cur_cost = ref (Cost.eval_full ctx cur) in
  let note_candidate cost =
    if Cost.correct cost then begin
      let better =
        match state.best_correct_cost with
        | None -> true
        | Some c -> cost.Cost.perf < c.Cost.perf
      in
      if better then begin
        state.best_correct <- Some (Program.copy cur);
        state.best_correct_cost <- Some cost
      end
    end;
    if cost.Cost.total < state.best_overall_cost.Cost.total then begin
      state.best_overall <- Program.copy cur;
      state.best_overall_cost <- cost
    end
  in
  note_candidate !cur_cost;
  let observing = Obs.Sink.enabled obs in
  let marks = ref (checkpoints config.proposals config.trace_points) in
  for iter = 1 to config.proposals do
    state.proposals_made <- state.proposals_made + 1;
    (match Transform.propose g pools cur with
     | None -> ()
     | Some (kind, undo) ->
       state.moves.proposed.(kind_index kind) <-
         state.moves.proposed.(kind_index kind) + 1;
       if
         config.static_screen
         && Analysis.Screen.has_undef_read screen_env cur
       then begin
         (* The proposal reads a location nothing defined: reject before
            any test case runs.  The acceptance-bound RNG draw is skipped,
            so screened and unscreened searches follow different random
            streams — but each is still bit-identical across engine and
            prune settings. *)
         state.static_rejects <- state.static_rejects + 1;
         Transform.undo cur undo
       end
       else begin
       (* Draw the acceptance randomness before evaluating: a proposal is
          accepted iff its total stays within [limit], so any evaluation
          provably exceeding [limit] can abort early — the prune decision
          and the accept decision are the same float comparison, which is
          what makes pruned and unpruned runs bit-identical. *)
       let limit =
         match Strategy.accept_bound config.strategy g ~iter with
         | None -> Float.infinity
         | Some b -> !cur_cost.Cost.total +. b
       in
       let verdict =
         Cost.eval ?cutoff:(if config.prune then Some limit else None) ctx cur
       in
       (match verdict with
        | Cost.Pruned _ -> Transform.undo cur undo
        | Cost.Evaluated proposal_cost ->
          if proposal_cost.Cost.total <= limit then begin
            state.accepted <- state.accepted + 1;
            state.moves.accepted_by_kind.(kind_index kind) <-
              state.moves.accepted_by_kind.(kind_index kind) + 1;
            cur_cost := proposal_cost;
            note_candidate proposal_cost
          end
          else Transform.undo cur undo)
       end);
    (match !marks with
     | m :: rest when iter >= m ->
       state.trace_rev <-
         {
           iter;
           best_total = state.best_overall_cost.Cost.total;
           current_total = !cur_cost.Cost.total;
         }
         :: state.trace_rev;
       marks := rest;
       if observing then
         emit_point obs "checkpoint" ~chain ~iter ~anchors ctx state
           ~current_total:!cur_cost.Cost.total
     | _ -> ());
    (match progress_every with
     | Some n when observing && n > 0 && iter mod n = 0 ->
       emit_point obs "progress" ~chain ~iter ~anchors ctx state
         ~current_total:!cur_cost.Cost.total
     | _ -> ())
  done

let run_from ?(obs = Obs.Sink.null) ?progress_every ctx config init =
  let anchors =
    {
      t0 = Obs.Clock.now_ns ();
      evals0 = Cost.evaluations ctx;
      tests0 = Cost.tests_executed ctx;
      pruned0 = Cost.pruned_evals ctx;
      hits0 = Cost.cache_hits ctx;
      compiles0 = Cost.compile_count ctx;
      cruns0 = Cost.compiled_runs ctx;
    }
  in
  let spec = Cost.spec ctx in
  let pools = Pools.make ~target:spec.Sandbox.Spec.program ~spec in
  let g = Rng.Xoshiro256.create config.seed in
  let init_cost = Cost.eval_full ctx init in
  let state =
    {
      best_correct = None;
      best_correct_cost = None;
      best_overall = Program.copy init;
      best_overall_cost = init_cost;
      accepted = 0;
      proposals_made = 0;
      static_rejects = 0;
      trace_rev = [];
      moves = { proposed = Array.make 4 0; accepted_by_kind = Array.make 4 0 };
    }
  in
  let observing = Obs.Sink.enabled obs in
  if observing then
    Obs.Sink.emit obs "search_start"
      [
        ("proposals", Obs.Json.Int config.proposals);
        ("strategy", Obs.Json.String (Strategy.to_string config.strategy));
        ("seed", Obs.Json.String (Int64.to_string config.seed));
        ("padding", Obs.Json.Int config.padding);
        ("restarts", Obs.Json.Int config.restarts);
        ("trace_points", Obs.Json.Int config.trace_points);
        ("engine", Obs.Json.String (Sandbox.Exec.engine_to_string (Cost.engine ctx)));
        ("static_screen", Obs.Json.Bool config.static_screen);
        ("init_total", Obs.Json.Float init_cost.Cost.total);
      ];
  let screen_env = Analysis.Screen.env_of_spec spec in
  for chain = 1 to Stdlib.max 1 config.restarts do
    if observing then
      Obs.Sink.emit obs "chain_start" [ ("chain", Obs.Json.Int chain) ];
    run_chain ~obs ~progress_every ~chain ~anchors ~screen_env ctx pools config
      init (Rng.Xoshiro256.split g) state
  done;
  let live_out = Sandbox.Spec.live_out_set spec in
  let best_correct =
    Option.map (fun p -> Liveness.dce p ~live_out) state.best_correct
  in
  (* DCE can only remove instructions with no live effect, but re-evaluate
     to keep the reported cost honest. *)
  let best_correct, best_correct_cost =
    match best_correct with
    | None -> (None, None)
    | Some p ->
      let c = Cost.eval_full ctx p in
      if Cost.correct c then (Some p, Some c)
      else (state.best_correct, state.best_correct_cost)
  in
  let result =
    {
      best_correct;
      best_correct_cost;
      best_overall = state.best_overall;
      best_overall_cost = state.best_overall_cost;
      trace = List.rev state.trace_rev;
      proposals_made = state.proposals_made;
      accepted = state.accepted;
      evaluations = Cost.evaluations ctx;
      tests_executed = Cost.tests_executed ctx;
      pruned_evals = Cost.pruned_evals ctx;
      cache_hits = Cost.cache_hits ctx;
      compile_count = Cost.compile_count ctx;
      compiled_runs = Cost.compiled_runs ctx;
      static_rejects = state.static_rejects;
      moves = state.moves;
    }
  in
  if observing then begin
    let elapsed = Obs.Clock.elapsed_s ~since:anchors.t0 in
    let evals = result.evaluations - anchors.evals0 in
    Obs.Sink.emit obs "search_end"
      [
        ("best_correct", Obs.Json.Bool (Option.is_some result.best_correct));
        ( "best_correct_perf",
          match result.best_correct_cost with
          | None -> Obs.Json.Null
          | Some c -> Obs.Json.Float c.Cost.perf );
        ( "best_correct_loc",
          match result.best_correct with
          | None -> Obs.Json.Null
          | Some p -> Obs.Json.Int (Program.length p) );
        ("best_overall_total", Obs.Json.Float result.best_overall_cost.Cost.total);
        ("proposals_made", Obs.Json.Int result.proposals_made);
        ("accepted", Obs.Json.Int result.accepted);
        ( "acceptance_rate",
          Obs.Json.Float
            (if result.proposals_made = 0 then 0.
             else float_of_int result.accepted /. float_of_int result.proposals_made)
        );
        ("evaluations", Obs.Json.Int evals);
        ("tests_executed", Obs.Json.Int (result.tests_executed - anchors.tests0));
        ("pruned_evals", Obs.Json.Int (result.pruned_evals - anchors.pruned0));
        ("cache_hits", Obs.Json.Int (result.cache_hits - anchors.hits0));
        ("compile_count", Obs.Json.Int (result.compile_count - anchors.compiles0));
        ("compiled_runs", Obs.Json.Int (result.compiled_runs - anchors.cruns0));
        ("static_rejects", Obs.Json.Int result.static_rejects);
        ("elapsed_s", Obs.Json.Float elapsed);
        ( "evals_per_s",
          Obs.Json.Float
            (if elapsed > 0. then float_of_int evals /. elapsed else 0.) );
        ("moves", moves_json result.moves);
      ]
  end;
  result

let run ?obs ?progress_every ctx config =
  run_from ?obs ?progress_every ctx config (Cost.spec ctx).Sandbox.Spec.program

let synthesize ?obs ?progress_every ctx config ~slots =
  if slots <= 0 then invalid_arg "Optimizer.synthesize: need positive slots";
  (* the chain pads its starting program, so an empty program with padding
     [slots] gives exactly [slots] free slots *)
  run_from ?obs ?progress_every ctx
    { config with padding = slots }
    (Program.of_instrs [])
