(** η-sweep Pareto frontier with warm-started chains.

    The paper's headline curve (speedup vs η, Figs. 9/10) costs
    |η-grid| × full-search time when every point restarts cold.  This
    driver walks the grid tight-to-loose in {e one} run, seeding each
    η's chain from the neighbouring η's winner via {!Optimizer.run_from}
    with an explicit RNG-state handoff ({!Optimizer.warm_pub}): a rewrite
    that is correct within a tight η is correct within every looser η on
    the same tests, so each warm point starts from an incumbent instead
    of the target and needs only a fraction of the cold budget.

    Validation is interleaved rather than deferred: after each point's
    search, the injected {!validator} hunts for a counterexample; a
    candidate whose validated error exceeds η is {e demoted} — the
    counterexample joins the test set and search resumes from the
    frontier (the still-trusted incumbent) instead of restarting cold.
    Counterexamples also propagate {e backward}: every already-settled
    point is re-checked on the new input at its own η, and a settled
    rewrite the input refutes is evicted back to the target (demotions
    count it, and a [frontier_backprop] event records it) — earlier
    points were validated against a test set that never contained the
    input, so their bounds deserve no more trust than the candidate's.

    The driver lives in [lib/search] and therefore cannot call
    [lib/validate] (dependencies point strictly downward); callers inject
    validation as a closure.  {!Stoke.frontier} wires in the incremental
    MCMC validator; [validator = None] skips validation entirely.

    With [warm = false] the walk degenerates to today's per-point sweep:
    each η runs {!Optimizer.run} cold on the caller's grid order with the
    caller's full budget, no demotion, no RNG threading — bit-identical
    winners to the historical [Stoke.precision_sweep]. *)

type check = {
  observed_err : Ulp.t;  (** largest error the validator observed *)
  refuted : bool;  (** observed error exceeded η *)
  mixed : bool;  (** the validation chain mixed (bound trustworthy) *)
  val_iterations : int;
  counterexample : float array option;
      (** the refuting input, when [refuted] *)
}

type validator = eta:Ulp.t -> Program.t -> check

type proof = {
  sound_ulps : float;  (** certified scaled-ULP bound, ≤ η *)
  boxes_explored : int;  (** branch-and-bound effort behind the proof *)
  depth : int;
}

type prover = eta:Ulp.t -> Program.t -> proof option
(** A sound static analysis: [Some proof] certifies the rewrite's output
    difference is at most [proof.sound_ulps] ≤ η on {e every} in-range
    input, so the point can be promoted without MCMC validation.  Like
    the validator, it is injected by the caller ([lib/search] cannot call
    [lib/verify]); {!Stoke.frontier} wires in {!Verify.Verifier.check}. *)

type point = {
  eta : Ulp.t;
  rewrite : Program.t;
  loc : int;
  latency : int;
  speedup : float;  (** target latency / rewrite latency *)
  validated_err : Ulp.t option;  (** [None] when validation was skipped *)
  warm : bool;  (** seeded from a neighbouring η's winner *)
  proposals_used : int;  (** search proposals spent on this point *)
  demotions : int;  (** validation failures suffered at this point *)
}

type config = {
  search : Optimizer.config;
      (** per-point search configuration; [proposals] is the {e cold}
          per-point budget *)
  warm : bool;  (** warm-start from the neighbouring η (default true) *)
  warm_frac : float;
      (** fraction of [search.proposals] granted to each warm-started
          point (default 0.25); the first point always gets the full
          budget *)
  max_demotions : int;
      (** re-search rounds after a validation failure before falling
          back to the frontier incumbent (default 2) *)
  sweep_back : bool;
      (** after the tight-to-loose walk, sweep back loose-to-tight
          offering each point its looser neighbour's winner (adoption
          needs no proposals: the donor is re-validated at the tighter η
          and adopted only if it survives) *)
}

val default_config : config

type result = {
  points : point list;  (** one per η, in walk order *)
  pareto : point list;
      (** the non-dominated (latency, error-bound) subset of [points],
          latency-ascending *)
  total_proposals : int;  (** search proposals spent across the run *)
  cold_budget : int;  (** |etas| × [search.proposals] for comparison *)
  demotions : int;
  tests_added : int;  (** counterexamples fed back into the test set *)
  promotions : int;
      (** points settled by a sound static proof instead of validation *)
}

val err_bound : point -> Ulp.t
(** The point's validated error when present, else its η budget (search
    guarantees error ≤ η on the test cases only — a weaker bound). *)

val dominates : point -> point -> bool
(** [dominates a b] iff [a] is no worse than [b] on both latency and
    {!err_bound} and strictly better on at least one. *)

val pareto_insert : point list -> point -> point list * point list
(** [pareto_insert set p] is [(set', dropped)]: [p] joins [set] unless a
    member dominates it (or ties it exactly), and members [p] dominates
    move to [dropped].  The returned set never retains a dominated
    point. *)

(** {2 Checkpoint/resume}

    A frontier snapshot records the walk position: completed points, the
    threaded master-RNG state, and the counterexamples added so far.
    Resuming replays none of the finished searches — the walk continues
    at the next η with the exact RNG stream the interrupted run would
    have used.  The fingerprint covers everything trajectory-determining
    {e except} the η grid itself (the completed points are checked to be
    a prefix of the requested walk instead, so a resumed run may extend
    the grid loose-ward). *)

type snapshot = {
  version : int;
  fingerprint : string;
  next : int;  (** index into the walk of the next η to search *)
  carry_rng : int64 array option;  (** threaded master-RNG state *)
  snap_total_proposals : int;
  snap_demotions : int;
  snap_points : point list;  (** completed points, walk order *)
  extra_tests : float array list;
      (** counterexample inputs appended to the test set, oldest first *)
}

val snapshot_version : int

val fingerprint :
  config -> spec:Sandbox.Spec.t -> tests:Sandbox.Testcase.t array -> string

val snapshot_to_json : snapshot -> Obs.Json.t

val snapshot_of_json :
  spec:Sandbox.Spec.t -> Obs.Json.t -> (snapshot, string) Stdlib.result
(** [spec] rebuilds each point's latency/speedup from its rewrite (costs
    are never serialized; recomputation is deterministic). *)

val write_snapshot : path:string -> snapshot -> unit
(** Atomic (tmp + rename), like {!Snapshot.write}. *)

val read_snapshot :
  spec:Sandbox.Spec.t -> path:string -> (snapshot, string) Stdlib.result

val run :
  ?obs:Obs.Sink.t ->
  ?validator:validator ->
  ?prover:prover ->
  ?on_point:(point -> unit) ->
  ?checkpoint:string ->
  ?resume:snapshot ->
  tests:Sandbox.Testcase.t array ->
  etas:Ulp.t list ->
  config ->
  Sandbox.Spec.t ->
  result
(** Walk the grid.  [etas] is sorted tight-to-loose for the warm walk
    and taken in caller order when [config.warm] is false.  [on_point]
    fires after each point settles (promotion or fallback), in walk
    order — the hook for legacy [sweep_point] events and incremental
    printing.  [checkpoint] names a file rewritten atomically after
    every settled point; [resume] continues from a snapshot read back
    with {!read_snapshot} (raises [Invalid_argument] on a fingerprint
    mismatch or when the completed points are not a prefix of this
    walk).  When a [prover] is injected it runs before the validator at
    every settling site; a successful proof settles the point with the
    certified bound as its error, emits a [sound_promotion] event, and
    spends no validation budget.  The snapshot fingerprint carries a
    marker iff a prover is present, so promotion-off runs keep reading
    historical snapshots bit-identically.  Telemetry ([frontier_start],
    [frontier_point], [frontier_promote], [frontier_demote],
    [sound_promotion], [frontier_end] — see [docs/TELEMETRY.md]) never
    changes the result. *)
