type metric =
  | Ulp_metric
  | Abs_metric
  | Rel_metric

type reduction =
  | Max
  | Sum

type perf_model =
  | Sum_latency
  | Critical_path

type params = {
  eta : Ulp.t;
  k : float;
  ws : float;
  metric : metric;
  reduction : reduction;
  perf_model : perf_model;
}

let default_params ~eta =
  { eta; k = 1.0; ws = 1e18; metric = Ulp_metric; reduction = Max;
    perf_model = Sum_latency }

type cost = {
  eq : float;
  perf : float;
  total : float;
  signals : int;
  max_ulp : Ulp.t;
}

type t = {
  spec : Sandbox.Spec.t;
  params : params;
  tests : Sandbox.Testcase.t array;
  expected : Sandbox.Spec.value array array;
      (** per test: target's live-out values ([[||]] on tests where the
          target signalled) *)
  target_signalled : bool array;
      (** per test: did the target fault?  A rewrite fault on such a test
          {e matches} the target (sig term of Eq. 9/11) and costs nothing;
          finishing where the target faulted costs [ws], and vice versa. *)
  order : int array;
      (** evaluation order over [tests]: a permutation maintained
          move-to-front so that the test which most recently triggered a
          cutoff abort runs first.  Per-context, so parallel search domains
          stay independent. *)
  engine : Sandbox.Exec.engine;
  machine : Sandbox.Machine.t;  (** scratch machine, reused per run *)
  pristine : Sandbox.Machine.t;
  batch : Sandbox.Batched.batch option;
      (** the SoA lane batch, built once per context under the batched
          and native engines ([None] otherwise or when there are no
          tests); lane [i] is test [i].  Under the native engine this is
          the per-proposal fallback for forms the encoder can't emit. *)
  nbatch : Sandbox.Native.batch option;
      (** the native worker batch, built once per context under the
          native engine when the platform allows mmap-exec *)
  cache : (int64 * Program.t * cost) option array;
      (** direct-mapped proposal cost cache keyed by {!Program.hash};
          [[||]] when disabled *)
  mutable evaluations : int;
  mutable tests_executed : int;
  mutable pruned_evals : int;
  mutable cache_hits : int;
  mutable compile_count : int;
  mutable compiled_runs : int;
  mutable batched_runs : int;
  mutable batch_prunes : int;
  mutable native_runs : int;
  mutable encode_count : int;
  mutable encoder_fallbacks : int;
}

let spec t = t.spec
let params t = t.params
let tests t = t.tests
let engine t = t.engine
let evaluations t = t.evaluations
let tests_executed t = t.tests_executed
let pruned_evals t = t.pruned_evals
let cache_hits t = t.cache_hits
let compile_count t = t.compile_count
let compiled_runs t = t.compiled_runs
let batched_runs t = t.batched_runs
let batch_prunes t = t.batch_prunes
let native_runs t = t.native_runs
let encode_count t = t.encode_count
let encoder_fallbacks t = t.encoder_fallbacks

let worker_respawns t =
  match t.nbatch with
  | Some nb -> Sandbox.Native.respawns nb
  | None -> 0

let run_on t program tc =
  Sandbox.Machine.restore_from ~src:t.pristine ~dst:t.machine;
  Sandbox.Testcase.apply tc t.machine;
  Sandbox.Exec.run t.machine program

(* Translate the proposal once for the whole test loop.  Under [Interp]
   the "compiled form" is just a thunk over the reference interpreter. *)
let prepare t program : unit -> Sandbox.Exec.result =
  match t.engine with
  | Sandbox.Exec.Interp -> fun () -> Sandbox.Exec.run t.machine program
  | Sandbox.Exec.Compiled ->
    let cp = Sandbox.Compiled.compile t.machine program in
    t.compile_count <- t.compile_count + 1;
    fun () ->
      t.compiled_runs <- t.compiled_runs + 1;
      Sandbox.Compiled.exec cp
  | Sandbox.Exec.Batched | Sandbox.Exec.Native ->
    (* these engines run all lanes at once; [eval] dispatches to them
       before reaching the per-test loop (this thunk is only reachable
       when there are zero tests, where the interpreter is as good as
       anything) *)
    fun () -> Sandbox.Exec.run t.machine program

let run_prepared t run tc =
  Sandbox.Machine.restore_from ~src:t.pristine ~dst:t.machine;
  Sandbox.Testcase.apply tc t.machine;
  run ()

let cache_size = 512

let create ?(use_cache = true) ?(engine = Sandbox.Exec.Compiled) spec params
    tests =
  let machine = Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size () in
  let pristine = Sandbox.Machine.copy machine in
  let t =
    {
      spec;
      params;
      tests;
      expected = [||];
      target_signalled = [||];
      order = Array.init (Array.length tests) Fun.id;
      engine;
      machine;
      pristine;
      batch = None;
      nbatch = None;
      cache = (if use_cache then Array.make cache_size None else [||]);
      evaluations = 0;
      tests_executed = 0;
      pruned_evals = 0;
      cache_hits = 0;
      compile_count = 0;
      compiled_runs = 0;
      batched_runs = 0;
      batch_prunes = 0;
      native_runs = 0;
      encode_count = 0;
      encoder_fallbacks = 0;
    }
  in
  let target_signalled = Array.make (Array.length tests) false in
  let expected =
    Array.mapi
      (fun i tc ->
        let r = run_on t spec.Sandbox.Spec.program tc in
        match r.Sandbox.Exec.outcome with
        | Sandbox.Exec.Finished -> Sandbox.Spec.read_outputs spec t.machine
        | Sandbox.Exec.Faulted _ ->
          target_signalled.(i) <- true;
          [||])
      tests
  in
  let batch =
    (* under Native the batched lanes are the per-proposal fallback for
       programs the encoder can't emit (and the whole-search fallback
       when native execution is unavailable) *)
    match engine with
    | (Sandbox.Exec.Batched | Sandbox.Exec.Native)
      when Array.length tests > 0 ->
      Some (Sandbox.Batched.create_batch pristine tests)
    | _ -> None
  in
  let nbatch =
    match engine with
    | Sandbox.Exec.Native when Array.length tests > 0 ->
      Sandbox.Native.create_batch pristine tests
    | _ -> None
  in
  { t with expected; target_signalled; batch; nbatch }

(* Error between one pair of values, already thresholded by η, as a float. *)
let location_error params expected actual =
  let ulp_fallback () =
    Ulp.to_float (Ulp.sub_clamp (Sandbox.Spec.value_ulp expected actual) params.eta)
  in
  match params.metric with
  | Ulp_metric ->
    let d = Sandbox.Spec.value_ulp expected actual in
    Ulp.to_float (Ulp.sub_clamp d params.eta)
  | Abs_metric ->
    (* Scale into roughly ULP-comparable magnitude so η stays usable:
       1 ULP near 1.0 is ~2e-16 in binary64 (scale 2^52) but ~1.2e-7 in
       binary32 (scale 2^23). *)
    let abs_err scale a b =
      let d = Float.abs (a -. b) in
      let d = if Float.is_nan d then Float.infinity else d in
      Float.max 0. ((d *. scale) -. Ulp.to_float params.eta)
    in
    (match expected, actual with
     | Sandbox.Spec.Vf64 a, Sandbox.Spec.Vf64 b -> abs_err 0x1p52 a b
     | Sandbox.Spec.Vf32 a, Sandbox.Spec.Vf32 b -> abs_err 0x1p23 a b
     | Sandbox.Spec.Vi64 _, _ | _, Sandbox.Spec.Vi64 _ -> ulp_fallback ()
     | (Sandbox.Spec.Vf64 _ | Sandbox.Spec.Vf32 _), _ ->
       invalid_arg "Cost: mismatched value types")
  | Rel_metric ->
    (* 1 ULP of relative error is ~2^-52 in binary64, ~2^-23 in binary32. *)
    let rel_err scale a b =
      if Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) then
        (* Exact match (any bit pattern, including NaN) is zero error —
           in particular when a = b = 0., where (a−b)/a is NaN and the
           old code mapped an exactly-correct value to +∞. *)
        0.
      else if a = 0. then
        (* Zero denominator: relative error is undefined, so score the
           mismatch by ULP distance instead of +∞ (this also makes
           -0. vs 0. free, as it should be). *)
        ulp_fallback ()
      else
        let d = Float.abs ((a -. b) /. a) in
        let d = if Float.is_nan d then Float.infinity else d in
        Float.max 0. ((d *. scale) -. Ulp.to_float params.eta)
    in
    (match expected, actual with
     | Sandbox.Spec.Vf64 a, Sandbox.Spec.Vf64 b -> rel_err 0x1p52 a b
     | Sandbox.Spec.Vf32 a, Sandbox.Spec.Vf32 b -> rel_err 0x1p23 a b
     | Sandbox.Spec.Vi64 _, _ | _, Sandbox.Spec.Vi64 _ -> ulp_fallback ()
     | (Sandbox.Spec.Vf64 _ | Sandbox.Spec.Vf32 _), _ ->
       invalid_arg "Cost: mismatched value types")

type pruned = {
  tests_run : int;
  eq_partial : float;
}

type verdict =
  | Evaluated of cost
  | Pruned of pruned

let move_to_front t pos =
  if pos > 0 then begin
    let ti = t.order.(pos) in
    Array.blit t.order 0 t.order 1 pos;
    t.order.(0) <- ti
  end

let cache_slot t hash = Int64.to_int hash land (Array.length t.cache - 1)

let cache_find t program =
  if Array.length t.cache = 0 then None
  else begin
    let h = Program.hash program in
    match t.cache.(cache_slot t h) with
    | Some (h', p, c) when Int64.equal h h' && Program.equal p program -> Some c
    | _ -> None
  end

let cache_store t program c =
  if Array.length t.cache > 0 then begin
    let h = Program.hash program in
    t.cache.(cache_slot t h) <- Some (h, Program.copy program, c)
  end

exception Prune of int

let eval ?cutoff t program =
  t.evaluations <- t.evaluations + 1;
  match cache_find t program with
  | Some c ->
    t.cache_hits <- t.cache_hits + 1;
    Evaluated c
  | None ->
    let params = t.params in
    let perf =
      match params.perf_model with
      | Sum_latency -> float_of_int (Latency.of_program program)
      | Critical_path -> float_of_int (Critical_path.of_program program)
    in
    let kperf = params.k *. perf in
    (* Aborting early is sound under both reductions.  Under Max the
       running value is the exact eq over the tests scored so far.
       Under Sum every term is ≥ 0 and IEEE round-to-nearest addition is
       monotone, so each partial sum is ≤ the final one computed in the
       same order — and the evaluation order is pinned under Sum (no
       move-to-front below), so "the same order" is exactly what a full
       evaluation uses.  Either way [eq +. kperf > limit] on a prefix
       proves the full total fails the very same floating-point
       comparison the acceptance test makes, so pruned ⟺ rejected. *)
    let limit = match cutoff with Some c -> c | None -> Float.infinity in
    let eq = ref 0. in
    let signals = ref 0 in
    let max_ulp = ref Ulp.zero in
    let combine v =
      match params.reduction with
      | Max -> eq := Float.max !eq v
      | Sum -> eq := !eq +. v
    in
    (* The adaptive test order is only sound where reordering cannot
       change the accumulated value: Max is order-independent, a float
       Sum is not. *)
    let mtf_on_prune pos =
      match params.reduction with
      | Max -> move_to_front t pos
      | Sum -> ()
    in
    let n = Array.length t.tests in
    (* Whole-batch prune record: a lane that faults where the target
       finished contributes ws to eq under either reduction (all terms
       are ≥ 0), so [ws +. kperf > limit] already implies the full
       total fails the acceptance comparison. *)
    let batch_pruned () =
      t.pruned_evals <- t.pruned_evals + 1;
      t.batch_prunes <- t.batch_prunes + 1;
      Pruned { tests_run = n; eq_partial = params.ws }
    in
    (* Shared per-lane readout for whole-batch engines: score every lane
       in adaptive order from its latched fault / output registers. *)
    let lanes_verdict ~fault ~read_outputs =
      let pruned_at =
        try
          for pos = 0 to n - 1 do
            let ti = t.order.(pos) in
            (match fault ~lane:ti with
             | Some _ ->
               incr signals;
               (* a fault only diverges when the target ran to completion *)
               if not t.target_signalled.(ti) then combine params.ws
             | None ->
               if t.target_signalled.(ti) then combine params.ws
               else begin
                 let actual = read_outputs ~lane:ti t.spec in
                 let expected = t.expected.(ti) in
                 let test_err = ref 0. in
                 Array.iteri
                   (fun li e ->
                     let a = actual.(li) in
                     max_ulp := Ulp.max !max_ulp (Sandbox.Spec.value_ulp e a);
                     test_err := !test_err +. location_error params e a)
                   expected;
                 combine !test_err
               end);
            if !eq +. kperf > limit then raise (Prune pos)
          done;
          -1
        with Prune pos -> pos
      in
      if pruned_at >= 0 then begin
        t.pruned_evals <- t.pruned_evals + 1;
        mtf_on_prune pruned_at;
        Pruned { tests_run = n; eq_partial = !eq }
      end
      else begin
        let c =
          { eq = !eq; perf; total = !eq +. kperf; signals = !signals;
            max_ulp = !max_ulp }
        in
        cache_store t program c;
        Evaluated c
      end
    in
    (* Batched: run all lanes through the proposal first, aborting the
       whole batch as soon as latched faults alone prove rejection.
       Output errors are only provable after the run, in the post-run
       readout. *)
    let run_batched b =
      let bp = Sandbox.Batched.compile b program in
      t.compile_count <- t.compile_count + 1;
      Sandbox.Batched.reset b;
      let aborted =
        Sandbox.Batched.exec bp ~on_fault:(fun ~lane _f ->
            (not t.target_signalled.(lane)) && params.ws +. kperf > limit)
      in
      t.batched_runs <- t.batched_runs + n;
      t.tests_executed <- t.tests_executed + n;
      if aborted then batch_pruned ()
      else
        lanes_verdict ~fault:(Sandbox.Batched.fault b)
          ~read_outputs:(Sandbox.Batched.read_outputs b)
    in
    match t.engine, t.batch with
    | Sandbox.Exec.Batched, Some b -> run_batched b
    | Sandbox.Exec.Native, Some b -> begin
      (* Native: ship the encoded proposal through the worker; fall back
         per-proposal to the batched lanes when the encoder can't emit it
         (and for the whole search when the worker couldn't start). *)
      match t.nbatch with
      | None -> run_batched b
      | Some nb ->
        (match Sandbox.Native.compile nb program with
         | None ->
           t.encoder_fallbacks <- t.encoder_fallbacks + 1;
           run_batched b
         | Some np ->
           t.encode_count <- t.encode_count + 1;
           Sandbox.Native.reset nb;
           (* A crashed worker latches a fault on every lane, which the
              readout scores like any other signal. *)
           let (_crashed : bool) = Sandbox.Native.exec np in
           t.native_runs <- t.native_runs + n;
           t.tests_executed <- t.tests_executed + n;
           (* Same abort rule as the batched on_fault callback, applied
              after the run (the worker executes all lanes anyway): any
              faulting lane where the target finished proves rejection
              once ws alone exceeds the cutoff. *)
           let aborted =
             params.ws +. kperf > limit
             && (let diverging = ref false in
                 for lane = 0 to n - 1 do
                   if
                     (not !diverging)
                     && (not t.target_signalled.(lane))
                     && Sandbox.Native.fault nb ~lane <> None
                   then diverging := true
                 done;
                 !diverging)
           in
           if aborted then batch_pruned ()
           else
             lanes_verdict ~fault:(Sandbox.Native.fault nb)
               ~read_outputs:(Sandbox.Native.read_outputs nb))
    end
    | _ ->
      let run = prepare t program in
      let pruned_at =
        try
          for pos = 0 to n - 1 do
            let ti = t.order.(pos) in
            let r = run_prepared t run t.tests.(ti) in
            t.tests_executed <- t.tests_executed + 1;
            (match r.Sandbox.Exec.outcome with
             | Sandbox.Exec.Faulted _ ->
               incr signals;
               (* a fault only diverges when the target ran to completion *)
               if not t.target_signalled.(ti) then combine params.ws
             | Sandbox.Exec.Finished ->
               if t.target_signalled.(ti) then combine params.ws
               else begin
                 let actual = Sandbox.Spec.read_outputs t.spec t.machine in
                 let expected = t.expected.(ti) in
                 let test_err = ref 0. in
                 Array.iteri
                   (fun li e ->
                     let a = actual.(li) in
                     max_ulp := Ulp.max !max_ulp (Sandbox.Spec.value_ulp e a);
                     test_err := !test_err +. location_error params e a)
                   expected;
                 combine !test_err
               end);
            if !eq +. kperf > limit then raise (Prune pos)
          done;
          -1
        with Prune pos -> pos
      in
      if pruned_at >= 0 then begin
        t.pruned_evals <- t.pruned_evals + 1;
        mtf_on_prune pruned_at;
        Pruned { tests_run = pruned_at + 1; eq_partial = !eq }
      end
      else begin
        let c =
          { eq = !eq; perf; total = !eq +. kperf; signals = !signals;
            max_ulp = !max_ulp }
        in
        cache_store t program c;
        Evaluated c
      end

let eval_full t program =
  match eval t program with
  | Evaluated c -> c
  | Pruned _ -> assert false (* no cutoff was given *)

let correct c = c.eq = 0.
