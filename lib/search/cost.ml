type metric =
  | Ulp_metric
  | Abs_metric
  | Rel_metric

type reduction =
  | Max
  | Sum

type perf_model =
  | Sum_latency
  | Critical_path

type params = {
  eta : Ulp.t;
  k : float;
  ws : float;
  metric : metric;
  reduction : reduction;
  perf_model : perf_model;
}

let default_params ~eta =
  { eta; k = 1.0; ws = 1e18; metric = Ulp_metric; reduction = Max;
    perf_model = Sum_latency }

type t = {
  spec : Sandbox.Spec.t;
  params : params;
  tests : Sandbox.Testcase.t array;
  expected : Sandbox.Spec.value array array;
      (** per test: target's live-out values (only for tests where the
          target ran to completion) *)
  target_signalled : bool array;
  machine : Sandbox.Machine.t;  (** scratch machine, reused per run *)
  pristine : Sandbox.Machine.t;
  mutable evaluations : int;
}

let spec t = t.spec
let params t = t.params
let tests t = t.tests
let evaluations t = t.evaluations

let run_on t program tc =
  Sandbox.Machine.restore_from ~src:t.pristine ~dst:t.machine;
  Sandbox.Testcase.apply tc t.machine;
  Sandbox.Exec.run t.machine program

let create spec params tests =
  let machine = Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size () in
  let pristine = Sandbox.Machine.copy machine in
  let t =
    {
      spec;
      params;
      tests;
      expected = [||];
      target_signalled = [||];
      machine;
      pristine;
      evaluations = 0;
    }
  in
  let expected =
    Array.map
      (fun tc ->
        let r = run_on t spec.Sandbox.Spec.program tc in
        match r.Sandbox.Exec.outcome with
        | Sandbox.Exec.Finished -> Sandbox.Spec.read_outputs spec t.machine
        | Sandbox.Exec.Faulted f ->
          invalid_arg
            (Printf.sprintf "Cost.create: target faults on a test case (%s)"
               (Sandbox.Semantics.fault_to_string f)))
      tests
  in
  { t with
    expected;
    target_signalled = Array.map (fun _ -> false) tests
  }

(* Error between one pair of values, already thresholded by η, as a float. *)
let location_error params expected actual =
  match params.metric with
  | Ulp_metric ->
    let d = Sandbox.Spec.value_ulp expected actual in
    Ulp.to_float (Ulp.sub_clamp d params.eta)
  | Abs_metric ->
    (match expected, actual with
     | Sandbox.Spec.Vf64 a, Sandbox.Spec.Vf64 b
     | Sandbox.Spec.Vf32 a, Sandbox.Spec.Vf32 b ->
       let d = Float.abs (a -. b) in
       let d = if Float.is_nan d then Float.infinity else d in
       (* Scale into roughly ULP-comparable magnitude so η stays usable:
          1 ULP near 1.0 is ~2e-16, so multiply by 2^52. *)
       Float.max 0. ((d *. 0x1p52) -. Ulp.to_float params.eta)
     | Sandbox.Spec.Vi64 _, _ | _, Sandbox.Spec.Vi64 _ ->
       Ulp.to_float (Ulp.sub_clamp (Sandbox.Spec.value_ulp expected actual) params.eta)
     | (Sandbox.Spec.Vf64 _ | Sandbox.Spec.Vf32 _), _ ->
       invalid_arg "Cost: mismatched value types")
  | Rel_metric ->
    (match expected, actual with
     | Sandbox.Spec.Vf64 a, Sandbox.Spec.Vf64 b
     | Sandbox.Spec.Vf32 a, Sandbox.Spec.Vf32 b ->
       let d = Float.abs ((a -. b) /. a) in
       let d = if Float.is_nan d then Float.infinity else d in
       (* 1 ULP of relative error is ~2^-52. *)
       Float.max 0. ((d *. 0x1p52) -. Ulp.to_float params.eta)
     | Sandbox.Spec.Vi64 _, _ | _, Sandbox.Spec.Vi64 _ ->
       Ulp.to_float (Ulp.sub_clamp (Sandbox.Spec.value_ulp expected actual) params.eta)
     | (Sandbox.Spec.Vf64 _ | Sandbox.Spec.Vf32 _), _ ->
       invalid_arg "Cost: mismatched value types")

type cost = {
  eq : float;
  perf : float;
  total : float;
  signals : int;
  max_ulp : Ulp.t;
}

let eval t program =
  t.evaluations <- t.evaluations + 1;
  let params = t.params in
  let eq = ref 0. in
  let signals = ref 0 in
  let max_ulp = ref Ulp.zero in
  let combine v =
    match params.reduction with
    | Max -> eq := Float.max !eq v
    | Sum -> eq := !eq +. v
  in
  Array.iteri
    (fun ti tc ->
      let r = run_on t program tc in
      match r.Sandbox.Exec.outcome with
      | Sandbox.Exec.Faulted _ ->
        incr signals;
        combine params.ws
      | Sandbox.Exec.Finished ->
        let actual = Sandbox.Spec.read_outputs t.spec t.machine in
        let expected = t.expected.(ti) in
        let test_err = ref 0. in
        Array.iteri
          (fun li e ->
            let a = actual.(li) in
            max_ulp := Ulp.max !max_ulp (Sandbox.Spec.value_ulp e a);
            test_err := !test_err +. location_error params e a)
          expected;
        combine !test_err)
    t.tests;
  let perf =
    match params.perf_model with
    | Sum_latency -> float_of_int (Latency.of_program program)
    | Critical_path -> float_of_int (Critical_path.of_program program)
  in
  { eq = !eq; perf; total = !eq +. (params.k *. perf); signals = !signals;
    max_ulp = !max_ulp }

let correct c = c.eq = 0.
