(** The paper's cost function (Eq. 2, 9–11).

    [eq_fast] compares the rewrite's live outputs against the target's
    precomputed outputs on every test case, charging
    [max(0, ULP(f_R, f_T) − η)] per live-out location plus a large penalty
    for divergent signal behaviour, and reduces across test cases with
    [max] (§5.2; saturating, so costs never overflow).  The total cost is
    [eq + k·perf] where [perf] is the static latency sum of the rewrite.

    The error metric and the reduction operator are configurable to support
    the ablation benches (ULP vs absolute vs relative error; max vs sum). *)

type metric =
  | Ulp_metric
  | Abs_metric  (** |a−b| scaled into ULP-comparable units *)
  | Rel_metric

type reduction =
  | Max
  | Sum

(** How the [perf] term prices a rewrite. *)
type perf_model =
  | Sum_latency  (** serial latency sum — STOKE's approximation *)
  | Critical_path  (** longest dependence chain ({!Critical_path}) *)

type params = {
  eta : Ulp.t;  (** minimum unacceptable ULP rounding error *)
  k : float;  (** weight of the perf term; 0 = synthesis mode *)
  ws : float;  (** weight of divergent signal behaviour *)
  metric : metric;
  reduction : reduction;
  perf_model : perf_model;
}

val default_params : eta:Ulp.t -> params
(** k = 1.0, ws = 1e18, ULP metric, max reduction, latency-sum perf. *)

type t
(** Evaluation context: spec, test cases, the target's expected outputs, and
    reusable machines. *)

val create : Sandbox.Spec.t -> params -> Sandbox.Testcase.t array -> t

val spec : t -> Sandbox.Spec.t
val params : t -> params
val tests : t -> Sandbox.Testcase.t array

type cost = {
  eq : float;  (** 0 when the rewrite is η-correct on every test *)
  perf : float;
  total : float;
  signals : int;  (** test cases on which the rewrite signalled *)
  max_ulp : Ulp.t;  (** worst per-location ULP error observed *)
}

val eval : t -> Program.t -> cost

val evaluations : t -> int
(** Number of [eval] calls so far (test-case dispatch counting). *)

val correct : cost -> bool
(** [eq = 0.] *)
