(** The paper's cost function (Eq. 2, 9–11), with early termination.

    [eval] compares the rewrite's live outputs against the target's
    precomputed outputs on every test case, charging
    [max(0, ULP(f_R, f_T) − η)] per live-out location plus a large penalty
    for divergent signal behaviour, and reduces across test cases with
    [max] (§5.2; saturating, so costs never overflow).  The total cost is
    [eq + k·perf] where [perf] is the static latency sum of the rewrite.

    Signal behaviour is scored symmetrically: a test where the {e target}
    faults is recorded at {!create}, and a rewrite that faults on the same
    test matches the target — cost 0 — while one that runs to completion
    there diverges and pays [ws].

    Three mechanisms keep the search's inner loop off the test-case
    treadmill, all transparent to results:

    - {b Cutoff}: [eval ?cutoff] aborts the test loop as soon as the
      accumulated [eq] plus the (statically known) perf term provably
      exceeds [cutoff], returning {!Pruned}.  The caller derives the
      cutoff from the acceptance rule (the Metropolis bound
      [c(R) − ln u/β] with the uniform sample drawn up front), so a
      pruned evaluation is exactly a rejected proposal.  Sound under
      both reductions: the running [Max] is exact, and a running [Sum]
      of non-negative terms is a monotone lower bound on the final sum
      computed in the same (pinned, see below) order.  Under the
      batched engine the cutoff also acts at batch granularity: a lane
      fault that provably forces rejection aborts the whole proposal
      mid-run.
    - {b Adaptive test order}: the test that triggered an abort moves to
      the front of a per-context permutation, so discriminating tests run
      first.  Order never changes results — the [Max] reduction is
      order-independent — and contexts share no state across domains.
      Under [Sum] reduction the order stays pinned (reordering a float
      sum could change it), which is also what makes the running-sum
      cutoff a sound lower bound.
    - {b Cost cache}: a small direct-mapped cache keyed by
      {!Program.hash} (verified with [Program.equal], so hits are exact)
      short-circuits re-proposed rewrites without touching the sandbox.

    The error metric and the reduction operator are configurable to support
    the ablation benches (ULP vs absolute vs relative error; max vs sum). *)

type metric =
  | Ulp_metric
  | Abs_metric  (** |a−b| scaled into ULP-comparable units *)
  | Rel_metric
      (** |a−b|/|a| scaled into ULP-comparable units; an exact (bitwise)
          match is zero error, and a zero expected value falls back to the
          ULP metric instead of dividing by zero *)

type reduction =
  | Max
  | Sum

(** How the [perf] term prices a rewrite. *)
type perf_model =
  | Sum_latency  (** serial latency sum — STOKE's approximation *)
  | Critical_path  (** longest dependence chain ({!Critical_path}) *)

type params = {
  eta : Ulp.t;  (** minimum unacceptable ULP rounding error *)
  k : float;  (** weight of the perf term; 0 = synthesis mode *)
  ws : float;  (** weight of divergent signal behaviour *)
  metric : metric;
  reduction : reduction;
  perf_model : perf_model;
}

val default_params : eta:Ulp.t -> params
(** k = 1.0, ws = 1e18, ULP metric, max reduction, latency-sum perf. *)

type t
(** Evaluation context: spec, test cases, the target's expected outputs
    (and fault behaviour), the adaptive test order, the cost cache, and
    reusable machines. *)

val create :
  ?use_cache:bool ->
  ?engine:Sandbox.Exec.engine ->
  Sandbox.Spec.t ->
  params ->
  Sandbox.Testcase.t array ->
  t
(** Runs the target on every test case to record its outputs (or its fault
    behaviour — a faulting target is recorded, not rejected).
    [use_cache] (default [true]) enables the proposal cost cache.
    [engine] (default [Compiled]) selects how proposals execute: the
    compiled engine translates each proposal once ({!Sandbox.Compiled})
    and replays it per test case; the batched engine translates once
    and runs all test cases lane-wise through each instruction
    ({!Sandbox.Batched}); the interpreter steps it afresh every run.
    All three produce bit-identical costs. *)

val spec : t -> Sandbox.Spec.t
val params : t -> params
val tests : t -> Sandbox.Testcase.t array
val engine : t -> Sandbox.Exec.engine

type cost = {
  eq : float;  (** 0 when the rewrite is η-correct on every test *)
  perf : float;
  total : float;
  signals : int;  (** test cases on which the rewrite signalled *)
  max_ulp : Ulp.t;  (** worst per-location ULP error observed *)
}

(** How far a cutoff evaluation got before the partial cost provably
    exceeded the bound. *)
type pruned = {
  tests_run : int;  (** test cases executed before aborting (≥ 1); the
                        batched engine starts every lane, so this is
                        always the full test count there *)
  eq_partial : float;  (** accumulated eq at the abort — a lower bound *)
}

type verdict =
  | Evaluated of cost
  | Pruned of pruned

val eval : ?cutoff:float -> t -> Program.t -> verdict
(** Without [cutoff] this always returns [Evaluated] with the full cost.
    With [cutoff] it returns [Pruned] as soon as [eq + k·perf > cutoff]
    is provable — under [Max] because the running max is exact, under
    [Sum] because a partial sum of non-negative terms accumulated in
    the pinned evaluation order is a monotone lower bound — guaranteeing
    the full total would also exceed [cutoff], bit-for-bit the same
    comparison the caller would make. *)

val eval_full : t -> Program.t -> cost
(** [eval] with no cutoff, unwrapped. *)

val evaluations : t -> int
(** Number of [eval] calls so far (including cache hits). *)

val tests_executed : t -> int
(** Test-case program runs so far (what pruning and caching save). *)

val pruned_evals : t -> int
(** Evaluations aborted early by a cutoff. *)

val cache_hits : t -> int
(** Evaluations answered from the cost cache without running anything. *)

val compile_count : t -> int
(** Proposals translated by the compiled engine (once per evaluated
    proposal; cache hits and the interpreter engine compile nothing). *)

val compiled_runs : t -> int
(** Test-case runs executed through the compiled engine. *)

val batched_runs : t -> int
(** Lane-runs started through the batched engine (test cases × evaluated
    proposals; a batch-aborted lane still counts — it ran). *)

val batch_prunes : t -> int
(** Proposals aborted mid-run at batch granularity (a lane fault alone
    proved rejection).  A subset of {!pruned_evals}. *)

val native_runs : t -> int
(** Lane-runs executed as machine code in the native worker. *)

val encode_count : t -> int
(** Proposals encoded and shipped to the native worker (once per
    evaluated proposal that the encoder accepted). *)

val encoder_fallbacks : t -> int
(** Proposals the native engine handed to the batched fallback because
    some instruction was unencodable or not bit-identical in hardware. *)

val worker_respawns : t -> int
(** Native worker processes respawned after a crash or timeout. *)

val correct : cost -> bool
(** [eq = 0.] *)
