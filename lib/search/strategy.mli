(** Acceptance rules for the four stochastic search procedures compared in
    §6.4: pure random search, greedy hill-climbing, simulated annealing, and
    Metropolis-Hastings MCMC sampling. *)

type t =
  | Mcmc of { beta : float }
      (** Accept with probability min(1, exp(−β·Δc)) — Eq. 4. *)
  | Hill
      (** Accept iff the cost does not increase. *)
  | Anneal of {
      t0 : float;  (** initial temperature *)
      cooling : float;  (** per-iteration multiplicative decay *)
    }
  | Random_walk
      (** Always accept. *)

val accept : t -> Rng.Xoshiro256.t -> iter:int -> delta:float -> bool
(** Should a proposal changing the cost by [delta] be accepted at iteration
    [iter]? *)

val default_anneal : t
(** t0 = 1e12, cooling tuned to decay over ~1e6 iterations. *)

val to_string : t -> string
val of_string : string -> t option
(** Recognizes ["mcmc"], ["hill"], ["anneal"], ["rand"]. *)
