(** Acceptance rules for the four stochastic search procedures compared in
    §6.4: pure random search, greedy hill-climbing, simulated annealing, and
    Metropolis-Hastings MCMC sampling. *)

type t =
  | Mcmc of { beta : float }
      (** Accept with probability min(1, exp(−β·Δc)) — Eq. 4. *)
  | Hill
      (** Accept iff the cost does not increase. *)
  | Anneal of {
      t0 : float;  (** initial temperature *)
      cooling : float;  (** per-iteration multiplicative decay *)
    }
  | Random_walk
      (** Always accept. *)

val accept : t -> Rng.Xoshiro256.t -> iter:int -> delta:float -> bool
(** Should a proposal changing the cost by [delta] be accepted at iteration
    [iter]? *)

val accept_bound : t -> Rng.Xoshiro256.t -> iter:int -> float option
(** Draw the acceptance randomness {e before} cost evaluation and return
    the largest cost increase still accepted at this iteration: the
    proposal is accepted iff [delta <= bound] ([None] means accept
    everything; no randomness is consumed for [Hill] / [Random_walk]).
    For MCMC the bound is [−ln u/β] — the inversion of Eq. 4 — so the
    caller can turn it into an evaluation cutoff [c(R) + bound] and abort
    doomed evaluations early without changing the RNG stream between
    pruned and unpruned runs. *)

val default_anneal : t
(** t0 = 1e12, cooling tuned to decay over ~1e6 iterations. *)

val to_string : t -> string
val of_string : string -> t option
(** Recognizes ["mcmc"], ["hill"], ["anneal"], ["rand"]. *)

val fingerprint : t -> string
(** Like {!to_string} but including the numeric parameters (hex-exact),
    so two strategies fingerprint equal iff they accept identically —
    what {!Snapshot} config fingerprints need. *)
