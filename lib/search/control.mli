(** Shared control plane for cooperative multi-chain search.

    One {!t} is shared by every chain of an orchestrated run (and by the
    orchestrator thread that writes checkpoints).  It carries three things,
    all domain-safe:

    - a {b scoreboard}: the best η-correct perf and best overall total
      published by any chain, updated with lock-free monotonic minimum
      writes;
    - a {b stop flag} with a first-writer-wins reason, set either by a
      {!stop_policy} firing on a scoreboard update or by the wall-clock
      deadline; chains poll it every {!poll_interval} proposals
      ({!Optimizer.run_chain}'s amortized check) and exit cleanly with a
      partial-but-valid result;
    - per-chain {b publication slots}: each chain periodically publishes an
      immutable {!chain_pub} snapshot of its full search state (single
      writer per slot, so a plain atomic store suffices), which is what
      {!Snapshot} serializes for checkpoint/resume.

    Nothing here touches any RNG, so a run with a control plane attached
    and a policy that never fires returns the bit-identical result of the
    same run without one. *)

type stop_policy =
  | Exhaust  (** never stop early: run the full proposal budget *)
  | First_correct
      (** stop every chain once any chain finds an η-correct rewrite
          strictly better (lower total cost) than its starting program.
          The starting program itself never triggers the policy — in
          optimization mode the start {e is} the target, which is always
          correct. *)
  | Cost_below of float
      (** stop once any chain's best overall total drops below the
          threshold (improvements only; the starting cost does not
          trigger). *)

val stop_policy_to_string : stop_policy -> string
val stop_policy_of_string : string -> stop_policy option
(** ["exhaust"], ["first-correct"], ["cost-below:<float>"]. *)

type stop_reason =
  | Exhausted  (** ran the full budget (the default, also pre-stop) *)
  | Policy_satisfied
  | Deadline_hit
  | Cancelled
      (** an external party (e.g. a daemon shutting down or a client
          abandoning its job) called {!request_stop}; the partial result
          and any checkpoint remain valid for a later resume *)

val stop_reason_to_string : stop_reason -> string
val stop_reason_of_string : string -> stop_reason option

(** An immutable snapshot of one chain's search state, captured at a poll
    point.  [trace_rev] is newest-first, as the optimizer accumulates it.
    [rng] / [master_rng] are {!Rng.Xoshiro256.state} words: [rng] drives
    the current restart, [master_rng] seeds the splits for the remaining
    restarts. *)
type chain_pub = {
  chain : int;  (** orchestrator slot (domain index) *)
  seed : int64;  (** this chain's full seed (base + chain) *)
  restart : int;  (** 1-based restart currently running *)
  iter : int;  (** proposals completed within this restart *)
  completed : bool;  (** all restarts exhausted: nothing left to resume *)
  rng : int64 array;
  master_rng : int64 array;
  cur : Program.t;
  best_correct : Program.t option;
  best_overall : Program.t;
  proposals_made : int;
  accepted : int;
  static_rejects : int;
  moves_proposed : int array;
  moves_accepted : int array;
  trace_rev : (int * float * float) list;
      (** (iter, best_total, current_total), newest first *)
}

type t

val create :
  ?deadline_s:float -> stop_when:stop_policy -> chains:int -> unit -> t
(** [deadline_s] is relative to [create] time (monotonic clock). *)

val poll_interval : int
(** How many proposals a chain runs between control polls (a power of
    two, currently 256) — the amortization that keeps the control plane
    off the hot path. *)

val note_best : t -> correct:bool -> total:float -> unit
(** Publish an {e improvement} to the scoreboard and apply the stop
    policy.  Chains call this only when their own best improves, so the
    cost is proportional to progress, not proposals. *)

val best_correct_total : t -> float
(** Lowest total cost of any correct improvement published so far
    ([infinity] if none). *)

val best_total : t -> float
(** Lowest overall total published so far ([infinity] if none). *)

val request_stop : t -> stop_reason -> unit
(** First writer wins; later requests are ignored. *)

val should_stop : t -> bool
(** True once a stop was requested or the deadline has passed (the
    deadline check happens here, so any poller can trip it). *)

val stop_reason : t -> stop_reason option
(** [None] until a stop is requested. *)

val publish : t -> chain_pub -> unit
val published : t -> chain_pub option array
(** A fresh array of the latest publication per slot ([None] if a chain
    has not published yet). *)

val mark_done : t -> chain:int -> unit
(** A chain finished (normally or not).  Idempotence is the caller's
    concern — call exactly once per chain. *)

val mark_crashed : t -> chain:int -> unit
val finished : t -> int
(** Chains that called {!mark_done} — the orchestrator's join-readiness
    count. *)

val crashed : t -> int
