(** Checkpoint/resume serialization for orchestrated searches.

    A snapshot is the JSON image of the control plane's latest per-chain
    publications ({!Control.chain_pub}) plus a {b config fingerprint} — an
    MD5 digest over everything that determines the search trajectory (spec,
    cost params, search config, test cases, domain count).  {!Parallel.run}
    refuses to resume from a snapshot whose fingerprint does not match the
    run it would continue, because a chain's RNG replay is only meaningful
    against the exact same search problem.

    Deliberately {e outside} the fingerprint: [stop_when], [deadline_s],
    and the checkpoint cadence — stopping policy does not alter any chain's
    trajectory, and changing it on resume (e.g. dropping the deadline that
    interrupted the original run) is the point of resuming.  Also outside:
    [prune], [engine], and [trace_points], which are result-transparent by
    construction.

    Programs are serialized slot-exactly (one JSON entry per slot, [null]
    for [Unused]) via the assembly printer and parser, and RNG states and
    seeds as decimal-string int64s — JSON numbers only carry 63-bit OCaml
    ints.  Costs are not serialized at all; the resuming run re-evaluates,
    which is bit-identical because evaluation is deterministic. *)

type t = {
  version : int;
  fingerprint : string;
  domains : int;
  stop_reason : string option;
      (** {!Control.stop_reason_to_string} of the reason the writing run
          stopped, if it had stopped when the snapshot was written *)
  elapsed_s : float;  (** wall-clock seconds the writing run had spent *)
  chains : Control.chain_pub option array;
      (** indexed by chain slot; [None] for a chain that never published *)
}

val current_version : int

val fingerprint :
  spec:Sandbox.Spec.t ->
  params:Cost.params ->
  config:Optimizer.config ->
  tests:Sandbox.Testcase.t array ->
  domains:int ->
  string
(** Hex MD5 over a canonical rendering of every trajectory-determining
    input.  Floats render with [%h] and int64s in full, so two configs
    fingerprint equal iff they search identically. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val json_of_program : Program.t -> Obs.Json.t
(** The slot-exact program encoding used inside snapshots, exposed for
    other checkpoint formats (e.g. {!Frontier.snapshot_to_json}). *)

val parse_program : Obs.Json.t -> (Program.t, string) result
val json_of_rng : int64 array -> Obs.Json.t
val parse_rng : Obs.Json.t -> (int64 array, string) result

val atomic_write_string : path:string -> string -> unit
(** Write [contents] to a staging file private to this writer (pid + a
    process-wide counter, so concurrent writers — even into the same
    directory from several domains or processes — never share a tmp
    name), then rename it over [path].  A reader always sees either the
    old image or a complete new one; the staging file is removed on
    failure.  Shared by {!write}, {!Frontier.write_snapshot}, and the
    serve daemon's job/result files. *)

val write : path:string -> t -> unit
(** Atomic via {!atomic_write_string}: a crash mid-write never leaves a
    torn snapshot behind, and concurrent writers to one [path] cannot
    corrupt each other (last rename wins whole). *)

val read : path:string -> (t, string) result
(** I/O and parse errors both land in [Error]. *)
