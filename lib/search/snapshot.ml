type t = {
  version : int;
  fingerprint : string;
  domains : int;
  stop_reason : string option;
  elapsed_s : float;
  chains : Control.chain_pub option array;
}

let current_version = 1

(* ---------- fingerprint ---------- *)

let frange_str (r : Sandbox.Spec.frange) =
  Printf.sprintf "[%h,%h]" r.Sandbox.Spec.lo r.Sandbox.Spec.hi

let float_input_str = function
  | Sandbox.Spec.Fin_xmm_f64 (x, r) -> "f64:" ^ Reg.xmm_name x ^ frange_str r
  | Sandbox.Spec.Fin_xmm_f32 (x, r) -> "f32:" ^ Reg.xmm_name x ^ frange_str r
  | Sandbox.Spec.Fin_xmm_f32_hi (x, r) ->
    "f32hi:" ^ Reg.xmm_name x ^ frange_str r
  | Sandbox.Spec.Fin_mem_f32 (a, r) ->
    Printf.sprintf "m32:%Ld%s" a (frange_str r)
  | Sandbox.Spec.Fin_mem_f64 (a, r) ->
    Printf.sprintf "m64:%Ld%s" a (frange_str r)

let fixed_input_str = function
  | Sandbox.Spec.Fix_gp (g, v) ->
    Printf.sprintf "gp:%s=%Ld" (Reg.gp_name Reg.Q g) v
  | Sandbox.Spec.Fix_mem (a, bytes) -> Printf.sprintf "mem:%Ld=%s" a bytes

let output_str = function
  | Sandbox.Spec.Out_xmm_f64 x -> "of64:" ^ Reg.xmm_name x
  | Sandbox.Spec.Out_xmm_f32 x -> "of32:" ^ Reg.xmm_name x
  | Sandbox.Spec.Out_xmm_f32_hi x -> "of32hi:" ^ Reg.xmm_name x
  | Sandbox.Spec.Out_gp g -> "ogp:" ^ Reg.gp_name Reg.Q g

let add_program buf (p : Program.t) =
  Array.iter
    (fun slot ->
      match slot with
      | Program.Unused -> Buffer.add_string buf ";_"
      | Program.Active i ->
        Buffer.add_char buf ';';
        Buffer.add_string buf (Instr.to_string i))
    p.Program.slots

let metric_str = function
  | Cost.Ulp_metric -> "ulp"
  | Cost.Abs_metric -> "abs"
  | Cost.Rel_metric -> "rel"

let fingerprint ~spec ~params ~config ~tests ~domains =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "spec=%s" spec.Sandbox.Spec.name;
  add_program buf spec.Sandbox.Spec.program;
  List.iter (fun fi -> add "|%s" (float_input_str fi))
    spec.Sandbox.Spec.float_inputs;
  List.iter (fun fi -> add "|%s" (fixed_input_str fi))
    spec.Sandbox.Spec.fixed_inputs;
  List.iter (fun o -> add "|%s" (output_str o)) spec.Sandbox.Spec.outputs;
  add "|mem=%d" spec.Sandbox.Spec.mem_size;
  add "\nparams=eta:%Ld,k:%h,ws:%h,metric:%s,red:%s,perf:%s"
    params.Cost.eta params.Cost.k params.Cost.ws
    (metric_str params.Cost.metric)
    (match params.Cost.reduction with Cost.Max -> "max" | Cost.Sum -> "sum")
    (match params.Cost.perf_model with
     | Cost.Sum_latency -> "sum_latency"
     | Cost.Critical_path -> "critical_path");
  add "\nconfig=proposals:%d,strategy:%s,seed:%Ld,padding:%d,restarts:%d,screen:%b"
    config.Optimizer.proposals
    (Strategy.fingerprint config.Optimizer.strategy)
    config.Optimizer.seed config.Optimizer.padding config.Optimizer.restarts
    config.Optimizer.static_screen;
  add "\ndomains=%d" domains;
  Array.iter
    (fun (tc : Sandbox.Testcase.t) ->
      Buffer.add_string buf "\ntest=";
      List.iter
        (fun (g, v) -> add "g:%s=%Ld;" (Reg.gp_name Reg.Q g) v)
        tc.Sandbox.Testcase.gps;
      List.iter
        (fun (x, (lo, hi)) ->
          add "x:%s=%Ld:%Ld;" (Reg.xmm_name x) lo hi)
        tc.Sandbox.Testcase.xmms;
      List.iter
        (fun (a, bytes) -> add "m:%Ld=%s;" a bytes)
        tc.Sandbox.Testcase.mem_writes)
    tests;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---------- JSON ---------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let json_of_int64 v = Obs.Json.String (Int64.to_string v)

let int64_of_json = function
  | Obs.Json.String s ->
    (try Int64.of_string s with _ -> bad "bad int64 %S" s)
  | _ -> bad "expected int64 string"

let json_of_program (p : Program.t) =
  Obs.Json.List
    (Array.to_list
       (Array.map
          (function
            | Program.Unused -> Obs.Json.Null
            | Program.Active i -> Obs.Json.String (Instr.to_string i))
          p.Program.slots))

let program_of_json = function
  | Obs.Json.List slots ->
    {
      Program.slots =
        Array.of_list
          (List.map
             (function
               | Obs.Json.Null -> Program.Unused
               | Obs.Json.String s -> (
                 match Parser.parse_instr s with
                 | Ok i -> Program.Active i
                 | Error e -> bad "unparseable instruction %S: %s" s e)
               | _ -> bad "program slot must be null or a string")
             slots);
    }
  | _ -> bad "expected a program (list of slots)"

let json_of_rng s = Obs.Json.List (Array.to_list (Array.map json_of_int64 s))

let rng_of_json = function
  | Obs.Json.List l when List.length l = 4 ->
    Array.of_list (List.map int64_of_json l)
  | _ -> bad "expected a 4-word rng state"

let json_of_ints a =
  Obs.Json.List (Array.to_list (Array.map (fun i -> Obs.Json.Int i) a))

let ints_of_json = function
  | Obs.Json.List l ->
    Array.of_list
      (List.map
         (function Obs.Json.Int i -> i | _ -> bad "expected an int") l)
  | _ -> bad "expected an int list"

let get obj key =
  match Obs.Json.member key obj with
  | Some v -> v
  | None -> bad "missing field %S" key

let to_int = function Obs.Json.Int i -> i | _ -> bad "expected an int"
let to_bool = function Obs.Json.Bool b -> b | _ -> bad "expected a bool"

let json_of_pub (p : Control.chain_pub) =
  Obs.Json.Obj
    [
      ("chain", Obs.Json.Int p.Control.chain);
      ("seed", json_of_int64 p.Control.seed);
      ("restart", Obs.Json.Int p.Control.restart);
      ("iter", Obs.Json.Int p.Control.iter);
      ("completed", Obs.Json.Bool p.Control.completed);
      ("rng", json_of_rng p.Control.rng);
      ("master_rng", json_of_rng p.Control.master_rng);
      ("cur", json_of_program p.Control.cur);
      ( "best_correct",
        match p.Control.best_correct with
        | None -> Obs.Json.Null
        | Some prog -> json_of_program prog );
      ("best_overall", json_of_program p.Control.best_overall);
      ("proposals_made", Obs.Json.Int p.Control.proposals_made);
      ("accepted", Obs.Json.Int p.Control.accepted);
      ("static_rejects", Obs.Json.Int p.Control.static_rejects);
      ("moves_proposed", json_of_ints p.Control.moves_proposed);
      ("moves_accepted", json_of_ints p.Control.moves_accepted);
      ( "trace_rev",
        Obs.Json.List
          (List.map
             (fun (i, b, c) ->
               Obs.Json.List
                 [ Obs.Json.Int i; Obs.Json.Float b; Obs.Json.Float c ])
             p.Control.trace_rev) );
    ]

let pub_of_json j =
  let f = get j in
  {
    Control.chain = to_int (f "chain");
    seed = int64_of_json (f "seed");
    restart = to_int (f "restart");
    iter = to_int (f "iter");
    completed = to_bool (f "completed");
    rng = rng_of_json (f "rng");
    master_rng = rng_of_json (f "master_rng");
    cur = program_of_json (f "cur");
    best_correct =
      (match f "best_correct" with
       | Obs.Json.Null -> None
       | p -> Some (program_of_json p));
    best_overall = program_of_json (f "best_overall");
    proposals_made = to_int (f "proposals_made");
    accepted = to_int (f "accepted");
    static_rejects = to_int (f "static_rejects");
    moves_proposed = ints_of_json (f "moves_proposed");
    moves_accepted = ints_of_json (f "moves_accepted");
    trace_rev =
      (match f "trace_rev" with
       | Obs.Json.List l ->
         List.map
           (function
             | Obs.Json.List [ i; b; c ] -> (
               match
                 ( i,
                   Obs.Json.to_float_opt b,
                   Obs.Json.to_float_opt c )
               with
               | Obs.Json.Int i, Some b, Some c -> (i, b, c)
               | _ -> bad "bad trace entry")
             | _ -> bad "bad trace entry")
           l
       | _ -> bad "expected a trace list");
  }

let to_json t =
  Obs.Json.Obj
    [
      ("version", Obs.Json.Int t.version);
      ("fingerprint", Obs.Json.String t.fingerprint);
      ("domains", Obs.Json.Int t.domains);
      ( "stop_reason",
        match t.stop_reason with
        | None -> Obs.Json.Null
        | Some r -> Obs.Json.String r );
      ("elapsed_s", Obs.Json.Float t.elapsed_s);
      ( "chains",
        Obs.Json.List
          (Array.to_list
             (Array.map
                (function None -> Obs.Json.Null | Some p -> json_of_pub p)
                t.chains)) );
    ]

let of_json j =
  try
    let f = get j in
    let version = to_int (f "version") in
    if version <> current_version then
      bad "snapshot version %d, this build reads %d" version current_version;
    let fingerprint =
      match f "fingerprint" with
      | Obs.Json.String s -> s
      | _ -> bad "expected a fingerprint string"
    in
    let domains = to_int (f "domains") in
    let stop_reason =
      match f "stop_reason" with
      | Obs.Json.Null -> None
      | Obs.Json.String s -> Some s
      | _ -> bad "expected a stop_reason string or null"
    in
    let elapsed_s =
      match Obs.Json.to_float_opt (f "elapsed_s") with
      | Some v -> v
      | None -> bad "expected elapsed_s"
    in
    let chains =
      match f "chains" with
      | Obs.Json.List l ->
        Array.of_list
          (List.map
             (function Obs.Json.Null -> None | p -> Some (pub_of_json p))
             l)
      | _ -> bad "expected a chains list"
    in
    if Array.length chains <> domains then
      bad "chains array length %d does not match domains %d"
        (Array.length chains) domains;
    Ok { version; fingerprint; domains; stop_reason; elapsed_s; chains }
  with Bad msg -> Error msg

let parse_program j = try Ok (program_of_json j) with Bad m -> Error m
let parse_rng j = try Ok (rng_of_json j) with Bad m -> Error m

(* ---------- I/O ---------- *)

(* The tmp name must be unique per writer: a fixed [path ^ ".tmp"] lets
   two concurrent checkpoints (two daemon jobs, or two processes sharing
   a snapshot directory) open the same tmp file, interleave their bytes,
   and rename a half-written or foreign image into place.  pid + a
   process-wide counter makes the staging file private to this write;
   the final rename is the one atomic step. *)
let tmp_counter = Atomic.make 0

let atomic_write_string ~path contents =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc contents)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write ~path t =
  atomic_write_string ~path (Obs.Json.to_string (to_json t) ^ "\n")

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error (path ^ ": truncated snapshot")
  | contents -> (
    match Obs.Json.of_string (String.trim contents) with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok j -> of_json j)
