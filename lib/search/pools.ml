module Xset = Set.Make (struct
  type t = Reg.xmm

  let compare = Reg.compare_xmm
end)

module Gset = Set.Make (struct
  type t = Reg.gp

  let compare = Reg.compare_gp
end)

module I64set = Set.Make (Int64)

type t = {
  gp32 : Operand.t array;
  gp64 : Operand.t array;
  xmm : Operand.t array;
  imm8 : Operand.t array;
  imm32 : Operand.t array;
  imm64 : Operand.t array;
  mem32 : Operand.t array;
  mem64 : Operand.t array;
  mem128 : Operand.t array;
  opcodes : Opcode.t array;  (** opcodes with every shape-kind instantiable *)
}

let scratch_gps = [ Reg.Rax; Reg.Rcx; Reg.Rdx ]
let scratch_xmms = [ Reg.Xmm0; Reg.Xmm1; Reg.Xmm2; Reg.Xmm3; Reg.Xmm4; Reg.Xmm5 ]

let collect target spec =
  let gps = ref (Gset.of_list scratch_gps) in
  let xmms = ref (Xset.of_list scratch_xmms) in
  let imm8s = ref (I64set.of_list [ 0L; 1L; 2L; 32L; 52L; 63L ]) in
  let imm32s = ref (I64set.of_list [ 0L; 1L; 2L; 1023L ]) in
  let imm64s = ref I64set.empty in
  let mems = ref [] in
  let add_operand o =
    match o with
    | Operand.Gp r -> gps := Gset.add r !gps
    | Operand.Xmm r -> xmms := Xset.add r !xmms
    | Operand.Imm v ->
      if Int64.compare v 0L >= 0 && Int64.compare v 255L <= 0 then
        imm8s := I64set.add v !imm8s;
      if Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0
      then imm32s := I64set.add v !imm32s;
      imm64s := I64set.add v !imm64s
    | Operand.Mem m ->
      Option.iter (fun r -> gps := Gset.add r !gps) m.Operand.base;
      Option.iter (fun (r, _) -> gps := Gset.add r !gps) m.Operand.index;
      if not (List.exists (Operand.equal_mem m) !mems) then mems := m :: !mems
  in
  List.iter
    (fun (i : Instr.t) -> Array.iter add_operand i.Instr.operands)
    (Program.instrs target);
  (* Registers carrying live-in values must be available as operands. *)
  List.iter
    (fun fi ->
      match fi with
      | Sandbox.Spec.Fin_xmm_f64 (r, _)
      | Sandbox.Spec.Fin_xmm_f32 (r, _)
      | Sandbox.Spec.Fin_xmm_f32_hi (r, _) ->
        xmms := Xset.add r !xmms
      | Sandbox.Spec.Fin_mem_f32 _ | Sandbox.Spec.Fin_mem_f64 _ -> ())
    spec.Sandbox.Spec.float_inputs;
  List.iter
    (fun fx ->
      match fx with
      | Sandbox.Spec.Fix_gp (r, _) -> gps := Gset.add r !gps
      | Sandbox.Spec.Fix_mem _ -> ())
    spec.Sandbox.Spec.fixed_inputs;
  (!gps, !xmms, !imm8s, !imm32s, !imm64s, !mems)

let make ~target ~spec =
  let gps, xmms, imm8s, imm32s, imm64s, mems = collect target spec in
  let gp_ops = Gset.elements gps |> List.map (fun r -> Operand.Gp r) in
  let pools_no_ops =
    {
      gp32 = Array.of_list gp_ops;
      gp64 = Array.of_list gp_ops;
      xmm = Array.of_list (Xset.elements xmms |> List.map (fun r -> Operand.Xmm r));
      imm8 = Array.of_list (I64set.elements imm8s |> List.map (fun v -> Operand.Imm v));
      imm32 =
        Array.of_list (I64set.elements imm32s |> List.map (fun v -> Operand.Imm v));
      imm64 =
        Array.of_list
          ((I64set.elements imm64s |> List.map (fun v -> Operand.Imm v))
          @ [ Operand.Imm 0L ]);
      mem32 = Array.of_list (List.map (fun m -> Operand.Mem m) mems);
      mem64 = Array.of_list (List.map (fun m -> Operand.Mem m) mems);
      mem128 = Array.of_list (List.map (fun m -> Operand.Mem m) mems);
      opcodes = [||];
    }
  in
  let kind_pool p (k : Shape.kind) =
    match k with
    | Shape.K_gp Reg.L -> p.gp32
    | Shape.K_gp Reg.Q -> p.gp64
    | Shape.K_xmm -> p.xmm
    | Shape.K_imm8 -> p.imm8
    | Shape.K_imm32 -> p.imm32
    | Shape.K_imm64 -> p.imm64
    | Shape.K_mem Shape.M32 -> p.mem32
    | Shape.K_mem Shape.M64 -> p.mem64
    | Shape.K_mem Shape.M128 -> p.mem128
  in
  let shape_instantiable p shape =
    Array.for_all (fun k -> Array.length (kind_pool p k) > 0) shape
  in
  let opcodes =
    List.filter
      (fun op -> List.exists (shape_instantiable pools_no_ops) (Shape.shapes op))
      Opcode.all
    |> Array.of_list
  in
  { pools_no_ops with opcodes }

let operands_of_kind t (k : Shape.kind) =
  match k with
  | Shape.K_gp Reg.L -> t.gp32
  | Shape.K_gp Reg.Q -> t.gp64
  | Shape.K_xmm -> t.xmm
  | Shape.K_imm8 -> t.imm8
  | Shape.K_imm32 -> t.imm32
  | Shape.K_imm64 -> t.imm64
  | Shape.K_mem Shape.M32 -> t.mem32
  | Shape.K_mem Shape.M64 -> t.mem64
  | Shape.K_mem Shape.M128 -> t.mem128

let shape_instantiable t shape =
  Array.for_all (fun k -> Array.length (operands_of_kind t k) > 0) shape

let opcodes_with_shape t shape =
  Array.to_list t.opcodes
  |> List.filter (fun op ->
         List.exists (fun s -> Shape.equal_shape s shape) (Shape.shapes op))
  |> Array.of_list

let all_opcodes t = t.opcodes

let random_instr g t =
  let op = Rng.Dist.choose g t.opcodes in
  let candidates = List.filter (shape_instantiable t) (Shape.shapes op) in
  let shape = Rng.Dist.choose_list g candidates in
  let operands =
    Array.map (fun k -> Rng.Dist.choose g (operands_of_kind t k)) shape
  in
  Instr.make_unchecked op operands
