type check = {
  observed_err : Ulp.t;
  refuted : bool;
  mixed : bool;
  val_iterations : int;
  counterexample : float array option;
}

type validator = eta:Ulp.t -> Program.t -> check

type proof = {
  sound_ulps : float;
  boxes_explored : int;
  depth : int;
}

type prover = eta:Ulp.t -> Program.t -> proof option

type point = {
  eta : Ulp.t;
  rewrite : Program.t;
  loc : int;
  latency : int;
  speedup : float;
  validated_err : Ulp.t option;
  warm : bool;
  proposals_used : int;
  demotions : int;
}

type config = {
  search : Optimizer.config;
  warm : bool;
  warm_frac : float;
  max_demotions : int;
  sweep_back : bool;
}

let default_config =
  {
    search = Optimizer.default_config;
    warm = true;
    warm_frac = 0.25;
    max_demotions = 2;
    sweep_back = false;
  }

type result = {
  points : point list;
  pareto : point list;
  total_proposals : int;
  cold_budget : int;
  demotions : int;
  tests_added : int;
  promotions : int;
}

(* ---------- Pareto set ---------- *)

let err_bound p =
  match p.validated_err with
  | Some e -> e
  | None -> p.eta

let dominates a b =
  let ec = Ulp.compare (err_bound a) (err_bound b) in
  a.latency <= b.latency && ec <= 0 && (a.latency < b.latency || ec < 0)

let pareto_insert set p =
  let beaten q =
    (* an exact (latency, err) tie also keeps the incumbent: inserting a
       duplicate pair would let two copies "survive" each other *)
    dominates q p || (q.latency = p.latency && Ulp.compare (err_bound q) (err_bound p) = 0)
  in
  if List.exists beaten set then (set, [ p ])
  else begin
    let kept, dropped = List.partition (fun q -> not (dominates p q)) set in
    (p :: kept, dropped)
  end

let pareto_of points =
  let set = List.fold_left (fun s p -> fst (pareto_insert s p)) [] points in
  List.sort (fun a b -> compare a.latency b.latency) set

(* ---------- snapshot ---------- *)

type snapshot = {
  version : int;
  fingerprint : string;
  next : int;
  carry_rng : int64 array option;
  snap_total_proposals : int;
  snap_demotions : int;
  snap_points : point list;
  extra_tests : float array list;
}

let snapshot_version = 1

let fingerprint cfg ~spec ~tests =
  (* The base digest covers spec, search config, and the base test set;
     params are pinned at η = 0 because each walk point rebuilds its own
     params from its η — the grid itself stays outside the fingerprint so
     a resumed run may extend it (completed points are prefix-checked
     structurally instead). *)
  let base =
    Snapshot.fingerprint ~spec
      ~params:(Cost.default_params ~eta:0L)
      ~config:cfg.search ~tests ~domains:1
  in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "frontier|%s|warm:%b|frac:%h|demote:%d|back:%b" base
          cfg.warm cfg.warm_frac cfg.max_demotions cfg.sweep_back))

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let json_of_eta (e : Ulp.t) = Obs.Json.String (Int64.to_string e)

let eta_of_json = function
  | Obs.Json.String s ->
    (try Int64.of_string s with _ -> bad "bad eta %S" s)
  | _ -> bad "expected an eta string"

let json_of_point p =
  Obs.Json.Obj
    [
      ("eta", json_of_eta p.eta);
      ("rewrite", Snapshot.json_of_program p.rewrite);
      ( "validated_err",
        match p.validated_err with
        | None -> Obs.Json.Null
        | Some e -> json_of_eta e );
      ("warm", Obs.Json.Bool p.warm);
      ("proposals_used", Obs.Json.Int p.proposals_used);
      ("demotions", Obs.Json.Int p.demotions);
    ]

let get obj key =
  match Obs.Json.member key obj with
  | Some v -> v
  | None -> bad "missing field %S" key

let to_int = function Obs.Json.Int i -> i | _ -> bad "expected an int"
let to_bool = function Obs.Json.Bool b -> b | _ -> bad "expected a bool"

let point_of_json ~target_latency j =
  let f = get j in
  let rewrite =
    match Snapshot.parse_program (f "rewrite") with
    | Ok p -> p
    | Error e -> bad "%s" e
  in
  let latency = Latency.of_program rewrite in
  {
    eta = eta_of_json (f "eta");
    rewrite;
    loc = Program.length rewrite;
    latency;
    speedup = float_of_int target_latency /. float_of_int (Stdlib.max 1 latency);
    validated_err =
      (match f "validated_err" with
       | Obs.Json.Null -> None
       | e -> Some (eta_of_json e));
    warm = to_bool (f "warm");
    proposals_used = to_int (f "proposals_used");
    demotions = to_int (f "demotions");
  }

let snapshot_to_json s =
  Obs.Json.Obj
    [
      ("version", Obs.Json.Int s.version);
      ("fingerprint", Obs.Json.String s.fingerprint);
      ("next", Obs.Json.Int s.next);
      ( "carry_rng",
        match s.carry_rng with
        | None -> Obs.Json.Null
        | Some r -> Snapshot.json_of_rng r );
      ("total_proposals", Obs.Json.Int s.snap_total_proposals);
      ("demotions", Obs.Json.Int s.snap_demotions);
      ("points", Obs.Json.List (List.map json_of_point s.snap_points));
      ( "extra_tests",
        Obs.Json.List
          (List.map
             (fun xs ->
               Obs.Json.List
                 (Array.to_list (Array.map (fun x -> Obs.Json.Float x) xs)))
             s.extra_tests) );
    ]

let snapshot_of_json ~spec j =
  try
    let f = get j in
    let version = to_int (f "version") in
    if version <> snapshot_version then
      bad "frontier snapshot version %d, this build reads %d" version
        snapshot_version;
    let fingerprint =
      match f "fingerprint" with
      | Obs.Json.String s -> s
      | _ -> bad "expected a fingerprint string"
    in
    let target_latency =
      Latency.of_program spec.Sandbox.Spec.program
    in
    Ok
      {
        version;
        fingerprint;
        next = to_int (f "next");
        carry_rng =
          (match f "carry_rng" with
           | Obs.Json.Null -> None
           | r -> (
             match Snapshot.parse_rng r with
             | Ok a -> Some a
             | Error e -> bad "%s" e));
        snap_total_proposals = to_int (f "total_proposals");
        snap_demotions = to_int (f "demotions");
        snap_points =
          (match f "points" with
           | Obs.Json.List l -> List.map (point_of_json ~target_latency) l
           | _ -> bad "expected a points list");
        extra_tests =
          (match f "extra_tests" with
           | Obs.Json.List l ->
             List.map
               (function
                 | Obs.Json.List xs ->
                   Array.of_list
                     (List.map
                        (fun x ->
                          match Obs.Json.to_float_opt x with
                          | Some v -> v
                          | None -> bad "bad test input")
                        xs)
                 | _ -> bad "expected a test input list")
               l
           | _ -> bad "expected an extra_tests list");
      }
  with Bad msg -> Error msg

let write_snapshot ~path s =
  Snapshot.atomic_write_string ~path
    (Obs.Json.to_string (snapshot_to_json s) ^ "\n")

let read_snapshot ~spec ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error (path ^ ": truncated snapshot")
  | contents -> (
    match Obs.Json.of_string (String.trim contents) with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok j -> snapshot_of_json ~spec j)

(* ---------- the walk ---------- *)

let run ?(obs = Obs.Sink.null) ?validator ?prover ?on_point ?checkpoint
    ?resume ~tests ~etas cfg spec =
  let observing = Obs.Sink.enabled obs in
  let search = cfg.search in
  let walk =
    if cfg.warm then List.sort Ulp.compare etas else etas
  in
  let walk_arr = Array.of_list walk in
  let n = Array.length walk_arr in
  let target = spec.Sandbox.Spec.program in
  let target_latency = Latency.of_program target in
  let fp =
    (* the marker keeps pre-existing snapshots readable when promotion is
       off, while refusing to resume across the promotion boundary *)
    match prover with
    | None -> fingerprint cfg ~spec ~tests
    | Some _ -> fingerprint cfg ~spec ~tests ^ "|sound-promote"
  in
  (* walk state, possibly restored from a snapshot *)
  let start_idx, carry, points_rev, total_proposals, demotions_total,
      extra_tests =
    match resume with
    | None -> (0, ref None, ref [], ref 0, ref 0, ref [])
    | Some s ->
      if s.fingerprint <> fp then
        invalid_arg "Frontier.run: snapshot fingerprint mismatch";
      if s.next > n then
        invalid_arg "Frontier.run: snapshot walked past this grid";
      List.iteri
        (fun i (p : point) ->
          if i < s.next && Ulp.compare p.eta walk_arr.(i) <> 0 then
            invalid_arg
              "Frontier.run: snapshot points are not a prefix of this grid")
        s.snap_points;
      ( s.next,
        ref s.carry_rng,
        ref (List.rev s.snap_points),
        ref s.snap_total_proposals,
        ref s.snap_demotions,
        ref (List.rev s.extra_tests) (* newest-first internally *) )
  in
  let tests_added = ref (List.length !extra_tests) in
  let current_tests () =
    Array.append tests
      (Array.of_list
         (List.rev_map (Sandbox.Spec.testcase_of_floats spec) !extra_tests))
  in
  let make_ctx ~eta =
    Cost.create ~use_cache:search.Optimizer.prune
      ~engine:search.Optimizer.engine spec
      (Cost.default_params ~eta)
      (current_tests ())
  in
  let warm_budget =
    Stdlib.max 1
      (int_of_float
         (cfg.warm_frac *. float_of_int search.Optimizer.proposals))
  in
  let cold_budget = n * search.Optimizer.proposals in
  if observing then
    Obs.Sink.emit obs "frontier_start"
      [
        ("etas", Obs.Json.Int n);
        ("warm", Obs.Json.Bool cfg.warm);
        ("proposals_per_point", Obs.Json.Int search.Optimizer.proposals);
        ("warm_budget", Obs.Json.Int warm_budget);
        ("max_demotions", Obs.Json.Int cfg.max_demotions);
        ("sweep_back", Obs.Json.Bool cfg.sweep_back);
        ("validating", Obs.Json.Bool (Option.is_some validator));
        ("resumed_points", Obs.Json.Int start_idx);
      ];
  let emit_point ~pass (p : point) =
    if observing then
      Obs.Sink.emit obs "frontier_point"
        [
          ("eta", Obs.Json.String (Ulp.to_string p.eta));
          ("pass", Obs.Json.String pass);
          ("warm", Obs.Json.Bool p.warm);
          ("loc", Obs.Json.Int p.loc);
          ("latency", Obs.Json.Int p.latency);
          ("speedup", Obs.Json.Float p.speedup);
          ( "validated_err_ulps",
            match p.validated_err with
            | None -> Obs.Json.Null
            | Some e -> Obs.Json.Float (Ulp.to_float e) );
          ("proposals_used", Obs.Json.Int p.proposals_used);
          ("demotions", Obs.Json.Int p.demotions);
        ]
  in
  let promotions = ref 0 in
  (* A sound static proof of η-closeness settles the point without
     spending any MCMC validation budget; the certified bound stands in
     for the validated error (rounded up to stay a bound). *)
  let try_prove ~eta rewrite =
    match prover with
    | None -> None
    | Some pv ->
      (match pv ~eta rewrite with
       | None -> None
       | Some pr ->
         incr promotions;
         if observing then
           Obs.Sink.emit obs "sound_promotion"
             [
               ("eta", Obs.Json.String (Ulp.to_string eta));
               ("sound_ulps", Obs.Json.Float pr.sound_ulps);
               ("boxes_explored", Obs.Json.Int pr.boxes_explored);
               ("depth", Obs.Json.Int pr.depth);
             ];
         Some (Ulp.of_float (Float.ceil pr.sound_ulps)))
  in
  let pareto = ref (pareto_of (List.rev !points_rev)) in
  let promote (p : point) =
    let set, dropped = pareto_insert !pareto p in
    pareto := set;
    if observing then
      Obs.Sink.emit obs "frontier_promote"
        [
          ("eta", Obs.Json.String (Ulp.to_string p.eta));
          ("latency", Obs.Json.Int p.latency);
          ("err_bound_ulps", Obs.Json.Float (Ulp.to_float (err_bound p)));
          ("pareto_size", Obs.Json.Int (List.length set));
          ("dropped", Obs.Json.Int (List.length dropped));
        ]
  in
  let mk_point ~eta ~warm ~proposals_used ~demotions ~validated_err rewrite =
    let latency = Latency.of_program rewrite in
    {
      eta;
      rewrite;
      loc = Program.length rewrite;
      latency;
      speedup =
        float_of_int target_latency /. float_of_int (Stdlib.max 1 latency);
      validated_err;
      warm;
      proposals_used;
      demotions;
    }
  in
  let settle ~idx (p : point) =
    points_rev := p :: !points_rev;
    promote p;
    emit_point ~pass:"forward" p;
    (match on_point with Some f -> f p | None -> ());
    match checkpoint with
    | None -> ()
    | Some path ->
      write_snapshot ~path
        {
          version = snapshot_version;
          fingerprint = fp;
          next = idx + 1;
          carry_rng = !carry;
          snap_total_proposals = !total_proposals;
          snap_demotions = !demotions_total;
          snap_points = List.rev !points_rev;
          extra_tests = List.rev !extra_tests;
        }
  in
  (* pick mirrors the historical sweep's fallback: keep the best η-correct
     rewrite only when it is no slower than the target *)
  let pick (r : Optimizer.result) =
    match r.Optimizer.best_correct with
    | Some p when Latency.of_program p <= target_latency -> p
    | _ -> target
  in
  let control_for c =
    Control.create ?deadline_s:c.Optimizer.deadline_s
      ~stop_when:c.Optimizer.stop_when ~chains:1 ()
  in
  let harvest control ~fallback =
    carry :=
      Some
        (match (Control.published control).(0) with
         | Some pub -> pub.Control.master_rng
         | None -> fallback)
  in
  if cfg.warm then begin
    (* tight-to-loose walk with warm-started chains *)
    let seed_prog = ref target in
    let seed_validated = ref (Some 0L) in
    (match List.rev !points_rev with
     | [] -> ()
     | ps ->
       let last = List.nth ps (List.length ps - 1) in
       seed_prog := last.rewrite;
       seed_validated := last.validated_err);
    (* A counterexample found at a looser η refutes more than the current
       candidate: an earlier settled point was validated against a test
       set that never contained this input, so its bound may be just as
       fictional.  Re-check every settled rewrite on the new input at its
       own η and evict the refuted ones back to the target (exact by
       construction) — hardening only later points would leave the
       frontier carrying points a known input disproves. *)
    let backprop xs =
      let tc = [| Sandbox.Spec.testcase_of_floats spec xs |] in
      let changed = ref false in
      points_rev :=
        List.map
          (fun (p : point) ->
            if Program.equal p.rewrite target then p
            else begin
              let ctx =
                Cost.create ~use_cache:false
                  ~engine:search.Optimizer.engine spec
                  (Cost.default_params ~eta:p.eta)
                  tc
              in
              if Cost.correct (Cost.eval_full ctx p.rewrite) then p
              else begin
                changed := true;
                incr demotions_total;
                if observing then
                  Obs.Sink.emit obs "frontier_backprop"
                    [
                      ("eta", Obs.Json.String (Ulp.to_string p.eta));
                      ("latency", Obs.Json.Int p.latency);
                      ( "input",
                        Obs.Json.List
                          (Array.to_list
                             (Array.map (fun x -> Obs.Json.Float x) xs)) );
                    ];
                mk_point ~eta:p.eta ~warm:p.warm
                  ~proposals_used:p.proposals_used
                  ~demotions:(p.demotions + 1) ~validated_err:(Some 0L)
                  target
              end
            end)
          !points_rev;
      if !changed then begin
        pareto := pareto_of (List.rev !points_rev);
        match !points_rev with
        | [] -> ()
        | last :: _ ->
          seed_prog := last.rewrite;
          seed_validated := last.validated_err
      end
    in
    for idx = start_idx to n - 1 do
      let eta = walk_arr.(idx) in
      let used = ref 0 in
      let point_demotions = ref 0 in
      let search_once () =
        let budget =
          match !carry with
          | None -> search.Optimizer.proposals
          | Some _ -> warm_budget
        in
        let cfg' = { search with Optimizer.proposals = budget } in
        let ctx = make_ctx ~eta in
        let r =
          match !carry with
          | None ->
            let control = control_for cfg' in
            let r = Optimizer.run ~obs ~control ctx cfg' in
            harvest control
              ~fallback:
                (Rng.Xoshiro256.state
                   (Rng.Xoshiro256.create cfg'.Optimizer.seed));
            r
          | Some state ->
            let gm = Rng.Xoshiro256.of_state state in
            let gr = Rng.Xoshiro256.split gm in
            let seed_cost = Cost.eval_full ctx !seed_prog in
            let best_correct =
              if Cost.correct seed_cost then Some !seed_prog else None
            in
            let pub =
              Optimizer.warm_pub cfg' ~rng:(Rng.Xoshiro256.state gr)
                ~master_rng:(Rng.Xoshiro256.state gm) ?best_correct
                !seed_prog
            in
            let control = control_for cfg' in
            let r =
              Optimizer.run_from ~obs ~control ~resume:pub ctx cfg'
                !seed_prog
            in
            harvest control ~fallback:(Rng.Xoshiro256.state gm);
            r
        in
        used := !used + r.Optimizer.proposals_made;
        total_proposals := !total_proposals + r.Optimizer.proposals_made;
        pick r
      in
      let rec attempt k =
        let rewrite = search_once () in
        let finish ~validated_err rewrite =
          mk_point ~eta ~warm:true ~proposals_used:!used
            ~demotions:!point_demotions ~validated_err rewrite
        in
        if Program.equal rewrite target then
          (* the target is its own rewrite: zero error by construction *)
          finish ~validated_err:(Some 0L) rewrite
        else begin
          match try_prove ~eta rewrite with
          | Some sound -> finish ~validated_err:(Some sound) rewrite
          | None ->
          match validator with
          | None -> finish ~validated_err:None rewrite
          | Some v ->
            let chk = v ~eta rewrite in
            if not chk.refuted then
              finish ~validated_err:(Some chk.observed_err) rewrite
            else begin
              incr point_demotions;
              incr demotions_total;
              if observing then
                Obs.Sink.emit obs "frontier_demote"
                  [
                    ("eta", Obs.Json.String (Ulp.to_string eta));
                    ( "err_ulps",
                      Obs.Json.Float (Ulp.to_float chk.observed_err) );
                    ("attempt", Obs.Json.Int k);
                    ( "input",
                      match chk.counterexample with
                      | None -> Obs.Json.Null
                      | Some xs ->
                        Obs.Json.List
                          (Array.to_list
                             (Array.map
                                (fun x -> Obs.Json.Float x)
                                xs)) );
                  ];
              (match chk.counterexample with
               | Some xs ->
                 extra_tests := xs :: !extra_tests;
                 incr tests_added;
                 backprop xs
               | None -> ());
              if k >= cfg.max_demotions then begin
                (* out of retries: fall back to the frontier incumbent
                   (validated within a tighter η, hence within this one),
                   or to the target when there is no such incumbent *)
                let ok_seed =
                  (not (Program.equal !seed_prog target))
                  &&
                  match !seed_validated with
                  | Some e -> Ulp.compare e eta <= 0
                  | None -> false
                in
                if ok_seed then
                  finish ~validated_err:!seed_validated !seed_prog
                else finish ~validated_err:(Some 0L) target
              end
              else attempt (k + 1)
            end
        end
      in
      let point = attempt 0 in
      settle ~idx point;
      seed_prog := point.rewrite;
      seed_validated := point.validated_err
    done
  end
  else begin
    (* cold walk: the historical per-point sweep, bit-identical winners *)
    for idx = start_idx to n - 1 do
      let eta = walk_arr.(idx) in
      let ctx = make_ctx ~eta in
      let r = Optimizer.run ~obs ctx search in
      total_proposals := !total_proposals + r.Optimizer.proposals_made;
      let rewrite = pick r in
      let validated_err =
        match try_prove ~eta rewrite with
        | Some sound -> Some sound
        | None ->
          (match validator with
           | None -> None
           | Some v ->
             let chk = v ~eta rewrite in
             Some chk.observed_err)
      in
      let point =
        mk_point ~eta ~warm:false ~proposals_used:r.Optimizer.proposals_made
          ~demotions:0 ~validated_err rewrite
      in
      settle ~idx point
    done
  end;
  (* optional loose-to-tight return pass: offer each point its looser
     neighbour's winner; adoption costs evaluations and (re)validation at
     the tighter η, but no search proposals *)
  let points =
    let forward = List.rev !points_rev in
    if not (cfg.sweep_back && cfg.warm) then forward
    else begin
      let arr = Array.of_list forward in
      for i = Array.length arr - 2 downto 0 do
        let donor = arr.(i + 1) in
        let here = arr.(i) in
        if donor.latency < here.latency then begin
          let eta = here.eta in
          let ctx = make_ctx ~eta in
          let c = Cost.eval_full ctx donor.rewrite in
          if Cost.correct c then begin
            let adopt, verr =
              match try_prove ~eta donor.rewrite with
              | Some sound -> (true, Some sound)
              | None ->
                (match validator with
                 | None -> (true, None)
                 | Some v ->
                   let chk = v ~eta donor.rewrite in
                   if chk.refuted then (false, None)
                   else (true, Some chk.observed_err))
            in
            if adopt then begin
              let p =
                mk_point ~eta ~warm:true ~proposals_used:here.proposals_used
                  ~demotions:here.demotions ~validated_err:verr
                  (Program.copy donor.rewrite)
              in
              arr.(i) <- p;
              emit_point ~pass:"back" p
            end
          end
        end
      done;
      Array.to_list arr
    end
  in
  let pareto = pareto_of points in
  let result =
    {
      points;
      pareto;
      total_proposals = !total_proposals;
      cold_budget;
      demotions = !demotions_total;
      tests_added = !tests_added;
      promotions = !promotions;
    }
  in
  if observing then
    Obs.Sink.emit obs "frontier_end"
      [
        ("points", Obs.Json.Int (List.length points));
        ("pareto_size", Obs.Json.Int (List.length pareto));
        ("total_proposals", Obs.Json.Int result.total_proposals);
        ("cold_budget", Obs.Json.Int result.cold_budget);
        ( "saving_frac",
          Obs.Json.Float
            (if cold_budget > 0 then
               1. -. (float_of_int result.total_proposals /. float_of_int cold_budget)
             else 0.) );
        ("demotions", Obs.Json.Int result.demotions);
        ("tests_added", Obs.Json.Int result.tests_added);
        ("promotions", Obs.Json.Int result.promotions);
      ];
  result
