type t =
  | Mcmc of { beta : float }
  | Hill
  | Anneal of {
      t0 : float;
      cooling : float;
    }
  | Random_walk

let accept t g ~iter ~delta =
  match t with
  | Random_walk -> true
  | Hill -> delta <= 0.
  | Mcmc { beta } ->
    if delta <= 0. then true
    else Rng.Dist.float g 1.0 < Float.exp (-.beta *. delta)
  | Anneal { t0; cooling } ->
    if delta <= 0. then true
    else begin
      let temp = Float.max 1e-9 (t0 *. Float.pow cooling (float_of_int iter)) in
      Rng.Dist.float g 1.0 < Float.exp (-.delta /. temp)
    end

let accept_bound t g ~iter =
  match t with
  | Random_walk -> None
  | Hill -> Some 0.
  | Mcmc { beta } ->
    let u = Rng.Dist.float g 1.0 in
    if u <= 0. then None else Some (-.Float.log u /. beta)
  | Anneal { t0; cooling } ->
    let u = Rng.Dist.float g 1.0 in
    let temp = Float.max 1e-9 (t0 *. Float.pow cooling (float_of_int iter)) in
    if u <= 0. then None else Some (-.Float.log u *. temp)

let default_anneal = Anneal { t0 = 1e12; cooling = 0.99997 }

let to_string = function
  | Mcmc _ -> "mcmc"
  | Hill -> "hill"
  | Anneal _ -> "anneal"
  | Random_walk -> "rand"

let fingerprint = function
  | Mcmc { beta } -> Printf.sprintf "mcmc:beta=%h" beta
  | Hill -> "hill"
  | Anneal { t0; cooling } -> Printf.sprintf "anneal:t0=%h:cooling=%h" t0 cooling
  | Random_walk -> "rand"

let of_string = function
  | "mcmc" -> Some (Mcmc { beta = 1.0 })
  | "hill" -> Some Hill
  | "anneal" -> Some default_anneal
  | "rand" -> Some Random_walk
  | _ -> None
