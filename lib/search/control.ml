type stop_policy = Exhaust | First_correct | Cost_below of float

let stop_policy_to_string = function
  | Exhaust -> "exhaust"
  | First_correct -> "first-correct"
  | Cost_below c -> Printf.sprintf "cost-below:%g" c

let stop_policy_of_string s =
  match s with
  | "exhaust" -> Some Exhaust
  | "first-correct" -> Some First_correct
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "cost-below" ->
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      (try Some (Cost_below (float_of_string rest)) with _ -> None)
    | _ -> None)

type stop_reason = Exhausted | Policy_satisfied | Deadline_hit | Cancelled

let stop_reason_to_string = function
  | Exhausted -> "exhausted"
  | Policy_satisfied -> "policy-satisfied"
  | Deadline_hit -> "deadline"
  | Cancelled -> "cancelled"

let stop_reason_of_string = function
  | "exhausted" -> Some Exhausted
  | "policy-satisfied" -> Some Policy_satisfied
  | "deadline" -> Some Deadline_hit
  | "cancelled" -> Some Cancelled
  | _ -> None

type chain_pub = {
  chain : int;
  seed : int64;
  restart : int;
  iter : int;
  completed : bool;
  rng : int64 array;
  master_rng : int64 array;
  cur : Program.t;
  best_correct : Program.t option;
  best_overall : Program.t;
  proposals_made : int;
  accepted : int;
  static_rejects : int;
  moves_proposed : int array;
  moves_accepted : int array;
  trace_rev : (int * float * float) list;
}

type t = {
  stop_when : stop_policy;
  deadline_ns : int64 option;  (** absolute, on [Obs.Clock]'s monotonic axis *)
  reason : stop_reason option Atomic.t;
  best_correct_total : float Atomic.t;
  best_total : float Atomic.t;
  slots : chain_pub option Atomic.t array;
  done_count : int Atomic.t;
  crash_count : int Atomic.t;
}

let poll_interval = 256

let create ?deadline_s ~stop_when ~chains () =
  let deadline_ns =
    Option.map
      (fun s -> Int64.add (Obs.Clock.now_ns ()) (Int64.of_float (s *. 1e9)))
      deadline_s
  in
  {
    stop_when;
    deadline_ns;
    reason = Atomic.make None;
    best_correct_total = Atomic.make infinity;
    best_total = Atomic.make infinity;
    slots = Array.init chains (fun _ -> Atomic.make None);
    done_count = Atomic.make 0;
    crash_count = Atomic.make 0;
  }

let request_stop t r =
  ignore (Atomic.compare_and_set t.reason None (Some r) : bool)

let stop_reason t = Atomic.get t.reason

(* Lock-free monotonic minimum: retry while we still hold a smaller value
   than the published one.  [compare_and_set] on floats compares the boxed
   values physically, which is exactly the [cur] we just read. *)
let rec update_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then update_min cell v

let note_best t ~correct ~total =
  if correct then update_min t.best_correct_total total;
  update_min t.best_total total;
  match t.stop_when with
  | Exhaust -> ()
  | First_correct -> if correct then request_stop t Policy_satisfied
  | Cost_below c -> if total < c then request_stop t Policy_satisfied

let best_correct_total t = Atomic.get t.best_correct_total
let best_total t = Atomic.get t.best_total

let should_stop t =
  match Atomic.get t.reason with
  | Some _ -> true
  | None -> (
    match t.deadline_ns with
    | Some d when Int64.compare (Obs.Clock.now_ns ()) d >= 0 ->
      request_stop t Deadline_hit;
      true
    | _ -> false)

let publish t pub = Atomic.set t.slots.(pub.chain) (Some pub)
let published t = Array.map Atomic.get t.slots
let mark_done t ~chain:_ = Atomic.incr t.done_count
let mark_crashed t ~chain:_ = Atomic.incr t.crash_count
let finished t = Atomic.get t.done_count
let crashed t = Atomic.get t.crash_count
