(** The STOKE search loop: repeated proposal, evaluation, and
    accept/reject, tracking the best η-correct rewrite found.

    The driver is strategy-parameterized (Metropolis-Hastings by default)
    and records a best-cost trace at logarithmically spaced checkpoints for
    the §6.4 comparison plots.

    Every entry point takes an optional {!Obs.Sink.t} and streams the
    events documented in [docs/TELEMETRY.md] ([search_start],
    [chain_start], [checkpoint], [progress], [search_end]) through it.
    Telemetry is read-only: it never touches the RNG or the accept
    decision, so a run with a sink attached returns exactly the result
    of the same run without one, and with the default null sink the
    instrumentation costs one branch per checkpoint. *)

type config = {
  proposals : int;  (** total proposals (the paper uses 10M) *)
  strategy : Strategy.t;
  seed : int64;
  padding : int;  (** extra [Unused] slots appended to the initial rewrite *)
  restarts : int;  (** independent chains run sequentially; best kept *)
  trace_points : int;  (** number of log-spaced trace checkpoints *)
  prune : bool;
      (** pass the acceptance bound to {!Cost.eval} as a cutoff so doomed
          evaluations abort early (STOKE '13's early-termination trick).
          Never changes the result — the winning rewrite is bit-identical
          with pruning on or off — only how many test cases run. *)
  engine : Sandbox.Exec.engine;
      (** which execution engine evaluates proposals.  The search itself
          runs whatever context it is given; this field is how callers
          that build the context from a config ({!Stoke}, {!Parallel})
          select the engine.  Like [prune], it never changes the result —
          both engines are bit-identical — only how fast proposals
          evaluate. *)
  static_screen : bool;
      (** reject proposals that read a location neither the kernel's
          inputs nor an earlier slot defined ([Analysis.Screen]) before
          any test case runs.  Unlike [prune]/[engine] this skips the
          acceptance-bound RNG draw for rejected proposals, so a screened
          search follows a different random stream than an unscreened one
          — each is still deterministic per seed and bit-identical across
          engine and prune settings. *)
  stop_when : Control.stop_policy;
      (** cooperative early-stop policy, polled off the hot path every
          {!Control.poll_interval} proposals.  [Exhaust] (the default)
          never stops early and allocates no control plane at all. *)
  deadline_s : float option;
      (** wall-clock budget for the whole run (all restarts), measured
          from the moment the control plane is created.  The deadline
          interrupts at the next poll point, so the effective resolution
          is one poll interval's worth of proposals. *)
}

val default_config : config
(** 200k proposals, MCMC with β = 1, seed 1, padding 4, 1 restart,
    pruning on, compiled engine, static screen on, exhaust (no early
    stop), no deadline. *)

type trace_entry = {
  iter : int;
  best_total : float;
  current_total : float;
}

(** Per-move-kind telemetry: how often each of the paper's four proposals
    was drawn and how often it was accepted. *)
type move_stats = {
  proposed : int array;  (** indexed by {!Transform.kind} order *)
  accepted_by_kind : int array;
}

type result = {
  best_correct : Program.t option;
      (** lowest-latency rewrite with [eq = 0] on all tests, after DCE *)
  best_correct_cost : Cost.cost option;
  best_overall : Program.t;  (** lowest total cost seen (before DCE) *)
  best_overall_cost : Cost.cost;
  trace : trace_entry list;  (** checkpoints, ascending iteration *)
  proposals_made : int;
  accepted : int;
  evaluations : int;
  tests_executed : int;
      (** test-case program runs charged to the cost context *)
  pruned_evals : int;  (** evaluations aborted early by the cutoff *)
  cache_hits : int;  (** evaluations answered from the cost cache *)
  compile_count : int;
      (** proposals translated by the compiled engine (0 under [Interp]) *)
  compiled_runs : int;
      (** test-case runs executed through the compiled engine *)
  batched_runs : int;
      (** lane-runs started through the batched engine (0 under the
          other engines) *)
  batch_prunes : int;
      (** proposals aborted mid-run at batch granularity — a lane fault
          alone proved rejection; a subset of [pruned_evals] *)
  native_runs : int;
      (** lane-runs executed as machine code in the native worker (0
          under the other engines) *)
  encode_count : int;
      (** proposals encoded and shipped to the native worker *)
  encoder_fallbacks : int;
      (** proposals the native engine handed to the batched fallback
          because an instruction was unencodable or not bit-identical in
          hardware *)
  worker_respawns : int;
      (** native worker processes respawned after a crash or timeout *)
  static_rejects : int;
      (** proposals rejected by the static undef-read screen, before any
          cost evaluation *)
  moves : move_stats;
  stop_reason : Control.stop_reason;
      (** why the run ended: [Exhausted] for a full-budget run, otherwise
          the reason the control plane requested the stop.  A stopped run
          still returns every field above, valid for the work done. *)
  failed_chains : int;
      (** always 0 here; {!Parallel.run} fills it with the number of
          domains whose chain crashed *)
}

(** The counter fields ([evaluations] … [worker_respawns]) are {e anchored}:
    they count this run's work only, matching the [search_end] telemetry,
    even when the same {!Cost.t} context (and its monotonically growing
    counters) is reused across several runs. *)

val kind_index : Transform.kind -> int
(** Index into {!move_stats} arrays. *)

val moves_json : move_stats -> Obs.Json.t
(** The per-kind [{proposed, accepted}] object embedded in [search_end]
    events, for callers assembling their own metrics dumps. *)

val run :
  ?obs:Obs.Sink.t ->
  ?progress_every:int ->
  ?control:Control.t ->
  ?chain_id:int ->
  ?resume:Control.chain_pub ->
  Cost.t ->
  config ->
  result
(** Starts each chain from the target (STOKE's optimization mode).
    [obs] receives the telemetry stream; [progress_every:n] additionally
    emits a [progress] event every [n] proposals (for live monitoring at
    a fixed cadence, on top of the log-spaced [checkpoint]s).

    [control] shares a {!Control.t} across several concurrent runs (the
    {!Parallel} orchestrator); when absent, one is created internally iff
    [config.stop_when] or [config.deadline_s] asks for it — an [Exhaust] /
    no-deadline run has no control plane and behaves exactly as before.
    [chain_id] is this run's slot in the shared control plane (default 0).
    [resume] continues a previous run from a {!Control.chain_pub}
    publication (normally out of a {!Snapshot}): the interrupted restart
    picks up mid-stream from its captured RNG state, later restarts split
    from the captured master, so resuming an [Exhaust] run reproduces the
    uninterrupted winner bit-identically. *)

val run_from :
  ?obs:Obs.Sink.t ->
  ?progress_every:int ->
  ?control:Control.t ->
  ?chain_id:int ->
  ?resume:Control.chain_pub ->
  Cost.t ->
  config ->
  Program.t ->
  result
(** Starts from a given rewrite instead. *)

val warm_pub :
  config ->
  rng:int64 array ->
  master_rng:int64 array ->
  ?best_correct:Program.t ->
  Program.t ->
  Control.chain_pub
(** A synthetic {!Control.chain_pub} that warm-starts {!run_from} from
    [init] with explicit RNG state: restart 1, iteration 0, zeroed
    counters, and [init] padded to [config.padding] as the current
    program (the resume path deliberately never re-pads).  [rng] seeds
    the chain itself and [master_rng] the restart master — thread a
    generator's {!Rng.Xoshiro256.state} through consecutive runs to keep
    warm-started chains on one reproducible stream.  Pass [best_correct]
    only when [init] is known η-correct under the target context, so the
    search's incumbent matches what the cost function would say. *)

val synthesize :
  ?obs:Obs.Sink.t -> ?progress_every:int -> Cost.t -> config -> slots:int ->
  result
(** STOKE's synthesis mode (§2.2): start from the {e empty} rewrite of
    [slots] unused slots and search for any program equivalent to the
    target.  Callers normally pass a context whose [k] is 0 so the perf
    term does not distract the search; the best correct rewrite (if any)
    is still DCE'd and reported as in {!run}. *)
