type kind =
  | Opcode_move
  | Operand_move
  | Swap_move
  | Instruction_move

type undo =
  | Restore_slot of int * Program.slot
  | Restore_swap of int * int

let kind_to_string = function
  | Opcode_move -> "opcode"
  | Operand_move -> "operand"
  | Swap_move -> "swap"
  | Instruction_move -> "instruction"

let active_indices (p : Program.t) =
  let out = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Program.Active _ -> out := i :: !out
      | Program.Unused -> ())
    p.Program.slots;
  Array.of_list !out

let propose_opcode g pools (p : Program.t) =
  let actives = active_indices p in
  if Array.length actives = 0 then None
  else begin
    let idx = Rng.Dist.choose g actives in
    match p.Program.slots.(idx) with
    | Program.Unused -> None
    | Program.Active i ->
      let shape = Instr.shape i in
      let candidates =
        Pools.opcodes_with_shape pools shape
        |> Array.to_list
        |> List.filter (fun op -> not (Opcode.equal op i.Instr.op))
        |> Array.of_list
      in
      if Array.length candidates = 0 then None
      else begin
        let op = Rng.Dist.choose g candidates in
        let i' = Instr.make_unchecked op i.Instr.operands in
        if Instr.is_well_formed i' then begin
          p.Program.slots.(idx) <- Program.Active i';
          Some (Restore_slot (idx, Program.Active i))
        end
        else None
      end
  end

let propose_operand g pools (p : Program.t) =
  let actives = active_indices p in
  if Array.length actives = 0 then None
  else begin
    let idx = Rng.Dist.choose g actives in
    match p.Program.slots.(idx) with
    | Program.Unused -> None
    | Program.Active i ->
      let shape = Instr.shape i in
      if Array.length shape = 0 then None
      else begin
        let pos = Rng.Dist.int g (Array.length shape) in
        let pool = Pools.operands_of_kind pools shape.(pos) in
        if Array.length pool = 0 then None
        else begin
          let o = Rng.Dist.choose g pool in
          let operands = Array.copy i.Instr.operands in
          operands.(pos) <- o;
          let i' = Instr.make_unchecked i.Instr.op operands in
          if Instr.is_well_formed i' then begin
            p.Program.slots.(idx) <- Program.Active i';
            Some (Restore_slot (idx, Program.Active i))
          end
          else None
        end
      end
  end

let propose_swap g (p : Program.t) =
  let n = Array.length p.Program.slots in
  if n < 2 then None
  else begin
    let a = Rng.Dist.int g n in
    let b = Rng.Dist.int g n in
    if a = b then None
    else begin
      let tmp = p.Program.slots.(a) in
      p.Program.slots.(a) <- p.Program.slots.(b);
      p.Program.slots.(b) <- tmp;
      Some (Restore_swap (a, b))
    end
  end

let propose_instruction g pools (p : Program.t) =
  let n = Array.length p.Program.slots in
  if n = 0 then None
  else begin
    let idx = Rng.Dist.int g n in
    let old = p.Program.slots.(idx) in
    let replacement =
      if Rng.Dist.bool g then Program.Unused
      else Program.Active (Pools.random_instr g pools)
    in
    p.Program.slots.(idx) <- replacement;
    Some (Restore_slot (idx, old))
  end

let propose g pools p =
  let kind =
    match Rng.Dist.int g 4 with
    | 0 -> Opcode_move
    | 1 -> Operand_move
    | 2 -> Swap_move
    | _ -> Instruction_move
  in
  let result =
    match kind with
    | Opcode_move -> propose_opcode g pools p
    | Operand_move -> propose_operand g pools p
    | Swap_move -> propose_swap g p
    | Instruction_move -> propose_instruction g pools p
  in
  Option.map (fun u -> (kind, u)) result

let undo (p : Program.t) = function
  | Restore_slot (idx, old) -> p.Program.slots.(idx) <- old
  | Restore_swap (a, b) ->
    let tmp = p.Program.slots.(a) in
    p.Program.slots.(a) <- p.Program.slots.(b);
    p.Program.slots.(b) <- tmp
