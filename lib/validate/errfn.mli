(** The error function of Eq. 13: total ULP distance between the target's
    and rewrite's live outputs on one test case, with divergent signal
    behaviour charged a value larger than any η. *)

type t

val create :
  ?engine:Sandbox.Exec.engine -> Sandbox.Spec.t -> rewrite:Program.t -> t
(** [engine] (default [Compiled]) selects the executor.  Under the
    compiled and batched engines the target and the rewrite are each
    translated once here and replayed per evaluation (the batched
    engine runs a single lane, with each sampled input overlaid per
    call).  All engines produce bit-identical errors. *)

val eval : t -> float array -> float
(** [eval e xs] evaluates the error on the test case assembled from the
    float-input vector [xs].  ULP sums saturate; divergent signals return
    [top_eta]. *)

val eval_ulp : t -> float array -> Ulp.t
(** Same, as an exact unsigned ULP count ({!Ulp.max_value} for divergent
    signal behaviour). *)

val eval_both : t -> float array -> float * Ulp.t
(** [(eval e xs, eval_ulp e xs)] from a {e single} pair of executions —
    what {!Driver} wants, since it needs the float error for the accept
    rule and the exact count for max tracking on every input.  Calling
    [eval] and [eval_ulp] separately runs each program twice. *)

val top_eta : float
(** The >η sentinel: 2^64, strictly above every representable ULP count. *)

val spec : t -> Sandbox.Spec.t
