type config = {
  max_proposals : int;
  min_samples : int;
  check_every : int;
  z_threshold : float;
  sigma : float;
  seed : int64;
  trace_points : int;
}

let default_config =
  {
    max_proposals = 2_000_000;
    min_samples = 100_000;
    check_every = 50_000;
    z_threshold = 0.5;
    sigma = 1.0;
    seed = 7L;
    trace_points = 40;
  }

type trace_entry = {
  iter : int;
  best_err : float;
}

type verdict = {
  max_err : Ulp.t;
  max_err_input : float array;
  validated : bool;
  mixed : bool;
  geweke_z : float;
  iterations : int;
  trace : trace_entry list;
}

(* Theorem 1 wants samples drawn in proportion to the error value, so the
   Metropolis ratio for the (unnormalized) density err(·)+1 is
   (err* + 1)/(err + 1).  The +1 keeps the chain alive on zero-error
   plateaus. *)
let density e = e +. 1.

type accept_rule =
  | A_mcmc
  | A_hill
  | A_anneal
  | A_random

let checkpoints n count =
  let rec go acc i =
    if i > count then List.rev acc
    else begin
      let v =
        Stdlib.max 1
          (int_of_float
             (Float.pow (float_of_int n) (float_of_int i /. float_of_int count)))
      in
      match acc with
      | prev :: _ when prev >= v -> go ((prev + 1) :: acc) (i + 1)
      | _ -> go (v :: acc) (i + 1)
    end
  in
  go [] 1

let rule_name = function
  | A_mcmc -> "mcmc"
  | A_hill -> "hill"
  | A_anneal -> "anneal"
  | A_random -> "rand"

let run_internal ~rule ?(obs = Obs.Sink.null) ?(config = default_config) ~eta
    errfn =
  let observing = Obs.Sink.enabled obs in
  let t0 = Obs.Clock.now_ns () in
  if observing then
    Obs.Sink.emit obs "validate_start"
      [
        ("rule", Obs.Json.String (rule_name rule));
        ("max_proposals", Obs.Json.Int config.max_proposals);
        ("min_samples", Obs.Json.Int config.min_samples);
        ("check_every", Obs.Json.Int config.check_every);
        ("z_threshold", Obs.Json.Float config.z_threshold);
        ("sigma", Obs.Json.Float config.sigma);
        ("seed", Obs.Json.String (Int64.to_string config.seed));
        ("eta", Obs.Json.Float (Ulp.to_float eta));
      ];
  let g = Rng.Xoshiro256.create config.seed in
  let spec = Errfn.spec errfn in
  let proposal = Proposal.create ~sigma:config.sigma spec in
  let cur = ref (Proposal.initial g proposal) in
  let cur_err0, max_err0 = Errfn.eval_both errfn !cur in
  let cur_err = ref cur_err0 in
  let max_err = ref max_err0 in
  let max_err_input = ref (Array.copy !cur) in
  (* The sample history backing the Geweke checks: a flat growable array,
     so each check reads a prefix view in O(n) instead of rebuilding the
     whole chain from a reversed list (O(n²) over the run). *)
  let samples = ref (Array.make 1024 0.) in
  let n_samples = ref 0 in
  let push_sample x =
    if !n_samples = Array.length !samples then begin
      let bigger = Array.make (2 * Array.length !samples) 0. in
      Array.blit !samples 0 bigger 0 !n_samples;
      samples := bigger
    end;
    !samples.(!n_samples) <- x;
    incr n_samples
  in
  let sample_chain () = Array.sub !samples 0 !n_samples in
  let mixed = ref false in
  let last_z = ref Float.infinity in
  let last_check = ref 0 in
  let iterations = ref 0 in
  let trace = ref [] in
  let marks = ref (checkpoints config.max_proposals config.trace_points) in
  (try
     for iter = 1 to config.max_proposals do
       iterations := iter;
       let candidate =
         match rule with
         | A_random -> Proposal.initial g proposal
         | A_mcmc | A_hill | A_anneal -> Proposal.step g proposal !cur
       in
       (* One pair of executions serves both the accept rule (float error)
          and max tracking (exact ULP count). *)
       let err, exact = Errfn.eval_both errfn candidate in
       let accept =
         match rule with
         | A_random -> true
         | A_hill -> err >= !cur_err
         | A_mcmc ->
           err >= !cur_err
           || Rng.Dist.float g 1.0 < density err /. density !cur_err
         | A_anneal ->
           let temp =
             Float.max 1e-6
               (1.0 *. Float.pow 0.99999 (float_of_int iter))
           in
           err >= !cur_err
           || Rng.Dist.float g 1.0
              < Float.pow (density err /. density !cur_err) (1. /. temp)
       in
       if accept then begin
         cur := candidate;
         cur_err := err
       end;
       if Ulp.compare exact !max_err > 0 then begin
         max_err := exact;
         max_err_input := Array.copy candidate;
         if observing then
           Obs.Sink.emit obs "val_new_max"
             [
               ("iter", Obs.Json.Int iter);
               ("err_ulps", Obs.Json.Float (Ulp.to_float exact));
               ( "input",
                 Obs.Json.List
                   (Array.to_list
                      (Array.map (fun x -> Obs.Json.Float x) candidate)) );
             ]
       end;
       push_sample !cur_err;
       (match !marks with
        | m :: rest when iter >= m ->
          trace := { iter; best_err = Ulp.to_float !max_err } :: !trace;
          marks := rest;
          if observing then
            Obs.Sink.emit obs "val_checkpoint"
              [
                ("iter", Obs.Json.Int iter);
                ("best_err", Obs.Json.Float (Ulp.to_float !max_err));
                ( "elapsed_s",
                  Obs.Json.Float (Obs.Clock.elapsed_s ~since:t0) );
              ]
        | _ -> ());
       if
         !n_samples >= config.min_samples
         && iter mod config.check_every = 0
       then begin
         let chain = sample_chain () in
         let v = Stats.Geweke.z_statistic chain in
         last_z := v.Stats.Geweke.z;
         last_check := iter;
         let converged =
           Stats.Geweke.converged ~threshold:config.z_threshold v
         in
         if observing then
           Obs.Sink.emit obs "geweke"
             [
               ("iter", Obs.Json.Int iter);
               ("z", Obs.Json.Float v.Stats.Geweke.z);
               ("n_samples", Obs.Json.Int !n_samples);
               ("converged", Obs.Json.Bool converged);
             ];
         if converged then begin
           mixed := true;
           raise Exit
         end
       end
     done
   with Exit -> ());
  (* Final mixing check for runs whose budget ended before the periodic
     schedule fired.  Gated on the configured [min_samples] (not a
     hardcoded count): a run whose budget never reached the sample floor
     must not claim convergence from an undersized chain.  The extra
     [>= 20] floor covers configs with a tiny [min_samples] —
     [Geweke.z_statistic] needs at least 20 points.  Skipped when the
     periodic schedule already checked at the final iteration
     ([max_proposals] a multiple of [check_every]) — the chain has not
     grown since, so re-checking would only duplicate the "geweke"
     event. *)
  if
    (not !mixed) && !n_samples >= config.min_samples && !n_samples >= 20
    && !last_check <> !iterations
  then begin
    let chain = sample_chain () in
    let v = Stats.Geweke.z_statistic chain in
    last_z := v.Stats.Geweke.z;
    let converged = Stats.Geweke.converged ~threshold:config.z_threshold v in
    if observing then
      Obs.Sink.emit obs "geweke"
        [
          ("iter", Obs.Json.Int !iterations);
          ("z", Obs.Json.Float v.Stats.Geweke.z);
          ("n_samples", Obs.Json.Int !n_samples);
          ("converged", Obs.Json.Bool converged);
        ];
    if converged then mixed := true
  end;
  let verdict =
    {
      max_err = !max_err;
      max_err_input = !max_err_input;
      validated = !mixed && Ulp.compare !max_err eta <= 0;
      mixed = !mixed;
      geweke_z = !last_z;
      iterations = !iterations;
      trace = List.rev !trace;
    }
  in
  if observing then begin
    let elapsed = Obs.Clock.elapsed_s ~since:t0 in
    Obs.Sink.emit obs "validate_end"
      [
        ("max_err_ulps", Obs.Json.Float (Ulp.to_float verdict.max_err));
        ("validated", Obs.Json.Bool verdict.validated);
        ("mixed", Obs.Json.Bool verdict.mixed);
        ("geweke_z", Obs.Json.Float verdict.geweke_z);
        ("iterations", Obs.Json.Int verdict.iterations);
        ("elapsed_s", Obs.Json.Float elapsed);
        ( "samples_per_s",
          Obs.Json.Float
            (if elapsed > 0. then float_of_int verdict.iterations /. elapsed
             else 0.) );
      ]
  end;
  verdict

let run ?obs ?config ~eta errfn = run_internal ~rule:A_mcmc ?obs ?config ~eta errfn

module Incremental = struct
  type status =
    | Running
    | Refuted
    | Mixed
    | Exhausted

  type t = {
    config : config;
    eta : Ulp.t;
    errfn : Errfn.t;
    obs : Obs.Sink.t;
    observing : bool;
    g : Rng.Xoshiro256.t;
    proposal : Proposal.t;
    t0 : int64;
    mutable cur : float array;
    mutable cur_err : float;
    mutable max_err : Ulp.t;
    mutable max_err_input : float array;
    mutable samples : float array;
    mutable n_samples : int;
    mutable mixed : bool;
    mutable last_z : float;
    mutable last_check : int;
        (** iteration of the most recent Geweke check, so the
            end-of-budget fallback can tell whether the periodic schedule
            already checked the final chain (a slice ending exactly on a
            [check_every] boundary would otherwise double-check and
            double-emit) *)
    mutable iterations : int;
    mutable trace : trace_entry list;
    mutable marks : int list;
    mutable status : status;
    mutable ended : bool;  (** validate_end emitted *)
  }

  let create ?(obs = Obs.Sink.null) ?(config = default_config) ~eta errfn =
    let observing = Obs.Sink.enabled obs in
    let t0 = Obs.Clock.now_ns () in
    if observing then
      Obs.Sink.emit obs "validate_start"
        [
          ("rule", Obs.Json.String "mcmc-incremental");
          ("max_proposals", Obs.Json.Int config.max_proposals);
          ("min_samples", Obs.Json.Int config.min_samples);
          ("check_every", Obs.Json.Int config.check_every);
          ("z_threshold", Obs.Json.Float config.z_threshold);
          ("sigma", Obs.Json.Float config.sigma);
          ("seed", Obs.Json.String (Int64.to_string config.seed));
          ("eta", Obs.Json.Float (Ulp.to_float eta));
        ];
    let g = Rng.Xoshiro256.create config.seed in
    let spec = Errfn.spec errfn in
    let proposal = Proposal.create ~sigma:config.sigma spec in
    let cur = Proposal.initial g proposal in
    let cur_err, max_err = Errfn.eval_both errfn cur in
    {
      config;
      eta;
      errfn;
      obs;
      observing;
      g;
      proposal;
      t0;
      cur;
      cur_err;
      max_err;
      max_err_input = Array.copy cur;
      samples = Array.make 1024 0.;
      n_samples = 0;
      mixed = false;
      last_z = Float.infinity;
      last_check = 0;
      iterations = 0;
      trace = [];
      marks = checkpoints config.max_proposals config.trace_points;
      status = (if Ulp.compare max_err eta > 0 then Refuted else Running);
      ended = false;
    }

  let status s = s.status

  let push_sample s x =
    if s.n_samples = Array.length s.samples then begin
      let bigger = Array.make (2 * Array.length s.samples) 0. in
      Array.blit s.samples 0 bigger 0 s.n_samples;
      s.samples <- bigger
    end;
    s.samples.(s.n_samples) <- x;
    s.n_samples <- s.n_samples + 1

  let geweke_check s ~iter =
    let chain = Array.sub s.samples 0 s.n_samples in
    let v = Stats.Geweke.z_statistic chain in
    s.last_z <- v.Stats.Geweke.z;
    s.last_check <- iter;
    let converged = Stats.Geweke.converged ~threshold:s.config.z_threshold v in
    if s.observing then
      Obs.Sink.emit s.obs "geweke"
        [
          ("iter", Obs.Json.Int iter);
          ("z", Obs.Json.Float v.Stats.Geweke.z);
          ("n_samples", Obs.Json.Int s.n_samples);
          ("converged", Obs.Json.Bool converged);
        ];
    converged

  let advance s ~proposals =
    (match s.status with
     | Running ->
       let budget =
         Stdlib.min proposals (s.config.max_proposals - s.iterations)
       in
       (try
          for _ = 1 to budget do
            let iter = s.iterations + 1 in
            s.iterations <- iter;
            let candidate = Proposal.step s.g s.proposal s.cur in
            let err, exact = Errfn.eval_both s.errfn candidate in
            let accept =
              err >= s.cur_err
              || Rng.Dist.float s.g 1.0 < density err /. density s.cur_err
            in
            if accept then begin
              s.cur <- candidate;
              s.cur_err <- err
            end;
            if Ulp.compare exact s.max_err > 0 then begin
              s.max_err <- exact;
              s.max_err_input <- Array.copy candidate;
              if s.observing then
                Obs.Sink.emit s.obs "val_new_max"
                  [
                    ("iter", Obs.Json.Int iter);
                    ("err_ulps", Obs.Json.Float (Ulp.to_float exact));
                    ( "input",
                      Obs.Json.List
                        (Array.to_list
                           (Array.map
                              (fun x -> Obs.Json.Float x)
                              candidate)) );
                  ];
              (* Early refutation: the bound cannot shrink, so once it
                 clears η the candidate is dead — stop sampling. *)
              if Ulp.compare exact s.eta > 0 then begin
                s.status <- Refuted;
                raise Exit
              end
            end;
            push_sample s s.cur_err;
            (match s.marks with
             | m :: rest when iter >= m ->
               s.trace <-
                 { iter; best_err = Ulp.to_float s.max_err } :: s.trace;
               s.marks <- rest;
               if s.observing then
                 Obs.Sink.emit s.obs "val_checkpoint"
                   [
                     ("iter", Obs.Json.Int iter);
                     ("best_err", Obs.Json.Float (Ulp.to_float s.max_err));
                     ( "elapsed_s",
                       Obs.Json.Float (Obs.Clock.elapsed_s ~since:s.t0) );
                   ]
             | _ -> ());
            if
              s.n_samples >= s.config.min_samples
              && iter mod s.config.check_every = 0
            then
              if geweke_check s ~iter then begin
                s.mixed <- true;
                s.status <- Mixed;
                raise Exit
              end
          done
        with Exit -> ());
       if s.status = Running && s.iterations >= s.config.max_proposals
       then begin
         (* Same final-check gating as the one-shot driver, including the
            boundary rule: skip when the periodic schedule already
            checked at the final iteration. *)
         if
           s.n_samples >= s.config.min_samples && s.n_samples >= 20
           && s.last_check <> s.iterations
         then
           if geweke_check s ~iter:s.iterations then s.mixed <- true;
         s.status <- (if s.mixed then Mixed else Exhausted)
       end
     | Refuted | Mixed | Exhausted -> ());
    s.status

  let verdict s =
    let v =
      {
        max_err = s.max_err;
        max_err_input = s.max_err_input;
        validated = s.mixed && Ulp.compare s.max_err s.eta <= 0;
        mixed = s.mixed;
        geweke_z = s.last_z;
        iterations = s.iterations;
        trace = List.rev s.trace;
      }
    in
    if s.observing && s.status <> Running && not s.ended then begin
      s.ended <- true;
      let elapsed = Obs.Clock.elapsed_s ~since:s.t0 in
      Obs.Sink.emit s.obs "validate_end"
        [
          ("max_err_ulps", Obs.Json.Float (Ulp.to_float v.max_err));
          ("validated", Obs.Json.Bool v.validated);
          ("mixed", Obs.Json.Bool v.mixed);
          ("refuted", Obs.Json.Bool (s.status = Refuted));
          ("geweke_z", Obs.Json.Float v.geweke_z);
          ("iterations", Obs.Json.Int v.iterations);
          ("elapsed_s", Obs.Json.Float elapsed);
          ( "samples_per_s",
            Obs.Json.Float
              (if elapsed > 0. then float_of_int v.iterations /. elapsed
               else 0.) );
        ]
    end;
    v
end

let run_strategy ?obs ?config ~strategy ~eta errfn =
  let rule =
    match strategy with
    | `Mcmc -> A_mcmc
    | `Hill -> A_hill
    | `Anneal -> A_anneal
    | `Random -> A_random
  in
  run_internal ~rule ?obs ?config ~eta errfn
