(** The validation proposal distribution of Eq. 16: each live-in float is
    perturbed by a Gaussian sample, discarding (per coordinate) any proposal
    that leaves the user-specified valid input range.  Ergodicity and
    symmetry follow from the normal distribution. *)

type t

val create : ?mu:float -> ?sigma:float -> Sandbox.Spec.t -> t
(** Defaults: the standard normal N(0, 1) used in the paper's evaluation. *)

val initial : Rng.Xoshiro256.t -> t -> float array
(** Uniform draw from the input ranges (the chain's starting test case). *)

val step : Rng.Xoshiro256.t -> t -> float array -> float array
(** Fresh vector; the argument is not mutated. *)
