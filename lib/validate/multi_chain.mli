(** Multi-chain validation: several independent max-error MCMC chains with
    the Gelman-Rubin R̂ diagnostic across them.

    Stronger evidence of mixing than the single-chain Geweke test (a chain
    stuck on one mode of the error function looks stationary to Geweke but
    inflates R̂ if its siblings found another mode), at proportional extra
    cost. *)

type config = {
  chains : int;  (** independent chains (≥ 2) *)
  proposals_per_chain : int;
  sigma : float;
  r_hat_threshold : float;
  seed : int64;
}

val default_config : config
(** 4 chains of 50k proposals, σ = 1, R̂ < 1.1. *)

type verdict = {
  max_err : Ulp.t;
  max_err_input : float array;
  r_hat : float;
  mixed : bool;
  per_chain_max : Ulp.t array;
  validated : bool;  (** mixed and max_err ≤ η *)
}

val run : ?obs:Obs.Sink.t -> ?config:config -> eta:Ulp.t -> Errfn.t -> verdict
(** Chains run sequentially, so one sink serves them all: events are
    tagged with a [chain] index ([chain_start], [chain_end]) and the
    final [multi_chain_end] event carries R̂ and the verdict (see
    [docs/TELEMETRY.md]).  Telemetry does not perturb the chains. *)
