type config = {
  chains : int;
  proposals_per_chain : int;
  sigma : float;
  r_hat_threshold : float;
  seed : int64;
}

let default_config =
  {
    chains = 4;
    proposals_per_chain = 50_000;
    sigma = 1.0;
    r_hat_threshold = 1.1;
    seed = 13L;
  }

type verdict = {
  max_err : Ulp.t;
  max_err_input : float array;
  r_hat : float;
  mixed : bool;
  per_chain_max : Ulp.t array;
  validated : bool;
}

(* One chain: Metropolis on the error density, recording the whole sample
   series for the R̂ computation. *)
let run_chain ~obs ~chain ~config ~seed errfn =
  if Obs.Sink.enabled obs then
    Obs.Sink.emit obs "chain_start"
      [
        ("chain", Obs.Json.Int chain);
        ("seed", Obs.Json.String (Int64.to_string seed));
        ("proposals", Obs.Json.Int config.proposals_per_chain);
      ];
  let g = Rng.Xoshiro256.create seed in
  let spec = Errfn.spec errfn in
  let proposal = Proposal.create ~sigma:config.sigma spec in
  let cur = ref (Proposal.initial g proposal) in
  let cur_err0, best0 = Errfn.eval_both errfn !cur in
  let cur_err = ref cur_err0 in
  let best = ref best0 in
  let best_input = ref (Array.copy !cur) in
  let series = Array.make config.proposals_per_chain 0. in
  for i = 0 to config.proposals_per_chain - 1 do
    let cand = Proposal.step g proposal !cur in
    (* one pair of executions per candidate: float error for the accept
       rule, exact count for max tracking (neither touches [g], so the
       combined query leaves the random stream unchanged) *)
    let err, exact = Errfn.eval_both errfn cand in
    if
      err >= !cur_err
      || Rng.Dist.float g 1.0 < (err +. 1.) /. (!cur_err +. 1.)
    then begin
      cur := cand;
      cur_err := err
    end;
    if Ulp.compare exact !best > 0 then begin
      best := exact;
      best_input := Array.copy cand
    end;
    series.(i) <- !cur_err
  done;
  if Obs.Sink.enabled obs then
    Obs.Sink.emit obs "chain_end"
      [
        ("chain", Obs.Json.Int chain);
        ("max_err_ulps", Obs.Json.Float (Ulp.to_float !best));
      ];
  (!best, !best_input, series)

let run ?(obs = Obs.Sink.null) ?(config = default_config) ~eta errfn =
  if config.chains < 2 then invalid_arg "Multi_chain.run: need >= 2 chains";
  let results =
    List.init config.chains (fun i ->
        run_chain ~obs ~chain:i ~config
          ~seed:(Int64.add config.seed (Int64.of_int i))
          errfn)
  in
  let per_chain_max = Array.of_list (List.map (fun (b, _, _) -> b) results) in
  let best, best_input =
    List.fold_left
      (fun (b, bi) (b', bi', _) ->
        if Ulp.compare b' b > 0 then (b', bi') else (b, bi))
      (let b, bi, _ = List.hd results in
       (b, bi))
      (List.tl results)
  in
  let chains = Array.of_list (List.map (fun (_, _, s) -> s) results) in
  let v = Stats.Gelman_rubin.r_hat chains in
  let mixed = Stats.Gelman_rubin.converged ~threshold:config.r_hat_threshold v in
  let verdict =
    {
      max_err = best;
      max_err_input = best_input;
      r_hat = v.Stats.Gelman_rubin.r_hat;
      mixed;
      per_chain_max;
      validated = mixed && Ulp.compare best eta <= 0;
    }
  in
  if Obs.Sink.enabled obs then
    Obs.Sink.emit obs "multi_chain_end"
      [
        ("chains", Obs.Json.Int config.chains);
        ("r_hat", Obs.Json.Float verdict.r_hat);
        ("mixed", Obs.Json.Bool verdict.mixed);
        ("max_err_ulps", Obs.Json.Float (Ulp.to_float verdict.max_err));
        ("validated", Obs.Json.Bool verdict.validated);
      ];
  verdict
