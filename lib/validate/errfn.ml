type t = {
  spec : Sandbox.Spec.t;
  rewrite : Program.t;
  exec_target : Sandbox.Testcase.t -> Sandbox.Spec.value array option;
  exec_rewrite : Sandbox.Testcase.t -> Sandbox.Spec.value array option;
}

let top_eta = 0x1p64

let create ?(engine = Sandbox.Exec.Compiled) spec ~rewrite =
  let machine = Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size () in
  let pristine = Sandbox.Machine.copy machine in
  (* Validation evaluates the same two programs millions of times, so
     under the compiled and batched engines both are translated exactly
     once, here.  A runner installs one test case, executes, and reads
     the live outputs — [None] is a fault. *)
  let shared_machine_runner run tc =
    Sandbox.Machine.restore_from ~src:pristine ~dst:machine;
    Sandbox.Testcase.apply tc machine;
    let r : Sandbox.Exec.result = run () in
    match r.Sandbox.Exec.outcome with
    | Sandbox.Exec.Finished -> Some (Sandbox.Spec.read_outputs spec machine)
    | Sandbox.Exec.Faulted _ -> None
  in
  (* One native worker shared by the target and rewrite runners. *)
  let nbatch =
    match engine with
    | Sandbox.Exec.Native ->
      Sandbox.Native.create_batch pristine [| Sandbox.Testcase.empty |]
    | _ -> None
  in
  (* One lane, inputs overlaid per call — the validator samples a fresh
     random input every evaluation, so nothing is baked. *)
  let batched_runner program =
    let b = Sandbox.Batched.create_batch pristine [| Sandbox.Testcase.empty |] in
    let bp = Sandbox.Batched.compile b program in
    fun tc ->
      Sandbox.Batched.reset b;
      Sandbox.Batched.apply_testcase b ~lane:0 tc;
      let (_aborted : bool) = Sandbox.Batched.exec bp in
      (match Sandbox.Batched.fault b ~lane:0 with
       | None -> Some (Sandbox.Batched.read_outputs b ~lane:0 spec)
       | Some _ -> None)
  in
  let runner program =
    match engine with
    | Sandbox.Exec.Interp ->
      shared_machine_runner (fun () -> Sandbox.Exec.run machine program)
    | Sandbox.Exec.Compiled ->
      let cp = Sandbox.Compiled.compile machine program in
      shared_machine_runner (fun () -> Sandbox.Compiled.exec cp)
    | Sandbox.Exec.Batched -> batched_runner program
    | Sandbox.Exec.Native -> (
      (* Native worker where possible; batched lanes when the worker
         couldn't start or the program is unencodable. *)
      match nbatch with
      | None -> batched_runner program
      | Some nb ->
        (match Sandbox.Native.compile nb program with
         | None -> batched_runner program
         | Some np ->
           fun tc ->
             Sandbox.Native.reset nb;
             Sandbox.Native.apply_testcase nb ~lane:0 tc;
             let (_crashed : bool) = Sandbox.Native.exec np in
             (match Sandbox.Native.fault nb ~lane:0 with
              | None -> Some (Sandbox.Native.read_outputs nb ~lane:0 spec)
              | Some _ -> None)))
  in
  {
    spec;
    rewrite;
    exec_target = runner spec.Sandbox.Spec.program;
    exec_rewrite = runner rewrite;
  }

let spec t = t.spec

(* One target run + one rewrite run; [None] is divergent signal
   behaviour.  Every public evaluator is a view of this, so a combined
   query costs exactly one pair of executions. *)
let total_ulp t xs =
  let tc = Sandbox.Spec.testcase_of_floats t.spec xs in
  match t.exec_target tc with
  | None ->
    (* The spec's input ranges must keep the target from faulting; if it
       does anyway, charge it as divergent. *)
    None
  | Some expected ->
    (match t.exec_rewrite tc with
     | None -> None
     | Some actual ->
       let total = ref Ulp.zero in
       Array.iteri
         (fun i e ->
           total := Ulp.add_sat !total (Sandbox.Spec.value_ulp e actual.(i)))
         expected;
       Some !total)

let eval_ulp t xs =
  match total_ulp t xs with
  | None -> Ulp.max_value
  | Some u -> u

let eval t xs =
  match total_ulp t xs with
  | None -> top_eta
  | Some u -> Ulp.to_float u

let eval_both t xs =
  match total_ulp t xs with
  | None -> (top_eta, Ulp.max_value)
  | Some u -> (Ulp.to_float u, u)
