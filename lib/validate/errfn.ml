type t = {
  spec : Sandbox.Spec.t;
  rewrite : Program.t;
  machine : Sandbox.Machine.t;
  pristine : Sandbox.Machine.t;
  run_target : unit -> Sandbox.Exec.result;
  run_rewrite : unit -> Sandbox.Exec.result;
}

let top_eta = 0x1p64

let create ?(engine = Sandbox.Exec.Compiled) spec ~rewrite =
  let machine = Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size () in
  let pristine = Sandbox.Machine.copy machine in
  (* Validation evaluates the same two programs millions of times, so
     under the compiled engine both are translated exactly once, here. *)
  let runner program =
    match engine with
    | Sandbox.Exec.Interp -> fun () -> Sandbox.Exec.run machine program
    | Sandbox.Exec.Compiled ->
      let cp = Sandbox.Compiled.compile machine program in
      fun () -> Sandbox.Compiled.exec cp
  in
  {
    spec;
    rewrite;
    machine;
    pristine;
    run_target = runner spec.Sandbox.Spec.program;
    run_rewrite = runner rewrite;
  }

let spec t = t.spec

let run_and_read t run tc =
  Sandbox.Machine.restore_from ~src:t.pristine ~dst:t.machine;
  Sandbox.Testcase.apply tc t.machine;
  let r = run () in
  match r.Sandbox.Exec.outcome with
  | Sandbox.Exec.Finished -> Some (Sandbox.Spec.read_outputs t.spec t.machine)
  | Sandbox.Exec.Faulted _ -> None

(* One target run + one rewrite run; [None] is divergent signal
   behaviour.  Every public evaluator is a view of this, so a combined
   query costs exactly one pair of executions. *)
let total_ulp t xs =
  let tc = Sandbox.Spec.testcase_of_floats t.spec xs in
  match run_and_read t t.run_target tc with
  | None ->
    (* The spec's input ranges must keep the target from faulting; if it
       does anyway, charge it as divergent. *)
    None
  | Some expected ->
    (match run_and_read t t.run_rewrite tc with
     | None -> None
     | Some actual ->
       let total = ref Ulp.zero in
       Array.iteri
         (fun i e ->
           total := Ulp.add_sat !total (Sandbox.Spec.value_ulp e actual.(i)))
         expected;
       Some !total)

let eval_ulp t xs =
  match total_ulp t xs with
  | None -> Ulp.max_value
  | Some u -> u

let eval t xs =
  match total_ulp t xs with
  | None -> top_eta
  | Some u -> Ulp.to_float u

let eval_both t xs =
  match total_ulp t xs with
  | None -> (top_eta, Ulp.max_value)
  | Some u -> (Ulp.to_float u, u)
