type t = {
  mu : float;
  sigma : float;
  ranges : Sandbox.Spec.frange array;
  spec : Sandbox.Spec.t;
}

let create ?(mu = 0.) ?(sigma = 1.) spec =
  { mu; sigma; ranges = Sandbox.Spec.input_ranges spec; spec }

let initial g t = Sandbox.Spec.random_floats g t.spec

let step g t xs =
  Array.mapi
    (fun i x ->
      let r = t.ranges.(i) in
      let x' = x +. Rng.Dist.normal g ~mu:t.mu ~sigma:t.sigma in
      if x' < r.Sandbox.Spec.lo || x' > r.Sandbox.Spec.hi then x else x')
    xs
