(** MCMC validation (Eq. 15): sample the error function with
    Metropolis-Hastings to hunt for the input maximizing the ULP error
    between target and rewrite, terminating when the Geweke diagnostic says
    the chain has mixed.  The largest observed sample is the reported bound.

    This establishes strong evidence of correctness within η, not a formal
    proof (the paper's "validation" vs "verification" distinction).

    Both drivers stream telemetry through an optional {!Obs.Sink.t}
    ([validate_start], [val_new_max], [val_checkpoint], [geweke],
    [validate_end] — see [docs/TELEMETRY.md]).  Telemetry never touches
    the RNG, so verdicts are identical with or without a sink. *)

type config = {
  max_proposals : int;  (** hard iteration cap (the paper used 100M) *)
  min_samples : int;  (** don't test convergence before this many samples *)
  check_every : int;  (** Geweke test interval *)
  z_threshold : float;  (** |Z| below this counts as mixed *)
  sigma : float;  (** proposal standard deviation (Eq. 16) *)
  seed : int64;
  trace_points : int;
}

val default_config : config
(** 2M proposal cap, check every 50k from 100k on, |Z| < 0.5, σ = 1. *)

type trace_entry = {
  iter : int;
  best_err : float;
}

type verdict = {
  max_err : Ulp.t;  (** largest observed error *)
  max_err_input : float array;  (** the input exposing it *)
  validated : bool;  (** max_err ≤ η and the chain mixed *)
  mixed : bool;
  geweke_z : float;  (** last computed Z statistic *)
  iterations : int;
  trace : trace_entry list;
}

val run : ?obs:Obs.Sink.t -> ?config:config -> eta:Ulp.t -> Errfn.t -> verdict

val run_strategy :
  ?obs:Obs.Sink.t ->
  ?config:config -> strategy:[ `Mcmc | `Hill | `Anneal | `Random ] ->
  eta:Ulp.t -> Errfn.t -> verdict
(** §6.4 comparison: the same max-error hunt under alternate acceptance
    rules (random restarts for [`Random], greedy for [`Hill], a decaying
    temperature for [`Anneal]). *)
