(** MCMC validation (Eq. 15): sample the error function with
    Metropolis-Hastings to hunt for the input maximizing the ULP error
    between target and rewrite, terminating when the Geweke diagnostic says
    the chain has mixed.  The largest observed sample is the reported bound.

    This establishes strong evidence of correctness within η, not a formal
    proof (the paper's "validation" vs "verification" distinction).

    Both drivers stream telemetry through an optional {!Obs.Sink.t}
    ([validate_start], [val_new_max], [val_checkpoint], [geweke],
    [validate_end] — see [docs/TELEMETRY.md]).  Telemetry never touches
    the RNG, so verdicts are identical with or without a sink. *)

type config = {
  max_proposals : int;  (** hard iteration cap (the paper used 100M) *)
  min_samples : int;  (** don't test convergence before this many samples *)
  check_every : int;  (** Geweke test interval *)
  z_threshold : float;  (** |Z| below this counts as mixed *)
  sigma : float;  (** proposal standard deviation (Eq. 16) *)
  seed : int64;
  trace_points : int;
}

val default_config : config
(** 2M proposal cap, check every 50k from 100k on, |Z| < 0.5, σ = 1. *)

type trace_entry = {
  iter : int;
  best_err : float;
}

type verdict = {
  max_err : Ulp.t;  (** largest observed error *)
  max_err_input : float array;  (** the input exposing it *)
  validated : bool;  (** max_err ≤ η and the chain mixed *)
  mixed : bool;
  geweke_z : float;  (** last computed Z statistic *)
  iterations : int;
  trace : trace_entry list;
}

val run : ?obs:Obs.Sink.t -> ?config:config -> eta:Ulp.t -> Errfn.t -> verdict

(** Incremental validation: the same MCMC max-error hunt as {!run}, but
    resumable in slices so a driver can interleave it with search.  Two
    behavioural differences from {!run}, both in the caller's favour:

    - {b early refutation} — the session stops the moment the observed
      error exceeds η, without waiting for the chain to mix.  A frontier
      driver demoting a candidate needs only the counterexample, not a
      tight bound, so the remaining budget goes back to search.
    - {b sliced budget} — {!advance} runs at most [proposals] more
      iterations and returns the session status, so callers decide how
      much validation to buy between search bursts.

    A session driven to [Mixed]/[Exhausted] in one [advance] call visits
    exactly the samples {!run} would visit (same RNG stream, same accept
    rule); only the stopping rule differs. *)
module Incremental : sig
  type t

  type status =
    | Running  (** budget slice spent; call {!advance} again *)
    | Refuted  (** observed error exceeded η — demote the candidate *)
    | Mixed  (** Geweke says the chain mixed; the bound is trustworthy *)
    | Exhausted  (** [max_proposals] spent without mixing *)

  val create : ?obs:Obs.Sink.t -> ?config:config -> eta:Ulp.t -> Errfn.t -> t
  (** Draws the chain's initial input and evaluates it; a session can be
      [Refuted] before the first {!advance}. *)

  val status : t -> status

  val advance : t -> proposals:int -> status
  (** Run up to [proposals] more iterations.  Terminal statuses are
      sticky: advancing a finished session is a no-op. *)

  val verdict : t -> verdict
  (** The verdict so far (callable in any status).  [validated] is only
      meaningful once the session is terminal; on [Refuted] the verdict
      carries the counterexample in [max_err_input]. *)
end

val run_strategy :
  ?obs:Obs.Sink.t ->
  ?config:config -> strategy:[ `Mcmc | `Hill | `Anneal | `Random ] ->
  eta:Ulp.t -> Errfn.t -> verdict
(** §6.4 comparison: the same max-error hunt under alternate acceptance
    rules (random restarts for [`Random], greedy for [`Hill], a decaying
    temperature for [`Anneal]). *)
