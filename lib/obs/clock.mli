(** Monotonic time for telemetry: a thin wrapper over the CLOCK_MONOTONIC
    stub shipped with bechamel, with a swappable source so tests can run
    deterministically against a fake clock.

    All durations derived from this module are wall-clock monotonic —
    unaffected by NTP steps — which is what throughput numbers
    (evaluations/sec) need. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary (but fixed, monotone) origin. *)

val elapsed_s : since:int64 -> float
(** Seconds elapsed since an earlier {!now_ns} reading. *)

val set_source : (unit -> int64) -> unit
(** Install a fake clock (tests only; not synchronized across domains). *)

val reset_source : unit -> unit
(** Restore the real monotonic clock. *)
