type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool a, Bool b -> Bool.equal a b
  | Int a, Int b -> Int.equal a b
  | Float a, Float b -> (Float.is_nan a && Float.is_nan b) || Float.equal a b
  | String a, String b -> String.equal a b
  | List a, List b ->
    List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
    List.length a = List.length b
    && List.for_all2
         (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
         a b
  | _ -> false

(* ----- printing ----- *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

type float_encoding =
  [ `Sentinels  (** ["NaN"] / ["Infinity"] / ["-Infinity"] JSON strings *)
  | `Bare  (** bare [NaN] / [Infinity] / [-Infinity] tokens (non-standard) *)
  ]

(* Token for a non-finite float, or None for a finite one. *)
let nonfinite_token f =
  if Float.is_nan f then Some "NaN"
  else if f = Float.infinity then Some "Infinity"
  else if f = Float.neg_infinity then Some "-Infinity"
  else None

let finite_repr f =
  let s = Printf.sprintf "%.12g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec add_json ~floats buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (match nonfinite_token f with
     | None -> Buffer.add_string buf (finite_repr f)
     | Some tok ->
       (match floats with
        | `Bare -> Buffer.add_string buf tok
        | `Sentinels ->
          Buffer.add_char buf '"';
          Buffer.add_string buf tok;
          Buffer.add_char buf '"'))
  | String s ->
    Buffer.add_char buf '"';
    add_escaped buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_json ~floats buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        add_escaped buf k;
        Buffer.add_string buf "\":";
        add_json ~floats buf v)
      fields;
    Buffer.add_char buf '}'

let to_string ?(floats : float_encoding = `Sentinels) v =
  let buf = Buffer.create 256 in
  add_json ~floats buf v;
  Buffer.contents buf

(* ----- parsing ----- *)

exception Parse_error of string

type state = {
  s : string;
  mutable pos : int;
  sentinels : bool;
      (* decode the strings "NaN"/"Infinity"/"-Infinity" as floats *)
}

let error st msg =
  raise (Parse_error (Printf.sprintf "offset %d: %s" st.pos msg))

let at_end st = st.pos >= String.length st.s
let peek st = st.s.[st.pos]

let skip_ws st =
  while
    (not (at_end st))
    && (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  if at_end st || peek st <> c then error st (Printf.sprintf "expected %c" c);
  st.pos <- st.pos + 1

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.equal (String.sub st.s st.pos n) word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 st =
  if st.pos + 4 > String.length st.s then error st "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub st.s st.pos 4) in
  st.pos <- st.pos + 4;
  v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end st then error st "unterminated string";
    match peek st with
    | '"' -> st.pos <- st.pos + 1
    | '\\' ->
      st.pos <- st.pos + 1;
      if at_end st then error st "unterminated escape";
      let c = peek st in
      st.pos <- st.pos + 1;
      (match c with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         let u = hex4 st in
         if u >= 0xd800 && u <= 0xdbff then begin
           (* high surrogate: require the paired low surrogate *)
           if
             st.pos + 2 <= String.length st.s
             && peek st = '\\'
             && st.s.[st.pos + 1] = 'u'
           then begin
             st.pos <- st.pos + 2;
             let lo = hex4 st in
             if lo < 0xdc00 || lo > 0xdfff then error st "invalid surrogate pair";
             add_utf8 buf
               (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
           end
           else error st "lone high surrogate"
         end
         else if u >= 0xdc00 && u <= 0xdfff then error st "lone low surrogate"
         else add_utf8 buf u
       | c -> error st (Printf.sprintf "invalid escape \\%c" c));
      go ()
    | c ->
      st.pos <- st.pos + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (not (at_end st)) && is_num_char (peek st) do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  if text = "" then error st "expected a number";
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error st (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (* out of int range: fall back to float *)
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> error st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  if at_end st then error st "unexpected end of input";
  match peek st with
  | '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if (not (at_end st)) && peek st = '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        if at_end st then error st "unterminated object";
        match peek st with
        | ',' ->
          st.pos <- st.pos + 1;
          fields ((k, v) :: acc)
        | '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> error st "expected , or } in object"
      in
      Obj (fields [])
    end
  | '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if (not (at_end st)) && peek st = ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        if at_end st then error st "unterminated array";
        match peek st with
        | ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> error st "expected , or ] in array"
      in
      List (items [])
    end
  | '"' ->
    let s = parse_string st in
    if st.sentinels then
      match s with
      | "NaN" -> Float Float.nan
      | "Infinity" -> Float Float.infinity
      | "-Infinity" -> Float Float.neg_infinity
      | _ -> String s
    else String s
  | 't' -> literal st "true" (Bool true)
  | 'f' -> literal st "false" (Bool false)
  | 'n' -> literal st "null" Null
  | 'N' -> literal st "NaN" (Float Float.nan)
  | 'I' -> literal st "Infinity" (Float Float.infinity)
  | '-' when
      st.pos + 1 < String.length st.s && st.s.[st.pos + 1] = 'I' ->
    literal st "-Infinity" (Float Float.neg_infinity)
  | '-' | '0' .. '9' -> parse_number st
  | c -> error st (Printf.sprintf "unexpected character %C" c)

let of_string ?(float_sentinels = false) s =
  let st = { s; pos = 0; sentinels = float_sentinels } in
  match
    let v = parse_value st in
    skip_ws st;
    if not (at_end st) then error st "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn ?float_sentinels s =
  match of_string ?float_sentinels s with
  | Ok v -> v
  | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

(* ----- accessors ----- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
