module Counter = struct
  type t = {
    name : string;
    mutable value : int;
  }

  let create ?(init = 0) name = { name; value = init }
  let name t = t.name
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let value t = t.value
  let reset t = t.value <- 0
end

module Timer = struct
  type t = {
    name : string;
    mutable acc_ns : int64;
    mutable started : int64 option;
    mutable laps : int;
  }

  let create name = { name; acc_ns = 0L; started = None; laps = 0 }
  let name t = t.name
  let start t = t.started <- Some (Clock.now_ns ())

  let stop t =
    match t.started with
    | None -> ()
    | Some t0 ->
      t.acc_ns <- Int64.add t.acc_ns (Int64.sub (Clock.now_ns ()) t0);
      t.laps <- t.laps + 1;
      t.started <- None

  let time t f =
    start t;
    Fun.protect ~finally:(fun () -> stop t) f

  let elapsed_s t =
    let running =
      match t.started with
      | None -> 0L
      | Some t0 -> Int64.sub (Clock.now_ns ()) t0
    in
    Int64.to_float (Int64.add t.acc_ns running) *. 1e-9

  let laps t = t.laps

  let rate t n =
    let s = elapsed_s t in
    if s > 0. then float_of_int n /. s else 0.

  let reset t =
    t.acc_ns <- 0L;
    t.started <- None;
    t.laps <- 0
end

module Histogram = struct
  (* bucket 0: v <= 0 or NaN; bucket 1+i: frexp exponent i-64, i in 0..127 *)
  let buckets = 129

  type t = {
    name : string;
    counts : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create name =
    {
      name;
      counts = Array.make buckets 0;
      count = 0;
      sum = 0.;
      min_v = Float.infinity;
      max_v = Float.neg_infinity;
    }

  let name t = t.name

  let bucket_of v =
    if Float.is_nan v || v <= 0. then 0
    else begin
      let _, e = Float.frexp v in
      1 + Stdlib.min 127 (Stdlib.max 0 (e + 64))
    end

  let observe t v =
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
  let min_value t = if t.count = 0 then 0. else t.min_v
  let max_value t = if t.count = 0 then 0. else t.max_v

  (* midpoint of bucket i: values in [2^(e-1), 2^e) for e = i - 65 *)
  let representative i =
    if i = 0 then 0. else 0.75 *. Float.ldexp 1.0 (i - 65)

  let quantile t q =
    if t.count = 0 then 0.
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let target = Stdlib.max 1 (int_of_float (Float.round (q *. float_of_int t.count))) in
      let rec go i cum =
        if i >= buckets then max_value t
        else begin
          let cum = cum + t.counts.(i) in
          if cum >= target then representative i else go (i + 1) cum
        end
      in
      go 0 0
    end

  let reset t =
    Array.fill t.counts 0 buckets 0;
    t.count <- 0;
    t.sum <- 0.;
    t.min_v <- Float.infinity;
    t.max_v <- Float.neg_infinity
end

type metric =
  | M_counter of Counter.t
  | M_timer of Timer.t
  | M_histogram of Histogram.t

type registry = { mutable metrics : metric list (* reversed *) }

let registry () = { metrics = [] }

let metric_name = function
  | M_counter c -> Counter.name c
  | M_timer t -> Timer.name t
  | M_histogram h -> Histogram.name h

let find r name =
  List.find_opt (fun m -> String.equal (metric_name m) name) r.metrics

let counter r name =
  match find r name with
  | Some (M_counter c) -> c
  | Some _ -> invalid_arg (name ^ " is registered as a different metric kind")
  | None ->
    let c = Counter.create name in
    r.metrics <- M_counter c :: r.metrics;
    c

let timer r name =
  match find r name with
  | Some (M_timer t) -> t
  | Some _ -> invalid_arg (name ^ " is registered as a different metric kind")
  | None ->
    let t = Timer.create name in
    r.metrics <- M_timer t :: r.metrics;
    t

let histogram r name =
  match find r name with
  | Some (M_histogram h) -> h
  | Some _ -> invalid_arg (name ^ " is registered as a different metric kind")
  | None ->
    let h = Histogram.create name in
    r.metrics <- M_histogram h :: r.metrics;
    h

let metric_to_json = function
  | M_counter c -> Json.Int (Counter.value c)
  | M_timer t ->
    Json.Obj
      [
        ("elapsed_s", Json.Float (Timer.elapsed_s t));
        ("laps", Json.Int (Timer.laps t));
      ]
  | M_histogram h ->
    Json.Obj
      [
        ("count", Json.Int (Histogram.count h));
        ("mean", Json.Float (Histogram.mean h));
        ("min", Json.Float (Histogram.min_value h));
        ("max", Json.Float (Histogram.max_value h));
        ("p50", Json.Float (Histogram.quantile h 0.5));
        ("p90", Json.Float (Histogram.quantile h 0.9));
        ("p99", Json.Float (Histogram.quantile h 0.99));
      ]

let to_json r =
  Json.Obj
    (List.rev_map (fun m -> (metric_name m, metric_to_json m)) r.metrics)
