type event = {
  name : string;
  t_ms : float;
  fields : (string * Json.t) list;
}

type chan = {
  oc : out_channel;
  close_oc : bool;
  mutable closed : bool;
}

type t =
  | Null
  | Chan of chan
  | Mem of event list ref
  | Cb of (event -> unit)
  | Tee of t * t

(* Fixed at module load, before any domain can spawn. *)
let epoch = Clock.now_ns ()

let null = Null

let enabled = function
  | Null -> false
  | _ -> true

let of_channel ?(close = false) oc = Chan { oc; close_oc = close; closed = false }
let to_file path = of_channel ~close:true (open_out path)
let memory () = Mem (ref [])
let callback f = Cb f

let tee a b =
  match a, b with
  | Null, s | s, Null -> s
  | a, b -> Tee (a, b)

let event_to_json ev =
  Json.Obj
    (("event", Json.String ev.name)
    :: ("t_ms", Json.Float ev.t_ms)
    :: ev.fields)

let event_of_json json =
  match json with
  | Json.Obj fields ->
    (match List.assoc_opt "event" fields, List.assoc_opt "t_ms" fields with
     | Some (Json.String name), Some t ->
       (match Json.to_float_opt t with
        | Some t_ms ->
          let fields =
            List.filter
              (fun (k, _) -> k <> "event" && k <> "t_ms")
              fields
          in
          Ok { name; t_ms; fields }
        | None -> Error "t_ms is not a number")
     | _ -> Error "missing \"event\" or \"t_ms\" field")
  | _ -> Error "event is not a JSON object"

let event_to_string ?floats ev = Json.to_string ?floats (event_to_json ev)

(* Sentinel decoding on so events written with the default encoding
   round-trip; bare legacy tokens are always accepted by the parser. *)
let event_of_string line =
  match Json.of_string ~float_sentinels:true line with
  | Error _ as e -> e
  | Ok json -> event_of_json json

let event_equal a b =
  String.equal a.name b.name
  && Json.equal (Json.Float a.t_ms) (Json.Float b.t_ms)
  && Json.equal (Json.Obj a.fields) (Json.Obj b.fields)

let rec deliver t ev =
  match t with
  | Null -> ()
  | Mem buf -> buf := ev :: !buf
  | Cb f -> f ev
  | Chan c ->
    if not c.closed then begin
      output_string c.oc (event_to_string ev);
      output_char c.oc '\n';
      flush c.oc
    end
  | Tee (a, b) ->
    deliver a ev;
    deliver b ev

let emit t name fields =
  match t with
  | Null -> ()
  | t ->
    let t_ms = Int64.to_float (Int64.sub (Clock.now_ns ()) epoch) *. 1e-6 in
    deliver t { name; t_ms; fields }

let rec drain = function
  | Mem buf ->
    let evs = List.rev !buf in
    buf := [];
    evs
  | Tee (a, b) -> drain a @ drain b
  | Null | Chan _ | Cb _ -> []

let rec close = function
  | Chan c ->
    if not c.closed then begin
      c.closed <- true;
      if c.close_oc then close_out c.oc else flush c.oc
    end
  | Tee (a, b) ->
    close a;
    close b
  | Null | Mem _ | Cb _ -> ()
