type event = {
  name : string;
  t_ms : float;
  fields : (string * Json.t) list;
}

(* Writers are serialized per sink: OCaml 5 channels lock individual
   operations, but one event was three operations (string, newline,
   flush), so two domains sharing a sink could interleave partial lines
   into unparseable JSONL.  Each chan now renders the whole line first
   and writes it under its own mutex; [Mem] appends under a mutex for the
   same reason (list cons on a shared ref is not atomic). *)
type chan = {
  oc : out_channel;
  close_oc : bool;
  mutable closed : bool;
  lock : Mutex.t;
}

type mem = {
  mutable evs : event list;  (** newest first *)
  mem_lock : Mutex.t;
}

type t =
  | Null
  | Chan of chan
  | Mem of mem
  | Cb of (event -> unit)
  | Tee of t * t

(* Fixed at module load, before any domain can spawn. *)
let epoch = Clock.now_ns ()

let null = Null

let enabled = function
  | Null -> false
  | _ -> true

let of_channel ?(close = false) oc =
  Chan { oc; close_oc = close; closed = false; lock = Mutex.create () }

let to_file path = of_channel ~close:true (open_out path)
let memory () = Mem { evs = []; mem_lock = Mutex.create () }
let callback f = Cb f

let tee a b =
  match a, b with
  | Null, s | s, Null -> s
  | a, b -> Tee (a, b)

let event_to_json ev =
  Json.Obj
    (("event", Json.String ev.name)
    :: ("t_ms", Json.Float ev.t_ms)
    :: ev.fields)

let event_of_json json =
  match json with
  | Json.Obj fields ->
    (match List.assoc_opt "event" fields, List.assoc_opt "t_ms" fields with
     | Some (Json.String name), Some t ->
       (match Json.to_float_opt t with
        | Some t_ms ->
          let fields =
            List.filter
              (fun (k, _) -> k <> "event" && k <> "t_ms")
              fields
          in
          Ok { name; t_ms; fields }
        | None -> Error "t_ms is not a number")
     | _ -> Error "missing \"event\" or \"t_ms\" field")
  | _ -> Error "event is not a JSON object"

let event_to_string ?floats ev = Json.to_string ?floats (event_to_json ev)

(* Sentinel decoding on so events written with the default encoding
   round-trip; bare legacy tokens are always accepted by the parser. *)
let event_of_string line =
  match Json.of_string ~float_sentinels:true line with
  | Error _ as e -> e
  | Ok json -> event_of_json json

let event_equal a b =
  String.equal a.name b.name
  && Json.equal (Json.Float a.t_ms) (Json.Float b.t_ms)
  && Json.equal (Json.Obj a.fields) (Json.Obj b.fields)

let rec deliver t ev =
  match t with
  | Null -> ()
  | Mem m ->
    Mutex.lock m.mem_lock;
    m.evs <- ev :: m.evs;
    Mutex.unlock m.mem_lock
  | Cb f -> f ev
  | Chan c ->
    (* render outside the lock — only the write is serialized *)
    let line = event_to_string ev ^ "\n" in
    Mutex.lock c.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock c.lock)
      (fun () ->
        if not c.closed then begin
          output_string c.oc line;
          flush c.oc
        end)
  | Tee (a, b) ->
    deliver a ev;
    deliver b ev

let emit t name fields =
  match t with
  | Null -> ()
  | t ->
    let t_ms = Int64.to_float (Int64.sub (Clock.now_ns ()) epoch) *. 1e-6 in
    deliver t { name; t_ms; fields }

let rec drain = function
  | Mem m ->
    Mutex.lock m.mem_lock;
    let evs = List.rev m.evs in
    m.evs <- [];
    Mutex.unlock m.mem_lock;
    evs
  | Tee (a, b) -> drain a @ drain b
  | Null | Chan _ | Cb _ -> []

let rec close = function
  | Chan c ->
    Mutex.lock c.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock c.lock)
      (fun () ->
        if not c.closed then begin
          c.closed <- true;
          if c.close_oc then close_out c.oc else flush c.oc
        end)
  | Tee (a, b) ->
    close a;
    close b
  | Null | Mem _ | Cb _ -> ()
