(** A minimal JSON tree, printer, and parser — just enough for the JSONL
    telemetry stream ({!Sink}) without an external dependency.

    The printer emits one-line, machine-readable JSON.  Non-finite floats
    are written as the bare tokens [NaN], [Infinity], and [-Infinity]
    (the same non-strict extension Yojson uses), and the parser accepts
    them back, so every event round-trips even when a metric is infinite
    (e.g. the Geweke Z before the first convergence check). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality; two [NaN] floats compare equal so round-trip
    tests can compare parsed events. *)

val to_string : t -> string
(** One line, no trailing newline.  Floats print with the fewest digits
    that round-trip back to the same double. *)

val of_string : string -> (t, string) result
(** Parses a complete JSON value (rejecting trailing garbage).  Accepts
    the [NaN]/[Infinity] extension and [\uXXXX] escapes (surrogate pairs
    are combined and encoded as UTF-8). *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse errors. *)

(** {2 Accessors} — convenience for tests and consumers. *)

val member : string -> t -> t option
(** [member key (Obj _)] is the value bound to [key], if any. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] values are also accepted and converted. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
