(** A minimal JSON tree, printer, and parser — just enough for the JSONL
    telemetry stream ({!Sink}) without an external dependency.

    The printer emits one-line, machine-readable JSON.  Non-finite floats
    (e.g. the Geweke Z before the first convergence check) have no
    standard JSON encoding; by default they are written as the string
    sentinels ["NaN"], ["Infinity"], and ["-Infinity"], which every
    standard JSON consumer can at least load.  The legacy bare tokens
    [NaN] / [Infinity] / [-Infinity] (the non-strict extension Yojson
    uses — invalid JSON to strict parsers) remain available via
    [~floats:`Bare].  The parser always accepts the bare tokens, and
    decodes the string sentinels back into floats when asked
    ([~float_sentinels:true]), so every event round-trips under either
    encoding. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality; two [NaN] floats compare equal so round-trip
    tests can compare parsed events. *)

type float_encoding =
  [ `Sentinels
    (** non-finite floats as the JSON strings ["NaN"], ["Infinity"],
        ["-Infinity"] — standard-compliant output (default) *)
  | `Bare
    (** non-finite floats as bare [NaN] / [Infinity] / [-Infinity]
        tokens — the legacy non-standard form *)
  ]

val to_string : ?floats:float_encoding -> t -> string
(** One line, no trailing newline.  Finite floats print with the fewest
    digits that round-trip back to the same double; non-finite floats
    print per [floats] (default [`Sentinels]). *)

val of_string : ?float_sentinels:bool -> string -> (t, string) result
(** Parses a complete JSON value (rejecting trailing garbage).  Accepts
    the bare [NaN]/[Infinity] extension and [\uXXXX] escapes (surrogate
    pairs are combined and encoded as UTF-8).  With
    [~float_sentinels:true] (default [false]), string {e values} equal to
    ["NaN"], ["Infinity"], or ["-Infinity"] additionally decode as the
    corresponding float, inverting [to_string ~floats:`Sentinels]
    (object keys are never touched). *)

val of_string_exn : ?float_sentinels:bool -> string -> t
(** @raise Invalid_argument on parse errors. *)

(** {2 Accessors} — convenience for tests and consumers. *)

val member : string -> t -> t option
(** [member key (Obj _)] is the value bound to [key], if any. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] values are also accepted and converted. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
