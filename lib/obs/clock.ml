let default : unit -> int64 = Monotonic_clock.now
let source = ref default
let set_source f = source := f
let reset_source () = source := default
let now_ns () = !source ()

let elapsed_s ~since =
  Int64.to_float (Int64.sub (now_ns ()) since) *. 1e-9
