(** Lightweight in-process metrics: counters, monotonic timers, and
    log₂-bucketed histograms, plus a registry that serializes them all as
    one {!Json.t} object (the [--metrics] dump of [stoke_cli]).

    None of these are synchronized: a metric belongs to the domain that
    created it.  Parallel search keeps one set per chain and aggregates
    after joining (see {!Search.Parallel}), preserving determinism. *)

module Counter : sig
  type t

  val create : ?init:int -> string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Accumulating stopwatch on the monotonic clock.  [start]/[stop] pairs
    add laps; [elapsed_s] includes a still-running lap. *)
module Timer : sig
  type t

  val create : string -> t
  val name : t -> string
  val start : t -> unit
  val stop : t -> unit
  val time : t -> (unit -> 'a) -> 'a
  (** Runs the thunk inside a [start]/[stop] lap (stops on exceptions). *)

  val elapsed_s : t -> float
  val laps : t -> int
  val rate : t -> int -> float
  (** [rate t n] is [n] events per accumulated second (0 if no time). *)

  val reset : t -> unit
end

(** Fixed-size histogram over positive floats with one bucket per power
    of two from 2{^-64} to 2{^63} (plus a bucket for zero/negative/NaN
    observations).  Quantiles are approximate: the answer is the
    midpoint of the bucket containing the requested rank, so it is
    within 2x of the true value. *)
module Histogram : sig
  type t

  val create : string -> t
  val name : t -> string
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min_value : t -> float
  (** 0 when empty. *)

  val max_value : t -> float
  val quantile : t -> float -> float
  (** [quantile h 0.5] is the approximate median; [q] clamped to [0,1]. *)

  val reset : t -> unit
end

type registry

val registry : unit -> registry

val counter : registry -> string -> Counter.t
(** Returns the already-registered counter of that name if one exists. *)

val timer : registry -> string -> Timer.t
val histogram : registry -> string -> Histogram.t

val to_json : registry -> Json.t
(** One object keyed by metric name, in registration order.  Counters
    serialize as integers; timers as [{elapsed_s, laps}]; histograms as
    [{count, mean, min, max, p50, p90, p99}]. *)
