(** Pluggable event sinks: search and validation hot paths emit named,
    timestamped events; a sink decides where they go — a JSONL file, an
    in-memory buffer, a callback (the CLI's [--progress] printer), or
    nowhere at all.

    The {!null} sink is free: [emit] on it returns immediately, and
    callers guard any expensive field construction with {!enabled}, so
    an instrumented search with no sink attached behaves bit-identically
    to an uninstrumented one (enforced by [test/test_obs.ml]).

    File and memory sinks serialize their writes internally (one mutex
    per sink, held only for the line write / list cons), so several
    domains may share one sink and every emitted JSONL line stays whole.
    Prefer a sink per domain where possible (see {!Search.Parallel.run})
    — contention on a shared sink costs throughput, not correctness.
    {!callback} sinks run the callback unserialized: a callback shared
    across domains must synchronize itself. *)

type event = {
  name : string;  (** e.g. ["checkpoint"], ["geweke"], ["search_end"] *)
  t_ms : float;  (** monotonic ms since process start *)
  fields : (string * Json.t) list;
}

type t

val null : t
(** Drops everything; {!enabled} is [false]. *)

val enabled : t -> bool
(** [false] only for {!null} — guard expensive field construction. *)

val of_channel : ?close:bool -> out_channel -> t
(** JSONL writer: one event per line, flushed per event so an operator
    can [tail -f] a run in flight.  [close] (default [false]) transfers
    ownership of the channel to {!close}. *)

val to_file : string -> t
(** [of_channel ~close:true (open_out path)]. *)

val memory : unit -> t
(** Buffers events in memory; fetch them with {!drain}. *)

val drain : t -> event list
(** Events accumulated by a {!memory} sink (oldest first), clearing the
    buffer; [[]] for non-memory sinks.  Recurses into {!tee}. *)

val callback : (event -> unit) -> t

val tee : t -> t -> t
(** Deliver to both (collapses {!null} operands, so a tee of two null
    sinks is itself disabled). *)

val emit : t -> string -> (string * Json.t) list -> unit
(** [emit sink name fields] — timestamps and delivers one event.  The
    field names [event] and [t_ms] are reserved for the envelope. *)

val close : t -> unit
(** Flushes and closes file sinks (recursing into tees); other sinks
    are unaffected.  Idempotent. *)

(** {2 Serialization} — the JSONL representation, shared by writers,
    tests, and external consumers (see [docs/TELEMETRY.md]). *)

val event_to_json : event -> Json.t
(** [{"event": name, "t_ms": ..., field...}] — a flat object. *)

val event_of_json : Json.t -> (event, string) result

val event_to_string : ?floats:Json.float_encoding -> event -> string
(** One JSONL line, without the trailing newline.  Non-finite float
    fields are encoded per [floats] (default [`Sentinels], i.e.
    standard-compliant JSON; pass [`Bare] for the legacy tokens). *)

(** Inverts {!event_to_string} under either encoding: bare non-finite
    tokens are accepted, and the string sentinels ["NaN"] /
    ["Infinity"] / ["-Infinity"] in value position decode as floats. *)
val event_of_string : string -> (event, string) result

val event_equal : event -> event -> bool
