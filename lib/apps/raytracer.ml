type ops = {
  add : Vec3.t -> Vec3.t -> Vec3.t;
  scale : Vec3.t -> float -> Vec3.t;
  dot : Vec3.t -> Vec3.t -> float;
  delta : Vec3.t -> Vec3.t -> float -> float -> Vec3.t;
  cycles : unit -> int;
  calls : unit -> int;
}

let native_ops () =
  {
    add = Vec3.add;
    scale = Vec3.scale;
    dot = Vec3.dot;
    delta =
      (fun a b r1 r2 ->
        Vec3.add
          (Vec3.scale (Vec3.scale a (Fp32.sub r1 0.5)) 99.)
          (Vec3.scale (Vec3.scale b (Fp32.sub r2 0.5)) 99.));
    cycles = (fun () -> 0);
    calls = (fun () -> 0);
  }

type kernel_set = {
  k_scale : Program.t;
  k_dot : Program.t;
  k_add : Program.t;
  k_delta : Program.t;
}

let target_kernels =
  {
    k_scale = Kernels.Aek_kernels.scale_spec.Sandbox.Spec.program;
    k_dot = Kernels.Aek_kernels.dot_spec.Sandbox.Spec.program;
    k_add = Kernels.Aek_kernels.add_spec.Sandbox.Spec.program;
    k_delta = Kernels.Aek_kernels.delta_spec.Sandbox.Spec.program;
  }

let kernel_ops ks =
  let runner = Kernel_runner.create () in
  {
    add = (fun a b -> Kernel_runner.add3 runner ks.k_add a b);
    scale = (fun v k -> Kernel_runner.scale runner ks.k_scale v k);
    dot = (fun a b -> Kernel_runner.dot runner ks.k_dot a b);
    delta = (fun a b r1 r2 -> Kernel_runner.delta runner ks.k_delta a b r1 r2);
    cycles = (fun () -> Kernel_runner.cycles runner);
    calls = (fun () -> Kernel_runner.calls runner);
  }

(* The aek sphere bitmap: 9 rows spelling "aek" (Kensler's original G
   array), bit k of row j puts a unit sphere at (k, 0, j+4). *)
let bitmap = [| 247570; 280596; 280600; 249748; 18578; 18577; 231184; 16; 16 |]

let spheres =
  let out = ref [] in
  Array.iteri
    (fun j row ->
      for k = 0 to 19 do
        if row land (1 lsl k) <> 0 then
          out := Vec3.make (float_of_int k) 0. (float_of_int (j + 4)) :: !out
      done)
    bitmap;
  Array.of_list !out

type hit =
  | Sky
  | Floor
  | Sphere

(* Trace a ray; returns (what was hit, distance, surface normal). *)
let trace ops (o : Vec3.t) (d : Vec3.t) =
  let t = ref 1e9 in
  let m = ref Sky in
  let n = ref Vec3.zero in
  let p = -.o.Vec3.z /. d.Vec3.z in
  if 0.01 < p then begin
    t := p;
    n := Vec3.make 0. 0. 1.;
    m := Floor
  end;
  Array.iter
    (fun center ->
      (* p = o - center *)
      let pvec = ops.add o (ops.scale center (-1.)) in
      let b = ops.dot pvec d in
      let c = Fp32.sub (ops.dot pvec pvec) 1.0 in
      let q = Fp32.sub (Fp32.mul b b) c in
      if q > 0. then begin
        let s = Fp32.sub (-.b) (Fp32.round (Float.sqrt q)) in
        if s < !t && s > 0.01 then begin
          t := s;
          n := Vec3.norm (ops.add pvec (ops.scale d s));
          m := Sphere
        end
      end)
    spheres;
  (!m, !t, !n)

let rand01 g = Rng.Dist.float g 1.0

(* Sample the color along a ray. *)
let rec sample ops g o d depth =
  let m, t, n = trace ops o d in
  match m with
  | Sky ->
    let k = Float.pow (1. -. d.Vec3.z) 4. in
    Vec3.make (0.7 *. k) (0.6 *. k) (1.0 *. k)
  | Floor | Sphere ->
    let h = ops.add o (ops.scale d t) in
    let l =
      Vec3.norm
        (ops.add
           (Vec3.make (9. +. rand01 g) (9. +. rand01 g) 16.)
           (ops.scale h (-1.)))
    in
    let r = ops.add d (ops.scale n (ops.dot n d *. -2.)) in
    let b =
      let b0 = ops.dot l n in
      if b0 < 0. then 0.
      else begin
        let m', _, _ = trace ops h l in
        match m' with
        | Sky -> b0
        | Floor | Sphere -> 0.
      end
    in
    (match m with
     | Floor ->
       let hs = ops.scale h 0.2 in
       let checker =
         int_of_float (Float.ceil hs.Vec3.x +. Float.ceil hs.Vec3.y) land 1 = 1
       in
       let base = if checker then Vec3.make 3. 1. 1. else Vec3.make 3. 3. 3. in
       Vec3.scale base ((b *. 0.2) +. 0.1)
     | Sphere ->
       let spec =
         Float.pow (ops.dot l r *. if b > 0. then 1. else 0.) 99.
       in
       let spec = if Float.is_nan spec || spec < 0. then 0. else spec in
       let self = Vec3.make spec spec spec in
       if depth <= 0 then self
       else Vec3.add self (Vec3.scale (sample ops g h r (depth - 1)) 0.5)
     | Sky -> assert false)

type stats = {
  kernel_cycles : int;
  kernel_calls : int;
}

type full = {
  image : Ppm.t;
  radiance : Vec3.t array;  (** pre-quantization accumulator, row-major *)
  stats : stats;
}

let render_full ?(width = 64) ?(height = 48) ?(samples = 6) ?(max_depth = 4)
    ~seed ops =
  let g = Rng.Xoshiro256.create seed in
  let img = Ppm.create width height in
  (* Camera basis: a.z = 0 and b.x = b.y = 0 exactly, by construction. *)
  let gdir = Vec3.norm (Vec3.make (-6.) (-16.) 0.) in
  let a = Vec3.scale (Vec3.norm (Vec3.cross (Vec3.make 0. 0. 1.) gdir)) 0.002 in
  let b = Vec3.scale (Vec3.norm (Vec3.cross gdir a)) 0.002 in
  let c = Vec3.add (Vec3.scale (Vec3.add a b) (-256.)) gdir in
  let eye = Vec3.make 17. 16. 8. in
  let gain = 3.5 *. 64. /. float_of_int samples in
  let radiance = Array.make (width * height) Vec3.zero in
  for yi = 0 to height - 1 do
    for xi = 0 to width - 1 do
      (* Virtual 512×512 viewport sampled on the width×height grid. *)
      let vx = float_of_int (width - 1 - xi) *. (512. /. float_of_int width) in
      let vy = float_of_int (height - 1 - yi) *. (512. /. float_of_int height) in
      let accum = ref (Vec3.make 13. 13. 13.) in
      for _s = 1 to samples do
        let t = ops.delta a b (rand01 g) (rand01 g) in
        let o = Vec3.add eye t in
        let dir =
          Vec3.norm
            (Vec3.add (Vec3.scale t (-1.))
               (Vec3.scale
                  (Vec3.add
                     (Vec3.add
                        (Vec3.scale a (rand01 g +. vx))
                        (Vec3.scale b (vy +. rand01 g)))
                     c)
                  16.))
        in
        let col = sample ops g o dir max_depth in
        accum := Vec3.add !accum (Vec3.scale col gain)
      done;
      let v = !accum in
      radiance.((yi * width) + xi) <- v;
      Ppm.set img ~x:xi ~y:yi
        ( int_of_float (Float.min 255. v.Vec3.x),
          int_of_float (Float.min 255. v.Vec3.y),
          int_of_float (Float.min 255. v.Vec3.z) )
    done
  done;
  {
    image = img;
    radiance;
    stats = { kernel_cycles = ops.cycles (); kernel_calls = ops.calls () };
  }

let render ?width ?height ?samples ?max_depth ~seed ops =
  let f = render_full ?width ?height ?samples ?max_depth ~seed ops in
  (f.image, f.stats)

let radiance_diff_count a b =
  if Array.length a <> Array.length b then
    invalid_arg "Raytracer.radiance_diff_count: size mismatch";
  let n = ref 0 in
  Array.iteri (fun i v -> if v <> b.(i) then incr n) a;
  !n
