(** The S3D diffusion leaf task (§6.2), reduced to its computational
    essence: over a grid of cells, compute diffusion coefficients for every
    ordered species pair from Arrhenius-style exponentials of the cell
    temperature.  Compute time is dominated by calls to the exp kernel; the
    non-exp work (mixture averaging) is priced by the same cycle model,
    calibrated so that exp accounts for ≈42% of the target's cycles —
    matching the paper's observation that a 2× exp speedup yields a 27%
    whole-task speedup.

    The task "loses precision elsewhere" (mixture averaging over thousands
    of cells), so it tolerates a reduced-precision exp: [tolerates] checks
    end-to-end agreement of the coefficient field against the task run with
    the target kernel. *)

type config = {
  nx : int;
  ny : int;
  species : int;
  seed : int64;
}

val default_config : config
(** 24×24 grid, 5 species. *)

type outcome = {
  checksum : float;  (** sum of all mixture-averaged coefficients *)
  exp_calls : int;
  exp_cycles : int;
  overhead_cycles : int;  (** non-exp work under the cycle model *)
  total_cycles : int;
}

val run : ?exp_program:Program.t -> config -> outcome
(** [exp_program] defaults to the S3D target kernel. *)

val speedup : baseline:outcome -> outcome -> float
(** Whole-task speedup of the second run over the baseline. *)

val tolerates : baseline:outcome -> outcome -> bool
(** Relative checksum deviation below the task's tolerance (1e-5). *)

val tolerance : float
