type config = {
  nx : int;
  ny : int;
  species : int;
  seed : int64;
}

let default_config = { nx = 24; ny = 24; species = 5; seed = 11L }

type outcome = {
  checksum : float;
  exp_calls : int;
  exp_cycles : int;
  overhead_cycles : int;
  total_cycles : int;
}

let tolerance = 1e-5

(* Non-exp work per species pair, calibrated against the target exp kernel
   so that exp ≈ 42% of total cycles (§6.2's 2×-exp → 27%-task shape). *)
let overhead_per_pair =
  let target_cycles =
    Latency.of_program Kernels.S3d.exp_program
  in
  int_of_float (float_of_int target_cycles *. (0.58 /. 0.42))

let run ?exp_program config =
  let exp_program =
    match exp_program with
    | Some p -> p
    | None -> Kernels.S3d.exp_program
  in
  let g = Rng.Xoshiro256.create config.seed in
  let runner = Kernel_runner.create () in
  (* Per-species activation parameters: arguments stay within the kernel's
     specialized input range [-3, 0]. *)
  let activation =
    Array.init config.species (fun _ -> Rng.Dist.uniform g 0.3 2.8)
  in
  let prefactor =
    Array.init config.species (fun _ -> Rng.Dist.uniform g 0.5 2.0)
  in
  let checksum = ref 0. in
  let calls = ref 0 in
  for _cx = 1 to config.nx do
    for _cy = 1 to config.ny do
      (* Cell state: temperature (normalized), pressure, mole fractions. *)
      let temp = Rng.Dist.uniform g 1.0 4.0 in
      let pressure = Rng.Dist.uniform g 0.8 1.2 in
      let fractions =
        Array.init config.species (fun _ -> Rng.Dist.uniform g 0.0 1.0)
      in
      let total_fraction = Array.fold_left ( +. ) 1e-9 fractions in
      for j = 0 to config.species - 1 do
        for k = 0 to config.species - 1 do
          (* Binary diffusion coefficient via an Arrhenius exponential. *)
          let e_jk = 0.5 *. (activation.(j) +. activation.(k)) in
          let arg = -.e_jk /. temp *. 2.0 in
          let arg = Float.max (-3.0) (Float.min 0.0 arg) in
          let rate = Kernel_runner.exp64 runner exp_program arg in
          incr calls;
          let d_jk =
            prefactor.(j) *. prefactor.(k) *. rate *. Float.sqrt temp
            /. pressure
          in
          (* Mixture-averaged accumulation — the "loses precision
             elsewhere" part of the task. *)
          checksum :=
            !checksum +. (d_jk *. fractions.(j) /. total_fraction)
        done
      done
    done
  done;
  let exp_cycles = Kernel_runner.cycles runner in
  let overhead_cycles = overhead_per_pair * !calls in
  {
    checksum = !checksum;
    exp_calls = !calls;
    exp_cycles;
    overhead_cycles;
    total_cycles = exp_cycles + overhead_cycles;
  }

let speedup ~baseline o =
  float_of_int baseline.total_cycles /. float_of_int o.total_cycles

let tolerates ~baseline o =
  Float.abs ((o.checksum -. baseline.checksum) /. baseline.checksum) < tolerance
