(** Minimal PPM (P6) image support for the ray-tracer experiments. *)

type t = {
  width : int;
  height : int;
  pixels : (int * int * int) array;  (** row-major RGB, 0–255 *)
}

val create : int -> int -> t

val set : t -> x:int -> y:int -> int * int * int -> unit
val get : t -> x:int -> y:int -> int * int * int

val write : t -> string -> unit
(** Write as binary PPM to the given path. *)

val diff_count : t -> t -> int
(** Number of pixels whose RGB differs at all (Figure 9(c/e)); raises
    [Invalid_argument] on dimension mismatch. *)

val diff_image : t -> t -> t
(** White where pixels differ, black elsewhere. *)

val equal : t -> t -> bool
