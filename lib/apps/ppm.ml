type t = {
  width : int;
  height : int;
  pixels : (int * int * int) array;
}

let create width height =
  if width <= 0 || height <= 0 then invalid_arg "Ppm.create: bad dimensions";
  { width; height; pixels = Array.make (width * height) (0, 0, 0) }

let index t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg "Ppm: pixel out of range";
  (y * t.width) + x

let set t ~x ~y rgb = t.pixels.(index t ~x ~y) <- rgb
let get t ~x ~y = t.pixels.(index t ~x ~y)

let write t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "P6\n%d %d\n255\n" t.width t.height;
      Array.iter
        (fun (r, g, b) ->
          output_char oc (Char.chr (min 255 (max 0 r)));
          output_char oc (Char.chr (min 255 (max 0 g)));
          output_char oc (Char.chr (min 255 (max 0 b))))
        t.pixels)

let check_same_dims a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Ppm: dimension mismatch"

let diff_count a b =
  check_same_dims a b;
  let n = ref 0 in
  Array.iteri (fun i p -> if p <> b.pixels.(i) then incr n) a.pixels;
  !n

let diff_image a b =
  check_same_dims a b;
  let out = create a.width a.height in
  Array.iteri
    (fun i p ->
      out.pixels.(i) <- (if p <> b.pixels.(i) then (255, 255, 255) else (0, 0, 0)))
    a.pixels;
  out

let equal a b = a.width = b.width && a.height = b.height && a.pixels = b.pixels
