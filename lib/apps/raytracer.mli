(** aek: the business-card ray tracer of §6.3, ported faithfully — sphere
    "text" from a row bitmap, checkered floor, sky gradient, soft shadows,
    specular reflections, and depth-of-field blur induced by random camera
    perturbation (the Δ kernel).

    All vector arithmetic in the hot path goes through an {!ops} record, so
    the same scene can be rendered with native single-precision math or
    with any mix of sandbox-executed kernel programs (targets or STOKE
    rewrites), and the cycle model prices each variant. *)

type ops = {
  add : Vec3.t -> Vec3.t -> Vec3.t;
  scale : Vec3.t -> float -> Vec3.t;
  dot : Vec3.t -> Vec3.t -> float;
  delta : Vec3.t -> Vec3.t -> float -> float -> Vec3.t;
      (** [delta a b r1 r2] = 99·(a·(r1−½)) + 99·(b·(r2−½)) *)
  cycles : unit -> int;  (** kernel cycles consumed so far *)
  calls : unit -> int;
}

val native_ops : unit -> ops
(** Reference single-precision implementations; zero cycles. *)

type kernel_set = {
  k_scale : Program.t;
  k_dot : Program.t;
  k_add : Program.t;
  k_delta : Program.t;
}

val target_kernels : kernel_set
(** The gcc-style targets of {!Kernels.Aek_kernels}. *)

val kernel_ops : kernel_set -> ops
(** Vector arithmetic through the sandbox interpreter. *)

type stats = {
  kernel_cycles : int;
  kernel_calls : int;
}

val render :
  ?width:int ->
  ?height:int ->
  ?samples:int ->
  ?max_depth:int ->
  seed:int64 ->
  ops ->
  Ppm.t * stats
(** Defaults: 64×48, 6 DOF samples per pixel, depth 4.  Deterministic for a
    given seed and ops. *)

type full = {
  image : Ppm.t;
  radiance : Vec3.t array;  (** pre-quantization accumulator, row-major *)
  stats : stats;
}

val render_full :
  ?width:int ->
  ?height:int ->
  ?samples:int ->
  ?max_depth:int ->
  seed:int64 ->
  ops ->
  full
(** Like {!render} but also returns the full-precision radiance buffer —
    used by the Figure 9 experiment to show that images which quantize
    identically at 8 bits still differ in the underlying floats. *)

val radiance_diff_count : Vec3.t array -> Vec3.t array -> int
(** Pixels whose pre-quantization radiance differs at all. *)
