(** Fast harness for calling sandbox-executed kernels from applications.

    A runner owns one machine and resets exactly the state a kernel rewrite
    can observe (the scratch registers and spill window in the operand
    pools) before each call, instead of copying the whole arena — this is
    what makes rendering a full image through the interpreter practical.

    Calls follow the aek ABIs of {!Kernels.Aek_kernels} (vector split
    across [xmm0]/[xmm1], memory vectors behind [rdi]/[rsi]) and the
    libimf/S3D scalar ABI (argument and result in [xmm0]). *)

type t

val create : ?engine:Sandbox.Exec.engine -> unit -> t
(** [engine] (default [Compiled]) selects the executor.  Under the
    compiled engine each distinct program (by physical identity) is
    translated once per runner and replayed on later calls.

    Caveat: the cache key is physical, so mutating a program in place
    after running it (as the search's transforms do) and running it again
    through the {e same} runner would replay the stale translation —
    applications call fixed kernel programs, which is the supported
    pattern. *)

val cycles : t -> int
(** Total kernel cycles executed so far (static latency model). *)

val calls : t -> int

val reset_counters : t -> unit

val exp64 : t -> Program.t -> float -> float
(** Scalar f64 kernel: x in [xmm0], result from [xmm0]. *)

val scalar64 : t -> Program.t -> float -> float
(** Alias of {!exp64} for any 1-argument double kernel. *)

val scale : t -> Program.t -> Vec3.t -> float -> Vec3.t
(** k in [xmm2]. *)

val dot : t -> Program.t -> Vec3.t -> Vec3.t -> float
(** First vector in registers, second behind [rdi]. *)

val add3 : t -> Program.t -> Vec3.t -> Vec3.t -> Vec3.t

val delta : t -> Program.t -> Vec3.t -> Vec3.t -> float -> float -> Vec3.t
(** Camera perturbation: vectors behind [rdi]/[rsi], r1/r2 in
    [xmm0]/[xmm1]. *)
