type t = {
  x : float;
  y : float;
  z : float;
}

let make x y z = { x = Fp32.round x; y = Fp32.round y; z = Fp32.round z }

let zero = { x = 0.; y = 0.; z = 0. }

let add a b = { x = Fp32.add a.x b.x; y = Fp32.add a.y b.y; z = Fp32.add a.z b.z }
let sub a b = { x = Fp32.sub a.x b.x; y = Fp32.sub a.y b.y; z = Fp32.sub a.z b.z }

let scale a k =
  let k = Fp32.round k in
  { x = Fp32.mul a.x k; y = Fp32.mul a.y k; z = Fp32.mul a.z k }

let dot a b =
  Fp32.add (Fp32.add (Fp32.mul a.x b.x) (Fp32.mul a.y b.y)) (Fp32.mul a.z b.z)

let cross a b =
  {
    x = Fp32.sub (Fp32.mul a.y b.z) (Fp32.mul a.z b.y);
    y = Fp32.sub (Fp32.mul a.z b.x) (Fp32.mul a.x b.z);
    z = Fp32.sub (Fp32.mul a.x b.y) (Fp32.mul a.y b.x);
  }

let norm v =
  let len = Fp32.round (Float.sqrt (dot v v)) in
  scale v (Fp32.div 1.0 len)

let to_string v = Printf.sprintf "(%g, %g, %g)" v.x v.y v.z
