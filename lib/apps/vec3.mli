(** Float triplets with single-precision arithmetic — the vector type of the
    aek ray tracer.  Components are always binary32 values (stored widened
    in OCaml floats). *)

type t = {
  x : float;
  y : float;
  z : float;
}

val make : float -> float -> float -> t
(** Components are rounded to binary32. *)

val zero : t

val add : t -> t -> t
val sub : t -> t -> t
val scale : t -> float -> t
val dot : t -> t -> float
val cross : t -> t -> t
val norm : t -> t
(** Normalize: v · (1/√(v·v)), all in single precision. *)

val to_string : t -> string
