type t = {
  m : Sandbox.Machine.t;
  engine : Sandbox.Exec.engine;
  mutable compiled : (Program.t * Sandbox.Compiled.t) list;
      (** per-runner translation cache, keyed by physical identity: the
          applications call a handful of fixed kernel programs millions
          of times, so each compiles once on first use *)
  mutable nbatch : Sandbox.Native.batch option option;
      (** native worker, forked lazily on first native run ([Some None]
          once probing found native execution unavailable) *)
  mutable ncompiled : (Program.t * Sandbox.Native.t option) list;
      (** native encodings, cached like [compiled] ([None] = program is
          unencodable, remembered so it falls back without re-probing) *)
  mutable cycles : int;
  mutable calls : int;
}

let v1_addr = Kernels.Aek_kernels.v1_addr
let v2_addr = Kernels.Aek_kernels.v2_addr

(* An application swaps between at most a few kernels per runner; bound
   the cache anyway so a caller generating programs on the fly degrades
   to compile-per-call rather than leaking. *)
let max_cached = 16

let create ?(engine = Sandbox.Exec.Compiled) () =
  let m = Sandbox.Machine.create ~mem_size:4096 () in
  { m; engine; compiled = []; nbatch = None; ncompiled = []; cycles = 0;
    calls = 0 }

let cycles t = t.cycles
let calls t = t.calls

let reset_counters t =
  t.cycles <- 0;
  t.calls <- 0

(* Zero every location a pool-drawn rewrite can observe: scratch xmm0–7,
   rax/rcx/rdx, flags, the spill window around rsp, and the two vector
   buffers. *)
let reset t =
  let m = t.m in
  for i = 0 to 15 do
    m.Sandbox.Machine.xmm.(i) <- 0L
  done;
  Sandbox.Machine.set_gp m Reg.Rax 0L;
  Sandbox.Machine.set_gp m Reg.Rcx 0L;
  Sandbox.Machine.set_gp m Reg.Rdx 0L;
  Sandbox.Machine.set_gp m Reg.Rdi v1_addr;
  Sandbox.Machine.set_gp m Reg.Rsi v2_addr;
  Sandbox.Machine.set_gp m Reg.Rsp (Sandbox.Machine.default_rsp m);
  m.Sandbox.Machine.flags.Sandbox.Machine.cf <- false;
  m.Sandbox.Machine.flags.Sandbox.Machine.zf <- false;
  m.Sandbox.Machine.flags.Sandbox.Machine.sf <- false;
  m.Sandbox.Machine.flags.Sandbox.Machine.o_f <- false;
  m.Sandbox.Machine.flags.Sandbox.Machine.pf <- false;
  let rsp = Sandbox.Machine.default_rsp m in
  Sandbox.Memory.set_bytes m.Sandbox.Machine.mem (Int64.sub rsp 32L)
    (String.make 32 '\000');
  Sandbox.Memory.set_bytes m.Sandbox.Machine.mem v1_addr (String.make 16 '\000');
  Sandbox.Memory.set_bytes m.Sandbox.Machine.mem v2_addr (String.make 16 '\000')

let compiled_for t program =
  match List.assq_opt program t.compiled with
  | Some cp -> cp
  | None ->
    let cp = Sandbox.Compiled.compile t.m program in
    if List.length t.compiled >= max_cached then t.compiled <- [];
    t.compiled <- (program, cp) :: t.compiled;
    cp

let native_batch_for t =
  match t.nbatch with
  | Some b -> b
  | None ->
    (* [run_one] reloads lane 0 — registers, flags and the whole memory
       image — from [t.m] on every call, so the state baked here is
       irrelevant; the batch only carries the worker process. *)
    let b =
      Sandbox.Native.create_batch ~want_mem:true t.m
        [| Sandbox.Testcase.empty |]
    in
    t.nbatch <- Some b;
    b

let native_for t nb program =
  match List.assq_opt program t.ncompiled with
  | Some np -> np
  | None ->
    let np = Sandbox.Native.compile nb program in
    if List.length t.ncompiled >= max_cached then t.ncompiled <- [];
    t.ncompiled <- (program, np) :: t.ncompiled;
    np

let run t program =
  let r =
    match t.engine with
    | Sandbox.Exec.Interp -> Sandbox.Exec.run t.m program
    | Sandbox.Exec.Compiled -> Sandbox.Compiled.exec (compiled_for t program)
    | Sandbox.Exec.Native -> (
      (* Native run threading [t.m] through lane 0; any gap — worker
         unavailable, program unencodable, worker crash, unpredicted
         hardware fault — falls back to the compiled engine for this
         call. *)
      let fallback () = Sandbox.Compiled.exec (compiled_for t program) in
      match native_batch_for t with
      | None -> fallback ()
      | Some nb ->
        (match native_for t nb program with
         | None -> fallback ()
         | Some np ->
           (match Sandbox.Native.run_one nb np t.m with
            | Some r -> r
            | None -> fallback ())))
    | Sandbox.Exec.Batched ->
      (* The applications thread values through [t.m] between calls, so
         a batched run seeds a one-lane batch from it and copies the
         lane's final state back.  Correct but uncached — the batched
         engine's amortization targets the search loop, not this
         call-at-a-time harness; prefer [Compiled] here. *)
      let b = Sandbox.Batched.create_batch t.m [| Sandbox.Testcase.empty |] in
      let bp = Sandbox.Batched.compile b program in
      let (_aborted : bool) = Sandbox.Batched.exec bp in
      let lm = Sandbox.Batched.lane_machine b ~lane:0 in
      Array.blit lm.Sandbox.Machine.gp 0 t.m.Sandbox.Machine.gp 0 16;
      Array.blit lm.Sandbox.Machine.xmm 0 t.m.Sandbox.Machine.xmm 0 32;
      t.m.Sandbox.Machine.flags.Sandbox.Machine.cf <-
        lm.Sandbox.Machine.flags.Sandbox.Machine.cf;
      t.m.Sandbox.Machine.flags.Sandbox.Machine.zf <-
        lm.Sandbox.Machine.flags.Sandbox.Machine.zf;
      t.m.Sandbox.Machine.flags.Sandbox.Machine.sf <-
        lm.Sandbox.Machine.flags.Sandbox.Machine.sf;
      t.m.Sandbox.Machine.flags.Sandbox.Machine.o_f <-
        lm.Sandbox.Machine.flags.Sandbox.Machine.o_f;
      t.m.Sandbox.Machine.flags.Sandbox.Machine.pf <-
        lm.Sandbox.Machine.flags.Sandbox.Machine.pf;
      Sandbox.Memory.blit_from ~src:lm.Sandbox.Machine.mem
        ~dst:t.m.Sandbox.Machine.mem;
      Sandbox.Batched.result b ~lane:0
  in
  t.cycles <- t.cycles + r.Sandbox.Exec.cycles;
  t.calls <- t.calls + 1;
  match r.Sandbox.Exec.outcome with
  | Sandbox.Exec.Finished -> ()
  | Sandbox.Exec.Faulted f ->
    failwith ("Kernel_runner: kernel faulted: " ^ Sandbox.Semantics.fault_to_string f)

let set_f32_pair m r (lo, hi) =
  let bits x = Int64.logand (Int64.of_int32 (Int32.bits_of_float x)) 0xffff_ffffL in
  Sandbox.Machine.set_xmm m r
    (Int64.logor (bits lo) (Int64.shift_left (bits hi) 32), 0L)

let put_vec_regs t (v : Vec3.t) =
  set_f32_pair t.m Reg.Xmm0 (v.Vec3.x, v.Vec3.y);
  Sandbox.Machine.set_f32 t.m Reg.Xmm1 v.Vec3.z

let put_vec_mem t addr (v : Vec3.t) =
  Sandbox.Memory.set_bytes t.m.Sandbox.Machine.mem addr
    (Sandbox.Testcase.f32_bytes v.Vec3.x
    ^ Sandbox.Testcase.f32_bytes v.Vec3.y
    ^ Sandbox.Testcase.f32_bytes v.Vec3.z)

let get_vec t =
  {
    Vec3.x = Sandbox.Machine.get_f32 t.m Reg.Xmm0;
    Vec3.y = Sandbox.Machine.get_f32_hi t.m Reg.Xmm0;
    Vec3.z = Sandbox.Machine.get_f32 t.m Reg.Xmm1;
  }

let exp64 t program x =
  reset t;
  Sandbox.Machine.set_f64 t.m Reg.Xmm0 x;
  run t program;
  Sandbox.Machine.get_f64 t.m Reg.Xmm0

let scalar64 = exp64

let scale t program v k =
  reset t;
  put_vec_regs t v;
  Sandbox.Machine.set_f32 t.m Reg.Xmm2 k;
  run t program;
  get_vec t

let dot t program v1 v2 =
  reset t;
  put_vec_regs t v1;
  put_vec_mem t v1_addr v2;
  run t program;
  Sandbox.Machine.get_f32 t.m Reg.Xmm0

let add3 t program v1 v2 =
  reset t;
  put_vec_regs t v1;
  put_vec_mem t v1_addr v2;
  run t program;
  get_vec t

let delta t program v1 v2 r1 r2 =
  reset t;
  Sandbox.Machine.set_f32 t.m Reg.Xmm0 r1;
  Sandbox.Machine.set_f32 t.m Reg.Xmm1 r2;
  put_vec_mem t v1_addr v1;
  put_vec_mem t v2_addr v2;
  run t program;
  get_vec t
