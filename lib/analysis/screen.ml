(* The proposal-rate undef-read filter.  Same analysis as
   Dataflow.undef_reads, but the location powerset is packed into one OCaml
   int (34 bits: 16 GPs, 16 XMMs, flags, mem) so the per-proposal cost is a
   handful of or/and-not word ops per slot — cheap enough to run on every
   proposal before any test case executes. *)

type env = int

let bit_of_loc = function
  | Liveness.Lgp r -> 1 lsl Reg.gp_index r
  | Liveness.Lxmm r -> 1 lsl (16 + Reg.xmm_index r)
  | Liveness.Lflags -> 1 lsl 32
  | Liveness.Lmem -> 1 lsl 33

let mask_of_locset s =
  Liveness.Locset.fold (fun l acc -> acc lor bit_of_loc l) s 0

let env_of_locset = mask_of_locset

let env_of_spec (spec : Sandbox.Spec.t) =
  (* The machine defines rsp before the first instruction runs. *)
  mask_of_locset (Sandbox.Spec.live_in_set spec)
  lor bit_of_loc (Liveness.Lgp Reg.Rsp)

let has_undef_read env p =
  let slots = p.Program.slots in
  let n = Array.length slots in
  let defined = ref env in
  let rec go idx =
    idx < n
    && (match slots.(idx) with
        | Program.Unused -> go (idx + 1)
        | Program.Active i ->
          mask_of_locset (Liveness.strict_uses i) land lnot !defined <> 0
          || begin
            defined := !defined lor mask_of_locset (Liveness.defs i);
            go (idx + 1)
          end)
  in
  go 0
