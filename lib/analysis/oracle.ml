(* Taint-differential oracle for the Liveness def/use/kill tables.

   For every opcode × shape the operand pools can generate, instantiate a
   handful of concrete instructions (distinct-register, aliased-register,
   and per-immediate/per-addressing-mode variants), run each as a one-slot
   program on seeded random machines under BOTH engines, and check the
   tables against what the machine actually did:

   - writes ⊆ defs: diffing the pre/post state may only show changes at
     claimed def locations;
   - non-uses are unread: perturb each location ℓ ∉ uses(i) and re-run.
     Every location other than ℓ must end bit-identical to the baseline
     run, the fault outcome must be identical, and ℓ itself must obey a
     per-component merge rule (per flag, per 64-bit register lane, per
     memory byte: the component equals the baseline's result or survives
     from the perturbed input — nothing else);
   - kills fully overwrite: if additionally ℓ ∈ kills(i), the merge rule
     tightens to bit-identity — the perturbed input must not survive at
     all.  This is what catches partial flag writers (inc/dec preserve CF;
     a shift whose masked count is zero writes no flags).

   Locations ℓ ∈ uses(i) are exempt (the tables claim the value matters),
   which is exactly why kills ∩ uses entries — setcc, the scalar merge
   forms — need no special-casing: the backward transfer function re-adds
   them through uses. *)

type violation = {
  instr : Instr.t;
  engine : Sandbox.Exec.engine;
  detail : string;
}

let violation_to_string v =
  Printf.sprintf "%s [%s]: %s" (Instr.to_string v.instr)
    (Sandbox.Exec.engine_to_string v.engine)
    v.detail

(* ----- instantiation ----- *)

let mem_size = 512
let gp_pool = [| Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx |]
let xmm_pool = [| Reg.Xmm0; Reg.Xmm1; Reg.Xmm2; Reg.Xmm3; Reg.Xmm4; Reg.Xmm5 |]

(* rsi holds arena base + 128 (16-aligned), rdi holds the index 3. *)
let mem_candidates =
  [
    { Operand.base = Some Reg.Rsi; index = None; disp = 16 };
    { Operand.base = Some Reg.Rsi; index = Some (Reg.Rdi, 8); disp = 8 };
  ]

(* 0 and 32 catch count-masking flag behaviour; 63 the Q-width extreme. *)
let imm8_candidates = [ 0L; 1L; 3L; 32L; 63L ]
let imm32_candidates = [ 0L; 1L; 1023L ]
let imm64_candidates = [ 0L; 1L; Int64.min_int ]

let nth_mod l k = List.nth l (k mod List.length l)

(* Operands for variant [k] of [shape]; [aliased] collapses all registers
   of a class onto one so dst = src cases are exercised. *)
let operands_of_shape shape ~aliased k =
  Array.mapi
    (fun pos kind ->
      match kind with
      | Shape.K_gp _ ->
        Operand.Gp (if aliased then Reg.Rax else gp_pool.(pos mod Array.length gp_pool))
      | Shape.K_xmm ->
        Operand.Xmm (if aliased then Reg.Xmm1 else xmm_pool.(pos mod Array.length xmm_pool))
      | Shape.K_imm8 -> Operand.Imm (nth_mod imm8_candidates k)
      | Shape.K_imm32 -> Operand.Imm (nth_mod imm32_candidates k)
      | Shape.K_imm64 -> Operand.Imm (nth_mod imm64_candidates k)
      | Shape.K_mem _ -> Operand.Mem (nth_mod mem_candidates k))
    shape

let variants_of_shape shape =
  let sweep =
    Array.fold_left
      (fun acc kind ->
        Stdlib.max acc
          (match kind with
           | Shape.K_imm8 -> List.length imm8_candidates
           | Shape.K_imm32 -> List.length imm32_candidates
           | Shape.K_imm64 -> List.length imm64_candidates
           | Shape.K_mem _ -> List.length mem_candidates
           | Shape.K_gp _ | Shape.K_xmm -> 1))
      1 shape
  in
  let count p = Array.fold_left (fun n k -> if p k then n + 1 else n) 0 shape in
  let can_alias =
    count (function Shape.K_gp _ -> true | _ -> false) >= 2
    || count (function Shape.K_xmm -> true | _ -> false) >= 2
  in
  let distinct = List.init sweep (fun k -> operands_of_shape shape ~aliased:false k) in
  let aliased =
    if can_alias then List.init sweep (fun k -> operands_of_shape shape ~aliased:true k)
    else []
  in
  distinct @ aliased

let instances () =
  List.concat_map
    (fun op ->
      List.concat_map
        (fun shape ->
          List.map
            (fun operands -> Instr.make_unchecked op operands)
            (variants_of_shape shape))
        (Shape.shapes op))
    Opcode.all

(* ----- machine states ----- *)

let random_machine g =
  let m = Sandbox.Machine.create ~mem_size () in
  let base = Sandbox.Memory.base m.Sandbox.Machine.mem in
  for i = 0 to 15 do
    m.Sandbox.Machine.gp.(i) <- Rng.Xoshiro256.next g
  done;
  for i = 0 to 31 do
    m.Sandbox.Machine.xmm.(i) <- Rng.Xoshiro256.next g
  done;
  let f = m.Sandbox.Machine.flags in
  let bits = Rng.Xoshiro256.next g in
  let bit k = Int64.logand (Int64.shift_right_logical bits k) 1L = 1L in
  f.Sandbox.Machine.cf <- bit 0;
  f.Sandbox.Machine.zf <- bit 1;
  f.Sandbox.Machine.sf <- bit 2;
  f.Sandbox.Machine.o_f <- bit 3;
  f.Sandbox.Machine.pf <- bit 4;
  let addr = ref base in
  for _ = 1 to mem_size / 8 do
    Sandbox.Memory.write_exn m.Sandbox.Machine.mem !addr 8 (Rng.Xoshiro256.next g);
    addr := Int64.add !addr 8L
  done;
  (* pin the addressing environment: rsi = a 16-aligned in-arena pointer,
     rdi = a small index, rsp = where Machine.create put it *)
  Sandbox.Machine.set_gp m Reg.Rsi (Int64.add base 128L);
  Sandbox.Machine.set_gp m Reg.Rdi 3L;
  Sandbox.Machine.set_gp m Reg.Rsp (Sandbox.Machine.default_rsp m);
  m

(* ----- perturbations ----- *)

type pert = {
  ploc : Liveness.loc;
  pname : string;
  apply : Sandbox.Machine.t -> unit;
}

let flip_gp r m =
  Sandbox.Machine.set_gp m r
    (Int64.logxor (Sandbox.Machine.get_gp m r) 0x5a5a_5a5a_5a5a_5a5aL)

let flip_xmm r m =
  let lo, hi = Sandbox.Machine.get_xmm m r in
  Sandbox.Machine.set_xmm m r
    (Int64.logxor lo 0x5a5a_5a5a_5a5a_5a5aL, Int64.logxor hi 0xa5a5_a5a5_a5a5_a5a5L)

let flip_mem_byte off m =
  let mem = m.Sandbox.Machine.mem in
  let addr = Int64.add (Sandbox.Memory.base mem) (Int64.of_int off) in
  let b = Sandbox.Memory.read_exn mem addr 1 in
  Sandbox.Memory.write_exn mem addr 1 (Int64.logxor b 0xffL)

let perturbations =
  List.map
    (fun r ->
      {
        ploc = Liveness.Lgp r;
        pname = Reg.gp_name Reg.Q r;
        apply = flip_gp r;
      })
    [ Reg.Rax; Reg.Rcx; Reg.Rdx; Reg.Rbx; Reg.Rsi; Reg.Rdi; Reg.Rsp; Reg.R8 ]
  @ List.map
      (fun r ->
        {
          ploc = Liveness.Lxmm r;
          pname = Reg.xmm_name r;
          apply = flip_xmm r;
        })
      [ Reg.Xmm0; Reg.Xmm1; Reg.Xmm2; Reg.Xmm3; Reg.Xmm4; Reg.Xmm5; Reg.Xmm6 ]
  @ List.map
      (fun (name, apply) -> { ploc = Liveness.Lflags; pname = name; apply })
      [
        ("cf", fun m -> m.Sandbox.Machine.flags.Sandbox.Machine.cf <- not m.Sandbox.Machine.flags.Sandbox.Machine.cf);
        ("zf", fun m -> m.Sandbox.Machine.flags.Sandbox.Machine.zf <- not m.Sandbox.Machine.flags.Sandbox.Machine.zf);
        ("sf", fun m -> m.Sandbox.Machine.flags.Sandbox.Machine.sf <- not m.Sandbox.Machine.flags.Sandbox.Machine.sf);
        ("of", fun m -> m.Sandbox.Machine.flags.Sandbox.Machine.o_f <- not m.Sandbox.Machine.flags.Sandbox.Machine.o_f);
        ("pf", fun m -> m.Sandbox.Machine.flags.Sandbox.Machine.pf <- not m.Sandbox.Machine.flags.Sandbox.Machine.pf);
      ]
  @ List.map
      (fun off ->
        {
          ploc = Liveness.Lmem;
          pname = Printf.sprintf "mem[%d]" off;
          apply = flip_mem_byte off;
        })
      [ 8; 144; 160 ]

(* ----- state comparison ----- *)

let flag_list (m : Sandbox.Machine.t) =
  let f = m.Sandbox.Machine.flags in
  [
    ("cf", f.Sandbox.Machine.cf);
    ("zf", f.Sandbox.Machine.zf);
    ("sf", f.Sandbox.Machine.sf);
    ("of", f.Sandbox.Machine.o_f);
    ("pf", f.Sandbox.Machine.pf);
  ]

(* All (component, value) differences between two machines, at the merge
   rule's granularity: 64-bit GP registers, 64-bit xmm lanes, single
   flags, single memory bytes. *)
let diff_components (a : Sandbox.Machine.t) (b : Sandbox.Machine.t) =
  let out = ref [] in
  for i = 15 downto 0 do
    if not (Int64.equal a.Sandbox.Machine.gp.(i) b.Sandbox.Machine.gp.(i)) then
      out := (Liveness.Lgp (Reg.gp_of_index i), Reg.gp_name Reg.Q (Reg.gp_of_index i)) :: !out
  done;
  for i = 31 downto 0 do
    if not (Int64.equal a.Sandbox.Machine.xmm.(i) b.Sandbox.Machine.xmm.(i)) then
      out :=
        ( Liveness.Lxmm (Reg.xmm_of_index (i / 2)),
          Printf.sprintf "%s.%s" (Reg.xmm_name (Reg.xmm_of_index (i / 2)))
            (if i mod 2 = 0 then "lo" else "hi") )
        :: !out
  done;
  List.iter2
    (fun (n, va) (_, vb) ->
      if va <> vb then out := (Liveness.Lflags, n) :: !out)
    (flag_list a) (flag_list b);
  let ma = Sandbox.Memory.unsafe_bytes a.Sandbox.Machine.mem in
  let mb = Sandbox.Memory.unsafe_bytes b.Sandbox.Machine.mem in
  if not (Bytes.equal ma mb) then
    for i = Bytes.length ma - 1 downto 0 do
      if Bytes.get ma i <> Bytes.get mb i then
        out := (Liveness.Lmem, Printf.sprintf "mem[%d]" i) :: !out
    done;
  !out

let loc_equal (a : Liveness.loc) b = a = b

(* One native worker per arena size, forked lazily and reused for the
   whole oracle run — [Native.run_one] reloads all of lane 0's state
   (registers, flags, memory) from the caller's machine every call, so
   the state baked at creation never matters. *)
let native_batches : (int, Sandbox.Native.batch option) Hashtbl.t =
  Hashtbl.create 4

let native_batch_for (m : Sandbox.Machine.t) =
  let sz = Sandbox.Memory.size m.Sandbox.Machine.mem in
  match Hashtbl.find_opt native_batches sz with
  | Some b -> b
  | None ->
    let b =
      Sandbox.Native.create_batch ~want_mem:true m
        [| Sandbox.Testcase.empty |]
    in
    Hashtbl.add native_batches sz b;
    b

let run_engine engine m p =
  match engine with
  | Sandbox.Exec.Interp -> Sandbox.Exec.run m p
  | Sandbox.Exec.Compiled -> Sandbox.Compiled.exec (Sandbox.Compiled.compile m p)
  | Sandbox.Exec.Batched ->
    (* One-lane batch seeded from [m]'s state; the lane's final state is
       copied back so the oracle's machine comparisons see it. *)
    let b = Sandbox.Batched.create_batch m [| Sandbox.Testcase.empty |] in
    let bp = Sandbox.Batched.compile b p in
    let (_aborted : bool) = Sandbox.Batched.exec bp in
    let lm = Sandbox.Batched.lane_machine b ~lane:0 in
    Array.blit lm.Sandbox.Machine.gp 0 m.Sandbox.Machine.gp 0 16;
    Array.blit lm.Sandbox.Machine.xmm 0 m.Sandbox.Machine.xmm 0 32;
    m.Sandbox.Machine.flags.Sandbox.Machine.cf <-
      lm.Sandbox.Machine.flags.Sandbox.Machine.cf;
    m.Sandbox.Machine.flags.Sandbox.Machine.zf <-
      lm.Sandbox.Machine.flags.Sandbox.Machine.zf;
    m.Sandbox.Machine.flags.Sandbox.Machine.sf <-
      lm.Sandbox.Machine.flags.Sandbox.Machine.sf;
    m.Sandbox.Machine.flags.Sandbox.Machine.o_f <-
      lm.Sandbox.Machine.flags.Sandbox.Machine.o_f;
    m.Sandbox.Machine.flags.Sandbox.Machine.pf <-
      lm.Sandbox.Machine.flags.Sandbox.Machine.pf;
    Sandbox.Memory.blit_from ~src:lm.Sandbox.Machine.mem
      ~dst:m.Sandbox.Machine.mem;
    Sandbox.Batched.result b ~lane:0
  | Sandbox.Exec.Native -> (
    (* Real machine-code run threading [m] through lane 0.  Any gap —
       worker unavailable, instruction unencodable or not bit-identical
       in hardware, worker crash — runs the interpreter instead, which
       keeps the liveness checks meaningful (the engines agree
       bit-for-bit on the accepted subset by construction). *)
    match native_batch_for m with
    | None -> Sandbox.Exec.run m p
    | Some nb ->
      (match Sandbox.Native.compile nb p with
       | None -> Sandbox.Exec.run m p
       | Some np ->
         (match Sandbox.Native.run_one nb np m with
          | Some r -> r
          | None -> Sandbox.Exec.run m p)))

let outcome_eq (a : Sandbox.Exec.result) (b : Sandbox.Exec.result) =
  a.Sandbox.Exec.outcome = b.Sandbox.Exec.outcome
  && a.Sandbox.Exec.executed = b.Sandbox.Exec.executed

(* ----- the checks ----- *)

let check_instance ~violations instr base_machine engine =
  let program = Program.of_instrs [ instr ] in
  let fail detail = violations := { instr; engine; detail } :: !violations in
  let defs = Liveness.defs instr in
  let uses = Liveness.uses instr in
  let kills = Liveness.kills instr in
  if not (Liveness.Locset.subset kills defs) then
    fail
      (Printf.sprintf "kills ⊄ defs: kills={%s} defs={%s}"
         (String.concat "," (List.map Liveness.loc_to_string (Liveness.Locset.elements kills)))
         (String.concat "," (List.map Liveness.loc_to_string (Liveness.Locset.elements defs))));
  (* baseline run *)
  let ma = Sandbox.Machine.copy base_machine in
  let res_a = run_engine engine ma program in
  (* writes ⊆ defs *)
  List.iter
    (fun (loc, comp) ->
      if not (Liveness.Locset.mem loc defs) then
        fail (Printf.sprintf "wrote %s but defs omit %s" comp (Liveness.loc_to_string loc)))
    (diff_components base_machine ma);
  (* each claimed non-use is unread *)
  List.iter
    (fun pert ->
      if not (Liveness.Locset.mem pert.ploc uses) then begin
        let mb = Sandbox.Machine.copy base_machine in
        pert.apply mb;
        let mb_pre = Sandbox.Machine.copy mb in
        let res_b = run_engine engine mb program in
        if not (outcome_eq res_a res_b) then
          fail
            (Printf.sprintf "perturbing non-use %s changed the outcome" pert.pname)
        else begin
          let strict = Liveness.Locset.mem pert.ploc kills in
          let d_vs_baseline = diff_components ma mb in
          let d_vs_perturbed_input = diff_components mb_pre mb in
          List.iter
            (fun (loc, comp) ->
              if not (loc_equal loc pert.ploc) then
                (* a location we did not touch ended up different: the
                   instruction read pert.ploc (uses is incomplete) *)
                fail
                  (Printf.sprintf
                     "perturbing non-use %s changed %s: uses is missing it"
                     pert.pname comp)
              else if strict then
                fail
                  (Printf.sprintf
                     "%s in kills but the perturbed input survived at %s"
                     pert.pname comp)
              else if
                (* merge rule: a component of ℓ that differs from the
                   baseline result must carry the perturbed input verbatim
                   — any third value means ℓ's value flowed into the
                   computation, i.e. uses is missing ℓ *)
                List.exists
                  (fun (l2, c2) -> loc_equal l2 loc && String.equal c2 comp)
                  d_vs_perturbed_input
              then
                fail
                  (Printf.sprintf
                     "component %s of non-use %s is neither the baseline \
                      result nor the perturbed input"
                     comp pert.pname))
            d_vs_baseline
        end
      end)
    perturbations

let default_seed = 0x5eed_0f_04ac1eL

let run ?(states = 2) ?(seed = default_seed) () =
  let violations = ref [] in
  let g = Rng.Xoshiro256.create seed in
  let machines = List.init states (fun _ -> random_machine g) in
  let all = instances () in
  List.iter
    (fun instr ->
      List.iter
        (fun m ->
          List.iter
            (fun engine -> check_instance ~violations instr m engine)
            ([ Sandbox.Exec.Interp; Sandbox.Exec.Compiled;
               Sandbox.Exec.Batched ]
            @ (if Sandbox.Native.available () then [ Sandbox.Exec.Native ]
               else [])))
        machines)
    all;
  List.rev !violations

let covered_instances () = List.length (instances ())
