(** Dynamic undef-read oracle backing the screen's soundness test.

    Steps every active slot on a live machine (continuing past faults, but
    withholding a faulted slot's defs), recording each read of a location
    that neither [env] nor a successfully-executed earlier slot defined.
    The events are a superset of [Dataflow.undef_reads]; restricted to
    events with [after_fault = false] they match it exactly — both facts
    are property-tested in [test/test_analysis.ml]. *)

type event = {
  slot : int;
  locs : Liveness.loc list;
  after_fault : bool;  (** a preceding slot had already faulted *)
}

val undef_reads :
  Sandbox.Machine.t -> Program.t -> env:Liveness.Locset.t -> event list
(** Mutates the machine (it really executes the program). *)
