(* Execution-grounded undef-read oracle: step the program on a real machine
   with Semantics.step, carrying the defined-locations set alongside.  Two
   deliberate differences from the static analysis make it the stricter
   judge for the screen's no-false-positives property:

   - it keeps stepping past faults (straight-line code: later slots still
     read their operands even if an earlier access trapped), and
   - a slot that faulted contributes no defs (its write never happened), so
     the dynamic defined set is a subset of the static one and the dynamic
     undef reads are a superset of the static findings.

   Hence Screen.has_undef_read env p = true implies undef_reads here is
   non-empty, and before the first fault the two agree exactly. *)

type event = {
  slot : int;
  locs : Liveness.loc list;
  after_fault : bool; (* a preceding slot had already faulted *)
}

let undef_reads (m : Sandbox.Machine.t) p ~env =
  let defined = ref env in
  let faulted = ref false in
  let out = ref [] in
  Array.iteri
    (fun idx slot ->
      match slot with
      | Program.Unused -> ()
      | Program.Active i ->
        let missing = Liveness.Locset.diff (Liveness.strict_uses i) !defined in
        if not (Liveness.Locset.is_empty missing) then
          out :=
            {
              slot = idx;
              locs = Liveness.Locset.elements missing;
              after_fault = !faulted;
            }
            :: !out;
        (match Sandbox.Semantics.step m i with
         | Ok () -> defined := Liveness.Locset.union !defined (Liveness.defs i)
         | Error _ -> faulted := true))
    p.Program.slots;
  List.rev !out
