(** Forward defined-locations dataflow and per-slot lint diagnostics.

    The dual of [Liveness.live_before]: a forward pass over the powerset-of-
    locations lattice computing, before each slot, the set of locations the
    kernel environment or an earlier slot has written.  On top of it sit the
    lint findings the [stoke_cli lint] subcommand and the search's static
    screen report: undef reads, dead slots, dead register writes, and
    self-moves. *)

type finding =
  | Undef_read of Liveness.loc list
      (** [strict_uses] locations neither environment-defined nor written
          by any earlier slot *)
  | Dead_slot  (** no def reaches a later use or the live-out set *)
  | Dead_write of Liveness.loc list
      (** the slot survives (its flags def is consumed) but this register
          write can never reach a use or the live-out set *)
  | Self_move  (** a mov idiom whose execution cannot change the machine *)

type diag = {
  slot : int;
  finding : finding;
}

val defined_before : Program.t -> defined_in:Liveness.Locset.t -> Liveness.Locset.t array
(** One entry per slot: the locations defined immediately before it runs.
    [defined_in] seeds the analysis (kernel live-ins plus environment). *)

val undef_reads :
  Program.t -> defined_in:Liveness.Locset.t -> (int * Liveness.loc list) list
(** Slots whose [Liveness.strict_uses] include a location not defined
    before them, with the offending locations; ascending slot order. *)

val diagnostics :
  Program.t ->
  defined_in:Liveness.Locset.t ->
  live_out:Liveness.Locset.t ->
  diag list
(** All findings, sorted by slot. *)

val lint_spec : Sandbox.Spec.t -> diag list
(** {!diagnostics} over the spec's own program, seeded with the spec's
    inputs ([Sandbox.Spec.live_in_set]) plus the environment-defined
    [rsp]. *)

val lint_program : Sandbox.Spec.t -> Program.t -> diag list
(** Same seeding, but over an arbitrary program (e.g. a parsed [--asm]
    file) judged against the spec's live-ins and live-outs. *)

val is_self_move : Instr.t -> bool

val finding_to_string : finding -> string

val diag_to_string : Program.t -> diag -> string
(** ["slot N: <instr>  <finding>"] — the lint CLI's output line. *)
