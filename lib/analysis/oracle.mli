(** Taint-differential oracle for the [Liveness] def/use/kill tables.

    Every opcode × shape is instantiated into concrete instructions
    (distinct-register, aliased-register, and per-immediate/addressing-mode
    variants — a superset of what [Search.Pools] can generate) and run as a
    one-slot program on seeded random machines under both engines.  Three
    properties are machine-checked against the actual execution:

    - {b writes ⊆ defs}: the pre/post state diff only touches claimed defs;
    - {b non-uses are unread}: flipping a location ℓ ∉ [uses i] leaves
      every other location and the fault outcome bit-identical, and ℓ
      itself obeys a per-component merge rule (per flag / 64-bit lane /
      memory byte, the result is the baseline's value or the perturbed
      input — never a third value);
    - {b kills fully overwrite}: for ℓ ∈ [kills i] ∖ [uses i] the merge
      rule tightens to bit-identity with the baseline.

    An empty result means the tables are consistent with both engines. *)

type violation = {
  instr : Instr.t;
  engine : Sandbox.Exec.engine;
  detail : string;
}

val violation_to_string : violation -> string

val run : ?states:int -> ?seed:int64 -> unit -> violation list
(** Runs the full matrix on [states] random machines (default 2). *)

val covered_instances : unit -> int
(** Number of concrete instructions the matrix instantiates (for
    reporting). *)

val instances : unit -> Instr.t list
(** The concrete instructions themselves, so tests can assert the matrix
    covers every opcode × shape the search pools can generate. *)
