(* Forward defined-locations analysis — the dual of Liveness.live_before.
   The lattice is the powerset of Liveness.loc ordered by inclusion; the
   transfer function of an active slot is [defined' = defined ∪ defs i]
   (defs over-approximate writes, so a location is in the set only if some
   earlier instruction or the kernel environment put a value there).
   Straight-line programs need a single forward pass. *)

type finding =
  | Undef_read of Liveness.loc list
      (* strict_uses locations neither environment-defined nor written by
         any earlier slot *)
  | Dead_slot (* no def reaches a later use or the live-out set *)
  | Dead_write of Liveness.loc list
      (* the slot survives (its flags def is consumed) but this register
         write can never reach a use or the live-out set *)
  | Self_move (* a mov idiom whose execution cannot change the machine *)

type diag = {
  slot : int;
  finding : finding;
}

let defined_before p ~defined_in =
  let slots = p.Program.slots in
  let n = Array.length slots in
  let result = Array.make n defined_in in
  let defined = ref defined_in in
  for idx = 0 to n - 1 do
    result.(idx) <- !defined;
    match slots.(idx) with
    | Program.Unused -> ()
    | Program.Active i -> defined := Liveness.Locset.union !defined (Liveness.defs i)
  done;
  result

let undef_reads p ~defined_in =
  let before = defined_before p ~defined_in in
  let out = ref [] in
  Array.iteri
    (fun idx slot ->
      match slot with
      | Program.Unused -> ()
      | Program.Active i ->
        let missing = Liveness.Locset.diff (Liveness.strict_uses i) before.(idx) in
        if not (Liveness.Locset.is_empty missing) then
          out := (idx, Liveness.Locset.elements missing) :: !out)
    p.Program.slots;
  List.rev !out

(* A mov that provably rewrites its destination with its own value.  Width
   matters: [movq %rax, %rax] is a no-op but [movl %eax, %eax] zeroes the
   upper half; all the 128-bit copies and the low-lane merges are no-ops on
   themselves, while e.g. movlhps duplicates the low quad into the high. *)
let is_self_move (i : Instr.t) =
  match i.op, i.operands with
  | Opcode.Mov Reg.Q, [| Operand.Gp s; Operand.Gp d |] -> Reg.equal_gp s d
  | (Opcode.Movaps | Opcode.Movups | Opcode.Movss | Opcode.Movsd),
    [| Operand.Xmm s; Operand.Xmm d |] ->
    Reg.equal_xmm s d
  | _ -> false

let diagnostics p ~defined_in ~live_out =
  let slots = p.Program.slots in
  let n = Array.length slots in
  let dead = Liveness.dead_slots p ~live_out in
  let live_before = Liveness.live_before p ~live_out in
  let after idx = if idx = n - 1 then live_out else live_before.(idx + 1) in
  let undef = undef_reads p ~defined_in in
  let out = ref [] in
  for idx = n - 1 downto 0 do
    match slots.(idx) with
    | Program.Unused -> ()
    | Program.Active i ->
      (* Partial dead write: the slot is kept (some def is consumed — in
         practice the flags), yet its register def reaches nothing.  The
         def set holds at most one non-flag location, so this pinpoints
         sub-used-as-cmp style waste.  Lflags and Lmem are excluded:
         unconsumed flag defs are ubiquitous and stores are never dead at
         our blob granularity. *)
      if (not dead.(idx)) && not (Liveness.is_store i) then begin
        let wasted =
          Liveness.Locset.diff (Liveness.defs i) (after idx)
          |> Liveness.Locset.remove Liveness.Lflags
          |> Liveness.Locset.remove Liveness.Lmem
        in
        if not (Liveness.Locset.is_empty wasted) then
          out :=
            { slot = idx; finding = Dead_write (Liveness.Locset.elements wasted) }
            :: !out
      end;
      if is_self_move i then out := { slot = idx; finding = Self_move } :: !out;
      if dead.(idx) then out := { slot = idx; finding = Dead_slot } :: !out
  done;
  let undef_diags =
    List.map (fun (slot, locs) -> { slot; finding = Undef_read locs }) undef
  in
  List.sort
    (fun a b -> compare (a.slot, a.finding) (b.slot, b.finding))
    (undef_diags @ !out)

let lint_spec (spec : Sandbox.Spec.t) =
  let defined_in =
    Liveness.Locset.add (Liveness.Lgp Reg.Rsp) (Sandbox.Spec.live_in_set spec)
  in
  diagnostics spec.Sandbox.Spec.program ~defined_in
    ~live_out:(Sandbox.Spec.live_out_set spec)

let lint_program (spec : Sandbox.Spec.t) p =
  let defined_in =
    Liveness.Locset.add (Liveness.Lgp Reg.Rsp) (Sandbox.Spec.live_in_set spec)
  in
  diagnostics p ~defined_in ~live_out:(Sandbox.Spec.live_out_set spec)

let locs_to_string locs =
  String.concat ", " (List.map Liveness.loc_to_string locs)

let finding_to_string = function
  | Undef_read locs -> Printf.sprintf "reads undefined location(s): %s" (locs_to_string locs)
  | Dead_slot -> "dead: no def reaches a later use or the live-out set"
  | Dead_write locs ->
    Printf.sprintf "dead write: %s never reaches a use or the live-out set"
      (locs_to_string locs)
  | Self_move -> "self-move: cannot change the machine state"

let diag_to_string p d =
  let instr =
    match p.Program.slots.(d.slot) with
    | Program.Active i -> Instr.to_string i
    | Program.Unused -> "<unused>"
  in
  Printf.sprintf "slot %d: %-30s %s" d.slot instr (finding_to_string d.finding)
