(** Bitmask fast path of the undef-read analysis, for screening proposals
    inside the search loop.

    [has_undef_read env p] is [true] exactly when [Dataflow.undef_reads]
    would report at least one finding with [defined_in] the locations of
    [env] (property-tested in [test/test_analysis.ml]).  The search rejects
    such proposals before [Cost.eval] — they read a register, the flags, or
    memory that neither the kernel's inputs nor any earlier slot wrote, so
    their behaviour depends on garbage and no test execution is needed to
    distrust them. *)

type env
(** Packed set of initially-defined locations. *)

val env_of_spec : Sandbox.Spec.t -> env
(** The spec's inputs ([Sandbox.Spec.live_in_set]) plus the
    environment-defined [rsp]. *)

val env_of_locset : Liveness.Locset.t -> env

val bit_of_loc : Liveness.loc -> int
val mask_of_locset : Liveness.Locset.t -> int

val has_undef_read : env -> Program.t -> bool
