(** The daemon's durable job state: a cross-job memo table plus the
    per-job file layout under the state directory.

    Every job is addressed by the MD5 digest of a {e key} that covers
    everything determining its answer — for optimize jobs the
    {!Search.Snapshot.fingerprint} (spec, cost params, search config,
    tests, domains) extended with the target's {!Program.hash}; for
    frontier and validate jobs a canonical rendering of the request.
    Three files may exist per digest:

    - [<digest>.job.json] — the submitted request, for operators;
    - [<digest>.snap] — the in-flight checkpoint ({!Search.Snapshot} or
      {!Search.Frontier.snapshot}), written on the job's cadence so a
      killed daemon resumes instead of restarting;
    - [<digest>.result.json] — the terminal [job_end] result payload.

    All writes go through {!Search.Snapshot.atomic_write_string}, so a
    crash never leaves a torn file and concurrent writers (two workers
    racing on the same key) cannot corrupt each other.

    The in-memory cache is just a read-through accelerator over the
    result files; a fresh daemon finds every completed job's answer on
    disk.  All operations are thread-safe. *)

type t

val create : state_dir:string -> t
(** Creates [state_dir] if missing (one level). *)

val digest_of_key : string -> string

val job_path : t -> string -> string
val snap_path : t -> string -> string
val result_path : t -> string -> string

val find : t -> string -> Obs.Json.t option
(** Memory first, then disk; a disk hit populates the cache. *)

val store : t -> string -> Obs.Json.t -> unit
(** Atomic result write + cache fill. *)

val record_job : t -> string -> Obs.Json.t -> unit
val has_snapshot : t -> string -> bool

val recover : t -> int * int
(** [(in_flight_snapshots, completed_results)] found on disk — the
    startup scan's numbers for the [serve_recover] log event. *)
