type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () ->
    Ok
      {
        fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
      }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket_path
         (Unix.error_message e))

let send conn req =
  try
    output_string conn.oc (Protocol.request_to_string req);
    output_char conn.oc '\n';
    flush conn.oc;
    Ok ()
  with Sys_error e | Unix.Unix_error (_, e, _) -> Error e

let close conn =
  (* oc and ic share the fd; closing the output side closes both *)
  try close_out conn.oc with Sys_error _ | Unix.Unix_error _ -> ()

let is_terminal (ev : Obs.Sink.event) =
  match ev.Obs.Sink.name with "job_end" | "pong" -> true | _ -> false

let stream ?(on_event = fun (_ : Obs.Sink.event) -> ()) conn =
  let rec loop () =
    match input_line conn.ic with
    | exception (End_of_file | Sys_error _) ->
      Error "connection closed before a terminal event"
    | line -> (
      match Obs.Sink.event_of_string line with
      | Error e -> Error (Printf.sprintf "unparseable event line: %s" e)
      | Ok ev ->
        on_event ev;
        if is_terminal ev then Ok ev else loop ())
  in
  loop ()

let submit ~socket_path ?on_event req =
  match connect ~socket_path with
  | Error _ as e -> e
  | Ok conn ->
    Fun.protect
      ~finally:(fun () -> close conn)
      (fun () ->
        match send conn req with
        | Error e -> Error e
        | Ok () -> stream ?on_event conn)

let job_status (ev : Obs.Sink.event) =
  match List.assoc_opt "status" ev.Obs.Sink.fields with
  | Some (Obs.Json.String s) -> s
  | _ -> "error"

let job_result (ev : Obs.Sink.event) =
  List.assoc_opt "result" ev.Obs.Sink.fields
