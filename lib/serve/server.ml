type config = {
  socket_path : string;
  state_dir : string;
  workers : int;
  max_queue : int;
  default_deadline_s : float option;
  checkpoint_every_s : float;
  io_timeout_s : float;
  max_domains : int;
  kernels : (string * Sandbox.Spec.t) list;
  log : Obs.Sink.t;
}

let default_config ~socket_path ~state_dir ~kernels =
  {
    socket_path;
    state_dir;
    workers = 1;
    max_queue = 64;
    default_deadline_s = None;
    checkpoint_every_s = 10.;
    io_timeout_s = 30.;
    max_domains = 4;
    kernels;
    log = Obs.Sink.null;
  }

(* ---------- client connection ---------- *)

(* One mutex per connection: workers, chain domains (through the shared
   job sink), and the admission thread all write lines to the same
   socket.  A connection that dies mid-job flips [dead] and every later
   write becomes a no-op — the job keeps running and its result is still
   persisted for the next request with the same key. *)
type client = {
  oc : out_channel;
  c_lock : Mutex.t;
  mutable dead : bool;  (** no further writes will be attempted *)
  mutable closed : bool;  (** the socket fd has been released *)
}

let client_of_fd fd =
  {
    oc = Unix.out_channel_of_descr fd;
    c_lock = Mutex.create ();
    dead = false;
    closed = false;
  }

let send_line cl line =
  Mutex.lock cl.c_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cl.c_lock)
    (fun () ->
      if not cl.dead then
        try
          output_string cl.oc line;
          output_char cl.oc '\n';
          flush cl.oc
        with Sys_error _ | Unix.Unix_error _ ->
          (* release the fd now, not when the job eventually ends: a
             daemon that held every mid-stream disconnect until its job
             finished would bleed descriptors *)
          cl.dead <- true;
          cl.closed <- true;
          close_out_noerr cl.oc)

let client_sink cl =
  Obs.Sink.callback (fun ev -> send_line cl (Obs.Sink.event_to_string ev))

let close_client cl =
  Mutex.lock cl.c_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cl.c_lock)
    (fun () ->
      cl.dead <- true;
      if not cl.closed then begin
        cl.closed <- true;
        close_out_noerr cl.oc
      end)

(* ---------- job plans ---------- *)

(* Everything derivable from the request is fixed at admission, so the
   memo key, the files on disk, and the eventual run can never disagree
   about what the job is. *)
type plan =
  | P_optimize of {
      config : Search.Optimizer.config;
      params : Search.Cost.params;
      tests : Sandbox.Testcase.t array;
      domains : int;
    }
  | P_frontier of {
      config : Search.Optimizer.config;
      etas : Ulp.t list;
      seed : int64;
    }
  | P_validate of {
      vconfig : Validate.Driver.config;
      eta : Ulp.t;
      rewrite : Program.t;
    }

let plan_of_request cfg (req : Protocol.request) spec =
  match req.Protocol.action with
  | Protocol.Ping | Protocol.Shutdown -> Error "not a job"
  | Protocol.Optimize { eta; proposals; seed; domains } ->
    let domains = Stdlib.min cfg.max_domains (Stdlib.max 1 domains) in
    let config =
      {
        Search.Optimizer.default_config with
        Search.Optimizer.proposals;
        seed = Int64.of_int seed;
      }
    in
    let tests =
      Stoke.make_tests ~seed:(Int64.of_int (seed + 100)) spec
    in
    let params = Search.Cost.default_params ~eta:(Ulp.of_float eta) in
    let key =
      Printf.sprintf "opt|%s|%016Lx"
        (Search.Snapshot.fingerprint ~spec ~params ~config ~tests ~domains)
        (Program.hash spec.Sandbox.Spec.program)
    in
    Ok (P_optimize { config; params; tests; domains }, key)
  | Protocol.Frontier { etas; proposals; seed } ->
    let config =
      {
        Search.Optimizer.default_config with
        Search.Optimizer.proposals;
        seed = Int64.of_int seed;
      }
    in
    let etas_u = List.map Ulp.of_float etas in
    let key =
      Printf.sprintf "frontier|%s|%s|p:%d|s:%d|%016Lx" req.Protocol.kernel
        (String.concat ","
           (List.map (fun e -> Ulp.to_string e) etas_u))
        proposals seed
        (Program.hash spec.Sandbox.Spec.program)
    in
    Ok
      (P_frontier { config; etas = etas_u; seed = Int64.of_int seed }, key)
  | Protocol.Validate { eta; rewrite; seed } -> (
    match
      try Ok (Parser.parse_program_exn rewrite) with e -> Error e
    with
    | Error e -> Error ("rewrite: " ^ Printexc.to_string e)
    | Ok prog ->
      let vconfig =
        { Validate.Driver.default_config with
          Validate.Driver.seed = Int64.of_int seed
        }
      in
      let key =
        Printf.sprintf "val|%s|%h|s:%d|%s|%016Lx" req.Protocol.kernel eta
          seed
          (Program.to_string prog)
          (Program.hash spec.Sandbox.Spec.program)
      in
      Ok (P_validate { vconfig; eta = Ulp.of_float eta; rewrite = prog }, key))

(* ---------- scheduler state ---------- *)

type job = {
  req : Protocol.request;
  spec : Sandbox.Spec.t;
  plan : plan;
  digest : string;
  cl : client;
}

type t = {
  cfg : config;
  memo : Memo.t;
  m : Mutex.t;
  wake : Condition.t;  (** queue activity or shutdown *)
  settled : Condition.t;  (** a running digest finished *)
  queues : (string, job Queue.t) Hashtbl.t;
  mutable rotation : string list;  (** tenants with queued work, FIFO *)
  mutable queued : int;
  running : (string, Search.Control.t option ref) Hashtbl.t;
  mutable shutting_down : bool;
  mutable listener : Unix.file_descr option;
}

let emit_both st cl name fields =
  Obs.Sink.emit (client_sink cl) name fields;
  Obs.Sink.emit st.cfg.log name fields

let log_depth st =
  (* callers hold st.m *)
  Obs.Sink.emit st.cfg.log "queue_depth"
    [
      ("depth", Obs.Json.Int st.queued);
      ("running", Obs.Json.Int (Hashtbl.length st.running));
    ]

let job_end_fields job ~status ~cached extra =
  [
    ("job", Obs.Json.String job.digest);
    ("op", Obs.Json.String (Protocol.op_name job.req.Protocol.action));
    ("status", Obs.Json.String status);
    ("cached", Obs.Json.Bool cached);
  ]
  @ extra

let finish_job st job ~status ~cached extra =
  emit_both st job.cl "job_end" (job_end_fields job ~status ~cached extra);
  close_client job.cl

(* ---------- admission ---------- *)

let enqueue st job =
  Mutex.lock st.m;
  let verdict =
    if st.shutting_down then `Refuse "server is shutting down"
    else if st.queued >= st.cfg.max_queue then `Refuse "queue full"
    else begin
      let q =
        match Hashtbl.find_opt st.queues job.req.Protocol.tenant with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace st.queues job.req.Protocol.tenant q;
          q
      in
      (* fair share: a tenant enters the rotation when its queue becomes
         non-empty, and is consulted once per round regardless of how
         many jobs it has piled up *)
      if not (List.mem job.req.Protocol.tenant st.rotation) then
        st.rotation <- st.rotation @ [ job.req.Protocol.tenant ];
      Queue.add job q;
      st.queued <- st.queued + 1;
      let depth = st.queued in
      log_depth st;
      Condition.signal st.wake;
      `Queued depth
    end
  in
  Mutex.unlock st.m;
  match verdict with
  | `Refuse reason ->
    finish_job st job ~status:"rejected" ~cached:false
      [ ("error", Obs.Json.String reason) ]
  | `Queued depth ->
    emit_both st job.cl "job_submit"
      [
        ("job", Obs.Json.String job.digest);
        ("op", Obs.Json.String (Protocol.op_name job.req.Protocol.action));
        ("kernel", Obs.Json.String job.req.Protocol.kernel);
        ("tenant", Obs.Json.String job.req.Protocol.tenant);
        ("queue_depth", Obs.Json.Int depth);
      ]

let serve_cached st job result =
  emit_both st job.cl "cache_hit" [ ("job", Obs.Json.String job.digest) ];
  finish_job st job ~status:"ok" ~cached:true [ ("result", result) ]

(* ---------- execution ---------- *)

let deadline_of st job =
  match job.req.Protocol.deadline_s with
  | Some _ as d -> d
  | None -> st.cfg.default_deadline_s

let run_plan st job ctl =
  let sink = client_sink job.cl in
  let snap = Memo.snap_path st.memo job.digest in
  match job.plan with
  | P_optimize { config; params; tests; domains } ->
    let resume =
      if Memo.has_snapshot st.memo job.digest then
        match Search.Snapshot.read ~path:snap with
        | Ok s -> Some s
        | Error _ -> None
      else None
    in
    let control =
      Search.Control.create
        ?deadline_s:(deadline_of st job)
        ~stop_when:config.Search.Optimizer.stop_when ~chains:domains ()
    in
    Mutex.lock st.m;
    ctl := Some control;
    Mutex.unlock st.m;
    let run resume =
      Search.Parallel.run ~domains
        ~obs:(fun ~chain:_ -> sink)
        ~orch_obs:sink
        ~checkpoint:(snap, st.cfg.checkpoint_every_s)
        ?resume ~control ~spec:job.spec ~params ~tests ~config ()
    in
    let r =
      match resume with
      | None -> run None
      | Some _ -> (
        (* a stale snapshot (e.g. an old format version) must not wedge
           the key forever — fall back to a fresh run *)
        try run resume with Invalid_argument _ -> run None)
    in
    let completed =
      match r.Search.Optimizer.stop_reason with
      | Search.Control.Exhausted | Search.Control.Policy_satisfied -> true
      | Search.Control.Deadline_hit | Search.Control.Cancelled -> false
    in
    (Protocol.optimize_result_json job.spec r, Option.is_some resume, completed)
  | P_frontier { config; etas; seed } ->
    let resume =
      if Memo.has_snapshot st.memo job.digest then
        match Search.Frontier.read_snapshot ~spec:job.spec ~path:snap with
        | Ok s -> Some s
        | Error _ -> None
      else None
    in
    let config =
      { config with Search.Optimizer.deadline_s = deadline_of st job }
    in
    let run resume =
      Stoke.frontier ~config ~etas ~obs:sink ~checkpoint:snap ?resume ~seed
        job.spec
    in
    let r =
      match resume with
      | None -> run None
      | Some _ -> ( try run resume with Invalid_argument _ -> run None)
    in
    (* the walk applies the deadline per point, so a truncated run is
       indistinguishable from a full-budget one in the result itself;
       only deadline-free walks are complete in the memoizable sense
       (shutdown never cancels frontier controls — they are created
       inside the walk) *)
    ( Protocol.frontier_result_json r,
      Option.is_some resume,
      Option.is_none (deadline_of st job) )
  | P_validate { vconfig; eta; rewrite } ->
    let v = Stoke.validate ~config:vconfig ~obs:sink ~eta job.spec rewrite in
    (Protocol.validate_result_json v, false, true)

let execute st worker_idx job ctl =
  match Memo.find st.memo job.digest with
  | Some result -> serve_cached st job result
  | None ->
    if st.shutting_down then
      finish_job st job ~status:"cancelled" ~cached:false
        [ ("error", Obs.Json.String "server is shutting down") ]
    else begin
      emit_both st job.cl "job_start"
        [
          ("job", Obs.Json.String job.digest);
          ("op", Obs.Json.String (Protocol.op_name job.req.Protocol.action));
          ("worker", Obs.Json.Int worker_idx);
          ("resumed", Obs.Json.Bool (Memo.has_snapshot st.memo job.digest));
        ];
      match run_plan st job ctl with
      | result, resumed, completed ->
        (* Memoize only completed runs.  A Cancelled (graceful drain) or
           Deadline_hit result is partial: storing it would serve the
           truncation forever to identical requests with a longer or no
           deadline, and would shadow the checkpoint — which stays
           authoritative, so resubmitting resumes the work instead. *)
        if completed then Memo.store st.memo job.digest result;
        finish_job st job ~status:"ok" ~cached:false
          [ ("resumed", Obs.Json.Bool resumed); ("result", result) ]
      | exception e ->
        finish_job st job ~status:"error" ~cached:false
          [ ("error", Obs.Json.String (Printexc.to_string e)) ]
    end

(* ---------- workers ---------- *)

let pop_job st =
  (* callers hold st.m and guarantee st.queued > 0 *)
  match st.rotation with
  | [] -> assert false
  | tenant :: rest ->
    let q = Hashtbl.find st.queues tenant in
    let job = Queue.pop q in
    st.rotation <- (if Queue.is_empty q then rest else rest @ [ tenant ]);
    st.queued <- st.queued - 1;
    job

let rec worker st idx =
  Mutex.lock st.m;
  while (not st.shutting_down) && st.queued = 0 do
    Condition.wait st.wake st.m
  done;
  if st.queued = 0 then begin
    (* shutting down and drained *)
    Mutex.unlock st.m;
    ()
  end
  else begin
    let job = pop_job st in
    (* cross-worker dedupe: while an identical job runs, wait — its
       result lands in the memo and this one becomes a cache hit *)
    while Hashtbl.mem st.running job.digest do
      Condition.wait st.settled st.m
    done;
    let ctl = ref None in
    Hashtbl.replace st.running job.digest ctl;
    log_depth st;
    Mutex.unlock st.m;
    (try execute st idx job ctl
     with e ->
       (* a failure delivering the reply must not kill the worker *)
       Obs.Sink.emit st.cfg.log "worker_error"
         [
           ("worker", Obs.Json.Int idx);
           ("error", Obs.Json.String (Printexc.to_string e));
         ]);
    Mutex.lock st.m;
    Hashtbl.remove st.running job.digest;
    log_depth st;
    Condition.broadcast st.settled;
    Mutex.unlock st.m;
    worker st idx
  end

(* ---------- shutdown ---------- *)

let initiate_shutdown st =
  Mutex.lock st.m;
  if not st.shutting_down then begin
    st.shutting_down <- true;
    Hashtbl.iter
      (fun _ ctl ->
        match !ctl with
        | Some control ->
          Search.Control.request_stop control Search.Control.Cancelled
        | None -> ())
      st.running;
    Condition.broadcast st.wake;
    Condition.broadcast st.settled;
    (match st.listener with
     | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
     | None -> ())
  end;
  Mutex.unlock st.m

(* ---------- connections ---------- *)

let handle_connection st fd =
  let cl = client_of_fd fd in
  let ic = Unix.in_channel_of_descr fd in
  match input_line ic with
  | exception (End_of_file | Sys_error _) -> close_client cl
  | line -> (
    match Protocol.request_of_string line with
    | Error e ->
      Obs.Sink.emit (client_sink cl) "job_end"
        [
          ("status", Obs.Json.String "error");
          ("error", Obs.Json.String e);
        ];
      close_client cl
    | Ok req -> (
      match req.Protocol.action with
      | Protocol.Ping ->
        Obs.Sink.emit (client_sink cl) "pong" [];
        close_client cl
      | Protocol.Shutdown ->
        Obs.Sink.emit st.cfg.log "serve_shutdown_request" [];
        Obs.Sink.emit (client_sink cl) "job_end"
          [ ("status", Obs.Json.String "ok") ];
        close_client cl;
        initiate_shutdown st
      | _ -> (
        match List.assoc_opt req.Protocol.kernel st.cfg.kernels with
        | None ->
          Obs.Sink.emit (client_sink cl) "job_end"
            [
              ("status", Obs.Json.String "error");
              ( "error",
                Obs.Json.String
                  (Printf.sprintf "unknown kernel %S" req.Protocol.kernel)
              );
            ];
          close_client cl
        | Some spec -> (
          match plan_of_request st.cfg req spec with
          | Error e ->
            Obs.Sink.emit (client_sink cl) "job_end"
              [
                ("status", Obs.Json.String "error");
                ("error", Obs.Json.String e);
              ];
            close_client cl
          | Ok (plan, key) ->
            let digest = Memo.digest_of_key key in
            let job = { req; spec; plan; digest; cl } in
            Memo.record_job st.memo digest
              (Obs.Json.Obj
                 [
                   ("request", Protocol.request_to_json req);
                   ("key", Obs.Json.String key);
                 ]);
            (* a completed identical job answers from the memo without
               queueing — zero proposals, zero wait *)
            (match Memo.find st.memo digest with
             | Some result -> serve_cached st job result
             | None -> enqueue st job)))))

(* ---------- main loop ---------- *)

let run ?(on_ready = fun (_ : t) -> ()) cfg =
  (* a client that disconnects mid-stream must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let memo = Memo.create ~state_dir:cfg.state_dir in
  let st =
    {
      cfg;
      memo;
      m = Mutex.create ();
      wake = Condition.create ();
      settled = Condition.create ();
      queues = Hashtbl.create 8;
      rotation = [];
      queued = 0;
      running = Hashtbl.create 8;
      shutting_down = false;
      listener = None;
    }
  in
  let snaps, results = Memo.recover memo in
  Obs.Sink.emit cfg.log "serve_recover"
    [
      ("in_flight_snapshots", Obs.Json.Int snaps);
      ("completed_results", Obs.Json.Int results);
    ];
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen sock 16;
  Mutex.lock st.m;
  st.listener <- Some sock;
  Mutex.unlock st.m;
  Obs.Sink.emit cfg.log "serve_start"
    [
      ("socket", Obs.Json.String cfg.socket_path);
      ("state_dir", Obs.Json.String cfg.state_dir);
      ("workers", Obs.Json.Int cfg.workers);
      ("max_queue", Obs.Json.Int cfg.max_queue);
      ("kernels", Obs.Json.Int (List.length cfg.kernels));
    ];
  on_ready st;
  let workers =
    List.init (Stdlib.max 1 cfg.workers) (fun i ->
        Thread.create (fun () -> worker st i) ())
  in
  (* Live connection handlers only: each handler prunes its own entry
     on exit, so the table does not grow one Thread.t per connection
     ever accepted over the daemon's lifetime. *)
  let conns : (int, Thread.t) Hashtbl.t = Hashtbl.create 16 in
  let conns_m = Mutex.create () in
  let next_conn = ref 0 in
  let spawn fd =
    (* a peer may neither send its request nor drain its event stream;
       socket timeouts bound both directions so a stuck client cannot
       pin a handler thread (or graceful shutdown) indefinitely *)
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO cfg.io_timeout_s;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO cfg.io_timeout_s
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    Mutex.lock conns_m;
    let id = !next_conn in
    incr next_conn;
    let th =
      Thread.create
        (fun () ->
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock conns_m;
              Hashtbl.remove conns id;
              Mutex.unlock conns_m)
            (fun () -> handle_connection st fd))
        ()
    in
    Hashtbl.replace conns id th;
    Mutex.unlock conns_m
  in
  let rec accept_loop () =
    if not st.shutting_down then
      match Unix.accept sock with
      | fd, _ ->
        if st.shutting_down then Unix.close fd else spawn fd;
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
        (* descriptor exhaustion sheds load, it must not kill the
           daemon; pressure drains as handlers close their sockets *)
        Obs.Sink.emit cfg.log "serve_accept_overload" [];
        Unix.sleepf 0.05;
        accept_loop ()
      | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _)
        ->
        (* EINTR: a signal landed — if its handler requested shutdown,
           the shutting_down check above ends the loop *)
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* the listener was shut down under us *)
        ()
  in
  accept_loop ();
  initiate_shutdown st;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  List.iter Thread.join workers;
  let live =
    Mutex.lock conns_m;
    let l = Hashtbl.fold (fun _ th acc -> th :: acc) conns [] in
    Mutex.unlock conns_m;
    l
  in
  List.iter Thread.join live;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Obs.Sink.emit cfg.log "serve_stop" []

let shutdown = initiate_shutdown
