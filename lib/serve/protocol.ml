type action =
  | Optimize of { eta : float; proposals : int; seed : int; domains : int }
  | Frontier of { etas : float list; proposals : int; seed : int }
  | Validate of { eta : float; rewrite : string; seed : int }
  | Ping
  | Shutdown

type request = {
  kernel : string;
  tenant : string;
  deadline_s : float option;
  action : action;
}

let default_tenant = "default"

let op_name = function
  | Optimize _ -> "optimize"
  | Frontier _ -> "frontier"
  | Validate _ -> "validate"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

(* ---------- encoding ---------- *)

let request_to_json r =
  let base =
    [
      ("op", Obs.Json.String (op_name r.action));
      ("kernel", Obs.Json.String r.kernel);
      ("tenant", Obs.Json.String r.tenant);
    ]
  in
  let deadline =
    match r.deadline_s with
    | None -> []
    | Some d -> [ ("deadline_s", Obs.Json.Float d) ]
  in
  let act =
    match r.action with
    | Optimize { eta; proposals; seed; domains } ->
      [
        ("eta", Obs.Json.Float eta);
        ("proposals", Obs.Json.Int proposals);
        ("seed", Obs.Json.Int seed);
        ("domains", Obs.Json.Int domains);
      ]
    | Frontier { etas; proposals; seed } ->
      [
        ("etas", Obs.Json.List (List.map (fun e -> Obs.Json.Float e) etas));
        ("proposals", Obs.Json.Int proposals);
        ("seed", Obs.Json.Int seed);
      ]
    | Validate { eta; rewrite; seed } ->
      [
        ("eta", Obs.Json.Float eta);
        ("rewrite", Obs.Json.String rewrite);
        ("seed", Obs.Json.Int seed);
      ]
    | Ping | Shutdown -> []
  in
  Obs.Json.Obj (base @ deadline @ act)

let request_to_string r = Obs.Json.to_string (request_to_json r)

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind

let str_field j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

(* Job-defining fields are strict: a field that is present but
   unparseable is a rejection, never a silent default — a mistyped
   request must not run a real, expensive job with parameters the
   client never asked for.  Only genuinely absent optional fields
   default. *)

let int_field ~default j key =
  match Obs.Json.member key j with
  | None -> Ok default
  | Some v -> (
    match Obs.Json.to_int_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s: expected an integer" key))

let opt_float_field j key =
  match Obs.Json.member key j with
  | None -> Ok None
  | Some v -> (
    match Obs.Json.to_float_opt v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "%s: expected a number" key))

let req_float_field j key =
  match Obs.Json.member key j with
  | None -> Error (Printf.sprintf "missing %s field" key)
  | Some v -> (
    match Obs.Json.to_float_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s: expected a number" key))

let request_of_json j =
  match j with
  | Obs.Json.Obj _ -> (
    let tenant =
      match str_field j "tenant" with
      | Some t when t <> "" -> t
      | _ -> default_tenant
    in
    let* deadline_s = opt_float_field j "deadline_s" in
    (* job ops execute a registry kernel; requiring the field here keeps
       a missing or typo'd kernel from surfacing downstream as the
       misleading [unknown kernel ""] *)
    let kernel_req () =
      match str_field j "kernel" with
      | Some k when k <> "" -> Ok k
      | _ -> Error "missing kernel field"
    in
    let mk kernel action = Ok { kernel; tenant; deadline_s; action } in
    let mk_control action =
      mk (Option.value ~default:"" (str_field j "kernel")) action
    in
    match str_field j "op" with
    | Some "ping" -> mk_control Ping
    | Some "shutdown" -> mk_control Shutdown
    | Some "optimize" ->
      let* kernel = kernel_req () in
      let* eta = req_float_field j "eta" in
      let* proposals = int_field ~default:200_000 j "proposals" in
      let* seed = int_field ~default:1 j "seed" in
      let* domains = int_field ~default:1 j "domains" in
      mk kernel (Optimize { eta; proposals; seed; domains })
    | Some "frontier" -> (
      let* kernel = kernel_req () in
      let* proposals = int_field ~default:200_000 j "proposals" in
      let* seed = int_field ~default:1 j "seed" in
      match Obs.Json.member "etas" j with
      | Some (Obs.Json.List l) -> (
        let etas = List.map Obs.Json.to_float_opt l in
        match (etas, List.exists Option.is_none etas) with
        | [], _ | _, true ->
          Error "frontier: etas must be a non-empty list of numbers"
        | _, false ->
          mk kernel
            (Frontier
               { etas = List.filter_map Fun.id etas; proposals; seed }))
      | Some _ -> Error "frontier: etas must be a list"
      | None -> Error "frontier: missing etas list")
    | Some "validate" -> (
      let* kernel = kernel_req () in
      let* eta = req_float_field j "eta" in
      let* seed = int_field ~default:1 j "seed" in
      match str_field j "rewrite" with
      | Some rw when rw <> "" -> mk kernel (Validate { eta; rewrite = rw; seed })
      | _ -> Error "validate: missing rewrite text")
    | Some op -> Error (Printf.sprintf "unknown op %S" op)
    | None -> Error "missing op field")
  | _ -> Error "request must be a JSON object"

let request_of_string s =
  match Obs.Json.of_string s with
  | Error e -> Error ("bad request JSON: " ^ e)
  | Ok j -> request_of_json j

(* ---------- result payloads (the "result" field of job_end) ---------- *)

let program_json p = Obs.Json.String (Program.to_string p)

let optimize_result_json (spec : Sandbox.Spec.t)
    (r : Search.Optimizer.result) =
  let target = spec.Sandbox.Spec.program in
  let target_latency = Latency.of_program target in
  let found, rewrite =
    match r.Search.Optimizer.best_correct with
    | Some p -> (true, p)
    | None -> (false, target)
  in
  let latency = Latency.of_program rewrite in
  Obs.Json.Obj
    [
      ("found", Obs.Json.Bool found);
      ("rewrite", program_json rewrite);
      ("loc", Obs.Json.Int (Program.length rewrite));
      ("latency", Obs.Json.Int latency);
      ( "speedup",
        Obs.Json.Float
          (float_of_int target_latency /. float_of_int (Stdlib.max 1 latency))
      );
      ( "stop_reason",
        Obs.Json.String
          (Search.Control.stop_reason_to_string
             r.Search.Optimizer.stop_reason) );
      ("proposals_made", Obs.Json.Int r.Search.Optimizer.proposals_made);
      ("failed_chains", Obs.Json.Int r.Search.Optimizer.failed_chains);
    ]

let frontier_result_json (r : Search.Frontier.result) =
  let point_json (p : Search.Frontier.point) =
    Obs.Json.Obj
      [
        ("eta", Obs.Json.Float (Ulp.to_float p.Search.Frontier.eta));
        ("rewrite", program_json p.Search.Frontier.rewrite);
        ("latency", Obs.Json.Int p.Search.Frontier.latency);
        ("speedup", Obs.Json.Float p.Search.Frontier.speedup);
        ( "validated_err_ulps",
          match p.Search.Frontier.validated_err with
          | None -> Obs.Json.Null
          | Some e -> Obs.Json.Float (Ulp.to_float e) );
      ]
  in
  Obs.Json.Obj
    [
      ( "points",
        Obs.Json.List (List.map point_json r.Search.Frontier.points) );
      ( "pareto",
        Obs.Json.List (List.map point_json r.Search.Frontier.pareto) );
      ("total_proposals", Obs.Json.Int r.Search.Frontier.total_proposals);
      ("demotions", Obs.Json.Int r.Search.Frontier.demotions);
      ("tests_added", Obs.Json.Int r.Search.Frontier.tests_added);
    ]

let validate_result_json (v : Validate.Driver.verdict) =
  Obs.Json.Obj
    [
      ( "max_err_ulps",
        Obs.Json.Float (Ulp.to_float v.Validate.Driver.max_err) );
      ("validated", Obs.Json.Bool v.Validate.Driver.validated);
      ("mixed", Obs.Json.Bool v.Validate.Driver.mixed);
      ("iterations", Obs.Json.Int v.Validate.Driver.iterations);
      ( "max_err_input",
        Obs.Json.List
          (Array.to_list
             (Array.map
                (fun x -> Obs.Json.Float x)
                v.Validate.Driver.max_err_input)) );
    ]
