type t = {
  state_dir : string;
  lock : Mutex.t;
  cache : (string, Obs.Json.t) Hashtbl.t;
}

let create ~state_dir =
  (try Unix.mkdir state_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  { state_dir; lock = Mutex.create (); cache = Hashtbl.create 64 }

let digest_of_key key = Digest.to_hex (Digest.string key)

let job_path t digest = Filename.concat t.state_dir (digest ^ ".job.json")
let snap_path t digest = Filename.concat t.state_dir (digest ^ ".snap")

let result_path t digest =
  Filename.concat t.state_dir (digest ^ ".result.json")

let read_json path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | exception End_of_file -> None
  | contents -> (
    match Obs.Json.of_string (String.trim contents) with
    | Ok j -> Some j
    | Error _ -> None)

let find t digest =
  Mutex.lock t.lock;
  let cached = Hashtbl.find_opt t.cache digest in
  Mutex.unlock t.lock;
  match cached with
  | Some _ as r -> r
  | None -> (
    (* a result persisted by an earlier daemon incarnation is as good as
       one computed in this process: search is deterministic per key *)
    match read_json (result_path t digest) with
    | None -> None
    | Some j ->
      Mutex.lock t.lock;
      Hashtbl.replace t.cache digest j;
      Mutex.unlock t.lock;
      Some j)

let store t digest result =
  Search.Snapshot.atomic_write_string
    ~path:(result_path t digest)
    (Obs.Json.to_string result ^ "\n");
  Mutex.lock t.lock;
  Hashtbl.replace t.cache digest result;
  Mutex.unlock t.lock

let record_job t digest job_json =
  Search.Snapshot.atomic_write_string ~path:(job_path t digest)
    (Obs.Json.to_string job_json ^ "\n")

let has_snapshot t digest = Sys.file_exists (snap_path t digest)

let recover t =
  let snaps = ref 0 and results = ref 0 in
  (match Sys.readdir t.state_dir with
   | exception Sys_error _ -> ()
   | entries ->
     Array.iter
       (fun name ->
         if Filename.check_suffix name ".snap" then incr snaps
         else if Filename.check_suffix name ".result.json" then
           incr results)
       entries);
  (!snaps, !results)
