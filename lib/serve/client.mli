(** Client side of the serve protocol: connect to a daemon's Unix-domain
    socket, submit one request, and stream the job's event trace until
    the terminal event.  Used by [stoke submit] and the serve tests. *)

type conn

val connect : socket_path:string -> (conn, string) result
val send : conn -> Protocol.request -> (unit, string) result

val stream :
  ?on_event:(Obs.Sink.event -> unit) ->
  conn ->
  (Obs.Sink.event, string) result
(** Reads event lines, calling [on_event] on each (terminal included),
    until [job_end] or [pong] arrives; returns that terminal event.
    [Error] on disconnect or an unparseable line. *)

val close : conn -> unit

val submit :
  socket_path:string ->
  ?on_event:(Obs.Sink.event -> unit) ->
  Protocol.request ->
  (Obs.Sink.event, string) result
(** [connect] + [send] + [stream] + [close]. *)

val job_status : Obs.Sink.event -> string
(** The ["status"] field of a terminal event (["error"] if absent). *)

val job_result : Obs.Sink.event -> Obs.Json.t option
