(** Wire protocol for the [stoke serve] daemon.

    Everything on the socket is newline-delimited JSON.  A client sends
    exactly one request line; the server answers with a stream of
    {!Obs.Sink} events (the job's live telemetry, one JSONL line each)
    and closes the connection after the terminal [job_end] event (or
    [pong], for {!Ping}).  There is no other framing: a consumer that
    can tail the [--trace-out] files can read a serve connection.

    Requests deliberately name kernels rather than carrying programs:
    the daemon only ever executes specs from its own registry, so a
    client cannot make it run arbitrary code.  ({!Validate} carries a
    rewrite as assembly text, which is parsed — never executed natively
    without going through the sandbox like any other candidate.) *)

type action =
  | Optimize of { eta : float; proposals : int; seed : int; domains : int }
  | Frontier of { etas : float list; proposals : int; seed : int }
  | Validate of { eta : float; rewrite : string; seed : int }
      (** [rewrite] is assembly text, one instruction per line *)
  | Ping  (** liveness probe: the server answers [pong] and closes *)
  | Shutdown
      (** graceful stop: running jobs are cancelled (their checkpoints
          survive for a later resume), queued jobs are refused *)

type request = {
  kernel : string;  (** registry name; ignored for ping/shutdown *)
  tenant : string;  (** fair-share group (default {!default_tenant}) *)
  deadline_s : float option;
      (** per-job wall-clock budget; the server's default applies when
          absent *)
  action : action;
}

val default_tenant : string

val op_name : action -> string

val request_to_json : request -> Obs.Json.t
val request_to_string : request -> string
(** One line, no trailing newline. *)

val request_of_json : Obs.Json.t -> (request, string) result
(** Strict on job-defining fields: [kernel] and [eta] are required for
    job ops ([eta] for optimize/validate), and a field that is present
    but unparseable ([proposals], [seed], [domains], [deadline_s],
    [etas] entries) is an [Error], never a silent default — a mistyped
    request must not run an expensive job with parameters the client
    never asked for.  Absent optional fields still default
    ([proposals] 200k, [seed] 1, [domains] 1, tenant
    {!default_tenant}). *)

val request_of_string : string -> (request, string) result

(** {2 Result payloads} — the ["result"] field of a [job_end] event,
    shared by the live path and the memo table so a cached answer is
    byte-identical to a fresh one. *)

val optimize_result_json :
  Sandbox.Spec.t -> Search.Optimizer.result -> Obs.Json.t

val frontier_result_json : Search.Frontier.result -> Obs.Json.t
val validate_result_json : Validate.Driver.verdict -> Obs.Json.t
