(** [stoke serve]: a persistent multi-tenant search daemon.

    One process owns a Unix-domain socket and a state directory.  Each
    connection submits one job ({!Protocol.request}); the daemon
    schedules it across a bounded worker pool with per-tenant FIFO
    fair-share (tenants take turns; within a tenant, jobs run in
    submission order), streams the job's full telemetry back over the
    connection as JSONL events, and answers the terminal [job_end] event
    with the result payload.

    {b Durability.}  Optimize and frontier jobs checkpoint into the
    state directory on a cadence ([checkpoint_every_s]) under a
    key derived from the search fingerprint and the target program's
    hash, so a killed daemon resumes a resubmitted job from its last
    checkpoint instead of restarting — and, under the [Exhaust] policy,
    produces the bit-identical winner the uninterrupted run would have.
    Completed results persist as [<digest>.result.json]: a repeated
    identical request is a {b memo hit} answered without running a
    single proposal ([cache_hit] event, [cached: true] on [job_end]),
    across daemon restarts.

    {b Deadlines and cancellation.}  A job runs under its request's
    [deadline_s] (or the server default).  Shutdown (the [shutdown] op
    or {!shutdown}) cancels in-flight optimize jobs via
    {!Search.Control.Cancelled}; their checkpoints survive, so the work
    is paused, not lost.  Frontier and validate jobs are bounded by
    their deadline only.  A partial result (deadline hit or cancelled)
    is still returned to its client but {b never memoized}: the
    checkpoint stays authoritative, so resubmitting the request resumes
    the remaining work instead of replaying the truncation forever.

    {b Telemetry.}  The [log] sink receives the daemon's own events —
    [serve_start], [serve_recover], [serve_stop], [job_submit],
    [job_start], [job_end], [cache_hit], [queue_depth], [worker_error]
    — while each client connection receives its job's lifecycle events
    plus the underlying search/validation stream (see
    [docs/TELEMETRY.md]). *)

type config = {
  socket_path : string;
  state_dir : string;
  workers : int;  (** concurrent jobs (worker threads), default 1 *)
  max_queue : int;  (** queued-job bound; beyond it jobs are rejected *)
  default_deadline_s : float option;
  checkpoint_every_s : float;  (** snapshot cadence for running jobs *)
  io_timeout_s : float;
      (** per-connection socket read/write timeout: a client that never
          sends its request, or stops draining its event stream, is
          disconnected after this many seconds instead of pinning a
          handler thread (or graceful shutdown) forever *)
  max_domains : int;  (** per-job cap on requested search domains *)
  kernels : (string * Sandbox.Spec.t) list;  (** the job registry *)
  log : Obs.Sink.t;
}

val default_config :
  socket_path:string ->
  state_dir:string ->
  kernels:(string * Sandbox.Spec.t) list ->
  config
(** 1 worker, queue bound 64, no default deadline, 10 s checkpoint
    cadence, 30 s socket timeout, 4 domains max, null log. *)

type t
(** A running server's handle — only useful for {!shutdown}. *)

val run : ?on_ready:(t -> unit) -> config -> unit
(** Binds the socket (replacing a stale file), scans the state
    directory, serves until a shutdown request, then drains: running
    jobs are cancelled ({!Search.Control.Cancelled}), queued jobs are
    refused, workers joined, the socket unlinked.  [on_ready] runs once
    the socket is listening — the hook a CLI uses to install signal
    handlers and tests use to know the server is up. *)

val shutdown : t -> unit
(** Idempotent; safe from signal handlers and other threads. *)
