(** Distributions layered over {!Xoshiro256}.

    Every sampler takes the generator explicitly so callers control
    determinism. *)

type gen = Xoshiro256.t

val bits64 : gen -> int64
(** Raw 64 bits. *)

val int : gen -> int -> int
(** [int g n] draws uniformly from [0, n) ; requires [n > 0]. *)

val bool : gen -> bool

val float : gen -> float -> float
(** [float g bound] draws uniformly from [[0, bound)]. *)

val uniform : gen -> float -> float -> float
(** [uniform g lo hi] draws uniformly from [[lo, hi)]. *)

val normal : gen -> mu:float -> sigma:float -> float
(** Gaussian sample (Box-Muller). *)

val choose : gen -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : gen -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : gen -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val uniform_bits_double : gen -> float
(** A double whose 64-bit pattern is uniform — i.e. a draw from the
    {e representation} space of doubles rather than the value space.  Useful
    for stressing bit-level code paths. *)
