type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9e3779b97f4a7c15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let copy t = { state = t.state }
