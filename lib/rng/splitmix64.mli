(** SplitMix64 pseudo-random generator (Steele, Lea, Flood 2014).

    Fast, tiny state, passes BigCrush; used here both directly and to seed
    {!Xoshiro256}. *)

type t

val create : int64 -> t
(** Generator seeded with the given value. *)

val next : t -> int64
(** Next 64-bit output; advances the state. *)

val copy : t -> t
