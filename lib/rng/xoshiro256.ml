type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let of_state s =
  if Array.length s <> 4 then
    invalid_arg "Xoshiro256.of_state: need exactly 4 state words";
  if Array.for_all (Int64.equal 0L) s then
    invalid_arg "Xoshiro256.of_state: the all-zero state is not reachable";
  { s0 = s.(0); s1 = s.(1); s2 = s.(2); s3 = s.(3) }

let split t = create (next t)
