type gen = Xoshiro256.t

let bits64 = Xoshiro256.next

let int g n =
  if n <= 0 then invalid_arg "Dist.int: bound must be positive";
  (* Rejection-free modulo is biased for huge n; n here is always small
     (program lengths, pool sizes), so the bias is negligible, but we use
     the high bits which are better mixed. *)
  let r = Int64.shift_right_logical (bits64 g) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int n))

let bool g = Int64.compare (Int64.logand (bits64 g) 1L) 0L <> 0

let float g bound =
  (* 53 uniform bits scaled into [0,1). *)
  let r = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float r /. 0x1p53 *. bound

let uniform g lo hi = lo +. float g (hi -. lo)

let normal g ~mu ~sigma =
  let rec u_nonzero () =
    let u = float g 1.0 in
    if u > 0. then u else u_nonzero ()
  in
  let u1 = u_nonzero () in
  let u2 = float g 1.0 in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let choose g a =
  if Array.length a = 0 then invalid_arg "Dist.choose: empty array";
  a.(int g (Array.length a))

let choose_list g l =
  match l with
  | [] -> invalid_arg "Dist.choose_list: empty list"
  | _ :: _ -> List.nth l (int g (List.length l))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let uniform_bits_double g = Int64.float_of_bits (bits64 g)
