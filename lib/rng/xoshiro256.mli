(** xoshiro256** pseudo-random generator (Blackman, Vigna 2018).

    The workhorse generator for MCMC search: one 64-bit output per call,
    256-bit state, seeded deterministically from a single [int64] via
    SplitMix64. *)

type t

val create : int64 -> t

val next : t -> int64
(** Next raw 64-bit output. *)

val copy : t -> t

val split : t -> t
(** A fresh generator seeded from the next output of the argument, so that
    parallel chains derived from one seed remain independent and
    reproducible. *)
