(** xoshiro256** pseudo-random generator (Blackman, Vigna 2018).

    The workhorse generator for MCMC search: one 64-bit output per call,
    256-bit state, seeded deterministically from a single [int64] via
    SplitMix64. *)

type t

val create : int64 -> t

val next : t -> int64
(** Next raw 64-bit output. *)

val copy : t -> t

val split : t -> t
(** A fresh generator seeded from the next output of the argument, so that
    parallel chains derived from one seed remain independent and
    reproducible. *)

val state : t -> int64 array
(** The four state words, for checkpointing a generator mid-stream.  The
    returned array is fresh; mutating it does not affect [t]. *)

val of_state : int64 array -> t
(** Rebuild a generator from {!state}'s four words, continuing the exact
    output stream from the capture point.  Raises [Invalid_argument] on a
    wrong-length or all-zero state (xoshiro's one forbidden point). *)
