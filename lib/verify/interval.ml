type itv = {
  lo : float;
  hi : float;
}

let top = { lo = Float.neg_infinity; hi = Float.infinity }

let is_top i = i.lo = Float.neg_infinity && i.hi = Float.infinity

let make lo hi = { lo; hi }

(* The width of one arithmetic operation's rounding error depends on the
   precision the hardware op rounds to: an f32 op can move the result by a
   whole binary32 ulp, which is ~2^29 binary64 ulps.  [prec] selects the
   grid used for outward widening. *)
type prec =
  | P32
  | P64

(* Widen outward by one representable value of the operation's precision:
   a sound (if slightly lazy) account of round-to-nearest error.  For P32
   the endpoints are first snapped to the binary32 grid by [Fp32.pred]/
   [Fp32.succ]; since nearest-rounding moves an endpoint by at most half a
   binary32 ulp, one full step outward still encloses the true rounded
   result (the binary64 noise of our own interval computation is orders of
   magnitude below that half-ulp). *)
let inflate prec i =
  if is_top i then i
  else
    match prec with
    | P64 -> { lo = Fp64.pred i.lo; hi = Fp64.succ i.hi }
    | P32 -> { lo = Fp32.pred i.lo; hi = Fp32.succ i.hi }

let lift2 prec f a b =
  if is_top a || is_top b then top
  else begin
    let candidates = [ f a.lo b.lo; f a.lo b.hi; f a.hi b.lo; f a.hi b.hi ] in
    let lo = List.fold_left Float.min Float.infinity candidates in
    let hi = List.fold_left Float.max Float.neg_infinity candidates in
    if Float.is_nan lo || Float.is_nan hi then top else inflate prec (make lo hi)
  end

let add = lift2 P64 ( +. )
let sub = lift2 P64 ( -. )
let mul = lift2 P64 ( *. )

let div_p prec a b =
  if is_top a || is_top b then top
  else if b.lo <= 0. && b.hi >= 0. then top (* divisor interval spans zero *)
  else lift2 prec ( /. ) a b

let div = div_p P64

let sqrt_p prec a =
  if is_top a || a.lo < 0. then top
  else inflate prec (make (Float.sqrt a.lo) (Float.sqrt a.hi))

let sqrt_itv = sqrt_p P64

let add32 = lift2 P32 ( +. )
let sub32 = lift2 P32 ( -. )
let mul32 = lift2 P32 ( *. )
let div32 = div_p P32
let sqrt32 = sqrt_p P32

let hull a b = make (Float.min a.lo b.lo) (Float.max a.hi b.hi)

let contains i x = x >= i.lo && x <= i.hi

let width i = i.hi -. i.lo

let mag i = Float.max (Float.abs i.lo) (Float.abs i.hi)

(* ----- term evaluation ----- *)

exception Not_analyzable of string

(* Values flowing through terms: raw bit patterns (constants) stay
   uninterpreted until they reach a floating-point operation of known
   width. *)
type av =
  | Bits of int64
  | Itv of itv

let as_f64 = function
  | Bits v -> let x = Int64.float_of_bits v in make x x
  | Itv i -> i

let as_f32 = function
  | Bits v -> let x = Int32.float_of_bits (Int64.to_int32 v) in make x x
  | Itv i -> i

let rec eval env (t : Symbolic.term) : av =
  match t with
  | Symbolic.Cst v -> Bits v
  | Symbolic.Sym name ->
    (match env name with
     | Some i -> Itv i
     | None -> raise (Not_analyzable (Printf.sprintf "unconstrained input %s" name)))
  | Symbolic.App (op, args) ->
    let binop width f =
      match args with
      | [ a; b ] ->
        let conv = (match width with `F64 -> as_f64 | `F32 -> as_f32) in
        Itv (f (conv (eval env a)) (conv (eval env b)))
      | _ -> raise (Not_analyzable (op ^ ": bad arity"))
    in
    (match op with
     | "addsd" -> binop `F64 add
     | "subsd" -> binop `F64 sub
     | "mulsd" -> binop `F64 mul
     | "divsd" -> binop `F64 div
     | "addss" -> binop `F32 add32
     | "subss" -> binop `F32 sub32
     | "mulss" -> binop `F32 mul32
     | "divss" -> binop `F32 div32
     | "minss" -> binop `F32 (fun a b -> make (Float.min a.lo b.lo) (Float.min a.hi b.hi))
     | "maxss" -> binop `F32 (fun a b -> make (Float.max a.lo b.lo) (Float.max a.hi b.hi))
     | "sqrtss" | "sqrtsd" ->
       (match args with
        | [ a ] ->
          if op = "sqrtss" then Itv (sqrt32 (as_f32 (eval env a)))
          else Itv (sqrt_itv (as_f64 (eval env a)))
        | _ -> raise (Not_analyzable "sqrt arity"))
     | _ ->
       raise
         (Not_analyzable
            (Printf.sprintf "bit-level operation %s defeats interval reasoning" op)))

(* Spacing of representable values at the top magnitude of the interval
   hull; used to scale an absolute difference into "scaled ULPs". *)
let ulp_size_at magnitude ~single =
  let m = Float.max magnitude 1e-300 in
  let e = snd (Float.frexp m) in
  let p = if single then 24 else 53 in
  Float.pow 2. (float_of_int (e - p))

type analysis = {
  bound_ulps : float;
  target_range : itv;
  rewrite_range : itv;
}

let env_of_spec (spec : Sandbox.Spec.t) =
  (* Named float inputs in0, in1, …; memory-cell inputs are named
     base[offset] after the fixed pointer they are reached through. *)
  let tbl = Hashtbl.create 17 in
  let fixed_ptrs =
    List.filter_map
      (fun fx ->
        match fx with
        | Sandbox.Spec.Fix_gp (r, v) -> Some (Reg.gp_name Reg.Q r, v)
        | Sandbox.Spec.Fix_mem _ -> None)
      spec.Sandbox.Spec.fixed_inputs
  in
  let register_mem addr range =
    List.iter
      (fun (name, base) ->
        let off = Int64.sub addr base in
        if Int64.compare off 0L >= 0 && Int64.compare off 4096L < 0 then
          Hashtbl.replace tbl
            (Printf.sprintf "%s[%Ld]" name off)
            (make range.Sandbox.Spec.lo range.Sandbox.Spec.hi))
      fixed_ptrs
  in
  List.iteri
    (fun idx fi ->
      let name = Printf.sprintf "in%d" idx in
      match fi with
      | Sandbox.Spec.Fin_xmm_f64 (_, r)
      | Sandbox.Spec.Fin_xmm_f32 (_, r)
      | Sandbox.Spec.Fin_xmm_f32_hi (_, r) ->
        Hashtbl.replace tbl name (make r.Sandbox.Spec.lo r.Sandbox.Spec.hi)
      | Sandbox.Spec.Fin_mem_f32 (addr, r) | Sandbox.Spec.Fin_mem_f64 (addr, r) ->
        register_mem addr r)
    spec.Sandbox.Spec.float_inputs;
  fun name -> Hashtbl.find_opt tbl name

let single_output (spec : Sandbox.Spec.t) idx =
  match List.nth spec.Sandbox.Spec.outputs idx with
  | Sandbox.Spec.Out_xmm_f32 _ | Sandbox.Spec.Out_xmm_f32_hi _ -> true
  | Sandbox.Spec.Out_xmm_f64 _ | Sandbox.Spec.Out_gp _ -> false

let static_ulp_bound (spec : Sandbox.Spec.t) ~rewrite =
  match Symbolic.exec spec spec.Sandbox.Spec.program, Symbolic.exec spec rewrite with
  | Error e, _ -> Error (Printf.sprintf "target not analyzable: %s" e)
  | _, Error e -> Error (Printf.sprintf "rewrite not analyzable: %s" e)
  | Ok t_terms, Ok r_terms ->
    let env = env_of_spec spec in
    (try
       let bound = ref 0. in
       let t_range = ref (make 0. 0.) in
       let r_range = ref (make 0. 0.) in
       Array.iteri
         (fun idx t_term ->
           let r_term = r_terms.(idx) in
           let ti =
             if single_output spec idx then as_f32 (eval env t_term)
             else as_f64 (eval env t_term)
           in
           let ri =
             if single_output spec idx then as_f32 (eval env r_term)
             else as_f64 (eval env r_term)
           in
           t_range := if idx = 0 then ti else hull !t_range ti;
           r_range := if idx = 0 then ri else hull !r_range ri;
           if Symbolic.equal_term t_term r_term then ()
           else begin
             let diff = sub ti ri in
             if is_top diff then raise (Not_analyzable "difference unbounded")
             else begin
               let abs_diff = Float.max (Float.abs diff.lo) (Float.abs diff.hi) in
               let magnitude =
                 Float.max (Float.abs ti.lo) (Float.abs ti.hi)
               in
               let u = ulp_size_at magnitude ~single:(single_output spec idx) in
               bound := Float.max !bound (abs_diff /. u)
             end
           end)
         t_terms;
       Ok { bound_ulps = !bound; target_range = !t_range; rewrite_range = !r_range }
     with Not_analyzable msg -> Error msg)
