type config = Bbound.config

let default_config = Bbound.default_config

type analysis = {
  sound_ulps : float;
  observed_ulps : float option;
  proved_real_equal : bool;
  target_range : Interval.itv;
  boxes_explored : int;
  depth : int;
}

exception Not_representable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Not_representable s)) fmt

(* ----- the shared real-expression DAG ----- *)

type rop =
  | Radd
  | Rsub
  | Rmul
  | Rdiv
  | Rmin
  | Rmax

(* The rounding grid an operation's result lands on.  Min/max and
   width-extending converts are exact. *)
type rprec =
  | R32
  | R64
  | Rexact

type node =
  | NConst of float
  | NVar of int
  | NBin of rop * rprec * int * int
  | NSqrt of rprec * int
  | NCvt of rprec * int  (** pure rounding of an already-computed value *)

type dag = {
  tbl : (node, int) Hashtbl.t;
  mutable nodes : node array;
  mutable count : int;
  vars : (string, int) Hashtbl.t;
  mutable var_names : string list;  (* reverse order *)
}

let create_dag () =
  {
    tbl = Hashtbl.create 64;
    nodes = Array.make 64 (NConst 0.);
    count = 0;
    vars = Hashtbl.create 8;
    var_names = [];
  }

let push dag n =
  match Hashtbl.find_opt dag.tbl n with
  | Some id -> id
  | None ->
    if dag.count = Array.length dag.nodes then begin
      let bigger = Array.make (2 * dag.count) (NConst 0.) in
      Array.blit dag.nodes 0 bigger 0 dag.count;
      dag.nodes <- bigger
    end;
    dag.nodes.(dag.count) <- n;
    Hashtbl.add dag.tbl n dag.count;
    dag.count <- dag.count + 1;
    dag.count - 1

let var_id dag name =
  match Hashtbl.find_opt dag.vars name with
  | Some k -> push dag (NVar k)
  | None ->
    let k = Hashtbl.length dag.vars in
    Hashtbl.add dag.vars name k;
    dag.var_names <- name :: dag.var_names;
    push dag (NVar k)

(* ----- lifting Symbolic.term into the DAG -----

   Mirrors Interval.eval: constants stay raw bit patterns until an
   operation of known width consumes them. *)

type cv =
  | CBits of int64
  | CNode of int

let rec compile dag (t : Symbolic.term) : cv =
  match t with
  | Symbolic.Cst v -> CBits v
  | Symbolic.Sym name -> CNode (var_id dag name)
  | Symbolic.App (op, args) ->
    let as64 = function
      | CBits v -> push dag (NConst (Int64.float_of_bits v))
      | CNode id -> id
    in
    let as32 = function
      | CBits v -> push dag (NConst (Int32.float_of_bits (Int64.to_int32 v)))
      | CNode id -> id
    in
    let bin conv rop prec =
      match args with
      | [ a; b ] ->
        let ia = conv (compile dag a) in
        let ib = conv (compile dag b) in
        (* hash-consing relies on Symbolic.normalize having sorted
           commutative arguments, so shared work shares node ids *)
        CNode (push dag (NBin (rop, prec, ia, ib)))
      | _ -> fail "%s: bad arity" op
    in
    (match op with
     | "addsd" -> bin as64 Radd R64
     | "subsd" -> bin as64 Rsub R64
     | "mulsd" -> bin as64 Rmul R64
     | "divsd" -> bin as64 Rdiv R64
     | "addss" -> bin as32 Radd R32
     | "subss" -> bin as32 Rsub R32
     | "mulss" -> bin as32 Rmul R32
     | "divss" -> bin as32 Rdiv R32
     | "minss" -> bin as32 Rmin Rexact
     | "maxss" -> bin as32 Rmax Rexact
     | "sqrtsd" ->
       (match args with
        | [ a ] -> CNode (push dag (NSqrt (R64, as64 (compile dag a))))
        | _ -> fail "sqrtsd arity")
     | "sqrtss" ->
       (match args with
        | [ a ] -> CNode (push dag (NSqrt (R32, as32 (compile dag a))))
        | _ -> fail "sqrtss arity")
     | "cvtss2sd" ->
       (* widening: every binary32 value is exactly representable *)
       (match args with
        | [ a ] -> CNode (as32 (compile dag a))
        | _ -> fail "cvtss2sd arity")
     | "cvtsd2ss" ->
       (match args with
        | [ a ] -> CNode (push dag (NCvt (R32, as64 (compile dag a))))
        | _ -> fail "cvtsd2ss arity")
     | _ -> fail "bit-level operation %s defeats Taylor analysis" op)

let root_of dag (spec : Sandbox.Spec.t) idx term =
  match compile dag term with
  | CNode id -> id
  | CBits v ->
    push dag
      (NConst
         (if Interval.single_output spec idx then
            Int32.float_of_bits (Int64.to_int32 v)
          else Int64.float_of_bits v))

(* ----- forward interval pass with explicit perturbation widths ----- *)

let u64 = Float.pow 2. (-53.)
let d64 = Float.pow 2. (-1074.)
let u32 = Float.pow 2. (-24.)
let d32 = Float.pow 2. (-149.)

type fwd = {
  raw : Interval.itv array;  (** pre-rounding enclosure of each node *)
  jv : Interval.itv array;  (** enclosure across the whole e-cube *)
  eb : float array;  (** per-node perturbation bound uᵢ·|rᵢ| + dᵢ *)
}

let e_bound prec (raw : Interval.itv) =
  match prec with
  | Rexact -> 0.
  | R64 -> Fp64.succ ((u64 *. Interval.mag raw) +. d64)
  | R32 -> Fp64.succ ((u32 *. Interval.mag raw) +. d32)

let perturb (raw : Interval.itv) eb =
  if eb = 0. then raw
  else if Interval.is_top raw then raw
  else
    Interval.make
      (Fp64.pred (raw.Interval.lo -. eb))
      (Fp64.succ (raw.Interval.hi +. eb))

let imin (a : Interval.itv) (b : Interval.itv) =
  if Interval.is_top a || Interval.is_top b then Interval.top
  else
    Interval.make
      (Float.min a.Interval.lo b.Interval.lo)
      (Float.min a.Interval.hi b.Interval.hi)

let imax (a : Interval.itv) (b : Interval.itv) =
  if Interval.is_top a || Interval.is_top b then Interval.top
  else
    Interval.make
      (Float.max a.Interval.lo b.Interval.lo)
      (Float.max a.Interval.hi b.Interval.hi)

let forward dag (box : Interval.itv array) : fwd =
  let n = dag.count in
  let raw = Array.make n Interval.top in
  let jv = Array.make n Interval.top in
  let eb = Array.make n 0. in
  for id = 0 to n - 1 do
    let r =
      match dag.nodes.(id) with
      | NConst c -> Interval.make c c
      | NVar k -> box.(k)
      | NBin (op, _, a, b) ->
        let ja = jv.(a) and jb = jv.(b) in
        (match op with
         | Radd -> Interval.add ja jb
         | Rsub -> Interval.sub ja jb
         | Rmul -> Interval.mul ja jb
         | Rdiv -> Interval.div ja jb
         | Rmin -> imin ja jb
         | Rmax -> imax ja jb)
      | NSqrt (_, a) -> Interval.sqrt_itv jv.(a)
      | NCvt (_, a) -> jv.(a)
    in
    let prec =
      match dag.nodes.(id) with
      | NBin (_, p, _, _) | NSqrt (p, _) | NCvt (p, _) -> p
      | NConst _ | NVar _ -> Rexact
    in
    raw.(id) <- r;
    let e = if Interval.is_top r then Float.infinity else e_bound prec r in
    eb.(id) <- e;
    jv.(id) <- perturb r e
  done;
  { raw; jv; eb }

(* ----- interval reverse-mode adjoints -----

   adjoints.(i) encloses ∂(root)/∂eᵢ — the derivative of the root value
   with respect to an additive perturbation at node i — over the whole
   input box and perturbation cube (all intermediate values drawn from
   [jv], which encloses every perturbed evaluation). *)

let zero = Interval.make 0. 0.

let square (i : Interval.itv) =
  let m = Interval.mul i i in
  if Interval.is_top m then m
  else
    Interval.make
      (if Interval.contains i 0. then 0.
       else Stdlib.max 0. m.Interval.lo)
      m.Interval.hi

let hull0 (i : Interval.itv) =
  if Interval.is_top i then i
  else Interval.make (Float.min 0. i.Interval.lo) (Float.max 0. i.Interval.hi)

let adjoints dag (f : fwd) root : Interval.itv array =
  let adj = Array.make dag.count zero in
  adj.(root) <- Interval.make 1. 1.;
  for id = dag.count - 1 downto 0 do
    let a_n = adj.(id) in
    if not (a_n.Interval.lo = 0. && a_n.Interval.hi = 0.) then begin
      let bump k v = adj.(k) <- Interval.add adj.(k) v in
      match dag.nodes.(id) with
      | NConst _ | NVar _ -> ()
      | NBin (Radd, _, a, b) ->
        bump a a_n;
        bump b a_n
      | NBin (Rsub, _, a, b) ->
        bump a a_n;
        bump b (Interval.sub zero a_n)
      | NBin (Rmul, _, a, b) ->
        bump a (Interval.mul a_n f.jv.(b));
        bump b (Interval.mul a_n f.jv.(a))
      | NBin (Rdiv, _, a, b) ->
        bump a (Interval.div a_n f.jv.(b));
        bump b
          (Interval.sub zero
             (Interval.div (Interval.mul a_n f.jv.(a)) (square f.jv.(b))))
      | NBin ((Rmin | Rmax), _, a, b) ->
        (* subgradient pair (θ, 1−θ), θ ∈ [0,1] *)
        bump a (hull0 a_n);
        bump b (hull0 a_n)
      | NSqrt (_, a) ->
        bump a
          (Interval.div a_n
             (Interval.mul (Interval.make 2. 2.) (Interval.sqrt_itv f.jv.(a))))
      | NCvt (_, a) -> bump a a_n
    end
  done;
  adj

(* ----- polynomial normal form of the real difference -----

   The real (perturbation-free) part of target − rewrite is expanded into
   a sum of monomials over atomic factors, with division, sqrt, and
   min/max kept as opaque atoms.  Coefficient arithmetic runs in interval
   form with exactness checks, so constant combination never silently
   rounds; a monomial whose coefficient is exactly the point zero
   cancels.  Reassociations and distributions — the rewrites interval
   subtraction cannot see through — cancel here exactly. *)

exception Poly_bail

type atom =
  | Avar of int
  | Adiv of poly * poly
  | Asqrt of poly
  | Amin of poly * poly
  | Amax of poly * poly

and monomial = {
  c : Interval.itv;
  atoms : atom list;  (* sorted *)
}

and poly = monomial list (* sorted by atom lists *)

let rec compare_atom a b =
  match a, b with
  | Avar x, Avar y -> compare x y
  | Adiv (p, q), Adiv (p', q') | Amin (p, q), Amin (p', q')
  | Amax (p, q), Amax (p', q') ->
    let c = compare_poly p p' in
    if c <> 0 then c else compare_poly q q'
  | Asqrt p, Asqrt p' -> compare_poly p p'
  | Avar _, _ -> -1
  | _, Avar _ -> 1
  | Adiv _, _ -> -1
  | _, Adiv _ -> 1
  | Asqrt _, _ -> -1
  | _, Asqrt _ -> 1
  | Amin _, _ -> -1
  | _, Amin _ -> 1

and compare_atoms xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare_atom x y in
    if c <> 0 then c else compare_atoms xs' ys'

and compare_mono (m : monomial) (m' : monomial) =
  let c = compare_atoms m.atoms m'.atoms in
  if c <> 0 then c
  else
    let c = compare m.c.Interval.lo m'.c.Interval.lo in
    if c <> 0 then c else compare m.c.Interval.hi m'.c.Interval.hi

and compare_poly p q =
  if p == q then 0
  else
    match p, q with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | m :: p', m' :: q' ->
      let c = compare_mono m m' in
      if c <> 0 then c else compare_poly p' q'

let is_point (i : Interval.itv) = i.Interval.lo = i.Interval.hi

let point x = Interval.make x x

(* Exactness-checked coefficient arithmetic: results stay point intervals
   only when the float operation is provably exact. *)
let cadd (a : Interval.itv) (b : Interval.itv) =
  if is_point a && is_point b then begin
    let x = a.Interval.lo and y = b.Interval.lo in
    let s = x +. y in
    if Float.is_finite s && s -. x = y && s -. y = x then point s
    else Interval.add a b
  end
  else Interval.add a b

let cmul (a : Interval.itv) (b : Interval.itv) =
  if is_point a && is_point b then begin
    let x = a.Interval.lo and y = b.Interval.lo in
    let p = x *. y in
    if Float.is_finite p && Float.fma x y (-.p) = 0. then point p
    else Interval.mul a b
  end
  else Interval.mul a b

let cneg (a : Interval.itv) =
  Interval.make (-.a.Interval.hi) (-.a.Interval.lo)

let is_zero_coeff (i : Interval.itv) = i.Interval.lo = 0. && i.Interval.hi = 0.

(* Sort and merge monomials with equal atom lists; drop exact zeros. *)
let collect (ms : monomial list) : poly =
  let sorted = List.sort (fun m m' -> compare_atoms m.atoms m'.atoms) ms in
  let rec merge = function
    | [] -> []
    | [ m ] -> if is_zero_coeff m.c then [] else [ m ]
    | m :: m' :: rest ->
      if compare_atoms m.atoms m'.atoms = 0 then
        merge ({ m with c = cadd m.c m'.c } :: rest)
      else if is_zero_coeff m.c then merge (m' :: rest)
      else m :: merge (m' :: rest)
  in
  merge sorted

let max_monomials = 512

let padd (p : poly) (q : poly) : poly =
  let r = collect (p @ q) in
  if List.length r > max_monomials then raise Poly_bail;
  r

let pneg (p : poly) : poly = List.map (fun m -> { m with c = cneg m.c }) p

let pmul (p : poly) (q : poly) : poly =
  if List.length p * List.length q > max_monomials then raise Poly_bail;
  let r =
    collect
      (List.concat_map
         (fun m ->
           List.map
             (fun m' ->
               {
                 c = cmul m.c m'.c;
                 atoms = List.merge compare_atom m.atoms m'.atoms;
               })
             q)
         p)
  in
  if List.length r > max_monomials then raise Poly_bail;
  r

let const_poly c = if c = 0. then [] else [ { c = point c; atoms = [] } ]

(* Real semantics of each DAG node as a polynomial (memoized on node id:
   the hash-consed DAG guarantees shared subterms of the target and
   rewrite reach physically equal polynomials, so [compare_poly]'s
   pointer shortcut keeps cancellation cheap). *)
let poly_of_dag dag =
  let memo = Array.make dag.count None in
  let rec go id =
    match memo.(id) with
    | Some p -> p
    | None ->
      let p =
        match dag.nodes.(id) with
        | NConst c -> const_poly c
        | NVar k -> [ { c = point 1.; atoms = [ Avar k ] } ]
        | NBin (Radd, _, a, b) -> padd (go a) (go b)
        | NBin (Rsub, _, a, b) -> padd (go a) (pneg (go b))
        | NBin (Rmul, _, a, b) -> pmul (go a) (go b)
        | NBin (Rdiv, _, a, b) ->
          [ { c = point 1.; atoms = [ Adiv (go a, go b) ] } ]
        | NBin (Rmin, _, a, b) ->
          [ { c = point 1.; atoms = [ Amin (go a, go b) ] } ]
        | NBin (Rmax, _, a, b) ->
          [ { c = point 1.; atoms = [ Amax (go a, go b) ] } ]
        | NSqrt (_, a) -> [ { c = point 1.; atoms = [ Asqrt (go a) ] } ]
        | NCvt (_, a) -> go a
      in
      memo.(id) <- Some p;
      p
  in
  go

(* Interval evaluation of a polynomial over a box, with even-power
   tightening of repeated atoms. *)
let rec eval_atom box = function
  | Avar k -> box.(k)
  | Adiv (p, q) -> Interval.div (eval_poly box p) (eval_poly box q)
  | Asqrt p -> Interval.sqrt_itv (eval_poly box p)
  | Amin (p, q) -> imin (eval_poly box p) (eval_poly box q)
  | Amax (p, q) -> imax (eval_poly box p) (eval_poly box q)

and pow_itv (i : Interval.itv) k =
  if k = 1 then i
  else if Interval.is_top i then i
  else begin
    let k' = float_of_int k in
    let m = Interval.mag i in
    let hi = Fp64.succ (Float.pow m k') in
    let lo_mag = Float.min (Float.abs i.Interval.lo) (Float.abs i.Interval.hi) in
    if k mod 2 = 0 then
      Interval.make
        (if Interval.contains i 0. then 0. else Fp64.pred (Float.pow lo_mag k'))
        hi
    else begin
      (* odd power preserves sign *)
      let lo = Fp64.pred (Float.pow i.Interval.lo k') in
      let hi' = Fp64.succ (Float.pow i.Interval.hi k') in
      Interval.make lo hi'
    end
  end

and eval_poly box (p : poly) : Interval.itv =
  List.fold_left
    (fun acc (m : monomial) ->
      let rec factors = function
        | [] -> point 1.
        | a :: rest ->
          let same, rest' = List.partition (fun a' -> compare_atom a a' = 0) rest in
          Interval.mul
            (pow_itv (eval_atom box a) (1 + List.length same))
            (factors rest')
      in
      Interval.add acc (Interval.mul m.c (factors m.atoms)))
    zero p

(* ----- the full analysis ----- *)

type output_case = {
  t_root : int;
  r_root : int;
  single : bool;
  diff_poly : poly option;  (** None: expansion bailed; use interval diff *)
}

let build (spec : Sandbox.Spec.t) ~rewrite =
  match
    ( Symbolic.exec spec spec.Sandbox.Spec.program,
      Symbolic.exec spec rewrite )
  with
  | Error e, _ -> Error (Printf.sprintf "target not analyzable: %s" e)
  | _, Error e -> Error (Printf.sprintf "rewrite not analyzable: %s" e)
  | Ok t_terms, Ok r_terms ->
    (try
       let dag = create_dag () in
       let cases =
         Array.to_list
           (Array.mapi
              (fun idx t_term ->
                let t_root = root_of dag spec idx t_term in
                let r_root = root_of dag spec idx r_terms.(idx) in
                (idx, t_root, r_root))
              t_terms)
       in
       let poly = poly_of_dag dag in
       let cases =
         List.map
           (fun (idx, t_root, r_root) ->
             let diff_poly =
               if t_root = r_root then Some []
               else
                 try Some (padd (poly t_root) (pneg (poly r_root)))
                 with Poly_bail -> None
             in
             {
               t_root;
               r_root;
               single = Interval.single_output spec idx;
               diff_poly;
             })
           cases
       in
       Ok (dag, cases)
     with Not_representable msg -> Error msg)

let box_of_spec dag (spec : Sandbox.Spec.t) =
  let env = Interval.env_of_spec spec in
  let names = Array.of_list (List.rev dag.var_names) in
  Array.map
    (fun name ->
      match env name with
      | Some i -> i
      | None -> fail "unconstrained input %s" name)
    names

let bound ?(config = default_config) (spec : Sandbox.Spec.t) ~rewrite =
  match build spec ~rewrite with
  | Error e -> Error e
  | Ok (dag, cases) ->
    (try
       let box0 = box_of_spec dag spec in
       (* Fixed per-output ULP units from the full-box target range keep
          the branch-and-bound objective inclusion-monotone. *)
       let f0 = forward dag box0 in
       let target_range =
         List.fold_left
           (fun acc c -> Interval.hull acc f0.jv.(c.t_root))
           (match cases with
            | [] -> zero
            | c :: _ -> f0.jv.(c.t_root))
           cases
       in
       let units =
         List.map
           (fun c ->
             Interval.ulp_size_at
               (Interval.mag f0.jv.(c.t_root))
               ~single:c.single)
           cases
       in
       let live = List.exists (fun c -> c.t_root <> c.r_root) cases in
       if not live then
         Ok
           {
             sound_ulps = 0.;
             observed_ulps = None;
             proved_real_equal = true;
             target_range;
             boxes_explored = 0;
             depth = 0;
           }
       else begin
         let objective box =
           let f = forward dag box in
           List.fold_left2
             (fun acc c unit_ ->
               if c.t_root = c.r_root then acc
               else begin
                 let adj_t = adjoints dag f c.t_root in
                 let adj_r = adjoints dag f c.r_root in
                 let round_off = ref 0. in
                 for id = 0 to dag.count - 1 do
                   if f.eb.(id) > 0. then begin
                     let d = Interval.sub adj_t.(id) adj_r.(id) in
                     round_off :=
                       !round_off +. (Interval.mag d *. f.eb.(id))
                   end
                 done;
                 let real_diff =
                   match c.diff_poly with
                   | Some p -> Interval.mag (eval_poly box p)
                   | None ->
                     Interval.mag (Interval.sub f.raw.(c.t_root) f.raw.(c.r_root))
                 in
                 Stdlib.max acc ((!round_off +. real_diff) /. unit_)
               end)
             0. cases units
         in
         let sup, stats = Bbound.maximize config ~f:objective ~box:box0 in
         let proved_real_equal =
           List.for_all
             (fun c ->
               c.t_root = c.r_root || c.diff_poly = Some [])
             cases
         in
         Ok
           {
             sound_ulps = sup;
             observed_ulps = None;
             proved_real_equal;
             target_range;
             boxes_explored = stats.Bbound.boxes_explored;
             depth = stats.Bbound.depth;
           }
       end
     with Not_representable msg -> Error msg)
