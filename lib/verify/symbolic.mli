(** Symbolic execution with uninterpreted floating-point operations.

    Floating-point instructions become uninterpreted applications over
    bit-vector terms; data movement, shuffles, and constant logic are
    interpreted precisely.  Two programs whose live-out terms normalize to
    the same DAG are bit-wise equivalent for all inputs — the technique the
    paper uses (via Z3) to verify the dot-product rewrite of Figure 6.

    Commutative operations ([addss], [mulss], and the bitwise logicals) are
    normalized by argument sorting, which is sound for bit-wise equality up
    to NaN payload propagation.

    The executor is deliberately partial: instructions whose precise
    bit-level effect we cannot track (flag-dependent control, packed
    integer arithmetic on symbolic data, …) abort with [Error], mirroring
    the scaling limits of the decision procedures discussed in §4. *)

type term =
  | Sym of string  (** a fresh 32-bit input cell *)
  | Cst of int64  (** constant bit pattern *)
  | App of string * term list

val term_to_string : term -> string

val normalize : term -> term
(** Sort arguments of commutative applications, fold pack/unpack pairs. *)

val equal_term : term -> term -> bool
(** Structural equality of normalized terms. *)

val exec : Sandbox.Spec.t -> Program.t -> (term array, string) result
(** Symbolic outputs (one per spec output) of running the program from the
    spec's symbolic initial state. *)

val equivalent : Sandbox.Spec.t -> rewrite:Program.t -> (bool, string) result
(** [Ok true] proves the rewrite bit-wise equivalent to the spec's target
    on every input; [Ok false] means the terms differ (no counterexample is
    produced); [Error reason] when either program leaves the supported
    fragment. *)
