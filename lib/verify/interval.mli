(** Interval abstract interpretation with rounding inflation.

    Evaluates the symbolic output terms of a target and rewrite over the
    spec's input ranges, widening every arithmetic result outward by one
    representable value *of the operation's precision* (binary32 ops widen
    on the binary32 grid) to absorb rounding error, and bounds the absolute
    difference between the two programs' outputs.  The bound is converted
    into "scaled ULPs" at the output's maximum magnitude.

    As the paper observes (§4, §6.1), this is only applicable to kernels
    without bit-level manipulation of floating-point representations —
    terms containing bitwise operations on symbolic data evaluate to ⊤ and
    the analysis reports failure — and even where it applies, the bound is
    far coarser than what MCMC validation finds (§6.3: 1363.5 static vs 5
    observed ULPs).  {!Taylor} supplies the tighter first-order bound. *)

type itv = {
  lo : float;
  hi : float;
}

val top : itv
val is_top : itv -> bool
val make : float -> float -> itv

val add : itv -> itv -> itv
val sub : itv -> itv -> itv
val mul : itv -> itv -> itv
val div : itv -> itv -> itv
val sqrt_itv : itv -> itv
(** All widen outward by one representable double after the real interval
    computation. *)

val add32 : itv -> itv -> itv
val sub32 : itv -> itv -> itv
val mul32 : itv -> itv -> itv
val div32 : itv -> itv -> itv
val sqrt32 : itv -> itv
(** Binary32 counterparts: widen outward by one representable binary32
    value, the sound margin for f32-rounded hardware ops. *)

val hull : itv -> itv -> itv
val contains : itv -> float -> bool
val width : itv -> float

val mag : itv -> float
(** Largest absolute value in the interval. *)

val ulp_size_at : float -> single:bool -> float
(** Spacing of representable values at the given magnitude; the unit used
    to express absolute error bounds in scaled ULPs. *)

exception Not_analyzable of string

type av =
  | Bits of int64
  | Itv of itv

val as_f64 : av -> itv
val as_f32 : av -> itv

val eval : (string -> itv option) -> Symbolic.term -> av
(** Evaluate a symbolic term over an input environment.
    @raise Not_analyzable on unconstrained inputs or bit-level ops. *)

val env_of_spec : Sandbox.Spec.t -> string -> itv option
(** Input environment from a spec's declared ranges: [in%d] names for
    register float inputs, [base[offset]] names for memory cells reached
    through fixed pointer registers. *)

val single_output : Sandbox.Spec.t -> int -> bool
(** Whether output [idx] is a binary32 value. *)

type analysis = {
  bound_ulps : float;  (** scaled-ULP bound on the output difference *)
  target_range : itv;
  rewrite_range : itv;
}

val static_ulp_bound :
  Sandbox.Spec.t -> rewrite:Program.t -> (analysis, string) Stdlib.result
(** [Error] when either program leaves the symbolically-executable fragment
    or the outputs depend on bit-manipulated values. *)
