(** Interval abstract interpretation with rounding inflation.

    Evaluates the symbolic output terms of a target and rewrite over the
    spec's input ranges, widening every arithmetic result outward by one
    representable value to absorb rounding error, and bounds the absolute
    difference between the two programs' outputs.  The bound is converted
    into "scaled ULPs" at the output's maximum magnitude.

    As the paper observes (§4, §6.1), this is only applicable to kernels
    without bit-level manipulation of floating-point representations —
    terms containing bitwise operations on symbolic data evaluate to ⊤ and
    the analysis reports failure — and even where it applies, the bound is
    far coarser than what MCMC validation finds (§6.3: 1363.5 static vs 5
    observed ULPs). *)

type itv = {
  lo : float;
  hi : float;
}

val top : itv
val is_top : itv -> bool

val add : itv -> itv -> itv
val sub : itv -> itv -> itv
val mul : itv -> itv -> itv
val div : itv -> itv -> itv
(** All four widen outward by one representable double after the real
    interval computation. *)

val contains : itv -> float -> bool
val width : itv -> float

type analysis = {
  bound_ulps : float;  (** scaled-ULP bound on the output difference *)
  target_range : itv;
  rewrite_range : itv;
}

val static_ulp_bound :
  Sandbox.Spec.t -> rewrite:Program.t -> (analysis, string) Stdlib.result
(** [Error] when either program leaves the symbolically-executable fragment
    or the outputs depend on bit-manipulated values. *)
