type config = {
  max_depth : int;
  max_boxes : int;
  timeout_s : float;
}

let default_config = { max_depth = 10; max_boxes = 2000; timeout_s = 0.5 }

type stats = {
  boxes_explored : int;
  depth : int;
}

(* A work item: a sub-box, its depth, and the objective's upper bound on
   it (clamped to its parent's bound, so the per-box bounds are monotone
   along every split path even if interval evaluation is noisy). *)
type item = {
  ub : float;
  depth_ : int;
  box_ : Interval.itv array;
}

let widest_dim box =
  let best = ref (-1) in
  let best_w = ref 0. in
  Array.iteri
    (fun k (i : Interval.itv) ->
      let w = Interval.width i in
      if Float.is_finite w && w > !best_w then begin
        best := k;
        best_w := w
      end)
    box;
  !best

let midpoint (i : Interval.itv) =
  let m = (i.Interval.lo +. i.Interval.hi) /. 2. in
  if Float.is_finite m then m else Stdlib.max i.Interval.lo (Stdlib.min i.Interval.hi 0.)

let split box k =
  let i = box.(k) in
  let m = midpoint i in
  if not (m > i.Interval.lo && m < i.Interval.hi) then None
  else begin
    let left = Array.copy box and right = Array.copy box in
    left.(k) <- Interval.make i.Interval.lo m;
    right.(k) <- Interval.make m i.Interval.hi;
    Some (left, right)
  end

let point_box box = Array.map (fun i -> let m = midpoint i in Interval.make m m) box

(* Simple sorted-list priority queue keyed on ub, worst (largest) first.
   Box counts are bounded by the budget (a few thousand), so O(n)
   insertion is immaterial next to objective evaluation. *)
let insert item queue =
  let rec go = function
    | [] -> [ item ]
    | x :: rest when x.ub < item.ub -> item :: x :: rest
    | x :: rest -> x :: go rest
  in
  go queue

let sanitize v = if Float.is_nan v then Float.infinity else v

let maximize cfg ~f ~box =
  let started = Sys.time () in
  let evals = ref 0 in
  let max_depth_seen = ref 0 in
  let eval b =
    incr evals;
    sanitize (f b)
  in
  (* Certified lower bound: the objective at a degenerate midpoint box is
     an upper bound of the supremum over a single point, hence a lower
     bound of the supremum over any box containing that point. *)
  let lower = ref Float.neg_infinity in
  let observe_center b =
    let v = eval (point_box b) in
    if v > !lower && Float.is_finite v then lower := v
  in
  let root = { ub = eval box; depth_ = 0; box_ = box } in
  if Array.length box = 0 || cfg.max_depth <= 0 then (root.ub, { boxes_explored = !evals; depth = 0 })
  else begin
    observe_center box;
    (* [settled] holds the bounds of boxes we will not split further;
       the final answer is max(settled, remaining queue). *)
    let settled = ref Float.neg_infinity in
    let settle v = if v > !settled then settled := v in
    let out_of_budget () =
      !evals >= cfg.max_boxes
      || (cfg.timeout_s > 0. && Sys.time () -. started > cfg.timeout_s)
    in
    let rec loop queue =
      match queue with
      | [] -> !settled
      | worst :: rest ->
        if out_of_budget () then List.fold_left (fun acc it -> Stdlib.max acc it.ub) !settled queue
        else if worst.ub <= !lower then begin
          (* No box can beat the certified lower bound: the supremum is
             exactly [lower] up to the evaluation slack already inside
             these upper bounds. *)
          settle worst.ub;
          List.iter (fun it -> settle it.ub) rest;
          !settled
        end
        else if worst.depth_ >= cfg.max_depth then begin
          settle worst.ub;
          loop rest
        end
        else begin
          let k = widest_dim worst.box_ in
          if k < 0 then begin
            settle worst.ub;
            loop rest
          end
          else
            match split worst.box_ k with
            | None ->
              settle worst.ub;
              loop rest
            | Some (left, right) ->
              let d = worst.depth_ + 1 in
              if d > !max_depth_seen then max_depth_seen := d;
              let child b =
                (* Clamping to the parent's bound keeps subdivision
                   monotone: a child can only tighten. *)
                { ub = Stdlib.min (eval b) worst.ub; depth_ = d; box_ = b }
              in
              let l = child left and r = child right in
              observe_center left;
              observe_center right;
              loop (insert l (insert r rest))
        end
    in
    let sup = loop [ root ] in
    (* Never report worse than the root evaluation, and never better than
       what subdivision actually certified. *)
    (Stdlib.min sup root.ub, { boxes_explored = !evals; depth = !max_depth_seen })
  end
