(** First-order Taylor-form round-off analysis of the difference between a
    target and a rewrite (FPTaylor-style).

    Both programs' symbolic output terms are lifted into one shared
    real-valued DAG in which every rounded operation [op] carries an
    explicit perturbation: the computed value is modeled as
    [op(a, b) + e] with [|e| ≤ u·|op(a, b)| + d] ([u] the unit round-off
    and [d] the denormal bound of the operation's precision).  Because the
    DAG is hash-consed, a subexpression computed by both programs is one
    node with one perturbation — exactly matching hardware, where both
    programs round the shared intermediate identically — so shared work
    cancels instead of double-counting.

    By the mean value theorem, for each output pair

    {v |target − rewrite| ≤ |Δ(x)| + Σᵢ sup|∂Δ̂/∂eᵢ| · (uᵢ·|rᵢ| + dᵢ) }

    where [Δ̂] is the perturbed difference, the supremum ranges over the
    input box and the whole perturbation cube (which absorbs all
    higher-order terms — no explicit second-order remainder is needed),
    [rᵢ] is the pre-rounding enclosure of node [i], and [Δ(x)] is the
    *real* (perturbation-free) difference.  The adjoints [∂Δ̂/∂eᵢ] are
    computed by interval-valued reverse-mode differentiation; [Δ(x)] is
    normalized into a polynomial over division/sqrt/min/max atoms with
    exactness-checked coefficient arithmetic, so reassociations and
    distributions cancel exactly instead of suffering interval dependency
    blow-up.  The whole objective is inclusion-monotone, so {!Bbound}
    subdivision of the input box tightens it soundly.

    The resulting bound is converted to scaled ULPs at the target output's
    maximum magnitude, the same currency {!Interval.static_ulp_bound} and
    η use. *)

type config = Bbound.config

val default_config : config

type analysis = {
  sound_ulps : float;
      (** sound upper bound on the output difference, in scaled ULPs at
          the target's output magnitude *)
  observed_ulps : float option;
      (** largest error actually observed by MCMC validation, when the
          caller ran it; always ≤ [sound_ulps] for a correct analysis *)
  proved_real_equal : bool;
      (** the real-arithmetic difference cancelled to the empty
          polynomial: target and rewrite compute the same real function,
          and the bound is pure round-off *)
  target_range : Interval.itv;
  boxes_explored : int;
  depth : int;
}

val bound :
  ?config:config ->
  Sandbox.Spec.t ->
  rewrite:Program.t ->
  (analysis, string) Stdlib.result
(** [Error] when either program leaves the symbolically-executable
    fragment or mixes bit-level operations into the float data flow. *)
