type term =
  | Sym of string
  | Cst of int64
  | App of string * term list

let rec term_to_string = function
  | Sym s -> s
  | Cst v -> Printf.sprintf "0x%Lx" v
  | App (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map term_to_string args))

let commutative = function
  | "addss" | "mulss" | "addsd" | "mulsd" | "minss" | "maxss" | "and32"
  | "or32" | "xor32" | "and64" | "or64" | "xor64" ->
    true
  | _ -> false

let rec compare_term a b =
  match a, b with
  | Sym x, Sym y -> String.compare x y
  | Cst x, Cst y -> Int64.compare x y
  | App (f, xs), App (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c else compare_terms xs ys
  | Sym _, (Cst _ | App _) -> -1
  | Cst _, App _ -> -1
  | Cst _, Sym _ -> 1
  | App _, (Sym _ | Cst _) -> 1

and compare_terms xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare_term x y in
    if c <> 0 then c else compare_terms xs' ys'

let rec normalize t =
  match t with
  | Sym _ | Cst _ -> t
  | App (f, args) ->
    let args = List.map normalize args in
    (match f, args with
     (* pack64(lo32 t, hi32 t) = t *)
     | "pack64", [ App ("lo32", [ a ]); App ("hi32", [ b ]) ]
       when compare_term a b = 0 ->
       a
     | "lo32", [ App ("pack64", [ lo; _ ]) ] -> lo
     | "hi32", [ App ("pack64", [ _; hi ]) ] -> hi
     | "lo32", [ Cst v ] -> Cst (Int64.logand v 0xffff_ffffL)
     | "hi32", [ Cst v ] -> Cst (Int64.shift_right_logical v 32)
     | "pack64", [ Cst lo; Cst hi ] ->
       Cst (Int64.logor (Int64.logand lo 0xffff_ffffL) (Int64.shift_left hi 32))
     | ("xor32" | "xor64"), [ a; b ] when compare_term a b = 0 -> Cst 0L
     | "and32", [ Cst a; Cst b ] -> Cst (Int64.logand a b)
     | "or32", [ Cst a; Cst b ] -> Cst (Int64.logor a b)
     | "xor32", [ Cst a; Cst b ] -> Cst (Int64.logxor a b)
     | "and64", [ Cst a; Cst b ] -> Cst (Int64.logand a b)
     | "or64", [ Cst a; Cst b ] -> Cst (Int64.logor a b)
     | "xor64", [ Cst a; Cst b ] -> Cst (Int64.logxor a b)
     (* GP shifts with both operands concrete fold with the hardware's
        count masking (63 for 64-bit, 31 for 32-bit forms). *)
     | "shl64", [ Cst a; Cst c ] ->
       let c = Int64.to_int c land 63 in
       Cst (if c = 0 then a else Int64.shift_left a c)
     | "shr64", [ Cst a; Cst c ] ->
       let c = Int64.to_int c land 63 in
       Cst (if c = 0 then a else Int64.shift_right_logical a c)
     | "sar64", [ Cst a; Cst c ] ->
       let c = Int64.to_int c land 63 in
       Cst (if c = 0 then a else Int64.shift_right a c)
     | "shl32", [ Cst a; Cst c ] ->
       let c = Int64.to_int c land 31 in
       Cst (Int64.logand (if c = 0 then a else Int64.shift_left a c) 0xffff_ffffL)
     | "shr32", [ Cst a; Cst c ] ->
       let c = Int64.to_int c land 31 in
       let a = Int64.logand a 0xffff_ffffL in
       Cst (if c = 0 then a else Int64.shift_right_logical a c)
     | "add", [ Cst a; Cst b ] -> Cst (Int64.add a b)
     | "sub", [ Cst a; Cst b ] -> Cst (Int64.sub a b)
     | _, _ ->
       if commutative f then App (f, List.sort compare_term args)
       else App (f, args))

let equal_term a b = compare_term (normalize a) (normalize b) = 0

(* ----- symbolic machine ----- *)

type gpval =
  | Ptr of string * int  (** symbolic base plus concrete byte offset *)
  | Val of term

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type state = {
  gp : gpval array;
  lanes : term array;  (** 4 dword lanes per xmm: index 4*xmm + lane *)
  mutable mem : ((string * int) * term) list;  (** 32-bit cells *)
}

let fresh_cell state base off =
  match List.assoc_opt (base, off) state.mem with
  | Some t -> t
  | None ->
    let t = Sym (Printf.sprintf "%s[%d]" base off) in
    state.mem <- ((base, off), t) :: state.mem;
    t

let store_cell state base off t =
  state.mem <- ((base, off), t) :: List.remove_assoc (base, off) state.mem

let lane state x k = state.lanes.((4 * Reg.xmm_index x) + k)
let set_lane state x k t = state.lanes.((4 * Reg.xmm_index x) + k) <- t

let addr_of state (m : Operand.mem) =
  let base =
    match m.Operand.base with
    | None -> unsupported "memory operand without base"
    | Some r ->
      (match state.gp.(Reg.gp_index r) with
       | Ptr (s, off) -> (s, off)
       | Val _ -> unsupported "memory access through a non-pointer register")
  in
  if m.Operand.index <> None then unsupported "indexed addressing";
  let s, off = base in
  let total = off + m.Operand.disp in
  if total mod 4 <> 0 then unsupported "unaligned symbolic memory cell";
  (s, total)

let load32 state (o : Operand.t) =
  match o with
  | Operand.Xmm x -> lane state x 0
  | Operand.Mem m ->
    let s, off = addr_of state m in
    fresh_cell state s off
  | Operand.Gp r ->
    (match state.gp.(Reg.gp_index r) with
     | Val (Cst v) -> Cst (Int64.logand v 0xffff_ffffL)
     | Val t -> App ("lo32", [ t ])
     | Ptr _ -> unsupported "pointer moved into float context")
  | Operand.Imm _ -> unsupported "immediate in float context"

(* 128-bit load as four dword lanes. *)
let load128 state (o : Operand.t) =
  match o with
  | Operand.Xmm x -> Array.init 4 (fun k -> lane state x k)
  | Operand.Mem m ->
    let s, off = addr_of state m in
    Array.init 4 (fun k -> fresh_cell state s (off + (4 * k)))
  | Operand.Gp _ | Operand.Imm _ -> unsupported "bad 128-bit source"

let load64_pair state (o : Operand.t) =
  match o with
  | Operand.Xmm x -> (lane state x 0, lane state x 1)
  | Operand.Mem m ->
    let s, off = addr_of state m in
    (fresh_cell state s off, fresh_cell state s (off + 4))
  | Operand.Gp r ->
    (match state.gp.(Reg.gp_index r) with
     | Val t -> (App ("lo32", [ t ]), App ("hi32", [ t ]))
     | Ptr _ -> unsupported "pointer moved into xmm")
  | Operand.Imm _ -> unsupported "immediate as 64-bit source"

let dst_xmm (o : Operand.t) =
  match o with
  | Operand.Xmm x -> x
  | _ -> unsupported "expected xmm destination"

let pack64 lo hi = normalize (App ("pack64", [ lo; hi ]))

let f64_binop state op src_o dst_o =
  let slo, shi = load64_pair state src_o in
  let d = dst_xmm dst_o in
  let r = App (op, [ pack64 (lane state d 0) (lane state d 1); pack64 slo shi ]) in
  set_lane state d 0 (App ("lo32", [ r ]));
  set_lane state d 1 (App ("hi32", [ r ]))

let f32_binop state op src_o dst_o =
  let s = load32 state src_o in
  let d = dst_xmm dst_o in
  set_lane state d 0 (App (op, [ lane state d 0; s ]))

let step state (i : Instr.t) =
  let ops = i.Instr.operands in
  let n = Array.length ops in
  let src k = ops.(k) in
  let dst () = ops.(n - 1) in
  match i.Instr.op with
  | Opcode.Mov w ->
    (match src 0, dst () with
     | Operand.Imm v, Operand.Gp d ->
       let v = (match w with Reg.Q -> v | Reg.L -> Int64.logand v 0xffff_ffffL) in
       state.gp.(Reg.gp_index d) <- Val (Cst v)
     | Operand.Gp s, Operand.Gp d ->
       state.gp.(Reg.gp_index d) <- state.gp.(Reg.gp_index s)
     | _ -> unsupported "mov form")
  | Opcode.Movabs ->
    (match src 0, dst () with
     | Operand.Imm v, Operand.Gp d -> state.gp.(Reg.gp_index d) <- Val (Cst v)
     | _ -> unsupported "movabs form")
  | Opcode.Add w ->
    ignore w;
    (match src 0, dst () with
     | Operand.Imm v, Operand.Gp d ->
       (match state.gp.(Reg.gp_index d) with
        | Ptr (s, off) -> state.gp.(Reg.gp_index d) <- Ptr (s, off + Int64.to_int v)
        | Val t -> state.gp.(Reg.gp_index d) <- Val (App ("add", [ t; Cst v ])))
     | _ -> unsupported "add form")
  | Opcode.Sub _ ->
    (match src 0, dst () with
     | Operand.Imm v, Operand.Gp d ->
       (match state.gp.(Reg.gp_index d) with
        | Ptr (s, off) -> state.gp.(Reg.gp_index d) <- Ptr (s, off - Int64.to_int v)
        | Val t -> state.gp.(Reg.gp_index d) <- Val (App ("sub", [ t; Cst v ])))
     | _ -> unsupported "sub form")
  | Opcode.Movd ->
    (match src 0, dst () with
     | Operand.Gp s, Operand.Xmm d ->
       let t =
         match state.gp.(Reg.gp_index s) with
         | Val (Cst v) -> Cst (Int64.logand v 0xffff_ffffL)
         | Val t -> App ("lo32", [ t ])
         | Ptr _ -> unsupported "movd of a pointer"
       in
       set_lane state d 0 t;
       for k = 1 to 3 do
         set_lane state d k (Cst 0L)
       done
     | Operand.Xmm s, Operand.Gp d ->
       state.gp.(Reg.gp_index d) <- Val (lane state s 0)
     | _ -> unsupported "movd form")
  | Opcode.Movq ->
    (match src 0, dst () with
     | (Operand.Xmm _ | Operand.Mem _), Operand.Xmm d ->
       let lo, hi = load64_pair state (src 0) in
       set_lane state d 0 lo;
       set_lane state d 1 hi;
       set_lane state d 2 (Cst 0L);
       set_lane state d 3 (Cst 0L)
     | Operand.Xmm s, Operand.Mem m ->
       let b, off = addr_of state m in
       store_cell state b off (lane state s 0);
       store_cell state b (off + 4) (lane state s 1)
     | Operand.Gp s, Operand.Xmm d ->
       (match state.gp.(Reg.gp_index s) with
        | Val t ->
          set_lane state d 0 (App ("lo32", [ t ]));
          set_lane state d 1 (App ("hi32", [ t ]));
          set_lane state d 2 (Cst 0L);
          set_lane state d 3 (Cst 0L)
        | Ptr _ -> unsupported "movq of a pointer")
     | Operand.Xmm s, Operand.Gp d ->
       state.gp.(Reg.gp_index d) <-
         Val (pack64 (lane state s 0) (lane state s 1))
     | _ -> unsupported "movq form")
  | Opcode.Movss ->
    (match src 0, dst () with
     | Operand.Xmm s, Operand.Xmm d -> set_lane state d 0 (lane state s 0)
     | Operand.Mem m, Operand.Xmm d ->
       let b, off = addr_of state m in
       set_lane state d 0 (fresh_cell state b off);
       for k = 1 to 3 do
         set_lane state d k (Cst 0L)
       done
     | Operand.Xmm s, Operand.Mem m ->
       let b, off = addr_of state m in
       store_cell state b off (lane state s 0)
     | _ -> unsupported "movss form")
  | Opcode.Movsd ->
    (match src 0, dst () with
     | Operand.Xmm s, Operand.Xmm d ->
       set_lane state d 0 (lane state s 0);
       set_lane state d 1 (lane state s 1)
     | Operand.Mem _, Operand.Xmm d ->
       let lo, hi = load64_pair state (src 0) in
       set_lane state d 0 lo;
       set_lane state d 1 hi;
       set_lane state d 2 (Cst 0L);
       set_lane state d 3 (Cst 0L)
     | Operand.Xmm s, Operand.Mem m ->
       let b, off = addr_of state m in
       store_cell state b off (lane state s 0);
       store_cell state b (off + 4) (lane state s 1)
     | _ -> unsupported "movsd form")
  | Opcode.Movaps | Opcode.Movups | Opcode.Lddqu ->
    (match src 0, dst () with
     | (Operand.Xmm _ | Operand.Mem _), Operand.Xmm d ->
       let l = load128 state (src 0) in
       Array.iteri (fun k t -> set_lane state d k t) l
     | Operand.Xmm s, Operand.Mem m ->
       let b, off = addr_of state m in
       for k = 0 to 3 do
         store_cell state b (off + (4 * k)) (lane state s k)
       done
     | _ -> unsupported "128-bit move form")
  | Opcode.Addss -> f32_binop state "addss" (src 0) (dst ())
  | Opcode.Subss -> f32_binop state "subss" (src 0) (dst ())
  | Opcode.Mulss -> f32_binop state "mulss" (src 0) (dst ())
  | Opcode.Divss -> f32_binop state "divss" (src 0) (dst ())
  | Opcode.Minss -> f32_binop state "minss" (src 0) (dst ())
  | Opcode.Maxss -> f32_binop state "maxss" (src 0) (dst ())
  | Opcode.Sqrtss ->
    let s = load32 state (src 0) in
    let d = dst_xmm (dst ()) in
    set_lane state d 0 (App ("sqrtss", [ s ]))
  | Opcode.Addsd -> f64_binop state "addsd" (src 0) (dst ())
  | Opcode.Subsd -> f64_binop state "subsd" (src 0) (dst ())
  | Opcode.Mulsd -> f64_binop state "mulsd" (src 0) (dst ())
  | Opcode.Divsd -> f64_binop state "divsd" (src 0) (dst ())
  | Opcode.Vaddss | Opcode.Vsubss | Opcode.Vmulss | Opcode.Vdivss
  | Opcode.Vminss | Opcode.Vmaxss ->
    let op =
      match i.Instr.op with
      | Opcode.Vaddss -> "addss"
      | Opcode.Vsubss -> "subss"
      | Opcode.Vmulss -> "mulss"
      | Opcode.Vdivss -> "divss"
      | Opcode.Vminss -> "minss"
      | _ -> "maxss"
    in
    let s2 = load32 state (src 0) in
    let s1x = dst_xmm (src 1) in
    let d = dst_xmm (dst ()) in
    let res = App (op, [ lane state s1x 0; s2 ]) in
    let upper = Array.init 3 (fun k -> lane state s1x (k + 1)) in
    set_lane state d 0 res;
    Array.iteri (fun k t -> set_lane state d (k + 1) t) upper
  | Opcode.Vaddsd | Opcode.Vsubsd | Opcode.Vmulsd | Opcode.Vdivsd ->
    let op =
      match i.Instr.op with
      | Opcode.Vaddsd -> "addsd"
      | Opcode.Vsubsd -> "subsd"
      | Opcode.Vmulsd -> "mulsd"
      | _ -> "divsd"
    in
    let s2lo, s2hi = load64_pair state (src 0) in
    let s1x = dst_xmm (src 1) in
    let d = dst_xmm (dst ()) in
    let r =
      App (op, [ pack64 (lane state s1x 0) (lane state s1x 1); pack64 s2lo s2hi ])
    in
    let up2 = lane state s1x 2 and up3 = lane state s1x 3 in
    set_lane state d 0 (App ("lo32", [ r ]));
    set_lane state d 1 (App ("hi32", [ r ]));
    set_lane state d 2 up2;
    set_lane state d 3 up3
  | Opcode.Addps | Opcode.Subps | Opcode.Mulps ->
    let op =
      match i.Instr.op with
      | Opcode.Addps -> "addss"
      | Opcode.Subps -> "subss"
      | _ -> "mulss"
    in
    let s = load128 state (src 0) in
    let d = dst_xmm (dst ()) in
    for k = 0 to 3 do
      set_lane state d k (App (op, [ lane state d k; s.(k) ]))
    done
  | Opcode.Andps | Opcode.Orps | Opcode.Xorps | Opcode.Pand | Opcode.Por
  | Opcode.Pxor ->
    let op =
      match i.Instr.op with
      | Opcode.Andps | Opcode.Pand -> "and32"
      | Opcode.Orps | Opcode.Por -> "or32"
      | _ -> "xor32"
    in
    let s = load128 state (src 0) in
    let d = dst_xmm (dst ()) in
    for k = 0 to 3 do
      set_lane state d k (normalize (App (op, [ lane state d k; s.(k) ])))
    done
  | Opcode.Pshufd ->
    (match src 0, src 1, dst () with
     | Operand.Imm sel, Operand.Xmm s, Operand.Xmm d ->
       let sel = Int64.to_int sel in
       let picked = Array.init 4 (fun k -> lane state s ((sel lsr (2 * k)) land 3)) in
       Array.iteri (fun k t -> set_lane state d k t) picked
     | _ -> unsupported "pshufd form")
  | Opcode.Shufps ->
    (match src 0, src 1, dst () with
     | Operand.Imm sel, Operand.Xmm s, Operand.Xmm d ->
       let sel = Int64.to_int sel in
       let l0 = lane state d ((sel lsr 0) land 3) in
       let l1 = lane state d ((sel lsr 2) land 3) in
       let l2 = lane state s ((sel lsr 4) land 3) in
       let l3 = lane state s ((sel lsr 6) land 3) in
       set_lane state d 0 l0;
       set_lane state d 1 l1;
       set_lane state d 2 l2;
       set_lane state d 3 l3
     | _ -> unsupported "shufps form")
  | Opcode.Punpckldq | Opcode.Unpcklps ->
    let s = load128 state (src 0) in
    let d = dst_xmm (dst ()) in
    let d0 = lane state d 0 and d1 = lane state d 1 in
    set_lane state d 0 d0;
    set_lane state d 1 s.(0);
    set_lane state d 2 d1;
    set_lane state d 3 s.(1)
  | Opcode.Punpcklqdq | Opcode.Unpcklpd ->
    let s = load128 state (src 0) in
    let d = dst_xmm (dst ()) in
    set_lane state d 2 s.(0);
    set_lane state d 3 s.(1)
  | Opcode.Vunpcklps ->
    (* dst ← interleave of the low dwords of s1 (src 1) and s2 (src 0) *)
    let s2 = load128 state (src 0) in
    let s1 = load128 state (src 1) in
    let d = dst_xmm (dst ()) in
    set_lane state d 0 s1.(0);
    set_lane state d 1 s2.(0);
    set_lane state d 2 s1.(1);
    set_lane state d 3 s2.(1)
  | Opcode.Pslld | Opcode.Psrld ->
    (match src 0 with
     | Operand.Imm c ->
       let op = if i.Instr.op = Opcode.Pslld then "shl32" else "shr32" in
       let d = dst_xmm (dst ()) in
       for k = 0 to 3 do
         let t =
           if Int64.to_int c >= 32 then Cst 0L
           else normalize (App (op, [ lane state d k; Cst c ]))
         in
         set_lane state d k t
       done
     | _ -> unsupported "packed dword shift by non-immediate")
  | Opcode.Psllq | Opcode.Psrlq ->
    (match src 0 with
     | Operand.Imm c ->
       let op = if i.Instr.op = Opcode.Psllq then "shl64" else "shr64" in
       let d = dst_xmm (dst ()) in
       let half base =
         if Int64.to_int c >= 64 then Cst 0L
         else
           (* the hardware zeroes at count 64, while the GP form masks the
              count to 63, so only in-range counts reuse the GP fold *)
           normalize
             (App (op, [ pack64 (lane state d base) (lane state d (base + 1)); Cst c ]))
       in
       let lo = half 0 and hi = half 2 in
       set_lane state d 0 (normalize (App ("lo32", [ lo ])));
       set_lane state d 1 (normalize (App ("hi32", [ lo ])));
       set_lane state d 2 (normalize (App ("lo32", [ hi ])));
       set_lane state d 3 (normalize (App ("hi32", [ hi ])))
     | _ -> unsupported "packed qword shift by non-immediate")
  | Opcode.Movlhps ->
    let s = dst_xmm (src 0) in
    let d = dst_xmm (dst ()) in
    set_lane state d 2 (lane state s 0);
    set_lane state d 3 (lane state s 1)
  | Opcode.Movhlps ->
    let s = dst_xmm (src 0) in
    let d = dst_xmm (dst ()) in
    set_lane state d 0 (lane state s 2);
    set_lane state d 1 (lane state s 3)
  | Opcode.Vpshuflw | Opcode.Pshuflw ->
    (* Word-level shuffle; representable when each destination dword takes
       an aligned word pair (2j, 2j+1). *)
    let sel, src_ops, d =
      match i.Instr.op, src 0, src 1, dst () with
      | _, Operand.Imm sel, (Operand.Xmm _ as s), Operand.Xmm d ->
        (Int64.to_int sel, s, d)
      | _ -> unsupported "pshuflw form"
    in
    let s = load128 state src_ops in
    let dword k =
      let w0 = (sel lsr (4 * k)) land 3 in
      let w1 = (sel lsr ((4 * k) + 2)) land 3 in
      if w0 land 1 = 0 && w1 = w0 + 1 then s.(w0 / 2)
      else App (Printf.sprintf "words_%d_%d" w0 w1, [ s.(0); s.(1) ])
    in
    set_lane state d 0 (dword 0);
    set_lane state d 1 (dword 1)
  | Opcode.Shl w | Opcode.Shr w | Opcode.Sar w ->
    (match src 0, dst () with
     | Operand.Imm c, Operand.Gp d ->
       let name =
         (match i.Instr.op with
          | Opcode.Shl _ -> "shl"
          | Opcode.Shr _ -> "shr"
          | _ -> "sar")
         ^ (match w with Reg.Q -> "64" | Reg.L -> "32")
       in
       (match state.gp.(Reg.gp_index d) with
        | Val t ->
          state.gp.(Reg.gp_index d) <- Val (normalize (App (name, [ t; Cst c ])))
        | Ptr _ -> unsupported "shift of a pointer")
     | _ -> unsupported "shift form")
  | Opcode.And w | Opcode.Or w | Opcode.Xor w ->
    let name =
      (match i.Instr.op with
       | Opcode.And _ -> "and"
       | Opcode.Or _ -> "or"
       | _ -> "xor")
      ^ (match w with Reg.Q -> "64" | Reg.L -> "32")
    in
    (match src 0, dst () with
     | Operand.Gp s, Operand.Gp d
       when i.Instr.op = Opcode.Xor w && Reg.gp_index s = Reg.gp_index d ->
       (* the xor-zeroing idiom clears even pointer-valued registers *)
       state.gp.(Reg.gp_index d) <- Val (Cst 0L)
     | src_o, Operand.Gp d ->
       (match w with
        | Reg.L -> unsupported "32-bit gp logical (upper-half zeroing)"
        | Reg.Q ->
          let s_term =
            match src_o with
            | Operand.Imm v -> Cst v
            | Operand.Gp s ->
              (match state.gp.(Reg.gp_index s) with
               | Val t -> t
               | Ptr _ -> unsupported "logical on a pointer")
            | _ -> unsupported "gp logical form"
          in
          (match state.gp.(Reg.gp_index d) with
           | Val t ->
             state.gp.(Reg.gp_index d) <-
               Val (normalize (App (name, [ t; s_term ])))
           | Ptr _ -> unsupported "logical on a pointer"))
     | _ -> unsupported "gp logical form")
  | Opcode.Cvtsi2sd w | Opcode.Cvtsi2ss w ->
    (* int→float converts become uninterpreted width-tagged applications:
       sound for equivalence checking, opaque to the numeric tiers. *)
    (match src 0, dst () with
     | Operand.Gp s, Operand.Xmm d ->
       let t =
         match state.gp.(Reg.gp_index s) with
         | Val t -> t
         | Ptr _ -> unsupported "convert of a pointer"
       in
       let suffix = (match w with Reg.Q -> "64" | Reg.L -> "32") in
       (match i.Instr.op with
        | Opcode.Cvtsi2sd _ ->
          let r = App ("cvtsi2sd" ^ suffix, [ t ]) in
          set_lane state d 0 (App ("lo32", [ r ]));
          set_lane state d 1 (App ("hi32", [ r ]))
        | _ -> set_lane state d 0 (App ("cvtsi2ss" ^ suffix, [ t ])))
     | _ -> unsupported "cvtsi2sd/ss form")
  | Opcode.Cvtsd2si w | Opcode.Cvttsd2si w ->
    (match dst () with
     | Operand.Gp d ->
       let lo, hi = load64_pair state (src 0) in
       let base =
         match i.Instr.op with
         | Opcode.Cvtsd2si _ -> "cvtsd2si"
         | _ -> "cvttsd2si"
       in
       let suffix = (match w with Reg.Q -> "64" | Reg.L -> "32") in
       state.gp.(Reg.gp_index d) <-
         Val (App (base ^ suffix, [ pack64 lo hi ]))
     | _ -> unsupported "cvtsd2si form")
  | Opcode.Cvttss2si w ->
    (match dst () with
     | Operand.Gp d ->
       let s = load32 state (src 0) in
       let suffix = (match w with Reg.Q -> "64" | Reg.L -> "32") in
       state.gp.(Reg.gp_index d) <- Val (App ("cvttss2si" ^ suffix, [ s ]))
     | _ -> unsupported "cvttss2si form")
  | Opcode.Cvtss2sd ->
    (match dst () with
     | Operand.Xmm d ->
       let s = load32 state (src 0) in
       let r = App ("cvtss2sd", [ s ]) in
       set_lane state d 0 (App ("lo32", [ r ]));
       set_lane state d 1 (App ("hi32", [ r ]))
     | _ -> unsupported "cvtss2sd form")
  | Opcode.Cvtsd2ss ->
    (match dst () with
     | Operand.Xmm d ->
       let lo, hi = load64_pair state (src 0) in
       set_lane state d 0 (App ("cvtsd2ss", [ pack64 lo hi ]))
     | _ -> unsupported "cvtsd2ss form")
  | op -> unsupported "opcode %s" (Opcode.to_string op)

(* initial state from a spec: pointer-valued fixed GP inputs become
   symbolic bases; float inputs become input symbols. *)
let initial_state (spec : Sandbox.Spec.t) =
  let state =
    {
      gp = Array.init 16 (fun k -> Ptr (Reg.gp_name Reg.Q (Reg.gp_of_index k), 0));
      lanes = Array.init 64 (fun k -> Sym (Printf.sprintf "init_xmm%d_%d" (k / 4) (k mod 4)));
      mem = [];
    }
  in
  (* Unnamed xmm lanes get unique symbols so accidental reads of dead
     registers never alias; named inputs overwrite them below. *)
  List.iteri
    (fun idx fi ->
      let name = Printf.sprintf "in%d" idx in
      match fi with
      | Sandbox.Spec.Fin_xmm_f64 (r, _) ->
        set_lane state r 0 (App ("lo32", [ Sym name ]));
        set_lane state r 1 (App ("hi32", [ Sym name ]))
      | Sandbox.Spec.Fin_xmm_f32 (r, _) -> set_lane state r 0 (Sym name)
      | Sandbox.Spec.Fin_xmm_f32_hi (r, _) -> set_lane state r 1 (Sym name)
      | Sandbox.Spec.Fin_mem_f32 (_, _) | Sandbox.Spec.Fin_mem_f64 (_, _) ->
        (* Memory float inputs are reachable only through fixed pointers;
           the fresh-cell mechanism names them by address. *)
        ())
    spec.Sandbox.Spec.float_inputs;
  state

let read_outputs (spec : Sandbox.Spec.t) state =
  List.map
    (fun o ->
      match o with
      | Sandbox.Spec.Out_xmm_f64 r -> pack64 (lane state r 0) (lane state r 1)
      | Sandbox.Spec.Out_xmm_f32 r -> lane state r 0
      | Sandbox.Spec.Out_xmm_f32_hi r -> lane state r 1
      | Sandbox.Spec.Out_gp r ->
        (match state.gp.(Reg.gp_index r) with
         | Val t -> t
         | Ptr (s, off) -> App ("ptr", [ Sym s; Cst (Int64.of_int off) ])))
    spec.Sandbox.Spec.outputs
  |> Array.of_list

let exec spec program =
  match
    let state = initial_state spec in
    List.iter (fun i -> step state i) (Program.instrs program);
    read_outputs spec state
  with
  | outputs -> Ok (Array.map normalize outputs)
  | exception Unsupported msg -> Error msg

let equivalent spec ~rewrite =
  match exec spec spec.Sandbox.Spec.program, exec spec rewrite with
  | Ok a, Ok b ->
    Ok (Array.length a = Array.length b
        && Array.for_all2 (fun x y -> compare_term x y = 0) a b)
  | Error e, _ -> Error (Printf.sprintf "target: %s" e)
  | _, Error e -> Error (Printf.sprintf "rewrite: %s" e)
