(** FPCore 1.2 export of the verification obligation.

    [difference] renders the symbolic output difference target − rewrite
    as one [(FPCore …)] form per spec output, suitable for external
    round-off tools (FPBench, Daisy, FPTaylor, Herbie).  The encoding
    mirrors {!Taylor}'s term model: double-precision scalar arithmetic in
    the binary64 context, single-precision operations wrapped in
    [(! :precision binary32 …)], [cvtsd2ss] as an annotated [cast], and
    exact operations (min/max, widening converts) left unannotated.
    Input ranges from the spec become a [:pre] conjunction of chained
    comparisons; memory-cell inputs such as [v1\[0\]] are renamed to
    FPCore-legal symbols ([v1_0]).

    Kernels using bit-level operations the Taylor tier cannot model
    return [Error] with the offending operation named. *)

val difference : Sandbox.Spec.t -> rewrite:Program.t -> (string, string) result
