(** Branch-and-bound maximization of an interval-evaluated objective.

    Given a box of input intervals and an inclusion-monotone objective
    (evaluating a sub-box never yields a larger upper bound than any
    enclosing box), subdivision tightens the global maximum estimate:
    split the widest dimension of the loosest box first, keep the worst
    upper bound over all unexplored boxes, and prune boxes that cannot
    beat the best certified lower bound (the objective evaluated at box
    midpoints, which for an inclusion-monotone objective is a sound lower
    bound on the true maximum).

    The result is always an upper bound on sup f over the initial box at
    any budget — stopping early only costs tightness, never soundness —
    and it is monotone in the budget: deeper subdivision never loosens
    the reported bound. *)

type config = {
  max_depth : int;  (** maximum number of splits along any one path *)
  max_boxes : int;  (** total budget of objective evaluations *)
  timeout_s : float;  (** wall-clock cutoff in CPU seconds; 0 = none *)
}

val default_config : config

type stats = {
  boxes_explored : int;
  depth : int;  (** deepest split level reached *)
}

val maximize :
  config ->
  f:(Interval.itv array -> float) ->
  box:Interval.itv array ->
  float * stats
(** [maximize cfg ~f ~box] returns an upper bound on [sup f] over [box],
    assuming [f] is inclusion-monotone and returns an upper bound of its
    true supremum on the given sub-box ([infinity] and [nan] are treated
    as ⊤).  An empty box yields [f box] evaluated once. *)
