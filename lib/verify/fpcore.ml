exception Not_exportable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Not_exportable s)) fmt

(* FPCore symbols admit no brackets; memory-cell inputs like v1[0]
   become v1_0. *)
let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> Buffer.add_char b c
      | ']' -> ()
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let lit f =
  if Float.is_nan f then "NAN"
  else if f = Float.infinity then "INFINITY"
  else if f = Float.neg_infinity then "(- INFINITY)"
  else if Float.is_integer f && Float.abs f <= 1e9 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%h" f

type ctx = {
  seen : (string, string) Hashtbl.t;
  mutable order : string list;  (* original names, reverse first-use order *)
}

let intern ctx name =
  match Hashtbl.find_opt ctx.seen name with
  | Some s -> s
  | None ->
    let s = sanitize name in
    Hashtbl.add ctx.seen name s;
    ctx.order <- name :: ctx.order;
    s

(* Constants stay raw bit patterns until an operation of known width
   consumes them — the same deferral as [Interval.eval] and
   [Taylor.compile]. *)
type cv =
  | Bits of int64
  | Expr of string

let as64 = function
  | Bits v -> lit (Int64.float_of_bits v)
  | Expr e -> e

let as32 = function
  | Bits v -> lit (Int32.float_of_bits (Int64.to_int32 v))
  | Expr e -> e

let annot32 body = Printf.sprintf "(! :precision binary32 %s)" body

let rec compile ctx (t : Symbolic.term) : cv =
  match t with
  | Symbolic.Cst v -> Bits v
  | Symbolic.Sym name -> Expr (intern ctx name)
  | Symbolic.App (op, args) ->
    let bin conv sym single =
      match args with
      | [ a; b ] ->
        let ea = conv (compile ctx a) in
        let eb = conv (compile ctx b) in
        let body = Printf.sprintf "(%s %s %s)" sym ea eb in
        Expr (if single then annot32 body else body)
      | _ -> fail "%s: bad arity" op
    in
    let un conv sym single =
      match args with
      | [ a ] ->
        let body = Printf.sprintf "(%s %s)" sym (conv (compile ctx a)) in
        Expr (if single then annot32 body else body)
      | _ -> fail "%s: bad arity" op
    in
    (match op with
     | "addsd" -> bin as64 "+" false
     | "subsd" -> bin as64 "-" false
     | "mulsd" -> bin as64 "*" false
     | "divsd" -> bin as64 "/" false
     | "addss" -> bin as32 "+" true
     | "subss" -> bin as32 "-" true
     | "mulss" -> bin as32 "*" true
     | "divss" -> bin as32 "/" true
     (* min/max of two binary32 values is one of them: exact in any
        wider context, no rounding annotation needed *)
     | "minss" -> bin as32 "fmin" false
     | "maxss" -> bin as32 "fmax" false
     | "sqrtsd" -> un as64 "sqrt" false
     | "sqrtss" -> un as32 "sqrt" true
     | "cvtss2sd" ->
       (* widening is exact *)
       (match args with
        | [ a ] -> Expr (as32 (compile ctx a))
        | _ -> fail "cvtss2sd arity")
     | "cvtsd2ss" ->
       (match args with
        | [ a ] -> Expr (annot32 (Printf.sprintf "(cast %s)" (as64 (compile ctx a))))
        | _ -> fail "cvtsd2ss arity")
     | _ -> fail "bit-level operation %s has no FPCore form" op)

let as_out spec idx cv =
  if Interval.single_output spec idx then as32 cv else as64 cv

let pre_clause env name ctx =
  match env name with
  | None -> None
  | Some (i : Interval.itv) ->
    Some
      (Printf.sprintf "(<= %s %s %s)" (lit i.Interval.lo)
         (Hashtbl.find ctx.seen name)
         (lit i.Interval.hi))

let difference (spec : Sandbox.Spec.t) ~rewrite =
  match
    ( Symbolic.exec spec spec.Sandbox.Spec.program,
      Symbolic.exec spec rewrite )
  with
  | Error e, _ -> Error (Printf.sprintf "target not analyzable: %s" e)
  | _, Error e -> Error (Printf.sprintf "rewrite not analyzable: %s" e)
  | Ok t_terms, Ok r_terms ->
    (try
       let env = Interval.env_of_spec spec in
       let cores =
         Array.to_list
           (Array.mapi
              (fun idx t_term ->
                let ctx = { seen = Hashtbl.create 8; order = [] } in
                let te = as_out spec idx (compile ctx t_term) in
                let re = as_out spec idx (compile ctx r_terms.(idx)) in
                let body =
                  if Symbolic.equal_term t_term r_terms.(idx) then "0"
                  else Printf.sprintf "(- %s %s)" te re
                in
                let names = List.rev ctx.order in
                let args =
                  String.concat " "
                    (List.map (fun n -> Hashtbl.find ctx.seen n) names)
                in
                let pres =
                  List.filter_map (fun n -> pre_clause env n ctx) names
                in
                let pre =
                  match pres with
                  | [] -> ""
                  | [ p ] -> Printf.sprintf "\n  :pre %s" p
                  | ps ->
                    Printf.sprintf "\n  :pre (and %s)" (String.concat " " ps)
                in
                let suffix =
                  if Array.length t_terms = 1 then ""
                  else Printf.sprintf "_out%d" idx
                in
                Printf.sprintf
                  "(FPCore %s_diff%s (%s)\n  :name \"%s: target - rewrite%s\"\n  :precision binary64%s\n  %s)"
                  (sanitize spec.Sandbox.Spec.name)
                  suffix args spec.Sandbox.Spec.name
                  (if suffix = "" then "" else Printf.sprintf " (output %d)" idx)
                  pre body)
              t_terms)
       in
       Ok (String.concat "\n\n" cores)
     with Not_exportable msg -> Error msg)
