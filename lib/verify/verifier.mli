(** The static correctness check of Eq. 5/12, now three tiers deep.

    [check] tries the sound techniques in order of strength — symbolic
    bit-wise equivalence, Taylor-form round-off analysis with
    branch-and-bound ({!Taylor}), then plain interval abstract
    interpretation ({!Interval}) — and reports the strongest one that
    applied.  Kernels mixing fixed- and floating-point computation defeat
    the numeric tiers (as the paper's libimf and S3D kernels do), in which
    case the caller falls back to MCMC validation. *)

type outcome =
  | Proved_bitwise
      (** symbolic UF terms normalize identically: equal on every input *)
  | Refuted_bitwise
      (** terms differ — programs are not bit-wise equivalent (they may
          still be η-close) *)
  | Taylor_bound of Taylor.analysis
      (** bit-wise proof failed or inapplicable, but the first-order
          round-off analysis soundly bounded the output difference;
          [sound_ulps] is clamped to never exceed the interval tier's
          bound when both apply *)
  | Static_bound of Interval.analysis
      (** only the coarse interval tier applied *)
  | Not_verifiable of string
      (** no static technique applies; use validation *)

val check :
  ?taylor:Taylor.config ->
  Sandbox.Spec.t ->
  rewrite:Program.t ->
  eta:Ulp.t ->
  outcome

val verified_within : outcome -> Ulp.t -> bool
(** Does the outcome establish equivalence within the given η? *)

val sound_ulps : outcome -> float option
(** The sound scaled-ULP bound the outcome certifies, if any ([Some 0.]
    for a bit-wise proof). *)

val outcome_to_string : outcome -> string
