(** The two-tier correctness check of Eq. 5/12.

    [check] tries the sound techniques in order of strength — symbolic
    bit-wise equivalence, then interval abstract interpretation — and
    reports which one applied.  Kernels mixing fixed- and floating-point
    computation defeat both (as the paper's libimf and S3D kernels do), in
    which case the caller falls back to MCMC validation. *)

type outcome =
  | Proved_bitwise
      (** symbolic UF terms normalize identically: equal on every input *)
  | Refuted_bitwise
      (** terms differ — programs are not bit-wise equivalent (they may
          still be η-close) *)
  | Static_bound of Interval.analysis
      (** bit-wise proof failed or inapplicable, but interval AI bounded
          the output difference *)
  | Not_verifiable of string
      (** neither technique applies; use validation *)

val check : Sandbox.Spec.t -> rewrite:Program.t -> eta:Ulp.t -> outcome

val verified_within : outcome -> Ulp.t -> bool
(** Does the outcome establish equivalence within the given η? *)

val outcome_to_string : outcome -> string
