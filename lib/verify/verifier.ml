type outcome =
  | Proved_bitwise
  | Refuted_bitwise
  | Taylor_bound of Taylor.analysis
  | Static_bound of Interval.analysis
  | Not_verifiable of string

let check ?taylor spec ~rewrite ~eta =
  ignore eta;
  let numeric symbolic_reason =
    let t = Taylor.bound ?config:taylor spec ~rewrite in
    let i = Interval.static_ulp_bound spec ~rewrite in
    match t, i with
    | Ok ta, Ok ia ->
      (* The Taylor model subsumes the interval one, but take the min so
         the strongest tier never reports worse than the tier below. *)
      Taylor_bound
        { ta with
          Taylor.sound_ulps =
            Float.min ta.Taylor.sound_ulps ia.Interval.bound_ulps }
    | Ok ta, Error _ -> Taylor_bound ta
    | Error _, Ok ia -> Static_bound ia
    | Error taylor_reason, Error interval_reason ->
      (match symbolic_reason with
       | None -> Refuted_bitwise
       | Some symbolic_reason ->
         Not_verifiable
           (Printf.sprintf "symbolic: %s; taylor: %s; interval: %s"
              symbolic_reason taylor_reason interval_reason))
  in
  match Symbolic.equivalent spec ~rewrite with
  | Ok true -> Proved_bitwise
  | Ok false -> numeric None
  | Error symbolic_reason -> numeric (Some symbolic_reason)

let verified_within outcome eta =
  match outcome with
  | Proved_bitwise -> true
  | Refuted_bitwise | Not_verifiable _ -> false
  | Taylor_bound a -> Ulp.compare (Ulp.of_float a.Taylor.sound_ulps) eta <= 0
  | Static_bound r ->
    Ulp.compare (Ulp.of_float r.Interval.bound_ulps) eta <= 0

let sound_ulps = function
  | Proved_bitwise -> Some 0.
  | Refuted_bitwise | Not_verifiable _ -> None
  | Taylor_bound a -> Some a.Taylor.sound_ulps
  | Static_bound r -> Some r.Interval.bound_ulps

let outcome_to_string = function
  | Proved_bitwise -> "proved bit-wise equivalent (uninterpreted functions)"
  | Refuted_bitwise -> "not bit-wise equivalent"
  | Taylor_bound a ->
    Printf.sprintf
      "sound Taylor bound: %.3g scaled ULPs%s (%d boxes, depth %d)"
      a.Taylor.sound_ulps
      (if a.Taylor.proved_real_equal then ", real-arithmetic equal" else "")
      a.Taylor.boxes_explored a.Taylor.depth
  | Static_bound r ->
    Printf.sprintf "static interval bound: %.1f scaled ULPs" r.Interval.bound_ulps
  | Not_verifiable reason -> "not statically verifiable (" ^ reason ^ ")"
