type outcome =
  | Proved_bitwise
  | Refuted_bitwise
  | Static_bound of Interval.analysis
  | Not_verifiable of string

let check spec ~rewrite ~eta =
  ignore eta;
  match Symbolic.equivalent spec ~rewrite with
  | Ok true -> Proved_bitwise
  | Ok false ->
    (match Interval.static_ulp_bound spec ~rewrite with
     | Ok r -> Static_bound r
     | Error _ -> Refuted_bitwise)
  | Error symbolic_reason ->
    (match Interval.static_ulp_bound spec ~rewrite with
     | Ok r -> Static_bound r
     | Error interval_reason ->
       Not_verifiable
         (Printf.sprintf "symbolic: %s; interval: %s" symbolic_reason
            interval_reason))

let verified_within outcome eta =
  match outcome with
  | Proved_bitwise -> true
  | Refuted_bitwise | Not_verifiable _ -> false
  | Static_bound r ->
    Ulp.compare (Ulp.of_float r.Interval.bound_ulps) eta <= 0

let outcome_to_string = function
  | Proved_bitwise -> "proved bit-wise equivalent (uninterpreted functions)"
  | Refuted_bitwise -> "not bit-wise equivalent"
  | Static_bound r ->
    Printf.sprintf "static interval bound: %.1f scaled ULPs" r.Interval.bound_ulps
  | Not_verifiable reason -> "not statically verifiable (" ^ reason ^ ")"
