let autocovariance a k =
  let n = Array.length a in
  if k < 0 || k >= n then invalid_arg "Spectral.autocovariance: bad lag";
  let m = Descriptive.mean a in
  let acc = ref 0. in
  for i = 0 to n - k - 1 do
    acc := !acc +. ((a.(i) -. m) *. (a.(i + k) -. m))
  done;
  !acc /. float_of_int n

let density_at_zero ?max_lag a =
  let n = Array.length a in
  if n < 2 then invalid_arg "Spectral.density_at_zero: need at least 2 samples";
  let default_lag = int_of_float (sqrt (float_of_int n)) in
  let lag =
    match max_lag with
    | None -> default_lag
    | Some l -> Stdlib.min l (n - 1)
  in
  let s = ref (autocovariance a 0) in
  for k = 1 to lag do
    let w = 1. -. (float_of_int k /. float_of_int (lag + 1)) in
    s := !s +. (2. *. w *. autocovariance a k)
  done;
  Float.max !s 1e-300
