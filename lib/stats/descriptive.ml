let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Descriptive.mean: empty";
  Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0. a in
    acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let min a =
  if Array.length a = 0 then invalid_arg "Descriptive.min: empty";
  Array.fold_left Float.min a.(0) a

let max a =
  if Array.length a = 0 then invalid_arg "Descriptive.max: empty";
  Array.fold_left Float.max a.(0) a

let quantile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Descriptive.quantile: empty";
  if p < 0. || p > 1. then invalid_arg "Descriptive.quantile: p outside [0,1]";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
