(** Geweke convergence diagnostic for a single MCMC chain (§5.3, Eq. 18/19).

    The chain is split into an early window (first [frac_a] of samples) and a
    late window (last [frac_b]); the Z statistic compares their means,
    normalized by spectral-density estimates of each window.  For a
    stationary chain, Z converges to a standard normal, so small |Z| is
    evidence of mixing. *)

type verdict = {
  z : float;  (** The Z statistic of Eq. 19. *)
  mean_a : float;
  mean_b : float;
  n : int;  (** Chain length used. *)
}

val z_statistic : ?frac_a:float -> ?frac_b:float -> float array -> verdict
(** Defaults follow Geweke's convention: [frac_a = 0.1], [frac_b = 0.5].
    Raises [Invalid_argument] when the chain is too short for both windows
    (fewer than 20 samples). *)

val converged : ?threshold:float -> verdict -> bool
(** [converged v] is [|v.z| < threshold]; [threshold] defaults to 1.96 (the
    two-sided 5% point of the standard normal). *)
