type verdict = {
  r_hat : float;
  within : float;
  between : float;
  n : int;
  m : int;
}

let r_hat chains =
  let m = Array.length chains in
  if m < 2 then invalid_arg "Gelman_rubin.r_hat: need at least two chains";
  let n = Array.fold_left (fun acc c -> Stdlib.min acc (Array.length c)) max_int chains in
  if n < 4 then invalid_arg "Gelman_rubin.r_hat: chains too short";
  let chains = Array.map (fun c -> Array.sub c 0 n) chains in
  let means = Array.map Descriptive.mean chains in
  let grand = Descriptive.mean means in
  let nf = float_of_int n and mf = float_of_int m in
  let between =
    nf /. (mf -. 1.)
    *. Array.fold_left (fun acc mu -> acc +. ((mu -. grand) ** 2.)) 0. means
  in
  let within =
    Array.fold_left (fun acc c -> acc +. Descriptive.variance c) 0. chains /. mf
  in
  let var_plus = (((nf -. 1.) /. nf) *. within) +. (between /. nf) in
  let r_hat = if within > 0. then sqrt (var_plus /. within) else 1. in
  { r_hat; within; between; n; m }

let converged ?(threshold = 1.1) v = v.r_hat < threshold
