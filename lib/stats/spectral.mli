(** Spectral density estimation for MCMC convergence diagnostics.

    The Geweke statistic (Eq. 19 of the paper) needs an estimate of the
    spectral density of the chain at frequency zero, which accounts for the
    autocorrelation of successive samples.  We use the standard
    Bartlett-windowed sum of sample autocovariances. *)

val autocovariance : float array -> int -> float
(** [autocovariance a k] is the lag-[k] sample autocovariance (biased,
    normalized by n). *)

val density_at_zero : ?max_lag:int -> float array -> float
(** Bartlett-window estimate of the spectral density at frequency zero.
    [max_lag] defaults to [floor (sqrt n)].  Clamped below at a tiny
    positive value so callers can divide by it. *)
