(** Basic descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; [0.] for arrays shorter than 2. *)

val stddev : float array -> float

val min : float array -> float
val max : float array -> float

val quantile : float array -> float -> float
(** [quantile a p] with [p] in [0,1]; linear interpolation between order
    statistics.  Does not mutate its argument. *)
