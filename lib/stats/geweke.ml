type verdict = {
  z : float;
  mean_a : float;
  mean_b : float;
  n : int;
}

let z_statistic ?(frac_a = 0.1) ?(frac_b = 0.5) chain =
  let n = Array.length chain in
  if n < 20 then invalid_arg "Geweke.z_statistic: chain too short";
  let n1 = Stdlib.max 2 (int_of_float (frac_a *. float_of_int n)) in
  let n2 = Stdlib.max 2 (int_of_float (frac_b *. float_of_int n)) in
  let early = Array.sub chain 0 n1 in
  let late = Array.sub chain (n - n2) n2 in
  let mean_a = Descriptive.mean early in
  let mean_b = Descriptive.mean late in
  let s1 = Spectral.density_at_zero early in
  let s2 = Spectral.density_at_zero late in
  let denom = sqrt ((s1 /. float_of_int n1) +. (s2 /. float_of_int n2)) in
  let z = if denom > 0. then (mean_a -. mean_b) /. denom else 0. in
  { z; mean_a; mean_b; n }

let converged ?(threshold = 1.96) v = Float.abs v.z < threshold
