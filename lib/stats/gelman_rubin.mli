(** Gelman-Rubin potential-scale-reduction diagnostic (R̂) for multiple
    MCMC chains.

    Complements the single-chain Geweke test used in §5.3: with several
    independent validation chains, R̂ compares within-chain and
    between-chain variance; values near 1 indicate the chains have mixed
    into the same distribution. *)

type verdict = {
  r_hat : float;
  within : float;  (** mean within-chain variance W *)
  between : float;  (** between-chain variance B *)
  n : int;  (** per-chain length used *)
  m : int;  (** number of chains *)
}

val r_hat : float array array -> verdict
(** [r_hat chains] over at least two chains; chains are truncated to the
    shortest length, which must be at least 4.  Raises [Invalid_argument]
    otherwise. *)

val converged : ?threshold:float -> verdict -> bool
(** [r_hat < threshold]; the conventional threshold is 1.1. *)
