type class_ =
  | Zero
  | Denormal
  | Normal
  | Infinity
  | Nan

let exponent_mask = 0x7ff0_0000_0000_0000L
let fraction_mask = 0x000f_ffff_ffff_ffffL

let sign_bit x = Int64.compare (Int64.bits_of_float x) 0L < 0

let exponent_bits x =
  Int64.to_int (Int64.shift_right_logical (Int64.logand (Int64.bits_of_float x) exponent_mask) 52)

let fraction_bits x = Int64.logand (Int64.bits_of_float x) fraction_mask

let classify x =
  match exponent_bits x, fraction_bits x with
  | 0, 0L -> Zero
  | 0, _ -> Denormal
  | 2047, 0L -> Infinity
  | 2047, _ -> Nan
  | _, _ -> Normal

let class_to_string = function
  | Zero -> "zero"
  | Denormal -> "denormal"
  | Normal -> "normal"
  | Infinity -> "infinity"
  | Nan -> "nan"

(* Figure 3 of the paper: negatives are reflected through LLONG_MIN so the
   ordered indices ascend from negative NaN up to positive NaN. *)
let ordered x =
  let b = Int64.bits_of_float x in
  if Int64.compare b 0L < 0 then Int64.sub Int64.min_int b else b

let of_ordered o =
  if Int64.compare o 0L >= 0 then Int64.float_of_bits o
  else Int64.float_of_bits (Int64.sub Int64.min_int o)

(* Ordered indices range over [min_int + 1, max_int]; saturate at the NaN
   endpoints rather than wrapping around. *)
let succ x =
  let o = ordered x in
  if Int64.equal o Int64.max_int then x else of_ordered (Int64.add o 1L)

let pred x =
  let o = ordered x in
  if Int64.equal o (Int64.add Int64.min_int 1L) then x else of_ordered (Int64.sub o 1L)

let is_nan x = x <> x

let is_finite x =
  match classify x with
  | Zero | Denormal | Normal -> true
  | Infinity | Nan -> false

let to_hex_string x = Printf.sprintf "0x%016Lx" (Int64.bits_of_float x)

let pp ppf x = Format.fprintf ppf "%h (%s)" x (to_hex_string x)
