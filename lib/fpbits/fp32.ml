let round x = Int32.float_of_bits (Int32.bits_of_float x)

let is_representable x =
  (* NaNs compare unequal to themselves but every binary32 NaN widens to a
     binary64 NaN, so treat any NaN as representable. *)
  if x <> x then true else Float.equal (round x) x

let bits x = Int32.bits_of_float x

let of_bits = Int32.float_of_bits

let add a b = round (a +. b)
let sub a b = round (a -. b)
let mul a b = round (a *. b)
let div a b = round (a /. b)
let sqrt a = round (Float.sqrt a)

(* SSE min/max: if the operands are both zeros or either is NaN, the second
   source operand is returned. *)
let min a b = if a < b then a else b
let max a b = if a > b then a else b

let ordered x =
  let b = Int32.bits_of_float x in
  if Int32.compare b 0l < 0 then Int32.sub Int32.min_int b else b

let of_ordered o =
  if Int32.compare o 0l >= 0 then Int32.float_of_bits o
  else Int32.float_of_bits (Int32.sub Int32.min_int o)

let succ x =
  let o = ordered x in
  if Int32.equal o Int32.max_int then x else of_ordered (Int32.add o 1l)

let pred x =
  let o = ordered x in
  if Int32.equal o (Int32.add Int32.min_int 1l) then x else of_ordered (Int32.sub o 1l)
