type t = int64

let dist64 x y =
  let xx = Fp64.ordered x in
  let yy = Fp64.ordered y in
  if Int64.compare xx yy >= 0 then Int64.sub xx yy else Int64.sub yy xx

let dist32 x y =
  let xx = Fp32.ordered x in
  let yy = Fp32.ordered y in
  let d = if Int32.compare xx yy >= 0 then Int32.sub xx yy else Int32.sub yy xx in
  Int64.logand (Int64.of_int32 d) 0xffff_ffffL

let zero = 0L
let max_value = -1L

let compare = Int64.unsigned_compare

let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0

let max a b = if compare a b >= 0 then a else b

let add_sat a b =
  let s = Int64.add a b in
  if Stdlib.( < ) (compare s a) 0 then max_value else s

let sub_clamp a b = if Stdlib.( <= ) (compare a b) 0 then 0L else Int64.sub a b

let to_float u =
  if Int64.compare u 0L >= 0 then Int64.to_float u
  else Int64.to_float u +. 0x1p64

let of_float f =
  if Stdlib.( <= ) f 0. then 0L
  else if Stdlib.( >= ) f 0x1p64 then max_value
  else if Stdlib.( < ) f 0x1p63 then Int64.of_float f
  else Int64.add Int64.min_int (Int64.of_float (f -. 0x1p63))

let to_string u = Printf.sprintf "%Lu" u

let eta_single = 5_000_000_000L
let eta_half = 4_000_000_000_000L
