(** Single-precision (binary32) arithmetic emulated over OCaml doubles.

    A float32 value is represented as an OCaml [float] whose value is exactly
    representable in binary32.  Arithmetic is performed in double precision
    and rounded back to single; for [+,-,*,/,sqrt] this double rounding is
    exact (binary64 carries 53 significand bits, which exceeds the
    2*24 + 2 = 50 bits required for innocuous double rounding). *)

val round : float -> float
(** Round a double to the nearest binary32 value (ties to even). *)

val is_representable : float -> bool
(** [true] when the double is exactly a binary32 value. *)

val bits : float -> int32
(** Binary32 bit pattern of (the rounding of) the argument. *)

val of_bits : int32 -> float

val add : float -> float -> float
val sub : float -> float -> float
val mul : float -> float -> float
val div : float -> float -> float
val sqrt : float -> float
val min : float -> float -> float
(** SSE [minss] semantics: returns the second operand when either input is
    NaN or when both are zero. *)

val max : float -> float -> float
(** SSE [maxss] semantics, mirror of {!min}. *)

val ordered : float -> int32
(** 32-bit analogue of {!Fp64.ordered}. *)

val of_ordered : int32 -> float

val succ : float -> float
val pred : float -> float
