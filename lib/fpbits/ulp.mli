(** ULP distances between floating-point values, and unsigned 64-bit
    arithmetic for manipulating them safely.

    A distance is an [int64] interpreted as an unsigned quantity — the
    paper's [uint64_t ULP(double, double)] (Figure 3).  Values may occupy
    the full unsigned range, so all comparisons and arithmetic here go
    through the unsigned helpers. *)

type t = int64
(** Unsigned 64-bit ULP count. *)

val dist64 : float -> float -> t
(** Number of doubles strictly between the two arguments (plus one when they
    differ); [0L] iff the arguments have equal ordered index (so
    [dist64 0. (-0.) = 0L]). *)

val dist32 : float -> float -> t
(** ULP distance in the binary32 enumeration; the arguments are rounded to
    single first. *)

val zero : t
val max_value : t
(** All-ones, the paper's ULLONG_MAX. *)

val compare : t -> t -> int
(** Unsigned comparison. *)

val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val max : t -> t -> t
val add_sat : t -> t -> t
(** Saturating unsigned addition (never wraps past {!max_value}). *)

val sub_clamp : t -> t -> t
(** [sub_clamp a b] is [a - b] or [0L] when [b >= a] (unsigned). *)

val to_float : t -> float
(** Unsigned conversion (exact up to 2{^53}, then rounded). *)

val of_float : float -> t
(** Clamping unsigned conversion: negatives map to [0L], values at or above
    2{^64} map to {!max_value}.  Useful for user-facing η given as [1e12]. *)

val to_string : t -> string
(** Unsigned decimal rendering. *)

val eta_single : t
(** ≈ ULP gap between double- and single-precision: 5·10{^9} (§6.1). *)

val eta_half : t
(** ≈ ULP gap between double- and half-precision: 4·10{^12} (§6.1). *)
