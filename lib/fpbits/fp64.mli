(** Bit-level utilities for IEEE-754 double-precision values.

    The central tool is the {e ordered index}: reinterpreting the bits of a
    double as a signed 64-bit integer and flipping the negative half so that
    the whole set of doubles (from negative NaN through negative infinity,
    the negative reals, the zeros, the positive reals, positive infinity, and
    positive NaN) is arranged in ascending order.  ULP distances reduce to
    integer subtraction on ordered indices (Figure 3 of the paper). *)

(** Classification following the paper's Figure 1. *)
type class_ =
  | Zero
  | Denormal
  | Normal
  | Infinity
  | Nan

val classify : float -> class_

val class_to_string : class_ -> string

val sign_bit : float -> bool
(** [sign_bit x] is [true] when the sign bit of [x] is set (negative,
    including [-0.] and negative NaNs). *)

val exponent_bits : float -> int
(** Raw biased exponent field, in [0, 2047]. *)

val fraction_bits : float -> int64
(** Raw 52-bit fraction field. *)

val ordered : float -> int64
(** [ordered x] maps [x] to its ordered index.  Monotone in the numeric
    order of doubles; [ordered (-0.)] = [ordered 0.] = [0L]. *)

val of_ordered : int64 -> float
(** Inverse of {!ordered} (for [0L] returns [+0.]). *)

val succ : float -> float
(** Next representable double above [x] in the ordered enumeration.
    Saturates at positive NaN. *)

val pred : float -> float
(** Previous representable double below [x].  Saturates at negative NaN. *)

val is_nan : float -> bool

val is_finite : float -> bool

val to_hex_string : float -> string
(** Raw bit pattern, e.g. ["0x3ff0000000000000"]. *)

val pp : Format.formatter -> float -> unit
(** Prints the decimal value together with the bit pattern. *)
