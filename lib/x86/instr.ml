type t = {
  op : Opcode.t;
  operands : Operand.t array;
}

let is_well_formed i = Option.is_some (Shape.shape_of i.op i.operands)

let make op operands =
  let i = { op; operands = Array.of_list operands } in
  if not (is_well_formed i) then
    invalid_arg
      (Printf.sprintf "Instr.make: operands fit no shape of %s"
         (Opcode.to_string op));
  i

let make_unchecked op operands = { op; operands }

let shape i =
  match Shape.shape_of i.op i.operands with
  | Some s -> s
  | None -> invalid_arg "Instr.shape: ill-formed instruction"

let gp_width i =
  match i.op with
  | Opcode.Mov w | Opcode.Lea w | Opcode.Add w | Opcode.Sub w | Opcode.Imul w
  | Opcode.And w | Opcode.Or w | Opcode.Xor w | Opcode.Not w | Opcode.Neg w
  | Opcode.Inc w | Opcode.Dec w | Opcode.Shl w | Opcode.Shr w | Opcode.Sar w
  | Opcode.Cmp w | Opcode.Test w | Opcode.Cmov (_, w) | Opcode.Cvtsi2sd w
  | Opcode.Cvtsi2ss w | Opcode.Cvttsd2si w | Opcode.Cvttss2si w
  | Opcode.Cvtsd2si w ->
    w
  | Opcode.Setcc _ -> Reg.L
  | _ -> Reg.Q

let equal a b =
  Opcode.equal a.op b.op
  && Array.length a.operands = Array.length b.operands
  && (let ok = ref true in
      Array.iteri
        (fun i o -> if not (Operand.equal o b.operands.(i)) then ok := false)
        a.operands;
      !ok)

let to_string i =
  let w = gp_width i in
  let ops =
    Array.to_list i.operands
    |> List.map (Operand.to_string ~w)
    |> String.concat ", "
  in
  if String.length ops = 0 then Opcode.to_string i.op
  else Opcode.to_string i.op ^ " " ^ ops

let pp ppf i = Format.pp_print_string ppf (to_string i)
