type mem = {
  base : Reg.gp option;
  index : (Reg.gp * int) option;
  disp : int;
}

type t =
  | Gp of Reg.gp
  | Xmm of Reg.xmm
  | Imm of int64
  | Mem of mem

let mem ?index ?(disp = 0) base = Mem { base = Some base; index; disp }

let imm i = Imm (Int64.of_int i)
let imm64 i = Imm i

let equal_mem a b =
  Option.equal Reg.equal_gp a.base b.base
  && Option.equal
       (fun (r1, s1) (r2, s2) -> Reg.equal_gp r1 r2 && Int.equal s1 s2)
       a.index b.index
  && Int.equal a.disp b.disp

let equal a b =
  match a, b with
  | Gp r1, Gp r2 -> Reg.equal_gp r1 r2
  | Xmm r1, Xmm r2 -> Reg.equal_xmm r1 r2
  | Imm i1, Imm i2 -> Int64.equal i1 i2
  | Mem m1, Mem m2 -> equal_mem m1 m2
  | (Gp _ | Xmm _ | Imm _ | Mem _), _ -> false

let rank = function
  | Gp _ -> 0
  | Xmm _ -> 1
  | Imm _ -> 2
  | Mem _ -> 3

let compare a b =
  match a, b with
  | Gp r1, Gp r2 -> Reg.compare_gp r1 r2
  | Xmm r1, Xmm r2 -> Reg.compare_xmm r1 r2
  | Imm i1, Imm i2 -> Int64.compare i1 i2
  | Mem m1, Mem m2 ->
    let c =
      compare
        (Option.map Reg.gp_index m1.base, m1.index, m1.disp)
        (Option.map Reg.gp_index m2.base, m2.index, m2.disp)
    in
    c
  | _, _ -> Int.compare (rank a) (rank b)

let mem_to_string m =
  let base = Option.fold ~none:"" ~some:(Reg.gp_name Reg.Q) m.base in
  let index =
    match m.index with
    | None -> ""
    | Some (r, 1) -> "," ^ Reg.gp_name Reg.Q r
    | Some (r, s) -> Printf.sprintf ",%s,%d" (Reg.gp_name Reg.Q r) s
  in
  let disp = if m.disp = 0 then "" else string_of_int m.disp in
  Printf.sprintf "%s(%s%s)" disp base index

let to_string ~w = function
  | Gp r -> Reg.gp_name w r
  | Xmm r -> Reg.xmm_name r
  | Imm i ->
    if Int64.compare (Int64.abs i) 0xffffL > 0 then Printf.sprintf "$0x%Lx" i
    else Printf.sprintf "$%Ld" i
  | Mem m -> mem_to_string m

let pp ~w ppf o = Format.pp_print_string ppf (to_string ~w o)
