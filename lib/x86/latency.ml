let mem_penalty = 3

let of_opcode : Opcode.t -> int = function
  (* Moves and logic are single-cycle. *)
  | Mov _ | Movabs | Lea _ -> 1
  | Add _ | Sub _ | And _ | Or _ | Xor _ | Not _ | Neg _ | Inc _ | Dec _ -> 1
  | Shl _ | Shr _ | Sar _ -> 1
  | Cmp _ | Test _ | Setcc _ -> 1
  | Cmov _ -> 2
  | Imul _ -> 3
  (* SSE moves: reg-reg forwarding is 1 cycle; cross-domain moves cost
     more. *)
  | Movss | Movsd | Movaps | Movups | Lddqu -> 1
  | Movq | Movd -> 2
  | Movlhps | Movhlps -> 1
  (* Scalar FP arithmetic, Haswell: add 3, mul 5, div ~13/20, sqrt
     ~13/20. *)
  | Addss | Subss | Addsd | Subsd -> 3
  | Mulss | Mulsd -> 5
  | Divss -> 13
  | Divsd -> 20
  | Sqrtss -> 13
  | Sqrtsd -> 20
  | Minss | Minsd | Maxss | Maxsd -> 3
  | Ucomiss | Ucomisd | Comiss | Comisd -> 3
  | Andps | Andpd | Andnps | Orps | Orpd | Xorps | Xorpd -> 1
  | Pand | Por | Pxor -> 1
  | Paddd | Paddq | Psubd | Psubq -> 1
  | Addps | Subps | Addpd | Subpd -> 3
  | Mulps | Mulpd -> 5
  | Divps -> 13
  | Divpd -> 20
  | Minps | Maxps -> 3
  | Shufps | Pshufd | Pshuflw -> 1
  | Punpckldq | Punpcklqdq | Unpcklps | Unpcklpd -> 1
  | Pslld | Psrld | Psllq | Psrlq -> 1
  | Cvtss2sd | Cvtsd2ss -> 2
  | Cvtsi2sd _ | Cvtsi2ss _ -> 4
  | Cvttsd2si _ | Cvttss2si _ | Cvtsd2si _ -> 4
  | Roundsd | Roundss -> 6
  | Vaddss | Vaddsd | Vsubss | Vsubsd -> 3
  | Vmulss | Vmulsd -> 5
  | Vdivss -> 13
  | Vdivsd -> 20
  | Vminss | Vminsd | Vmaxss | Vmaxsd -> 3
  | Vsqrtsd -> 20
  | Vaddps | Vsubps | Vaddpd -> 3
  | Vmulps | Vmulpd -> 5
  | Vxorps | Vandps -> 1
  | Vpshuflw | Vunpcklps -> 1
  | Vfmadd132sd | Vfmadd213sd | Vfmadd231sd | Vfmadd132ss | Vfmadd213ss
  | Vfmadd231ss | Vfnmadd213sd | Vfnmadd231sd | Vfmsub213sd ->
    5

let of_instr (i : Instr.t) =
  let mem_ops =
    Array.fold_left
      (fun acc o ->
        match o with
        | Operand.Mem _ -> acc + 1
        | Operand.Gp _ | Operand.Xmm _ | Operand.Imm _ -> acc)
      0 i.operands
  in
  (* lea computes an address without touching memory. *)
  let penalty =
    match i.op with
    | Opcode.Lea _ -> 0
    | _ -> mem_ops * mem_penalty
  in
  of_opcode i.op + penalty

let of_program p =
  List.fold_left (fun acc i -> acc + of_instr i) 0 (Program.instrs p)
