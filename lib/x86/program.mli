(** Loop-free programs as fixed-length arrays of instruction slots.

    A slot holds either an instruction or the [UNUSED] token of the paper's
    instruction move: proposing [UNUSED] deletes an instruction, replacing
    [UNUSED] inserts one.  The slot array length is fixed during search, so
    rewrites can grow back after shrinking. *)

type slot =
  | Unused
  | Active of Instr.t

type t = { slots : slot array }

val of_instrs : Instr.t list -> t
(** One active slot per instruction. *)

val with_padding : int -> Instr.t list -> t
(** [with_padding extra instrs] appends [extra] unused slots, giving the
    search head-room to insert instructions. *)

val instrs : t -> Instr.t list
(** Active instructions, in order. *)

val length : t -> int
(** Number of {e active} slots (the paper's LOC metric). *)

val slot_count : t -> int

val copy : t -> t

val equal : t -> t -> bool

val hash : t -> int64
(** 64-bit structural hash (FNV-1a over the slot array, [Unused] slots
    included).  [equal a b] implies [hash a = hash b]. *)

val to_string : t -> string
(** One instruction per line; unused slots omitted. *)

val pp : Format.formatter -> t -> unit
