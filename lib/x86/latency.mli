(** Static per-opcode latency approximation (Haswell-like), used for the
    [perf] term of the cost function during search and for the cycle model
    that times whole applications.

    STOKE itself scores candidate performance with a static latency sum
    during search; only final results are measured on hardware.  The numbers
    here reflect published Haswell instruction tables closely enough that
    relative comparisons (who wins, by what factor) are preserved. *)

val of_opcode : Opcode.t -> int
(** Base latency in cycles. *)

val of_instr : Instr.t -> int
(** Adds the memory-access penalty when an operand is a memory reference. *)

val of_program : Program.t -> int
(** Sum over active slots — the paper's [perf(·)] approximation. *)

val mem_penalty : int
(** Extra cycles charged per memory operand. *)
