(** Mechanical double→single precision lowering — the baseline the paper's
    related work discusses (brute-force replacement of double-precision
    instructions with their single-precision equivalents, in the style of
    Lam et al.; §7).

    The transformation maps each scalar-double opcode to its
    scalar-single twin, narrows [movabs]+[movq] constant loads to 32-bit
    constant loads, and brackets the kernel with [cvtsd2ss]/[cvtss2sd] so
    the double-precision ABI is preserved.  It {e preserves the program as
    written}: kernels that manipulate the binary64 representation directly
    (exponent-field shifts, [cvtsd2si] round-tripping) cannot be lowered
    and are rejected — exactly the limitation that motivates stochastic
    search. *)

val lower_to_single :
  Program.t -> abi:Reg.xmm list -> (Program.t, string) result
(** [lower_to_single p ~abi] lowers the body and converts the registers in
    [abi] (the kernel's live-in/live-out doubles, usually [[Xmm0]]) at
    entry and exit.  [Error] explains the first untranslatable
    instruction. *)
