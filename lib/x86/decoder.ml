(* Decoding proceeds in the classic phases: legacy prefix, REX or VEX,
   opcode bytes, ModRM/SIB/displacement, immediate.  The tables below cover
   exactly the forms Encoder emits. *)

type cursor = {
  bytes : string;
  mutable pos : int;
}

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let peek c =
  if c.pos >= String.length c.bytes then bad "truncated instruction"
  else Char.code c.bytes.[c.pos]

let next c =
  let b = peek c in
  c.pos <- c.pos + 1;
  b

let next_i32 c =
  let b0 = next c in
  let b1 = next c in
  let b2 = next c in
  let b3 = next c in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  (* sign-extend from 32 bits *)
  Int64.of_int32 (Int32.of_int v)

let next_i64 c =
  let lo = Int64.logand (next_i32 c) 0xffff_ffffL in
  let hi = next_i32 c in
  Int64.logor lo (Int64.shift_left hi 32)

(* ----- ModRM / SIB ----- *)

type rm_operand =
  | Rreg of int  (** register number, class decided by the opcode *)
  | Rmem of Operand.mem

let decode_modrm c ~rex_r ~rex_x ~rex_b =
  let modrm = next c in
  let md = modrm lsr 6 in
  let reg = ((modrm lsr 3) land 7) lor (if rex_r then 8 else 0) in
  let rm3 = modrm land 7 in
  if md = 0b11 then (reg, Rreg (rm3 lor (if rex_b then 8 else 0)))
  else begin
    let base, index =
      if rm3 = 0b100 then begin
        (* SIB byte *)
        let sib = next c in
        let scale = 1 lsl (sib lsr 6) in
        let idx3 = (sib lsr 3) land 7 in
        let base3 = sib land 7 in
        let index =
          let n = idx3 lor (if rex_x then 8 else 0) in
          if n = 4 then None (* rsp encoding means "no index" *)
          else Some (Reg.gp_of_index n, scale)
        in
        let base =
          if base3 = 5 && md = 0 then bad "no-base SIB form unsupported"
          else Some (Reg.gp_of_index (base3 lor (if rex_b then 8 else 0)))
        in
        (base, index)
      end
      else if rm3 = 0b101 && md = 0 then bad "RIP-relative unsupported"
      else (Some (Reg.gp_of_index (rm3 lor (if rex_b then 8 else 0))), None)
    in
    let disp =
      match md with
      | 0b00 -> 0
      | 0b01 ->
        let d = next c in
        if d >= 128 then d - 256 else d
      | 0b10 -> Int64.to_int (next_i32 c)
      | _ -> assert false
    in
    (reg, Rmem { Operand.base; index; disp })
  end

let gp n = Operand.Gp (Reg.gp_of_index n)
let xmm n = Operand.Xmm (Reg.xmm_of_index n)

let rm_as_gp = function
  | Rreg n -> gp n
  | Rmem m -> Operand.Mem m

let rm_as_xmm = function
  | Rreg n -> xmm n
  | Rmem m -> Operand.Mem m

let cond_of_code code : Opcode.cond =
  match code with
  | 0x2 -> Opcode.B
  | 0x3 -> Opcode.Ae
  | 0x4 -> Opcode.E
  | 0x5 -> Opcode.Ne
  | 0x6 -> Opcode.Be
  | 0x7 -> Opcode.A
  | 0x8 -> Opcode.S
  | 0xa -> Opcode.P
  | 0xc -> Opcode.L
  | 0xd -> Opcode.Ge
  | 0xe -> Opcode.Le
  | 0xf -> Opcode.G
  | _ -> bad "unsupported condition code %x" code

let w_of rex_w = if rex_w then Reg.Q else Reg.L

(* AT&T operand order: sources first, destination last. *)
let mk op operands = Instr.make_unchecked op (Array.of_list operands)

(* ----- one-byte-map (no 0F escape) opcodes ----- *)

let decode_onebyte c ~prefix ~rex_w ~rex_r ~rex_x ~rex_b opcode =
  ignore prefix;
  let w = w_of rex_w in
  let modrm_mr opc_ctor =
    let reg, rm = decode_modrm c ~rex_r ~rex_x ~rex_b in
    mk opc_ctor [ gp reg; rm_as_gp rm ]
  in
  let modrm_rm opc_ctor =
    let reg, rm = decode_modrm c ~rex_r ~rex_x ~rex_b in
    mk opc_ctor [ rm_as_gp rm; gp reg ]
  in
  match opcode with
  | 0x01 -> modrm_mr (Opcode.Add w)
  | 0x03 -> modrm_rm (Opcode.Add w)
  | 0x09 -> modrm_mr (Opcode.Or w)
  | 0x0b -> modrm_rm (Opcode.Or w)
  | 0x21 -> modrm_mr (Opcode.And w)
  | 0x23 -> modrm_rm (Opcode.And w)
  | 0x29 -> modrm_mr (Opcode.Sub w)
  | 0x2b -> modrm_rm (Opcode.Sub w)
  | 0x31 -> modrm_mr (Opcode.Xor w)
  | 0x33 -> modrm_rm (Opcode.Xor w)
  | 0x39 -> modrm_mr (Opcode.Cmp w)
  | 0x3b -> modrm_rm (Opcode.Cmp w)
  | 0x85 -> modrm_mr (Opcode.Test w)
  | 0x89 -> modrm_mr (Opcode.Mov w)
  | 0x8b -> modrm_rm (Opcode.Mov w)
  | 0x8d ->
    let reg, rm = decode_modrm c ~rex_r ~rex_x ~rex_b in
    (match rm with
     | Rmem m -> mk (Opcode.Lea w) [ Operand.Mem m; gp reg ]
     | Rreg _ -> bad "lea with register source")
  | b when b land 0xf8 = 0xb8 ->
    (* movabs imm64 -> r64 *)
    let r = (b land 7) lor (if rex_b then 8 else 0) in
    let v = next_i64 c in
    mk Opcode.Movabs [ Operand.Imm v; gp r ]
  | 0x81 ->
    let digit, rm = decode_modrm c ~rex_r ~rex_x ~rex_b in
    let v = next_i32 c in
    let ctor =
      match digit land 7 with
      | 0 -> Opcode.Add w
      | 1 -> Opcode.Or w
      | 4 -> Opcode.And w
      | 5 -> Opcode.Sub w
      | 6 -> Opcode.Xor w
      | 7 -> Opcode.Cmp w
      | d -> bad "0x81 /%d unsupported" d
    in
    mk ctor [ Operand.Imm v; rm_as_gp rm ]
  | 0xc1 ->
    let digit, rm = decode_modrm c ~rex_r ~rex_x ~rex_b in
    let v = next c in
    let ctor =
      match digit land 7 with
      | 4 -> Opcode.Shl w
      | 5 -> Opcode.Shr w
      | 7 -> Opcode.Sar w
      | d -> bad "0xc1 /%d unsupported" d
    in
    mk ctor [ Operand.Imm (Int64.of_int v); rm_as_gp rm ]
  | 0xc7 ->
    let digit, rm = decode_modrm c ~rex_r ~rex_x ~rex_b in
    if digit land 7 <> 0 then bad "0xc7 /%d unsupported" (digit land 7);
    let v = next_i32 c in
    mk (Opcode.Mov w) [ Operand.Imm v; rm_as_gp rm ]
  | 0xf7 ->
    let digit, rm = decode_modrm c ~rex_r ~rex_x ~rex_b in
    (match digit land 7 with
     | 0 ->
       let v = next_i32 c in
       mk (Opcode.Test w) [ Operand.Imm v; rm_as_gp rm ]
     | 2 -> mk (Opcode.Not w) [ rm_as_gp rm ]
     | 3 -> mk (Opcode.Neg w) [ rm_as_gp rm ]
     | d -> bad "0xf7 /%d unsupported" d)
  | 0xff ->
    let digit, rm = decode_modrm c ~rex_r ~rex_x ~rex_b in
    (match digit land 7 with
     | 0 -> mk (Opcode.Inc w) [ rm_as_gp rm ]
     | 1 -> mk (Opcode.Dec w) [ rm_as_gp rm ]
     | d -> bad "0xff /%d unsupported" d)
  | b -> bad "one-byte opcode 0x%02x unsupported" b

(* ----- 0F-map opcodes ----- *)

let decode_twobyte c ~prefix ~rex_w ~rex_r ~rex_x ~rex_b opcode =
  let w = w_of rex_w in
  let modrm () = decode_modrm c ~rex_r ~rex_x ~rex_b in
  (* SSE "RM" form: xmm destination in the reg field, AT&T order
     (src, dst). *)
  let sse_rm ctor =
    let reg, rm = modrm () in
    mk ctor [ rm_as_xmm rm; xmm reg ]
  in
  (* SSE "MR" store form: xmm source in reg, memory destination. *)
  let sse_mr ctor =
    let reg, rm = modrm () in
    mk ctor [ xmm reg; rm_as_xmm rm ]
  in
  let pick ?(none = fun () -> bad "bare form of 0x%02x unsupported" opcode)
      ?(p66 = fun () -> bad "66 form of 0x%02x unsupported" opcode)
      ?(pf2 = fun () -> bad "F2 form of 0x%02x unsupported" opcode)
      ?(pf3 = fun () -> bad "F3 form of 0x%02x unsupported" opcode) () =
    match prefix with
    | None -> none ()
    | Some 0x66 -> p66 ()
    | Some 0xf2 -> pf2 ()
    | Some 0xf3 -> pf3 ()
    | Some p -> bad "prefix 0x%02x" p
  in
  match opcode with
  | 0x10 ->
    pick
      ~none:(fun () -> sse_rm Opcode.Movups)
      ~pf2:(fun () -> sse_rm Opcode.Movsd)
      ~pf3:(fun () -> sse_rm Opcode.Movss)
      ()
  | 0x11 ->
    pick
      ~none:(fun () -> sse_mr Opcode.Movups)
      ~pf2:(fun () -> sse_mr Opcode.Movsd)
      ~pf3:(fun () -> sse_mr Opcode.Movss)
      ()
  | 0x12 -> pick ~none:(fun () -> sse_rm Opcode.Movhlps) ()
  | 0x14 ->
    pick
      ~none:(fun () -> sse_rm Opcode.Unpcklps)
      ~p66:(fun () -> sse_rm Opcode.Unpcklpd)
      ()
  | 0x16 -> pick ~none:(fun () -> sse_rm Opcode.Movlhps) ()
  | 0x28 -> pick ~none:(fun () -> sse_rm Opcode.Movaps) ()
  | 0x29 -> pick ~none:(fun () -> sse_mr Opcode.Movaps) ()
  | 0x2a ->
    pick
      ~pf2:(fun () ->
        let reg, rm = modrm () in
        mk (Opcode.Cvtsi2sd w) [ rm_as_gp rm; xmm reg ])
      ~pf3:(fun () ->
        let reg, rm = modrm () in
        mk (Opcode.Cvtsi2ss w) [ rm_as_gp rm; xmm reg ])
      ()
  | 0x2c ->
    pick
      ~pf2:(fun () ->
        let reg, rm = modrm () in
        mk (Opcode.Cvttsd2si w) [ rm_as_xmm rm; gp reg ])
      ~pf3:(fun () ->
        let reg, rm = modrm () in
        mk (Opcode.Cvttss2si w) [ rm_as_xmm rm; gp reg ])
      ()
  | 0x2d ->
    pick
      ~pf2:(fun () ->
        let reg, rm = modrm () in
        mk (Opcode.Cvtsd2si w) [ rm_as_xmm rm; gp reg ])
      ()
  | 0x2e ->
    pick
      ~none:(fun () -> sse_rm Opcode.Ucomiss)
      ~p66:(fun () -> sse_rm Opcode.Ucomisd)
      ()
  | 0x2f ->
    pick
      ~none:(fun () -> sse_rm Opcode.Comiss)
      ~p66:(fun () -> sse_rm Opcode.Comisd)
      ()
  | b when b land 0xf0 = 0x40 ->
    let reg, rm = modrm () in
    mk (Opcode.Cmov (cond_of_code (b land 0xf), w)) [ rm_as_gp rm; gp reg ]
  | 0x51 ->
    pick
      ~pf2:(fun () -> sse_rm Opcode.Sqrtsd)
      ~pf3:(fun () -> sse_rm Opcode.Sqrtss)
      ()
  | 0x54 ->
    pick
      ~none:(fun () -> sse_rm Opcode.Andps)
      ~p66:(fun () -> sse_rm Opcode.Andpd)
      ()
  | 0x55 -> pick ~none:(fun () -> sse_rm Opcode.Andnps) ()
  | 0x56 ->
    pick
      ~none:(fun () -> sse_rm Opcode.Orps)
      ~p66:(fun () -> sse_rm Opcode.Orpd)
      ()
  | 0x57 ->
    pick
      ~none:(fun () -> sse_rm Opcode.Xorps)
      ~p66:(fun () -> sse_rm Opcode.Xorpd)
      ()
  | 0x58 ->
    pick
      ~none:(fun () -> sse_rm Opcode.Addps)
      ~p66:(fun () -> sse_rm Opcode.Addpd)
      ~pf2:(fun () -> sse_rm Opcode.Addsd)
      ~pf3:(fun () -> sse_rm Opcode.Addss)
      ()
  | 0x59 ->
    pick
      ~none:(fun () -> sse_rm Opcode.Mulps)
      ~p66:(fun () -> sse_rm Opcode.Mulpd)
      ~pf2:(fun () -> sse_rm Opcode.Mulsd)
      ~pf3:(fun () -> sse_rm Opcode.Mulss)
      ()
  | 0x5a ->
    pick
      ~pf2:(fun () -> sse_rm Opcode.Cvtsd2ss)
      ~pf3:(fun () -> sse_rm Opcode.Cvtss2sd)
      ()
  | 0x5c ->
    pick
      ~none:(fun () -> sse_rm Opcode.Subps)
      ~p66:(fun () -> sse_rm Opcode.Subpd)
      ~pf2:(fun () -> sse_rm Opcode.Subsd)
      ~pf3:(fun () -> sse_rm Opcode.Subss)
      ()
  | 0x5d ->
    pick
      ~none:(fun () -> sse_rm Opcode.Minps)
      ~pf2:(fun () -> sse_rm Opcode.Minsd)
      ~pf3:(fun () -> sse_rm Opcode.Minss)
      ()
  | 0x5e ->
    pick
      ~none:(fun () -> sse_rm Opcode.Divps)
      ~p66:(fun () -> sse_rm Opcode.Divpd)
      ~pf2:(fun () -> sse_rm Opcode.Divsd)
      ~pf3:(fun () -> sse_rm Opcode.Divss)
      ()
  | 0x5f ->
    pick
      ~none:(fun () -> sse_rm Opcode.Maxps)
      ~pf2:(fun () -> sse_rm Opcode.Maxsd)
      ~pf3:(fun () -> sse_rm Opcode.Maxss)
      ()
  | 0x62 -> pick ~p66:(fun () -> sse_rm Opcode.Punpckldq) ()
  | 0x6c -> pick ~p66:(fun () -> sse_rm Opcode.Punpcklqdq) ()
  | 0x6e ->
    pick
      ~p66:(fun () ->
        let reg, rm = modrm () in
        match rm with
        | Rreg n ->
          if rex_w then mk Opcode.Movq [ gp n; xmm reg ]
          else mk Opcode.Movd [ gp n; xmm reg ]
        | Rmem _ -> bad "movd/movq 0x6e with memory unsupported")
      ()
  | 0x70 ->
    let ctor =
      pick
        ~p66:(fun () -> Opcode.Pshufd)
        ~pf2:(fun () -> Opcode.Pshuflw)
        ()
    in
    let reg, rm = modrm () in
    let sel = next c in
    (match rm with
     | Rreg n -> mk ctor [ Operand.Imm (Int64.of_int sel); xmm n; xmm reg ]
     | Rmem _ -> bad "pshuf with memory unsupported")
  | 0x72 | 0x73 ->
    let digit, rm = modrm () in
    let sel = next c in
    let ctor =
      match opcode, digit land 7 with
      | 0x72, 6 -> Opcode.Pslld
      | 0x72, 2 -> Opcode.Psrld
      | 0x73, 6 -> Opcode.Psllq
      | 0x73, 2 -> Opcode.Psrlq
      | _, d -> bad "vector shift /%d unsupported" d
    in
    (match rm with
     | Rreg n -> mk ctor [ Operand.Imm (Int64.of_int sel); xmm n ]
     | Rmem _ -> bad "vector shift with memory")
  | 0x7e ->
    pick
      ~p66:(fun () ->
        let reg, rm = modrm () in
        match rm with
        | Rreg n ->
          if rex_w then mk Opcode.Movq [ xmm reg; gp n ]
          else mk Opcode.Movd [ xmm reg; gp n ]
        | Rmem _ -> bad "movd store form unsupported")
      ~pf3:(fun () -> sse_rm Opcode.Movq)
      ()
  | b when b land 0xf0 = 0x90 ->
    let _, rm = modrm () in
    mk (Opcode.Setcc (cond_of_code (b land 0xf))) [ rm_as_gp rm ]
  | 0xaf ->
    let reg, rm = modrm () in
    mk (Opcode.Imul w) [ rm_as_gp rm; gp reg ]
  | 0xc6 ->
    let reg, rm = modrm () in
    let sel = next c in
    (match rm with
     | Rreg n -> mk Opcode.Shufps [ Operand.Imm (Int64.of_int sel); xmm n; xmm reg ]
     | Rmem _ -> bad "shufps with memory unsupported")
  | 0xd4 -> pick ~p66:(fun () -> sse_rm Opcode.Paddq) ()
  | 0xd6 -> pick ~p66:(fun () -> sse_mr Opcode.Movq) ()
  | 0xdb -> pick ~p66:(fun () -> sse_rm Opcode.Pand) ()
  | 0xeb -> pick ~p66:(fun () -> sse_rm Opcode.Por) ()
  | 0xef -> pick ~p66:(fun () -> sse_rm Opcode.Pxor) ()
  | 0xf0 -> pick ~pf2:(fun () -> sse_rm Opcode.Lddqu) ()
  | 0xfa -> pick ~p66:(fun () -> sse_rm Opcode.Psubd) ()
  | 0xfb -> pick ~p66:(fun () -> sse_rm Opcode.Psubq) ()
  | 0xfe -> pick ~p66:(fun () -> sse_rm Opcode.Paddd) ()
  | b -> bad "0F-map opcode 0x%02x unsupported" b

(* 0F 3A map: roundss/roundsd *)
let decode_0f3a c ~prefix ~rex_r ~rex_x ~rex_b opcode =
  if prefix <> Some 0x66 then bad "0F3A needs the 66 prefix";
  let ctor =
    match opcode with
    | 0x0a -> Opcode.Roundss
    | 0x0b -> Opcode.Roundsd
    | b -> bad "0F3A opcode 0x%02x unsupported" b
  in
  let reg, rm = decode_modrm c ~rex_r ~rex_x ~rex_b in
  let sel = next c in
  match rm with
  | Rreg n -> mk ctor [ Operand.Imm (Int64.of_int sel); xmm n; xmm reg ]
  | Rmem _ -> bad "rounds* with memory unsupported"

(* ----- VEX ----- *)

let decode_vex c first =
  let r_inv, x_inv, b_inv, mmap, w, vvvv_inv, pp =
    if first = 0xc5 then begin
      let b1 = next c in
      (b1 lsr 7, 1, 1, 1, false, (b1 lsr 3) land 0xf, b1 land 3)
    end
    else begin
      let b1 = next c in
      let b2 = next c in
      ( b1 lsr 7, (b1 lsr 6) land 1, (b1 lsr 5) land 1, b1 land 0x1f,
        b2 lsr 7 = 1, (b2 lsr 3) land 0xf, b2 land 3 )
    end
  in
  let rex_r = r_inv = 0 and rex_x = x_inv = 0 and rex_b = b_inv = 0 in
  let vvvv = lnot vvvv_inv land 0xf in
  let opcode = next c in
  let modrm () = decode_modrm c ~rex_r ~rex_x ~rex_b in
  let avx3 ctor =
    let reg, rm = modrm () in
    mk ctor [ rm_as_xmm rm; xmm vvvv; xmm reg ]
  in
  match mmap, pp, opcode with
  | 1, 2, 0x58 -> avx3 Opcode.Vaddss
  | 1, 2, 0x59 -> avx3 Opcode.Vmulss
  | 1, 2, 0x5c -> avx3 Opcode.Vsubss
  | 1, 2, 0x5d -> avx3 Opcode.Vminss
  | 1, 2, 0x5e -> avx3 Opcode.Vdivss
  | 1, 2, 0x5f -> avx3 Opcode.Vmaxss
  | 1, 3, 0x51 -> avx3 Opcode.Vsqrtsd
  | 1, 3, 0x58 -> avx3 Opcode.Vaddsd
  | 1, 3, 0x59 -> avx3 Opcode.Vmulsd
  | 1, 3, 0x5c -> avx3 Opcode.Vsubsd
  | 1, 3, 0x5d -> avx3 Opcode.Vminsd
  | 1, 3, 0x5e -> avx3 Opcode.Vdivsd
  | 1, 3, 0x5f -> avx3 Opcode.Vmaxsd
  | 1, 0, 0x14 -> avx3 Opcode.Vunpcklps
  | 1, 0, 0x54 -> avx3 Opcode.Vandps
  | 1, 0, 0x57 -> avx3 Opcode.Vxorps
  | 1, 0, 0x58 -> avx3 Opcode.Vaddps
  | 1, 0, 0x59 -> avx3 Opcode.Vmulps
  | 1, 0, 0x5c -> avx3 Opcode.Vsubps
  | 1, 1, 0x58 -> avx3 Opcode.Vaddpd
  | 1, 1, 0x59 -> avx3 Opcode.Vmulpd
  | 1, 3, 0x70 ->
    let reg, rm = modrm () in
    let sel = next c in
    mk Opcode.Vpshuflw [ Operand.Imm (Int64.of_int sel); rm_as_xmm rm; xmm reg ]
  | 2, 1, b ->
    let ctor =
      match b, w with
      | 0x99, true -> Opcode.Vfmadd132sd
      | 0xa9, true -> Opcode.Vfmadd213sd
      | 0xb9, true -> Opcode.Vfmadd231sd
      | 0x99, false -> Opcode.Vfmadd132ss
      | 0xa9, false -> Opcode.Vfmadd213ss
      | 0xb9, false -> Opcode.Vfmadd231ss
      | 0xad, true -> Opcode.Vfnmadd213sd
      | 0xbd, true -> Opcode.Vfnmadd231sd
      | 0xab, true -> Opcode.Vfmsub213sd
      | _, _ -> bad "VEX 0F38 opcode 0x%02x unsupported" b
    in
    avx3 ctor
  | _, _, b -> bad "VEX map %d pp %d opcode 0x%02x unsupported" mmap pp b

(* ----- top level ----- *)

let decode_one c =
  (* optional mandatory prefix *)
  let prefix =
    match peek c with
    | (0x66 | 0xf2 | 0xf3) as p ->
      ignore (next c);
      Some p
    | _ -> None
  in
  match peek c with
  | 0xc4 | 0xc5 when prefix = None ->
    let first = next c in
    decode_vex c first
  | _ ->
    let rex_w, rex_r, rex_x, rex_b =
      if peek c land 0xf0 = 0x40 then begin
        let rex = next c in
        (rex land 8 <> 0, rex land 4 <> 0, rex land 2 <> 0, rex land 1 <> 0)
      end
      else (false, false, false, false)
    in
    let b = next c in
    if b = 0x0f then begin
      let b2 = next c in
      if b2 = 0x3a then
        decode_0f3a c ~prefix ~rex_r ~rex_x ~rex_b (next c)
      else decode_twobyte c ~prefix ~rex_w ~rex_r ~rex_x ~rex_b b2
    end
    else decode_onebyte c ~prefix ~rex_w ~rex_r ~rex_x ~rex_b b

let decode_instr bytes ~pos =
  let c = { bytes; pos } in
  match decode_one c with
  | i -> Ok (i, c.pos)
  | exception Bad msg -> Error msg

let decode_all bytes =
  let rec go acc pos =
    if pos >= String.length bytes then Ok (List.rev acc)
    else
      match decode_instr bytes ~pos with
      | Ok (i, pos') -> go (i :: acc) pos'
      | Error e -> Error (Printf.sprintf "at offset %d: %s" pos e)
  in
  go [] 0

let disassemble bytes =
  Result.map
    (fun instrs -> String.concat "\n" (List.map Instr.to_string instrs))
    (decode_all bytes)
