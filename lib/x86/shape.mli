(** Operand-shape discipline.

    Every opcode admits a small set of {e shapes} — vectors of operand kinds
    in AT&T order (sources first, destination last).  The search transforms
    preserve shapes: an {e operand} move replaces one operand with another of
    the same kind, and an {e opcode} move replaces the opcode with another
    admitting the instruction's current shape.  This guarantees every
    proposal is a well-formed instruction. *)

(** Memory access width. *)
type mw = M32 | M64 | M128

(** Operand kind.  [K_imm8] covers shuffle selectors and shift counts;
    [K_imm32] sign-extended ALU immediates; [K_imm64] only for [movabs]. *)
type kind =
  | K_gp of Reg.w
  | K_xmm
  | K_imm8
  | K_imm32
  | K_imm64
  | K_mem of mw

val kind_matches : kind -> Operand.t -> bool
(** Does the operand inhabit the kind?  (Immediates are range-checked.) *)

val shapes : Opcode.t -> kind array list
(** All admissible shapes of the opcode, in AT&T operand order. *)

val shape_of : Opcode.t -> Operand.t array -> kind array option
(** The shape the given operands inhabit for this opcode, if any. *)

val equal_kind : kind -> kind -> bool
val equal_shape : kind array -> kind array -> bool

val kind_to_string : kind -> string
