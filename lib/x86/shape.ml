type mw = M32 | M64 | M128

type kind =
  | K_gp of Reg.w
  | K_xmm
  | K_imm8
  | K_imm32
  | K_imm64
  | K_mem of mw

let kind_matches kind operand =
  match kind, operand with
  | K_gp _, Operand.Gp _ -> true
  | K_xmm, Operand.Xmm _ -> true
  | K_imm8, Operand.Imm i -> Int64.compare i 0L >= 0 && Int64.compare i 255L <= 0
  | K_imm32, Operand.Imm i ->
    Int64.compare i (-2147483648L) >= 0 && Int64.compare i 2147483647L <= 0
  | K_imm64, Operand.Imm _ -> true
  | K_mem _, Operand.Mem _ -> true
  | (K_gp _ | K_xmm | K_imm8 | K_imm32 | K_imm64 | K_mem _), _ -> false

(* Shape shorthands.  AT&T order: sources first, destination last. *)

let rr w = [| K_gp w; K_gp w |]
let mr w m = [| K_mem m; K_gp w |]
let rm w m = [| K_gp w; K_mem m |]
let ir w = [| K_imm32; K_gp w |]
let mw_of_w = function
  | Reg.L -> M32
  | Reg.Q -> M64

let gp_alu w = [ rr w; mr w (mw_of_w w); rm w (mw_of_w w); ir w ]

let xx = [| K_xmm; K_xmm |]
let mx m = [| K_mem m; K_xmm |]
let xm m = [| K_xmm; K_mem m |]

let sse_scalar m = [ xx; mx m ]
let sse_packed = [ xx; mx M128 ]
let avx3 m = [ [| K_xmm; K_xmm; K_xmm |]; [| K_mem m; K_xmm; K_xmm |] ]
let shuffle = [ [| K_imm8; K_xmm; K_xmm |] ]
let vshift = [ [| K_imm8; K_xmm |] ]

let shapes : Opcode.t -> kind array list = function
  | Mov w -> [ rr w; mr w (mw_of_w w); rm w (mw_of_w w); ir w; [| K_imm32; K_mem (mw_of_w w) |] ]
  | Movabs -> [ [| K_imm64; K_gp Reg.Q |] ]
  | Lea w -> [ mr w M64 ]
  | Add w | Sub w | And w | Or w | Xor w -> gp_alu w
  | Imul w -> [ rr w; mr w (mw_of_w w) ]
  | Not w | Neg w | Inc w | Dec w -> [ [| K_gp w |] ]
  | Shl w | Shr w | Sar w -> [ [| K_imm8; K_gp w |] ]
  | Cmp w | Test w -> [ rr w; ir w; mr w (mw_of_w w) ]
  | Cmov (_, w) -> [ rr w; mr w (mw_of_w w) ]
  | Setcc _ -> [ [| K_gp Reg.L |] ]
  | Movss -> [ xx; mx M32; xm M32 ]
  | Movsd -> [ xx; mx M64; xm M64 ]
  | Movaps | Movups -> [ xx; mx M128; xm M128 ]
  | Lddqu -> [ mx M128 ]
  | Movq ->
    [ xx; [| K_gp Reg.Q; K_xmm |]; [| K_xmm; K_gp Reg.Q |]; mx M64; xm M64 ]
  | Movd -> [ [| K_gp Reg.L; K_xmm |]; [| K_xmm; K_gp Reg.L |] ]
  | Movlhps | Movhlps -> [ xx ]
  | Addss | Subss | Mulss | Divss | Sqrtss | Minss | Maxss -> sse_scalar M32
  | Addsd | Subsd | Mulsd | Divsd | Sqrtsd | Minsd | Maxsd -> sse_scalar M64
  | Ucomiss | Comiss -> sse_scalar M32
  | Ucomisd | Comisd -> sse_scalar M64
  | Andps | Andpd | Andnps | Orps | Orpd | Xorps | Xorpd | Pand | Por | Pxor
  | Paddd | Paddq | Psubd | Psubq ->
    sse_packed
  | Addps | Addpd | Subps | Subpd | Mulps | Mulpd | Divps | Divpd | Minps
  | Maxps ->
    sse_packed
  | Shufps | Pshufd | Pshuflw -> shuffle
  | Punpckldq | Punpcklqdq | Unpcklps | Unpcklpd -> [ xx ]
  | Pslld | Psrld | Psllq | Psrlq -> vshift
  | Cvtss2sd -> sse_scalar M32
  | Cvtsd2ss -> sse_scalar M64
  | Cvtsi2sd w | Cvtsi2ss w -> [ [| K_gp w; K_xmm |]; mx (mw_of_w w) ]
  | Cvttsd2si w | Cvttss2si w | Cvtsd2si w -> [ [| K_xmm; K_gp w |] ]
  | Roundsd | Roundss -> [ [| K_imm8; K_xmm; K_xmm |] ]
  | Vaddss | Vsubss | Vmulss | Vdivss | Vminss | Vmaxss -> avx3 M32
  | Vaddsd | Vsubsd | Vmulsd | Vdivsd | Vminsd | Vmaxsd | Vsqrtsd -> avx3 M64
  | Vaddps | Vsubps | Vmulps | Vaddpd | Vmulpd | Vxorps | Vandps | Vunpcklps ->
    avx3 M128
  | Vpshuflw -> [ [| K_imm8; K_xmm; K_xmm |]; [| K_imm8; K_mem M128; K_xmm |] ]
  | Vfmadd132sd | Vfmadd213sd | Vfmadd231sd | Vfnmadd213sd | Vfnmadd231sd
  | Vfmsub213sd ->
    avx3 M64
  | Vfmadd132ss | Vfmadd213ss | Vfmadd231ss -> avx3 M32

let equal_kind a b =
  match a, b with
  | K_gp w1, K_gp w2 -> w1 = w2
  | K_xmm, K_xmm -> true
  | K_imm8, K_imm8 -> true
  | K_imm32, K_imm32 -> true
  | K_imm64, K_imm64 -> true
  | K_mem m1, K_mem m2 -> m1 = m2
  | (K_gp _ | K_xmm | K_imm8 | K_imm32 | K_imm64 | K_mem _), _ -> false

let equal_shape a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i k -> if not (equal_kind k b.(i)) then ok := false) a;
      !ok)

let shape_of op operands =
  let fits shape =
    Array.length shape = Array.length operands
    && (let ok = ref true in
        Array.iteri
          (fun i k -> if not (kind_matches k operands.(i)) then ok := false)
          shape;
        !ok)
  in
  List.find_opt fits (shapes op)

let kind_to_string = function
  | K_gp Reg.L -> "r32"
  | K_gp Reg.Q -> "r64"
  | K_xmm -> "xmm"
  | K_imm8 -> "imm8"
  | K_imm32 -> "imm32"
  | K_imm64 -> "imm64"
  | K_mem M32 -> "m32"
  | K_mem M64 -> "m64"
  | K_mem M128 -> "m128"
