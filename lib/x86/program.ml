type slot =
  | Unused
  | Active of Instr.t

type t = { slots : slot array }

let of_instrs instrs =
  { slots = Array.of_list (List.map (fun i -> Active i) instrs) }

let with_padding extra instrs =
  if extra < 0 then invalid_arg "Program.with_padding: negative padding";
  let active = List.map (fun i -> Active i) instrs in
  { slots = Array.of_list (active @ List.init extra (fun _ -> Unused)) }

let instrs t =
  Array.to_list t.slots
  |> List.filter_map (function
       | Unused -> None
       | Active i -> Some i)

let length t =
  Array.fold_left
    (fun acc slot ->
      match slot with
      | Unused -> acc
      | Active _ -> acc + 1)
    0 t.slots

let slot_count t = Array.length t.slots

let copy t = { slots = Array.copy t.slots }

let equal a b =
  Array.length a.slots = Array.length b.slots
  && (let ok = ref true in
      Array.iteri
        (fun i s ->
          let same =
            match s, b.slots.(i) with
            | Unused, Unused -> true
            | Active x, Active y -> Instr.equal x y
            | (Unused | Active _), _ -> false
          in
          if not same then ok := false)
        a.slots;
      !ok)

let to_string t =
  instrs t |> List.map Instr.to_string |> String.concat "\n"

let pp ppf t = Format.pp_print_string ppf (to_string t)
