type slot =
  | Unused
  | Active of Instr.t

type t = { slots : slot array }

let of_instrs instrs =
  { slots = Array.of_list (List.map (fun i -> Active i) instrs) }

let with_padding extra instrs =
  if extra < 0 then invalid_arg "Program.with_padding: negative padding";
  let active = List.map (fun i -> Active i) instrs in
  { slots = Array.of_list (active @ List.init extra (fun _ -> Unused)) }

let instrs t =
  Array.to_list t.slots
  |> List.filter_map (function
       | Unused -> None
       | Active i -> Some i)

let length t =
  Array.fold_left
    (fun acc slot ->
      match slot with
      | Unused -> acc
      | Active _ -> acc + 1)
    0 t.slots

let slot_count t = Array.length t.slots

let copy t = { slots = Array.copy t.slots }

(* 64-bit FNV-1a over a canonical encoding of the slots.  Quality only
   affects the cost-cache hit rate — lookups verify with [equal] — but the
   encoding is injective per slot up to int64 mixing, so collisions are
   ~2^-64 per pair. *)
let hash t =
  let h = ref 0xcbf29ce484222325L in
  let mix x =
    h := Int64.mul (Int64.logxor !h x) 0x100000001b3L
  in
  let mix_int i = mix (Int64.of_int i) in
  Array.iter
    (fun slot ->
      match slot with
      | Unused -> mix_int 0
      | Active i ->
        mix_int (1 + Hashtbl.hash i.Instr.op);
        Array.iter
          (fun o ->
            match o with
            | Operand.Gp r -> mix_int (2 + Reg.gp_index r)
            | Operand.Xmm r -> mix_int (32 + Reg.xmm_index r)
            | Operand.Imm v ->
              mix_int 64;
              mix v
            | Operand.Mem m ->
              mix_int 65;
              mix_int
                (match m.Operand.base with
                 | None -> 0
                 | Some r -> 1 + Reg.gp_index r);
              (match m.Operand.index with
               | None -> mix_int 0
               | Some (r, s) ->
                 mix_int (1 + Reg.gp_index r);
                 mix_int s);
              mix_int m.Operand.disp)
          i.Instr.operands)
    t.slots;
  !h

let equal a b =
  Array.length a.slots = Array.length b.slots
  && (let ok = ref true in
      Array.iteri
        (fun i s ->
          let same =
            match s, b.slots.(i) with
            | Unused, Unused -> true
            | Active x, Active y -> Instr.equal x y
            | (Unused | Active _), _ -> false
          in
          if not same then ok := false)
        a.slots;
      !ok)

let to_string t =
  instrs t |> List.map Instr.to_string |> String.concat "\n"

let pp ppf t = Format.pp_print_string ppf (to_string t)
