(** Dependency-aware performance model: the critical path through a
    loop-free program's data-dependence DAG.

    The plain latency sum of {!Latency} models a fully serial machine; a
    wide out-of-order core is better approximated by the longest chain of
    data-dependent instructions, each weighted by its latency.  Dependences
    tracked: read-after-write through registers and flags, and all
    orderings through memory (loads and stores are not disambiguated).

    The cost function can use either model — the ablation bench compares
    them — and reports from both appear in the Figure 8 table generator. *)

val of_program : Program.t -> int
(** Length in cycles of the longest dependence chain (0 for the empty
    program). *)

val of_program_detailed : Program.t -> int * int array
(** The critical path plus each active instruction's completion time. *)
