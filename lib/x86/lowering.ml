let lower_opcode : Opcode.t -> (Opcode.t, string) result = function
  | Opcode.Addsd -> Ok Opcode.Addss
  | Opcode.Subsd -> Ok Opcode.Subss
  | Opcode.Mulsd -> Ok Opcode.Mulss
  | Opcode.Divsd -> Ok Opcode.Divss
  | Opcode.Sqrtsd -> Ok Opcode.Sqrtss
  | Opcode.Minsd -> Ok Opcode.Minss
  | Opcode.Maxsd -> Ok Opcode.Maxss
  | Opcode.Ucomisd -> Ok Opcode.Ucomiss
  | Opcode.Comisd -> Ok Opcode.Comiss
  | Opcode.Movsd -> Ok Opcode.Movss
  | Opcode.Vaddsd -> Ok Opcode.Vaddss
  | Opcode.Vsubsd -> Ok Opcode.Vsubss
  | Opcode.Vmulsd -> Ok Opcode.Vmulss
  | Opcode.Vdivsd -> Ok Opcode.Vdivss
  | Opcode.Vminsd -> Ok Opcode.Vminss
  | Opcode.Vmaxsd -> Ok Opcode.Vmaxss
  | Opcode.Vfmadd132sd -> Ok Opcode.Vfmadd132ss
  | Opcode.Vfmadd213sd -> Ok Opcode.Vfmadd213ss
  | Opcode.Vfmadd231sd -> Ok Opcode.Vfmadd231ss
  | Opcode.Cvtsi2sd w -> Ok (Opcode.Cvtsi2ss w)
  | Opcode.Cvttsd2si w -> Ok (Opcode.Cvttss2si w)
  | Opcode.Roundsd -> Ok Opcode.Roundss
  (* anything touching the binary64 representation or without a single
     twin in the subset stays untranslatable *)
  | (Opcode.Cvtsd2si _ | Opcode.Movq | Opcode.Movabs | Opcode.Shl _
    | Opcode.Shr _ | Opcode.Sar _) as op ->
    Error (Opcode.to_string op)
  | op -> Ok op (* pure GP / packed-untouched instructions pass through *)

(* movabs $f64bits, r; movq r, xmm  ==>  movl $f32bits, r32; movd r32, xmm *)
let narrow_constant_pair (a : Instr.t) (b : Instr.t) =
  match a.Instr.op, b.Instr.op, a.Instr.operands, b.Instr.operands with
  | ( Opcode.Movabs,
      Opcode.Movq,
      [| Operand.Imm bits; Operand.Gp r1 |],
      [| Operand.Gp r2; (Operand.Xmm _ as x) |] )
    when Reg.equal_gp r1 r2 ->
    let value = Int64.float_of_bits bits in
    (* represent the 32-bit pattern as a signed imm32 so it fits movl's
       immediate form; the instruction masks to 32 bits either way *)
    let bits32 = Int64.of_int32 (Int32.bits_of_float value) in
    Some
      [
        Instr.make (Opcode.Mov Reg.L) [ Operand.Imm bits32; Operand.Gp r1 ];
        Instr.make Opcode.Movd [ Operand.Gp r1; x ];
      ]
  | _, _, _, _ -> None

let lower_to_single p ~abi =
  let rec lower_body = function
    | [] -> Ok []
    | a :: b :: rest when narrow_constant_pair a b <> None ->
      Result.map
        (fun tail -> Option.get (narrow_constant_pair a b) @ tail)
        (lower_body rest)
    | i :: rest ->
      (match lower_opcode i.Instr.op with
       | Error op ->
         Error
           (Printf.sprintf
              "instruction %s manipulates the binary64 representation; \
               mechanical lowering cannot preserve it"
              op)
       | Ok op ->
         let j = Instr.make_unchecked op i.Instr.operands in
         if not (Instr.is_well_formed j) then
           Error
             (Printf.sprintf "%s has no single-precision form for operands %s"
                (Opcode.to_string i.Instr.op) (Instr.to_string i))
         else Result.map (fun tail -> j :: tail) (lower_body rest))
  in
  match lower_body (Program.instrs p) with
  | Error _ as e -> e
  | Ok body ->
    let entry =
      List.map
        (fun r -> Instr.make Opcode.Cvtsd2ss [ Operand.Xmm r; Operand.Xmm r ])
        abi
    in
    let exit_ =
      List.map
        (fun r -> Instr.make Opcode.Cvtss2sd [ Operand.Xmm r; Operand.Xmm r ])
        abi
    in
    Ok (Program.of_instrs (entry @ body @ exit_))
