(** Opcode catalogue of the modelled x86-64 subset.

    Roughly 150 opcode instances covering the instruction mix of the paper's
    benchmarks: general-purpose ALU and data movement (needed by the
    bit-manipulation idioms of the libimf kernels), SSE scalar and packed
    floating-point arithmetic, shuffles, converts, AVX three-operand forms,
    and fused multiply-add. *)

type cond =
  | E
  | Ne
  | L
  | Le
  | G
  | Ge
  | B
  | Be
  | A
  | Ae
  | S
  | P

type t =
  (* General purpose *)
  | Mov of Reg.w
  | Movabs
  | Lea of Reg.w
  | Add of Reg.w
  | Sub of Reg.w
  | Imul of Reg.w
  | And of Reg.w
  | Or of Reg.w
  | Xor of Reg.w
  | Not of Reg.w
  | Neg of Reg.w
  | Inc of Reg.w
  | Dec of Reg.w
  | Shl of Reg.w
  | Shr of Reg.w
  | Sar of Reg.w
  | Cmp of Reg.w
  | Test of Reg.w
  | Cmov of cond * Reg.w
  | Setcc of cond
  (* SSE data movement *)
  | Movss
  | Movsd
  | Movaps
  | Movups
  | Lddqu
  | Movq
  | Movd
  | Movlhps
  | Movhlps
  (* Scalar floating point *)
  | Addss
  | Addsd
  | Subss
  | Subsd
  | Mulss
  | Mulsd
  | Divss
  | Divsd
  | Sqrtss
  | Sqrtsd
  | Minss
  | Minsd
  | Maxss
  | Maxsd
  | Ucomiss
  | Ucomisd
  | Comiss
  | Comisd
  (* Packed logic and integer *)
  | Andps
  | Andpd
  | Andnps
  | Orps
  | Orpd
  | Xorps
  | Xorpd
  | Pand
  | Por
  | Pxor
  | Paddd
  | Paddq
  | Psubd
  | Psubq
  (* Packed floating point *)
  | Addps
  | Addpd
  | Subps
  | Subpd
  | Mulps
  | Mulpd
  | Divps
  | Divpd
  | Minps
  | Maxps
  (* Shuffles and vector shifts *)
  | Shufps
  | Pshufd
  | Pshuflw
  | Punpckldq
  | Punpcklqdq
  | Unpcklps
  | Unpcklpd
  | Pslld
  | Psrld
  | Psllq
  | Psrlq
  (* Converts *)
  | Cvtss2sd
  | Cvtsd2ss
  | Cvtsi2sd of Reg.w
  | Cvtsi2ss of Reg.w
  | Cvttsd2si of Reg.w
  | Cvttss2si of Reg.w
  | Cvtsd2si of Reg.w
  | Roundsd
  | Roundss
  (* AVX three-operand *)
  | Vaddss
  | Vaddsd
  | Vsubss
  | Vsubsd
  | Vmulss
  | Vmulsd
  | Vdivss
  | Vdivsd
  | Vminss
  | Vminsd
  | Vmaxss
  | Vmaxsd
  | Vsqrtsd
  | Vaddps
  | Vsubps
  | Vmulps
  | Vaddpd
  | Vmulpd
  | Vxorps
  | Vandps
  | Vpshuflw
  | Vunpcklps
  (* Fused multiply-add: dst = ±(a*b) ± c, the digits naming the operand
     roles as in the Intel mnemonics *)
  | Vfmadd132sd
  | Vfmadd213sd
  | Vfmadd231sd
  | Vfmadd132ss
  | Vfmadd213ss
  | Vfmadd231ss
  | Vfnmadd213sd
  | Vfnmadd231sd
  | Vfmsub213sd

val cond_to_string : cond -> string
val all_conds : cond list

val to_string : t -> string
(** AT&T mnemonic, e.g. ["movl"], ["vfmadd213sd"]. *)

val of_string : string -> t option

val all_of_string : string -> t list
(** All opcodes sharing the mnemonic — AT&T reuses e.g. ["movq"] for both
    the GP move and the SSE move; the operand shape disambiguates. *)

val all : t list
(** Every opcode instance (width and condition variants expanded). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val is_avx : t -> bool
(** Three-operand VEX-encoded forms (including FMA). *)

val is_sse_scalar_f64 : t -> bool
(** Scalar double-precision arithmetic (the ...sd family). *)

val is_sse_scalar_f32 : t -> bool
