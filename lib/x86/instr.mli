(** A single instruction: an opcode plus operands in AT&T order. *)

type t = {
  op : Opcode.t;
  operands : Operand.t array;
}

val make : Opcode.t -> Operand.t list -> t
(** Raises [Invalid_argument] when the operands fit no shape of the
    opcode. *)

val make_unchecked : Opcode.t -> Operand.t array -> t

val is_well_formed : t -> bool

val shape : t -> Shape.kind array
(** The shape the instruction inhabits (raises if ill-formed). *)

val gp_width : t -> Reg.w
(** The width used when printing GP operands of this instruction. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Paper-style AT&T rendering, e.g. ["mulss 8(rdi), xmm1"]. *)

val pp : Format.formatter -> t -> unit
