(** Def/use sets and backward liveness for loop-free programs.

    Locations are registers, the flags, and memory as a single blob (stores
    never kill the blob, so the analysis stays sound for partial updates).
    Used by the cost function to know which locations to compare, by the
    operand pools, and for dead-code elimination when reporting rewrites. *)

type loc =
  | Lgp of Reg.gp
  | Lxmm of Reg.xmm
  | Lflags
  | Lmem

module Locset : Set.S with type elt = loc

val defs : Instr.t -> Locset.t
val uses : Instr.t -> Locset.t

val merge_only_dst : Instr.t -> bool
(** The destination read is pure bit-preservation: the old value is copied
    into the lanes the instruction does not compute (setcc's upper 56 bits,
    the scalar SSE merge forms' upper lanes, movlhps/movhlps' untouched
    half) and never feeds the computed result. *)

val strict_uses : Instr.t -> Locset.t
(** {!uses} minus {!merge_only_dst} destination reads — the locations whose
    incoming {e value} can reach the bits the instruction computes.  The
    static undef-read screen keys on these so a fresh-register merge write
    (e.g. [cvtsi2sd] into a never-written xmm) is not flagged. *)

val kills : Instr.t -> Locset.t
(** Subset of {!defs} that fully overwrites the location, validated by the
    taint-differential oracle ([Analysis.Oracle]).  [Lmem] is never killed;
    partially-merging SSE register writes still kill at register
    granularity only when the untouched lanes come from the {e use} of the
    same register (the backward transfer function re-adds them); [Lflags]
    is not killed by inc/dec (CF survives) or by a shift whose masked
    count is zero (all flags survive). *)

val live_before : Program.t -> live_out:Locset.t -> Locset.t array
(** [live_before p ~live_out] has one entry per {e slot}: the locations live
    immediately before that slot executes. *)

val live_in : Program.t -> live_out:Locset.t -> Locset.t
(** Locations the program reads before writing. *)

val is_store : Instr.t -> bool
(** The destination operand is memory. *)

val dead_slots : Program.t -> live_out:Locset.t -> bool array
(** Slots whose instruction defines only dead locations (and is not a
    store). *)

val dce : Program.t -> live_out:Locset.t -> Program.t
(** Iterated dead-code elimination: replaces dead slots with [Unused] until
    a fixed point. *)

val loc_to_string : loc -> string
