(** Def/use sets and backward liveness for loop-free programs.

    Locations are registers, the flags, and memory as a single blob (stores
    never kill the blob, so the analysis stays sound for partial updates).
    Used by the cost function to know which locations to compare, by the
    operand pools, and for dead-code elimination when reporting rewrites. *)

type loc =
  | Lgp of Reg.gp
  | Lxmm of Reg.xmm
  | Lflags
  | Lmem

module Locset : Set.S with type elt = loc

val defs : Instr.t -> Locset.t
val uses : Instr.t -> Locset.t

val kills : Instr.t -> Locset.t
(** Subset of {!defs} that fully overwrites the location ([Lmem] is never
    killed; partially-merging SSE writes still kill at register
    granularity because we only compare the bits the kernel declares
    live-out). *)

val live_before : Program.t -> live_out:Locset.t -> Locset.t array
(** [live_before p ~live_out] has one entry per {e slot}: the locations live
    immediately before that slot executes. *)

val live_in : Program.t -> live_out:Locset.t -> Locset.t
(** Locations the program reads before writing. *)

val dead_slots : Program.t -> live_out:Locset.t -> bool array
(** Slots whose instruction defines only dead locations (and is not a
    store). *)

val dce : Program.t -> live_out:Locset.t -> Program.t
(** Iterated dead-code elimination: replaces dead slots with [Unused] until
    a fixed point. *)

val loc_to_string : loc -> string
