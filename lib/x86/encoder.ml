let hex s =
  String.to_seq s
  |> Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c))
  |> List.of_seq |> String.concat " "

(* Byte-buffer helpers *)

type buf = Buffer.t

let byte (b : buf) v = Buffer.add_char b (Char.chr (v land 0xff))

let imm8 b (v : int64) = byte b (Int64.to_int v land 0xff)

let imm32 b (v : int64) =
  let v = Int64.to_int (Int64.logand v 0xffff_ffffL) in
  byte b v;
  byte b (v lsr 8);
  byte b (v lsr 16);
  byte b (v lsr 24)

let imm64 b (v : int64) =
  imm32 b v;
  imm32 b (Int64.shift_right_logical v 32)

let disp32 b (v : int) =
  byte b v;
  byte b (v lsr 8);
  byte b (v lsr 16);
  byte b (v lsr 24)

exception Unencodable of string

(* Sign-extended imm32 contexts (64-bit Mov/ALU/Test immediates): the
   hardware sign-extends the stored 32 bits to 64, so an immediate outside
   the signed 32-bit range cannot be represented — emitting its truncation
   would silently change the value (movabs is the 64-bit escape hatch). *)
let fits_imm32 v =
  Int64.compare v (-0x8000_0000L) >= 0 && Int64.compare v 0x7fff_ffffL <= 0

let check_imm32 ~w (v : int64) =
  let ok =
    if w then fits_imm32 v
    else
      (* 32-bit forms truncate to 32 bits in the semantics too, but reject
         values that don't even fit in 32 bits un/signed — an assembler
         would. *)
      Int64.compare v (-0x8000_0000L) >= 0
      && Int64.compare v 0xffff_ffffL <= 0
  in
  if not ok then
    raise
      (Unencodable (Printf.sprintf "immediate %Ld does not fit in imm32" v))

(* The ModRM "reg or extension" field and the r/m target.  [reg] is a
   hardware register number (possibly an opcode extension digit); [rm] is
   either a register number or a memory operand. *)

type rm =
  | Rm_reg of int
  | Rm_mem of Operand.mem

let fits_disp8 d = d >= -128 && d <= 127

(* Emit ModRM (+ SIB + displacement) for the given reg-field value and r/m
   operand.  Returns nothing; REX bits must be computed by the caller via
   [rex_bits]. *)
let emit_modrm b ~reg rm =
  let reg3 = reg land 7 in
  match rm with
  | Rm_reg r -> byte b (0xc0 lor (reg3 lsl 3) lor (r land 7))
  | Rm_mem m ->
    if m.Operand.disp < -0x8000_0000 || m.Operand.disp > 0x7fff_ffff then
      raise
        (Unencodable
           (Printf.sprintf "displacement %d does not fit in disp32"
              m.Operand.disp));
    (match m.Operand.base, m.Operand.index with
     | None, _ -> invalid_arg "Encoder: memory operand without base register"
     | Some base, index ->
       let base_num = Reg.gp_index base in
       let base3 = base_num land 7 in
       let need_sib = index <> None || base3 = 4 in
       (* mod=00 with base rbp/r13 means disp32-only, so force disp8. *)
       let disp_mode =
         if m.Operand.disp = 0 && base3 <> 5 then `None
         else if fits_disp8 m.Operand.disp then `Disp8
         else `Disp32
       in
       let md =
         match disp_mode with
         | `None -> 0b00
         | `Disp8 -> 0b01
         | `Disp32 -> 0b10
       in
       if need_sib then begin
         byte b ((md lsl 6) lor (reg3 lsl 3) lor 0b100);
         let scale_bits s =
           match s with
           | 1 -> 0
           | 2 -> 1
           | 4 -> 2
           | 8 -> 3
           | _ -> invalid_arg "Encoder: bad scale"
         in
         let idx3, ss =
           match index with
           | None -> (0b100, 0)
           | Some (r, s) ->
             let n = Reg.gp_index r in
             if n land 7 = 4 && n < 8 then
               invalid_arg "Encoder: rsp cannot be an index register";
             (n land 7, scale_bits s)
         in
         byte b ((ss lsl 6) lor (idx3 lsl 3) lor base3)
       end
       else byte b ((md lsl 6) lor (reg3 lsl 3) lor base3);
       (match disp_mode with
        | `None -> ()
        | `Disp8 -> byte b (m.Operand.disp land 0xff)
        | `Disp32 -> disp32 b m.Operand.disp))

(* REX bits implied by the reg field and r/m operand. *)
let rex_bits ~reg rm =
  let r = if reg >= 8 then 0b100 else 0 in
  let xb =
    match rm with
    | Rm_reg n -> if n >= 8 then 0b001 else 0
    | Rm_mem m ->
      let b_bit =
        match m.Operand.base with
        | Some base when Reg.gp_index base >= 8 -> 0b001
        | Some _ | None -> 0
      in
      let x_bit =
        match m.Operand.index with
        | Some (idx, _) when Reg.gp_index idx >= 8 -> 0b010
        | Some _ | None -> 0
      in
      b_bit lor x_bit
  in
  r lor xb

let emit_rex b ~w ~reg rm =
  let bits = rex_bits ~reg rm in
  let rex = (if w then 0x48 else 0x40) lor bits in
  if w || bits <> 0 then byte b rex

(* Legacy-encoded instruction with an optional mandatory prefix.  [prefix]
   precedes REX; escape bytes (0F …) are part of [opc]. *)
let legacy b ?prefix ?(w = false) ~opc ~reg rm =
  Option.iter (fun p -> byte b p) prefix;
  emit_rex b ~w ~reg rm;
  List.iter (fun o -> byte b o) opc;
  emit_modrm b ~reg rm

(* VEX-encoded instruction.  [pp] is the SIMD-prefix code (0 none, 1 66,
   2 F3, 3 F2); [mmap] the opcode map (1 = 0F, 2 = 0F38, 3 = 0F3A);
   [vvvv] the extra source register number. *)
let vex b ~pp ~mmap ~w ~vvvv ~opc ~reg rm =
  let bits = rex_bits ~reg rm in
  let r_inv = if bits land 0b100 = 0 then 1 else 0 in
  let x_inv = if bits land 0b010 = 0 then 1 else 0 in
  let b_inv = if bits land 0b001 = 0 then 1 else 0 in
  let v_inv = lnot vvvv land 0xf in
  if (not w) && mmap = 1 && x_inv = 1 && b_inv = 1 then begin
    (* two-byte form *)
    byte b 0xc5;
    byte b ((r_inv lsl 7) lor (v_inv lsl 3) lor pp)
  end
  else begin
    byte b 0xc4;
    byte b ((r_inv lsl 7) lor (x_inv lsl 6) lor (b_inv lsl 5) lor mmap);
    byte b (((if w then 1 else 0) lsl 7) lor (v_inv lsl 3) lor pp)
  end;
  byte b opc;
  emit_modrm b ~reg rm

let cond_code : Opcode.cond -> int = function
  | Opcode.B -> 0x2
  | Opcode.Ae -> 0x3
  | Opcode.E -> 0x4
  | Opcode.Ne -> 0x5
  | Opcode.Be -> 0x6
  | Opcode.A -> 0x7
  | Opcode.S -> 0x8
  | Opcode.P -> 0xa
  | Opcode.L -> 0xc
  | Opcode.Ge -> 0xd
  | Opcode.Le -> 0xe
  | Opcode.G -> 0xf

let gp_num = Reg.gp_index
let xmm_num = Reg.xmm_index

let rm_of_operand = function
  | Operand.Gp r -> Rm_reg (gp_num r)
  | Operand.Xmm r -> Rm_reg (xmm_num r)
  | Operand.Mem m -> Rm_mem m
  | Operand.Imm _ -> invalid_arg "Encoder: immediate cannot be r/m"

let is_w = function
  | Reg.Q -> true
  | Reg.L -> false

let unsupported i =
  raise
    (Unencodable (Printf.sprintf "unsupported operand form: %s" (Instr.to_string i)))

(* ALU opcodes: (r/m,r form), (r,r/m form), /digit for the imm form. *)
let alu_bytes : Opcode.t -> (int * int * int) option = function
  | Opcode.Add _ -> Some (0x01, 0x03, 0)
  | Opcode.Or _ -> Some (0x09, 0x0b, 1)
  | Opcode.And _ -> Some (0x21, 0x23, 4)
  | Opcode.Sub _ -> Some (0x29, 0x2b, 5)
  | Opcode.Xor _ -> Some (0x31, 0x33, 6)
  | Opcode.Cmp _ -> Some (0x39, 0x3b, 7)
  | _ -> None

(* SSE scalar/packed op where the last (AT&T) operand is the destination
   register: RM encoding with reg = dst. *)
let sse_rm b ?prefix ~opc (i : Instr.t) =
  let n = Array.length i.Instr.operands in
  match i.Instr.operands.(n - 1) with
  | Operand.Xmm dst ->
    legacy b ?prefix ~opc ~reg:(xmm_num dst) (rm_of_operand i.Instr.operands.(0))
  | _ -> unsupported i

let encode_into b (i : Instr.t) =
  let ops = i.Instr.operands in
  let n = Array.length ops in
  let src k = ops.(k) in
  let dst () = ops.(n - 1) in
  match i.Instr.op with
  | Mov w ->
    let wq = is_w w in
    (match src 0, dst () with
     | Operand.Gp s, (Operand.Gp _ | Operand.Mem _) ->
       legacy b ~w:wq ~opc:[ 0x89 ] ~reg:(gp_num s) (rm_of_operand (dst ()))
     | Operand.Mem _, Operand.Gp d ->
       legacy b ~w:wq ~opc:[ 0x8b ] ~reg:(gp_num d) (rm_of_operand (src 0))
     | Operand.Imm v, (Operand.Gp _ | Operand.Mem _) ->
       check_imm32 ~w:wq v;
       legacy b ~w:wq ~opc:[ 0xc7 ] ~reg:0 (rm_of_operand (dst ()));
       imm32 b v
     | _ -> unsupported i)
  | Movabs ->
    (match src 0, dst () with
     | Operand.Imm v, Operand.Gp d ->
       let num = gp_num d in
       byte b (0x48 lor (if num >= 8 then 1 else 0));
       byte b (0xb8 lor (num land 7));
       imm64 b v
     | _ -> unsupported i)
  | Lea w ->
    (match src 0, dst () with
     | Operand.Mem _, Operand.Gp d ->
       legacy b ~w:(is_w w) ~opc:[ 0x8d ] ~reg:(gp_num d) (rm_of_operand (src 0))
     | _ -> unsupported i)
  | (Add _ | Sub _ | And _ | Or _ | Xor _ | Cmp _) as op ->
    let mr, rm_form, digit = Option.get (alu_bytes op) in
    let wq =
      match op with
      | Add w | Sub w | And w | Or w | Xor w | Cmp w -> is_w w
      | _ -> false
    in
    (match src 0, dst () with
     | Operand.Gp s, (Operand.Gp _ | Operand.Mem _) ->
       legacy b ~w:wq ~opc:[ mr ] ~reg:(gp_num s) (rm_of_operand (dst ()))
     | Operand.Mem _, Operand.Gp d ->
       legacy b ~w:wq ~opc:[ rm_form ] ~reg:(gp_num d) (rm_of_operand (src 0))
     | Operand.Imm v, (Operand.Gp _ | Operand.Mem _) ->
       check_imm32 ~w:wq v;
       legacy b ~w:wq ~opc:[ 0x81 ] ~reg:digit (rm_of_operand (dst ()));
       imm32 b v
     | _ -> unsupported i)
  | Test w ->
    (match src 0, dst () with
     | Operand.Gp s, (Operand.Gp _ | Operand.Mem _) ->
       legacy b ~w:(is_w w) ~opc:[ 0x85 ] ~reg:(gp_num s) (rm_of_operand (dst ()))
     | Operand.Imm v, (Operand.Gp _ | Operand.Mem _) ->
       check_imm32 ~w:(is_w w) v;
       legacy b ~w:(is_w w) ~opc:[ 0xf7 ] ~reg:0 (rm_of_operand (dst ()));
       imm32 b v
     | Operand.Mem _, Operand.Gp d ->
       (* test is commutative; encode as the MR form. *)
       legacy b ~w:(is_w w) ~opc:[ 0x85 ] ~reg:(gp_num d) (rm_of_operand (src 0))
     | _ -> unsupported i)
  | Imul w ->
    (match dst () with
     | Operand.Gp d ->
       legacy b ~w:(is_w w) ~opc:[ 0x0f; 0xaf ] ~reg:(gp_num d)
         (rm_of_operand (src 0))
     | _ -> unsupported i)
  | Not w -> legacy b ~w:(is_w w) ~opc:[ 0xf7 ] ~reg:2 (rm_of_operand (dst ()))
  | Neg w -> legacy b ~w:(is_w w) ~opc:[ 0xf7 ] ~reg:3 (rm_of_operand (dst ()))
  | Inc w -> legacy b ~w:(is_w w) ~opc:[ 0xff ] ~reg:0 (rm_of_operand (dst ()))
  | Dec w -> legacy b ~w:(is_w w) ~opc:[ 0xff ] ~reg:1 (rm_of_operand (dst ()))
  | (Shl w | Shr w | Sar w) as op ->
    let digit =
      match op with
      | Shl _ -> 4
      | Shr _ -> 5
      | _ -> 7
    in
    (match src 0 with
     | Operand.Imm v ->
       legacy b ~w:(is_w w) ~opc:[ 0xc1 ] ~reg:digit (rm_of_operand (dst ()));
       imm8 b v
     | _ -> unsupported i)
  | Cmov (c, w) ->
    (match dst () with
     | Operand.Gp d ->
       legacy b ~w:(is_w w)
         ~opc:[ 0x0f; 0x40 lor cond_code c ]
         ~reg:(gp_num d) (rm_of_operand (src 0))
     | _ -> unsupported i)
  | Setcc c ->
    let opc = [ 0x0f; 0x90 lor cond_code c ] in
    (match rm_of_operand (dst ()) with
     | Rm_reg r when r >= 4 && r < 8 ->
       (* Without a REX prefix, r/m 4..7 in a byte instruction select
          ah/ch/dh/bh; an empty REX (0x40) reselects spl/bpl/sil/dil. *)
       byte b 0x40;
       List.iter (fun o -> byte b o) opc;
       emit_modrm b ~reg:0 (Rm_reg r)
     | rm -> legacy b ~opc ~reg:0 rm)
  | Movss ->
    (match src 0, dst () with
     | (Operand.Xmm _ | Operand.Mem _), Operand.Xmm d ->
       legacy b ~prefix:0xf3 ~opc:[ 0x0f; 0x10 ] ~reg:(xmm_num d)
         (rm_of_operand (src 0))
     | Operand.Xmm s, Operand.Mem _ ->
       legacy b ~prefix:0xf3 ~opc:[ 0x0f; 0x11 ] ~reg:(xmm_num s)
         (rm_of_operand (dst ()))
     | _ -> unsupported i)
  | Movsd ->
    (match src 0, dst () with
     | (Operand.Xmm _ | Operand.Mem _), Operand.Xmm d ->
       legacy b ~prefix:0xf2 ~opc:[ 0x0f; 0x10 ] ~reg:(xmm_num d)
         (rm_of_operand (src 0))
     | Operand.Xmm s, Operand.Mem _ ->
       legacy b ~prefix:0xf2 ~opc:[ 0x0f; 0x11 ] ~reg:(xmm_num s)
         (rm_of_operand (dst ()))
     | _ -> unsupported i)
  | Movaps | Movups ->
    let load, store =
      match i.Instr.op with
      | Movaps -> (0x28, 0x29)
      | _ -> (0x10, 0x11)
    in
    (match src 0, dst () with
     | (Operand.Xmm _ | Operand.Mem _), Operand.Xmm d ->
       legacy b ~opc:[ 0x0f; load ] ~reg:(xmm_num d) (rm_of_operand (src 0))
     | Operand.Xmm s, Operand.Mem _ ->
       legacy b ~opc:[ 0x0f; store ] ~reg:(xmm_num s) (rm_of_operand (dst ()))
     | _ -> unsupported i)
  | Lddqu -> sse_rm b ~prefix:0xf2 ~opc:[ 0x0f; 0xf0 ] i
  | Movq ->
    (match src 0, dst () with
     | Operand.Gp s, Operand.Xmm d ->
       byte b 0x66;
       emit_rex b ~w:true ~reg:(xmm_num d) (Rm_reg (gp_num s));
       byte b 0x0f;
       byte b 0x6e;
       emit_modrm b ~reg:(xmm_num d) (Rm_reg (gp_num s))
     | Operand.Xmm s, Operand.Gp d ->
       byte b 0x66;
       emit_rex b ~w:true ~reg:(xmm_num s) (Rm_reg (gp_num d));
       byte b 0x0f;
       byte b 0x7e;
       emit_modrm b ~reg:(xmm_num s) (Rm_reg (gp_num d))
     | (Operand.Mem _ | Operand.Xmm _), Operand.Xmm d ->
       legacy b ~prefix:0xf3 ~opc:[ 0x0f; 0x7e ] ~reg:(xmm_num d)
         (rm_of_operand (src 0))
     | Operand.Xmm s, Operand.Mem _ ->
       legacy b ~prefix:0x66 ~opc:[ 0x0f; 0xd6 ] ~reg:(xmm_num s)
         (rm_of_operand (dst ()))
     | _ -> unsupported i)
  | Movd ->
    (match src 0, dst () with
     | Operand.Gp s, Operand.Xmm d ->
       legacy b ~prefix:0x66 ~opc:[ 0x0f; 0x6e ] ~reg:(xmm_num d)
         (Rm_reg (gp_num s))
     | Operand.Xmm s, Operand.Gp d ->
       legacy b ~prefix:0x66 ~opc:[ 0x0f; 0x7e ] ~reg:(xmm_num s)
         (Rm_reg (gp_num d))
     | _ -> unsupported i)
  | Movlhps -> sse_rm b ~opc:[ 0x0f; 0x16 ] i
  | Movhlps -> sse_rm b ~opc:[ 0x0f; 0x12 ] i
  | Addss -> sse_rm b ~prefix:0xf3 ~opc:[ 0x0f; 0x58 ] i
  | Addsd -> sse_rm b ~prefix:0xf2 ~opc:[ 0x0f; 0x58 ] i
  | Subss -> sse_rm b ~prefix:0xf3 ~opc:[ 0x0f; 0x5c ] i
  | Subsd -> sse_rm b ~prefix:0xf2 ~opc:[ 0x0f; 0x5c ] i
  | Mulss -> sse_rm b ~prefix:0xf3 ~opc:[ 0x0f; 0x59 ] i
  | Mulsd -> sse_rm b ~prefix:0xf2 ~opc:[ 0x0f; 0x59 ] i
  | Divss -> sse_rm b ~prefix:0xf3 ~opc:[ 0x0f; 0x5e ] i
  | Divsd -> sse_rm b ~prefix:0xf2 ~opc:[ 0x0f; 0x5e ] i
  | Sqrtss -> sse_rm b ~prefix:0xf3 ~opc:[ 0x0f; 0x51 ] i
  | Sqrtsd -> sse_rm b ~prefix:0xf2 ~opc:[ 0x0f; 0x51 ] i
  | Minss -> sse_rm b ~prefix:0xf3 ~opc:[ 0x0f; 0x5d ] i
  | Minsd -> sse_rm b ~prefix:0xf2 ~opc:[ 0x0f; 0x5d ] i
  | Maxss -> sse_rm b ~prefix:0xf3 ~opc:[ 0x0f; 0x5f ] i
  | Maxsd -> sse_rm b ~prefix:0xf2 ~opc:[ 0x0f; 0x5f ] i
  | Ucomiss -> sse_rm b ~opc:[ 0x0f; 0x2e ] i
  | Ucomisd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x2e ] i
  | Comiss -> sse_rm b ~opc:[ 0x0f; 0x2f ] i
  | Comisd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x2f ] i
  | Andps -> sse_rm b ~opc:[ 0x0f; 0x54 ] i
  | Andpd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x54 ] i
  | Andnps -> sse_rm b ~opc:[ 0x0f; 0x55 ] i
  | Orps -> sse_rm b ~opc:[ 0x0f; 0x56 ] i
  | Orpd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x56 ] i
  | Xorps -> sse_rm b ~opc:[ 0x0f; 0x57 ] i
  | Xorpd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x57 ] i
  | Pand -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0xdb ] i
  | Por -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0xeb ] i
  | Pxor -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0xef ] i
  | Paddd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0xfe ] i
  | Paddq -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0xd4 ] i
  | Psubd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0xfa ] i
  | Psubq -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0xfb ] i
  | Addps -> sse_rm b ~opc:[ 0x0f; 0x58 ] i
  | Addpd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x58 ] i
  | Subps -> sse_rm b ~opc:[ 0x0f; 0x5c ] i
  | Subpd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x5c ] i
  | Mulps -> sse_rm b ~opc:[ 0x0f; 0x59 ] i
  | Mulpd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x59 ] i
  | Divps -> sse_rm b ~opc:[ 0x0f; 0x5e ] i
  | Divpd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x5e ] i
  | Minps -> sse_rm b ~opc:[ 0x0f; 0x5d ] i
  | Maxps -> sse_rm b ~opc:[ 0x0f; 0x5f ] i
  | Shufps ->
    (match src 0, src 1, dst () with
     | Operand.Imm v, Operand.Xmm s, Operand.Xmm d ->
       legacy b ~opc:[ 0x0f; 0xc6 ] ~reg:(xmm_num d) (Rm_reg (xmm_num s));
       imm8 b v
     | _ -> unsupported i)
  | Pshufd | Pshuflw ->
    let prefix =
      match i.Instr.op with
      | Pshufd -> 0x66
      | _ -> 0xf2
    in
    (match src 0, src 1, dst () with
     | Operand.Imm v, Operand.Xmm s, Operand.Xmm d ->
       legacy b ~prefix ~opc:[ 0x0f; 0x70 ] ~reg:(xmm_num d)
         (Rm_reg (xmm_num s));
       imm8 b v
     | _ -> unsupported i)
  | Punpckldq -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x62 ] i
  | Punpcklqdq -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x6c ] i
  | Unpcklps -> sse_rm b ~opc:[ 0x0f; 0x14 ] i
  | Unpcklpd -> sse_rm b ~prefix:0x66 ~opc:[ 0x0f; 0x14 ] i
  | (Pslld | Psrld | Psllq | Psrlq) as op ->
    let opc, digit =
      match op with
      | Pslld -> (0x72, 6)
      | Psrld -> (0x72, 2)
      | Psllq -> (0x73, 6)
      | _ -> (0x73, 2)
    in
    (match src 0, dst () with
     | Operand.Imm v, Operand.Xmm d ->
       legacy b ~prefix:0x66 ~opc:[ 0x0f; opc ] ~reg:digit
         (Rm_reg (xmm_num d));
       imm8 b v
     | _ -> unsupported i)
  | Cvtss2sd -> sse_rm b ~prefix:0xf3 ~opc:[ 0x0f; 0x5a ] i
  | Cvtsd2ss -> sse_rm b ~prefix:0xf2 ~opc:[ 0x0f; 0x5a ] i
  | Cvtsi2sd w ->
    (match dst () with
     | Operand.Xmm d ->
       legacy b ~prefix:0xf2 ~w:(is_w w) ~opc:[ 0x0f; 0x2a ] ~reg:(xmm_num d)
         (rm_of_operand (src 0))
     | _ -> unsupported i)
  | Cvtsi2ss w ->
    (match dst () with
     | Operand.Xmm d ->
       legacy b ~prefix:0xf3 ~w:(is_w w) ~opc:[ 0x0f; 0x2a ] ~reg:(xmm_num d)
         (rm_of_operand (src 0))
     | _ -> unsupported i)
  | (Cvttsd2si w | Cvttss2si w | Cvtsd2si w) as op ->
    let prefix, opc =
      match op with
      | Cvttsd2si _ -> (0xf2, 0x2c)
      | Cvttss2si _ -> (0xf3, 0x2c)
      | _ -> (0xf2, 0x2d)
    in
    (match src 0, dst () with
     | Operand.Xmm s, Operand.Gp d ->
       legacy b ~prefix ~w:(is_w w) ~opc:[ 0x0f; opc ] ~reg:(gp_num d)
         (Rm_reg (xmm_num s))
     | _ -> unsupported i)
  | Roundsd | Roundss ->
    let opc =
      match i.Instr.op with
      | Roundsd -> 0x0b
      | _ -> 0x0a
    in
    (match src 0, src 1, dst () with
     | Operand.Imm v, Operand.Xmm s, Operand.Xmm d ->
       legacy b ~prefix:0x66 ~opc:[ 0x0f; 0x3a; opc ] ~reg:(xmm_num d)
         (Rm_reg (xmm_num s));
       imm8 b v
     | _ -> unsupported i)
  | (Vaddss | Vsubss | Vmulss | Vdivss | Vminss | Vmaxss | Vaddsd | Vsubsd
    | Vmulsd | Vdivsd | Vminsd | Vmaxsd | Vsqrtsd | Vaddps | Vsubps | Vmulps
    | Vaddpd | Vmulpd | Vxorps | Vandps | Vunpcklps) as op ->
    let pp, opc =
      match op with
      | Vaddss -> (2, 0x58)
      | Vsubss -> (2, 0x5c)
      | Vmulss -> (2, 0x59)
      | Vdivss -> (2, 0x5e)
      | Vminss -> (2, 0x5d)
      | Vmaxss -> (2, 0x5f)
      | Vaddsd -> (3, 0x58)
      | Vsubsd -> (3, 0x5c)
      | Vmulsd -> (3, 0x59)
      | Vdivsd -> (3, 0x5e)
      | Vminsd -> (3, 0x5d)
      | Vmaxsd -> (3, 0x5f)
      | Vsqrtsd -> (3, 0x51)
      | Vaddps -> (0, 0x58)
      | Vsubps -> (0, 0x5c)
      | Vmulps -> (0, 0x59)
      | Vaddpd -> (1, 0x58)
      | Vmulpd -> (1, 0x59)
      | Vxorps -> (0, 0x57)
      | Vandps -> (0, 0x54)
      | _ -> (0, 0x14)
    in
    (match src 1, dst () with
     | Operand.Xmm v1, Operand.Xmm d ->
       vex b ~pp ~mmap:1 ~w:false ~vvvv:(xmm_num v1) ~opc ~reg:(xmm_num d)
         (rm_of_operand (src 0))
     | _ -> unsupported i)
  | Vpshuflw ->
    (match src 0, src 1, dst () with
     | Operand.Imm v, (Operand.Xmm _ | Operand.Mem _), Operand.Xmm d ->
       vex b ~pp:3 ~mmap:1 ~w:false ~vvvv:0 ~opc:0x70 ~reg:(xmm_num d)
         (rm_of_operand (src 1));
       imm8 b v
     | _ -> unsupported i)
  | (Vfmadd132sd | Vfmadd213sd | Vfmadd231sd | Vfmadd132ss | Vfmadd213ss
    | Vfmadd231ss | Vfnmadd213sd | Vfnmadd231sd | Vfmsub213sd) as op ->
    let w, opc =
      match op with
      | Vfmadd132sd -> (true, 0x99)
      | Vfmadd213sd -> (true, 0xa9)
      | Vfmadd231sd -> (true, 0xb9)
      | Vfmadd132ss -> (false, 0x99)
      | Vfmadd213ss -> (false, 0xa9)
      | Vfmadd231ss -> (false, 0xb9)
      | Vfnmadd213sd -> (true, 0xad)
      | Vfnmadd231sd -> (true, 0xbd)
      | _ -> (true, 0xab)
    in
    (match src 1, dst () with
     | Operand.Xmm v1, Operand.Xmm d ->
       vex b ~pp:1 ~mmap:2 ~w ~vvvv:(xmm_num v1) ~opc ~reg:(xmm_num d)
         (rm_of_operand (src 0))
     | _ -> unsupported i)

let encode_instr i =
  let b = Buffer.create 16 in
  match encode_into b i with
  | () -> Ok (Buffer.contents b)
  | exception Unencodable msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let encode_program p =
  let b = Buffer.create 256 in
  let rec go = function
    | [] -> Ok (Buffer.contents b)
    | i :: rest ->
      (match encode_into b i with
       | () -> go rest
       | exception Unencodable msg -> Error msg
       | exception Invalid_argument msg -> Error msg)
  in
  go (Program.instrs p)
