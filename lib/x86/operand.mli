(** Instruction operands.

    Operands are stored in AT&T order throughout (sources first, destination
    last), matching the paper's listings. *)

(** Memory operand: [disp(base, index, scale)]. *)
type mem = {
  base : Reg.gp option;
  index : (Reg.gp * int) option;  (** scale must be 1, 2, 4 or 8 *)
  disp : int;
}

type t =
  | Gp of Reg.gp
  | Xmm of Reg.xmm
  | Imm of int64
  | Mem of mem

val mem : ?index:Reg.gp * int -> ?disp:int -> Reg.gp -> t
(** Convenience constructor with a base register. *)

val imm : int -> t
val imm64 : int64 -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val equal_mem : mem -> mem -> bool

val to_string : w:Reg.w -> t -> string
(** Render with the given width for GP registers. *)

val pp : w:Reg.w -> Format.formatter -> t -> unit
