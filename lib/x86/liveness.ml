type loc =
  | Lgp of Reg.gp
  | Lxmm of Reg.xmm
  | Lflags
  | Lmem

module Locset = Set.Make (struct
  type t = loc

  let compare = Stdlib.compare
end)

let mem_addr_uses (m : Operand.mem) =
  let s = Locset.empty in
  let s =
    match m.base with
    | None -> s
    | Some r -> Locset.add (Lgp r) s
  in
  match m.index with
  | None -> s
  | Some (r, _) -> Locset.add (Lgp r) s

let operand_read_uses = function
  | Operand.Gp r -> Locset.singleton (Lgp r)
  | Operand.Xmm r -> Locset.singleton (Lxmm r)
  | Operand.Imm _ -> Locset.empty
  | Operand.Mem m -> Locset.add Lmem (mem_addr_uses m)

let operand_def = function
  | Operand.Gp r -> Locset.singleton (Lgp r)
  | Operand.Xmm r -> Locset.singleton (Lxmm r)
  | Operand.Imm _ -> Locset.empty
  | Operand.Mem _ -> Locset.singleton Lmem

(* The flags-defining opcodes of our subset. *)
let defines_flags : Opcode.t -> bool = function
  | Add _ | Sub _ | Imul _ | And _ | Or _ | Xor _ | Neg _ | Inc _ | Dec _
  | Shl _ | Shr _ | Sar _ | Cmp _ | Test _ | Ucomiss | Ucomisd | Comiss
  | Comisd ->
    true
  | _ -> false

let uses_flags : Opcode.t -> bool = function
  | Cmov _ | Setcc _ -> true
  | _ -> false

(* Does the destination's previous value feed the result?  True for
   read-modify-write ALU ops, for merging SSE scalar writes from registers,
   and for FMA forms where the destination is a multiplicand/addend. *)
let dst_is_source (i : Instr.t) =
  let from_mem =
    Array.length i.operands >= 2
    && (match i.operands.(0) with
        | Operand.Mem _ -> true
        | _ -> false)
  in
  match i.op with
  | Mov _ | Movabs | Lea _ | Cmp _ | Test _ -> false
  | Add _ | Sub _ | Imul _ | And _ | Or _ | Xor _ | Not _ | Neg _ | Inc _
  | Dec _ | Shl _ | Shr _ | Sar _ ->
    true
  | Cmov _ -> true
  | Setcc _ -> true (* writes only the low byte *)
  | Movss | Movsd ->
    (* reg-to-reg forms merge into the destination's upper bits; loads from
       memory overwrite the register. *)
    not from_mem
    && (match i.operands.(i.operands |> Array.length |> fun n -> n - 1) with
        | Operand.Xmm _ -> true
        | _ -> false)
  | Movaps | Movups | Lddqu | Movq | Movd -> false
  | Movlhps | Movhlps -> true
  | Addss | Addsd | Subss | Subsd | Mulss | Mulsd | Divss | Divsd | Minss
  | Minsd | Maxss | Maxsd ->
    true
  | Sqrtss | Sqrtsd -> true (* upper bits merge *)
  | Ucomiss | Ucomisd | Comiss | Comisd -> false (* no destination at all *)
  | Andps | Andpd | Andnps | Orps | Orpd | Xorps | Xorpd | Pand | Por | Pxor
  | Paddd | Paddq | Psubd | Psubq | Addps | Addpd | Subps | Subpd | Mulps
  | Mulpd | Divps | Divpd | Minps | Maxps ->
    true
  | Shufps -> true
  | Pshufd | Pshuflw -> false
  | Punpckldq | Punpcklqdq | Unpcklps | Unpcklpd -> true
  | Pslld | Psrld | Psllq | Psrlq -> true
  | Cvtss2sd | Cvtsd2ss | Cvtsi2sd _ | Cvtsi2ss _ -> true (* merge upper *)
  | Cvttsd2si _ | Cvttss2si _ | Cvtsd2si _ -> false
  | Roundsd | Roundss -> true
  | Vaddss | Vaddsd | Vsubss | Vsubsd | Vmulss | Vmulsd | Vdivss | Vdivsd
  | Vminss | Vminsd | Vmaxss | Vmaxsd | Vsqrtsd | Vaddps | Vsubps | Vmulps
  | Vaddpd | Vmulpd | Vxorps | Vandps | Vpshuflw | Vunpcklps ->
    false
  | Vfmadd132sd | Vfmadd213sd | Vfmadd231sd | Vfmadd132ss | Vfmadd213ss
  | Vfmadd231ss | Vfnmadd213sd | Vfnmadd231sd | Vfmsub213sd ->
    true

let has_dst (i : Instr.t) =
  match i.op with
  | Cmp _ | Test _ | Ucomiss | Ucomisd | Comiss | Comisd -> false
  | _ -> Array.length i.operands > 0

let defs (i : Instr.t) =
  let n = Array.length i.operands in
  let base =
    if has_dst i && n > 0 then operand_def i.operands.(n - 1) else Locset.empty
  in
  if defines_flags i.op then Locset.add Lflags base else base

let uses_via ~dst_read (i : Instr.t) =
  let n = Array.length i.operands in
  let srcs =
    Array.to_list i.operands
    |> List.mapi (fun idx o -> (idx, o))
    |> List.fold_left
         (fun acc (idx, o) ->
           let is_dst = has_dst i && idx = n - 1 in
           if is_dst then
             match o with
             | Operand.Mem m ->
               (* A store uses its address registers regardless, and a
                  read-modify-write memory destination (add into memory)
                  reads the memory blob itself. *)
               let acc = Locset.union acc (mem_addr_uses m) in
               if dst_read then Locset.add Lmem acc else acc
             | Operand.Gp _ | Operand.Xmm _ ->
               if dst_read then Locset.union acc (operand_read_uses o)
               else acc
             | Operand.Imm _ -> acc
           else
             match i.op, o with
             | Opcode.Lea _, Operand.Mem m ->
               (* lea computes the address without reading memory. *)
               Locset.union acc (mem_addr_uses m)
             | _, _ -> Locset.union acc (operand_read_uses o))
         Locset.empty
  in
  if uses_flags i.op then Locset.add Lflags srcs else srcs

let uses (i : Instr.t) = uses_via ~dst_read:(dst_is_source i) i

(* Destination reads whose old value is only re-emitted into the bits the
   instruction does not compute: setcc keeps the upper 56 bits, the scalar
   SSE merge forms keep the upper lanes, movlhps/movhlps keep the untouched
   half.  The destination's value never feeds the computed bits, unlike
   read-modify-write ALU ops or the scalar FP ops whose dst is an operand. *)
let merge_only_dst (i : Instr.t) =
  match i.op with
  | Setcc _ -> true
  | Movss | Movsd -> dst_is_source i (* the reg-to-reg merge forms *)
  | Sqrtss | Sqrtsd | Cvtss2sd | Cvtsd2ss | Cvtsi2sd _ | Cvtsi2ss _
  | Roundsd | Roundss | Movlhps | Movhlps ->
    true
  | _ -> false

let strict_uses (i : Instr.t) =
  uses_via ~dst_read:(dst_is_source i && not (merge_only_dst i)) i

(* Does [i] rewrite all five flags?  [defines_flags] is the may-def
   over-approximation; two families write fewer: inc/dec preserve CF, and a
   shift whose masked count (count land 63 at width Q, land 31 at L) is zero
   leaves every flag untouched. *)
let kills_flags (i : Instr.t) =
  defines_flags i.op
  && (match i.op with
      | Inc _ | Dec _ -> false
      | Shl w | Shr w | Sar w ->
        (match if Array.length i.operands > 0 then Some i.operands.(0) else None with
         | Some (Operand.Imm c) ->
           let mask = match w with Reg.Q -> 63L | Reg.L -> 31L in
           not (Int64.equal (Int64.logand c mask) 0L)
         | Some _ | None -> false)
      | _ -> true)

let kills (i : Instr.t) =
  let k = Locset.remove Lmem (defs i) in
  if kills_flags i then k else Locset.remove Lflags k

let live_before p ~live_out =
  let slots = p.Program.slots in
  let n = Array.length slots in
  let result = Array.make n Locset.empty in
  let live = ref live_out in
  for idx = n - 1 downto 0 do
    (match slots.(idx) with
     | Program.Unused -> ()
     | Program.Active i ->
       live := Locset.union (Locset.diff !live (kills i)) (uses i));
    result.(idx) <- !live
  done;
  result

let live_in p ~live_out =
  let before = live_before p ~live_out in
  if Array.length before = 0 then live_out else before.(0)

let is_store (i : Instr.t) =
  has_dst i
  &&
  let n = Array.length i.operands in
  n > 0
  &&
  match i.operands.(n - 1) with
  | Operand.Mem _ -> true
  | _ -> false

let dead_slots p ~live_out =
  let slots = p.Program.slots in
  let n = Array.length slots in
  let dead = Array.make n false in
  (* Live sets *after* each slot: live_before shifted by one. *)
  let before = live_before p ~live_out in
  let after idx = if idx = n - 1 then live_out else before.(idx + 1) in
  for idx = 0 to n - 1 do
    match slots.(idx) with
    | Program.Unused -> ()
    | Program.Active i ->
      if (not (is_store i)) && Locset.disjoint (defs i) (after idx) then
        dead.(idx) <- true
  done;
  dead

let dce p ~live_out =
  let p = Program.copy p in
  let changed = ref true in
  while !changed do
    changed := false;
    let dead = dead_slots p ~live_out in
    Array.iteri
      (fun idx d ->
        if d then begin
          p.Program.slots.(idx) <- Program.Unused;
          changed := true
        end)
      dead
  done;
  p

let loc_to_string = function
  | Lgp r -> Reg.gp_name Reg.Q r
  | Lxmm r -> Reg.xmm_name r
  | Lflags -> "flags"
  | Lmem -> "mem"
