(* Completion time of each instruction = its latency plus the latest
   completion among producers of its inputs.  Memory is modelled as a
   single location: every access depends on the previous access (no
   disambiguation), which is conservative but safe for a cost model. *)

let of_program_detailed (p : Program.t) =
  let instrs = Array.of_list (Program.instrs p) in
  let n = Array.length instrs in
  let finish = Array.make n 0 in
  (* last writer (completion time) per location *)
  let ready : (Liveness.loc, int) Hashtbl.t = Hashtbl.create 32 in
  let path = ref 0 in
  for i = 0 to n - 1 do
    let instr = instrs.(i) in
    let input_ready =
      Liveness.Locset.fold
        (fun loc acc ->
          match Hashtbl.find_opt ready loc with
          | Some t -> Stdlib.max acc t
          | None -> acc)
        (Liveness.uses instr) 0
    in
    (* stores also serialize against earlier loads through Lmem being in
       both uses (loads) and defs (stores) of memory instructions *)
    let t = input_ready + Latency.of_instr instr in
    finish.(i) <- t;
    Liveness.Locset.iter (fun loc -> Hashtbl.replace ready loc t) (Liveness.defs instr);
    if t > !path then path := t
  done;
  (!path, finish)

let of_program p = fst (of_program_detailed p)
