(** Hand-written recursive-descent parser for the textual assembly used
    throughout the paper's listings (AT&T operand order, optional [%] and
    [$] sigils, [disp(base,index,scale)] memory syntax, [#]-comments). *)

type error = {
  line : int;  (** 1-based line number. *)
  message : string;
}

val parse_instr : string -> (Instr.t, string) result
(** Parse one instruction line (no comments). *)

val parse_program : string -> (Program.t, error) result
(** Parse a whole listing: one instruction per line; blank lines and
    [#]-to-end-of-line comments ignored. *)

val parse_program_exn : string -> Program.t
(** Raises [Failure] with a located message. *)
