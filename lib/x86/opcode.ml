type cond =
  | E
  | Ne
  | L
  | Le
  | G
  | Ge
  | B
  | Be
  | A
  | Ae
  | S
  | P

type t =
  | Mov of Reg.w
  | Movabs
  | Lea of Reg.w
  | Add of Reg.w
  | Sub of Reg.w
  | Imul of Reg.w
  | And of Reg.w
  | Or of Reg.w
  | Xor of Reg.w
  | Not of Reg.w
  | Neg of Reg.w
  | Inc of Reg.w
  | Dec of Reg.w
  | Shl of Reg.w
  | Shr of Reg.w
  | Sar of Reg.w
  | Cmp of Reg.w
  | Test of Reg.w
  | Cmov of cond * Reg.w
  | Setcc of cond
  | Movss
  | Movsd
  | Movaps
  | Movups
  | Lddqu
  | Movq
  | Movd
  | Movlhps
  | Movhlps
  | Addss
  | Addsd
  | Subss
  | Subsd
  | Mulss
  | Mulsd
  | Divss
  | Divsd
  | Sqrtss
  | Sqrtsd
  | Minss
  | Minsd
  | Maxss
  | Maxsd
  | Ucomiss
  | Ucomisd
  | Comiss
  | Comisd
  | Andps
  | Andpd
  | Andnps
  | Orps
  | Orpd
  | Xorps
  | Xorpd
  | Pand
  | Por
  | Pxor
  | Paddd
  | Paddq
  | Psubd
  | Psubq
  | Addps
  | Addpd
  | Subps
  | Subpd
  | Mulps
  | Mulpd
  | Divps
  | Divpd
  | Minps
  | Maxps
  | Shufps
  | Pshufd
  | Pshuflw
  | Punpckldq
  | Punpcklqdq
  | Unpcklps
  | Unpcklpd
  | Pslld
  | Psrld
  | Psllq
  | Psrlq
  | Cvtss2sd
  | Cvtsd2ss
  | Cvtsi2sd of Reg.w
  | Cvtsi2ss of Reg.w
  | Cvttsd2si of Reg.w
  | Cvttss2si of Reg.w
  | Cvtsd2si of Reg.w
  | Roundsd
  | Roundss
  | Vaddss
  | Vaddsd
  | Vsubss
  | Vsubsd
  | Vmulss
  | Vmulsd
  | Vdivss
  | Vdivsd
  | Vminss
  | Vminsd
  | Vmaxss
  | Vmaxsd
  | Vsqrtsd
  | Vaddps
  | Vsubps
  | Vmulps
  | Vaddpd
  | Vmulpd
  | Vxorps
  | Vandps
  | Vpshuflw
  | Vunpcklps
  | Vfmadd132sd
  | Vfmadd213sd
  | Vfmadd231sd
  | Vfmadd132ss
  | Vfmadd213ss
  | Vfmadd231ss
  | Vfnmadd213sd
  | Vfnmadd231sd
  | Vfmsub213sd

let cond_to_string = function
  | E -> "e"
  | Ne -> "ne"
  | L -> "l"
  | Le -> "le"
  | G -> "g"
  | Ge -> "ge"
  | B -> "b"
  | Be -> "be"
  | A -> "a"
  | Ae -> "ae"
  | S -> "s"
  | P -> "p"

let all_conds = [ E; Ne; L; Le; G; Ge; B; Be; A; Ae; S; P ]

let w_suffix = function
  | Reg.L -> "l"
  | Reg.Q -> "q"

let to_string = function
  | Mov w -> "mov" ^ w_suffix w
  | Movabs -> "movabs"
  | Lea w -> "lea" ^ w_suffix w
  | Add w -> "add" ^ w_suffix w
  | Sub w -> "sub" ^ w_suffix w
  | Imul w -> "imul" ^ w_suffix w
  | And w -> "and" ^ w_suffix w
  | Or w -> "or" ^ w_suffix w
  | Xor w -> "xor" ^ w_suffix w
  | Not w -> "not" ^ w_suffix w
  | Neg w -> "neg" ^ w_suffix w
  | Inc w -> "inc" ^ w_suffix w
  | Dec w -> "dec" ^ w_suffix w
  | Shl w -> "shl" ^ w_suffix w
  | Shr w -> "shr" ^ w_suffix w
  | Sar w -> "sar" ^ w_suffix w
  | Cmp w -> "cmp" ^ w_suffix w
  | Test w -> "test" ^ w_suffix w
  | Cmov (c, w) -> "cmov" ^ cond_to_string c ^ w_suffix w
  | Setcc c -> "set" ^ cond_to_string c
  | Movss -> "movss"
  | Movsd -> "movsd"
  | Movaps -> "movaps"
  | Movups -> "movups"
  | Lddqu -> "lddqu"
  | Movq -> "movq"
  | Movd -> "movd"
  | Movlhps -> "movlhps"
  | Movhlps -> "movhlps"
  | Addss -> "addss"
  | Addsd -> "addsd"
  | Subss -> "subss"
  | Subsd -> "subsd"
  | Mulss -> "mulss"
  | Mulsd -> "mulsd"
  | Divss -> "divss"
  | Divsd -> "divsd"
  | Sqrtss -> "sqrtss"
  | Sqrtsd -> "sqrtsd"
  | Minss -> "minss"
  | Minsd -> "minsd"
  | Maxss -> "maxss"
  | Maxsd -> "maxsd"
  | Ucomiss -> "ucomiss"
  | Ucomisd -> "ucomisd"
  | Comiss -> "comiss"
  | Comisd -> "comisd"
  | Andps -> "andps"
  | Andpd -> "andpd"
  | Andnps -> "andnps"
  | Orps -> "orps"
  | Orpd -> "orpd"
  | Xorps -> "xorps"
  | Xorpd -> "xorpd"
  | Pand -> "pand"
  | Por -> "por"
  | Pxor -> "pxor"
  | Paddd -> "paddd"
  | Paddq -> "paddq"
  | Psubd -> "psubd"
  | Psubq -> "psubq"
  | Addps -> "addps"
  | Addpd -> "addpd"
  | Subps -> "subps"
  | Subpd -> "subpd"
  | Mulps -> "mulps"
  | Mulpd -> "mulpd"
  | Divps -> "divps"
  | Divpd -> "divpd"
  | Minps -> "minps"
  | Maxps -> "maxps"
  | Shufps -> "shufps"
  | Pshufd -> "pshufd"
  | Pshuflw -> "pshuflw"
  | Punpckldq -> "punpckldq"
  | Punpcklqdq -> "punpcklqdq"
  | Unpcklps -> "unpcklps"
  | Unpcklpd -> "unpcklpd"
  | Pslld -> "pslld"
  | Psrld -> "psrld"
  | Psllq -> "psllq"
  | Psrlq -> "psrlq"
  | Cvtss2sd -> "cvtss2sd"
  | Cvtsd2ss -> "cvtsd2ss"
  | Cvtsi2sd w -> "cvtsi2sd" ^ w_suffix w
  | Cvtsi2ss w -> "cvtsi2ss" ^ w_suffix w
  | Cvttsd2si w -> "cvttsd2si" ^ w_suffix w
  | Cvttss2si w -> "cvttss2si" ^ w_suffix w
  | Cvtsd2si w -> "cvtsd2si" ^ w_suffix w
  | Roundsd -> "roundsd"
  | Roundss -> "roundss"
  | Vaddss -> "vaddss"
  | Vaddsd -> "vaddsd"
  | Vsubss -> "vsubss"
  | Vsubsd -> "vsubsd"
  | Vmulss -> "vmulss"
  | Vmulsd -> "vmulsd"
  | Vdivss -> "vdivss"
  | Vdivsd -> "vdivsd"
  | Vminss -> "vminss"
  | Vminsd -> "vminsd"
  | Vmaxss -> "vmaxss"
  | Vmaxsd -> "vmaxsd"
  | Vsqrtsd -> "vsqrtsd"
  | Vaddps -> "vaddps"
  | Vsubps -> "vsubps"
  | Vmulps -> "vmulps"
  | Vaddpd -> "vaddpd"
  | Vmulpd -> "vmulpd"
  | Vxorps -> "vxorps"
  | Vandps -> "vandps"
  | Vpshuflw -> "vpshuflw"
  | Vunpcklps -> "vunpcklps"
  | Vfmadd132sd -> "vfmadd132sd"
  | Vfmadd213sd -> "vfmadd213sd"
  | Vfmadd231sd -> "vfmadd231sd"
  | Vfmadd132ss -> "vfmadd132ss"
  | Vfmadd213ss -> "vfmadd213ss"
  | Vfmadd231ss -> "vfmadd231ss"
  | Vfnmadd213sd -> "vfnmadd213sd"
  | Vfnmadd231sd -> "vfnmadd231sd"
  | Vfmsub213sd -> "vfmsub213sd"

let widths = [ Reg.L; Reg.Q ]

let all =
  let with_w f = List.map f widths in
  List.concat
    [
      with_w (fun w -> Mov w);
      [ Movabs ];
      with_w (fun w -> Lea w);
      with_w (fun w -> Add w);
      with_w (fun w -> Sub w);
      with_w (fun w -> Imul w);
      with_w (fun w -> And w);
      with_w (fun w -> Or w);
      with_w (fun w -> Xor w);
      with_w (fun w -> Not w);
      with_w (fun w -> Neg w);
      with_w (fun w -> Inc w);
      with_w (fun w -> Dec w);
      with_w (fun w -> Shl w);
      with_w (fun w -> Shr w);
      with_w (fun w -> Sar w);
      with_w (fun w -> Cmp w);
      with_w (fun w -> Test w);
      List.concat_map (fun c -> with_w (fun w -> Cmov (c, w))) all_conds;
      List.map (fun c -> Setcc c) all_conds;
      [ Movss; Movsd; Movaps; Movups; Lddqu; Movq; Movd; Movlhps; Movhlps ];
      [ Addss; Addsd; Subss; Subsd; Mulss; Mulsd; Divss; Divsd ];
      [ Sqrtss; Sqrtsd; Minss; Minsd; Maxss; Maxsd ];
      [ Ucomiss; Ucomisd; Comiss; Comisd ];
      [ Andps; Andpd; Andnps; Orps; Orpd; Xorps; Xorpd; Pand; Por; Pxor ];
      [ Paddd; Paddq; Psubd; Psubq ];
      [ Addps; Addpd; Subps; Subpd; Mulps; Mulpd; Divps; Divpd; Minps; Maxps ];
      [ Shufps; Pshufd; Pshuflw; Punpckldq; Punpcklqdq; Unpcklps; Unpcklpd ];
      [ Pslld; Psrld; Psllq; Psrlq ];
      [ Cvtss2sd; Cvtsd2ss ];
      with_w (fun w -> Cvtsi2sd w);
      with_w (fun w -> Cvtsi2ss w);
      with_w (fun w -> Cvttsd2si w);
      with_w (fun w -> Cvttss2si w);
      with_w (fun w -> Cvtsd2si w);
      [ Roundsd; Roundss ];
      [ Vaddss; Vaddsd; Vsubss; Vsubsd; Vmulss; Vmulsd; Vdivss; Vdivsd ];
      [ Vminss; Vminsd; Vmaxss; Vmaxsd; Vsqrtsd ];
      [ Vaddps; Vsubps; Vmulps; Vaddpd; Vmulpd; Vxorps; Vandps ];
      [ Vpshuflw; Vunpcklps ];
      [ Vfmadd132sd; Vfmadd213sd; Vfmadd231sd ];
      [ Vfmadd132ss; Vfmadd213ss; Vfmadd231ss ];
      [ Vfnmadd213sd; Vfnmadd231sd; Vfmsub213sd ];
    ]

let by_name = Hashtbl.create 257

let () = List.iter (fun op -> Hashtbl.add by_name (to_string op) op) all

let all_of_string s = Hashtbl.find_all by_name s

let of_string s =
  match all_of_string s with
  | [] -> None
  | op :: _ -> Some op

let equal a b = Stdlib.compare a b = 0
let compare = Stdlib.compare
let pp ppf op = Format.pp_print_string ppf (to_string op)

let is_avx = function
  | Vaddss | Vaddsd | Vsubss | Vsubsd | Vmulss | Vmulsd | Vdivss | Vdivsd
  | Vminss | Vminsd | Vmaxss | Vmaxsd | Vsqrtsd | Vaddps | Vsubps | Vmulps
  | Vaddpd | Vmulpd | Vxorps | Vandps | Vpshuflw | Vunpcklps | Vfmadd132sd
  | Vfmadd213sd | Vfmadd231sd | Vfmadd132ss | Vfmadd213ss | Vfmadd231ss
  | Vfnmadd213sd | Vfnmadd231sd | Vfmsub213sd ->
    true
  | _ -> false

let is_sse_scalar_f64 = function
  | Addsd | Subsd | Mulsd | Divsd | Sqrtsd | Minsd | Maxsd | Vaddsd | Vsubsd
  | Vmulsd | Vdivsd | Vminsd | Vmaxsd | Vsqrtsd | Vfmadd132sd | Vfmadd213sd
  | Vfmadd231sd | Vfnmadd213sd | Vfnmadd231sd | Vfmsub213sd ->
    true
  | _ -> false

let is_sse_scalar_f32 = function
  | Addss | Subss | Mulss | Divss | Sqrtss | Minss | Maxss | Vaddss | Vsubss
  | Vmulss | Vdivss | Vminss | Vmaxss | Vfmadd132ss | Vfmadd213ss
  | Vfmadd231ss ->
    true
  | _ -> false
