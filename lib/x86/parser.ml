type error = {
  line : int;
  message : string;
}

let strip_comment s =
  match String.index_opt s '#' with
  | None -> s
  | Some i -> String.sub s 0 i

let is_space c = c = ' ' || c = '\t' || c = '\r'

let trim = String.trim

let split_operands s =
  (* Operands are comma separated; commas inside parentheses belong to
     memory operands. *)
  let out = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      | _ -> Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 || !out <> [] then
    out := Buffer.contents buf :: !out;
  List.rev_map trim !out |> List.filter (fun s -> String.length s > 0)

let strip_sigil prefix s =
  if String.length s > 0 && s.[0] = prefix then
    String.sub s 1 (String.length s - 1)
  else s

let parse_int64 s =
  let s = strip_sigil '$' s in
  match Int64.of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad immediate %S" s)

let parse_reg s =
  let s = strip_sigil '%' s in
  match Reg.xmm_of_name s with
  | Some x -> Ok (Operand.Xmm x)
  | None ->
    (match Reg.gp_of_name s with
     | Some (_, r) -> Ok (Operand.Gp r)
     | None ->
       (match Reg.gp8_of_name s with
        | Some r -> Ok (Operand.Gp r)
        | None -> Error (Printf.sprintf "unknown register %S" s)))

let parse_base_reg s =
  let s = strip_sigil '%' s in
  match Reg.gp_of_name s with
  | Some (_, r) -> Ok r
  | None -> Error (Printf.sprintf "unknown base register %S" s)

let parse_mem s =
  match String.index_opt s '(' with
  | None -> Error "expected memory operand"
  | Some open_i ->
    if s.[String.length s - 1] <> ')' then Error "unterminated memory operand"
    else begin
      let disp_str = trim (String.sub s 0 open_i) in
      let inner = String.sub s (open_i + 1) (String.length s - open_i - 2) in
      let disp =
        if String.length disp_str = 0 then Ok 0
        else
          match int_of_string_opt disp_str with
          | Some d -> Ok d
          | None -> Error (Printf.sprintf "bad displacement %S" disp_str)
      in
      match disp with
      | Error _ as e -> e |> Result.map (fun _ -> Operand.Imm 0L)
      | Ok disp ->
        let parts = String.split_on_char ',' inner |> List.map trim in
        (match parts with
         | [ base ] ->
           Result.map
             (fun b -> Operand.Mem { base = Some b; index = None; disp })
             (parse_base_reg base)
         | [ base; index ] ->
           Result.bind (parse_base_reg base) (fun b ->
               Result.map
                 (fun i ->
                   Operand.Mem { base = Some b; index = Some (i, 1); disp })
                 (parse_base_reg index))
         | [ base; index; scale ] ->
           Result.bind (parse_base_reg base) (fun b ->
               Result.bind (parse_base_reg index) (fun i ->
                   match int_of_string_opt scale with
                   | Some s when s = 1 || s = 2 || s = 4 || s = 8 ->
                     Ok (Operand.Mem { base = Some b; index = Some (i, s); disp })
                   | Some _ | None ->
                     Error (Printf.sprintf "bad scale %S" scale)))
         | [] | _ :: _ :: _ :: _ :: _ -> Error "bad memory operand")
    end

let parse_operand s =
  if String.length s = 0 then Error "empty operand"
  else if String.contains s '(' then parse_mem s
  else if s.[0] = '$' || s.[0] = '-' || (s.[0] >= '0' && s.[0] <= '9') then
    Result.map (fun v -> Operand.Imm v) (parse_int64 s)
  else parse_reg s

let rec result_all = function
  | [] -> Ok []
  | Error e :: _ -> Error e
  | Ok x :: rest -> Result.map (fun xs -> x :: xs) (result_all rest)

let parse_instr line =
  let line = trim (strip_comment line) in
  let mnemonic, rest =
    match String.index_opt line ' ' with
    | None ->
      (match String.index_opt line '\t' with
       | None -> (line, "")
       | Some i ->
         (String.sub line 0 i, String.sub line i (String.length line - i)))
    | Some i -> (String.sub line 0 i, String.sub line i (String.length line - i))
  in
  let mnemonic = trim mnemonic in
  if String.exists (fun c -> is_space c) mnemonic then
    Error "internal: mnemonic contains spaces"
  else
    match Opcode.all_of_string mnemonic with
    | [] -> Error (Printf.sprintf "unknown mnemonic %S" mnemonic)
    | candidates ->
      Result.bind (result_all (List.map parse_operand (split_operands rest)))
        (fun operands ->
          let operands = Array.of_list operands in
          let fits =
            List.find_opt
              (fun op -> Instr.is_well_formed (Instr.make_unchecked op operands))
              candidates
          in
          match fits with
          | Some op -> Ok (Instr.make_unchecked op operands)
          | None ->
            Error
              (Printf.sprintf "operands fit no shape of %s" mnemonic))

let parse_program text =
  let lines = String.split_on_char '\n' text in
  let rec go acc line_no = function
    | [] -> Ok (Program.of_instrs (List.rev acc))
    | line :: rest ->
      let stripped = trim (strip_comment line) in
      if String.length stripped = 0 then go acc (line_no + 1) rest
      else
        (match parse_instr stripped with
         | Ok i -> go (i :: acc) (line_no + 1) rest
         | Error message -> Error { line = line_no; message })
  in
  go [] 1 lines

let parse_program_exn text =
  match parse_program text with
  | Ok p -> p
  | Error { line; message } ->
    failwith (Printf.sprintf "parse error at line %d: %s" line message)
