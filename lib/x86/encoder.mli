(** Binary machine-code emission for the modelled subset.

    Produces genuine x86-64 encodings (legacy prefixes, REX, ModRM, SIB,
    2- and 3-byte VEX) for every opcode in {!Opcode.t}.  This is the
    "JIT assembler" part of the paper's engineering contribution: the
    bytes are tested against known-good encodings, round-tripped through
    {!Decoder}, and — under [--engine=native] — executed as real machine
    code by {!Sandbox.Native}'s guarded worker process. *)

val encode_instr : Instr.t -> (string, string) result
(** Machine-code bytes for one instruction, or a description of why the
    form is not encodable. *)

val encode_program : Program.t -> (string, string) result
(** Concatenation of the active slots' encodings. *)

val hex : string -> string
(** Render bytes as lowercase hex pairs separated by spaces. *)
