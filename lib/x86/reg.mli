(** Register file of the modelled x86-64 subset: the sixteen general-purpose
    registers (with 8/16/32/64-bit views) and the sixteen SSE/AVX [xmm]
    registers. *)

type gp =
  | Rax
  | Rcx
  | Rdx
  | Rbx
  | Rsp
  | Rbp
  | Rsi
  | Rdi
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

type xmm =
  | Xmm0
  | Xmm1
  | Xmm2
  | Xmm3
  | Xmm4
  | Xmm5
  | Xmm6
  | Xmm7
  | Xmm8
  | Xmm9
  | Xmm10
  | Xmm11
  | Xmm12
  | Xmm13
  | Xmm14
  | Xmm15

(** Operand width for general-purpose operations: 32-bit ([L]) or 64-bit
    ([Q]).  The 8/16-bit views exist only for printing [set__]-style
    destinations. *)
type w = L | Q

val gp_index : gp -> int
(** Hardware encoding number (0–15), used by the binary encoder. *)

val xmm_index : xmm -> int

val gp_of_index : int -> gp
val xmm_of_index : int -> xmm

val all_gp : gp list
val all_xmm : xmm list

val gp_name : w -> gp -> string
(** ["rax"], ["eax"], … according to the width. *)

val gp_name8 : gp -> string
(** Low-byte view: ["al"], ["r8b"], … *)

val xmm_name : xmm -> string

val gp_of_name : string -> (w * gp) option
(** Recognizes 32- and 64-bit names. *)

val gp8_of_name : string -> gp option

val xmm_of_name : string -> xmm option

val compare_gp : gp -> gp -> int
val compare_xmm : xmm -> xmm -> int
val equal_gp : gp -> gp -> bool
val equal_xmm : xmm -> xmm -> bool
