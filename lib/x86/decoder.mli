(** Instruction decoder (disassembler) for the modelled subset — the
    inverse of {!Encoder}.

    Decodes legacy prefixes, REX, two- and three-byte VEX, ModRM/SIB
    addressing and immediates back into {!Instr.t} values.  Complete for
    every encoding {!Encoder} emits, which the test suite checks by
    round-tripping random pool instructions and every benchmark kernel. *)

val decode_instr : string -> pos:int -> (Instr.t * int, string) result
(** [decode_instr bytes ~pos] decodes one instruction starting at byte
    offset [pos]; returns the instruction and the offset just past it. *)

val decode_all : string -> (Instr.t list, string) result
(** Decode a whole byte string into an instruction sequence. *)

val disassemble : string -> (string, string) result
(** Decode and pretty-print, one instruction per line. *)
