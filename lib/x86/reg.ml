type gp =
  | Rax
  | Rcx
  | Rdx
  | Rbx
  | Rsp
  | Rbp
  | Rsi
  | Rdi
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

type xmm =
  | Xmm0
  | Xmm1
  | Xmm2
  | Xmm3
  | Xmm4
  | Xmm5
  | Xmm6
  | Xmm7
  | Xmm8
  | Xmm9
  | Xmm10
  | Xmm11
  | Xmm12
  | Xmm13
  | Xmm14
  | Xmm15

type w = L | Q

let gp_index = function
  | Rax -> 0
  | Rcx -> 1
  | Rdx -> 2
  | Rbx -> 3
  | Rsp -> 4
  | Rbp -> 5
  | Rsi -> 6
  | Rdi -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let xmm_index = function
  | Xmm0 -> 0
  | Xmm1 -> 1
  | Xmm2 -> 2
  | Xmm3 -> 3
  | Xmm4 -> 4
  | Xmm5 -> 5
  | Xmm6 -> 6
  | Xmm7 -> 7
  | Xmm8 -> 8
  | Xmm9 -> 9
  | Xmm10 -> 10
  | Xmm11 -> 11
  | Xmm12 -> 12
  | Xmm13 -> 13
  | Xmm14 -> 14
  | Xmm15 -> 15

let all_gp =
  [ Rax; Rcx; Rdx; Rbx; Rsp; Rbp; Rsi; Rdi; R8; R9; R10; R11; R12; R13; R14; R15 ]

let all_xmm =
  [ Xmm0; Xmm1; Xmm2; Xmm3; Xmm4; Xmm5; Xmm6; Xmm7;
    Xmm8; Xmm9; Xmm10; Xmm11; Xmm12; Xmm13; Xmm14; Xmm15 ]

let gp_of_index i =
  match List.nth_opt all_gp i with
  | Some r -> r
  | None -> invalid_arg "Reg.gp_of_index"

let xmm_of_index i =
  match List.nth_opt all_xmm i with
  | Some r -> r
  | None -> invalid_arg "Reg.xmm_of_index"

let gp_name64 = function
  | Rax -> "rax"
  | Rcx -> "rcx"
  | Rdx -> "rdx"
  | Rbx -> "rbx"
  | Rsp -> "rsp"
  | Rbp -> "rbp"
  | Rsi -> "rsi"
  | Rdi -> "rdi"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let gp_name32 = function
  | Rax -> "eax"
  | Rcx -> "ecx"
  | Rdx -> "edx"
  | Rbx -> "ebx"
  | Rsp -> "esp"
  | Rbp -> "ebp"
  | Rsi -> "esi"
  | Rdi -> "edi"
  | R8 -> "r8d"
  | R9 -> "r9d"
  | R10 -> "r10d"
  | R11 -> "r11d"
  | R12 -> "r12d"
  | R13 -> "r13d"
  | R14 -> "r14d"
  | R15 -> "r15d"

let gp_name8 = function
  | Rax -> "al"
  | Rcx -> "cl"
  | Rdx -> "dl"
  | Rbx -> "bl"
  | Rsp -> "spl"
  | Rbp -> "bpl"
  | Rsi -> "sil"
  | Rdi -> "dil"
  | R8 -> "r8b"
  | R9 -> "r9b"
  | R10 -> "r10b"
  | R11 -> "r11b"
  | R12 -> "r12b"
  | R13 -> "r13b"
  | R14 -> "r14b"
  | R15 -> "r15b"

let gp_name w r =
  match w with
  | Q -> gp_name64 r
  | L -> gp_name32 r

let xmm_name r = Printf.sprintf "xmm%d" (xmm_index r)

let gp_of_name s =
  let find name_of w =
    List.find_opt (fun r -> String.equal (name_of r) s) all_gp
    |> Option.map (fun r -> (w, r))
  in
  match find gp_name64 Q with
  | Some _ as found -> found
  | None -> find gp_name32 L

let gp8_of_name s = List.find_opt (fun r -> String.equal (gp_name8 r) s) all_gp

let xmm_of_name s =
  List.find_opt (fun r -> String.equal (xmm_name r) s) all_xmm

let compare_gp a b = Int.compare (gp_index a) (gp_index b)
let compare_xmm a b = Int.compare (xmm_index a) (xmm_index b)
let equal_gp a b = compare_gp a b = 0
let equal_xmm a b = compare_xmm a b = 0
