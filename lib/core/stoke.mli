(** STOKE-FP: stochastic optimization of floating-point programs with
    tunable precision — the high-level API.

    Typical use: pick (or define) a {!Sandbox.Spec.t} for a loop-free
    kernel, choose a precision budget η in ULPs, run {!optimize} to search
    for a faster η-correct rewrite, then {!validate} the result with the
    MCMC max-error hunt.  {!precision_sweep} automates the η grid of the
    paper's Figures 4 and 5. *)

val make_tests :
  ?n:int -> seed:int64 -> Sandbox.Spec.t -> Sandbox.Testcase.t array
(** Random test cases drawn from the spec's input ranges ([n] defaults
    to 32). *)

val optimize :
  ?config:Search.Optimizer.config ->
  ?tests:Sandbox.Testcase.t array ->
  ?obs:Obs.Sink.t ->
  ?progress_every:int ->
  eta:Ulp.t ->
  Sandbox.Spec.t ->
  Search.Optimizer.result
(** Optimization mode (k = 1): minimize latency subject to η-correctness on
    the test cases.  [obs] and [progress_every] are forwarded to
    {!Search.Optimizer.run}; telemetry never changes the result. *)

val optimize_parallel :
  ?config:Search.Optimizer.config ->
  ?tests:Sandbox.Testcase.t array ->
  ?domains:int ->
  ?obs:(chain:int -> Obs.Sink.t) ->
  ?orch_obs:Obs.Sink.t ->
  ?progress_every:int ->
  ?checkpoint:string * float ->
  ?resume:Search.Snapshot.t ->
  eta:Ulp.t ->
  Sandbox.Spec.t ->
  Search.Optimizer.result
(** {!optimize} through the {!Search.Parallel} orchestrator: independent
    chains on OCaml domains with the shared control plane (early-stop via
    [config.stop_when], deadlines via [config.deadline_s], crash
    isolation, and checkpoint/resume — see {!Search.Parallel.run} for the
    semantics of [checkpoint] and [resume]).  Tests and params are built
    exactly as {!optimize} builds them, so a snapshot taken here resumes
    here. *)

val validate :
  ?config:Validate.Driver.config ->
  ?obs:Obs.Sink.t ->
  ?engine:Sandbox.Exec.engine ->
  eta:Ulp.t ->
  Sandbox.Spec.t ->
  Program.t ->
  Validate.Driver.verdict
(** MCMC validation of a rewrite against the spec's target (Eq. 15).
    [engine] (default [Compiled]) selects the executor — all engines
    produce bit-identical verdicts ({!Validate.Errfn.create}). *)

val verify :
  ?taylor:Verify.Taylor.config ->
  eta:Ulp.t ->
  Sandbox.Spec.t ->
  Program.t ->
  Verify.Verifier.outcome
(** The static three-tier check (symbolic / Taylor branch-and-bound /
    interval), where applicable.  [taylor] tunes the branch-and-bound
    effort behind the Taylor tier (see {!Verify.Bbound.config}). *)

val static_prover :
  ?taylor:Verify.Taylor.config ->
  Sandbox.Spec.t ->
  eta:Ulp.t ->
  Program.t ->
  Search.Frontier.proof option
(** {!verify} reduced to the frontier's injected-prover shape: [Some]
    when the strongest applicable static tier certifies the rewrite
    within η ([sound_ulps] 0 for a bit-wise proof), [None] otherwise. *)

type refined = {
  rewrite : Program.t option;  (** [None] if every round came up empty *)
  verdict : Validate.Driver.verdict option;
      (** the accepted rewrite's validation (None with the rewrite when the
          round budget ran out before a validated rewrite appeared) *)
  rounds : int;
  counterexamples : int;  (** inputs fed back into the test set *)
}

val optimize_refined :
  ?config:Search.Optimizer.config ->
  ?validation:Validate.Driver.config ->
  ?max_rounds:int ->
  ?tests:int ->
  ?obs:Obs.Sink.t ->
  seed:int64 ->
  eta:Ulp.t ->
  Sandbox.Spec.t ->
  refined
(** The two-tier loop of Eq. 5, run to refinement: search with the fast
    test-case check; when the best rewrite passes, hunt for a
    counterexample with MCMC validation; if one is found with error
    exceeding η, add it to the test set and search again (up to
    [max_rounds], default 4).  Returns the first rewrite validation fails
    to refute.  This is how test-case-driven optimizations become
    trustworthy without formal verification.

    [obs] receives the interleaved search and validation streams, plus a
    [refine_round] event opening each round and a [counterexample] event
    for every input fed back into the test set. *)

type sweep_point = {
  eta : Ulp.t;
  rewrite : Program.t;
  loc : int;
  latency : int;
  speedup : float;  (** target latency / rewrite latency *)
  validated_err : Ulp.t option;  (** [None] when validation was skipped *)
}

val default_etas : Ulp.t list
(** The paper's grid: η = 10^0, 10^2, …, 10^18. *)

val frontier :
  ?config:Search.Optimizer.config ->
  ?validation:Validate.Driver.config ->
  ?validate_results:bool ->
  ?etas:Ulp.t list ->
  ?tests:int ->
  ?warm:bool ->
  ?warm_frac:float ->
  ?max_demotions:int ->
  ?sweep_back:bool ->
  ?sound_promote:bool ->
  ?taylor:Verify.Taylor.config ->
  ?obs:Obs.Sink.t ->
  ?checkpoint:string ->
  ?resume:Search.Frontier.snapshot ->
  seed:int64 ->
  Sandbox.Spec.t ->
  Search.Frontier.result
(** The whole speedup-vs-η curve in one run ({!Search.Frontier.run} wired
    to real validation).  With [warm] (default), the η grid is walked
    tight-to-loose, each point's chain seeded from the neighbouring η's
    winner ([warm_frac] of [config.proposals] per warm point; the first
    point gets the full budget), and each candidate is checked by the
    {e incremental} MCMC validator ({!Validate.Driver.Incremental}) —
    a candidate whose error clears η is demoted on the spot, its
    counterexample joins the test set, and search resumes from the
    frontier (up to [max_demotions] rounds).  [validate_results] defaults
    to [true] here (the curve's whole point is per-η validated error);
    pass [false] for a search-only curve.  With [warm = false] every
    point runs cold with the full budget and the one-shot validator —
    winners bit-identical to {!precision_sweep}.  With [sound_promote]
    (default false) the {!static_prover} runs before every validation: a
    candidate whose sound static bound is ≤ η is promoted without
    spending any MCMC budget (a [sound_promotion] telemetry event marks
    each one, and the result counts them in [promotions]); [taylor]
    tunes the prover's branch-and-bound effort.  Promotion changes the
    snapshot fingerprint, so promotion-off runs keep reading historical
    checkpoints.  [checkpoint]/[resume] persist the walk across
    interruptions (see {!Search.Frontier.snapshot}). *)

val precision_sweep :
  ?config:Search.Optimizer.config ->
  ?validate_results:bool ->
  ?etas:Ulp.t list ->
  ?tests:int ->
  ?obs:Obs.Sink.t ->
  seed:int64 ->
  Sandbox.Spec.t ->
  sweep_point list
(** One search per η (Figures 4(a–c) and 5(a)).  When the search finds no
    η-correct rewrite better than the target, the point reports the target
    itself (speedup 1.0).  [obs] receives each search's stream followed
    by a [sweep_point] summary event per η.

    Since the frontier landed this is a thin wrapper over
    {!Search.Frontier.run}'s cold mode: per-η winners are bit-identical
    to the historical per-point implementation (same test set, same
    per-point search, same fallback rule, same one-shot validation). *)

val error_curve :
  Sandbox.Spec.t -> Program.t -> inputs:float array -> Ulp.t array
(** err(R; T, x) over a 1-D input grid (Figures 4(d–f), 5(b)); the spec
    must have arity 1. *)
