(* Tests are drawn uniformly from the input ranges, as STOKE draws its
   test cases from program runs.  Deliberately no oversampling of range
   corners: near output zeros (sin at ±π) the ULP error of any
   reduced-precision rewrite explodes, and the paper's own Figure 4(d)
   error curves show those spikes exceeding the generating η — a test-set
   artifact the validation phase is designed to expose. *)
let make_tests ?(n = 32) ~seed spec =
  let g = Rng.Xoshiro256.create seed in
  Array.init n (fun _ -> Sandbox.Spec.random_testcase g spec)

let optimize ?config ?tests ?obs ?progress_every ~eta spec =
  let config =
    match config with
    | Some c -> c
    | None -> Search.Optimizer.default_config
  in
  let tests =
    match tests with
    | Some t -> t
    | None -> make_tests ~seed:(Int64.add config.Search.Optimizer.seed 100L) spec
  in
  let params = Search.Cost.default_params ~eta in
  let ctx =
    Search.Cost.create ~use_cache:config.Search.Optimizer.prune
      ~engine:config.Search.Optimizer.engine spec params tests
  in
  Search.Optimizer.run ?obs ?progress_every ctx config

let optimize_parallel ?config ?tests ?domains ?obs ?orch_obs ?progress_every
    ?checkpoint ?resume ~eta spec =
  let config =
    match config with
    | Some c -> c
    | None -> Search.Optimizer.default_config
  in
  let tests =
    match tests with
    | Some t -> t
    | None -> make_tests ~seed:(Int64.add config.Search.Optimizer.seed 100L) spec
  in
  let params = Search.Cost.default_params ~eta in
  Search.Parallel.run ?domains ?obs ?orch_obs ?progress_every ?checkpoint
    ?resume ~spec ~params ~tests ~config ()

let validate ?config ?obs ~eta spec rewrite =
  let errfn = Validate.Errfn.create spec ~rewrite in
  Validate.Driver.run ?obs ?config ~eta errfn

let verify ~eta spec rewrite = Verify.Verifier.check spec ~rewrite ~eta

type refined = {
  rewrite : Program.t option;
  verdict : Validate.Driver.verdict option;
  rounds : int;
  counterexamples : int;
}

let optimize_refined ?config ?validation ?(max_rounds = 4) ?(tests = 32)
    ?(obs = Obs.Sink.null) ~seed ~eta spec =
  let config =
    match config with
    | Some c -> c
    | None -> Search.Optimizer.default_config
  in
  let validation =
    match validation with
    | Some v -> v
    | None ->
      {
        Validate.Driver.default_config with
        Validate.Driver.max_proposals = 100_000;
        min_samples = 20_000;
        check_every = 20_000;
      }
  in
  let test_list = ref (Array.to_list (make_tests ~n:tests ~seed spec)) in
  let counterexamples = ref 0 in
  let rec go round =
    if Obs.Sink.enabled obs then
      Obs.Sink.emit obs "refine_round"
        [
          ("round", Obs.Json.Int round);
          ("tests", Obs.Json.Int (List.length !test_list));
        ];
    let params = Search.Cost.default_params ~eta in
    let ctx =
      Search.Cost.create ~use_cache:config.Search.Optimizer.prune
        ~engine:config.Search.Optimizer.engine spec params
        (Array.of_list !test_list)
    in
    let result =
      Search.Optimizer.run ~obs ctx
        { config with Search.Optimizer.seed = Int64.add config.Search.Optimizer.seed (Int64.of_int round) }
    in
    match result.Search.Optimizer.best_correct with
    | None -> { rewrite = None; verdict = None; rounds = round; counterexamples = !counterexamples }
    | Some rewrite ->
      if Program.equal rewrite spec.Sandbox.Spec.program then
        (* nothing better than the target: trivially valid *)
        { rewrite = Some rewrite; verdict = None; rounds = round;
          counterexamples = !counterexamples }
      else begin
        let errfn = Validate.Errfn.create spec ~rewrite in
        let v = Validate.Driver.run ~obs ~config:validation ~eta errfn in
        if Ulp.compare v.Validate.Driver.max_err eta <= 0 then
          { rewrite = Some rewrite; verdict = Some v; rounds = round;
            counterexamples = !counterexamples }
        else if round >= max_rounds then
          { rewrite = None; verdict = Some v; rounds = round;
            counterexamples = !counterexamples }
        else begin
          (* feed the counterexample back into the fast check's test set *)
          incr counterexamples;
          if Obs.Sink.enabled obs then
            Obs.Sink.emit obs "counterexample"
              [
                ("round", Obs.Json.Int round);
                ( "err_ulps",
                  Obs.Json.Float (Ulp.to_float v.Validate.Driver.max_err) );
                ( "input",
                  Obs.Json.List
                    (Array.to_list
                       (Array.map
                          (fun x -> Obs.Json.Float x)
                          v.Validate.Driver.max_err_input)) );
              ];
          test_list :=
            Sandbox.Spec.testcase_of_floats spec v.Validate.Driver.max_err_input
            :: !test_list;
          go (round + 1)
        end
      end
  in
  go 1

type sweep_point = {
  eta : Ulp.t;
  rewrite : Program.t;
  loc : int;
  latency : int;
  speedup : float;
  validated_err : Ulp.t option;
}

let default_etas =
  List.init 10 (fun i -> Ulp.of_float (Float.pow 10. (float_of_int (2 * i))))

let quick_validation_config =
  {
    Validate.Driver.default_config with
    Validate.Driver.max_proposals = 200_000;
    min_samples = 20_000;
    check_every = 20_000;
  }

let precision_sweep ?config ?(validate_results = false) ?etas ?(tests = 32)
    ?(obs = Obs.Sink.null) ~seed spec =
  let etas =
    match etas with
    | Some e -> e
    | None -> default_etas
  in
  let config =
    match config with
    | Some c -> c
    | None -> Search.Optimizer.default_config
  in
  let test_array = make_tests ~n:tests ~seed spec in
  let target = spec.Sandbox.Spec.program in
  let target_latency = Latency.of_program target in
  List.map
    (fun eta ->
      let result = optimize ~config ~tests:test_array ~obs ~eta spec in
      let rewrite =
        match result.Search.Optimizer.best_correct with
        | Some p -> p
        | None -> target
      in
      let latency = Latency.of_program rewrite in
      let rewrite, latency =
        if latency <= target_latency then (rewrite, latency)
        else (target, target_latency)
      in
      let validated_err =
        if validate_results then begin
          let v =
            validate ~config:quick_validation_config ~obs ~eta spec rewrite
          in
          Some v.Validate.Driver.max_err
        end
        else None
      in
      let point =
        {
          eta;
          rewrite;
          loc = Program.length rewrite;
          latency;
          speedup = float_of_int target_latency /. float_of_int (Stdlib.max 1 latency);
          validated_err;
        }
      in
      if Obs.Sink.enabled obs then
        Obs.Sink.emit obs "sweep_point"
          [
            ("eta", Obs.Json.String (Ulp.to_string eta));
            ("loc", Obs.Json.Int point.loc);
            ("latency", Obs.Json.Int point.latency);
            ("speedup", Obs.Json.Float point.speedup);
            ( "validated_err_ulps",
              match point.validated_err with
              | None -> Obs.Json.Null
              | Some e -> Obs.Json.Float (Ulp.to_float e) );
          ];
      point)
    etas

let error_curve spec rewrite ~inputs =
  if Sandbox.Spec.arity spec <> 1 then
    invalid_arg "Stoke.error_curve: spec must take exactly one float input";
  let errfn = Validate.Errfn.create spec ~rewrite in
  Array.map (fun x -> Validate.Errfn.eval_ulp errfn [| x |]) inputs
