(* Tests are drawn uniformly from the input ranges, as STOKE draws its
   test cases from program runs.  Deliberately no oversampling of range
   corners: near output zeros (sin at ±π) the ULP error of any
   reduced-precision rewrite explodes, and the paper's own Figure 4(d)
   error curves show those spikes exceeding the generating η — a test-set
   artifact the validation phase is designed to expose. *)
let make_tests ?(n = 32) ~seed spec =
  let g = Rng.Xoshiro256.create seed in
  Array.init n (fun _ -> Sandbox.Spec.random_testcase g spec)

let optimize ?config ?tests ?obs ?progress_every ~eta spec =
  let config =
    match config with
    | Some c -> c
    | None -> Search.Optimizer.default_config
  in
  let tests =
    match tests with
    | Some t -> t
    | None -> make_tests ~seed:(Int64.add config.Search.Optimizer.seed 100L) spec
  in
  let params = Search.Cost.default_params ~eta in
  let ctx =
    Search.Cost.create ~use_cache:config.Search.Optimizer.prune
      ~engine:config.Search.Optimizer.engine spec params tests
  in
  Search.Optimizer.run ?obs ?progress_every ctx config

let optimize_parallel ?config ?tests ?domains ?obs ?orch_obs ?progress_every
    ?checkpoint ?resume ~eta spec =
  let config =
    match config with
    | Some c -> c
    | None -> Search.Optimizer.default_config
  in
  let tests =
    match tests with
    | Some t -> t
    | None -> make_tests ~seed:(Int64.add config.Search.Optimizer.seed 100L) spec
  in
  let params = Search.Cost.default_params ~eta in
  Search.Parallel.run ?domains ?obs ?orch_obs ?progress_every ?checkpoint
    ?resume ~spec ~params ~tests ~config ()

let validate ?config ?obs ?engine ~eta spec rewrite =
  let errfn = Validate.Errfn.create ?engine spec ~rewrite in
  Validate.Driver.run ?obs ?config ~eta errfn

let verify ?taylor ~eta spec rewrite =
  Verify.Verifier.check ?taylor spec ~rewrite ~eta

(* The frontier's injected prover (same downward-dependency pattern as the
   validators): a static proof that the rewrite is η-close promotes the
   point without any MCMC budget. *)
let static_prover ?taylor spec ~eta rewrite =
  let outcome = Verify.Verifier.check ?taylor spec ~rewrite ~eta in
  match Verify.Verifier.sound_ulps outcome with
  | Some s when Verify.Verifier.verified_within outcome eta ->
    let boxes, depth =
      match outcome with
      | Verify.Verifier.Taylor_bound a ->
        (a.Verify.Taylor.boxes_explored, a.Verify.Taylor.depth)
      | _ -> (0, 0)
    in
    Some { Search.Frontier.sound_ulps = s; boxes_explored = boxes; depth }
  | _ -> None

type refined = {
  rewrite : Program.t option;
  verdict : Validate.Driver.verdict option;
  rounds : int;
  counterexamples : int;
}

let optimize_refined ?config ?validation ?(max_rounds = 4) ?(tests = 32)
    ?(obs = Obs.Sink.null) ~seed ~eta spec =
  let config =
    match config with
    | Some c -> c
    | None -> Search.Optimizer.default_config
  in
  let validation =
    match validation with
    | Some v -> v
    | None ->
      {
        Validate.Driver.default_config with
        Validate.Driver.max_proposals = 100_000;
        min_samples = 20_000;
        check_every = 20_000;
      }
  in
  let test_list = ref (Array.to_list (make_tests ~n:tests ~seed spec)) in
  let counterexamples = ref 0 in
  let rec go round =
    if Obs.Sink.enabled obs then
      Obs.Sink.emit obs "refine_round"
        [
          ("round", Obs.Json.Int round);
          ("tests", Obs.Json.Int (List.length !test_list));
        ];
    let params = Search.Cost.default_params ~eta in
    let ctx =
      Search.Cost.create ~use_cache:config.Search.Optimizer.prune
        ~engine:config.Search.Optimizer.engine spec params
        (Array.of_list !test_list)
    in
    let result =
      Search.Optimizer.run ~obs ctx
        { config with Search.Optimizer.seed = Int64.add config.Search.Optimizer.seed (Int64.of_int round) }
    in
    match result.Search.Optimizer.best_correct with
    | None -> { rewrite = None; verdict = None; rounds = round; counterexamples = !counterexamples }
    | Some rewrite ->
      if Program.equal rewrite spec.Sandbox.Spec.program then
        (* nothing better than the target: trivially valid *)
        { rewrite = Some rewrite; verdict = None; rounds = round;
          counterexamples = !counterexamples }
      else begin
        (* validate on the same engine the search ran on *)
        let errfn =
          Validate.Errfn.create ~engine:config.Search.Optimizer.engine spec
            ~rewrite
        in
        let v = Validate.Driver.run ~obs ~config:validation ~eta errfn in
        if Ulp.compare v.Validate.Driver.max_err eta <= 0 then
          { rewrite = Some rewrite; verdict = Some v; rounds = round;
            counterexamples = !counterexamples }
        else if round >= max_rounds then
          { rewrite = None; verdict = Some v; rounds = round;
            counterexamples = !counterexamples }
        else begin
          (* feed the counterexample back into the fast check's test set *)
          incr counterexamples;
          if Obs.Sink.enabled obs then
            Obs.Sink.emit obs "counterexample"
              [
                ("round", Obs.Json.Int round);
                ( "err_ulps",
                  Obs.Json.Float (Ulp.to_float v.Validate.Driver.max_err) );
                ( "input",
                  Obs.Json.List
                    (Array.to_list
                       (Array.map
                          (fun x -> Obs.Json.Float x)
                          v.Validate.Driver.max_err_input)) );
              ];
          test_list :=
            Sandbox.Spec.testcase_of_floats spec v.Validate.Driver.max_err_input
            :: !test_list;
          go (round + 1)
        end
      end
  in
  go 1

type sweep_point = {
  eta : Ulp.t;
  rewrite : Program.t;
  loc : int;
  latency : int;
  speedup : float;
  validated_err : Ulp.t option;
}

let default_etas =
  List.init 10 (fun i -> Ulp.of_float (Float.pow 10. (float_of_int (2 * i))))

let quick_validation_config =
  {
    Validate.Driver.default_config with
    Validate.Driver.max_proposals = 200_000;
    min_samples = 20_000;
    check_every = 20_000;
  }

(* Both frontier validators reduce a Driver verdict to the injected-check
   record the search-side driver understands (lib/search cannot call
   lib/validate itself — dependencies point strictly downward). *)
let check_of_verdict ~eta (v : Validate.Driver.verdict) =
  let refuted = Ulp.compare v.Validate.Driver.max_err eta > 0 in
  {
    Search.Frontier.observed_err = v.Validate.Driver.max_err;
    refuted;
    mixed = v.Validate.Driver.mixed;
    val_iterations = v.Validate.Driver.iterations;
    counterexample =
      (if refuted then Some v.Validate.Driver.max_err_input else None);
  }

(* The historical sweep's validator: one full MCMC hunt per candidate. *)
let cold_validator ?engine ~obs ~validation spec ~eta rewrite =
  let errfn = Validate.Errfn.create ?engine spec ~rewrite in
  check_of_verdict ~eta (Validate.Driver.run ~obs ~config:validation ~eta errfn)

(* The frontier's validator: the incremental session refutes a bad
   candidate the moment its error clears η, so demoted candidates return
   their budget to search instead of waiting for the chain to mix. *)
let incremental_validator ?engine ~obs ~validation spec ~eta rewrite =
  let errfn = Validate.Errfn.create ?engine spec ~rewrite in
  let s =
    Validate.Driver.Incremental.create ~obs ~config:validation ~eta errfn
  in
  let slice = Stdlib.max 1 validation.Validate.Driver.check_every in
  let rec go () =
    match Validate.Driver.Incremental.advance s ~proposals:slice with
    | Validate.Driver.Incremental.Running -> go ()
    | Validate.Driver.Incremental.Refuted | Validate.Driver.Incremental.Mixed
    | Validate.Driver.Incremental.Exhausted ->
      ()
  in
  go ();
  check_of_verdict ~eta (Validate.Driver.Incremental.verdict s)

let frontier ?config ?validation ?(validate_results = true) ?etas
    ?(tests = 32) ?(warm = true) ?(warm_frac = 0.25) ?(max_demotions = 2)
    ?(sweep_back = false) ?(sound_promote = false) ?taylor
    ?(obs = Obs.Sink.null) ?checkpoint ?resume ~seed spec =
  let etas =
    match etas with
    | Some e -> e
    | None -> default_etas
  in
  let config =
    match config with
    | Some c -> c
    | None -> Search.Optimizer.default_config
  in
  let validation =
    match validation with
    | Some v -> v
    | None -> quick_validation_config
  in
  let test_array = make_tests ~n:tests ~seed spec in
  let engine = config.Search.Optimizer.engine in
  let validator =
    if validate_results then
      Some
        (if warm then fun ~eta rewrite ->
           incremental_validator ~engine ~obs ~validation spec ~eta rewrite
         else fun ~eta rewrite ->
           cold_validator ~engine ~obs ~validation spec ~eta rewrite)
    else None
  in
  let prover =
    if sound_promote then
      Some (fun ~eta rewrite -> static_prover ?taylor spec ~eta rewrite)
    else None
  in
  let fcfg =
    { Search.Frontier.search = config; warm; warm_frac; max_demotions;
      sweep_back }
  in
  Search.Frontier.run ~obs ?validator ?prover ?checkpoint ?resume
    ~tests:test_array ~etas fcfg spec

let precision_sweep ?config ?(validate_results = false) ?etas ?(tests = 32)
    ?(obs = Obs.Sink.null) ~seed spec =
  let etas =
    match etas with
    | Some e -> e
    | None -> default_etas
  in
  let config =
    match config with
    | Some c -> c
    | None -> Search.Optimizer.default_config
  in
  let test_array = make_tests ~n:tests ~seed spec in
  let validator =
    if validate_results then
      Some
        (fun ~eta rewrite ->
          cold_validator ~engine:config.Search.Optimizer.engine ~obs
            ~validation:quick_validation_config spec ~eta rewrite)
    else None
  in
  let fcfg =
    {
      Search.Frontier.search = config;
      warm = false;
      warm_frac = 0.25;
      max_demotions = 0;
      sweep_back = false;
    }
  in
  let on_point (p : Search.Frontier.point) =
    if Obs.Sink.enabled obs then
      Obs.Sink.emit obs "sweep_point"
        [
          ("eta", Obs.Json.String (Ulp.to_string p.Search.Frontier.eta));
          ("loc", Obs.Json.Int p.Search.Frontier.loc);
          ("latency", Obs.Json.Int p.Search.Frontier.latency);
          ("speedup", Obs.Json.Float p.Search.Frontier.speedup);
          ( "validated_err_ulps",
            match p.Search.Frontier.validated_err with
            | None -> Obs.Json.Null
            | Some e -> Obs.Json.Float (Ulp.to_float e) );
        ]
  in
  let r =
    Search.Frontier.run ~obs ?validator ~on_point ~tests:test_array ~etas
      fcfg spec
  in
  List.map
    (fun (p : Search.Frontier.point) ->
      {
        eta = p.Search.Frontier.eta;
        rewrite = p.Search.Frontier.rewrite;
        loc = p.Search.Frontier.loc;
        latency = p.Search.Frontier.latency;
        speedup = p.Search.Frontier.speedup;
        validated_err = p.Search.Frontier.validated_err;
      })
    r.Search.Frontier.points

let error_curve spec rewrite ~inputs =
  if Sandbox.Spec.arity spec <> 1 then
    invalid_arg "Stoke.error_curve: spec must take exactly one float input";
  let errfn = Validate.Errfn.create spec ~rewrite in
  Array.map (fun x -> Validate.Errfn.eval_ulp errfn [| x |]) inputs
