open X86

type fault =
  | Segv of string
  | Sigfpe of string
  | Sigill of string

let fault_to_string = function
  | Segv s -> "SIGSEGV: " ^ s
  | Sigfpe s -> "SIGFPE: " ^ s
  | Sigill s -> "SIGILL: " ^ s

let equal_fault a b =
  match a, b with
  | Segv x, Segv y | Sigfpe x, Sigfpe y | Sigill x, Sigill y -> String.equal x y
  | (Segv _ | Sigfpe _ | Sigill _), _ -> false

let eff_addr (m : Machine.t) (mem : Operand.mem) =
  let base =
    match mem.Operand.base with
    | None -> 0L
    | Some r -> Machine.get_gp m r
  in
  let idx =
    match mem.Operand.index with
    | None -> 0L
    | Some (r, s) -> Int64.mul (Machine.get_gp m r) (Int64.of_int s)
  in
  Int64.add (Int64.add base idx) (Int64.of_int mem.Operand.disp)

let ( let* ) = Result.bind

let mem_err f = Error (Segv (Memory.fault_to_string f))

let lift = function
  | Ok v -> Ok v
  | Error f -> mem_err f

(* ----- GP operand access ----- *)

let read_gp_w (m : Machine.t) w r =
  match w with
  | Reg.Q -> Machine.get_gp m r
  | Reg.L -> Machine.get_gp32 m r

let write_gp_w (m : Machine.t) w r v =
  match w with
  | Reg.Q -> Machine.set_gp m r v
  | Reg.L -> Machine.set_gp32 m r v

let width_bytes = function
  | Reg.Q -> 8
  | Reg.L -> 4

(* Read an integer operand of the given GP width (immediates are
   sign-extended as the hardware does for imm32). *)
let read_int (m : Machine.t) w (o : Operand.t) =
  match o with
  | Operand.Gp r -> Ok (read_gp_w m w r)
  | Operand.Imm v ->
    (match w with
     | Reg.Q -> Ok v
     | Reg.L -> Ok (Int64.logand v 0xffff_ffffL))
  | Operand.Mem mem -> lift (Memory.read m.Machine.mem (eff_addr m mem) (width_bytes w))
  | Operand.Xmm _ -> Error (Sigill "xmm operand in integer context")

let write_int (m : Machine.t) w (o : Operand.t) v =
  match o with
  | Operand.Gp r ->
    write_gp_w m w r v;
    Ok ()
  | Operand.Mem mem -> lift (Memory.write m.Machine.mem (eff_addr m mem) (width_bytes w) v)
  | Operand.Imm _ | Operand.Xmm _ -> Error (Sigill "bad integer destination")

(* Sign-extended view for signed flag computation. *)
let signed w v =
  match w with
  | Reg.Q -> v
  | Reg.L -> Int64.of_int32 (Int64.to_int32 v)

let msb w v =
  match w with
  | Reg.Q -> Int64.compare v 0L < 0
  | Reg.L -> Int64.compare (Int64.logand v 0x8000_0000L) 0L <> 0

let trunc w v =
  match w with
  | Reg.Q -> v
  | Reg.L -> Int64.logand v 0xffff_ffffL

let parity v =
  (* PF reflects the low byte only. *)
  let b = Int64.to_int (Int64.logand v 0xffL) in
  let rec pop acc n = if n = 0 then acc else pop (acc + (n land 1)) (n lsr 1) in
  pop 0 b mod 2 = 0

let set_logic_flags (m : Machine.t) w result =
  let f = m.Machine.flags in
  f.cf <- false;
  f.o_f <- false;
  f.zf <- Int64.equal (trunc w result) 0L;
  f.sf <- msb w result;
  f.pf <- parity result

let set_add_flags (m : Machine.t) w a b result =
  let f = m.Machine.flags in
  let a' = trunc w a and b' = trunc w b and r' = trunc w result in
  f.zf <- Int64.equal r' 0L;
  f.sf <- msb w r';
  f.pf <- parity r';
  (* carry: unsigned overflow *)
  f.cf <- Int64.unsigned_compare r' a' < 0 || Int64.unsigned_compare r' b' < 0;
  (match w with
   | Reg.Q -> ()
   | Reg.L -> f.cf <- Int64.unsigned_compare r' a' < 0);
  let sa = msb w a' and sb = msb w b' and sr = msb w r' in
  f.o_f <- sa = sb && sr <> sa

let set_sub_flags (m : Machine.t) w a b result =
  (* a - b *)
  let f = m.Machine.flags in
  let a' = trunc w a and b' = trunc w b and r' = trunc w result in
  f.zf <- Int64.equal r' 0L;
  f.sf <- msb w r';
  f.pf <- parity r';
  f.cf <- Int64.unsigned_compare a' b' < 0;
  let sa = msb w a' and sb = msb w b' and sr = msb w r' in
  f.o_f <- sa <> sb && sr <> sa

let cond_holds (m : Machine.t) (c : Opcode.cond) =
  let f = m.Machine.flags in
  match c with
  | Opcode.E -> f.zf
  | Opcode.Ne -> not f.zf
  | Opcode.L -> f.sf <> f.o_f
  | Opcode.Le -> f.zf || f.sf <> f.o_f
  | Opcode.G -> (not f.zf) && f.sf = f.o_f
  | Opcode.Ge -> f.sf = f.o_f
  | Opcode.B -> f.cf
  | Opcode.Be -> f.cf || f.zf
  | Opcode.A -> (not f.cf) && not f.zf
  | Opcode.Ae -> not f.cf
  | Opcode.S -> f.sf
  | Opcode.P -> f.pf

(* ----- XMM operand access ----- *)

let read_xmm128 (m : Machine.t) ?(aligned = false) (o : Operand.t) =
  match o with
  | Operand.Xmm r -> Ok (Machine.get_xmm m r)
  | Operand.Mem mem -> lift (Memory.read128 ~aligned m.Machine.mem (eff_addr m mem))
  | Operand.Gp _ | Operand.Imm _ -> Error (Sigill "bad 128-bit source")

let read_q (m : Machine.t) (o : Operand.t) =
  match o with
  | Operand.Xmm r -> Ok (Machine.get_xmm_lo m r)
  | Operand.Mem mem -> lift (Memory.read m.Machine.mem (eff_addr m mem) 8)
  | Operand.Gp r -> Ok (Machine.get_gp m r)
  | Operand.Imm _ -> Error (Sigill "immediate in xmm context")

let read_d (m : Machine.t) (o : Operand.t) =
  match o with
  | Operand.Xmm r -> Ok (Int64.logand (Machine.get_xmm_lo m r) 0xffff_ffffL)
  | Operand.Mem mem -> lift (Memory.read m.Machine.mem (eff_addr m mem) 4)
  | Operand.Gp r -> Ok (Machine.get_gp32 m r)
  | Operand.Imm _ -> Error (Sigill "immediate in xmm context")

let read_f64 m o = Result.map Int64.float_of_bits (read_q m o)

let read_f32 m o =
  Result.map (fun bits -> Int32.float_of_bits (Int64.to_int32 bits)) (read_d m o)

let dst_xmm (o : Operand.t) =
  match o with
  | Operand.Xmm r -> Ok r
  | Operand.Gp _ | Operand.Imm _ | Operand.Mem _ -> Error (Sigill "expected xmm destination")

let imm_val (o : Operand.t) =
  match o with
  | Operand.Imm v -> Ok v
  | _ -> Error (Sigill "expected immediate")

(* SSE min/max semantics: when unordered or equal, the result is the second
   source (AT&T first operand). *)
let sse_min_f64 ~dst_old ~src = if dst_old < src then dst_old else src
let sse_max_f64 ~dst_old ~src = if dst_old > src then dst_old else src

(* Round to nearest, ties to even (the default MXCSR mode). *)
let rint_even x =
  if Float.is_nan x || Float.is_integer x then x
  else begin
    let lo = Float.floor x in
    let hi = Float.ceil x in
    let dlo = x -. lo and dhi = hi -. x in
    if dlo < dhi then lo
    else if dhi < dlo then hi
    else if Float.rem lo 2. = 0. then lo
    else hi
  end

(* Float → int64 conversion with the x86 "integer indefinite" result on
   overflow or NaN. *)
let f2i64 x =
  if Float.is_nan x || x >= 0x1p63 || x < -0x1p63 then Int64.min_int
  else Int64.of_float x

let f2i32 x =
  if Float.is_nan x || x >= 0x1p31 || x < -.0x1p31 then 0x8000_0000L
  else Int64.logand (Int64.of_int32 (Int32.of_float x)) 0xffff_ffffL

let dword_of f32 = Int64.logand (Int64.of_int32 (Int32.bits_of_float f32)) 0xffff_ffffL

(* Split / join 32-bit lanes of a 128-bit value. *)
let lanes4 (lo, hi) =
  [| Int64.logand lo 0xffff_ffffL;
     Int64.shift_right_logical lo 32;
     Int64.logand hi 0xffff_ffffL;
     Int64.shift_right_logical hi 32 |]

let join4 l =
  ( Int64.logor (Int64.logand l.(0) 0xffff_ffffL) (Int64.shift_left l.(1) 32),
    Int64.logor (Int64.logand l.(2) 0xffff_ffffL) (Int64.shift_left l.(3) 32) )

let map_lanes4_f32 f a b =
  let la = lanes4 a and lb = lanes4 b in
  let out = Array.make 4 0L in
  for i = 0 to 3 do
    let x = Int32.float_of_bits (Int64.to_int32 la.(i)) in
    let y = Int32.float_of_bits (Int64.to_int32 lb.(i)) in
    out.(i) <- dword_of (f x y)
  done;
  join4 out

let map_lanes2_f64 f (alo, ahi) (blo, bhi) =
  let g x y = Int64.bits_of_float (f (Int64.float_of_bits x) (Int64.float_of_bits y)) in
  (g alo blo, g ahi bhi)

(* ----- flag helpers for ucomis* ----- *)

let set_fp_compare_flags (m : Machine.t) a b =
  let f = m.Machine.flags in
  f.o_f <- false;
  f.sf <- false;
  if Float.is_nan a || Float.is_nan b then begin
    f.zf <- true;
    f.pf <- true;
    f.cf <- true
  end
  else if a < b then begin
    (* AT&T: ucomisd src, dst compares dst against src; callers pass
       (dst, src) as (a, b)?  We pass a = dst value, b = src value:
       dst < src → CF. *)
    f.zf <- false;
    f.pf <- false;
    f.cf <- true
  end
  else if a > b then begin
    f.zf <- false;
    f.pf <- false;
    f.cf <- false
  end
  else begin
    f.zf <- true;
    f.pf <- false;
    f.cf <- false
  end

(* ----- the interpreter ----- *)

let step (m : Machine.t) (i : Instr.t) : (unit, fault) result =
  let ops = i.Instr.operands in
  let n = Array.length ops in
  let src k = ops.(k) in
  let dst () = ops.(n - 1) in
  let scalar_f64 f =
    let* x = read_f64 m (src 0) in
    let* d = dst_xmm (dst ()) in
    let old = Machine.get_f64 m d in
    Machine.set_f64 m d (f ~dst_old:old ~src:x);
    Ok ()
  in
  let scalar_f32 f =
    let* x = read_f32 m (src 0) in
    let* d = dst_xmm (dst ()) in
    let old = Machine.get_f32 m d in
    Machine.set_f32 m d (f ~dst_old:old ~src:x);
    Ok ()
  in
  let packed_bitop f =
    let* s = read_xmm128 m (src 0) in
    let* d = dst_xmm (dst ()) in
    let dlo, dhi = Machine.get_xmm m d in
    let slo, shi = s in
    Machine.set_xmm m d (f dlo slo, f dhi shi);
    Ok ()
  in
  let packed_f32 f =
    let* s = read_xmm128 m (src 0) in
    let* d = dst_xmm (dst ()) in
    let dv = Machine.get_xmm m d in
    Machine.set_xmm m d (map_lanes4_f32 (fun dx sx -> f dx sx) dv s);
    Ok ()
  in
  let packed_f64 f =
    let* s = read_xmm128 m (src 0) in
    let* d = dst_xmm (dst ()) in
    let dv = Machine.get_xmm m d in
    Machine.set_xmm m d (map_lanes2_f64 (fun dx sx -> f dx sx) dv s);
    Ok ()
  in
  let avx3_f64 f =
    (* AT&T: op src2, src1, dst — dst low = f src1 src2, upper copied from
       src1. *)
    let* x2 = read_f64 m (src 0) in
    let* x1 = read_f64 m (src 1) in
    let* d = dst_xmm (dst ()) in
    let* s1 = dst_xmm (src 1) in
    let _, hi1 = Machine.get_xmm m s1 in
    Machine.set_xmm m d (Int64.bits_of_float (f x1 x2), hi1);
    Ok ()
  in
  let avx3_f32 f =
    let* x2 = read_f32 m (src 0) in
    let* x1 = read_f32 m (src 1) in
    let* d = dst_xmm (dst ()) in
    let* s1 = dst_xmm (src 1) in
    let lo1, hi1 = Machine.get_xmm m s1 in
    let res = dword_of (Fp32.round (f x1 x2)) in
    Machine.set_xmm m d
      (Int64.logor (Int64.logand lo1 0xffff_ffff_0000_0000L) res, hi1);
    Ok ()
  in
  let avx3_packed128 f =
    let* s2 = read_xmm128 m (src 0) in
    let* s1 = read_xmm128 m (src 1) in
    let* d = dst_xmm (dst ()) in
    Machine.set_xmm m d (f s1 s2);
    Ok ()
  in
  (* FMA: value roles per the 132/213/231 digit conventions.  AT&T order:
     op src3(ops0), src2(ops1), dst(ops2); Intel dst = xmm1, src2 = xmm2,
     src3 = xmm3/m.  The host fma is correctly rounded. *)
  let fma_f64 pick neg_prod sub_addend =
    let* x3 = read_f64 m (src 0) in
    let* s2 = dst_xmm (src 1) in
    let* d = dst_xmm (dst ()) in
    let x2 = Machine.get_f64 m s2 in
    let x1 = Machine.get_f64 m d in
    let a, b, c = pick x1 x2 x3 in
    let prod_sign = if neg_prod then -1.0 else 1.0 in
    let addend = if sub_addend then -.c else c in
    Machine.set_f64 m d (Float.fma (prod_sign *. a) b addend);
    Ok ()
  in
  let fma_f32 pick =
    let* x3 = read_f32 m (src 0) in
    let* s2 = dst_xmm (src 1) in
    let* d = dst_xmm (dst ()) in
    let x2 = Machine.get_f32 m s2 in
    let x1 = Machine.get_f32 m d in
    let a, b, c = pick x1 x2 x3 in
    Machine.set_f32 m d (Fp32.round (Float.fma a b c));
    Ok ()
  in
  match i.Instr.op with
  (* ----- GP ----- *)
  | Opcode.Mov w ->
    let* v = read_int m w (src 0) in
    write_int m w (dst ()) v
  | Opcode.Movabs ->
    let* v = imm_val (src 0) in
    write_int m Reg.Q (dst ()) v
  | Opcode.Lea w ->
    (match src 0 with
     | Operand.Mem mem -> write_int m w (dst ()) (eff_addr m mem)
     | _ -> Error (Sigill "lea needs a memory source"))
  | Opcode.Add w ->
    let* a = read_int m w (dst ()) in
    let* b = read_int m w (src 0) in
    let r = Int64.add a b in
    set_add_flags m w a b r;
    write_int m w (dst ()) (trunc w r)
  | Opcode.Sub w ->
    let* a = read_int m w (dst ()) in
    let* b = read_int m w (src 0) in
    let r = Int64.sub a b in
    set_sub_flags m w a b r;
    write_int m w (dst ()) (trunc w r)
  | Opcode.Imul w ->
    let* a = read_int m w (dst ()) in
    let* b = read_int m w (src 0) in
    let r = Int64.mul (signed w a) (signed w b) in
    set_logic_flags m w r;
    write_int m w (dst ()) (trunc w r)
  | Opcode.And w ->
    let* a = read_int m w (dst ()) in
    let* b = read_int m w (src 0) in
    let r = Int64.logand a b in
    set_logic_flags m w r;
    write_int m w (dst ()) r
  | Opcode.Or w ->
    let* a = read_int m w (dst ()) in
    let* b = read_int m w (src 0) in
    let r = Int64.logor a b in
    set_logic_flags m w r;
    write_int m w (dst ()) r
  | Opcode.Xor w ->
    let* a = read_int m w (dst ()) in
    let* b = read_int m w (src 0) in
    let r = Int64.logxor a b in
    set_logic_flags m w r;
    write_int m w (dst ()) r
  | Opcode.Not w ->
    let* a = read_int m w (dst ()) in
    write_int m w (dst ()) (trunc w (Int64.lognot a))
  | Opcode.Neg w ->
    let* a = read_int m w (dst ()) in
    let r = Int64.neg (signed w a) in
    set_sub_flags m w 0L a r;
    write_int m w (dst ()) (trunc w r)
  | Opcode.Inc w ->
    let* a = read_int m w (dst ()) in
    let r = Int64.add a 1L in
    let saved_cf = m.Machine.flags.cf in
    set_add_flags m w a 1L r;
    m.Machine.flags.cf <- saved_cf;
    write_int m w (dst ()) (trunc w r)
  | Opcode.Dec w ->
    let* a = read_int m w (dst ()) in
    let r = Int64.sub a 1L in
    let saved_cf = m.Machine.flags.cf in
    set_sub_flags m w a 1L r;
    m.Machine.flags.cf <- saved_cf;
    write_int m w (dst ()) (trunc w r)
  | Opcode.Shl w ->
    let* c = imm_val (src 0) in
    let* a = read_int m w (dst ()) in
    let bits = (match w with Reg.Q -> 64 | Reg.L -> 32) in
    let c = Int64.to_int c land (if bits = 64 then 63 else 31) in
    let r = if c = 0 then a else Int64.shift_left a c in
    if c <> 0 then set_logic_flags m w r;
    write_int m w (dst ()) (trunc w r)
  | Opcode.Shr w ->
    let* c = imm_val (src 0) in
    let* a = read_int m w (dst ()) in
    let bits = (match w with Reg.Q -> 64 | Reg.L -> 32) in
    let c = Int64.to_int c land (if bits = 64 then 63 else 31) in
    let r = if c = 0 then a else Int64.shift_right_logical (trunc w a) c in
    if c <> 0 then set_logic_flags m w r;
    write_int m w (dst ()) (trunc w r)
  | Opcode.Sar w ->
    let* c = imm_val (src 0) in
    let* a = read_int m w (dst ()) in
    let bits = (match w with Reg.Q -> 64 | Reg.L -> 32) in
    let c = Int64.to_int c land (if bits = 64 then 63 else 31) in
    let r = if c = 0 then a else Int64.shift_right (signed w a) c in
    if c <> 0 then set_logic_flags m w r;
    write_int m w (dst ()) (trunc w r)
  | Opcode.Cmp w ->
    let* a = read_int m w (dst ()) in
    let* b = read_int m w (src 0) in
    set_sub_flags m w a b (Int64.sub a b);
    Ok ()
  | Opcode.Test w ->
    let* a = read_int m w (dst ()) in
    let* b = read_int m w (src 0) in
    set_logic_flags m w (Int64.logand a b);
    Ok ()
  | Opcode.Cmov (c, w) ->
    if cond_holds m c then begin
      let* v = read_int m w (src 0) in
      write_int m w (dst ()) v
    end
    else Ok ()
  | Opcode.Setcc c ->
    (match dst () with
     | Operand.Gp r ->
       let old = Machine.get_gp m r in
       let bit = if cond_holds m c then 1L else 0L in
       Machine.set_gp m r (Int64.logor (Int64.logand old (-256L)) bit);
       Ok ()
     | _ -> Error (Sigill "setcc needs a register"))
  (* ----- SSE moves ----- *)
  | Opcode.Movss ->
    (match src 0, dst () with
     | Operand.Xmm s, Operand.Xmm d ->
       (* reg-to-reg: merge the low dword *)
       let lo_s = Int64.logand (Machine.get_xmm_lo m s) 0xffff_ffffL in
       let lo_d = Machine.get_xmm_lo m d in
       Machine.set_xmm_lo m d
         (Int64.logor (Int64.logand lo_d 0xffff_ffff_0000_0000L) lo_s);
       Ok ()
     | Operand.Mem mem, Operand.Xmm d ->
       let* v = lift (Memory.read m.Machine.mem (eff_addr m mem) 4) in
       Machine.set_xmm m d (v, 0L);
       Ok ()
     | Operand.Xmm s, Operand.Mem mem ->
       lift
         (Memory.write m.Machine.mem (eff_addr m mem) 4
            (Int64.logand (Machine.get_xmm_lo m s) 0xffff_ffffL))
     | _ -> Error (Sigill "movss operands"))
  | Opcode.Movsd ->
    (match src 0, dst () with
     | Operand.Xmm s, Operand.Xmm d ->
       Machine.set_xmm_lo m d (Machine.get_xmm_lo m s);
       Ok ()
     | Operand.Mem mem, Operand.Xmm d ->
       let* v = lift (Memory.read m.Machine.mem (eff_addr m mem) 8) in
       Machine.set_xmm m d (v, 0L);
       Ok ()
     | Operand.Xmm s, Operand.Mem mem ->
       lift (Memory.write m.Machine.mem (eff_addr m mem) 8 (Machine.get_xmm_lo m s))
     | _ -> Error (Sigill "movsd operands"))
  | Opcode.Movaps | Opcode.Movups | Opcode.Lddqu ->
    let aligned =
      match i.Instr.op with
      | Opcode.Movaps -> true
      | _ -> false
    in
    (match src 0, dst () with
     | (Operand.Xmm _ | Operand.Mem _), Operand.Xmm d ->
       let* v = read_xmm128 m ~aligned (src 0) in
       Machine.set_xmm m d v;
       Ok ()
     | Operand.Xmm s, Operand.Mem mem ->
       lift
         (Memory.write128 ~aligned m.Machine.mem (eff_addr m mem)
            (Machine.get_xmm m s))
     | _ -> Error (Sigill "128-bit move operands"))
  | Opcode.Movq ->
    (match src 0, dst () with
     | (Operand.Xmm _ | Operand.Mem _ | Operand.Gp _), Operand.Xmm d ->
       let* v = read_q m (src 0) in
       Machine.set_xmm m d (v, 0L);
       Ok ()
     | Operand.Xmm s, Operand.Gp d ->
       Machine.set_gp m d (Machine.get_xmm_lo m s);
       Ok ()
     | Operand.Xmm s, Operand.Mem mem ->
       lift (Memory.write m.Machine.mem (eff_addr m mem) 8 (Machine.get_xmm_lo m s))
     | _ -> Error (Sigill "movq operands"))
  | Opcode.Movd ->
    (match src 0, dst () with
     | Operand.Gp s, Operand.Xmm d ->
       Machine.set_xmm m d (Machine.get_gp32 m s, 0L);
       Ok ()
     | Operand.Xmm s, Operand.Gp d ->
       Machine.set_gp32 m d (Machine.get_xmm_lo m s);
       Ok ()
     | _ -> Error (Sigill "movd operands"))
  | Opcode.Movlhps ->
    let* s = dst_xmm (src 0) in
    let* d = dst_xmm (dst ()) in
    let slo, _ = Machine.get_xmm m s in
    let dlo, _ = Machine.get_xmm m d in
    Machine.set_xmm m d (dlo, slo);
    Ok ()
  | Opcode.Movhlps ->
    let* s = dst_xmm (src 0) in
    let* d = dst_xmm (dst ()) in
    let _, shi = Machine.get_xmm m s in
    let _, dhi = Machine.get_xmm m d in
    Machine.set_xmm m d (shi, dhi);
    Ok ()
  (* ----- scalar FP ----- *)
  | Opcode.Addsd -> scalar_f64 (fun ~dst_old ~src -> dst_old +. src)
  | Opcode.Subsd -> scalar_f64 (fun ~dst_old ~src -> dst_old -. src)
  | Opcode.Mulsd -> scalar_f64 (fun ~dst_old ~src -> dst_old *. src)
  | Opcode.Divsd -> scalar_f64 (fun ~dst_old ~src -> dst_old /. src)
  | Opcode.Sqrtsd -> scalar_f64 (fun ~dst_old:_ ~src -> Float.sqrt src)
  | Opcode.Minsd -> scalar_f64 (fun ~dst_old ~src -> sse_min_f64 ~dst_old ~src)
  | Opcode.Maxsd -> scalar_f64 (fun ~dst_old ~src -> sse_max_f64 ~dst_old ~src)
  | Opcode.Addss -> scalar_f32 (fun ~dst_old ~src -> Fp32.add dst_old src)
  | Opcode.Subss -> scalar_f32 (fun ~dst_old ~src -> Fp32.sub dst_old src)
  | Opcode.Mulss -> scalar_f32 (fun ~dst_old ~src -> Fp32.mul dst_old src)
  | Opcode.Divss -> scalar_f32 (fun ~dst_old ~src -> Fp32.div dst_old src)
  | Opcode.Sqrtss -> scalar_f32 (fun ~dst_old:_ ~src -> Fp32.sqrt src)
  | Opcode.Minss -> scalar_f32 (fun ~dst_old ~src -> Fp32.min dst_old src)
  | Opcode.Maxss -> scalar_f32 (fun ~dst_old ~src -> Fp32.max dst_old src)
  | Opcode.Ucomisd | Opcode.Comisd ->
    let* s = read_f64 m (src 0) in
    let* d = dst_xmm (dst ()) in
    set_fp_compare_flags m (Machine.get_f64 m d) s;
    Ok ()
  | Opcode.Ucomiss | Opcode.Comiss ->
    let* s = read_f32 m (src 0) in
    let* d = dst_xmm (dst ()) in
    set_fp_compare_flags m (Machine.get_f32 m d) s;
    Ok ()
  (* ----- packed logic / integer ----- *)
  | Opcode.Andps | Opcode.Andpd | Opcode.Pand -> packed_bitop Int64.logand
  | Opcode.Orps | Opcode.Orpd | Opcode.Por -> packed_bitop Int64.logor
  | Opcode.Xorps | Opcode.Xorpd | Opcode.Pxor -> packed_bitop Int64.logxor
  | Opcode.Andnps -> packed_bitop (fun d s -> Int64.logand (Int64.lognot d) s)
  | Opcode.Paddq -> packed_bitop (fun d s -> Int64.add d s)
  | Opcode.Psubq -> packed_bitop (fun d s -> Int64.sub d s)
  | Opcode.Paddd ->
    let* s = read_xmm128 m (src 0) in
    let* d = dst_xmm (dst ()) in
    let ld = lanes4 (Machine.get_xmm m d) and ls = lanes4 s in
    Machine.set_xmm m d
      (join4 (Array.init 4 (fun k -> Int64.logand (Int64.add ld.(k) ls.(k)) 0xffff_ffffL)));
    Ok ()
  | Opcode.Psubd ->
    let* s = read_xmm128 m (src 0) in
    let* d = dst_xmm (dst ()) in
    let ld = lanes4 (Machine.get_xmm m d) and ls = lanes4 s in
    Machine.set_xmm m d
      (join4 (Array.init 4 (fun k -> Int64.logand (Int64.sub ld.(k) ls.(k)) 0xffff_ffffL)));
    Ok ()
  (* ----- packed FP ----- *)
  | Opcode.Addps -> packed_f32 Fp32.add
  | Opcode.Subps -> packed_f32 Fp32.sub
  | Opcode.Mulps -> packed_f32 Fp32.mul
  | Opcode.Divps -> packed_f32 Fp32.div
  | Opcode.Minps -> packed_f32 Fp32.min
  | Opcode.Maxps -> packed_f32 Fp32.max
  | Opcode.Addpd -> packed_f64 ( +. )
  | Opcode.Subpd -> packed_f64 ( -. )
  | Opcode.Mulpd -> packed_f64 ( *. )
  | Opcode.Divpd -> packed_f64 ( /. )
  (* ----- shuffles ----- *)
  | Opcode.Shufps ->
    let* sel = imm_val (src 0) in
    let* s = dst_xmm (src 1) in
    let* d = dst_xmm (dst ()) in
    let sel = Int64.to_int sel in
    let ld = lanes4 (Machine.get_xmm m d) in
    let ls = lanes4 (Machine.get_xmm m s) in
    let pick l k = l.((sel lsr (2 * k)) land 3) in
    Machine.set_xmm m d (join4 [| pick ld 0; pick ld 1; pick ls 2; pick ls 3 |]);
    Ok ()
  | Opcode.Pshufd ->
    let* sel = imm_val (src 0) in
    let* s = dst_xmm (src 1) in
    let* d = dst_xmm (dst ()) in
    let sel = Int64.to_int sel in
    let ls = lanes4 (Machine.get_xmm m s) in
    Machine.set_xmm m d
      (join4 (Array.init 4 (fun k -> ls.((sel lsr (2 * k)) land 3))));
    Ok ()
  | Opcode.Pshuflw ->
    let* sel = imm_val (src 0) in
    let* s = dst_xmm (src 1) in
    let* d = dst_xmm (dst ()) in
    let sel = Int64.to_int sel in
    let slo, shi = Machine.get_xmm m s in
    let word k = Int64.logand (Int64.shift_right_logical slo (16 * k)) 0xffffL in
    let out = ref 0L in
    for k = 3 downto 0 do
      out := Int64.logor (Int64.shift_left !out 16) (word ((sel lsr (2 * k)) land 3))
    done;
    Machine.set_xmm m d (!out, shi);
    Ok ()
  | Opcode.Punpckldq | Opcode.Unpcklps ->
    let* s = read_xmm128 m (src 0) in
    let* d = dst_xmm (dst ()) in
    let ld = lanes4 (Machine.get_xmm m d) and ls = lanes4 s in
    Machine.set_xmm m d (join4 [| ld.(0); ls.(0); ld.(1); ls.(1) |]);
    Ok ()
  | Opcode.Punpcklqdq | Opcode.Unpcklpd ->
    let* s = read_xmm128 m (src 0) in
    let* d = dst_xmm (dst ()) in
    let dlo, _ = Machine.get_xmm m d in
    let slo, _ = s in
    Machine.set_xmm m d (dlo, slo);
    Ok ()
  | Opcode.Pslld | Opcode.Psrld ->
    let* c = imm_val (src 0) in
    let* d = dst_xmm (dst ()) in
    let c = Int64.to_int c in
    let l = lanes4 (Machine.get_xmm m d) in
    let shift v =
      if c >= 32 then 0L
      else if i.Instr.op = Opcode.Pslld then
        Int64.logand (Int64.shift_left v c) 0xffff_ffffL
      else Int64.shift_right_logical (Int64.logand v 0xffff_ffffL) c
    in
    Machine.set_xmm m d (join4 (Array.map shift l));
    Ok ()
  | Opcode.Psllq | Opcode.Psrlq ->
    let* c = imm_val (src 0) in
    let* d = dst_xmm (dst ()) in
    let c = Int64.to_int c in
    let lo, hi = Machine.get_xmm m d in
    let shift v =
      if c >= 64 then 0L
      else if i.Instr.op = Opcode.Psllq then Int64.shift_left v c
      else Int64.shift_right_logical v c
    in
    Machine.set_xmm m d (shift lo, shift hi);
    Ok ()
  (* ----- converts ----- *)
  | Opcode.Cvtss2sd ->
    let* x = read_f32 m (src 0) in
    let* d = dst_xmm (dst ()) in
    Machine.set_f64 m d x;
    Ok ()
  | Opcode.Cvtsd2ss ->
    let* x = read_f64 m (src 0) in
    let* d = dst_xmm (dst ()) in
    Machine.set_f32 m d (Fp32.round x);
    Ok ()
  | Opcode.Cvtsi2sd w ->
    let* v = read_int m w (src 0) in
    let* d = dst_xmm (dst ()) in
    Machine.set_f64 m d (Int64.to_float (signed w v));
    Ok ()
  | Opcode.Cvtsi2ss w ->
    let* v = read_int m w (src 0) in
    let* d = dst_xmm (dst ()) in
    Machine.set_f32 m d (Fp32.round (Int64.to_float (signed w v)));
    Ok ()
  | Opcode.Cvttsd2si w ->
    let* x = read_f64 m (src 0) in
    let x = Float.trunc x in
    write_int m w (dst ()) (match w with Reg.Q -> f2i64 x | Reg.L -> f2i32 x)
  | Opcode.Cvttss2si w ->
    let* x = read_f32 m (src 0) in
    let x = Float.trunc x in
    write_int m w (dst ()) (match w with Reg.Q -> f2i64 x | Reg.L -> f2i32 x)
  | Opcode.Cvtsd2si w ->
    let* x = read_f64 m (src 0) in
    let x = rint_even x in
    write_int m w (dst ()) (match w with Reg.Q -> f2i64 x | Reg.L -> f2i32 x)
  | Opcode.Roundsd ->
    let* mode = imm_val (src 0) in
    let* x = read_f64 m (src 1) in
    let* d = dst_xmm (dst ()) in
    let r =
      match Int64.to_int mode land 3 with
      | 0 -> rint_even x
      | 1 -> Float.floor x
      | 2 -> Float.ceil x
      | _ -> Float.trunc x
    in
    Machine.set_f64 m d r;
    Ok ()
  | Opcode.Roundss ->
    let* mode = imm_val (src 0) in
    let* x = read_f32 m (src 1) in
    let* d = dst_xmm (dst ()) in
    let r =
      match Int64.to_int mode land 3 with
      | 0 -> rint_even x
      | 1 -> Float.floor x
      | 2 -> Float.ceil x
      | _ -> Float.trunc x
    in
    Machine.set_f32 m d (Fp32.round r);
    Ok ()
  (* ----- AVX three-operand ----- *)
  | Opcode.Vaddsd -> avx3_f64 ( +. )
  | Opcode.Vsubsd -> avx3_f64 ( -. )
  | Opcode.Vmulsd -> avx3_f64 ( *. )
  | Opcode.Vdivsd -> avx3_f64 ( /. )
  | Opcode.Vminsd -> avx3_f64 (fun a b -> sse_min_f64 ~dst_old:a ~src:b)
  | Opcode.Vmaxsd -> avx3_f64 (fun a b -> sse_max_f64 ~dst_old:a ~src:b)
  | Opcode.Vsqrtsd -> avx3_f64 (fun _ b -> Float.sqrt b)
  | Opcode.Vaddss -> avx3_f32 Fp32.add
  | Opcode.Vsubss -> avx3_f32 Fp32.sub
  | Opcode.Vmulss -> avx3_f32 Fp32.mul
  | Opcode.Vdivss -> avx3_f32 Fp32.div
  | Opcode.Vminss -> avx3_f32 Fp32.min
  | Opcode.Vmaxss -> avx3_f32 Fp32.max
  | Opcode.Vaddps -> avx3_packed128 (fun a b -> map_lanes4_f32 Fp32.add a b)
  | Opcode.Vsubps -> avx3_packed128 (fun a b -> map_lanes4_f32 Fp32.sub a b)
  | Opcode.Vmulps -> avx3_packed128 (fun a b -> map_lanes4_f32 Fp32.mul a b)
  | Opcode.Vaddpd -> avx3_packed128 (fun a b -> map_lanes2_f64 ( +. ) a b)
  | Opcode.Vmulpd -> avx3_packed128 (fun a b -> map_lanes2_f64 ( *. ) a b)
  | Opcode.Vxorps ->
    avx3_packed128 (fun (alo, ahi) (blo, bhi) ->
        (Int64.logxor alo blo, Int64.logxor ahi bhi))
  | Opcode.Vandps ->
    avx3_packed128 (fun (alo, ahi) (blo, bhi) ->
        (Int64.logand alo blo, Int64.logand ahi bhi))
  | Opcode.Vunpcklps ->
    avx3_packed128 (fun a b ->
        let la = lanes4 a and lb = lanes4 b in
        join4 [| la.(0); lb.(0); la.(1); lb.(1) |])
  | Opcode.Vpshuflw ->
    let* sel = imm_val (src 0) in
    let* s = read_xmm128 m (src 1) in
    let* d = dst_xmm (dst ()) in
    let sel = Int64.to_int sel in
    let slo, shi = s in
    let word k = Int64.logand (Int64.shift_right_logical slo (16 * k)) 0xffffL in
    let out = ref 0L in
    for k = 3 downto 0 do
      out := Int64.logor (Int64.shift_left !out 16) (word ((sel lsr (2 * k)) land 3))
    done;
    Machine.set_xmm m d (!out, shi);
    Ok ()
  (* dst = a*b + c with the digit convention: operand1=dst, operand2=vvvv,
     operand3=rm (Intel order); pick receives (x1=dst, x2=vvvv, x3=rm). *)
  | Opcode.Vfmadd132sd -> fma_f64 (fun x1 x2 x3 -> (x1, x3, x2)) false false
  | Opcode.Vfmadd213sd -> fma_f64 (fun x1 x2 x3 -> (x2, x1, x3)) false false
  | Opcode.Vfmadd231sd -> fma_f64 (fun x1 x2 x3 -> (x2, x3, x1)) false false
  | Opcode.Vfnmadd213sd -> fma_f64 (fun x1 x2 x3 -> (x2, x1, x3)) true false
  | Opcode.Vfnmadd231sd -> fma_f64 (fun x1 x2 x3 -> (x2, x3, x1)) true false
  | Opcode.Vfmsub213sd -> fma_f64 (fun x1 x2 x3 -> (x2, x1, x3)) false true
  | Opcode.Vfmadd132ss -> fma_f32 (fun x1 x2 x3 -> (x1, x3, x2))
  | Opcode.Vfmadd213ss -> fma_f32 (fun x1 x2 x3 -> (x2, x1, x3))
  | Opcode.Vfmadd231ss -> fma_f32 (fun x1 x2 x3 -> (x2, x3, x1))
