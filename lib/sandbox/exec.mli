(** Program execution: run a loop-free program on a machine, collecting the
    outcome and the cycle count under the static latency model. *)

type outcome =
  | Finished
  | Faulted of Semantics.fault

(** Which execution engine evaluates proposals.  [Interp] steps
    {!Semantics.step} over the program on every run — the reference.
    [Compiled] translates the program once into specialized closures
    ({!Compiled.compile}) and replays them per test case.  [Batched]
    ({!Batched}) also translates once, but runs {e all} test cases
    through each instruction before advancing to the next, over
    struct-of-arrays register planes.  [Native] ({!Native}) encodes the
    program into real x86-64 machine code and runs it in a guarded
    worker child process, falling back to [Batched] per proposal for
    forms the encoder can't emit natively.  All four are bit-identical;
    [Compiled] is the default everywhere, [Interp] the oracle the others
    are differentially tested against. *)
type engine =
  | Interp
  | Compiled
  | Batched
  | Native

val engine_names : string list
(** Valid spellings for {!engine_of_string}, in declaration order. *)

val engine_to_string : engine -> string

val engine_of_string : string -> (engine, string) result
(** [Error msg] names the rejected spelling and lists the valid ones. *)

type result = {
  outcome : outcome;
  cycles : int;  (** sum of per-instruction latencies actually executed *)
  executed : int;  (** number of instructions executed *)
}

(** Process-wide execution counters for telemetry, disabled by default.

    When disabled the only cost on the hot path is one atomic load per
    {!run}; when enabled, every run adds its cycle and instruction
    totals with atomic fetch-and-add, so the counters stay exact across
    the parallel search's domains.  They measure interpreter work — the
    denominator of evaluations/sec — not rewrite quality. *)
module Counters : sig
  type snapshot = {
    runs : int;  (** programs executed (≈ cost evaluations × test cases) *)
    instrs : int;  (** instructions stepped *)
    cycles : int;  (** static-latency cycles accumulated *)
    faults : int;  (** runs that ended in a fault *)
  }

  val enable : unit -> unit
  val disable : unit -> unit
  val is_enabled : unit -> bool
  val reset : unit -> unit
  val snapshot : unit -> snapshot

  val record : run_cycles:int -> run_instrs:int -> faulted:bool -> unit
  (** Add one run's totals.  {!run} calls this itself; it is exposed so
      {!Compiled.exec} feeds the same counters. *)
end

val run : Machine.t -> Program.t -> result
(** Executes the active slots in order, mutating the machine.  Stops at the
    first fault. *)

val run_testcase :
  mem_size:int -> Program.t -> Testcase.t -> Machine.t * result
(** Fresh machine, install the test case, run.  [mem_size] is mandatory —
    pass the spec's arena size ({!Spec.t.mem_size}) so ad-hoc runs see the
    same address-space bounds as the search.  Convenient, but allocates;
    hot loops should reuse machines via {!run} and
    {!Machine.restore_from}. *)

val outcome_is_signal : outcome -> bool

val outcome_to_string : outcome -> string
