(** Program execution: run a loop-free program on a machine, collecting the
    outcome and the cycle count under the static latency model. *)

type outcome =
  | Finished
  | Faulted of Semantics.fault

type result = {
  outcome : outcome;
  cycles : int;  (** sum of per-instruction latencies actually executed *)
  executed : int;  (** number of instructions executed *)
}

val run : Machine.t -> Program.t -> result
(** Executes the active slots in order, mutating the machine.  Stops at the
    first fault. *)

val run_testcase :
  ?mem_size:int -> Program.t -> Testcase.t -> Machine.t * result
(** Fresh machine, install the test case, run.  Convenient, but allocates;
    hot loops should reuse machines via {!run} and
    {!Machine.restore_from}. *)

val outcome_is_signal : outcome -> bool

val outcome_to_string : outcome -> string
