(* Compiled execution engine: translate a program once into an array of
   pre-specialized closures over one machine, then run that trace across
   many test cases.

   Specialization happens at compile time, once per proposal: operands
   are resolved to direct register-file indices, immediates are
   pre-extended, effective-address code is picked per addressing mode,
   [Unused] slots are elided, per-instruction latencies are prefix-summed,
   and faults are raised through a local exception instead of threading a
   [result] through every step.  The run loop is then just an array of
   [unit -> unit] calls.

   Bit-identical by construction: every closure mirrors the corresponding
   arm of {!Semantics.step} — same read order, same fault order, same
   fault messages — and all value-level arithmetic (flag computation,
   rounding, lane plumbing) is shared with the interpreter via
   {!Semantics}'s exported helpers.  Opcodes without a specialized
   translation fall back to a closure around [Semantics.step] itself, so
   the two engines cannot diverge on them. *)

open X86

exception Fault of Semantics.fault

type t = {
  steps : (unit -> unit) array;
  lat_prefix : int array;
      (* lat_prefix.(k) = cycles after executing the first k closures *)
}

let xi r = 2 * Reg.xmm_index r
let gi r = Reg.gp_index r

let lo32 = 0xffff_ffffL
let hi32_mask = 0xffff_ffff_0000_0000L

(* A fault known at compile time still fires in operand order at run
   time, so raising closures are built per slot below. *)

let generic_closure (m : Machine.t) (i : Instr.t) : unit -> unit =
 fun () ->
  match Semantics.step m i with
  | Ok () -> ()
  | Error f -> raise (Fault f)

let specialize (m : Machine.t) (i : Instr.t) : unit -> unit =
  let gp = m.Machine.gp in
  let xmm = m.Machine.xmm in
  let mem = m.Machine.mem in
  let ops = i.Instr.operands in
  let n = Array.length ops in
  let dst = ops.(n - 1) in
  (* ----- operand resolution (compile-time) ----- *)
  let eff (mm : Operand.mem) : unit -> int64 =
    let d = Int64.of_int mm.Operand.disp in
    match mm.Operand.base, mm.Operand.index with
    | None, None -> fun () -> d
    | Some b, None ->
      let bi = gi b in
      fun () -> Int64.add gp.(bi) d
    | None, Some (r, s) ->
      let ri = gi r and sc = Int64.of_int s in
      fun () -> Int64.add (Int64.mul gp.(ri) sc) d
    | Some b, Some (r, s) ->
      let bi = gi b and ri = gi r and sc = Int64.of_int s in
      fun () -> Int64.add (Int64.add gp.(bi) (Int64.mul gp.(ri) sc)) d
  in
  let read_int w (o : Operand.t) : unit -> int64 =
    match o with
    | Operand.Gp r ->
      let k = gi r in
      (match w with
       | Reg.Q -> fun () -> gp.(k)
       | Reg.L -> fun () -> Int64.logand gp.(k) lo32)
    | Operand.Imm v ->
      let v = match w with Reg.Q -> v | Reg.L -> Int64.logand v lo32 in
      fun () -> v
    | Operand.Mem mm ->
      let ea = eff mm and nb = Semantics.width_bytes w in
      fun () -> Memory.read_exn mem (ea ()) nb
    | Operand.Xmm _ ->
      fun () -> raise (Fault (Semantics.Sigill "xmm operand in integer context"))
  in
  let write_int w (o : Operand.t) : int64 -> unit =
    match o with
    | Operand.Gp r ->
      let k = gi r in
      (match w with
       | Reg.Q -> fun v -> gp.(k) <- v
       | Reg.L -> fun v -> gp.(k) <- Int64.logand v lo32)
    | Operand.Mem mm ->
      let ea = eff mm and nb = Semantics.width_bytes w in
      fun v -> Memory.write_exn mem (ea ()) nb v
    | Operand.Imm _ | Operand.Xmm _ ->
      fun _ -> raise (Fault (Semantics.Sigill "bad integer destination"))
  in
  let read_q (o : Operand.t) : unit -> int64 =
    match o with
    | Operand.Xmm r ->
      let k = xi r in
      fun () -> xmm.(k)
    | Operand.Mem mm ->
      let ea = eff mm in
      fun () -> Memory.read_exn mem (ea ()) 8
    | Operand.Gp r ->
      let k = gi r in
      fun () -> gp.(k)
    | Operand.Imm _ ->
      fun () -> raise (Fault (Semantics.Sigill "immediate in xmm context"))
  in
  let read_d (o : Operand.t) : unit -> int64 =
    match o with
    | Operand.Xmm r ->
      let k = xi r in
      fun () -> Int64.logand xmm.(k) lo32
    | Operand.Mem mm ->
      let ea = eff mm in
      fun () -> Memory.read_exn mem (ea ()) 4
    | Operand.Gp r ->
      let k = gi r in
      fun () -> Int64.logand gp.(k) lo32
    | Operand.Imm _ ->
      fun () -> raise (Fault (Semantics.Sigill "immediate in xmm context"))
  in
  let read_f64 o =
    let r = read_q o in
    fun () -> Int64.float_of_bits (r ())
  in
  let read_f32 o =
    let r = read_d o in
    fun () -> Int32.float_of_bits (Int64.to_int32 (r ()))
  in
  let read_x128 ~aligned (o : Operand.t) : unit -> int64 * int64 =
    match o with
    | Operand.Xmm r ->
      let k = xi r in
      fun () -> (xmm.(k), xmm.(k + 1))
    | Operand.Mem mm ->
      let ea = eff mm in
      fun () -> Memory.read128_exn ~aligned mem (ea ())
    | Operand.Gp _ | Operand.Imm _ ->
      fun () -> raise (Fault (Semantics.Sigill "bad 128-bit source"))
  in
  let set_f32_at k v =
    let bits32 = Int64.of_int32 (Int32.bits_of_float v) in
    xmm.(k) <-
      Int64.logor (Int64.logand xmm.(k) hi32_mask) (Int64.logand bits32 lo32)
  in
  let get_f32_at k = Int32.float_of_bits (Int64.to_int32 xmm.(k)) in
  (* ----- shared instruction templates ----- *)
  let bad_dst_after (pre : (unit -> unit) list) msg =
    fun () ->
      List.iter (fun f -> f ()) pre;
      raise (Fault (Semantics.Sigill msg))
  in
  let scalar_f64 f =
    let rx = read_f64 ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let k = xi d in
      fun () ->
        let x = rx () in
        let old = Int64.float_of_bits xmm.(k) in
        xmm.(k) <- Int64.bits_of_float (f old x)
    | _ -> bad_dst_after [ (fun () -> ignore (rx ())) ] "expected xmm destination"
  in
  let scalar_f32 f =
    let rx = read_f32 ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let k = xi d in
      fun () ->
        let x = rx () in
        set_f32_at k (f (get_f32_at k) x)
    | _ -> bad_dst_after [ (fun () -> ignore (rx ())) ] "expected xmm destination"
  in
  let packed_bitop f =
    let rs = read_x128 ~aligned:false ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let k = xi d in
      fun () ->
        let slo, shi = rs () in
        xmm.(k) <- f xmm.(k) slo;
        xmm.(k + 1) <- f xmm.(k + 1) shi
    | _ -> bad_dst_after [ (fun () -> ignore (rs ())) ] "expected xmm destination"
  in
  let packed_f32 f =
    let rs = read_x128 ~aligned:false ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let k = xi d in
      fun () ->
        let s = rs () in
        let lo, hi = Semantics.map_lanes4_f32 f (xmm.(k), xmm.(k + 1)) s in
        xmm.(k) <- lo;
        xmm.(k + 1) <- hi
    | _ -> bad_dst_after [ (fun () -> ignore (rs ())) ] "expected xmm destination"
  in
  let packed_f64 f =
    let rs = read_x128 ~aligned:false ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let k = xi d in
      fun () ->
        let s = rs () in
        let lo, hi = Semantics.map_lanes2_f64 f (xmm.(k), xmm.(k + 1)) s in
        xmm.(k) <- lo;
        xmm.(k + 1) <- hi
    | _ -> bad_dst_after [ (fun () -> ignore (rs ())) ] "expected xmm destination"
  in
  let avx3_f64 f =
    let rx2 = read_f64 ops.(0) and rx1 = read_f64 ops.(1) in
    match dst, ops.(1) with
    | Operand.Xmm d, Operand.Xmm s1 ->
      let dk = xi d and s1k = xi s1 in
      fun () ->
        let x2 = rx2 () in
        let x1 = rx1 () in
        let hi1 = xmm.(s1k + 1) in
        xmm.(dk) <- Int64.bits_of_float (f x1 x2);
        xmm.(dk + 1) <- hi1
    | _ ->
      bad_dst_after
        [ (fun () -> ignore (rx2 ())); (fun () -> ignore (rx1 ())) ]
        "expected xmm destination"
  in
  let avx3_f32 f =
    let rx2 = read_f32 ops.(0) and rx1 = read_f32 ops.(1) in
    match dst, ops.(1) with
    | Operand.Xmm d, Operand.Xmm s1 ->
      let dk = xi d and s1k = xi s1 in
      fun () ->
        let x2 = rx2 () in
        let x1 = rx1 () in
        let lo1 = xmm.(s1k) and hi1 = xmm.(s1k + 1) in
        let res = Semantics.dword_of (Fp32.round (f x1 x2)) in
        xmm.(dk) <- Int64.logor (Int64.logand lo1 hi32_mask) res;
        xmm.(dk + 1) <- hi1
    | _ ->
      bad_dst_after
        [ (fun () -> ignore (rx2 ())); (fun () -> ignore (rx1 ())) ]
        "expected xmm destination"
  in
  let avx3_packed128 f =
    let rs2 = read_x128 ~aligned:false ops.(0) in
    let rs1 = read_x128 ~aligned:false ops.(1) in
    match dst with
    | Operand.Xmm d ->
      let k = xi d in
      fun () ->
        let s2 = rs2 () in
        let s1 = rs1 () in
        let lo, hi = f s1 s2 in
        xmm.(k) <- lo;
        xmm.(k + 1) <- hi
    | _ ->
      bad_dst_after
        [ (fun () -> ignore (rs2 ())); (fun () -> ignore (rs1 ())) ]
        "expected xmm destination"
  in
  let fma_f64 pick neg_prod sub_addend =
    let rx3 = read_f64 ops.(0) in
    let prod_sign = if neg_prod then -1.0 else 1.0 in
    match dst, ops.(1) with
    | Operand.Xmm d, Operand.Xmm s2 ->
      let dk = xi d and s2k = xi s2 in
      fun () ->
        let x3 = rx3 () in
        let x2 = Int64.float_of_bits xmm.(s2k) in
        let x1 = Int64.float_of_bits xmm.(dk) in
        let a, b, c = pick x1 x2 x3 in
        let addend = if sub_addend then -.c else c in
        xmm.(dk) <- Int64.bits_of_float (Float.fma (prod_sign *. a) b addend)
    | _ -> bad_dst_after [ (fun () -> ignore (rx3 ())) ] "expected xmm destination"
  in
  let fma_f32 pick =
    let rx3 = read_f32 ops.(0) in
    match dst, ops.(1) with
    | Operand.Xmm d, Operand.Xmm s2 ->
      let dk = xi d and s2k = xi s2 in
      fun () ->
        let x3 = rx3 () in
        let x2 = get_f32_at s2k in
        let x1 = get_f32_at dk in
        let a, b, c = pick x1 x2 x3 in
        set_f32_at dk (Fp32.round (Float.fma a b c))
    | _ -> bad_dst_after [ (fun () -> ignore (rx3 ())) ] "expected xmm destination"
  in
  (* GP two-operand arithmetic: read dst, read src, flags, write —
     exactly the interpreter's order. *)
  let gp_arith w combine =
    let ra = read_int w dst and rb = read_int w ops.(0) in
    let wr = write_int w dst in
    fun () ->
      let a = ra () in
      let b = rb () in
      wr (combine a b)
  in
  let fallback () = generic_closure m i in
  match i.Instr.op with
  (* ----- GP ----- *)
  | Opcode.Mov w ->
    let rv = read_int w ops.(0) and wr = write_int w dst in
    fun () -> wr (rv ())
  | Opcode.Movabs ->
    (match ops.(0) with
     | Operand.Imm v ->
       let wr = write_int Reg.Q dst in
       fun () -> wr v
     | _ -> fun () -> raise (Fault (Semantics.Sigill "expected immediate")))
  | Opcode.Lea w ->
    (match ops.(0) with
     | Operand.Mem mm ->
       let ea = eff mm and wr = write_int w dst in
       fun () -> wr (ea ())
     | _ -> fun () -> raise (Fault (Semantics.Sigill "lea needs a memory source")))
  | Opcode.Add w ->
    gp_arith w (fun a b ->
        let r = Int64.add a b in
        Semantics.set_add_flags m w a b r;
        Semantics.trunc w r)
  | Opcode.Sub w ->
    gp_arith w (fun a b ->
        let r = Int64.sub a b in
        Semantics.set_sub_flags m w a b r;
        Semantics.trunc w r)
  | Opcode.Imul w ->
    gp_arith w (fun a b ->
        let r = Int64.mul (Semantics.signed w a) (Semantics.signed w b) in
        Semantics.set_logic_flags m w r;
        Semantics.trunc w r)
  | Opcode.And w ->
    gp_arith w (fun a b ->
        let r = Int64.logand a b in
        Semantics.set_logic_flags m w r;
        r)
  | Opcode.Or w ->
    gp_arith w (fun a b ->
        let r = Int64.logor a b in
        Semantics.set_logic_flags m w r;
        r)
  | Opcode.Xor w ->
    gp_arith w (fun a b ->
        let r = Int64.logxor a b in
        Semantics.set_logic_flags m w r;
        r)
  | Opcode.Not w ->
    let ra = read_int w dst and wr = write_int w dst in
    fun () -> wr (Semantics.trunc w (Int64.lognot (ra ())))
  | Opcode.Neg w ->
    let ra = read_int w dst and wr = write_int w dst in
    fun () ->
      let a = ra () in
      let r = Int64.neg (Semantics.signed w a) in
      Semantics.set_sub_flags m w 0L a r;
      wr (Semantics.trunc w r)
  | Opcode.Inc w ->
    let ra = read_int w dst and wr = write_int w dst in
    let flags = m.Machine.flags in
    fun () ->
      let a = ra () in
      let r = Int64.add a 1L in
      let saved_cf = flags.Machine.cf in
      Semantics.set_add_flags m w a 1L r;
      flags.Machine.cf <- saved_cf;
      wr (Semantics.trunc w r)
  | Opcode.Dec w ->
    let ra = read_int w dst and wr = write_int w dst in
    let flags = m.Machine.flags in
    fun () ->
      let a = ra () in
      let r = Int64.sub a 1L in
      let saved_cf = flags.Machine.cf in
      Semantics.set_sub_flags m w a 1L r;
      flags.Machine.cf <- saved_cf;
      wr (Semantics.trunc w r)
  | Opcode.Shl w | Opcode.Shr w | Opcode.Sar w ->
    (match ops.(0) with
     | Operand.Imm c ->
       let ra = read_int w dst and wr = write_int w dst in
       let bits = match w with Reg.Q -> 64 | Reg.L -> 32 in
       let c = Int64.to_int c land (if bits = 64 then 63 else 31) in
       if c = 0 then fun () -> wr (Semantics.trunc w (ra ()))
       else
         let shift =
           match i.Instr.op with
           | Opcode.Shl _ -> fun a -> Int64.shift_left a c
           | Opcode.Shr _ -> fun a -> Int64.shift_right_logical (Semantics.trunc w a) c
           | _ -> fun a -> Int64.shift_right (Semantics.signed w a) c
         in
         fun () ->
           let r = shift (ra ()) in
           Semantics.set_logic_flags m w r;
           wr (Semantics.trunc w r)
     | _ -> fun () -> raise (Fault (Semantics.Sigill "expected immediate")))
  | Opcode.Cmp w ->
    let ra = read_int w dst and rb = read_int w ops.(0) in
    fun () ->
      let a = ra () in
      let b = rb () in
      Semantics.set_sub_flags m w a b (Int64.sub a b)
  | Opcode.Test w ->
    let ra = read_int w dst and rb = read_int w ops.(0) in
    fun () ->
      let a = ra () in
      let b = rb () in
      Semantics.set_logic_flags m w (Int64.logand a b)
  | Opcode.Cmov (c, w) ->
    let rv = read_int w ops.(0) and wr = write_int w dst in
    fun () -> if Semantics.cond_holds m c then wr (rv ())
  | Opcode.Setcc c ->
    (match dst with
     | Operand.Gp r ->
       let k = gi r in
       fun () ->
         let bit = if Semantics.cond_holds m c then 1L else 0L in
         gp.(k) <- Int64.logor (Int64.logand gp.(k) (-256L)) bit
     | _ -> fun () -> raise (Fault (Semantics.Sigill "setcc needs a register")))
  (* ----- SSE moves ----- *)
  | Opcode.Movss ->
    (match ops.(0), dst with
     | Operand.Xmm s, Operand.Xmm d ->
       let sk = xi s and dk = xi d in
       fun () ->
         let lo_s = Int64.logand xmm.(sk) lo32 in
         xmm.(dk) <- Int64.logor (Int64.logand xmm.(dk) hi32_mask) lo_s
     | Operand.Mem mm, Operand.Xmm d ->
       let ea = eff mm and dk = xi d in
       fun () ->
         let v = Memory.read_exn mem (ea ()) 4 in
         xmm.(dk) <- v;
         xmm.(dk + 1) <- 0L
     | Operand.Xmm s, Operand.Mem mm ->
       let ea = eff mm and sk = xi s in
       fun () -> Memory.write_exn mem (ea ()) 4 (Int64.logand xmm.(sk) lo32)
     | _ -> fun () -> raise (Fault (Semantics.Sigill "movss operands")))
  | Opcode.Movsd ->
    (match ops.(0), dst with
     | Operand.Xmm s, Operand.Xmm d ->
       let sk = xi s and dk = xi d in
       fun () -> xmm.(dk) <- xmm.(sk)
     | Operand.Mem mm, Operand.Xmm d ->
       let ea = eff mm and dk = xi d in
       fun () ->
         let v = Memory.read_exn mem (ea ()) 8 in
         xmm.(dk) <- v;
         xmm.(dk + 1) <- 0L
     | Operand.Xmm s, Operand.Mem mm ->
       let ea = eff mm and sk = xi s in
       fun () -> Memory.write_exn mem (ea ()) 8 xmm.(sk)
     | _ -> fun () -> raise (Fault (Semantics.Sigill "movsd operands")))
  | Opcode.Movaps | Opcode.Movups | Opcode.Lddqu ->
    let aligned = i.Instr.op = Opcode.Movaps in
    (match ops.(0), dst with
     | (Operand.Xmm _ | Operand.Mem _), Operand.Xmm d ->
       let rv = read_x128 ~aligned ops.(0) in
       let dk = xi d in
       fun () ->
         let lo, hi = rv () in
         xmm.(dk) <- lo;
         xmm.(dk + 1) <- hi
     | Operand.Xmm s, Operand.Mem mm ->
       let ea = eff mm and sk = xi s in
       fun () ->
         Memory.write128_exn ~aligned mem (ea ()) (xmm.(sk), xmm.(sk + 1))
     | _ -> fun () -> raise (Fault (Semantics.Sigill "128-bit move operands")))
  | Opcode.Movq ->
    (match ops.(0), dst with
     | (Operand.Xmm _ | Operand.Mem _ | Operand.Gp _), Operand.Xmm d ->
       let rv = read_q ops.(0) in
       let dk = xi d in
       fun () ->
         xmm.(dk) <- rv ();
         xmm.(dk + 1) <- 0L
     | Operand.Xmm s, Operand.Gp d ->
       let sk = xi s and dk = gi d in
       fun () -> gp.(dk) <- xmm.(sk)
     | Operand.Xmm s, Operand.Mem mm ->
       let ea = eff mm and sk = xi s in
       fun () -> Memory.write_exn mem (ea ()) 8 xmm.(sk)
     | _ -> fun () -> raise (Fault (Semantics.Sigill "movq operands")))
  | Opcode.Movd ->
    (match ops.(0), dst with
     | Operand.Gp s, Operand.Xmm d ->
       let sk = gi s and dk = xi d in
       fun () ->
         xmm.(dk) <- Int64.logand gp.(sk) lo32;
         xmm.(dk + 1) <- 0L
     | Operand.Xmm s, Operand.Gp d ->
       let sk = xi s and dk = gi d in
       fun () -> gp.(dk) <- Int64.logand xmm.(sk) lo32
     | _ -> fun () -> raise (Fault (Semantics.Sigill "movd operands")))
  | Opcode.Movlhps ->
    (match ops.(0), dst with
     | Operand.Xmm s, Operand.Xmm d ->
       let sk = xi s and dk = xi d in
       fun () -> xmm.(dk + 1) <- xmm.(sk)
     | _ -> fun () -> raise (Fault (Semantics.Sigill "expected xmm destination")))
  | Opcode.Movhlps ->
    (match ops.(0), dst with
     | Operand.Xmm s, Operand.Xmm d ->
       let sk = xi s and dk = xi d in
       fun () -> xmm.(dk) <- xmm.(sk + 1)
     | _ -> fun () -> raise (Fault (Semantics.Sigill "expected xmm destination")))
  (* ----- scalar FP ----- *)
  | Opcode.Addsd -> scalar_f64 (fun old x -> old +. x)
  | Opcode.Subsd -> scalar_f64 (fun old x -> old -. x)
  | Opcode.Mulsd -> scalar_f64 (fun old x -> old *. x)
  | Opcode.Divsd -> scalar_f64 (fun old x -> old /. x)
  | Opcode.Sqrtsd -> scalar_f64 (fun _ x -> Float.sqrt x)
  | Opcode.Minsd -> scalar_f64 (fun old x -> Semantics.sse_min_f64 ~dst_old:old ~src:x)
  | Opcode.Maxsd -> scalar_f64 (fun old x -> Semantics.sse_max_f64 ~dst_old:old ~src:x)
  | Opcode.Addss -> scalar_f32 Fp32.add
  | Opcode.Subss -> scalar_f32 Fp32.sub
  | Opcode.Mulss -> scalar_f32 Fp32.mul
  | Opcode.Divss -> scalar_f32 Fp32.div
  | Opcode.Sqrtss -> scalar_f32 (fun _ x -> Fp32.sqrt x)
  | Opcode.Minss -> scalar_f32 Fp32.min
  | Opcode.Maxss -> scalar_f32 Fp32.max
  | Opcode.Ucomisd | Opcode.Comisd ->
    let rs = read_f64 ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dk = xi d in
       fun () ->
         let s = rs () in
         Semantics.set_fp_compare_flags m (Int64.float_of_bits xmm.(dk)) s
     | _ -> bad_dst_after [ (fun () -> ignore (rs ())) ] "expected xmm destination")
  | Opcode.Ucomiss | Opcode.Comiss ->
    let rs = read_f32 ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dk = xi d in
       fun () ->
         let s = rs () in
         Semantics.set_fp_compare_flags m (get_f32_at dk) s
     | _ -> bad_dst_after [ (fun () -> ignore (rs ())) ] "expected xmm destination")
  (* ----- packed logic / integer ----- *)
  | Opcode.Andps | Opcode.Andpd | Opcode.Pand -> packed_bitop Int64.logand
  | Opcode.Orps | Opcode.Orpd | Opcode.Por -> packed_bitop Int64.logor
  | Opcode.Xorps | Opcode.Xorpd | Opcode.Pxor -> packed_bitop Int64.logxor
  | Opcode.Andnps -> packed_bitop (fun d s -> Int64.logand (Int64.lognot d) s)
  | Opcode.Paddq -> packed_bitop Int64.add
  | Opcode.Psubq -> packed_bitop Int64.sub
  (* ----- packed FP ----- *)
  | Opcode.Addps -> packed_f32 Fp32.add
  | Opcode.Subps -> packed_f32 Fp32.sub
  | Opcode.Mulps -> packed_f32 Fp32.mul
  | Opcode.Divps -> packed_f32 Fp32.div
  | Opcode.Minps -> packed_f32 Fp32.min
  | Opcode.Maxps -> packed_f32 Fp32.max
  | Opcode.Addpd -> packed_f64 ( +. )
  | Opcode.Subpd -> packed_f64 ( -. )
  | Opcode.Mulpd -> packed_f64 ( *. )
  | Opcode.Divpd -> packed_f64 ( /. )
  (* ----- converts ----- *)
  | Opcode.Cvtss2sd ->
    let rx = read_f32 ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dk = xi d in
       fun () -> xmm.(dk) <- Int64.bits_of_float (rx ())
     | _ -> bad_dst_after [ (fun () -> ignore (rx ())) ] "expected xmm destination")
  | Opcode.Cvtsd2ss ->
    let rx = read_f64 ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dk = xi d in
       fun () -> set_f32_at dk (Fp32.round (rx ()))
     | _ -> bad_dst_after [ (fun () -> ignore (rx ())) ] "expected xmm destination")
  | Opcode.Cvtsi2sd w ->
    let rv = read_int w ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dk = xi d in
       fun () ->
         xmm.(dk) <- Int64.bits_of_float (Int64.to_float (Semantics.signed w (rv ())))
     | _ -> bad_dst_after [ (fun () -> ignore (rv ())) ] "expected xmm destination")
  | Opcode.Cvtsi2ss w ->
    let rv = read_int w ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dk = xi d in
       fun () ->
         set_f32_at dk (Fp32.round (Int64.to_float (Semantics.signed w (rv ()))))
     | _ -> bad_dst_after [ (fun () -> ignore (rv ())) ] "expected xmm destination")
  | Opcode.Cvttsd2si w ->
    let rx = read_f64 ops.(0) and wr = write_int w dst in
    let conv = match w with Reg.Q -> Semantics.f2i64 | Reg.L -> Semantics.f2i32 in
    fun () -> wr (conv (Float.trunc (rx ())))
  | Opcode.Cvttss2si w ->
    let rx = read_f32 ops.(0) and wr = write_int w dst in
    let conv = match w with Reg.Q -> Semantics.f2i64 | Reg.L -> Semantics.f2i32 in
    fun () -> wr (conv (Float.trunc (rx ())))
  | Opcode.Cvtsd2si w ->
    let rx = read_f64 ops.(0) and wr = write_int w dst in
    let conv = match w with Reg.Q -> Semantics.f2i64 | Reg.L -> Semantics.f2i32 in
    fun () -> wr (conv (Semantics.rint_even (rx ())))
  | Opcode.Roundsd ->
    (match ops.(0) with
     | Operand.Imm mode ->
       let rx = read_f64 ops.(1) in
       let round =
         match Int64.to_int mode land 3 with
         | 0 -> Semantics.rint_even
         | 1 -> Float.floor
         | 2 -> Float.ceil
         | _ -> Float.trunc
       in
       (match dst with
        | Operand.Xmm d ->
          let dk = xi d in
          fun () -> xmm.(dk) <- Int64.bits_of_float (round (rx ()))
        | _ ->
          bad_dst_after [ (fun () -> ignore (rx ())) ] "expected xmm destination")
     | _ -> fun () -> raise (Fault (Semantics.Sigill "expected immediate")))
  | Opcode.Roundss ->
    (match ops.(0) with
     | Operand.Imm mode ->
       let rx = read_f32 ops.(1) in
       let round =
         match Int64.to_int mode land 3 with
         | 0 -> Semantics.rint_even
         | 1 -> Float.floor
         | 2 -> Float.ceil
         | _ -> Float.trunc
       in
       (match dst with
        | Operand.Xmm d ->
          let dk = xi d in
          fun () -> set_f32_at dk (Fp32.round (round (rx ())))
        | _ ->
          bad_dst_after [ (fun () -> ignore (rx ())) ] "expected xmm destination")
     | _ -> fun () -> raise (Fault (Semantics.Sigill "expected immediate")))
  (* ----- AVX three-operand ----- *)
  | Opcode.Vaddsd -> avx3_f64 ( +. )
  | Opcode.Vsubsd -> avx3_f64 ( -. )
  | Opcode.Vmulsd -> avx3_f64 ( *. )
  | Opcode.Vdivsd -> avx3_f64 ( /. )
  | Opcode.Vminsd -> avx3_f64 (fun a b -> Semantics.sse_min_f64 ~dst_old:a ~src:b)
  | Opcode.Vmaxsd -> avx3_f64 (fun a b -> Semantics.sse_max_f64 ~dst_old:a ~src:b)
  | Opcode.Vsqrtsd -> avx3_f64 (fun _ b -> Float.sqrt b)
  | Opcode.Vaddss -> avx3_f32 Fp32.add
  | Opcode.Vsubss -> avx3_f32 Fp32.sub
  | Opcode.Vmulss -> avx3_f32 Fp32.mul
  | Opcode.Vdivss -> avx3_f32 Fp32.div
  | Opcode.Vminss -> avx3_f32 Fp32.min
  | Opcode.Vmaxss -> avx3_f32 Fp32.max
  | Opcode.Vaddps -> avx3_packed128 (fun a b -> Semantics.map_lanes4_f32 Fp32.add a b)
  | Opcode.Vsubps -> avx3_packed128 (fun a b -> Semantics.map_lanes4_f32 Fp32.sub a b)
  | Opcode.Vmulps -> avx3_packed128 (fun a b -> Semantics.map_lanes4_f32 Fp32.mul a b)
  | Opcode.Vaddpd -> avx3_packed128 (fun a b -> Semantics.map_lanes2_f64 ( +. ) a b)
  | Opcode.Vmulpd -> avx3_packed128 (fun a b -> Semantics.map_lanes2_f64 ( *. ) a b)
  | Opcode.Vxorps ->
    avx3_packed128 (fun (alo, ahi) (blo, bhi) ->
        (Int64.logxor alo blo, Int64.logxor ahi bhi))
  | Opcode.Vandps ->
    avx3_packed128 (fun (alo, ahi) (blo, bhi) ->
        (Int64.logand alo blo, Int64.logand ahi bhi))
  | Opcode.Vunpcklps ->
    avx3_packed128 (fun a b ->
        let la = Semantics.lanes4 a and lb = Semantics.lanes4 b in
        Semantics.join4 [| la.(0); lb.(0); la.(1); lb.(1) |])
  (* ----- FMA ----- *)
  | Opcode.Vfmadd132sd -> fma_f64 (fun x1 x2 x3 -> (x1, x3, x2)) false false
  | Opcode.Vfmadd213sd -> fma_f64 (fun x1 x2 x3 -> (x2, x1, x3)) false false
  | Opcode.Vfmadd231sd -> fma_f64 (fun x1 x2 x3 -> (x2, x3, x1)) false false
  | Opcode.Vfnmadd213sd -> fma_f64 (fun x1 x2 x3 -> (x2, x1, x3)) true false
  | Opcode.Vfnmadd231sd -> fma_f64 (fun x1 x2 x3 -> (x2, x3, x1)) true false
  | Opcode.Vfmsub213sd -> fma_f64 (fun x1 x2 x3 -> (x2, x1, x3)) false true
  | Opcode.Vfmadd132ss -> fma_f32 (fun x1 x2 x3 -> (x1, x3, x2))
  | Opcode.Vfmadd213ss -> fma_f32 (fun x1 x2 x3 -> (x2, x1, x3))
  | Opcode.Vfmadd231ss -> fma_f32 (fun x1 x2 x3 -> (x2, x3, x1))
  (* Shuffles, packed 32-bit integer ops, and vector shifts are rare in
     FP kernels; they run through the reference interpreter, which keeps
     them bit-identical by construction. *)
  | Opcode.Shufps | Opcode.Pshufd | Opcode.Pshuflw | Opcode.Punpckldq
  | Opcode.Punpcklqdq | Opcode.Unpcklps | Opcode.Unpcklpd | Opcode.Paddd
  | Opcode.Psubd | Opcode.Pslld | Opcode.Psrld | Opcode.Psllq | Opcode.Psrlq
  | Opcode.Vpshuflw ->
    fallback ()

let instr_closure (m : Machine.t) (i : Instr.t) : unit -> unit =
  (* Operand arrays are resolved eagerly during specialization; an
     instruction with no operands (unconstructible via the mutation
     pools, but cheap to guard) goes through the interpreter so any
     failure surfaces at run time, matching [Exec.run]. *)
  if Array.length i.Instr.operands = 0 then generic_closure m i
  else specialize m i

let compile (m : Machine.t) (p : Program.t) : t =
  let active =
    Array.of_seq
      (Seq.filter_map
         (function
           | Program.Unused -> None
           | Program.Active i -> Some i)
         (Array.to_seq p.Program.slots))
  in
  let n = Array.length active in
  let steps = Array.make n (fun () -> ()) in
  let lat_prefix = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    steps.(k) <- instr_closure m active.(k);
    lat_prefix.(k + 1) <- lat_prefix.(k) + Latency.of_instr active.(k)
  done;
  { steps; lat_prefix }

let length t = Array.length t.steps

let exec (t : t) : Exec.result =
  let steps = t.steps in
  let n = Array.length steps in
  let i = ref 0 in
  let outcome =
    try
      while !i < n do
        steps.(!i) ();
        incr i
      done;
      Exec.Finished
    with
    | Fault f ->
      incr i;
      Exec.Faulted f
    | Memory.Fault_exn mf ->
      incr i;
      Exec.Faulted (Semantics.Segv (Memory.fault_to_string mf))
  in
  let executed = !i in
  let cycles = t.lat_prefix.(executed) in
  if Exec.Counters.is_enabled () then
    Exec.Counters.record ~run_cycles:cycles ~run_instrs:executed
      ~faulted:(match outcome with Exec.Finished -> false | Exec.Faulted _ -> true);
  { Exec.outcome; cycles; executed }
