type t = {
  base : int64;
  data : Bytes.t;
  (* Dirty-range high-water marks: every mutation widens [dirty_lo,
     dirty_hi) so {!restore_from} can undo only the bytes a run actually
     touched.  [dirty_lo >= dirty_hi] means clean. *)
  mutable dirty_lo : int;
  mutable dirty_hi : int;
  (* The bytes this arena was last made bit-equal to by a full copy
     (physical identity).  When a later [restore_from] names the same
     source and that source is itself clean, only the dirty range needs
     re-copying. *)
  mutable shadow : Bytes.t option;
}

type fault =
  | Out_of_bounds of int64
  | Misaligned of int64

exception Fault_exn of fault

let clean_lo = max_int

let create ?(base = 0x100000L) n =
  if n <= 0 then invalid_arg "Memory.create: non-positive size";
  { base; data = Bytes.make n '\000'; dirty_lo = clean_lo; dirty_hi = 0;
    shadow = None }

let base t = t.base
let size t = Bytes.length t.data

let is_clean t = t.dirty_lo >= t.dirty_hi

let copy t =
  { base = t.base; data = Bytes.copy t.data; dirty_lo = clean_lo;
    dirty_hi = 0; shadow = None }

let mark t off n =
  if off < t.dirty_lo then t.dirty_lo <- off;
  let e = off + n in
  if e > t.dirty_hi then t.dirty_hi <- e

let blit_from ~src ~dst =
  if Bytes.length src.data <> Bytes.length dst.data then
    invalid_arg "Memory.blit_from: size mismatch";
  Bytes.blit src.data 0 dst.data 0 (Bytes.length src.data);
  dst.dirty_lo <- clean_lo;
  dst.dirty_hi <- 0;
  dst.shadow <- Some src.data

let integrity_checks = ref false
let set_integrity_checks b = integrity_checks := b

(* Catch dirty-tracking bypasses: on the fast path every byte outside
   [dst]'s dirty range is supposed to already equal [src]'s — a mismatch
   means someone wrote through [unsafe_bytes] (or otherwise around
   {!mark}), which the fast path would silently fail to restore. *)
let check_shadow_integrity ~src ~dst =
  let n = Bytes.length dst.data in
  let lo = min dst.dirty_lo n and hi = max dst.dirty_hi 0 in
  let check i =
    if not (Char.equal (Bytes.get dst.data i) (Bytes.get src.data i)) then
      failwith
        (Printf.sprintf
           "Memory.restore_from: byte at offset %d differs from the restore \
            source outside the dirty range [%d,%d) — the arena was mutated \
            without dirty tracking (direct unsafe_bytes write?)"
           i lo hi)
  in
  for i = 0 to lo - 1 do
    check i
  done;
  for i = hi to n - 1 do
    check i
  done

let restore_from ~src ~dst =
  if Bytes.length src.data <> Bytes.length dst.data then
    invalid_arg "Memory.restore_from: size mismatch";
  let fast =
    is_clean src
    && (match dst.shadow with
        | Some s -> s == src.data
        | None -> false)
  in
  if fast then begin
    if !integrity_checks then check_shadow_integrity ~src ~dst;
    if dst.dirty_lo < dst.dirty_hi then
      Bytes.blit src.data dst.dirty_lo dst.data dst.dirty_lo
        (dst.dirty_hi - dst.dirty_lo);
    dst.dirty_lo <- clean_lo;
    dst.dirty_hi <- 0
  end
  else blit_from ~src ~dst

(* One unsigned comparison covers both bounds: a negative [off] (address
   below base, or so far above that the subtraction wrapped) is a huge
   unsigned value, and comparing against [size - n] instead of adding [n]
   to [off] cannot overflow. *)
let offset t addr n =
  let off = Int64.sub addr t.base in
  let lim = size t - n in
  if lim >= 0 && Int64.unsigned_compare off (Int64.of_int lim) <= 0 then
    Some (Int64.to_int off)
  else None

(* Same bounds check, raising instead of boxing an option: the compiled
   engine's accesses go through here. *)
let offset_exn t addr n =
  let off = Int64.sub addr t.base in
  let lim = size t - n in
  if lim >= 0 && Int64.unsigned_compare off (Int64.of_int lim) <= 0 then
    Int64.to_int off
  else raise (Fault_exn (Out_of_bounds addr))

(* Little-endian load/store at a validated offset.  The 4- and 8-byte
   widths — every FP access — go through Bytes.get/set_int*_le instead of
   a byte-at-a-time loop. *)
let load t off n =
  if n = 8 then Bytes.get_int64_le t.data off
  else if n = 4 then
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data off)) 0xffff_ffffL
  else begin
    let v = ref 0L in
    for i = n - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code (Bytes.get t.data (off + i))))
    done;
    !v
  end

let store t off n v =
  if n = 8 then Bytes.set_int64_le t.data off v
  else if n = 4 then Bytes.set_int32_le t.data off (Int64.to_int32 v)
  else
    for i = 0 to n - 1 do
      let b = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
      Bytes.set t.data (off + i) (Char.chr b)
    done;
  mark t off n

let read t addr n =
  if n < 1 || n > 8 then invalid_arg "Memory.read: bad width";
  match offset t addr n with
  | None -> Error (Out_of_bounds addr)
  | Some off -> Ok (load t off n)

let write t addr n v =
  if n < 1 || n > 8 then invalid_arg "Memory.write: bad width";
  match offset t addr n with
  | None -> Error (Out_of_bounds addr)
  | Some off ->
    store t off n v;
    Ok ()

let read_exn t addr n = load t (offset_exn t addr n) n

let write_exn t addr n v = store t (offset_exn t addr n) n v

let read128 ?(aligned = false) t addr =
  if aligned && Int64.compare (Int64.rem addr 16L) 0L <> 0 then
    Error (Misaligned addr)
  else
    match read t addr 8 with
    | Error _ as e -> Result.map (fun _ -> (0L, 0L)) e
    | Ok lo ->
      (match read t (Int64.add addr 8L) 8 with
       | Error f -> Error f
       | Ok hi -> Ok (lo, hi))

let write128 ?(aligned = false) t addr (lo, hi) =
  if aligned && Int64.compare (Int64.rem addr 16L) 0L <> 0 then
    Error (Misaligned addr)
  else
    match write t addr 8 lo with
    | Error _ as e -> e
    | Ok () -> write t (Int64.add addr 8L) 8 hi

let read128_exn ?(aligned = false) t addr =
  if aligned && Int64.compare (Int64.rem addr 16L) 0L <> 0 then
    raise (Fault_exn (Misaligned addr))
  else begin
    let lo = read_exn t addr 8 in
    let hi = read_exn t (Int64.add addr 8L) 8 in
    (lo, hi)
  end

let write128_exn ?(aligned = false) t addr (lo, hi) =
  if aligned && Int64.compare (Int64.rem addr 16L) 0L <> 0 then
    raise (Fault_exn (Misaligned addr))
  else begin
    write_exn t addr 8 lo;
    write_exn t (Int64.add addr 8L) 8 hi
  end

let set_bytes t addr s =
  match offset t addr (String.length s) with
  | None -> invalid_arg "Memory.set_bytes: out of range"
  | Some off ->
    Bytes.blit_string s 0 t.data off (String.length s);
    mark t off (String.length s)

let unsafe_bytes t = t.data

let equal a b = Int64.equal a.base b.base && Bytes.equal a.data b.data

let fault_to_string = function
  | Out_of_bounds a -> Printf.sprintf "out-of-bounds access at 0x%Lx" a
  | Misaligned a -> Printf.sprintf "misaligned access at 0x%Lx" a
