type t = {
  base : int64;
  data : Bytes.t;
}

type fault =
  | Out_of_bounds of int64
  | Misaligned of int64

let create ?(base = 0x100000L) n =
  if n <= 0 then invalid_arg "Memory.create: non-positive size";
  { base; data = Bytes.make n '\000' }

let base t = t.base
let size t = Bytes.length t.data

let copy t = { base = t.base; data = Bytes.copy t.data }

let blit_from ~src ~dst =
  if Bytes.length src.data <> Bytes.length dst.data then
    invalid_arg "Memory.blit_from: size mismatch";
  Bytes.blit src.data 0 dst.data 0 (Bytes.length src.data)

let offset t addr n =
  let off = Int64.sub addr t.base in
  if
    Int64.compare off 0L >= 0
    && Int64.compare (Int64.add off (Int64.of_int n)) (Int64.of_int (size t)) <= 0
  then Some (Int64.to_int off)
  else None

let read t addr n =
  if n < 1 || n > 8 then invalid_arg "Memory.read: bad width";
  match offset t addr n with
  | None -> Error (Out_of_bounds addr)
  | Some off ->
    let v = ref 0L in
    for i = n - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code (Bytes.get t.data (off + i))))
    done;
    Ok !v

let write t addr n v =
  if n < 1 || n > 8 then invalid_arg "Memory.write: bad width";
  match offset t addr n with
  | None -> Error (Out_of_bounds addr)
  | Some off ->
    for i = 0 to n - 1 do
      let b = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
      Bytes.set t.data (off + i) (Char.chr b)
    done;
    Ok ()

let read128 ?(aligned = false) t addr =
  if aligned && Int64.compare (Int64.rem addr 16L) 0L <> 0 then
    Error (Misaligned addr)
  else
    match read t addr 8 with
    | Error _ as e -> Result.map (fun _ -> (0L, 0L)) e
    | Ok lo ->
      (match read t (Int64.add addr 8L) 8 with
       | Error f -> Error f
       | Ok hi -> Ok (lo, hi))

let write128 ?(aligned = false) t addr (lo, hi) =
  if aligned && Int64.compare (Int64.rem addr 16L) 0L <> 0 then
    Error (Misaligned addr)
  else
    match write t addr 8 lo with
    | Error _ as e -> e
    | Ok () -> write t (Int64.add addr 8L) 8 hi

let set_bytes t addr s =
  match offset t addr (String.length s) with
  | None -> invalid_arg "Memory.set_bytes: out of range"
  | Some off -> Bytes.blit_string s 0 t.data off (String.length s)

let to_bytes t = t.data

let equal a b = Int64.equal a.base b.base && Bytes.equal a.data b.data

let fault_to_string = function
  | Out_of_bounds a -> Printf.sprintf "out-of-bounds access at 0x%Lx" a
  | Misaligned a -> Printf.sprintf "misaligned access at 0x%Lx" a
