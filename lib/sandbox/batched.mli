(** Batched (struct-of-arrays) execution engine.

    Where {!Compiled} replays a compiled trace once per test case,
    [Batched] runs {e every} test case through each instruction before
    advancing to the next.  A {!batch} holds N lanes — one per test case
    — as struct-of-arrays register planes (register r's value for lane l
    lives at quad offset [r * n + l] of a single [Bytes.t]), a per-lane
    flags record, and a per-lane memory arena.  Pristine-plus-testcase
    state is baked into image planes at {!create_batch}, so {!reset}
    restores all N lanes with two blits, a flag restore, and one
    O(bytes-written) {!Memory.restore_from} per lane.

    A lane that faults {e parks}: its fault, executed count and cycle
    count are latched and the remaining lanes proceed.  {!exec}'s
    [on_fault] hook fires as each lane parks so the caller can abort the
    whole batch mid-run — the search uses this to lift the
    early-termination cutoff to batch granularity (see {!Cost}).

    Guarantee: for any program and any lane state, running a lane to
    completion (or to its fault) leaves that lane's registers, memory
    and flags in exactly the state {!Exec.run} would, and latches the
    same fault, executed count and cycle count — bit-identical, so
    fixed-seed searches produce the same winner under all three engines.
    Opcodes without a specialized translation are executed through
    {!Semantics.step} on the lane's scratch machine. *)

exception Abort
(** Raised internally when [on_fault] requests an abort; never escapes
    {!exec}. *)

type batch
(** N test-case lanes plus their baked pristine images.  Create once per
    (pristine machine × test set); reuse across proposals. *)

type t
(** A program compiled against a batch. *)

val create_batch : Machine.t -> Testcase.t array -> batch
(** [create_batch pristine tests] bakes [Testcase.apply tests.(l)] over
    a copy of [pristine] into lane [l]'s image.  The batch starts in the
    reset state.  Raises [Invalid_argument] on an empty test array. *)

val lane_count : batch -> int

val reset : batch -> unit
(** Restore every lane to its baked pristine+testcase image and mark all
    lanes live.  Call before each {!exec}. *)

val apply_testcase : batch -> lane:int -> Testcase.t -> unit
(** Overlay a test case onto one lane's current state (registers and
    memory), for callers that pick inputs per run rather than baking
    them — e.g. the validator's random sampling.  Use after {!reset}. *)

val compile : batch -> Program.t -> t
(** Translate [p]'s active slots into lane-wise closures over the batch.
    O(program length); performs all operand matching so {!exec} does
    none. *)

val length : t -> int
(** Number of active (compiled) instructions. *)

val exec : ?on_fault:(lane:int -> Semantics.fault -> bool) -> t -> bool
(** Run all live lanes through the compiled trace, one instruction at a
    time across the batch.  [on_fault] is called at the moment a lane
    parks (its results already latched); returning [true] aborts the
    remaining work and makes [exec] return [true].  Without an abort,
    returns [false] and every lane's result is latched.  Feeds
    {!Exec.Counters} once per lane when enabled. *)

val fault : batch -> lane:int -> Semantics.fault option
(** The lane's latched fault, or [None] if it finished. *)

val result : batch -> lane:int -> Exec.result
(** The lane's latched outcome/cycles/executed triple, bit-identical to
    what {!Exec.run} would return for that lane's test case.  Only
    meaningful after a non-aborted {!exec}. *)

val read_outputs : batch -> lane:int -> Spec.t -> Spec.value array
(** The spec's outputs read from the lane's register planes — what
    {!Spec.read_outputs} would return on the equivalent machine. *)

val lane_machine : batch -> lane:int -> Machine.t
(** A machine view of one lane: registers synced from the planes into
    the lane's scratch machine, whose flags and memory {e are} the
    lane's own.  For differential tests; the view is invalidated by the
    next [exec]/[reset] and writes to its register arrays are not
    written back. *)
