(* Batched execution engine: translate a program once into an array of
   pre-specialized closures over a *batch* of N test-case lanes, then run
   every lane through each instruction before advancing to the next.

   Layout is struct-of-arrays: one [Bytes.t] plane holds register r's
   value for every lane contiguously (offset [(r * n + lane) * 8]), so
   the per-instruction lane loop is a linear walk over unboxed storage —
   no per-test machine restore, no boxed [int64 array] writes, and the
   per-proposal translation cost is paid once for all N lanes.

   Pristine state is baked per batch: [create_batch] applies each test
   case to a copy of the pristine machine and scatters the result into
   [gp0]/[xmm0] image planes plus per-lane memory arenas, so [reset] is
   two [Bytes.blit]s, a flag restore, and one O(bytes written)
   {!Memory.restore_from} per lane — instead of a full restore + test
   case application per test per proposal.

   A faulting lane *parks*: its fault, executed count, and cycle count
   are latched, it is compacted out of the live-lane set, and the
   remaining lanes proceed.  {!exec}'s optional [on_fault] hook fires at
   the moment a lane parks, letting the caller abort the whole batch as
   soon as the latched faults alone prove the proposal will be rejected
   (the batch-granular cutoff; see {!Cost}).

   Bit-identical by construction, like {!Compiled}: every closure
   mirrors the corresponding arm of {!Semantics.step} — same read order,
   same fault order, same fault messages — and all value-level
   arithmetic is shared with the interpreter via {!Semantics}'s exported
   helpers.  Flag updates and conditions run against a per-lane scratch
   {!Machine.t} whose [flags] record and [mem] arena *are* the lane's
   own (shared by identity), so the interpreter's flag helpers apply
   unchanged.  Opcodes without a specialized translation sync the lane's
   registers into its scratch machine, step {!Semantics.step}, and sync
   back — so the engines cannot diverge on them. *)

open X86

exception Fault of Semantics.fault
exception Abort

type batch = {
  n : int;  (* number of lanes = test cases *)
  gp : Bytes.t;  (* 16*n quads, register-major *)
  xmm : Bytes.t;  (* 32*n quads, quad-slot-major *)
  gp0 : Bytes.t;  (* baked pristine+testcase images *)
  xmm0 : Bytes.t;
  flags0 : Machine.flags;
  mem : Memory.t array;  (* per-lane arenas *)
  mem0 : Memory.t array;  (* baked pristine+testcase arenas *)
  scr : Machine.t array;
      (* per-lane scratch machines; [flags] and [mem] are the lane's own
         (shared by identity), register arrays are sync buffers *)
  live : int array;  (* live lane indices occupy the first n_live slots *)
  mutable n_live : int;
  mutable li : int;  (* cursor into [live] during a batch-step *)
  mutable cur_step : int;
  mutable cur_lat : int;  (* lat_prefix.(cur_step + 1), for parking *)
  fault : Semantics.fault option array;  (* latched per lane *)
  executed : int array;
  cycles : int array;
}

type t = {
  b : batch;
  steps : (unit -> unit) array;
  lat_prefix : int array;
      (* lat_prefix.(k) = cycles after executing the first k closures *)
}

let xi r = 2 * Reg.xmm_index r
let gi r = Reg.gp_index r

let lo32 = 0xffff_ffffL
let hi32_mask = 0xffff_ffff_0000_0000L

(* ----- plane access ----- *)

let get_gp_lane b g lane = Bytes.get_int64_le b.gp (((g * b.n) + lane) lsl 3)
let set_gp_lane b g lane v = Bytes.set_int64_le b.gp (((g * b.n) + lane) lsl 3) v
let get_xq_lane b k lane = Bytes.get_int64_le b.xmm (((k * b.n) + lane) lsl 3)
let set_xq_lane b k lane v = Bytes.set_int64_le b.xmm (((k * b.n) + lane) lsl 3) v

let sync_to_scratch b lane =
  let m = b.scr.(lane) in
  for g = 0 to 15 do
    m.Machine.gp.(g) <- get_gp_lane b g lane
  done;
  for k = 0 to 31 do
    m.Machine.xmm.(k) <- get_xq_lane b k lane
  done

let sync_from_scratch b lane =
  let m = b.scr.(lane) in
  for g = 0 to 15 do
    set_gp_lane b g lane m.Machine.gp.(g)
  done;
  for k = 0 to 31 do
    set_xq_lane b k lane m.Machine.xmm.(k)
  done

(* ----- batch lifecycle ----- *)

let copy_flags (f : Machine.flags) =
  {
    Machine.cf = f.Machine.cf;
    zf = f.Machine.zf;
    sf = f.Machine.sf;
    o_f = f.Machine.o_f;
    pf = f.Machine.pf;
  }

let create_batch (pristine : Machine.t) (tests : Testcase.t array) : batch =
  let n = Array.length tests in
  if n = 0 then invalid_arg "Batched.create_batch: empty test set";
  let gp0 = Bytes.create ((16 * n) lsl 3) in
  let xmm0 = Bytes.create ((32 * n) lsl 3) in
  let mem0 =
    Array.init n (fun lane ->
        let m = Machine.copy pristine in
        Testcase.apply tests.(lane) m;
        for g = 0 to 15 do
          Bytes.set_int64_le gp0 (((g * n) + lane) lsl 3) m.Machine.gp.(g)
        done;
        for k = 0 to 31 do
          Bytes.set_int64_le xmm0 (((k * n) + lane) lsl 3) m.Machine.xmm.(k)
        done;
        m.Machine.mem)
  in
  let mem =
    Array.init n (fun lane ->
        let a = Memory.copy mem0.(lane) in
        (* establish the remembered-source fast path for restore_from *)
        Memory.blit_from ~src:mem0.(lane) ~dst:a;
        a)
  in
  let scr =
    Array.init n (fun lane ->
        {
          Machine.gp = Array.make 16 0L;
          xmm = Array.make 32 0L;
          flags = copy_flags pristine.Machine.flags;
          mem = mem.(lane);
        })
  in
  {
    n;
    gp = Bytes.copy gp0;
    xmm = Bytes.copy xmm0;
    gp0;
    xmm0;
    flags0 = copy_flags pristine.Machine.flags;
    mem;
    mem0;
    scr;
    live = Array.init n (fun l -> l);
    n_live = n;
    li = 0;
    cur_step = 0;
    cur_lat = 0;
    fault = Array.make n None;
    executed = Array.make n 0;
    cycles = Array.make n 0;
  }

let lane_count b = b.n

let reset b =
  Bytes.blit b.gp0 0 b.gp 0 (Bytes.length b.gp0);
  Bytes.blit b.xmm0 0 b.xmm 0 (Bytes.length b.xmm0);
  let f0 = b.flags0 in
  for lane = 0 to b.n - 1 do
    let f = b.scr.(lane).Machine.flags in
    f.Machine.cf <- f0.Machine.cf;
    f.Machine.zf <- f0.Machine.zf;
    f.Machine.sf <- f0.Machine.sf;
    f.Machine.o_f <- f0.Machine.o_f;
    f.Machine.pf <- f0.Machine.pf;
    Memory.restore_from ~src:b.mem0.(lane) ~dst:b.mem.(lane);
    b.live.(lane) <- lane;
    b.fault.(lane) <- None;
    b.executed.(lane) <- 0;
    b.cycles.(lane) <- 0
  done;
  b.li <- 0;
  b.n_live <- b.n

let apply_testcase b ~lane tc =
  sync_to_scratch b lane;
  Testcase.apply tc b.scr.(lane);
  sync_from_scratch b lane

let lane_machine b ~lane =
  sync_to_scratch b lane;
  b.scr.(lane)

let fault b ~lane = b.fault.(lane)

let result b ~lane =
  let outcome =
    match b.fault.(lane) with
    | None -> Exec.Finished
    | Some f -> Exec.Faulted f
  in
  { Exec.outcome; cycles = b.cycles.(lane); executed = b.executed.(lane) }

let read_outputs b ~lane (spec : Spec.t) =
  List.map
    (fun o ->
      match o with
      | Spec.Out_xmm_f64 r ->
        Spec.Vf64 (Int64.float_of_bits (get_xq_lane b (xi r) lane))
      | Spec.Out_xmm_f32 r ->
        Spec.Vf32 (Int32.float_of_bits (Int64.to_int32 (get_xq_lane b (xi r) lane)))
      | Spec.Out_xmm_f32_hi r ->
        Spec.Vf32
          (Int32.float_of_bits
             (Int64.to_int32
                (Int64.shift_right_logical (get_xq_lane b (xi r) lane) 32)))
      | Spec.Out_gp r -> Spec.Vi64 (get_gp_lane b (gi r) lane))
    spec.Spec.outputs
  |> Array.of_list

(* ----- translation ----- *)

(* Fallback for opcodes without a specialized translation: round-trip
   the lane's registers through its scratch machine and step the
   reference interpreter.  Flags and memory are shared by identity, so
   only the register files need syncing. *)
let generic_closure (bt : batch) (i : Instr.t) : unit -> unit =
 fun () ->
  while bt.li < bt.n_live do
    let lane = bt.live.(bt.li) in
    sync_to_scratch bt lane;
    let r = Semantics.step bt.scr.(lane) i in
    sync_from_scratch bt lane;
    (match r with
     | Ok () -> ()
     | Error f -> raise (Fault f));
    bt.li <- bt.li + 1
  done

let specialize (bt : batch) (i : Instr.t) : unit -> unit =
  let n = bt.n in
  let gpB = bt.gp in
  let xmmB = bt.xmm in
  let memA = bt.mem in
  let scrA = bt.scr in
  let grow g = (g * n) lsl 3 in
  let xrow k = (k * n) lsl 3 in
  let ops = i.Instr.operands in
  let nops = Array.length ops in
  let dst = ops.(nops - 1) in
  (* The lane loop shared by every non-fast-path template.  On a fault
     the body raises; {!exec} parks the lane at [bt.li] (compacting the
     live set without advancing the cursor) and re-enters the closure,
     which resumes the loop on the swapped-in lane. *)
  let lanes (body : int -> unit) : unit -> unit =
   fun () ->
    while bt.li < bt.n_live do
      body bt.live.(bt.li);
      bt.li <- bt.li + 1
    done
  in
  (* A fault known at compile time still fires per lane in operand order
     at run time. *)
  let raise_all msg = lanes (fun _ -> raise (Fault (Semantics.Sigill msg))) in
  let bad_dst_after (pre : (int -> unit) list) msg =
    lanes (fun lane ->
        List.iter (fun f -> f lane) pre;
        raise (Fault (Semantics.Sigill msg)))
  in
  (* ----- operand resolution (compile-time); readers take the lane ----- *)
  let eff (mm : Operand.mem) : int -> int64 =
    let d = Int64.of_int mm.Operand.disp in
    match mm.Operand.base, mm.Operand.index with
    | None, None -> fun _ -> d
    | Some b, None ->
      let ro = grow (gi b) in
      fun lane -> Int64.add (Bytes.get_int64_le gpB (ro + (lane lsl 3))) d
    | None, Some (r, s) ->
      let ro = grow (gi r) and sc = Int64.of_int s in
      fun lane ->
        Int64.add (Int64.mul (Bytes.get_int64_le gpB (ro + (lane lsl 3))) sc) d
    | Some b, Some (r, s) ->
      let bo = grow (gi b) and ro = grow (gi r) and sc = Int64.of_int s in
      fun lane ->
        Int64.add
          (Int64.add
             (Bytes.get_int64_le gpB (bo + (lane lsl 3)))
             (Int64.mul (Bytes.get_int64_le gpB (ro + (lane lsl 3))) sc))
          d
  in
  let read_int w (o : Operand.t) : int -> int64 =
    match o with
    | Operand.Gp r ->
      let ro = grow (gi r) in
      (match w with
       | Reg.Q -> fun lane -> Bytes.get_int64_le gpB (ro + (lane lsl 3))
       | Reg.L ->
         fun lane ->
           Int64.logand (Bytes.get_int64_le gpB (ro + (lane lsl 3))) lo32)
    | Operand.Imm v ->
      let v = match w with Reg.Q -> v | Reg.L -> Int64.logand v lo32 in
      fun _ -> v
    | Operand.Mem mm ->
      let ea = eff mm and nb = Semantics.width_bytes w in
      fun lane -> Memory.read_exn memA.(lane) (ea lane) nb
    | Operand.Xmm _ ->
      fun _ -> raise (Fault (Semantics.Sigill "xmm operand in integer context"))
  in
  let write_int w (o : Operand.t) : int -> int64 -> unit =
    match o with
    | Operand.Gp r ->
      let ro = grow (gi r) in
      (match w with
       | Reg.Q -> fun lane v -> Bytes.set_int64_le gpB (ro + (lane lsl 3)) v
       | Reg.L ->
         fun lane v ->
           Bytes.set_int64_le gpB (ro + (lane lsl 3)) (Int64.logand v lo32))
    | Operand.Mem mm ->
      let ea = eff mm and nb = Semantics.width_bytes w in
      fun lane v -> Memory.write_exn memA.(lane) (ea lane) nb v
    | Operand.Imm _ | Operand.Xmm _ ->
      fun _ _ -> raise (Fault (Semantics.Sigill "bad integer destination"))
  in
  let read_q (o : Operand.t) : int -> int64 =
    match o with
    | Operand.Xmm r ->
      let ro = xrow (xi r) in
      fun lane -> Bytes.get_int64_le xmmB (ro + (lane lsl 3))
    | Operand.Mem mm ->
      let ea = eff mm in
      fun lane -> Memory.read_exn memA.(lane) (ea lane) 8
    | Operand.Gp r ->
      let ro = grow (gi r) in
      fun lane -> Bytes.get_int64_le gpB (ro + (lane lsl 3))
    | Operand.Imm _ ->
      fun _ -> raise (Fault (Semantics.Sigill "immediate in xmm context"))
  in
  let read_d (o : Operand.t) : int -> int64 =
    match o with
    | Operand.Xmm r ->
      let ro = xrow (xi r) in
      fun lane -> Int64.logand (Bytes.get_int64_le xmmB (ro + (lane lsl 3))) lo32
    | Operand.Mem mm ->
      let ea = eff mm in
      fun lane -> Memory.read_exn memA.(lane) (ea lane) 4
    | Operand.Gp r ->
      let ro = grow (gi r) in
      fun lane -> Int64.logand (Bytes.get_int64_le gpB (ro + (lane lsl 3))) lo32
    | Operand.Imm _ ->
      fun _ -> raise (Fault (Semantics.Sigill "immediate in xmm context"))
  in
  let read_f64 o =
    let r = read_q o in
    fun lane -> Int64.float_of_bits (r lane)
  in
  let read_f32 o =
    let r = read_d o in
    fun lane -> Int32.float_of_bits (Int64.to_int32 (r lane))
  in
  let read_x128 ~aligned (o : Operand.t) : int -> int64 * int64 =
    match o with
    | Operand.Xmm r ->
      let ro = xrow (xi r) and ro1 = xrow (xi r + 1) in
      fun lane ->
        let o = lane lsl 3 in
        (Bytes.get_int64_le xmmB (ro + o), Bytes.get_int64_le xmmB (ro1 + o))
    | Operand.Mem mm ->
      let ea = eff mm in
      fun lane -> Memory.read128_exn ~aligned memA.(lane) (ea lane)
    | Operand.Gp _ | Operand.Imm _ ->
      fun _ -> raise (Fault (Semantics.Sigill "bad 128-bit source"))
  in
  let set_f32_lane ro lane v =
    let bits32 = Int64.of_int32 (Int32.bits_of_float v) in
    let o = ro + (lane lsl 3) in
    Bytes.set_int64_le xmmB o
      (Int64.logor
         (Int64.logand (Bytes.get_int64_le xmmB o) hi32_mask)
         (Int64.logand bits32 lo32))
  in
  let get_f32_lane ro lane =
    Int32.float_of_bits (Int64.to_int32 (Bytes.get_int64_le xmmB (ro + (lane lsl 3))))
  in
  (* ----- shared instruction templates ----- *)
  let scalar_f64 f =
    let rx = read_f64 ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let dro = xrow (xi d) in
      (match ops.(0) with
       | Operand.Xmm s ->
         (* register-register scalar FP: the hot arm; nothing in the
            loop body can fault, so it runs as a straight-line sweep *)
         let sro = xrow (xi s) in
         fun () ->
           let live = bt.live in
           for li = bt.li to bt.n_live - 1 do
             let o = live.(li) lsl 3 in
             let x = Int64.float_of_bits (Bytes.get_int64_le xmmB (sro + o)) in
             let old = Int64.float_of_bits (Bytes.get_int64_le xmmB (dro + o)) in
             Bytes.set_int64_le xmmB (dro + o) (Int64.bits_of_float (f old x))
           done;
           bt.li <- bt.n_live
       | _ ->
         lanes (fun lane ->
             let x = rx lane in
             let o = dro + (lane lsl 3) in
             let old = Int64.float_of_bits (Bytes.get_int64_le xmmB o) in
             Bytes.set_int64_le xmmB o (Int64.bits_of_float (f old x))))
    | _ -> bad_dst_after [ (fun lane -> ignore (rx lane)) ] "expected xmm destination"
  in
  let scalar_f32 f =
    let rx = read_f32 ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let dro = xrow (xi d) in
      lanes (fun lane ->
          let x = rx lane in
          set_f32_lane dro lane (f (get_f32_lane dro lane) x))
    | _ -> bad_dst_after [ (fun lane -> ignore (rx lane)) ] "expected xmm destination"
  in
  let packed_bitop f =
    let rs = read_x128 ~aligned:false ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
      lanes (fun lane ->
          let slo, shi = rs lane in
          let o = lane lsl 3 in
          Bytes.set_int64_le xmmB (dro + o) (f (Bytes.get_int64_le xmmB (dro + o)) slo);
          Bytes.set_int64_le xmmB (dro1 + o)
            (f (Bytes.get_int64_le xmmB (dro1 + o)) shi))
    | _ -> bad_dst_after [ (fun lane -> ignore (rs lane)) ] "expected xmm destination"
  in
  let packed_f32 f =
    let rs = read_x128 ~aligned:false ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
      lanes (fun lane ->
          let s = rs lane in
          let o = lane lsl 3 in
          let lo, hi =
            Semantics.map_lanes4_f32 f
              (Bytes.get_int64_le xmmB (dro + o), Bytes.get_int64_le xmmB (dro1 + o))
              s
          in
          Bytes.set_int64_le xmmB (dro + o) lo;
          Bytes.set_int64_le xmmB (dro1 + o) hi)
    | _ -> bad_dst_after [ (fun lane -> ignore (rs lane)) ] "expected xmm destination"
  in
  let packed_f64 f =
    let rs = read_x128 ~aligned:false ops.(0) in
    match dst with
    | Operand.Xmm d ->
      let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
      lanes (fun lane ->
          let s = rs lane in
          let o = lane lsl 3 in
          let lo, hi =
            Semantics.map_lanes2_f64 f
              (Bytes.get_int64_le xmmB (dro + o), Bytes.get_int64_le xmmB (dro1 + o))
              s
          in
          Bytes.set_int64_le xmmB (dro + o) lo;
          Bytes.set_int64_le xmmB (dro1 + o) hi)
    | _ -> bad_dst_after [ (fun lane -> ignore (rs lane)) ] "expected xmm destination"
  in
  let avx3_f64 f =
    let rx2 = read_f64 ops.(0) and rx1 = read_f64 ops.(1) in
    match dst, ops.(1) with
    | Operand.Xmm d, Operand.Xmm s1 ->
      let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
      let s1ro1 = xrow (xi s1 + 1) in
      lanes (fun lane ->
          let x2 = rx2 lane in
          let x1 = rx1 lane in
          let o = lane lsl 3 in
          let hi1 = Bytes.get_int64_le xmmB (s1ro1 + o) in
          Bytes.set_int64_le xmmB (dro + o) (Int64.bits_of_float (f x1 x2));
          Bytes.set_int64_le xmmB (dro1 + o) hi1)
    | _ ->
      bad_dst_after
        [ (fun lane -> ignore (rx2 lane)); (fun lane -> ignore (rx1 lane)) ]
        "expected xmm destination"
  in
  let avx3_f32 f =
    let rx2 = read_f32 ops.(0) and rx1 = read_f32 ops.(1) in
    match dst, ops.(1) with
    | Operand.Xmm d, Operand.Xmm s1 ->
      let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
      let s1ro = xrow (xi s1) and s1ro1 = xrow (xi s1 + 1) in
      lanes (fun lane ->
          let x2 = rx2 lane in
          let x1 = rx1 lane in
          let o = lane lsl 3 in
          let lo1 = Bytes.get_int64_le xmmB (s1ro + o) in
          let hi1 = Bytes.get_int64_le xmmB (s1ro1 + o) in
          let res = Semantics.dword_of (Fp32.round (f x1 x2)) in
          Bytes.set_int64_le xmmB (dro + o) (Int64.logor (Int64.logand lo1 hi32_mask) res);
          Bytes.set_int64_le xmmB (dro1 + o) hi1)
    | _ ->
      bad_dst_after
        [ (fun lane -> ignore (rx2 lane)); (fun lane -> ignore (rx1 lane)) ]
        "expected xmm destination"
  in
  let avx3_packed128 f =
    let rs2 = read_x128 ~aligned:false ops.(0) in
    let rs1 = read_x128 ~aligned:false ops.(1) in
    match dst with
    | Operand.Xmm d ->
      let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
      lanes (fun lane ->
          let s2 = rs2 lane in
          let s1 = rs1 lane in
          let lo, hi = f s1 s2 in
          let o = lane lsl 3 in
          Bytes.set_int64_le xmmB (dro + o) lo;
          Bytes.set_int64_le xmmB (dro1 + o) hi)
    | _ ->
      bad_dst_after
        [ (fun lane -> ignore (rs2 lane)); (fun lane -> ignore (rs1 lane)) ]
        "expected xmm destination"
  in
  let fma_f64 pick neg_prod sub_addend =
    let rx3 = read_f64 ops.(0) in
    let prod_sign = if neg_prod then -1.0 else 1.0 in
    match dst, ops.(1) with
    | Operand.Xmm d, Operand.Xmm s2 ->
      let dro = xrow (xi d) and s2ro = xrow (xi s2) in
      lanes (fun lane ->
          let x3 = rx3 lane in
          let o = lane lsl 3 in
          let x2 = Int64.float_of_bits (Bytes.get_int64_le xmmB (s2ro + o)) in
          let x1 = Int64.float_of_bits (Bytes.get_int64_le xmmB (dro + o)) in
          let a, b, c = pick x1 x2 x3 in
          let addend = if sub_addend then -.c else c in
          Bytes.set_int64_le xmmB (dro + o)
            (Int64.bits_of_float (Float.fma (prod_sign *. a) b addend)))
    | _ -> bad_dst_after [ (fun lane -> ignore (rx3 lane)) ] "expected xmm destination"
  in
  let fma_f32 pick =
    let rx3 = read_f32 ops.(0) in
    match dst, ops.(1) with
    | Operand.Xmm d, Operand.Xmm s2 ->
      let dro = xrow (xi d) and s2ro = xrow (xi s2) in
      lanes (fun lane ->
          let x3 = rx3 lane in
          let x2 = get_f32_lane s2ro lane in
          let x1 = get_f32_lane dro lane in
          let a, b, c = pick x1 x2 x3 in
          set_f32_lane dro lane (Fp32.round (Float.fma a b c)))
    | _ -> bad_dst_after [ (fun lane -> ignore (rx3 lane)) ] "expected xmm destination"
  in
  (* GP two-operand arithmetic: read dst, read src, flags, write —
     exactly the interpreter's order.  Flags live on the lane's scratch
     machine (shared record), so {!Semantics}'s flag helpers apply. *)
  let gp_arith w combine =
    let ra = read_int w dst and rb = read_int w ops.(0) in
    let wr = write_int w dst in
    lanes (fun lane ->
        let a = ra lane in
        let b = rb lane in
        wr lane (combine scrA.(lane) a b))
  in
  let fallback () = generic_closure bt i in
  match i.Instr.op with
  (* ----- GP ----- *)
  | Opcode.Mov w ->
    let rv = read_int w ops.(0) and wr = write_int w dst in
    lanes (fun lane -> wr lane (rv lane))
  | Opcode.Movabs ->
    (match ops.(0), dst with
     | Operand.Imm v, Operand.Gp d ->
       (* hot in FP kernels (constant loads go movabs+movq) *)
       let dro = grow (gi d) in
       fun () ->
         let live = bt.live in
         for li = bt.li to bt.n_live - 1 do
           Bytes.set_int64_le gpB (dro + (live.(li) lsl 3)) v
         done;
         bt.li <- bt.n_live
     | Operand.Imm v, _ ->
       let wr = write_int Reg.Q dst in
       lanes (fun lane -> wr lane v)
     | _ -> raise_all "expected immediate")
  | Opcode.Lea w ->
    (match ops.(0) with
     | Operand.Mem mm ->
       let ea = eff mm and wr = write_int w dst in
       lanes (fun lane -> wr lane (ea lane))
     | _ -> raise_all "lea needs a memory source")
  | Opcode.Add w ->
    gp_arith w (fun m a b ->
        let r = Int64.add a b in
        Semantics.set_add_flags m w a b r;
        Semantics.trunc w r)
  | Opcode.Sub w ->
    gp_arith w (fun m a b ->
        let r = Int64.sub a b in
        Semantics.set_sub_flags m w a b r;
        Semantics.trunc w r)
  | Opcode.Imul w ->
    gp_arith w (fun m a b ->
        let r = Int64.mul (Semantics.signed w a) (Semantics.signed w b) in
        Semantics.set_logic_flags m w r;
        Semantics.trunc w r)
  | Opcode.And w ->
    gp_arith w (fun m a b ->
        let r = Int64.logand a b in
        Semantics.set_logic_flags m w r;
        r)
  | Opcode.Or w ->
    gp_arith w (fun m a b ->
        let r = Int64.logor a b in
        Semantics.set_logic_flags m w r;
        r)
  | Opcode.Xor w ->
    gp_arith w (fun m a b ->
        let r = Int64.logxor a b in
        Semantics.set_logic_flags m w r;
        r)
  | Opcode.Not w ->
    let ra = read_int w dst and wr = write_int w dst in
    lanes (fun lane -> wr lane (Semantics.trunc w (Int64.lognot (ra lane))))
  | Opcode.Neg w ->
    let ra = read_int w dst and wr = write_int w dst in
    lanes (fun lane ->
        let a = ra lane in
        let r = Int64.neg (Semantics.signed w a) in
        Semantics.set_sub_flags scrA.(lane) w 0L a r;
        wr lane (Semantics.trunc w r))
  | Opcode.Inc w ->
    let ra = read_int w dst and wr = write_int w dst in
    lanes (fun lane ->
        let a = ra lane in
        let r = Int64.add a 1L in
        let flags = scrA.(lane).Machine.flags in
        let saved_cf = flags.Machine.cf in
        Semantics.set_add_flags scrA.(lane) w a 1L r;
        flags.Machine.cf <- saved_cf;
        wr lane (Semantics.trunc w r))
  | Opcode.Dec w ->
    let ra = read_int w dst and wr = write_int w dst in
    lanes (fun lane ->
        let a = ra lane in
        let r = Int64.sub a 1L in
        let flags = scrA.(lane).Machine.flags in
        let saved_cf = flags.Machine.cf in
        Semantics.set_sub_flags scrA.(lane) w a 1L r;
        flags.Machine.cf <- saved_cf;
        wr lane (Semantics.trunc w r))
  | Opcode.Shl w | Opcode.Shr w | Opcode.Sar w ->
    (match ops.(0) with
     | Operand.Imm c ->
       let ra = read_int w dst and wr = write_int w dst in
       let bits = match w with Reg.Q -> 64 | Reg.L -> 32 in
       let c = Int64.to_int c land (if bits = 64 then 63 else 31) in
       if c = 0 then lanes (fun lane -> wr lane (Semantics.trunc w (ra lane)))
       else
         let shift =
           match i.Instr.op with
           | Opcode.Shl _ -> fun a -> Int64.shift_left a c
           | Opcode.Shr _ ->
             fun a -> Int64.shift_right_logical (Semantics.trunc w a) c
           | _ -> fun a -> Int64.shift_right (Semantics.signed w a) c
         in
         lanes (fun lane ->
             let r = shift (ra lane) in
             Semantics.set_logic_flags scrA.(lane) w r;
             wr lane (Semantics.trunc w r))
     | _ -> raise_all "expected immediate")
  | Opcode.Cmp w ->
    let ra = read_int w dst and rb = read_int w ops.(0) in
    lanes (fun lane ->
        let a = ra lane in
        let b = rb lane in
        Semantics.set_sub_flags scrA.(lane) w a b (Int64.sub a b))
  | Opcode.Test w ->
    let ra = read_int w dst and rb = read_int w ops.(0) in
    lanes (fun lane ->
        let a = ra lane in
        let b = rb lane in
        Semantics.set_logic_flags scrA.(lane) w (Int64.logand a b))
  | Opcode.Cmov (c, w) ->
    let rv = read_int w ops.(0) and wr = write_int w dst in
    lanes (fun lane ->
        if Semantics.cond_holds scrA.(lane) c then wr lane (rv lane))
  | Opcode.Setcc c ->
    (match dst with
     | Operand.Gp r ->
       let dro = grow (gi r) in
       lanes (fun lane ->
           let bit = if Semantics.cond_holds scrA.(lane) c then 1L else 0L in
           let o = dro + (lane lsl 3) in
           Bytes.set_int64_le gpB o
             (Int64.logor (Int64.logand (Bytes.get_int64_le gpB o) (-256L)) bit))
     | _ -> raise_all "setcc needs a register")
  (* ----- SSE moves ----- *)
  | Opcode.Movss ->
    (match ops.(0), dst with
     | Operand.Xmm s, Operand.Xmm d ->
       let sro = xrow (xi s) and dro = xrow (xi d) in
       fun () ->
         let live = bt.live in
         for li = bt.li to bt.n_live - 1 do
           let o = live.(li) lsl 3 in
           let lo_s = Int64.logand (Bytes.get_int64_le xmmB (sro + o)) lo32 in
           Bytes.set_int64_le xmmB (dro + o)
             (Int64.logor
                (Int64.logand (Bytes.get_int64_le xmmB (dro + o)) hi32_mask)
                lo_s)
         done;
         bt.li <- bt.n_live
     | Operand.Mem mm, Operand.Xmm d ->
       let ea = eff mm and dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
       lanes (fun lane ->
           let v = Memory.read_exn memA.(lane) (ea lane) 4 in
           let o = lane lsl 3 in
           Bytes.set_int64_le xmmB (dro + o) v;
           Bytes.set_int64_le xmmB (dro1 + o) 0L)
     | Operand.Xmm s, Operand.Mem mm ->
       let ea = eff mm and sro = xrow (xi s) in
       lanes (fun lane ->
           Memory.write_exn memA.(lane) (ea lane) 4
             (Int64.logand (Bytes.get_int64_le xmmB (sro + (lane lsl 3))) lo32))
     | _ -> raise_all "movss operands")
  | Opcode.Movsd ->
    (match ops.(0), dst with
     | Operand.Xmm s, Operand.Xmm d ->
       let sro = xrow (xi s) and dro = xrow (xi d) in
       fun () ->
         let live = bt.live in
         for li = bt.li to bt.n_live - 1 do
           let o = live.(li) lsl 3 in
           Bytes.set_int64_le xmmB (dro + o) (Bytes.get_int64_le xmmB (sro + o))
         done;
         bt.li <- bt.n_live
     | Operand.Mem mm, Operand.Xmm d ->
       let ea = eff mm and dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
       lanes (fun lane ->
           let v = Memory.read_exn memA.(lane) (ea lane) 8 in
           let o = lane lsl 3 in
           Bytes.set_int64_le xmmB (dro + o) v;
           Bytes.set_int64_le xmmB (dro1 + o) 0L)
     | Operand.Xmm s, Operand.Mem mm ->
       let ea = eff mm and sro = xrow (xi s) in
       lanes (fun lane ->
           Memory.write_exn memA.(lane) (ea lane) 8
             (Bytes.get_int64_le xmmB (sro + (lane lsl 3))))
     | _ -> raise_all "movsd operands")
  | Opcode.Movaps | Opcode.Movups | Opcode.Lddqu ->
    let aligned = i.Instr.op = Opcode.Movaps in
    (match ops.(0), dst with
     | (Operand.Xmm _ | Operand.Mem _), Operand.Xmm d ->
       let rv = read_x128 ~aligned ops.(0) in
       let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
       lanes (fun lane ->
           let lo, hi = rv lane in
           let o = lane lsl 3 in
           Bytes.set_int64_le xmmB (dro + o) lo;
           Bytes.set_int64_le xmmB (dro1 + o) hi)
     | Operand.Xmm s, Operand.Mem mm ->
       let ea = eff mm and sro = xrow (xi s) and sro1 = xrow (xi s + 1) in
       lanes (fun lane ->
           let o = lane lsl 3 in
           Memory.write128_exn ~aligned memA.(lane) (ea lane)
             (Bytes.get_int64_le xmmB (sro + o), Bytes.get_int64_le xmmB (sro1 + o)))
     | _ -> raise_all "128-bit move operands")
  | Opcode.Movq ->
    (match ops.(0), dst with
     | Operand.Gp s, Operand.Xmm d ->
       (* hot in FP kernels: constant loads go movabs+movq *)
       let sro = grow (gi s) in
       let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
       fun () ->
         let live = bt.live in
         for li = bt.li to bt.n_live - 1 do
           let o = live.(li) lsl 3 in
           Bytes.set_int64_le xmmB (dro + o) (Bytes.get_int64_le gpB (sro + o));
           Bytes.set_int64_le xmmB (dro1 + o) 0L
         done;
         bt.li <- bt.n_live
     | Operand.Xmm s, Operand.Xmm d ->
       let sro = xrow (xi s) in
       let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
       fun () ->
         let live = bt.live in
         for li = bt.li to bt.n_live - 1 do
           let o = live.(li) lsl 3 in
           Bytes.set_int64_le xmmB (dro + o) (Bytes.get_int64_le xmmB (sro + o));
           Bytes.set_int64_le xmmB (dro1 + o) 0L
         done;
         bt.li <- bt.n_live
     | Operand.Mem _, Operand.Xmm d ->
       let rv = read_q ops.(0) in
       let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
       lanes (fun lane ->
           let v = rv lane in
           let o = lane lsl 3 in
           Bytes.set_int64_le xmmB (dro + o) v;
           Bytes.set_int64_le xmmB (dro1 + o) 0L)
     | Operand.Xmm s, Operand.Gp d ->
       let sro = xrow (xi s) and dro = grow (gi d) in
       fun () ->
         let live = bt.live in
         for li = bt.li to bt.n_live - 1 do
           let o = live.(li) lsl 3 in
           Bytes.set_int64_le gpB (dro + o) (Bytes.get_int64_le xmmB (sro + o))
         done;
         bt.li <- bt.n_live
     | Operand.Xmm s, Operand.Mem mm ->
       let ea = eff mm and sro = xrow (xi s) in
       lanes (fun lane ->
           Memory.write_exn memA.(lane) (ea lane) 8
             (Bytes.get_int64_le xmmB (sro + (lane lsl 3))))
     | _ -> raise_all "movq operands")
  | Opcode.Movd ->
    (match ops.(0), dst with
     | Operand.Gp s, Operand.Xmm d ->
       let sro = grow (gi s) in
       let dro = xrow (xi d) and dro1 = xrow (xi d + 1) in
       lanes (fun lane ->
           let o = lane lsl 3 in
           Bytes.set_int64_le xmmB (dro + o)
             (Int64.logand (Bytes.get_int64_le gpB (sro + o)) lo32);
           Bytes.set_int64_le xmmB (dro1 + o) 0L)
     | Operand.Xmm s, Operand.Gp d ->
       let sro = xrow (xi s) and dro = grow (gi d) in
       lanes (fun lane ->
           let o = lane lsl 3 in
           Bytes.set_int64_le gpB (dro + o)
             (Int64.logand (Bytes.get_int64_le xmmB (sro + o)) lo32))
     | _ -> raise_all "movd operands")
  | Opcode.Movlhps ->
    (match ops.(0), dst with
     | Operand.Xmm s, Operand.Xmm d ->
       let sro = xrow (xi s) and dro1 = xrow (xi d + 1) in
       lanes (fun lane ->
           let o = lane lsl 3 in
           Bytes.set_int64_le xmmB (dro1 + o) (Bytes.get_int64_le xmmB (sro + o)))
     | _ -> raise_all "expected xmm destination")
  | Opcode.Movhlps ->
    (match ops.(0), dst with
     | Operand.Xmm s, Operand.Xmm d ->
       let sro1 = xrow (xi s + 1) and dro = xrow (xi d) in
       lanes (fun lane ->
           let o = lane lsl 3 in
           Bytes.set_int64_le xmmB (dro + o) (Bytes.get_int64_le xmmB (sro1 + o)))
     | _ -> raise_all "expected xmm destination")
  (* ----- scalar FP ----- *)
  | Opcode.Addsd -> scalar_f64 (fun old x -> old +. x)
  | Opcode.Subsd -> scalar_f64 (fun old x -> old -. x)
  | Opcode.Mulsd -> scalar_f64 (fun old x -> old *. x)
  | Opcode.Divsd -> scalar_f64 (fun old x -> old /. x)
  | Opcode.Sqrtsd -> scalar_f64 (fun _ x -> Float.sqrt x)
  | Opcode.Minsd -> scalar_f64 (fun old x -> Semantics.sse_min_f64 ~dst_old:old ~src:x)
  | Opcode.Maxsd -> scalar_f64 (fun old x -> Semantics.sse_max_f64 ~dst_old:old ~src:x)
  | Opcode.Addss -> scalar_f32 Fp32.add
  | Opcode.Subss -> scalar_f32 Fp32.sub
  | Opcode.Mulss -> scalar_f32 Fp32.mul
  | Opcode.Divss -> scalar_f32 Fp32.div
  | Opcode.Sqrtss -> scalar_f32 (fun _ x -> Fp32.sqrt x)
  | Opcode.Minss -> scalar_f32 Fp32.min
  | Opcode.Maxss -> scalar_f32 Fp32.max
  | Opcode.Ucomisd | Opcode.Comisd ->
    let rs = read_f64 ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dro = xrow (xi d) in
       lanes (fun lane ->
           let s = rs lane in
           Semantics.set_fp_compare_flags scrA.(lane)
             (Int64.float_of_bits (Bytes.get_int64_le xmmB (dro + (lane lsl 3))))
             s)
     | _ -> bad_dst_after [ (fun lane -> ignore (rs lane)) ] "expected xmm destination")
  | Opcode.Ucomiss | Opcode.Comiss ->
    let rs = read_f32 ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dro = xrow (xi d) in
       lanes (fun lane ->
           let s = rs lane in
           Semantics.set_fp_compare_flags scrA.(lane) (get_f32_lane dro lane) s)
     | _ -> bad_dst_after [ (fun lane -> ignore (rs lane)) ] "expected xmm destination")
  (* ----- packed logic / integer ----- *)
  | Opcode.Andps | Opcode.Andpd | Opcode.Pand -> packed_bitop Int64.logand
  | Opcode.Orps | Opcode.Orpd | Opcode.Por -> packed_bitop Int64.logor
  | Opcode.Xorps | Opcode.Xorpd | Opcode.Pxor -> packed_bitop Int64.logxor
  | Opcode.Andnps -> packed_bitop (fun d s -> Int64.logand (Int64.lognot d) s)
  | Opcode.Paddq -> packed_bitop Int64.add
  | Opcode.Psubq -> packed_bitop Int64.sub
  (* ----- packed FP ----- *)
  | Opcode.Addps -> packed_f32 Fp32.add
  | Opcode.Subps -> packed_f32 Fp32.sub
  | Opcode.Mulps -> packed_f32 Fp32.mul
  | Opcode.Divps -> packed_f32 Fp32.div
  | Opcode.Minps -> packed_f32 Fp32.min
  | Opcode.Maxps -> packed_f32 Fp32.max
  | Opcode.Addpd -> packed_f64 ( +. )
  | Opcode.Subpd -> packed_f64 ( -. )
  | Opcode.Mulpd -> packed_f64 ( *. )
  | Opcode.Divpd -> packed_f64 ( /. )
  (* ----- converts ----- *)
  | Opcode.Cvtss2sd ->
    let rx = read_f32 ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dro = xrow (xi d) in
       lanes (fun lane ->
           Bytes.set_int64_le xmmB (dro + (lane lsl 3))
             (Int64.bits_of_float (rx lane)))
     | _ -> bad_dst_after [ (fun lane -> ignore (rx lane)) ] "expected xmm destination")
  | Opcode.Cvtsd2ss ->
    let rx = read_f64 ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dro = xrow (xi d) in
       lanes (fun lane -> set_f32_lane dro lane (Fp32.round (rx lane)))
     | _ -> bad_dst_after [ (fun lane -> ignore (rx lane)) ] "expected xmm destination")
  | Opcode.Cvtsi2sd w ->
    let rv = read_int w ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dro = xrow (xi d) in
       lanes (fun lane ->
           Bytes.set_int64_le xmmB (dro + (lane lsl 3))
             (Int64.bits_of_float (Int64.to_float (Semantics.signed w (rv lane)))))
     | _ -> bad_dst_after [ (fun lane -> ignore (rv lane)) ] "expected xmm destination")
  | Opcode.Cvtsi2ss w ->
    let rv = read_int w ops.(0) in
    (match dst with
     | Operand.Xmm d ->
       let dro = xrow (xi d) in
       lanes (fun lane ->
           set_f32_lane dro lane
             (Fp32.round (Int64.to_float (Semantics.signed w (rv lane)))))
     | _ -> bad_dst_after [ (fun lane -> ignore (rv lane)) ] "expected xmm destination")
  | Opcode.Cvttsd2si w ->
    let rx = read_f64 ops.(0) and wr = write_int w dst in
    let conv = match w with Reg.Q -> Semantics.f2i64 | Reg.L -> Semantics.f2i32 in
    lanes (fun lane -> wr lane (conv (Float.trunc (rx lane))))
  | Opcode.Cvttss2si w ->
    let rx = read_f32 ops.(0) and wr = write_int w dst in
    let conv = match w with Reg.Q -> Semantics.f2i64 | Reg.L -> Semantics.f2i32 in
    lanes (fun lane -> wr lane (conv (Float.trunc (rx lane))))
  | Opcode.Cvtsd2si w ->
    let rx = read_f64 ops.(0) and wr = write_int w dst in
    let conv = match w with Reg.Q -> Semantics.f2i64 | Reg.L -> Semantics.f2i32 in
    lanes (fun lane -> wr lane (conv (Semantics.rint_even (rx lane))))
  | Opcode.Roundsd ->
    (match ops.(0) with
     | Operand.Imm mode ->
       let rx = read_f64 ops.(1) in
       let round =
         match Int64.to_int mode land 3 with
         | 0 -> Semantics.rint_even
         | 1 -> Float.floor
         | 2 -> Float.ceil
         | _ -> Float.trunc
       in
       (match dst with
        | Operand.Xmm d ->
          let dro = xrow (xi d) in
          lanes (fun lane ->
              Bytes.set_int64_le xmmB (dro + (lane lsl 3))
                (Int64.bits_of_float (round (rx lane))))
        | _ ->
          bad_dst_after [ (fun lane -> ignore (rx lane)) ] "expected xmm destination")
     | _ -> raise_all "expected immediate")
  | Opcode.Roundss ->
    (match ops.(0) with
     | Operand.Imm mode ->
       let rx = read_f32 ops.(1) in
       let round =
         match Int64.to_int mode land 3 with
         | 0 -> Semantics.rint_even
         | 1 -> Float.floor
         | 2 -> Float.ceil
         | _ -> Float.trunc
       in
       (match dst with
        | Operand.Xmm d ->
          let dro = xrow (xi d) in
          lanes (fun lane -> set_f32_lane dro lane (Fp32.round (round (rx lane))))
        | _ ->
          bad_dst_after [ (fun lane -> ignore (rx lane)) ] "expected xmm destination")
     | _ -> raise_all "expected immediate")
  (* ----- AVX three-operand ----- *)
  | Opcode.Vaddsd -> avx3_f64 ( +. )
  | Opcode.Vsubsd -> avx3_f64 ( -. )
  | Opcode.Vmulsd -> avx3_f64 ( *. )
  | Opcode.Vdivsd -> avx3_f64 ( /. )
  | Opcode.Vminsd -> avx3_f64 (fun a b -> Semantics.sse_min_f64 ~dst_old:a ~src:b)
  | Opcode.Vmaxsd -> avx3_f64 (fun a b -> Semantics.sse_max_f64 ~dst_old:a ~src:b)
  | Opcode.Vsqrtsd -> avx3_f64 (fun _ b -> Float.sqrt b)
  | Opcode.Vaddss -> avx3_f32 Fp32.add
  | Opcode.Vsubss -> avx3_f32 Fp32.sub
  | Opcode.Vmulss -> avx3_f32 Fp32.mul
  | Opcode.Vdivss -> avx3_f32 Fp32.div
  | Opcode.Vminss -> avx3_f32 Fp32.min
  | Opcode.Vmaxss -> avx3_f32 Fp32.max
  | Opcode.Vaddps -> avx3_packed128 (fun a b -> Semantics.map_lanes4_f32 Fp32.add a b)
  | Opcode.Vsubps -> avx3_packed128 (fun a b -> Semantics.map_lanes4_f32 Fp32.sub a b)
  | Opcode.Vmulps -> avx3_packed128 (fun a b -> Semantics.map_lanes4_f32 Fp32.mul a b)
  | Opcode.Vaddpd -> avx3_packed128 (fun a b -> Semantics.map_lanes2_f64 ( +. ) a b)
  | Opcode.Vmulpd -> avx3_packed128 (fun a b -> Semantics.map_lanes2_f64 ( *. ) a b)
  | Opcode.Vxorps ->
    avx3_packed128 (fun (alo, ahi) (blo, bhi) ->
        (Int64.logxor alo blo, Int64.logxor ahi bhi))
  | Opcode.Vandps ->
    avx3_packed128 (fun (alo, ahi) (blo, bhi) ->
        (Int64.logand alo blo, Int64.logand ahi bhi))
  | Opcode.Vunpcklps ->
    avx3_packed128 (fun a b ->
        let la = Semantics.lanes4 a and lb = Semantics.lanes4 b in
        Semantics.join4 [| la.(0); lb.(0); la.(1); lb.(1) |])
  (* ----- FMA ----- *)
  | Opcode.Vfmadd132sd -> fma_f64 (fun x1 x2 x3 -> (x1, x3, x2)) false false
  | Opcode.Vfmadd213sd -> fma_f64 (fun x1 x2 x3 -> (x2, x1, x3)) false false
  | Opcode.Vfmadd231sd -> fma_f64 (fun x1 x2 x3 -> (x2, x3, x1)) false false
  | Opcode.Vfnmadd213sd -> fma_f64 (fun x1 x2 x3 -> (x2, x1, x3)) true false
  | Opcode.Vfnmadd231sd -> fma_f64 (fun x1 x2 x3 -> (x2, x3, x1)) true false
  | Opcode.Vfmsub213sd -> fma_f64 (fun x1 x2 x3 -> (x2, x1, x3)) false true
  | Opcode.Vfmadd132ss -> fma_f32 (fun x1 x2 x3 -> (x1, x3, x2))
  | Opcode.Vfmadd213ss -> fma_f32 (fun x1 x2 x3 -> (x2, x1, x3))
  | Opcode.Vfmadd231ss -> fma_f32 (fun x1 x2 x3 -> (x2, x3, x1))
  (* Shuffles, packed 32-bit integer ops, and vector shifts are rare in
     FP kernels; they run through the reference interpreter, which keeps
     them bit-identical by construction. *)
  | Opcode.Shufps | Opcode.Pshufd | Opcode.Pshuflw | Opcode.Punpckldq
  | Opcode.Punpcklqdq | Opcode.Unpcklps | Opcode.Unpcklpd | Opcode.Paddd
  | Opcode.Psubd | Opcode.Pslld | Opcode.Psrld | Opcode.Psllq | Opcode.Psrlq
  | Opcode.Vpshuflw ->
    fallback ()

let instr_closure (bt : batch) (i : Instr.t) : unit -> unit =
  if Array.length i.Instr.operands = 0 then generic_closure bt i
  else specialize bt i

let compile (bt : batch) (p : Program.t) : t =
  let active =
    Array.of_seq
      (Seq.filter_map
         (function
           | Program.Unused -> None
           | Program.Active i -> Some i)
         (Array.to_seq p.Program.slots))
  in
  let n = Array.length active in
  let steps = Array.make n (fun () -> ()) in
  let lat_prefix = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    steps.(k) <- instr_closure bt active.(k);
    lat_prefix.(k + 1) <- lat_prefix.(k) + Latency.of_instr active.(k)
  done;
  { b = bt; steps; lat_prefix }

let length t = Array.length t.steps

(* ----- execution ----- *)

let exec ?on_fault (t : t) : bool =
  let bt = t.b in
  let nsteps = Array.length t.steps in
  let aborted = ref false in
  (try
     let k = ref 0 in
     while !k < nsteps && bt.n_live > 0 do
       bt.cur_step <- !k;
       bt.cur_lat <- t.lat_prefix.(!k + 1);
       bt.li <- 0;
       let step = t.steps.(!k) in
       (* Park-and-resume: a raise inside [step] latches the lane at the
          cursor, compacts it out of the live set (without advancing the
          cursor — the swapped-in lane takes its place), and re-enters
          the closure, which picks its internal loop back up. *)
       let rec go () =
         try step () with
         | Fault f -> handle f
         | Memory.Fault_exn mf ->
           handle (Semantics.Segv (Memory.fault_to_string mf))
       and handle f =
         let lane = bt.live.(bt.li) in
         bt.fault.(lane) <- Some f;
         bt.executed.(lane) <- bt.cur_step + 1;
         bt.cycles.(lane) <- bt.cur_lat;
         bt.n_live <- bt.n_live - 1;
         bt.live.(bt.li) <- bt.live.(bt.n_live);
         bt.live.(bt.n_live) <- lane;
         (match on_fault with
          | Some cb -> if cb ~lane f then raise Abort
          | None -> ());
         go ()
       in
       go ();
       incr k
     done
   with Abort ->
     aborted := true;
     (* Live lanes stopped mid-step; lanes before the cursor completed
        the current instruction, lanes at or past it did not. *)
     for li = 0 to bt.n_live - 1 do
       let lane = bt.live.(li) in
       if li < bt.li then begin
         bt.executed.(lane) <- bt.cur_step + 1;
         bt.cycles.(lane) <- bt.cur_lat
       end
       else begin
         bt.executed.(lane) <- bt.cur_step;
         bt.cycles.(lane) <- t.lat_prefix.(bt.cur_step)
       end
     done);
  if not !aborted then begin
    let full = t.lat_prefix.(nsteps) in
    for li = 0 to bt.n_live - 1 do
      let lane = bt.live.(li) in
      bt.executed.(lane) <- nsteps;
      bt.cycles.(lane) <- full
    done
  end;
  if Exec.Counters.is_enabled () then
    for lane = 0 to bt.n - 1 do
      Exec.Counters.record ~run_cycles:bt.cycles.(lane)
        ~run_instrs:bt.executed.(lane)
        ~faulted:(bt.fault.(lane) <> None)
    done;
  !aborted
