(** A test case is a function from live-in hardware locations to values
    (§2.2 of the paper): initial GP registers, xmm registers, and an
    optional memory image to splat into the arena. *)

type t = {
  gps : (Reg.gp * int64) list;
  xmms : (Reg.xmm * (int64 * int64)) list;
  mem_writes : (int64 * string) list;
      (** (absolute address, bytes) pairs applied to the arena. *)
}

val empty : t

val of_f64 : (Reg.xmm * float) list -> t
(** Doubles in the low quad of each register. *)

val of_f32 : (Reg.xmm * float) list -> t
(** Singles in the low dword (value is rounded to binary32 first). *)

val with_gp : Reg.gp -> int64 -> t -> t
val with_xmm : Reg.xmm -> int64 * int64 -> t -> t
val with_f64 : Reg.xmm -> float -> t -> t
val with_f32 : Reg.xmm -> float -> t -> t
val with_f32_pair : Reg.xmm -> float * float -> t -> t
(** Two singles packed in the low quad (dword 0, dword 1). *)

val with_mem : int64 -> string -> t -> t

val with_mem_f32s : int64 -> float list -> t -> t
(** Consecutive binary32 values starting at the address. *)

val with_mem_f64s : int64 -> float list -> t -> t

val apply : t -> Machine.t -> unit
(** Install the test case into a machine (registers not mentioned are left
    as the machine has them). *)

val f64_bytes : float -> string
val f32_bytes : float -> string
