/* Native engine support: shared-memory arena, guarded worker child, and
   W^X code execution.  The parent (OCaml) writes trampoline bytes and
   test-case lanes through its read-write view of a MAP_SHARED anonymous
   mapping; the forked worker child executes the code region through its
   own PROT_READ|PROT_EXEC view of the same pages (per-process W^X), with
   signal handlers translating hardware faults into result records rather
   than killing the run.  The child is pure C after fork — no malloc, no
   stdio, no OCaml runtime — so forking from a multi-domain OCaml 5
   program is safe.  See lib/sandbox/native.ml for the trampoline ABI. */

#define _GNU_SOURCE
#include <caml/alloc.h>
#include <caml/custom.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>

#include <errno.h>
#include <poll.h>
#include <setjmp.h>
#include <signal.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#ifndef MAP_FIXED_NOREPLACE
#define MAP_FIXED_NOREPLACE 0x100000
#endif

/* ----- layout constants (mirrored in native.ml) ----- */

#define STATE_ADDR 0xF0000UL /* child-private state page */
#define STATE_SIZE 4096UL
#define CODE_MAX (256 * 1024)
#define LANE_SZ 392  /* GP 16*8 @0, XMM 16*16 @0x80, FLAGS u64 @0x180 */
#define RES_SZ 416   /* u32 status, u32 code, u64 ea, u64 rip_off, lane record */

/* state-page offsets used by the child C side */
#define ST_FCODE 0x1A0
#define ST_FEA 0x1A8
#define ST_GP_OUT 0x200
#define ST_XMM_OUT 0x280
#define ST_FLAGS_OUT 0x380

/* result-record status values */
#define RS_FINISHED 0
#define RS_GUARD 1
#define RS_HW 2

/* request flag bits (RQ_ACK/RQ_SERIALIZE are set by the C parent, never
   by OCaml) */
#define RQ_UNIFORM 1
#define RQ_HAS_STORES 2
#define RQ_WANT_MEM 4
#define RQ_ACK 8
#define RQ_SERIALIZE 16

/* ctl page: one cache-line-ish struct at the front of the shm */
typedef struct {
  volatile uint64_t req;       /* parent bumps to post a request */
  volatile uint64_t done;      /* child stores req when finished */
  volatile uint32_t sleeping;  /* child is (about to be) blocked on the pipe */
  volatile uint32_t nlanes_req;
  volatile uint32_t code_len;
  volatile uint32_t flags;
  volatile uint32_t arena_gen; /* bumped when any arena image changes */
  uint32_t pad;
  uint64_t base;               /* sandbox arena base address */
  uint32_t mem_size;
  uint32_t nlanes;             /* capacity */
} ctl_t;

typedef struct {
  uint8_t *shm;       /* parent RW view */
  size_t shm_size;
  uint64_t base;
  uint32_t mem_size;
  uint32_t mem_map;   /* mem_size rounded up to page */
  uint32_t nlanes;
  pid_t pid;          /* 0 = dead for good */
  int bell_r, bell_w; /* doorbell pipe; parent keeps both ends open */
  int ack_r, ack_w;   /* completion pipe, fresh per child (see spawn_child) */
  int single_cpu;     /* spinning would only steal the child's timeslice */
  int code_dirty;     /* code bytes written since the last request */
  int respawns;
} worker_t;

static inline ctl_t *ctl_of(worker_t *w) { return (ctl_t *)w->shm; }
static inline uint8_t *code_of(worker_t *w) { return w->shm + 4096; }
static inline uint8_t *lanes_of(worker_t *w) {
  return w->shm + 4096 + CODE_MAX;
}
static inline uint8_t *arenas_of(worker_t *w) {
  return lanes_of(w) + (size_t)w->nlanes * LANE_SZ;
}
static inline uint8_t *results_of(worker_t *w) {
  return arenas_of(w) + (size_t)w->nlanes * w->mem_size;
}
static inline uint8_t *memout_of(worker_t *w) {
  return results_of(w) + (size_t)w->nlanes * RES_SZ;
}

/* ----- child ----- */

static sigjmp_buf child_jb;
static volatile sig_atomic_t child_in_run;
static volatile uint64_t child_sig_no, child_sig_addr, child_sig_rip;

static void child_handler(int sig, siginfo_t *si, void *uc_) {
  if (!child_in_run) _exit(98);
  ucontext_t *uc = (ucontext_t *)uc_;
  child_sig_no = (uint64_t)sig;
  child_sig_addr = (uint64_t)(uintptr_t)si->si_addr;
  child_sig_rip = (uint64_t)uc->uc_mcontext.gregs[REG_RIP];
  siglongjmp(child_jb, 1);
}

static void serialize_cpu(void) {
  unsigned a = 0, b, c, d;
  __asm__ __volatile__("cpuid"
                       : "+a"(a), "=b"(b), "=c"(c), "=d"(d)
                       :
                       : "memory");
}

static void child_close_range(unsigned lo, unsigned hi) {
  if (lo > hi) return;
#ifdef SYS_close_range
  if (syscall(SYS_close_range, lo, hi, 0) == 0) return;
#endif
  unsigned cap = hi;
  if (cap > 65535) {
    struct rlimit rl;
    cap = (getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < 65536)
              ? (unsigned)rl.rlim_cur
              : 4096;
  }
  for (unsigned fd = lo; fd <= cap; fd++) close((int)fd);
}

static void child_main(worker_t *w, pid_t parent) __attribute__((noreturn));

static void child_main(worker_t *w, pid_t parent) {
  ctl_t *c = ctl_of(w);

  /* Drop every inherited fd except our doorbell read end and ack write
     end.  fork copies whatever the parent holds open: other workers'
     pipes (concurrent spawns from multiple domains can even form a
     cycle of workers holding each other's doorbell write ends, so none
     of them ever sees EOF after the parent exits) and the parent's
     stdout/stderr (which would keep its shell pipelines open).  Closing
     our own bell_w/ack_r also makes parent death EOF our blocking read
     and child death HUP the parent's poll. */
  int keep_lo = w->bell_r < w->ack_w ? w->bell_r : w->ack_w;
  int keep_hi = w->bell_r < w->ack_w ? w->ack_w : w->bell_r;
  if (keep_lo > 0) child_close_range(0, (unsigned)keep_lo - 1);
  if (keep_hi > keep_lo + 1)
    child_close_range((unsigned)keep_lo + 1, (unsigned)keep_hi - 1);
  child_close_range((unsigned)keep_hi + 1, ~0u);

  /* If the parent dies while we are mid-request rather than parked in
     read (where EOF would catch it), nobody is left to kill a runaway
     candidate: have the kernel do it. */
  prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (getppid() != parent) _exit(0);

  struct rlimit rl = {0, 0};
  setrlimit(RLIMIT_CORE, &rl);

  /* Fixed child-private pages: the state page the trampoline addresses
     with abs32 displacements, and the arena at the sandbox base so
     candidate pointers dereference directly. */
  if (mmap((void *)STATE_ADDR, STATE_SIZE, PROT_READ | PROT_WRITE,
           MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED_NOREPLACE, -1,
           0) == MAP_FAILED)
    _exit(99);
  if (mmap((void *)(uintptr_t)w->base, w->mem_map, PROT_READ | PROT_WRITE,
           MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED_NOREPLACE, -1,
           0) == MAP_FAILED)
    _exit(99);

  /* Our view of the shared code region becomes execute-only-ish: the
     parent keeps writing through its own RW view of the same pages. */
  if (mprotect(code_of(w), CODE_MAX, PROT_READ | PROT_EXEC) != 0) _exit(99);

  void *astk = mmap(NULL, 65536, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (astk == MAP_FAILED) _exit(99);
  stack_t ss = {.ss_sp = astk, .ss_size = 65536, .ss_flags = 0};
  if (sigaltstack(&ss, NULL) != 0) _exit(99);
  struct sigaction sa;
  memset(&sa, 0, sizeof sa);
  sa.sa_sigaction = child_handler;
  /* NODEFER: the handler only records the fault and siglongjmps away, so
     nothing must stay blocked — which lets the per-lane sigsetjmp skip
     the signal-mask save (an rt_sigprocmask syscall per lane). */
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  int sigs[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL};
  for (int i = 0; i < 4; i++)
    if (sigaction(sigs[i], &sa, NULL) != 0) _exit(99);

  uint8_t *state = (uint8_t *)STATE_ADDR;
  uint8_t *arena = (uint8_t *)(uintptr_t)w->base;
  uint64_t last_done = 0;
  uint32_t last_gen = ~0u;
  int arena_clean = 0;

  /* On a uniprocessor, spinning here only steals the parent's timeslice
     (and vice versa): park on the doorbell immediately instead. */
  int spin_max = w->single_cpu ? 0 : 20000;

  for (;;) {
    /* Wait for work: spin briefly, then park on the doorbell pipe. */
    uint64_t req;
    for (;;) {
      req = __atomic_load_n(&c->req, __ATOMIC_SEQ_CST);
      if (req != last_done) break;
      int spun = 0;
      for (; spun < spin_max; spun++) {
        req = __atomic_load_n(&c->req, __ATOMIC_SEQ_CST);
        if (req != last_done) break;
        __asm__ __volatile__("pause");
      }
      if (req != last_done) break;
      __atomic_store_n(&c->sleeping, 1, __ATOMIC_SEQ_CST);
      req = __atomic_load_n(&c->req, __ATOMIC_SEQ_CST);
      if (req != last_done) {
        __atomic_store_n(&c->sleeping, 0, __ATOMIC_SEQ_CST);
        break;
      }
      char buf;
      ssize_t r = read(w->bell_r, &buf, 1);
      __atomic_store_n(&c->sleeping, 0, __ATOMIC_SEQ_CST);
      if (r == 0) _exit(0); /* parent is gone */
    }

    uint32_t n = c->nlanes_req;
    uint32_t fl = c->flags;
    uint32_t gen = c->arena_gen;
    if (n > w->nlanes) n = w->nlanes;
    int uniform = (fl & RQ_UNIFORM) != 0;
    int stores = (fl & RQ_HAS_STORES) != 0;
    int fresh = uniform && arena_clean && gen == last_gen;
    last_gen = gen;

    /* When the parent wrote fresh code bytes through another mapping of
       these pages and we may have observed the request without a kernel
       transition (the multicore spin path), serialize before jumping
       into them.  On the blocking paths the wakeup context switch
       already serialized — and cpuid is a pricy VM exit under
       virtualization, so skipping it when sound matters. */
    if (fl & RQ_SERIALIZE) serialize_cpu();

    void (*entry)(void) = (void (*)(void))code_of(w);
    for (uint32_t l = 0; l < n; l++) {
      if (!fresh) memcpy(arena, arenas_of(w) + (size_t)l * w->mem_size,
                         w->mem_size);
      memcpy(state, lanes_of(w) + (size_t)l * LANE_SZ, LANE_SZ);
      *(uint64_t *)(state + ST_FCODE) = ~0ULL;
      uint8_t *res = results_of(w) + (size_t)l * RES_SZ;
      uint32_t status, rcode = 0;
      uint64_t ea = 0, rip = 0;
      if (sigsetjmp(child_jb, 0) == 0) {
        child_in_run = 1;
        entry();
        child_in_run = 0;
        uint64_t fc = *(uint64_t *)(state + ST_FCODE);
        if (fc == ~0ULL) status = RS_FINISHED;
        else {
          status = RS_GUARD;
          rcode = (uint32_t)fc;
          ea = *(uint64_t *)(state + ST_FEA);
        }
      } else {
        child_in_run = 0;
        status = RS_HW;
        rcode = (uint32_t)child_sig_no;
        ea = child_sig_addr;
        rip = child_sig_rip - (uint64_t)(uintptr_t)code_of(w);
      }
      *(uint32_t *)(res + 0) = status;
      *(uint32_t *)(res + 4) = rcode;
      *(uint64_t *)(res + 8) = ea;
      *(uint64_t *)(res + 16) = rip;
      memcpy(res + 24, state + ST_GP_OUT, 128);
      memcpy(res + 24 + 128, state + ST_XMM_OUT, 256);
      memcpy(res + 24 + 384, state + ST_FLAGS_OUT, 8);
      if (fl & RQ_WANT_MEM)
        memcpy(memout_of(w) + (size_t)l * w->mem_size, arena, w->mem_size);
      fresh = uniform && !stores && status != RS_HW;
    }
    arena_clean = fresh;
    last_done = req;
    __atomic_store_n(&c->done, req, __ATOMIC_SEQ_CST);
    if (fl & RQ_ACK) {
      char b = 1;
      ssize_t r = write(w->ack_w, &b, 1);
      (void)r;
    }
  }
}

/* ----- parent ----- */

static int spawn_child(worker_t *w) {
  /* The ack pipe is per-child: the parent must hold only the read end,
     so a dead child HUPs the poll instead of leaving it hanging. */
  if (w->ack_r >= 0) close(w->ack_r);
  if (w->ack_w >= 0) close(w->ack_w);
  int fds[2];
  if (pipe(fds) != 0) return -1;
  w->ack_r = fds[0];
  w->ack_w = fds[1];
  pid_t parent = getpid();
  pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) child_main(w, parent); /* never returns */
  close(w->ack_w);
  w->ack_w = -1;
  w->pid = pid;
  return 0;
}

static void kill_child(worker_t *w) {
  if (w->pid > 0) {
    kill(w->pid, SIGKILL);
    waitpid(w->pid, NULL, 0);
    w->pid = 0;
  }
}

static uint64_t now_ns(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (uint64_t)ts.tv_sec * 1000000000ULL + (uint64_t)ts.tv_nsec;
}

/* Runs one request to completion.  Returns 0 on success, 1 if the child
   crashed or timed out (a fresh child has been forked), 2 if the worker
   could not be respawned.  Called with the OCaml runtime released. */
static int do_request(worker_t *w, uint32_t nlanes, uint32_t code_len,
                      uint32_t flags) {
  if (w->pid == 0) return 2;
  ctl_t *c = ctl_of(w);
  if (w->single_cpu) flags |= RQ_ACK;
  /* Cross-modifying-code serialization is only needed where the child
     might run the new bytes without an intervening kernel entry: fresh
     code observed from the spin path.  On a uniprocessor every request
     involves a context switch, which serializes. */
  if (w->code_dirty && !w->single_cpu) flags |= RQ_SERIALIZE;
  w->code_dirty = 0;
  c->nlanes_req = nlanes;
  c->code_len = code_len;
  c->flags = flags;
  uint64_t req = c->req + 1;
  __atomic_store_n(&c->req, req, __ATOMIC_SEQ_CST);
  if (__atomic_load_n(&c->sleeping, __ATOMIC_SEQ_CST)) {
    char b = 1;
    ssize_t r = write(w->bell_w, &b, 1);
    (void)r;
  }
  if (flags & RQ_ACK) {
    /* Uniprocessor: spinning would only delay the child.  Block on the
       ack pipe; the read syscall hands the CPU straight over.  A dead
       child HUPs the pipe (we hold only the read end), a hung one runs
       into the poll timeout. */
    uint64_t t0 = now_ns();
    for (;;) {
      if (__atomic_load_n(&c->done, __ATOMIC_SEQ_CST) == req) {
        char b;
        ssize_t r = read(w->ack_r, &b, 1); /* drain this request's ack */
        (void)r;
        return 0;
      }
      struct pollfd pf = {.fd = w->ack_r, .events = POLLIN};
      int pr = poll(&pf, 1, 200);
      if (pr > 0 && (pf.revents & POLLIN)) {
        char b;
        ssize_t r = read(w->ack_r, &b, 1);
        (void)r;
        if (__atomic_load_n(&c->done, __ATOMIC_SEQ_CST) == req) return 0;
      } else if (pr > 0) {
        break; /* POLLHUP: child died */
      }
      int st;
      pid_t r = waitpid(w->pid, &st, WNOHANG);
      if (r == w->pid) { w->pid = 0; break; }
      if (now_ns() - t0 > 3000000000ULL) {
        kill_child(w);
        break;
      }
    }
    kill_child(w);
    goto respawn;
  }
  /* Fast path: spin ~200us. */
  for (int i = 0; i < 40000; i++) {
    if (__atomic_load_n(&c->done, __ATOMIC_SEQ_CST) == req) return 0;
    __asm__ __volatile__("pause");
  }
  /* Slow path: 50us sleeps, liveness checks, ~3s deadline. */
  uint64_t t0 = now_ns();
  for (;;) {
    if (__atomic_load_n(&c->done, __ATOMIC_SEQ_CST) == req) return 0;
    int st;
    pid_t r = waitpid(w->pid, &st, WNOHANG);
    if (r == w->pid) { w->pid = 0; break; }
    if (now_ns() - t0 > 3000000000ULL) {
      kill_child(w);
      break;
    }
    struct timespec ts = {0, 50000};
    nanosleep(&ts, NULL);
  }
  /* Crashed or hung: reset the protocol and refork. */
  kill_child(w);
respawn:
  c->req = 0;
  c->done = 0;
  c->sleeping = 0;
  w->respawns++;
  if (spawn_child(w) != 0) return 2;
  return 1;
}

/* ----- OCaml interface ----- */

#define Worker_val(v) (*(worker_t **)Data_custom_val(v))

static void worker_finalize(value v) {
  worker_t *w = Worker_val(v);
  if (!w) return;
  kill_child(w);
  if (w->bell_r >= 0) close(w->bell_r);
  if (w->bell_w >= 0) close(w->bell_w);
  if (w->ack_r >= 0) close(w->ack_r);
  if (w->ack_w >= 0) close(w->ack_w);
  munmap(w->shm, w->shm_size);
  caml_stat_free(w);
  Worker_val(v) = NULL;
}

static struct custom_operations worker_ops = {
    "stoke.native_worker",      worker_finalize,
    custom_compare_default,     custom_hash_default,
    custom_serialize_default,   custom_deserialize_default,
    custom_compare_ext_default, custom_fixed_length_default};

CAMLprim value stoke_native_probe(value unit) {
  CAMLparam1(unit);
  int ok = 0;
  /* Can we make shared anonymous memory executable and run it? */
  uint8_t *p = mmap(NULL, 4096, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    /* movl $42, %eax; ret */
    static const uint8_t code[] = {0xb8, 0x2a, 0, 0, 0, 0xc3};
    memcpy(p, code, sizeof code);
    if (mprotect(p, 4096, PROT_READ | PROT_EXEC) == 0) {
      int (*f)(void) = (int (*)(void))p;
      ok = f() == 42;
    }
    munmap(p, 4096);
  }
  /* Can we claim the fixed low addresses the child needs? */
  if (ok) {
    void *s = mmap((void *)STATE_ADDR, 4096, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED_NOREPLACE, -1, 0);
    if (s == MAP_FAILED) ok = 0;
    else munmap(s, 4096);
  }
  CAMLreturn(Val_bool(ok));
}

CAMLprim value stoke_native_cpu_flags(value unit) {
  CAMLparam1(unit);
  int f = 0;
  if (__builtin_cpu_supports("avx")) f |= 1;
  if (__builtin_cpu_supports("fma")) f |= 2;
  if (__builtin_cpu_supports("sse4.1")) f |= 4;
  if (__builtin_cpu_supports("sse3")) f |= 8;
  CAMLreturn(Val_int(f));
}

CAMLprim value stoke_native_create(value vnlanes, value vmem, value vbase) {
  CAMLparam3(vnlanes, vmem, vbase);
  CAMLlocal2(res, box);
  int nlanes = Int_val(vnlanes);
  int mem_size = Int_val(vmem);
  uint64_t base = (uint64_t)Int64_val(vbase);
  if (nlanes < 1 || mem_size < 1) caml_invalid_argument("Native: bad sizes");
  /* abs32 addressing: everything the trampoline touches must sit below
     2 GiB, and the arena must not collide with the state page. */
  if (base < STATE_ADDR + STATE_SIZE || base + (uint64_t)mem_size > 0x7fffffffULL)
    CAMLreturn(Val_int(0)); /* None */
  uint32_t mem_map = ((uint32_t)mem_size + 4095u) & ~4095u;
  size_t shm_size = 4096 + CODE_MAX +
                    (size_t)nlanes * (LANE_SZ + RES_SZ + 2 * (size_t)mem_size);
  shm_size = (shm_size + 4095) & ~(size_t)4095;
  uint8_t *shm = mmap(NULL, shm_size, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (shm == MAP_FAILED) CAMLreturn(Val_int(0));
  worker_t *w = caml_stat_alloc(sizeof *w);
  memset(w, 0, sizeof *w);
  w->ack_r = -1;
  w->ack_w = -1;
  {
    /* The spin handshake assumes parent and child run concurrently; on a
       single CPU it degrades into scheduler round-trips, so both sides
       switch to blocking pipe I/O.  STOKE_NATIVE_ACK=1/0 overrides the
       detection (useful for exercising either path in tests). */
    const char *e = getenv("STOKE_NATIVE_ACK");
    if (e && *e)
      w->single_cpu = *e != '0';
    else
      w->single_cpu = sysconf(_SC_NPROCESSORS_ONLN) <= 1;
  }
  w->shm = shm;
  w->shm_size = shm_size;
  w->base = base;
  w->mem_size = (uint32_t)mem_size;
  w->mem_map = mem_map;
  w->nlanes = (uint32_t)nlanes;
  ctl_t *c = ctl_of(w);
  memset((void *)c, 0, sizeof *c);
  c->base = base;
  c->mem_size = (uint32_t)mem_size;
  c->nlanes = (uint32_t)nlanes;
  int fds[2];
  if (pipe(fds) != 0) {
    munmap(shm, shm_size);
    caml_stat_free(w);
    CAMLreturn(Val_int(0));
  }
  w->bell_r = fds[0];
  w->bell_w = fds[1];
  if (spawn_child(w) != 0) {
    close(w->bell_r);
    close(w->bell_w);
    munmap(shm, shm_size);
    caml_stat_free(w);
    CAMLreturn(Val_int(0));
  }
  box = caml_alloc_custom(&worker_ops, sizeof(worker_t *), 0, 1);
  Worker_val(box) = w;
  res = caml_alloc_small(1, 0); /* Some box */
  Field(res, 0) = box;
  CAMLreturn(res);
}

static worker_t *get_worker(value v) {
  worker_t *w = Worker_val(v);
  if (!w) caml_failwith("Native: worker already finalized");
  return w;
}

CAMLprim value stoke_native_write_code(value vw, value vbytes, value vlen) {
  CAMLparam3(vw, vbytes, vlen);
  worker_t *w = get_worker(vw);
  int len = Int_val(vlen);
  if (len < 0 || len > CODE_MAX || len > caml_string_length(vbytes))
    caml_invalid_argument("Native: code too large");
  memcpy(code_of(w), Bytes_val(vbytes), (size_t)len);
  w->code_dirty = 1;
  CAMLreturn(Val_unit);
}

CAMLprim value stoke_native_write_lanes(value vw, value vbytes) {
  CAMLparam2(vw, vbytes);
  worker_t *w = get_worker(vw);
  size_t want = (size_t)w->nlanes * LANE_SZ;
  if (caml_string_length(vbytes) != want)
    caml_invalid_argument("Native: lane blob size");
  memcpy(lanes_of(w), Bytes_val(vbytes), want);
  CAMLreturn(Val_unit);
}

CAMLprim value stoke_native_write_arena(value vw, value vlane, value vbytes) {
  CAMLparam3(vw, vlane, vbytes);
  worker_t *w = get_worker(vw);
  uint32_t l = (uint32_t)Int_val(vlane);
  if (l >= w->nlanes || caml_string_length(vbytes) != w->mem_size)
    caml_invalid_argument("Native: arena write");
  memcpy(arenas_of(w) + (size_t)l * w->mem_size, Bytes_val(vbytes),
         w->mem_size);
  ctl_of(w)->arena_gen++;
  CAMLreturn(Val_unit);
}

CAMLprim value stoke_native_request(value vw, value vnlanes, value vcode_len,
                                    value vflags) {
  CAMLparam4(vw, vnlanes, vcode_len, vflags);
  worker_t *w = get_worker(vw);
  uint32_t n = (uint32_t)Int_val(vnlanes);
  uint32_t cl = (uint32_t)Int_val(vcode_len);
  uint32_t fl = (uint32_t)Int_val(vflags);
  if (n < 1 || n > w->nlanes || cl > CODE_MAX)
    caml_invalid_argument("Native: bad request");
  int rc;
  caml_enter_blocking_section();
  rc = do_request(w, n, cl, fl);
  caml_leave_blocking_section();
  CAMLreturn(Val_int(rc));
}

CAMLprim value stoke_native_read_results(value vw, value vbytes) {
  CAMLparam2(vw, vbytes);
  worker_t *w = get_worker(vw);
  size_t want = (size_t)w->nlanes * RES_SZ;
  if (caml_string_length(vbytes) != want)
    caml_invalid_argument("Native: result blob size");
  memcpy(Bytes_val(vbytes), results_of(w), want);
  CAMLreturn(Val_unit);
}

CAMLprim value stoke_native_read_mem(value vw, value vlane, value vbytes) {
  CAMLparam3(vw, vlane, vbytes);
  worker_t *w = get_worker(vw);
  uint32_t l = (uint32_t)Int_val(vlane);
  if (l >= w->nlanes || caml_string_length(vbytes) != w->mem_size)
    caml_invalid_argument("Native: mem read");
  memcpy(Bytes_val(vbytes), memout_of(w) + (size_t)l * w->mem_size,
         w->mem_size);
  CAMLreturn(Val_unit);
}

CAMLprim value stoke_native_respawns(value vw) {
  CAMLparam1(vw);
  worker_t *w = get_worker(vw);
  CAMLreturn(Val_int(w->respawns));
}

