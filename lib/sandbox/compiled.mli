(** Compile-once execution engine.

    {!compile} translates a program into an array of closures specialized
    against one machine: operands resolved to register-file indices,
    immediates pre-extended, effective-address code picked per addressing
    mode, [Unused] slots elided, latencies prefix-summed.  {!exec} then
    replays the closures — the per-proposal translation cost is paid once
    and amortized over every test case the search evaluates it on.

    Guarantee: for any program and any starting machine state, {!exec}
    leaves the machine in exactly the state {!Exec.run} would (registers,
    memory, flags), and returns the same outcome, fault, cycle count and
    executed count — bit-identical, so fixed-seed searches produce the
    same winner under either engine.  Opcodes without a specialized
    translation are executed through {!Semantics.step} itself.

    A compiled program is bound to the machine it was compiled against;
    running it mutates that machine only.  Reset state between runs with
    {!Machine.restore_from}. *)

type t

val compile : Machine.t -> Program.t -> t
(** Translate [p]'s active slots into closures over [m].  O(program
    length); performs all operand matching so {!exec} does none. *)

val length : t -> int
(** Number of active (compiled) instructions. *)

val exec : t -> Exec.result
(** Run the compiled trace on its machine, stopping at the first fault.
    Feeds {!Exec.Counters} when enabled, like {!Exec.run}. *)
