(* Native engine: candidates are encoded with X86.Encoder into a
   trampoline and executed as real machine code inside a guarded worker
   child (native_stubs.c).

   Trampoline ABI.  A fixed state page at STATE_ADDR (child-private, all
   references abs32) carries the lane's inputs, scratch slots for the
   memory guard, the fault record, the host's callee-saved registers,
   and the outputs.  The prologue loads flags (sahf + the add-al
   overflow trick), all 16 xmm registers, and all 16 GPs — the
   candidate's rsp is plain data, signals run on the child's altstack —
   and the epilogue spills everything back.  Every memory-accessing
   instruction is preceded by a software guard that computes the
   effective address with lea, checks alignment and bounds with the same
   unsigned comparisons as Memory.offset, and on failure jumps to a stub
   recording the instruction index, fault kind and address, so faulting
   lanes report exactly what the interpreter would.  Hardware signals
   (which the guards should make unreachable) are caught by the worker
   and surfaced as a distinct divergent fault.

   Code is position-independent: data references are abs32, branches are
   rel32 and internal, so the worker executes straight from its RX view
   of the shared pages wherever they landed. *)

type handle

external nat_probe : unit -> bool = "stoke_native_probe"
external nat_cpu_flags : unit -> int = "stoke_native_cpu_flags"
external nat_create : int -> int -> int64 -> handle option = "stoke_native_create"
external nat_write_code : handle -> Bytes.t -> int -> unit = "stoke_native_write_code"
external nat_write_lanes : handle -> Bytes.t -> unit = "stoke_native_write_lanes"
external nat_write_arena : handle -> int -> Bytes.t -> unit = "stoke_native_write_arena"
external nat_request : handle -> int -> int -> int -> int = "stoke_native_request"
external nat_read_results : handle -> Bytes.t -> unit = "stoke_native_read_results"
external nat_read_mem : handle -> int -> Bytes.t -> unit = "stoke_native_read_mem"
external nat_respawns : handle -> int = "stoke_native_respawns"

(* ----- layout constants (mirrored in native_stubs.c) ----- *)

let state_addr = 0xF0000
let st_gp_in = state_addr
let st_xmm_in = state_addr + 0x080
let st_flags_in = state_addr + 0x180
let st_scr_rax = state_addr + 0x188
let st_scr_ea = state_addr + 0x190
let st_scr_flags = state_addr + 0x198
let st_f_code = state_addr + 0x1A0
let st_f_ea = state_addr + 0x1A8
let st_host_rsp = state_addr + 0x1B0
let st_host_save = state_addr + 0x1B8
let st_gp_out = state_addr + 0x200
let st_xmm_out = state_addr + 0x280
let st_flags_out = state_addr + 0x380

let lane_sz = 392
let res_sz = 416
let code_max = 256 * 1024

(* request flag bits *)
let rq_uniform = 1
let rq_has_stores = 2
let rq_want_mem = 4

(* ----- availability ----- *)

let available_cache = ref None

let available () =
  match !available_cache with
  | Some b -> b
  | None ->
    let b = try nat_probe () with _ -> false in
    available_cache := Some b;
    b

(* cpu feature bits: 1=avx 2=fma 4=sse4.1 8=sse3 *)
let cpu_flags = lazy (nat_cpu_flags ())

(* ----- instruction classification -----

   An instruction is native-safe when its hardware behaviour is
   bit-identical to Semantics.step on every input: same outputs, same
   flags, same fault kind and address.  The exclusions below are the
   known divergences; the exhaustive differential test in the test suite
   validates this predicate instance by instance (a form wrongly marked
   safe fails the test, one wrongly marked unsafe only costs a
   fallback). *)

type acc = {
  sz : int;  (** access width in bytes: 4, 8 or 16 *)
  aligned : bool;  (** hardware requires 16-byte alignment *)
  store : bool;
  store_xmm : Reg.xmm option;  (** source of a 16-byte store, for the
                                   partial-store fault stub *)
  mem : Operand.mem;
}

let wsz = function
  | Reg.L -> 4
  | Reg.Q -> 8

(* [None] = not native-safe; [Some `No_mem] = safe, no memory access;
   [Some (`Mem a)] = safe with one guarded access; [Some (`Fixup f)] =
   safe with no memory access provided the (register-only, non-faulting)
   instruction [f] runs immediately after to repair the flags. *)
let analyze cpu (i : Instr.t) :
    [ `No_mem | `Mem of acc | `Fixup of Instr.t ] option =
  let ops = i.Instr.operands in
  let n = Array.length ops in
  let has_mem =
    Array.exists (function Operand.Mem _ -> true | _ -> false) ops
  in
  let reg_only = if has_mem then None else Some `No_mem in
  let mk ?(aligned = false) ?(store = false) ?store_xmm mem sz =
    Some (`Mem { sz; aligned; store; store_xmm; mem })
  in
  let need bit v = if cpu land bit <> 0 then v else None in
  (* [src op; dst Xmm] with an optional memory source of width [sz] *)
  let sse2 sz =
    if n <> 2 then None
    else
      match ops.(0), ops.(1) with
      | Operand.Xmm _, Operand.Xmm _ -> Some `No_mem
      | Operand.Mem m, Operand.Xmm _ -> mk m sz
      | _ -> None
  in
  (* AVX 3-operand: [src2; src1 Xmm; dst Xmm], memory only in src2 *)
  let avx3 sz =
    if n <> 3 then None
    else
      match ops.(0), ops.(1), ops.(2) with
      | Operand.Xmm _, Operand.Xmm _, Operand.Xmm _ -> Some `No_mem
      | Operand.Mem m, Operand.Xmm _, Operand.Xmm _ -> mk m sz
      | _ -> None
  in
  match i.Instr.op with
  (* ----- general purpose ----- *)
  | Opcode.Mov w ->
    if n <> 2 then None
    else
      (match ops.(0), ops.(1) with
       | (Operand.Gp _ | Operand.Imm _), Operand.Gp _ -> Some `No_mem
       | Operand.Mem m, Operand.Gp _ -> mk m (wsz w)
       | (Operand.Gp _ | Operand.Imm _), Operand.Mem m ->
         mk m (wsz w) ~store:true
       | _ -> None)
  | Opcode.Movabs ->
    (match ops with
     | [| Operand.Imm _; Operand.Gp _ |] -> Some `No_mem
     | _ -> None)
  | Opcode.Lea _ ->
    (* computes the address but performs no access: no guard *)
    (match ops with
     | [| Operand.Mem _; Operand.Gp _ |] -> Some `No_mem
     | _ -> None)
  | Opcode.Add w | Opcode.Sub w | Opcode.And w | Opcode.Or w | Opcode.Xor w ->
    if n <> 2 then None
    else
      (match ops.(0), ops.(1) with
       | (Operand.Gp _ | Operand.Imm _), Operand.Gp _ -> Some `No_mem
       | Operand.Mem m, Operand.Gp _ -> mk m (wsz w)
       | (Operand.Gp _ | Operand.Imm _), Operand.Mem m ->
         (* read-modify-write: one guard covers both accesses *)
         mk m (wsz w) ~store:true
       | _ -> None)
  | Opcode.Cmp w | Opcode.Test w ->
    if n <> 2 then None
    else
      (match ops.(0), ops.(1) with
       | (Operand.Gp _ | Operand.Imm _), Operand.Gp _ -> Some `No_mem
       | Operand.Mem m, Operand.Gp _ | (Operand.Gp _ | Operand.Imm _), Operand.Mem m
         ->
         mk m (wsz w)
       | _ -> None)
  | Opcode.Imul _ ->
    (* hardware CF/OF differ from the interpreter's logic flags *)
    None
  | Opcode.Not w | Opcode.Neg w | Opcode.Inc w | Opcode.Dec w ->
    (match ops with
     | [| Operand.Gp _ |] -> Some `No_mem
     | [| Operand.Mem m |] -> mk m (wsz w) ~store:true
     | _ -> None)
  | Opcode.Shl w | Opcode.Shr w | Opcode.Sar w ->
    (match ops with
     | [| Operand.Imm c; d |] ->
       let bits = match w with Reg.Q -> 63 | Reg.L -> 31 in
       if Int64.to_int c land bits = 0 then
         (* count 0 leaves flags alone on both sides *)
         (match d with
          | Operand.Gp _ -> Some `No_mem
          | Operand.Mem m -> mk m (wsz w) ~store:true
          | _ -> None)
       else
         (* a real shift sets hardware CF (last bit out) and OF in ways
            the interpreter does not model — it derives every flag from
            the result, like TEST.  So re-derive: a trailing
            [test dst,dst] rewrites SF/ZF/PF from the result and zeroes
            CF/OF, exactly [set_logic_flags] (the machine model carries
            no AF).  Register destinations only: a fixup after a memory
            shift would need a second guarded access. *)
         (match d with
          | Operand.Gp r ->
            Some
              (`Fixup
                (Instr.make_unchecked (Opcode.Test w)
                   [| Operand.Gp r; Operand.Gp r |]))
          | _ -> None)
     | _ -> None)
  | Opcode.Cmov (_, w) ->
    (* L forms zero-extend the destination even when false; Q memory
       forms perform the load even when false *)
    (match w, ops with
     | Reg.Q, [| Operand.Gp _; Operand.Gp _ |] -> Some `No_mem
     | _ -> None)
  | Opcode.Setcc _ ->
    (match ops with
     | [| Operand.Gp _ |] -> Some `No_mem
     | _ -> None)
  (* ----- SSE data movement ----- *)
  | Opcode.Movss | Opcode.Movsd ->
    let sz = if i.Instr.op = Opcode.Movss then 4 else 8 in
    if n <> 2 then None
    else
      (match ops.(0), ops.(1) with
       | Operand.Xmm _, Operand.Xmm _ -> Some `No_mem
       | Operand.Mem m, Operand.Xmm _ -> mk m sz
       | Operand.Xmm _, Operand.Mem m -> mk m sz ~store:true
       | _ -> None)
  | Opcode.Movaps | Opcode.Movups ->
    let aligned = i.Instr.op = Opcode.Movaps in
    if n <> 2 then None
    else
      (match ops.(0), ops.(1) with
       | Operand.Xmm _, Operand.Xmm _ -> Some `No_mem
       | Operand.Mem m, Operand.Xmm _ -> mk m 16 ~aligned
       | Operand.Xmm s, Operand.Mem m ->
         mk m 16 ~aligned ~store:true ~store_xmm:s
       | _ -> None)
  | Opcode.Lddqu ->
    (* hardware has no store form; the interpreter's is not encodable *)
    need 8
      (match ops with
       | [| Operand.Xmm _; Operand.Xmm _ |] -> Some `No_mem
       | [| Operand.Mem m; Operand.Xmm _ |] -> mk m 16
       | _ -> None)
  | Opcode.Movq ->
    if n <> 2 then None
    else
      (match ops.(0), ops.(1) with
       | (Operand.Xmm _ | Operand.Gp _), (Operand.Xmm _ | Operand.Gp _) ->
         Some `No_mem
       | Operand.Mem m, Operand.Xmm _ -> mk m 8
       | Operand.Xmm _, Operand.Mem m -> mk m 8 ~store:true
       | _ -> None)
  | Opcode.Movd ->
    (* interpreter rejects memory forms with Sigill *)
    (match ops with
     | [| Operand.Gp _; Operand.Xmm _ |] | [| Operand.Xmm _; Operand.Gp _ |] ->
       Some `No_mem
     | _ -> None)
  | Opcode.Movlhps | Opcode.Movhlps -> reg_only
  (* ----- scalar FP ----- *)
  | Opcode.Addsd | Opcode.Subsd | Opcode.Mulsd | Opcode.Divsd
  | Opcode.Sqrtsd | Opcode.Minsd | Opcode.Maxsd | Opcode.Ucomisd
  | Opcode.Comisd ->
    sse2 8
  | Opcode.Addss | Opcode.Subss | Opcode.Mulss | Opcode.Divss
  | Opcode.Sqrtss | Opcode.Ucomiss | Opcode.Comiss ->
    sse2 4
  | Opcode.Minss | Opcode.Maxss ->
    (* the interpreter's f32→f64 round trip quiets signalling NaNs *)
    None
  (* ----- packed: register forms only (legacy SSE memory operands
     require 16-byte alignment the interpreter does not model) ----- *)
  | Opcode.Andps | Opcode.Andpd | Opcode.Andnps | Opcode.Orps | Opcode.Orpd
  | Opcode.Xorps | Opcode.Xorpd | Opcode.Pand | Opcode.Por | Opcode.Pxor
  | Opcode.Paddd | Opcode.Paddq | Opcode.Psubd | Opcode.Psubq
  | Opcode.Addps | Opcode.Addpd | Opcode.Subps | Opcode.Subpd
  | Opcode.Mulps | Opcode.Mulpd | Opcode.Divps | Opcode.Divpd
  | Opcode.Punpckldq | Opcode.Punpcklqdq | Opcode.Unpcklps
  | Opcode.Unpcklpd | Opcode.Shufps | Opcode.Pshufd | Opcode.Pshuflw
  | Opcode.Pslld | Opcode.Psrld | Opcode.Psllq | Opcode.Psrlq ->
    reg_only
  | Opcode.Minps | Opcode.Maxps ->
    (* packed f32 min/max: same SNaN-quieting divergence as Minss *)
    None
  (* ----- converts ----- *)
  | Opcode.Cvtss2sd -> sse2 4
  | Opcode.Cvtsd2ss -> sse2 8
  | Opcode.Cvtsi2sd w ->
    if n <> 2 then None
    else
      (match ops.(0), ops.(1) with
       | Operand.Gp _, Operand.Xmm _ -> Some `No_mem
       | Operand.Mem m, Operand.Xmm _ -> mk m (wsz w)
       | _ -> None)
  | Opcode.Cvtsi2ss w ->
    (* Q: int64→f32 through an f64 intermediate double-rounds *)
    (match w, ops with
     | Reg.L, [| Operand.Gp _; Operand.Xmm _ |] -> Some `No_mem
     | Reg.L, [| Operand.Mem m; Operand.Xmm _ |] -> mk m 4
     | _ -> None)
  | Opcode.Cvttsd2si _ | Opcode.Cvtsd2si _ ->
    if n <> 2 then None
    else
      (match ops.(0), ops.(1) with
       | Operand.Xmm _, Operand.Gp _ -> Some `No_mem
       | Operand.Mem m, Operand.Gp _ -> mk m 8
       | _ -> None)
  | Opcode.Cvttss2si _ ->
    if n <> 2 then None
    else
      (match ops.(0), ops.(1) with
       | Operand.Xmm _, Operand.Gp _ -> Some `No_mem
       | Operand.Mem m, Operand.Gp _ -> mk m 4
       | _ -> None)
  | Opcode.Roundsd | Opcode.Roundss ->
    (* imm bit 2 selects the MXCSR rounding mode, which the interpreter
       does not model *)
    let sz = if i.Instr.op = Opcode.Roundsd then 8 else 4 in
    need 4
      (match ops with
       | [| Operand.Imm im; src; Operand.Xmm _ |]
         when Int64.to_int im land 4 = 0 ->
         (match src with
          | Operand.Xmm _ -> Some `No_mem
          | Operand.Mem m -> mk m sz
          | _ -> None)
       | _ -> None)
  (* ----- AVX three-operand (no alignment requirement on VEX memory
     operands, matching the interpreter) ----- *)
  | Opcode.Vaddsd | Opcode.Vsubsd | Opcode.Vmulsd | Opcode.Vdivsd
  | Opcode.Vminsd | Opcode.Vmaxsd | Opcode.Vsqrtsd ->
    need 1 (avx3 8)
  | Opcode.Vaddss | Opcode.Vsubss | Opcode.Vmulss | Opcode.Vdivss ->
    need 1 (avx3 4)
  | Opcode.Vminss | Opcode.Vmaxss -> None
  | Opcode.Vaddps | Opcode.Vsubps | Opcode.Vmulps | Opcode.Vaddpd
  | Opcode.Vmulpd | Opcode.Vxorps | Opcode.Vandps | Opcode.Vunpcklps ->
    need 1 (avx3 16)
  | Opcode.Vpshuflw ->
    need 1
      (if n <> 3 then None
       else
         match ops.(0), ops.(1), ops.(2) with
         | Operand.Imm _, Operand.Xmm _, Operand.Xmm _ -> Some `No_mem
         | Operand.Imm _, Operand.Mem m, Operand.Xmm _ -> mk m 16
         | _ -> None)
  | Opcode.Vfmadd132sd | Opcode.Vfmadd213sd | Opcode.Vfmadd231sd
  | Opcode.Vfnmadd213sd | Opcode.Vfnmadd231sd | Opcode.Vfmsub213sd ->
    need 1 (need 2 (avx3 8))
  | Opcode.Vfmadd132ss | Opcode.Vfmadd213ss | Opcode.Vfmadd231ss ->
    (* f32 FMA through Float.fma + Fp32.round double-rounds *)
    None

let native_instr (i : Instr.t) =
  match Encoder.encode_instr i with
  | Error _ -> false
  | Ok _ -> analyze (Lazy.force cpu_flags) i <> None

(* ----- trampoline emitter ----- *)

type asm = {
  abuf : Buffer.t;
  mutable fixups : (int * int) list;  (* rel32 position, label *)
  lbls : (int, int) Hashtbl.t;
  mutable next_lbl : int;
}

let new_asm () =
  { abuf = Buffer.create 2048; fixups = []; lbls = Hashtbl.create 16;
    next_lbl = 0 }

let apos a = Buffer.length a.abuf
let e8 a v = Buffer.add_char a.abuf (Char.chr (v land 0xff))

let e32 a v =
  e8 a v;
  e8 a (v asr 8);
  e8 a (v asr 16);
  e8 a (v asr 24)

let new_label a =
  let l = a.next_lbl in
  a.next_lbl <- l + 1;
  l

let def_label a l = Hashtbl.replace a.lbls l (apos a)

(* mov [abs32], r64 / mov r64, [abs32] *)
let mov_abs a ~stor reg addr =
  e8 a (0x48 lor (if reg >= 8 then 4 else 0));
  e8 a (if stor then 0x89 else 0x8b);
  e8 a (0x04 lor ((reg land 7) lsl 3));
  e8 a 0x25;
  e32 a addr

(* movaps [abs32], xmm / movaps xmm, [abs32] *)
let movaps_abs a ~stor x addr =
  if x >= 8 then e8 a 0x44;
  e8 a 0x0f;
  e8 a (if stor then 0x29 else 0x28);
  e8 a (0x04 lor ((x land 7) lsl 3));
  e8 a 0x25;
  e32 a addr

let lahf_seto a =
  e8 a 0x9f;
  e8 a 0x0f;
  e8 a 0x90;
  e8 a 0xc0

(* add al, 0x7f; sahf — reload flags from rax (al bit 0 = OF, ah = the
   lahf byte); the add sets OF iff al = 1 and sahf overwrites the rest *)
let restore_flags a =
  e8 a 0x04;
  e8 a 0x7f;
  e8 a 0x9e

let cmp_rax a imm =
  e8 a 0x48;
  e8 a 0x3d;
  e32 a imm

(* jcc rel32 to a label *)
let jcc a cc l =
  e8 a 0x0f;
  e8 a (0x80 lor cc);
  a.fixups <- (apos a, l) :: a.fixups;
  e32 a 0

let jmp a l =
  e8 a 0xe9;
  a.fixups <- (apos a, l) :: a.fixups;
  e32 a 0

(* mov qword [abs32], imm32 *)
let mov_abs_imm a addr imm =
  e8 a 0x48;
  e8 a 0xc7;
  e8 a 0x04;
  e8 a 0x25;
  e32 a addr;
  e32 a imm

(* movq [rax], xmm — the partial low-quad store of a 16-byte store whose
   high quad is out of bounds, matching Memory.write128's mutation order *)
let movq_store_rax a x =
  e8 a 0x66;
  if x >= 8 then e8 a 0x44;
  e8 a 0x0f;
  e8 a 0xd6;
  e8 a ((x land 7) lsl 3)

let finish a =
  let code = Buffer.to_bytes a.abuf in
  List.iter
    (fun (at, l) ->
      let target = Hashtbl.find a.lbls l in
      Bytes.set_int32_le code at (Int32.of_int (target - (at + 4))))
    a.fixups;
  code

(* Per-guard fault stubs, emitted after the epilogue. *)
type stub = {
  sk : int;  (* active-instruction index *)
  s_mis : int option;
  s_oob : int;
  s_oobhi : int option;
  s_store16 : Reg.xmm option;
}

(* jb/ja against [base, base+size-sz]: unsigned comparisons on the full
   64-bit address are equivalent to Memory.offset's single unsigned
   check of (addr - base) against (size - sz) — an address below base or
   wrapped negative is unsigned-huge on one side or the other. *)
let emit_guard a ~base ~msize ~k (ac : acc) =
  mov_abs a ~stor:true 0 st_scr_rax;
  (match
     Encoder.encode_instr
       (Instr.make_unchecked (Opcode.Lea Reg.Q)
          [| Operand.Mem ac.mem; Operand.Gp Reg.Rax |])
   with
   | Ok s -> Buffer.add_string a.abuf s
   | Error _ -> raise Exit);
  mov_abs a ~stor:true 0 st_scr_ea;
  lahf_seto a;
  mov_abs a ~stor:true 0 st_scr_flags;
  mov_abs a ~stor:false 0 st_scr_ea;
  let s_mis =
    if ac.aligned then begin
      let l = new_label a in
      e8 a 0xa8;
      e8 a 0x0f;
      (* test al, 15 *)
      jcc a 5 l;
      (* jnz *)
      Some l
    end
    else None
  in
  let s_oob = new_label a in
  cmp_rax a base;
  jcc a 2 s_oob;
  (* jb: below base *)
  let s_oobhi =
    if ac.sz <= 8 then begin
      cmp_rax a (base + msize - ac.sz);
      jcc a 7 s_oob;
      (* ja: runs past the end *)
      None
    end
    else begin
      cmp_rax a (base + msize - 8);
      jcc a 7 s_oob;
      let l = new_label a in
      cmp_rax a (base + msize - 16);
      jcc a 7 l;
      Some l
    end
  in
  mov_abs a ~stor:false 0 st_scr_flags;
  restore_flags a;
  mov_abs a ~stor:false 0 st_scr_rax;
  { sk = k; s_mis; s_oob; s_oobhi;
    s_store16 = (if ac.sz = 16 && ac.store then ac.store_xmm else None) }

(* kind: 0 = out-of-bounds, 1 = misaligned; code = k*4 + kind *)
let emit_stub a ~fault_exit ~k ~kind ~ea_plus8 ~partial =
  (match partial with
   | Some x -> movq_store_rax a (Reg.xmm_index x)
   | None -> ());
  if ea_plus8 then begin
    (* add rax, 8: the faulting address is the high quad's *)
    e8 a 0x48;
    e8 a 0x83;
    e8 a 0xc0;
    e8 a 0x08
  end;
  mov_abs a ~stor:true 0 st_f_ea;
  mov_abs_imm a st_f_code ((k * 4) + kind);
  jmp a fault_exit

let emit_trampoline ~base ~msize items =
  let a = new_asm () in
  (* prologue: save host state, load lane state *)
  mov_abs a ~stor:true 4 st_host_rsp;
  List.iteri
    (fun j r -> mov_abs a ~stor:true r (st_host_save + (8 * j)))
    [ 3; 5; 12; 13; 14; 15 ];
  mov_abs a ~stor:false 0 st_flags_in;
  restore_flags a;
  for x = 0 to 15 do
    movaps_abs a ~stor:false x (st_xmm_in + (16 * x))
  done;
  for r = 1 to 15 do
    mov_abs a ~stor:false r (st_gp_in + (8 * r))
  done;
  mov_abs a ~stor:false 0 st_gp_in;
  (* body *)
  let stubs = ref [] in
  List.iteri
    (fun k (bytes, macc) ->
      (match macc with
       | `No_mem -> ()
       | `Mem ac -> stubs := emit_guard a ~base ~msize ~k ac :: !stubs);
      Buffer.add_string a.abuf bytes)
    items;
  (* epilogue *)
  mov_abs a ~stor:true 0 st_gp_out;
  lahf_seto a;
  mov_abs a ~stor:true 0 st_flags_out;
  let spill_rest = new_label a in
  def_label a spill_rest;
  for r = 1 to 15 do
    mov_abs a ~stor:true r (st_gp_out + (8 * r))
  done;
  for x = 0 to 15 do
    movaps_abs a ~stor:true x (st_xmm_out + (16 * x))
  done;
  mov_abs a ~stor:false 4 st_host_rsp;
  List.iteri
    (fun j r -> mov_abs a ~stor:false r (st_host_save + (8 * j)))
    [ 3; 5; 12; 13; 14; 15 ];
  e8 a 0xc3;
  (* fault exit: flags and rax at the fault are in the guard's scratch
     slots (the faulting instruction itself never ran, so machine state
     is the pre-instruction state, as in the interpreter) *)
  let fault_exit = new_label a in
  def_label a fault_exit;
  mov_abs a ~stor:false 0 st_scr_flags;
  mov_abs a ~stor:true 0 st_flags_out;
  mov_abs a ~stor:false 0 st_scr_rax;
  mov_abs a ~stor:true 0 st_gp_out;
  jmp a spill_rest;
  List.iter
    (fun s ->
      (match s.s_mis with
       | Some l ->
         def_label a l;
         emit_stub a ~fault_exit ~k:s.sk ~kind:1 ~ea_plus8:false ~partial:None
       | None -> ());
      def_label a s.s_oob;
      emit_stub a ~fault_exit ~k:s.sk ~kind:0 ~ea_plus8:false ~partial:None;
      match s.s_oobhi with
      | Some l ->
        def_label a l;
        emit_stub a ~fault_exit ~k:s.sk ~kind:0 ~ea_plus8:true
          ~partial:s.s_store16
      | None -> ())
    (List.rev !stubs);
  finish a

(* ----- flag and lane-record marshalling -----

   The raw flag word is the rax value after [lahf; seto al]: the lahf
   byte in bits 8–15 (SF/ZF/AF/PF/CF at 15/14/12/10/8) and OF in bit 0.
   The same format loads via [add al, 0x7f; sahf]. *)

let raw_of_flags (f : Machine.flags) =
  let b c v = if c then v else 0 in
  Int64.of_int
    (b f.Machine.sf 0x8000 lor b f.Machine.zf 0x4000
    lor b f.Machine.pf 0x400 lor 0x200 lor b f.Machine.cf 0x100
    lor b f.Machine.o_f 1)

let flags_of_raw (f : Machine.flags) raw =
  let bit k = Int64.logand (Int64.shift_right_logical raw k) 1L = 1L in
  f.Machine.cf <- bit 8;
  f.Machine.pf <- bit 10;
  f.Machine.zf <- bit 14;
  f.Machine.sf <- bit 15;
  f.Machine.o_f <- bit 0

(* lane record: GP plane at +0, xmm at +0x80 (lo/hi quad pairs, exactly
   Machine.t's xmm array layout), raw flags at +0x180 *)
let write_lane_record blob off (m : Machine.t) =
  for i = 0 to 15 do
    Bytes.set_int64_le blob (off + (8 * i)) m.Machine.gp.(i)
  done;
  for i = 0 to 31 do
    Bytes.set_int64_le blob (off + 0x80 + (8 * i)) m.Machine.xmm.(i)
  done;
  Bytes.set_int64_le blob (off + 0x180) (raw_of_flags m.Machine.flags)

(* ----- batches and compiled programs ----- *)

type batch = {
  h : handle;
  nlanes : int;
  mem_size : int;
  base : int64;
  pristine : Machine.t array;  (* baked pristine+testcase per lane *)
  cur : Machine.t array;  (* parent-side view for overlays and tests *)
  want_mem : bool;
  baked_uniform : bool;  (* every lane's baked arena image is identical *)
  lanes_blob : Bytes.t;
  mutable blob_dirty : bool;
  results : Bytes.t;
  membuf : Bytes.t;
  readout : Machine.t;  (* register scratch for read_outputs *)
  touched : bool array;
  mutable any_touched : bool;
  mutable crashed : bool;
  mutable last : t option;
}

and t = {
  tb : batch;
  cbytes : Bytes.t;
  clen : int;
  nactive : int;
  lat_prefix : int array;  (* lat_prefix.(i) = cycles of the first i *)
  has_stores : bool;
}

let lane_count b = b.nlanes
let length t = t.nactive
let code t = Bytes.sub_string t.cbytes 0 t.clen
let respawns b = nat_respawns b.h

let create_batch ?(want_mem = false) (pristine : Machine.t) tests =
  let n = Array.length tests in
  if n = 0 then invalid_arg "Native.create_batch: empty test array";
  if not (available ()) then None
  else begin
    let mem_size = Memory.size pristine.Machine.mem in
    let base = Memory.base pristine.Machine.mem in
    match nat_create n mem_size base with
    | None -> None
    | Some h ->
      let lanes =
        Array.map
          (fun tc ->
            let m = Machine.copy pristine in
            Testcase.apply tc m;
            m)
          tests
      in
      let cur = Array.map Machine.copy lanes in
      let baked_uniform =
        Array.for_all
          (fun m -> Memory.equal m.Machine.mem lanes.(0).Machine.mem)
          lanes
      in
      let lanes_blob = Bytes.create (n * lane_sz) in
      Array.iteri
        (fun l m -> write_lane_record lanes_blob (l * lane_sz) m)
        lanes;
      nat_write_lanes h lanes_blob;
      Array.iteri
        (fun l m -> nat_write_arena h l (Memory.unsafe_bytes m.Machine.mem))
        lanes;
      Some
        {
          h;
          nlanes = n;
          mem_size;
          base;
          pristine = lanes;
          cur;
          want_mem;
          baked_uniform;
          lanes_blob;
          blob_dirty = false;
          results = Bytes.create (n * res_sz);
          membuf = Bytes.create mem_size;
          readout = Machine.create ~mem_size:16 ();
          touched = Array.make n false;
          any_touched = false;
          crashed = false;
          last = None;
        }
  end

let reset b =
  if b.any_touched then begin
    for l = 0 to b.nlanes - 1 do
      if b.touched.(l) then begin
        Machine.restore_from ~src:b.pristine.(l) ~dst:b.cur.(l);
        write_lane_record b.lanes_blob (l * lane_sz) b.pristine.(l);
        nat_write_arena b.h l (Memory.unsafe_bytes b.pristine.(l).Machine.mem);
        b.touched.(l) <- false
      end
    done;
    b.blob_dirty <- true;
    b.any_touched <- false
  end

let apply_testcase b ~lane tc =
  Testcase.apply tc b.cur.(lane);
  write_lane_record b.lanes_blob (lane * lane_sz) b.cur.(lane);
  b.blob_dirty <- true;
  if tc.Testcase.mem_writes <> [] then
    nat_write_arena b.h lane (Memory.unsafe_bytes b.cur.(lane).Machine.mem);
  b.touched.(lane) <- true;
  b.any_touched <- true

let compile (b : batch) (p : Program.t) : t option =
  let cpu = Lazy.force cpu_flags in
  let rec gather acc = function
    | [] -> Some (List.rev acc)
    | i :: rest ->
      (match Encoder.encode_instr i, analyze cpu i with
       | Ok bytes, Some (`Fixup fi) ->
         (* fold the flag-repair bytes into the instruction's own item:
            the fixup is register-only and cannot fault, so positions,
            executed counts and latency stay per original instruction *)
         (match Encoder.encode_instr fi with
          | Ok fb -> gather ((i, bytes ^ fb, `No_mem) :: acc) rest
          | Error _ -> None)
       | Ok bytes, Some ((`No_mem | `Mem _) as macc) ->
         gather ((i, bytes, macc) :: acc) rest
       | _ -> None)
  in
  match gather [] (Program.instrs p) with
  | None -> None
  | Some items ->
    let nactive = List.length items in
    let lat_prefix = Array.make (nactive + 1) 0 in
    List.iteri
      (fun k (i, _, _) ->
        lat_prefix.(k + 1) <- lat_prefix.(k) + Latency.of_instr i)
      items;
    let has_stores =
      List.exists
        (fun (_, _, m) -> match m with `Mem a -> a.store | `No_mem -> false)
        items
    in
    (match
       emit_trampoline ~base:(Int64.to_int b.base) ~msize:b.mem_size
         (List.map (fun (_, bytes, m) -> (bytes, m)) items)
     with
     | exception Exit -> None
     | cbytes ->
       if Bytes.length cbytes > code_max then None
       else
         Some
           { tb = b; cbytes; clen = Bytes.length cbytes; nactive; lat_prefix;
             has_stores })

(* ----- execution and result parsing ----- *)

let result_of (b : batch) (t : t) lane =
  let off = lane * res_sz in
  let status = Int32.to_int (Bytes.get_int32_le b.results off) in
  if status = 0 then
    { Exec.outcome = Exec.Finished; cycles = t.lat_prefix.(t.nactive);
      executed = t.nactive }
  else if status = 1 then begin
    let fcode = Int32.to_int (Bytes.get_int32_le b.results (off + 4)) in
    let k = fcode lsr 2 and kind = fcode land 3 in
    let ea = Bytes.get_int64_le b.results (off + 8) in
    let mf =
      if kind = 1 then Memory.Misaligned ea else Memory.Out_of_bounds ea
    in
    let executed = min (k + 1) t.nactive in
    { Exec.outcome = Exec.Faulted (Semantics.Segv (Memory.fault_to_string mf));
      cycles = t.lat_prefix.(executed); executed }
  end
  else begin
    let signo = Int32.to_int (Bytes.get_int32_le b.results (off + 4)) in
    let rip = Bytes.get_int64_le b.results (off + 16) in
    { Exec.outcome =
        Exec.Faulted
          (Semantics.Sigill
             (Printf.sprintf "native hardware fault (signal %d at +0x%Lx)"
                signo rip));
      cycles = t.lat_prefix.(t.nactive); executed = t.nactive }
  end

let exec (t : t) =
  let b = t.tb in
  if b.blob_dirty then begin
    nat_write_lanes b.h b.lanes_blob;
    b.blob_dirty <- false
  end;
  (match b.last with
   | Some t' when t' == t -> ()
   | _ -> nat_write_code b.h t.cbytes t.clen);
  b.last <- Some t;
  let uniform = b.baked_uniform && not b.any_touched in
  let fl =
    (if uniform then rq_uniform else 0)
    lor (if t.has_stores then rq_has_stores else 0)
    lor if b.want_mem then rq_want_mem else 0
  in
  let rc = nat_request b.h b.nlanes t.clen fl in
  if rc <> 0 then begin
    b.crashed <- true;
    true
  end
  else begin
    b.crashed <- false;
    nat_read_results b.h b.results;
    if Exec.Counters.is_enabled () then
      for l = 0 to b.nlanes - 1 do
        let r = result_of b t l in
        Exec.Counters.record ~run_cycles:r.Exec.cycles
          ~run_instrs:r.Exec.executed
          ~faulted:
            (match r.Exec.outcome with
             | Exec.Finished -> false
             | Exec.Faulted _ -> true)
      done;
    false
  end

let crash_fault = Semantics.Sigill "native worker crashed"

let fault (b : batch) ~lane =
  if b.crashed then Some crash_fault
  else begin
    let off = lane * res_sz in
    let status = Int32.to_int (Bytes.get_int32_le b.results off) in
    if status = 0 then None
    else
      match b.last with
      | None -> None
      | Some t ->
        (match (result_of b t lane).Exec.outcome with
         | Exec.Faulted f -> Some f
         | Exec.Finished -> None)
  end

let result (b : batch) ~lane =
  match b.last with
  | None -> invalid_arg "Native.result: nothing executed"
  | Some t ->
    if b.crashed then
      { Exec.outcome = Exec.Faulted crash_fault; cycles = 0; executed = 0 }
    else result_of b t lane

let read_outputs (b : batch) ~lane spec =
  let off = (lane * res_sz) + 24 in
  let m = b.readout in
  for i = 0 to 15 do
    m.Machine.gp.(i) <- Bytes.get_int64_le b.results (off + (8 * i))
  done;
  for i = 0 to 31 do
    m.Machine.xmm.(i) <- Bytes.get_int64_le b.results (off + 128 + (8 * i))
  done;
  Spec.read_outputs spec m

let lane_machine (b : batch) ~lane =
  if not b.want_mem then
    invalid_arg "Native.lane_machine: batch created without want_mem";
  let m = b.cur.(lane) in
  let off = (lane * res_sz) + 24 in
  for i = 0 to 15 do
    m.Machine.gp.(i) <- Bytes.get_int64_le b.results (off + (8 * i))
  done;
  for i = 0 to 31 do
    m.Machine.xmm.(i) <- Bytes.get_int64_le b.results (off + 128 + (8 * i))
  done;
  flags_of_raw m.Machine.flags (Bytes.get_int64_le b.results (off + 384));
  nat_read_mem b.h lane b.membuf;
  Memory.set_bytes m.Machine.mem b.base (Bytes.to_string b.membuf);
  b.touched.(lane) <- true;
  b.any_touched <- true;
  m

let run_one (b : batch) (t : t) (m : Machine.t) =
  if not b.want_mem then
    invalid_arg "Native.run_one: batch created without want_mem";
  write_lane_record b.lanes_blob 0 m;
  nat_write_lanes b.h b.lanes_blob;
  b.blob_dirty <- false;
  nat_write_arena b.h 0 (Memory.unsafe_bytes m.Machine.mem);
  b.touched.(0) <- true;
  b.any_touched <- true;
  (match b.last with
   | Some t' when t' == t -> ()
   | _ -> nat_write_code b.h t.cbytes t.clen);
  b.last <- Some t;
  let fl = rq_want_mem lor if t.has_stores then rq_has_stores else 0 in
  let rc = nat_request b.h 1 t.clen fl in
  if rc <> 0 then begin
    b.crashed <- true;
    None
  end
  else begin
    b.crashed <- false;
    nat_read_results b.h b.results;
    let status = Int32.to_int (Bytes.get_int32_le b.results 0) in
    if status >= 2 then None (* hardware fault: divergent, caller falls back *)
    else begin
      let off = 24 in
      for i = 0 to 15 do
        m.Machine.gp.(i) <- Bytes.get_int64_le b.results (off + (8 * i))
      done;
      for i = 0 to 31 do
        m.Machine.xmm.(i) <- Bytes.get_int64_le b.results (off + 128 + (8 * i))
      done;
      flags_of_raw m.Machine.flags (Bytes.get_int64_le b.results (off + 384));
      nat_read_mem b.h 0 b.membuf;
      Memory.set_bytes m.Machine.mem b.base (Bytes.to_string b.membuf);
      let r = result_of b t 0 in
      if Exec.Counters.is_enabled () then
        Exec.Counters.record ~run_cycles:r.Exec.cycles
          ~run_instrs:r.Exec.executed
          ~faulted:
            (match r.Exec.outcome with
             | Exec.Finished -> false
             | Exec.Faulted _ -> true);
      Some r
    end
  end
