(** Operational semantics of the modelled opcode subset.

    [step] executes one instruction against a {!Machine.t}, mutating it in
    place.  IEEE-754 behaviour comes from the host's double arithmetic;
    single-precision operations round results back to binary32 (exact for
    the arithmetic ops in our subset).  All memory accesses are checked by
    {!Memory}. *)

type fault =
  | Segv of string  (** out-of-bounds or misaligned access *)
  | Sigfpe of string  (** reserved — FP exceptions are masked on x86-64 *)
  | Sigill of string  (** instruction form the interpreter cannot run *)

val step : Machine.t -> Instr.t -> (unit, fault) result

val fault_to_string : fault -> string

val eff_addr : Machine.t -> Operand.mem -> int64
(** Effective address of a memory operand. *)
