(** Operational semantics of the modelled opcode subset.

    [step] executes one instruction against a {!Machine.t}, mutating it in
    place.  IEEE-754 behaviour comes from the host's double arithmetic;
    single-precision operations round results back to binary32 (exact for
    the arithmetic ops in our subset).  All memory accesses are checked by
    {!Memory}.

    The value-level helpers below (flag computation, SSE min/max,
    rounding, float→int conversion, 128-bit lane plumbing) are exported so
    {!Compiled} specializes instructions over {e exactly} the same
    arithmetic — the two engines stay bit-identical by sharing code, not
    by re-deriving it. *)

type fault =
  | Segv of string  (** out-of-bounds or misaligned access *)
  | Sigfpe of string  (** reserved — FP exceptions are masked on x86-64 *)
  | Sigill of string  (** instruction form the interpreter cannot run *)

val step : Machine.t -> Instr.t -> (unit, fault) result

val fault_to_string : fault -> string

val equal_fault : fault -> fault -> bool

val eff_addr : Machine.t -> Operand.mem -> int64
(** Effective address of a memory operand. *)

(** {2 Shared arithmetic helpers} *)

val width_bytes : Reg.w -> int

val signed : Reg.w -> int64 -> int64
(** Sign-extended view for signed computation. *)

val trunc : Reg.w -> int64 -> int64

val set_logic_flags : Machine.t -> Reg.w -> int64 -> unit
val set_add_flags : Machine.t -> Reg.w -> int64 -> int64 -> int64 -> unit
val set_sub_flags : Machine.t -> Reg.w -> int64 -> int64 -> int64 -> unit
val set_fp_compare_flags : Machine.t -> float -> float -> unit
val cond_holds : Machine.t -> Opcode.cond -> bool

val sse_min_f64 : dst_old:float -> src:float -> float
val sse_max_f64 : dst_old:float -> src:float -> float

val rint_even : float -> float
(** Round to nearest, ties to even (the default MXCSR mode). *)

val f2i64 : float -> int64
(** Float → int64 with the x86 "integer indefinite" result on overflow or
    NaN. *)

val f2i32 : float -> int64

val dword_of : float -> int64
(** binary32 bits of a float, zero-extended to a dword. *)

val lanes4 : int64 * int64 -> int64 array
val join4 : int64 array -> int64 * int64

val map_lanes4_f32 : (float -> float -> float) -> int64 * int64 -> int64 * int64 -> int64 * int64
val map_lanes2_f64 : (float -> float -> float) -> int64 * int64 -> int64 * int64 -> int64 * int64
