type flags = {
  mutable cf : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable o_f : bool;
  mutable pf : bool;
}

type t = {
  gp : int64 array;
  xmm : int64 array;
  flags : flags;
  mem : Memory.t;
}

let default_rsp t =
  Int64.add (Memory.base t.mem) (Int64.of_int (Memory.size t.mem / 2))

let create ?(mem_size = 4096) () =
  let t =
    {
      gp = Array.make 16 0L;
      xmm = Array.make 32 0L;
      flags = { cf = false; zf = false; sf = false; o_f = false; pf = false };
      mem = Memory.create mem_size;
    }
  in
  t.gp.(Reg.gp_index Reg.Rsp) <- default_rsp t;
  t

let copy t =
  {
    gp = Array.copy t.gp;
    xmm = Array.copy t.xmm;
    flags = { t.flags with cf = t.flags.cf };
    mem = Memory.copy t.mem;
  }

let restore_from ~src ~dst =
  Array.blit src.gp 0 dst.gp 0 16;
  Array.blit src.xmm 0 dst.xmm 0 32;
  dst.flags.cf <- src.flags.cf;
  dst.flags.zf <- src.flags.zf;
  dst.flags.sf <- src.flags.sf;
  dst.flags.o_f <- src.flags.o_f;
  dst.flags.pf <- src.flags.pf;
  Memory.restore_from ~src:src.mem ~dst:dst.mem

let get_gp t r = t.gp.(Reg.gp_index r)
let set_gp t r v = t.gp.(Reg.gp_index r) <- v

let get_gp32 t r = Int64.logand (get_gp t r) 0xffff_ffffL
let set_gp32 t r v = set_gp t r (Int64.logand v 0xffff_ffffL)

let get_xmm t r =
  let i = Reg.xmm_index r in
  (t.xmm.(2 * i), t.xmm.((2 * i) + 1))

let set_xmm t r (lo, hi) =
  let i = Reg.xmm_index r in
  t.xmm.(2 * i) <- lo;
  t.xmm.((2 * i) + 1) <- hi

let get_xmm_lo t r = t.xmm.(2 * Reg.xmm_index r)
let set_xmm_lo t r v = t.xmm.(2 * Reg.xmm_index r) <- v

let get_f64 t r = Int64.float_of_bits (get_xmm_lo t r)
let set_f64 t r v = set_xmm_lo t r (Int64.bits_of_float v)

let get_f32 t r =
  Int32.float_of_bits (Int64.to_int32 (get_xmm_lo t r))

let set_f32 t r v =
  let bits32 = Int64.of_int32 (Int32.bits_of_float v) in
  let lo = get_xmm_lo t r in
  set_xmm_lo t r
    (Int64.logor
       (Int64.logand lo 0xffff_ffff_0000_0000L)
       (Int64.logand bits32 0xffff_ffffL))

let get_f32_hi t r =
  Int32.float_of_bits (Int64.to_int32 (Int64.shift_right_logical (get_xmm_lo t r) 32))
