type frange = {
  lo : float;
  hi : float;
}

type float_input =
  | Fin_xmm_f64 of Reg.xmm * frange
  | Fin_xmm_f32 of Reg.xmm * frange
  | Fin_xmm_f32_hi of Reg.xmm * frange
  | Fin_mem_f32 of int64 * frange
  | Fin_mem_f64 of int64 * frange

type fixed_input =
  | Fix_gp of Reg.gp * int64
  | Fix_mem of int64 * string

type output =
  | Out_xmm_f64 of Reg.xmm
  | Out_xmm_f32 of Reg.xmm
  | Out_xmm_f32_hi of Reg.xmm
  | Out_gp of Reg.gp

type t = {
  name : string;
  program : Program.t;
  float_inputs : float_input list;
  fixed_inputs : fixed_input list;
  outputs : output list;
  mem_size : int;
}

let make ~name ~program ?(float_inputs = []) ?(fixed_inputs = []) ~outputs
    ?(mem_size = 4096) () =
  { name; program; float_inputs; fixed_inputs; outputs; mem_size }

let arity t = List.length t.float_inputs

let range_of = function
  | Fin_xmm_f64 (_, r)
  | Fin_xmm_f32 (_, r)
  | Fin_xmm_f32_hi (_, r)
  | Fin_mem_f32 (_, r)
  | Fin_mem_f64 (_, r) ->
    r

let input_ranges t = Array.of_list (List.map range_of t.float_inputs)

let testcase_of_floats t xs =
  if Array.length xs <> arity t then
    invalid_arg "Spec.testcase_of_floats: arity mismatch";
  let tc = ref Testcase.empty in
  List.iteri
    (fun idx input ->
      let x = xs.(idx) in
      match input with
      | Fin_xmm_f64 (r, _) -> tc := Testcase.with_f64 r x !tc
      | Fin_xmm_f32 (r, _) ->
        (* Preserve a previously-set high dword (f32 pair inputs). *)
        let existing =
          List.assoc_opt r !tc.Testcase.xmms
        in
        (match existing with
         | Some (lo, hi) ->
           let bits = Int64.logand (Int64.of_int32 (Int32.bits_of_float x)) 0xffff_ffffL in
           let lo' = Int64.logor (Int64.logand lo 0xffff_ffff_0000_0000L) bits in
           tc :=
             { !tc with
               Testcase.xmms =
                 (r, (lo', hi)) :: List.remove_assoc r !tc.Testcase.xmms
             }
         | None -> tc := Testcase.with_f32 r x !tc)
      | Fin_xmm_f32_hi (r, _) ->
        let lo0, hi0 =
          match List.assoc_opt r !tc.Testcase.xmms with
          | Some v -> v
          | None -> (0L, 0L)
        in
        let bits = Int64.of_int32 (Int32.bits_of_float x) in
        let lo' =
          Int64.logor
            (Int64.logand lo0 0x0000_0000_ffff_ffffL)
            (Int64.shift_left (Int64.logand bits 0xffff_ffffL) 32)
        in
        tc :=
          { !tc with
            Testcase.xmms = (r, (lo', hi0)) :: List.remove_assoc r !tc.Testcase.xmms
          }
      | Fin_mem_f32 (addr, _) ->
        tc := Testcase.with_mem addr (Testcase.f32_bytes x) !tc
      | Fin_mem_f64 (addr, _) ->
        tc := Testcase.with_mem addr (Testcase.f64_bytes x) !tc)
    t.float_inputs;
  List.iter
    (fun fixed ->
      match fixed with
      | Fix_gp (r, v) -> tc := Testcase.with_gp r v !tc
      | Fix_mem (addr, s) -> tc := Testcase.with_mem addr s !tc)
    t.fixed_inputs;
  !tc

let random_floats g t =
  Array.map (fun r -> Rng.Dist.uniform g r.lo r.hi) (input_ranges t)

let random_testcase g t = testcase_of_floats t (random_floats g t)

let live_out_set t =
  List.fold_left
    (fun acc o ->
      match o with
      | Out_xmm_f64 r | Out_xmm_f32 r | Out_xmm_f32_hi r ->
        Liveness.Locset.add (Liveness.Lxmm r) acc
      | Out_gp r -> Liveness.Locset.add (Liveness.Lgp r) acc)
    Liveness.Locset.empty t.outputs

let live_in_set t =
  let acc =
    List.fold_left
      (fun acc i ->
        match i with
        | Fin_xmm_f64 (r, _) | Fin_xmm_f32 (r, _) | Fin_xmm_f32_hi (r, _) ->
          Liveness.Locset.add (Liveness.Lxmm r) acc
        | Fin_mem_f32 _ | Fin_mem_f64 _ -> Liveness.Locset.add Liveness.Lmem acc)
      Liveness.Locset.empty t.float_inputs
  in
  List.fold_left
    (fun acc i ->
      match i with
      | Fix_gp (r, _) -> Liveness.Locset.add (Liveness.Lgp r) acc
      | Fix_mem _ -> Liveness.Locset.add Liveness.Lmem acc)
    acc t.fixed_inputs

type value =
  | Vf64 of float
  | Vf32 of float
  | Vi64 of int64

let read_outputs t (m : Machine.t) =
  List.map
    (fun o ->
      match o with
      | Out_xmm_f64 r -> Vf64 (Machine.get_f64 m r)
      | Out_xmm_f32 r -> Vf32 (Machine.get_f32 m r)
      | Out_xmm_f32_hi r -> Vf32 (Machine.get_f32_hi m r)
      | Out_gp r -> Vi64 (Machine.get_gp m r))
    t.outputs
  |> Array.of_list

let value_ulp a b =
  match a, b with
  | Vf64 x, Vf64 y -> Fpbits.Ulp.dist64 x y
  | Vf32 x, Vf32 y -> Fpbits.Ulp.dist32 x y
  | Vi64 x, Vi64 y ->
    let d = Int64.sub x y in
    if Int64.compare d 0L >= 0 then d else Int64.neg d
  | (Vf64 _ | Vf32 _ | Vi64 _), _ ->
    invalid_arg "Spec.value_ulp: mismatched value types"

let value_to_string = function
  | Vf64 x -> Printf.sprintf "f64:%h" x
  | Vf32 x -> Printf.sprintf "f32:%h" x
  | Vi64 x -> Printf.sprintf "i64:%Ld" x
