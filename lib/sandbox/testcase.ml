type t = {
  gps : (Reg.gp * int64) list;
  xmms : (Reg.xmm * (int64 * int64)) list;
  mem_writes : (int64 * string) list;
}

let empty = { gps = []; xmms = []; mem_writes = [] }

let f64_bytes x =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float x);
  Bytes.to_string b

let f32_bytes x =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.bits_of_float x);
  Bytes.to_string b

let of_f64 pairs =
  {
    empty with
    xmms = List.map (fun (r, x) -> (r, (Int64.bits_of_float x, 0L))) pairs;
  }

let of_f32 pairs =
  {
    empty with
    xmms =
      List.map
        (fun (r, x) ->
          (r, (Int64.logand (Int64.of_int32 (Int32.bits_of_float x)) 0xffff_ffffL, 0L)))
        pairs;
  }

let with_gp r v t = { t with gps = (r, v) :: t.gps }
let with_xmm r v t = { t with xmms = (r, v) :: t.xmms }
let with_f64 r x t = with_xmm r (Int64.bits_of_float x, 0L) t

let with_f32 r x t =
  with_xmm r (Int64.logand (Int64.of_int32 (Int32.bits_of_float x)) 0xffff_ffffL, 0L) t

let with_f32_pair r (x0, x1) t =
  let lo =
    Int64.logor
      (Int64.logand (Int64.of_int32 (Int32.bits_of_float x0)) 0xffff_ffffL)
      (Int64.shift_left (Int64.of_int32 (Int32.bits_of_float x1)) 32)
  in
  with_xmm r (lo, 0L) t

let with_mem addr bytes t = { t with mem_writes = (addr, bytes) :: t.mem_writes }

let with_mem_f32s addr floats t =
  with_mem addr (String.concat "" (List.map f32_bytes floats)) t

let with_mem_f64s addr floats t =
  with_mem addr (String.concat "" (List.map f64_bytes floats)) t

let apply t (m : Machine.t) =
  List.iter (fun (r, v) -> Machine.set_gp m r v) t.gps;
  List.iter (fun (r, v) -> Machine.set_xmm m r v) t.xmms;
  List.iter (fun (addr, s) -> Memory.set_bytes m.Machine.mem addr s) t.mem_writes
