type outcome =
  | Finished
  | Faulted of Semantics.fault

type engine =
  | Interp
  | Compiled
  | Batched
  | Native

let engine_to_string = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Batched -> "batched"
  | Native -> "native"

let engine_names = [ "interp"; "compiled"; "batched"; "native" ]

let engine_of_string = function
  | "interp" -> Ok Interp
  | "compiled" -> Ok Compiled
  | "batched" -> Ok Batched
  | "native" -> Ok Native
  | s ->
    Error
      (Printf.sprintf "unknown engine %S (valid: %s)" s
         (String.concat ", " engine_names))

type result = {
  outcome : outcome;
  cycles : int;
  executed : int;
}

module Counters = struct
  type snapshot = {
    runs : int;
    instrs : int;
    cycles : int;
    faults : int;
  }

  let enabled = Atomic.make false
  let runs = Atomic.make 0
  let instrs = Atomic.make 0
  let cycles = Atomic.make 0
  let faults = Atomic.make 0

  let enable () = Atomic.set enabled true
  let disable () = Atomic.set enabled false
  let is_enabled () = Atomic.get enabled

  let reset () =
    List.iter (fun c -> Atomic.set c 0) [ runs; instrs; cycles; faults ]

  let snapshot () =
    {
      runs = Atomic.get runs;
      instrs = Atomic.get instrs;
      cycles = Atomic.get cycles;
      faults = Atomic.get faults;
    }

  let record ~run_cycles ~run_instrs ~faulted =
    Atomic.incr runs;
    ignore (Atomic.fetch_and_add instrs run_instrs);
    ignore (Atomic.fetch_and_add cycles run_cycles);
    if faulted then Atomic.incr faults
end

let run (m : Machine.t) (p : Program.t) =
  let cycles = ref 0 in
  let executed = ref 0 in
  let slots = p.Program.slots in
  let n = Array.length slots in
  let rec go idx =
    if idx >= n then Finished
    else
      match slots.(idx) with
      | Program.Unused -> go (idx + 1)
      | Program.Active i ->
        (match Semantics.step m i with
         | Ok () ->
           cycles := !cycles + Latency.of_instr i;
           incr executed;
           go (idx + 1)
         | Error f ->
           cycles := !cycles + Latency.of_instr i;
           incr executed;
           Faulted f)
  in
  let outcome = go 0 in
  if Atomic.get Counters.enabled then
    Counters.record ~run_cycles:!cycles ~run_instrs:!executed
      ~faulted:(match outcome with Finished -> false | Faulted _ -> true);
  { outcome; cycles = !cycles; executed = !executed }

let run_testcase ~mem_size p tc =
  let m = Machine.create ~mem_size () in
  Testcase.apply tc m;
  let r = run m p in
  (m, r)

let outcome_is_signal = function
  | Finished -> false
  | Faulted _ -> true

let outcome_to_string = function
  | Finished -> "finished"
  | Faulted f -> Semantics.fault_to_string f
