type outcome =
  | Finished
  | Faulted of Semantics.fault

type result = {
  outcome : outcome;
  cycles : int;
  executed : int;
}

let run (m : Machine.t) (p : Program.t) =
  let cycles = ref 0 in
  let executed = ref 0 in
  let slots = p.Program.slots in
  let n = Array.length slots in
  let rec go idx =
    if idx >= n then Finished
    else
      match slots.(idx) with
      | Program.Unused -> go (idx + 1)
      | Program.Active i ->
        (match Semantics.step m i with
         | Ok () ->
           cycles := !cycles + Latency.of_instr i;
           incr executed;
           go (idx + 1)
         | Error f ->
           cycles := !cycles + Latency.of_instr i;
           incr executed;
           Faulted f)
  in
  let outcome = go 0 in
  { outcome; cycles = !cycles; executed = !executed }

let run_testcase ?mem_size p tc =
  let m = Machine.create ?mem_size () in
  Testcase.apply tc m;
  let r = run m p in
  (m, r)

let outcome_is_signal = function
  | Finished -> false
  | Faulted _ -> true

let outcome_to_string = function
  | Finished -> "finished"
  | Faulted f -> Semantics.fault_to_string f
