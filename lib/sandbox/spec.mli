(** Kernel specification: the contract between a loop-free kernel and the
    machine — which locations are live-in (with the user-specified valid
    input ranges of Eq. 16), which are live-out (with their value types),
    and any fixed setup such as pointer arguments.

    The float-typed inputs form a vector that both random test-case
    generation (search) and Gaussian-perturbation proposals (validation)
    operate on; [testcase_of_floats] reassembles a {!Testcase.t} from such a
    vector. *)

type frange = {
  lo : float;
  hi : float;
}

(** A float-typed live-in location. *)
type float_input =
  | Fin_xmm_f64 of Reg.xmm * frange
  | Fin_xmm_f32 of Reg.xmm * frange
  | Fin_xmm_f32_hi of Reg.xmm * frange
      (** dword 1 of the register (bits 32–63), as in the paper's packed
          vector arguments *)
  | Fin_mem_f32 of int64 * frange  (** binary32 at an absolute address *)
  | Fin_mem_f64 of int64 * frange

(** Fixed (non-perturbed) setup. *)
type fixed_input =
  | Fix_gp of Reg.gp * int64
  | Fix_mem of int64 * string

type output =
  | Out_xmm_f64 of Reg.xmm
  | Out_xmm_f32 of Reg.xmm
  | Out_xmm_f32_hi of Reg.xmm
  | Out_gp of Reg.gp

type t = {
  name : string;
  program : Program.t;  (** the target *)
  float_inputs : float_input list;
  fixed_inputs : fixed_input list;
  outputs : output list;
  mem_size : int;
}

val make :
  name:string ->
  program:Program.t ->
  ?float_inputs:float_input list ->
  ?fixed_inputs:fixed_input list ->
  outputs:output list ->
  ?mem_size:int ->
  unit ->
  t

val arity : t -> int
(** Number of float inputs. *)

val input_ranges : t -> frange array

val testcase_of_floats : t -> float array -> Testcase.t
(** Raises [Invalid_argument] on an arity mismatch. *)

val random_floats : Rng.Xoshiro256.t -> t -> float array
(** Uniform draw from each input's range. *)

val random_testcase : Rng.Xoshiro256.t -> t -> Testcase.t

val live_out_set : t -> Liveness.Locset.t

val live_in_set : t -> Liveness.Locset.t
(** Locations the kernel's inputs define before the first instruction runs:
    the float-input registers, the fixed GP inputs, and [Lmem] if any input
    lives in memory.  (The environment additionally defines [rsp] — see
    [Analysis.Screen.env_of_spec].) *)

(** A live-out value read from a machine after execution. *)
type value =
  | Vf64 of float
  | Vf32 of float
  | Vi64 of int64

val read_outputs : t -> Machine.t -> value array

val value_ulp : value -> value -> Fpbits.Ulp.t
(** ULP distance between same-typed values (integer outputs use saturated
    absolute difference); mismatched constructors are a program error. *)

val value_to_string : value -> string
