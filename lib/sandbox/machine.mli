(** Architectural state: sixteen 64-bit general-purpose registers, sixteen
    128-bit xmm registers (stored as quadword pairs), the five status flags
    our opcode subset reads or writes, and a sandboxed memory arena. *)

type flags = {
  mutable cf : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable o_f : bool;  (** overflow flag; [of] is an OCaml keyword *)
  mutable pf : bool;
}

type t = {
  gp : int64 array;  (** indexed by {!Reg.gp_index} *)
  xmm : int64 array;  (** lane [2i] = low quad of xmm[i], [2i+1] = high *)
  flags : flags;
  mem : Memory.t;
}

val create : ?mem_size:int -> unit -> t
(** Fresh zeroed machine; [mem_size] defaults to 4096 bytes.  [rsp] starts
    in the middle of the arena so small negative and positive displacements
    both stay in bounds. *)

val copy : t -> t
val restore_from : src:t -> dst:t -> unit
(** Overwrite [dst]'s state with [src]'s without allocating.  Registers
    and flags are copied outright (48 words); memory goes through
    {!Memory.restore_from}, so repeatedly restoring the same pristine
    [src] into a scratch [dst] costs only the bytes the intervening runs
    wrote. *)

val get_gp : t -> Reg.gp -> int64
val set_gp : t -> Reg.gp -> int64 -> unit

val get_gp32 : t -> Reg.gp -> int64
(** Low 32 bits, zero-extended. *)

val set_gp32 : t -> Reg.gp -> int64 -> unit
(** Writes the low 32 bits and zeroes the upper 32 (x86-64 rule). *)

val get_xmm : t -> Reg.xmm -> int64 * int64
val set_xmm : t -> Reg.xmm -> int64 * int64 -> unit

val get_xmm_lo : t -> Reg.xmm -> int64
val set_xmm_lo : t -> Reg.xmm -> int64 -> unit
(** Writes the low quad, preserving the high quad. *)

val get_f64 : t -> Reg.xmm -> float
(** Low quad as a double. *)

val set_f64 : t -> Reg.xmm -> float -> unit

val get_f32 : t -> Reg.xmm -> float
(** Low dword as a single (widened to an OCaml float). *)

val set_f32 : t -> Reg.xmm -> float -> unit
(** Rounds to single, writes the low dword, preserves the rest. *)

val get_f32_hi : t -> Reg.xmm -> float
(** Dword 1 (bits 32–63) as a single. *)

val default_rsp : t -> int64
