(** Native execution engine: candidates JIT-encoded with {!X86.Encoder}
    and run as real machine code inside a guarded worker child process.

    A {!batch} forks one long-lived worker and maps a shared-memory
    region between parent and child.  {!compile} wraps each proposal's
    encoding in a trampoline — load the lane's registers and flags from
    a fixed state page, run the candidate body with a software bounds /
    alignment guard before every memory access, spill everything back —
    and {!exec} ships the bytes plus all lanes through the worker in a
    single request.  The child executes from a read-execute view of the
    shared pages (per-process W^X) with SIGSEGV/SIGBUS/SIGFPE/SIGILL
    handlers, and the parent enforces a deadline and transparently
    respawns a crashed worker.

    Bit-identity: {!compile} returns [None] — and the caller falls back
    to {!Batched} — for any program containing an instruction whose
    hardware behaviour is not bit-identical to {!Semantics.step} (or
    that {!X86.Encoder} cannot emit).  For the accepted subset, guard
    faults reproduce the interpreter's fault kind, address and position
    exactly, so finished lanes and faulting lanes alike are
    bit-identical to {!Exec.run}. *)

val available : unit -> bool
(** Whether this process can create workers at all: mmap-exec of shared
    anonymous memory is permitted and the fixed low state-page address
    is free.  Cached after the first call. *)

val native_instr : Instr.t -> bool
(** Whether the instruction's hardware semantics are bit-identical to
    the interpreter's (and encodable).  Programs with any non-native
    instruction must run on a fallback engine. *)

type batch
(** A worker process plus N baked test-case lanes.  Create once per
    (pristine machine × test set); reuse across proposals. *)

type t
(** A program encoded against a batch. *)

val create_batch :
  ?want_mem:bool -> Machine.t -> Testcase.t array -> batch option
(** [create_batch pristine tests] bakes [Testcase.apply tests.(l)] over
    a copy of [pristine] into lane [l], forks the worker, and ships the
    lane images.  [want_mem] (default false) makes every {!exec} copy
    each lane's final arena back, for callers that read memory state.
    [None] when native execution is unavailable or the arena's
    [base + size] exceeds the trampoline's 2 GiB addressing limit.
    Raises [Invalid_argument] on an empty test array. *)

val lane_count : batch -> int

val reset : batch -> unit
(** Restore lanes touched by {!apply_testcase} to their baked images. *)

val apply_testcase : batch -> lane:int -> Testcase.t -> unit
(** Overlay a test case onto one lane's current state, as
    {!Batched.apply_testcase}. *)

val compile : batch -> Program.t -> t option
(** Encode the trampoline for [p], or [None] if any active instruction
    fails {!native_instr}.  O(program length). *)

val length : t -> int
(** Number of active (encoded) instructions. *)

val code : t -> string
(** The raw trampoline bytes, for inspection ([stoke encode]). *)

val exec : t -> bool
(** Run every lane through the worker.  Returns [true] when the worker
    crashed or hung (it has been respawned; every lane of this run
    reports a crash fault), [false] on a normal run — faulting lanes
    report per-lane via {!fault}. *)

val fault : batch -> lane:int -> Semantics.fault option

val result : batch -> lane:int -> Exec.result
(** The lane's outcome/cycles/executed triple, bit-identical to
    {!Exec.run} on that lane's inputs. *)

val read_outputs : batch -> lane:int -> Spec.t -> Spec.value array

val lane_machine : batch -> lane:int -> Machine.t
(** A machine holding one lane's post-run registers, flags and (when the
    batch was created with [~want_mem:true]) memory.  For differential
    tests; invalidated by the next [exec]/[reset].  Raises if the batch
    lacks [want_mem]. *)

val run_one : batch -> t -> Machine.t -> Exec.result option
(** One-lane convenience for the kernel runner: load lane 0 from [m]
    (registers, flags and full memory image), run, and write the
    results — including memory — back into [m].  [None] when the worker
    crashed or the run hit a hardware fault the guards did not predict —
    divergent cases the caller must re-run on a fallback engine ([m] is
    untouched).  The batch must have been created with
    [~want_mem:true]. *)

val respawns : batch -> int
(** Worker respawns since {!create_batch} (crashes and timeouts). *)
