(** Sandboxed flat memory arena.

    Candidate rewrites dereference arbitrary addresses, so every access is
    bounds-checked against a single arena of bytes starting at [base]; any
    access outside it faults, exactly like STOKE's sandboxed test-case
    evaluation.  Alignment-checked accesses (movaps) additionally fault on
    misaligned addresses. *)

type t

type fault =
  | Out_of_bounds of int64  (** the offending address *)
  | Misaligned of int64

val create : ?base:int64 -> int -> t
(** [create n] makes an arena of [n] zero bytes.  [base] defaults to
    0x100000. *)

val base : t -> int64
val size : t -> int

val copy : t -> t
val blit_from : src:t -> dst:t -> unit
(** Copy contents (sizes must match). *)

val read : t -> int64 -> int -> (int64, fault) result
(** [read m addr n] reads [n] bytes ([1..8]) little-endian, zero-extended. *)

val write : t -> int64 -> int -> int64 -> (unit, fault) result
(** [write m addr n v] stores the low [n] bytes of [v] little-endian. *)

val read128 : ?aligned:bool -> t -> int64 -> (int64 * int64, fault) result
(** Low and high quadwords.  With [aligned:true], faults unless the address
    is 16-byte aligned. *)

val write128 : ?aligned:bool -> t -> int64 -> int64 * int64 -> (unit, fault) result

val set_bytes : t -> int64 -> string -> unit
(** Initialize arena contents at an absolute address (for test cases);
    raises [Invalid_argument] when out of range. *)

val to_bytes : t -> Bytes.t
(** The raw contents (not a copy — use {!copy} first if needed). *)

val equal : t -> t -> bool

val fault_to_string : fault -> string
