(** Sandboxed flat memory arena.

    Candidate rewrites dereference arbitrary addresses, so every access is
    bounds-checked against a single arena of bytes starting at [base]; any
    access outside it faults, exactly like STOKE's sandboxed test-case
    evaluation.  Alignment-checked accesses (movaps) additionally fault on
    misaligned addresses.

    The arena tracks a dirty range (high-water marks widened by every
    write) so {!restore_from} can undo a run in O(bytes written) instead
    of re-copying the whole image; 4- and 8-byte accesses use single
    little-endian loads/stores rather than byte loops. *)

type t

type fault =
  | Out_of_bounds of int64  (** the offending address *)
  | Misaligned of int64

exception Fault_exn of fault
(** Raised by the [_exn] access variants; carries the same fault the
    result-returning variants report.  Local to the execution engines —
    it never escapes {!Exec.run} or {!Compiled.exec}. *)

val create : ?base:int64 -> int -> t
(** [create n] makes an arena of [n] zero bytes.  [base] defaults to
    0x100000. *)

val base : t -> int64
val size : t -> int

val copy : t -> t
(** A fresh arena with the same contents; the copy starts clean (empty
    dirty range, no remembered restore source). *)

val blit_from : src:t -> dst:t -> unit
(** Copy the full contents (sizes must match).  Afterwards [dst] is clean
    and remembers [src] as its restore source. *)

val restore_from : src:t -> dst:t -> unit
(** Make [dst]'s contents equal [src]'s.  When [dst] was last fully
    copied from this same [src] (physical identity) and [src] has not
    been written since, only [dst]'s dirty range is re-copied — O(bytes
    the intervening runs wrote).  Any other pairing falls back to a full
    {!blit_from}.  Invariant: all writes to an arena go through {!write},
    {!write128}, their [_exn] variants, or {!set_bytes}; mutating
    {!unsafe_bytes} directly would silently break the fast path — enable
    {!set_integrity_checks} in tests to catch such bypasses. *)

val is_clean : t -> bool
(** No writes since creation / the last restore (dirty range empty). *)

val read : t -> int64 -> int -> (int64, fault) result
(** [read m addr n] reads [n] bytes ([1..8]) little-endian, zero-extended. *)

val write : t -> int64 -> int -> int64 -> (unit, fault) result
(** [write m addr n v] stores the low [n] bytes of [v] little-endian. *)

val read_exn : t -> int64 -> int -> int64
(** As {!read} but raising {!Fault_exn}: no [result] allocation on the
    compiled engine's hot path.  Width must be 1..8 (unchecked). *)

val write_exn : t -> int64 -> int -> int64 -> unit

val read128 : ?aligned:bool -> t -> int64 -> (int64 * int64, fault) result
(** Low and high quadwords.  With [aligned:true], faults unless the address
    is 16-byte aligned. *)

val write128 : ?aligned:bool -> t -> int64 -> int64 * int64 -> (unit, fault) result

val read128_exn : ?aligned:bool -> t -> int64 -> int64 * int64

val write128_exn : ?aligned:bool -> t -> int64 -> int64 * int64 -> unit

val set_bytes : t -> int64 -> string -> unit
(** Initialize arena contents at an absolute address (for test cases);
    raises [Invalid_argument] when out of range. *)

val unsafe_bytes : t -> Bytes.t
(** The raw contents (not a copy — use {!copy} first if needed).  Strictly
    read-only: a direct mutation bypasses dirty tracking, so a later
    {!restore_from} fast path would silently leave the stale byte in
    place.  The name is the warning; {!set_integrity_checks} turns the
    invariant into a runtime assertion. *)

val set_integrity_checks : bool -> unit
(** When enabled (default off — it is O(arena size) per restore), every
    {!restore_from} fast path first verifies that all bytes outside the
    destination's dirty range still equal the source's, failing with
    [Failure] on a mismatch.  For debug builds and tests. *)

val equal : t -> t -> bool
(** Content equality (base and bytes; dirty bookkeeping is ignored). *)

val fault_to_string : fault -> string
