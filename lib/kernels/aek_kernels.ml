(* Arena base is 0x100000 (Memory.create's default); rsp starts at
   base + 2048.  The two memory-resident vectors live well away from the
   stack spill slots. *)
let v1_addr = 0x100100L
let v2_addr = 0x100140L

let parse = Parser.parse_program_exn

let x0 = Reg.Xmm0
let x1 = Reg.Xmm1
let x2 = Reg.Xmm2

let vr = { Sandbox.Spec.lo = -4.0; hi = 4.0 }
let unit_r = { Sandbox.Spec.lo = 0.0; hi = 1.0 }

(* First vector argument in registers, second behind rdi. *)
let reg_vector_inputs =
  [
    Sandbox.Spec.Fin_xmm_f32 (x0, vr);
    Sandbox.Spec.Fin_xmm_f32_hi (x0, vr);
    Sandbox.Spec.Fin_xmm_f32 (x1, vr);
  ]

let mem_vector_inputs addr range =
  [
    Sandbox.Spec.Fin_mem_f32 (addr, range);
    Sandbox.Spec.Fin_mem_f32 (Int64.add addr 4L, range);
    Sandbox.Spec.Fin_mem_f32 (Int64.add addr 8L, range);
  ]

let vector_outputs =
  [
    Sandbox.Spec.Out_xmm_f32 x0;
    Sandbox.Spec.Out_xmm_f32_hi x0;
    Sandbox.Spec.Out_xmm_f32 x1;
  ]

(* ----- dot product (Figure 6) ----- *)

let dot_target =
  parse
    {|
      movq xmm0, -16(rsp)
      mulss 8(rdi), xmm1
      movss (rdi), xmm0
      movss 4(rdi), xmm2
      mulss -16(rsp), xmm0
      mulss -12(rsp), xmm2
      addss xmm2, xmm0
      addss xmm1, xmm0
    |}

let dot_rewrite =
  parse
    {|
      vpshuflw $254, xmm0, xmm2
      mulss 8(rdi), xmm1
      mulss (rdi), xmm0
      mulss 4(rdi), xmm2
      vaddss xmm0, xmm2, xmm5
      vaddss xmm5, xmm1, xmm0
    |}

let dot_spec =
  Sandbox.Spec.make ~name:"dot" ~program:dot_target
    ~float_inputs:(reg_vector_inputs @ mem_vector_inputs v1_addr vr)
    ~fixed_inputs:[ Sandbox.Spec.Fix_gp (Reg.Rdi, v1_addr) ]
    ~outputs:[ Sandbox.Spec.Out_xmm_f32 x0 ]
    ()

(* ----- scale k·v̄ ----- *)

let scale_target =
  parse
    {|
      movq xmm0, -16(rsp)
      movss -16(rsp), xmm3
      movss -12(rsp), xmm4
      mulss xmm2, xmm3
      mulss xmm2, xmm4
      mulss xmm2, xmm1
      movss xmm4, -12(rsp)
      movss xmm3, -16(rsp)
      movq -16(rsp), xmm0
    |}

let scale_rewrite =
  parse
    {|
      vpshuflw $254, xmm0, xmm3
      mulss xmm2, xmm3
      mulss xmm2, xmm0
      mulss xmm2, xmm1
      punpckldq xmm3, xmm0
    |}

let scale_spec =
  Sandbox.Spec.make ~name:"scale" ~program:scale_target
    ~float_inputs:(reg_vector_inputs @ [ Sandbox.Spec.Fin_xmm_f32 (x2, vr) ])
    ~outputs:vector_outputs ()

(* ----- add v̄1 + v̄2 ----- *)

let add_target =
  parse
    {|
      movq xmm0, -16(rsp)
      movss (rdi), xmm2
      movss 4(rdi), xmm3
      addss -16(rsp), xmm2
      addss -12(rsp), xmm3
      addss 8(rdi), xmm1
      movss xmm3, -12(rsp)
      movss xmm2, -16(rsp)
      movq -16(rsp), xmm0
    |}

let add_rewrite =
  parse
    {|
      lddqu (rdi), xmm2
      addps xmm2, xmm0
      addss 8(rdi), xmm1
    |}

let add_spec =
  Sandbox.Spec.make ~name:"add" ~program:add_target
    ~float_inputs:(reg_vector_inputs @ mem_vector_inputs v1_addr vr)
    ~fixed_inputs:[ Sandbox.Spec.Fix_gp (Reg.Rdi, v1_addr) ]
    ~outputs:vector_outputs ()

(* ----- Δ: random camera perturbation (Figure 7) -----

   0.5f = 0x3f000000, 99.0f = 0x42c60000.  v̄1 is a scaled camera basis
   vector; v̄2's x and y are negligibly small program-wide constants. *)

let delta_target =
  parse
    {|
      movl $0x3f000000, eax
      movd eax, xmm2
      subss xmm2, xmm0
      movss 8(rdi), xmm3
      subss xmm2, xmm1
      movss 4(rdi), xmm5
      movss 8(rsi), xmm2
      movss 4(rsi), xmm6
      mulss xmm0, xmm3
      movl $0x42c60000, eax
      movd eax, xmm4
      mulss xmm1, xmm2
      mulss xmm0, xmm5
      mulss xmm1, xmm6
      mulss (rdi), xmm0
      mulss (rsi), xmm1
      mulss xmm4, xmm5
      mulss xmm4, xmm6
      mulss xmm4, xmm3
      mulss xmm4, xmm2
      mulss xmm4, xmm0
      mulss xmm4, xmm1
      addss xmm6, xmm5
      addss xmm1, xmm0
      movss xmm5, -20(rsp)
      movaps xmm3, xmm1
      addss xmm2, xmm1
      movss xmm0, -24(rsp)
      movq -24(rsp), xmm0
    |}

let delta_rewrite =
  parse
    {|
      movl $0x3f000000, eax
      movd eax, xmm2
      subps xmm2, xmm0
      movl $0x42c60000, eax
      subps xmm2, xmm1
      movd eax, xmm4
      mulss xmm4, xmm1
      lddqu 4(rdi), xmm5
      mulss xmm0, xmm5
      mulss (rdi), xmm0
      mulss xmm4, xmm0
      mulps xmm4, xmm5
      punpckldq xmm5, xmm0
      mulss 8(rsi), xmm1
    |}

let delta_prime =
  parse
    {|
      xorps xmm0, xmm0
      xorps xmm1, xmm1
    |}

(* In aek the two perturbation vectors are the scaled camera basis vectors
   a = normalize((0,0,1) × g)·.002 and b = normalize(g × a)·.002: a.z and
   b.x, b.y are {e exactly} zero by construction, so the corresponding
   product terms carry only float noise — that is what licenses the
   term-dropping rewrite (§6.3). *)
let camera_r = { Sandbox.Spec.lo = -0.02; hi = 0.02 }

(* The components that are identically zero in every run of aek: a
   degenerate [0,0] range pins them, exactly as STOKE's test cases (drawn
   from real executions) and the validator's clipped proposals do. *)
let zero_r = { Sandbox.Spec.lo = 0.; hi = 0. }

let delta_spec =
  Sandbox.Spec.make ~name:"delta" ~program:delta_target
    ~float_inputs:
      [
        Sandbox.Spec.Fin_xmm_f32 (x0, unit_r);
        Sandbox.Spec.Fin_xmm_f32 (x1, unit_r);
        Sandbox.Spec.Fin_mem_f32 (v1_addr, camera_r);
        Sandbox.Spec.Fin_mem_f32 (Int64.add v1_addr 4L, camera_r);
        Sandbox.Spec.Fin_mem_f32 (Int64.add v1_addr 8L, zero_r);
        Sandbox.Spec.Fin_mem_f32 (v2_addr, zero_r);
        Sandbox.Spec.Fin_mem_f32 (Int64.add v2_addr 4L, zero_r);
        Sandbox.Spec.Fin_mem_f32 (Int64.add v2_addr 8L, camera_r);
      ]
    ~fixed_inputs:
      [
        Sandbox.Spec.Fix_gp (Reg.Rdi, v1_addr);
        Sandbox.Spec.Fix_gp (Reg.Rsi, v2_addr);
      ]
    ~outputs:vector_outputs ()

let all_specs =
  [
    ("scale", scale_spec);
    ("dot", dot_spec);
    ("add", add_spec);
    ("delta", delta_spec);
  ]
