(** The aek ray tracer's vector kernels (§6.3, Figures 6–8), single
    precision.

    Vectors are triplets of floats.  Following gcc's program-wide layout
    decision that the paper calls out, a register-resident vector is split
    across two xmm registers — x in [xmm0[31:0]], y in [xmm0[63:32]], z in
    [xmm1[31:0]] — and memory-resident vectors are three consecutive floats
    behind [rdi] (and [rsi] for the second argument of Δ).

    Targets are transcriptions of the paper's gcc -O3 listings; the
    [*_rewrite] programs are the STOKE rewrites shown in the paper, used by
    the test suite to confirm our search and verification infrastructure
    reproduces their properties (bit-wise equivalence for dot, small ULP
    error for Δ). *)

val v1_addr : int64
(** Where the first memory vector lives in the arena ([rdi]'s value). *)

val v2_addr : int64
(** [rsi]'s value. *)

val dot_spec : Sandbox.Spec.t
(** ⟨v̄1, v̄2⟩ — Figure 6's gcc code. *)

val dot_rewrite : Program.t
(** Figure 6's STOKE code: bit-wise equivalent, 2 cycles faster. *)

val scale_spec : Sandbox.Spec.t
(** k·v̄ with k in [xmm2[31:0]]. *)

val scale_rewrite : Program.t

val add_spec : Sandbox.Spec.t
(** v̄1 + v̄2. *)

val add_rewrite : Program.t

val delta_spec : Sandbox.Spec.t
(** Δ(v̄1, v̄2, r1, r2) — Figure 7's random camera-perturbation kernel.
    r1, r2 ∈ [0, 1]; v̄2's x and y components are negligibly small
    program-wide constants, which is what licenses the precision-dropping
    rewrite. *)

val delta_rewrite : Program.t
(** Figure 7's STOKE code: drops the negligible v̄2.x/v̄2.y terms and
    reassociates the z term (±5 ULPs). *)

val delta_prime : Program.t
(** The over-aggressive Δ′ of Figure 8/9(d): eliminates the perturbation
    altogether, killing depth-of-field blur. *)

val all_specs : (string * Sandbox.Spec.t) list
