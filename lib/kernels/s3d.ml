open Builder

let rec factorial n = if n <= 1 then 1. else float_of_int n *. factorial (n - 1)

(* e^r = Σ_{k=0}^{7} r^k/k!, highest degree first. *)
let exp_coeffs = List.init 8 (fun i -> 1. /. factorial (7 - i))

let x0 = Reg.Xmm0
let x1 = Reg.Xmm1
let x2 = Reg.Xmm2
let x3 = Reg.Xmm3
let x4 = Reg.Xmm4
let rax = Reg.Rax
let rcx = Reg.Rcx

(* Cody-Waite split of ln 2. *)
let ln2_hi = Int64.float_of_bits 0x3fe62e42fee00000L
let ln2_lo = Float.log 2. -. ln2_hi
let log2_e = 1. /. Float.log 2.

let exp_program =
  program
    [
      load_f64 ~via:rax ~into:x1 log2_e;
      [
        binop Opcode.Mulsd (xmm x0) (xmm x1);  (* x/ln2 *)
        binop (Opcode.Cvtsd2si Reg.Q) (xmm x1) (gp rcx);  (* k = round *)
        binop (Opcode.Cvtsi2sd Reg.Q) (gp rcx) (xmm x1);  (* (double)k *)
      ];
      load_f64 ~via:rax ~into:x2 ln2_hi;
      [
        binop Opcode.Mulsd (xmm x1) (xmm x2);  (* k·ln2_hi *)
        binop Opcode.Subsd (xmm x2) (xmm x0);  (* r = x − k·ln2_hi *)
      ];
      load_f64 ~via:rax ~into:x2 ln2_lo;
      [
        binop Opcode.Mulsd (xmm x1) (xmm x2);  (* k·ln2_lo *)
        binop Opcode.Subsd (xmm x2) (xmm x0);  (* r −= k·ln2_lo *)
      ];
      horner_f64 ~x:x0 ~acc:x3 ~tmp:x4 ~via:rax exp_coeffs;
      [
        (* 2^k: biased exponent shifted into the quad's exponent field. *)
        binop (Opcode.Add Reg.Q) (imm 1023) (gp rcx);
        binop (Opcode.Shl Reg.Q) (imm 52) (gp rcx);
        binop Opcode.Movq (gp rcx) (xmm x1);
        binop Opcode.Mulsd (xmm x1) (xmm x3);
        binop Opcode.Movsd (xmm x3) (xmm x0);
      ];
    ]

let exp_spec =
  Sandbox.Spec.make ~name:"exp" ~program:exp_program
    ~float_inputs:[ Sandbox.Spec.Fin_xmm_f64 (x0, { Sandbox.Spec.lo = -3.; hi = 0. }) ]
    ~outputs:[ Sandbox.Spec.Out_xmm_f64 x0 ]
    ()

let reference = Float.exp
