(** Hand-written double-precision kernels in the style of Intel's libimf
    (§6.1): Horner-evaluated polynomial approximations with the bit-level
    constant loading and (for [log]) exponent extraction idioms that make
    such kernels opaque to SMT solvers and abstract interpretation.

    Each kernel takes its argument in the low quad of [xmm0] and returns in
    [xmm0].  The specs carry the paper's user-specified valid input ranges,
    so optimization and validation are both specialized to them. *)

val sin_spec : Sandbox.Spec.t
(** Bounded periodic function; inputs in [-π, π]. *)

val sin_assoc_rewrite : Program.t
(** A reassociated rewrite of {!sin_spec}'s program — the final multiply
    distributed through the constant Horner term — equal as a real-number
    function but not bitwise: the showcase input for the Taylor tier,
    which proves the real parts cancel and bounds the residual round-off
    to a handful of ULPs where plain interval subtraction reports
    astronomically loose bounds. *)

val cos_spec : Sandbox.Spec.t
(** Inputs in [-π, π]. *)

val log_spec : Sandbox.Spec.t
(** Continuous unbounded function; inputs in [0.01, 100].  Extracts the
    exponent field with [shr]/[and]/[or] — fixed-point computation feeding
    floating-point outputs. *)

val tan_spec : Sandbox.Spec.t
(** Discontinuous unbounded function; inputs in [-1.55, 1.55]. *)

val exp_spec : Sandbox.Spec.t
(** Full-precision exponential for positive inputs below 100 — the
    scenario of the paper's introduction ("correct only to 48-bits of
    precision and defined only for positive inputs less than 100").
    Thirteen Horner terms after Cody-Waite range reduction; the search
    specializes it to any requested precision (48 bits ≈ η = 32). *)

val all : (string * Sandbox.Spec.t) list
(** The three kernels featured in Figure 4 plus cos and exp. *)

val reference : string -> float -> float
(** Ground-truth mathematical function by kernel name (for sanity tests;
    the experiments always compare rewrites against the kernel itself). *)
