open Builder

let rec factorial n = if n <= 1 then 1. else float_of_int n *. factorial (n - 1)

(* sin x = x · P(x²),  P(w) = Σ_{k=0}^{9} (−1)^k w^k / (2k+1)! ;
   coefficients listed highest-degree first for Horner. *)
let sin_coeffs =
  List.init 10 (fun i ->
      let k = 9 - i in
      (if k mod 2 = 0 then 1. else -1.) /. factorial ((2 * k) + 1))

(* cos x = Q(x²),  Q(w) = Σ_{k=0}^{10} (−1)^k w^k / (2k)! *)
let cos_coeffs =
  List.init 11 (fun i ->
      let k = 10 - i in
      (if k mod 2 = 0 then 1. else -1.) /. factorial (2 * k))

(* ln m = 2·s·R(s²) with s = (m−1)/(m+1),  R(w) = Σ_{k=0}^{7} w^k/(2k+1) *)
let atanh_coeffs =
  List.init 8 (fun i ->
      let k = 7 - i in
      1. /. float_of_int ((2 * k) + 1))

let x0 = Reg.Xmm0
let x1 = Reg.Xmm1
let x2 = Reg.Xmm2
let x3 = Reg.Xmm3
let x4 = Reg.Xmm4
let x5 = Reg.Xmm5
let rax = Reg.Rax
let rcx = Reg.Rcx
let rdx = Reg.Rdx

let square_into ~x ~dst =
  [ binop Opcode.Movsd (xmm x) (xmm dst); binop Opcode.Mulsd (xmm x) (xmm dst) ]

let sin_program =
  program
    [
      square_into ~x:x0 ~dst:x1;
      horner_f64 ~x:x1 ~acc:x2 ~tmp:x3 ~via:rax sin_coeffs;
      [ binop Opcode.Mulsd (xmm x2) (xmm x0) ];
    ]

(* The same real function as [sin_program] with the final multiply
   distributed through the low-order Horner term:
   x·(Ptail(w)·w + 1) = (Ptail(w)·w)·x + x.  Deliberately not
   bitwise-equivalent — the operations round in a different order — so it
   exercises the Taylor tier, which proves the two sides real-equal by
   polynomial cancellation and bounds the difference by round-off alone. *)
let sin_assoc_rewrite =
  let tail =
    match List.rev sin_coeffs with
    | 1.0 :: rest_rev -> List.rev rest_rev (* c9 … c1, highest first *)
    | _ -> invalid_arg "sin_coeffs must end with the constant term 1"
  in
  program
    [
      square_into ~x:x0 ~dst:x1;
      horner_f64 ~x:x1 ~acc:x2 ~tmp:x3 ~via:rax tail;
      [
        binop Opcode.Mulsd (xmm x1) (xmm x2);  (* Ptail·w *)
        binop Opcode.Mulsd (xmm x0) (xmm x2);  (* (Ptail·w)·x *)
        binop Opcode.Addsd (xmm x0) (xmm x2);  (* + x *)
        binop Opcode.Movsd (xmm x2) (xmm x0);
      ];
    ]

let cos_program =
  program
    [
      square_into ~x:x0 ~dst:x1;
      horner_f64 ~x:x1 ~acc:x2 ~tmp:x3 ~via:rax cos_coeffs;
      [ binop Opcode.Movsd (xmm x2) (xmm x0) ];
    ]

(* log: extract the exponent with integer bit manipulation, normalize the
   mantissa into [1,2), and combine k·ln2 with the atanh-series of the
   mantissa. *)
let log_program =
  program
    [
      [
        binop Opcode.Movq (xmm x0) (gp rax);
        binop (Opcode.Mov Reg.Q) (gp rax) (gp rcx);
        binop (Opcode.Shr Reg.Q) (imm 52) (gp rax);
        binop (Opcode.Sub Reg.Q) (imm 1023) (gp rax);
        binop (Opcode.Cvtsi2sd Reg.Q) (gp rax) (xmm x1);
        Instr.make Opcode.Movabs [ Operand.Imm 0x000f_ffff_ffff_ffffL; gp rdx ];
        binop (Opcode.And Reg.Q) (gp rdx) (gp rcx);
        Instr.make Opcode.Movabs [ Operand.Imm 0x3ff0_0000_0000_0000L; gp rdx ];
        binop (Opcode.Or Reg.Q) (gp rdx) (gp rcx);
        binop Opcode.Movq (gp rcx) (xmm x2);
      ];
      load_f64 ~via:rax ~into:x3 1.0;
      [
        binop Opcode.Movsd (xmm x2) (xmm x4);
        binop Opcode.Subsd (xmm x3) (xmm x4);  (* m − 1 *)
        binop Opcode.Addsd (xmm x3) (xmm x2);  (* m + 1 *)
        binop Opcode.Divsd (xmm x2) (xmm x4);  (* s *)
        binop Opcode.Movsd (xmm x4) (xmm x5);
        binop Opcode.Mulsd (xmm x4) (xmm x5);  (* s² *)
      ];
      horner_f64 ~x:x5 ~acc:x2 ~tmp:x3 ~via:rax atanh_coeffs;
      [
        binop Opcode.Mulsd (xmm x4) (xmm x2);  (* s·R *)
        binop Opcode.Addsd (xmm x2) (xmm x2);  (* 2·s·R = ln m *)
      ];
      load_f64 ~via:rax ~into:x3 (Float.log 2.);
      [
        binop Opcode.Mulsd (xmm x3) (xmm x1);  (* k·ln2 *)
        binop Opcode.Addsd (xmm x1) (xmm x2);
        binop Opcode.Movsd (xmm x2) (xmm x0);
      ];
    ]

(* tan = (x·P(x²)) / Q(x²) with longer sin/cos series (the paper's tan is
   its longest kernel at ~107 LOC; ours is ~85). *)
let tan_sin_coeffs =
  List.init 10 (fun i ->
      let k = 9 - i in
      (if k mod 2 = 0 then 1. else -1.) /. factorial ((2 * k) + 1))

let tan_cos_coeffs =
  List.init 11 (fun i ->
      let k = 10 - i in
      (if k mod 2 = 0 then 1. else -1.) /. factorial (2 * k))

let tan_program =
  program
    [
      square_into ~x:x0 ~dst:x1;
      horner_f64 ~x:x1 ~acc:x2 ~tmp:x3 ~via:rax tan_sin_coeffs;
      [ binop Opcode.Mulsd (xmm x0) (xmm x2) ];  (* sin ≈ x·P *)
      horner_f64 ~x:x1 ~acc:x4 ~tmp:x3 ~via:rax tan_cos_coeffs;
      [
        binop Opcode.Divsd (xmm x4) (xmm x2);  (* sin/cos *)
        binop Opcode.Movsd (xmm x2) (xmm x0);
      ];
    ]

(* Full-precision exponential (the intro's custom-exp scenario): Cody-Waite
   range reduction followed by a 13-term Horner series, 2^k rebuilt through
   the exponent field.  Same structure as the S3D kernel but carried to
   double precision (the S3D variant stops at 8 terms). *)
let exp_coeffs =
  let rec factorial n = if n <= 1 then 1. else float_of_int n *. factorial (n - 1) in
  List.init 13 (fun i -> 1. /. factorial (12 - i))

let exp_ln2_hi = Int64.float_of_bits 0x3fe62e42fee00000L
let exp_ln2_lo = Float.log 2. -. exp_ln2_hi

let exp_program =
  program
    [
      load_f64 ~via:rax ~into:x1 (1. /. Float.log 2.);
      [
        binop Opcode.Mulsd (xmm x0) (xmm x1);
        binop (Opcode.Cvtsd2si Reg.Q) (xmm x1) (gp rcx);
        binop (Opcode.Cvtsi2sd Reg.Q) (gp rcx) (xmm x1);
      ];
      load_f64 ~via:rax ~into:x2 exp_ln2_hi;
      [
        binop Opcode.Mulsd (xmm x1) (xmm x2);
        binop Opcode.Subsd (xmm x2) (xmm x0);
      ];
      load_f64 ~via:rax ~into:x2 exp_ln2_lo;
      [
        binop Opcode.Mulsd (xmm x1) (xmm x2);
        binop Opcode.Subsd (xmm x2) (xmm x0);
      ];
      horner_f64 ~x:x0 ~acc:x3 ~tmp:x4 ~via:rax exp_coeffs;
      [
        binop (Opcode.Add Reg.Q) (imm 1023) (gp rcx);
        binop (Opcode.Shl Reg.Q) (imm 52) (gp rcx);
        binop Opcode.Movq (gp rcx) (xmm x1);
        binop Opcode.Mulsd (xmm x1) (xmm x3);
        binop Opcode.Movsd (xmm x3) (xmm x0);
      ];
    ]

let pi = Float.pi

let spec_of name prog lo hi =
  Sandbox.Spec.make ~name ~program:prog
    ~float_inputs:[ Sandbox.Spec.Fin_xmm_f64 (x0, { Sandbox.Spec.lo; hi }) ]
    ~outputs:[ Sandbox.Spec.Out_xmm_f64 x0 ]
    ()

let sin_spec = spec_of "sin" sin_program (-.pi) pi
let cos_spec = spec_of "cos" cos_program (-.pi) pi
let log_spec = spec_of "log" log_program 0.01 100.
let tan_spec = spec_of "tan" tan_program (-1.55) 1.55
let exp_spec = spec_of "exp" exp_program 0.001 100.

let all =
  [ ("sin", sin_spec); ("log", log_spec); ("tan", tan_spec); ("cos", cos_spec);
    ("exp", exp_spec) ]

let reference name =
  match name with
  | "sin" -> Float.sin
  | "cos" -> Float.cos
  | "log" -> Float.log
  | "tan" -> Float.tan
  | "exp" -> Float.exp
  | _ -> invalid_arg ("Libimf.reference: unknown kernel " ^ name)
