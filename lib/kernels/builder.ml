let xmm r = Operand.Xmm r
let gp r = Operand.Gp r
let imm i = Operand.Imm (Int64.of_int i)

let load_f64 ~via ~into x =
  [
    Instr.make Opcode.Movabs [ Operand.Imm (Int64.bits_of_float x); gp via ];
    Instr.make Opcode.Movq [ gp via; xmm into ];
  ]

let binop op src dst = Instr.make op [ src; dst ]

let horner_f64 ~x ~acc ~tmp ~via coeffs =
  match coeffs with
  | [] -> invalid_arg "Builder.horner_f64: no coefficients"
  | c0 :: rest ->
    let init = load_f64 ~via ~into:acc c0 in
    let steps =
      List.concat_map
        (fun c ->
          List.concat
            [
              [ binop Opcode.Mulsd (xmm x) (xmm acc) ];
              load_f64 ~via ~into:tmp c;
              [ binop Opcode.Addsd (xmm tmp) (xmm acc) ];
            ])
        rest
    in
    init @ steps

let program groups = Program.of_instrs (List.concat groups)
