(** The S3D diffusion task's hand-coded [exp] kernel (§6.2): range-reduced
    Taylor-series approximation that deliberately omits error handling for
    irregular values (infinity, NaN), exactly like the kernel the S3D
    developers ship.

    Structure: k = round(x/ln2) via [cvtsd2si] (fixed-point!), r = x − k·ln2
    in two Cody-Waite pieces, a 7-term Horner polynomial for e^r, and the
    2^k scale factor rebuilt by shifting the biased exponent into place with
    [add]/[shl]/[movq] — bit-manipulation that defeats the static
    techniques of §4. *)

val exp_program : Program.t

val exp_spec : Sandbox.Spec.t
(** Inputs in [-3, 0], the argument range of the diffusion task's
    Arrhenius-style exponentials (and of Figure 5(b)). *)

val reference : float -> float
(** [Float.exp]. *)
