(** Helpers for constructing kernel targets in the x86 IR.

    Kernels follow the libimf idiom of materializing double constants with
    [movabs]+[movq] pairs (two instructions per constant) rather than a
    memory constant pool, which keeps the kernels self-contained and gives
    the search useful 64-bit immediates in its operand pool. *)

val load_f64 : via:Reg.gp -> into:Reg.xmm -> float -> Instr.t list
(** [movabs $bits, via; movq via, into]. *)

val binop : Opcode.t -> Operand.t -> Operand.t -> Instr.t
(** AT&T argument order: [binop op src dst]. *)

val xmm : Reg.xmm -> Operand.t
val gp : Reg.gp -> Operand.t
val imm : int -> Operand.t

val horner_f64 :
  x:Reg.xmm -> acc:Reg.xmm -> tmp:Reg.xmm -> via:Reg.gp -> float list ->
  Instr.t list
(** Evaluate a polynomial by Horner's rule: coefficients are given from the
    {e highest} degree down; on entry [x] holds the point, on exit [acc]
    holds the value.  Uses [tmp] and [via] as scratch. *)

val program : Instr.t list list -> Program.t
(** Concatenate instruction groups into a program. *)
