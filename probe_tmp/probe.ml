let () =
  Printf.printf "Fp64.succ inf = %h\n" (Fpbits.Fp64.succ Float.infinity);
  Printf.printf "Fp32.succ inf = %h\n" (Fpbits.Fp32.succ Float.infinity);
  Printf.printf "Ulp.of_float nan = %Ld\n" (Fpbits.Ulp.of_float Float.nan);
  Printf.printf "compare (of_float nan) 5 = %d\n"
    (Fpbits.Ulp.compare (Fpbits.Ulp.of_float Float.nan) 5L);
  (* interval sub that overflows: hi endpoint inf pre-inflate *)
  let a = Verify.Interval.make 0. 1.7e308 in
  let b = Verify.Interval.make (-1.7e308) 0. in
  let d = Verify.Interval.sub a b in
  Printf.printf "sub hi = %h, lo = %h, is_top=%b\n" d.Verify.Interval.hi
    d.Verify.Interval.lo (Verify.Interval.is_top d);
  Printf.printf "mag = %h\n" (Verify.Interval.mag d);
  (* f32 overflow: mulss of big ranges *)
  let x = Verify.Interval.make 1e20 1e21 in
  let m = Verify.Interval.mul32 x x in
  Printf.printf "mul32 hi = %h lo = %h\n" m.Verify.Interval.hi m.Verify.Interval.lo
