(* The S3D diffusion leaf task: search for reduced-precision exp kernels
   at increasing eta, and find the most aggressive one the task tolerates
   end to end (the paper's §6.2 experiment, where eta = 1e7 bought a 2x
   kernel speedup and a 27% task speedup).

   Run with: dune exec examples/s3d_diffusion.exe *)

let () =
  let spec = Kernels.S3d.exp_spec in
  let cfg = { Apps.Diffusion.default_config with Apps.Diffusion.nx = 16; ny = 16 } in
  let baseline = Apps.Diffusion.run cfg in
  Printf.printf
    "diffusion task: %dx%d grid, %d species, %d exp calls per run\n"
    cfg.Apps.Diffusion.nx cfg.Apps.Diffusion.ny cfg.Apps.Diffusion.species
    baseline.Apps.Diffusion.exp_calls;
  Printf.printf "baseline: checksum %.9e, %d cycles (exp: %.0f%%)\n\n"
    baseline.Apps.Diffusion.checksum baseline.Apps.Diffusion.total_cycles
    (100.
    *. float_of_int baseline.Apps.Diffusion.exp_cycles
    /. float_of_int baseline.Apps.Diffusion.total_cycles);
  let config =
    { Search.Optimizer.default_config with Search.Optimizer.proposals = 60_000 }
  in
  let best = ref None in
  List.iter
    (fun exponent ->
      let eta = Ulp.of_float (Float.pow 10. (float_of_int exponent)) in
      let result = Stoke.optimize ~config ~eta spec in
      match result.Search.Optimizer.best_correct with
      | None -> Printf.printf "eta=1e%-2d: no rewrite found\n%!" exponent
      | Some rewrite ->
        let o = Apps.Diffusion.run ~exp_program:rewrite cfg in
        let task_speedup = Apps.Diffusion.speedup ~baseline o in
        let ok = Apps.Diffusion.tolerates ~baseline o in
        Printf.printf
          "eta=1e%-2d: exp %2d LOC (%.2fx), task %.2fx, checksum dev %.2e, tolerated %b\n%!"
          exponent (Program.length rewrite)
          (float_of_int (Latency.of_program spec.Sandbox.Spec.program)
          /. float_of_int (Stdlib.max 1 (Latency.of_program rewrite)))
          task_speedup
          (Float.abs
             ((o.Apps.Diffusion.checksum -. baseline.Apps.Diffusion.checksum)
             /. baseline.Apps.Diffusion.checksum))
          ok;
        if ok then best := Some (exponent, rewrite, task_speedup))
    [ 4; 8; 10; 12; 14 ];
  match !best with
  | None -> print_endline "\nno tolerated rewrite found"
  | Some (exponent, rewrite, speedup) ->
    Printf.printf
      "\nmost aggressive tolerated kernel: eta=1e%d, %.0f%% whole-task speedup\n"
      exponent
      ((speedup -. 1.) *. 100.);
    Printf.printf "its exp kernel:\n%s\n" (Program.to_string rewrite)
