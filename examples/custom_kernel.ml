(* Bring your own kernel: write a loop-free x86-64 kernel as text, wrap it
   in a Spec describing its live inputs and outputs, and run the whole
   STOKE-FP pipeline on it — search, static verification, validation.

   Run with: dune exec examples/custom_kernel.exe

   The kernel here computes the squared Euclidean norm x² + y² of two
   doubles the slow way (with a redundant spill through the stack, as a
   naive compiler might), and the search discovers the tight version. *)

let target =
  Parser.parse_program_exn
    {|
      movsd xmm0, -16(rsp)     # spill x
      mulsd xmm0, xmm0         # x*x
      movsd -16(rsp), xmm2     # reload x (dead weight)
      mulsd xmm1, xmm1         # y*y
      movsd xmm1, -24(rsp)     # spill y*y
      addsd -24(rsp), xmm0     # x*x + y*y through memory
    |}

let spec =
  Sandbox.Spec.make ~name:"norm2" ~program:target
    ~float_inputs:
      [
        Sandbox.Spec.Fin_xmm_f64 (Reg.Xmm0, { Sandbox.Spec.lo = -100.; hi = 100. });
        Sandbox.Spec.Fin_xmm_f64 (Reg.Xmm1, { Sandbox.Spec.lo = -100.; hi = 100. });
      ]
    ~outputs:[ Sandbox.Spec.Out_xmm_f64 Reg.Xmm0 ]
    ()

let () =
  Printf.printf "target (%d cycles):\n%s\n\n" (Latency.of_program target)
    (Program.to_string target);

  (* Bit-wise correctness requested: eta = 0. *)
  let config =
    {
      Search.Optimizer.default_config with
      Search.Optimizer.proposals = 80_000;
      restarts = 2;
    }
  in
  let result = Stoke.optimize ~config ~eta:0L spec in
  match result.Search.Optimizer.best_correct with
  | None -> print_endline "no rewrite found"
  | Some rewrite ->
    Printf.printf "rewrite (%d cycles, %.2fx):\n%s\n\n"
      (Latency.of_program rewrite)
      (float_of_int (Latency.of_program target)
      /. float_of_int (Latency.of_program rewrite))
      (Program.to_string rewrite);
    (* Static verification first (Eq. 5's slow check)... *)
    (match Stoke.verify ~eta:0L spec rewrite with
     | Verify.Verifier.Proved_bitwise ->
       print_endline "verification: proved bit-wise equivalent (UF symbolic terms)"
     | outcome ->
       Printf.printf "verification: %s\n" (Verify.Verifier.outcome_to_string outcome);
       (* ...falling back to MCMC validation where statics give up. *)
       let v = Stoke.validate ~eta:0L spec rewrite in
       Printf.printf "validation: max observed error %s ULPs (mixed: %b)\n"
         (Ulp.to_string v.Validate.Driver.max_err)
         v.Validate.Driver.mixed)
