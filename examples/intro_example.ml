(* The paper's introductory scenario (§1): "Consider the typical task of
   building a customized implementation of the exponential function, which
   must be correct only to 48-bits of precision and defined only for
   positive inputs less than 100.  An expert could certainly craft this
   kernel at the assembly level, however the process is tedious and error
   prone..."

   This example does it automatically: start from the full double-precision
   (53-bit) libimf-style exp, set eta = 2^5 = 32 ULPs (dropping 5 of the 53
   significand bits leaves 48 correct bits), restrict inputs to (0, 100),
   and let the search find the cheaper kernel.

   Run with: dune exec examples/intro_example.exe *)

let bits_of_eta eta =
  (* eta = 2^k ULPs ~ 53 - k correct significand bits *)
  53. -. (Float.log (Ulp.to_float eta +. 1.) /. Float.log 2.)

let () =
  let spec = Kernels.Libimf.exp_spec in
  let target = spec.Sandbox.Spec.program in
  let eta = 32L in
  Printf.printf
    "custom exp: inputs (0, 100), requested precision %.0f bits (eta = %s ULPs)\n"
    (bits_of_eta eta) (Ulp.to_string eta);
  Printf.printf "full-precision target: %d instructions, %d cycles\n\n"
    (Program.length target) (Latency.of_program target);
  let r =
    Stoke.optimize_refined
      ~config:
        {
          Search.Optimizer.default_config with
          Search.Optimizer.proposals = 120_000;
          restarts = 2;
        }
      ~validation:
        {
          Validate.Driver.default_config with
          Validate.Driver.max_proposals = 150_000;
          min_samples = 40_000;
          check_every = 20_000;
        }
      ~seed:5L ~eta spec
  in
  match r.Stoke.rewrite with
  | None ->
    Printf.printf
      "no validated rewrite after %d rounds (%d counterexamples) — try a larger budget\n"
      r.Stoke.rounds r.Stoke.counterexamples
  | Some p ->
    Printf.printf "48-bit exp: %d instructions, %d cycles (%.2fx)\n"
      (Program.length p) (Latency.of_program p)
      (float_of_int (Latency.of_program target)
      /. float_of_int (max 1 (Latency.of_program p)));
    (match r.Stoke.verdict with
     | Some v ->
       Printf.printf
         "validated: max observed error %s ULPs (~%.1f correct bits) after %d refinement round(s)\n"
         (Ulp.to_string v.Validate.Driver.max_err)
         (bits_of_eta v.Validate.Driver.max_err)
         r.Stoke.rounds
     | None -> print_endline "rewrite equals the target (trivially valid)");
    print_newline ();
    print_endline (Program.to_string p)
