(* Quickstart: optimize one kernel with a precision budget, then validate
   the result.

   Run with: dune exec examples/quickstart.exe

   The workflow is the paper's §1 example in miniature: take a
   double-precision exp kernel, ask for a version that is allowed to be
   wrong by up to 10^10 ULPs on its input range [-3, 0], and check the
   maximum error of what the search finds. *)

let () =
  let spec = Kernels.S3d.exp_spec in
  let target = spec.Sandbox.Spec.program in
  Printf.printf "target kernel (%d instructions, %d cycles):\n%s\n\n"
    (Program.length target) (Latency.of_program target)
    (Program.to_string target);

  (* 1. Search: 100k MCMC proposals, eta = 1e10 ULPs. *)
  let eta = Ulp.of_float 1e10 in
  let config =
    { Search.Optimizer.default_config with Search.Optimizer.proposals = 100_000 }
  in
  let result = Stoke.optimize ~config ~eta spec in
  let rewrite =
    match result.Search.Optimizer.best_correct with
    | Some p -> p
    | None ->
      print_endline "search found no eta-correct rewrite; try more proposals";
      exit 1
  in
  Printf.printf "rewrite (%d instructions, %d cycles, %.2fx):\n%s\n\n"
    (Program.length rewrite) (Latency.of_program rewrite)
    (float_of_int (Latency.of_program target)
    /. float_of_int (Latency.of_program rewrite))
    (Program.to_string rewrite);

  (* 2. Validate: MCMC hunt for the input maximizing the ULP error. *)
  let vconfig =
    {
      Validate.Driver.default_config with
      Validate.Driver.max_proposals = 200_000;
      min_samples = 50_000;
      check_every = 25_000;
    }
  in
  let verdict = Stoke.validate ~config:vconfig ~eta spec rewrite in
  Printf.printf "validation: max observed error %s ULPs at x = %g\n"
    (Ulp.to_string verdict.Validate.Driver.max_err)
    verdict.Validate.Driver.max_err_input.(0);
  Printf.printf "chain mixed (Geweke |Z| = %.3f): %b\n"
    (Float.abs verdict.Validate.Driver.geweke_z)
    verdict.Validate.Driver.mixed;
  Printf.printf "validated within eta: %b\n" verdict.Validate.Driver.validated;

  (* 3. The rewrite's machine code, via the binary encoder. *)
  match Encoder.encode_program rewrite with
  | Ok bytes ->
    Printf.printf "\nencoded rewrite: %d bytes of x86-64 machine code\n"
      (String.length bytes)
  | Error e -> Printf.printf "\nencoding failed: %s\n" e
