(* Precision sweep: regenerate a Figure-4-style LOC/speedup curve for one
   libimf kernel, writing a CSV that can be plotted directly.

   Run with: dune exec examples/precision_sweep.exe -- [sin|cos|log|tan] [--cold]

   This is the paper's "variable-precision libimf" story: from a single
   double-precision implementation, generate the whole family of
   reduced-precision variants automatically.  By default the curve comes
   from ONE warm frontier walk ({!Stoke.frontier}): the η grid is visited
   tight-to-loose, each point's search seeded from its neighbour's winner,
   with incremental MCMC validation interleaved — a fraction of the cost
   of sweeping every η from scratch.  Pass [--cold] for the classic
   per-point sweep ({!Stoke.precision_sweep}); its winners are what the
   warm walk is measured against. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let cold = List.mem "--cold" args in
  let name =
    match List.filter (fun a -> a <> "--cold") args with
    | n :: _ -> n
    | [] -> "sin"
  in
  let spec =
    match List.assoc_opt name Kernels.Libimf.all with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown kernel %s (choose sin, cos, log or tan)\n" name;
      exit 1
  in
  let config =
    { Search.Optimizer.default_config with Search.Optimizer.proposals = 50_000 }
  in
  let csv = name ^ "_sweep.csv" in
  let oc = open_out csv in
  output_string oc "eta,loc,cycles,speedup,validated_err\n";
  let emit_row ~eta ~loc ~latency ~speedup ~validated_err =
    Printf.fprintf oc "%s,%d,%d,%.3f,%s\n" (Ulp.to_string eta) loc latency
      speedup
      (match validated_err with Some e -> Ulp.to_string e | None -> "");
    Printf.printf "eta=%-22s LOC=%-3d speedup=%.2fx\n" (Ulp.to_string eta) loc
      speedup
  in
  if cold then begin
    Printf.printf
      "cold-sweeping %s over eta = 10^0 .. 10^18 (one search per point)\n%!"
      name;
    let points =
      Stoke.precision_sweep ~config ~validate_results:true ~tests:24 ~seed:7L
        spec
    in
    List.iter
      (fun (p : Stoke.sweep_point) ->
        emit_row ~eta:p.Stoke.eta ~loc:p.Stoke.loc ~latency:p.Stoke.latency
          ~speedup:p.Stoke.speedup ~validated_err:p.Stoke.validated_err)
      points
  end
  else begin
    Printf.printf
      "frontier-sweeping %s over eta = 10^0 .. 10^18 (one warm walk)\n%!" name;
    let r = Stoke.frontier ~config ~tests:24 ~seed:7L spec in
    List.iter
      (fun (p : Search.Frontier.point) ->
        emit_row ~eta:p.Search.Frontier.eta ~loc:p.Search.Frontier.loc
          ~latency:p.Search.Frontier.latency ~speedup:p.Search.Frontier.speedup
          ~validated_err:p.Search.Frontier.validated_err)
      r.Search.Frontier.points;
    Printf.printf
      "spent %d of %d cold-equivalent proposals (%.0f%%), %d demotions\n"
      r.Search.Frontier.total_proposals r.Search.Frontier.cold_budget
      (100.
      *. float_of_int r.Search.Frontier.total_proposals
      /. float_of_int (max 1 r.Search.Frontier.cold_budget))
      r.Search.Frontier.demotions
  end;
  close_out oc;
  Printf.printf "wrote %s\n" csv;
  (* highlight the single- and half-precision budgets of §6.1 *)
  Printf.printf
    "(eta = %s is the single-precision budget; %s the half-precision one)\n"
    (Ulp.to_string Ulp.eta_single)
    (Ulp.to_string Ulp.eta_half)
