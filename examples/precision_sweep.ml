(* Precision sweep: regenerate a Figure-4-style LOC/speedup curve for one
   libimf kernel, writing a CSV that can be plotted directly.

   Run with: dune exec examples/precision_sweep.exe -- [sin|cos|log|tan]

   This is the paper's "variable-precision libimf" story: from a single
   double-precision implementation, generate the whole family of
   reduced-precision variants automatically. *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "sin" in
  let spec =
    match List.assoc_opt name Kernels.Libimf.all with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown kernel %s (choose sin, cos, log or tan)\n" name;
      exit 1
  in
  let config =
    { Search.Optimizer.default_config with Search.Optimizer.proposals = 50_000 }
  in
  Printf.printf "sweeping %s over eta = 10^0 .. 10^18 (this takes a minute)\n%!"
    name;
  let points =
    Stoke.precision_sweep ~config ~validate_results:true ~tests:24 ~seed:7L spec
  in
  let csv = name ^ "_sweep.csv" in
  let oc = open_out csv in
  output_string oc "eta,loc,cycles,speedup,validated_err\n";
  List.iter
    (fun (p : Stoke.sweep_point) ->
      Printf.fprintf oc "%s,%d,%d,%.3f,%s\n"
        (Ulp.to_string p.Stoke.eta)
        p.Stoke.loc p.Stoke.latency p.Stoke.speedup
        (match p.Stoke.validated_err with
         | Some e -> Ulp.to_string e
         | None -> "");
      Printf.printf "eta=%-22s LOC=%-3d speedup=%.2fx\n"
        (Ulp.to_string p.Stoke.eta)
        p.Stoke.loc p.Stoke.speedup)
    points;
  close_out oc;
  Printf.printf "wrote %s\n" csv;
  (* highlight the single- and half-precision budgets of §6.1 *)
  Printf.printf
    "(eta = %s is the single-precision budget; %s the half-precision one)\n"
    (Ulp.to_string Ulp.eta_single)
    (Ulp.to_string Ulp.eta_half)
