(* The aek ray tracer end to end: render the same scene with the original
   gcc-style vector kernels, with the paper's bit-wise-correct rewrites,
   with the lower-precision camera-perturbation rewrite, and with the
   over-aggressive rewrite that destroys the depth-of-field blur.

   Run with: dune exec examples/raytracer_dof.exe
   Then look at dof_*.ppm (any image viewer opens PPM). *)

let width = 96
let height = 72
let samples = 6

let render name ks =
  let t0 = Unix.gettimeofday () in
  let r =
    Apps.Raytracer.render_full ~width ~height ~samples ~seed:3L
      (Apps.Raytracer.kernel_ops ks)
  in
  Printf.printf "%-16s %8.1fs  %9d kernel calls  %12d cycles\n%!" name
    (Unix.gettimeofday () -. t0)
    r.Apps.Raytracer.stats.Apps.Raytracer.kernel_calls
    r.Apps.Raytracer.stats.Apps.Raytracer.kernel_cycles;
  Apps.Ppm.write r.Apps.Raytracer.image ("dof_" ^ name ^ ".ppm");
  r

let () =
  Printf.printf "rendering %dx%d with %d DOF samples per pixel...\n%!" width
    height samples;
  let target = render "target" Apps.Raytracer.target_kernels in
  let bitwise =
    render "bitwise"
      {
        Apps.Raytracer.k_scale = Kernels.Aek_kernels.scale_rewrite;
        k_dot = Kernels.Aek_kernels.dot_rewrite;
        k_add = Kernels.Aek_kernels.add_rewrite;
        k_delta = Kernels.Aek_kernels.delta_spec.Sandbox.Spec.program;
      }
  in
  let lower =
    render "lower_precision"
      {
        Apps.Raytracer.k_scale = Kernels.Aek_kernels.scale_rewrite;
        k_dot = Kernels.Aek_kernels.dot_rewrite;
        k_add = Kernels.Aek_kernels.add_rewrite;
        k_delta = Kernels.Aek_kernels.delta_rewrite;
      }
  in
  let invalid =
    render "invalid"
      {
        Apps.Raytracer.target_kernels with
        Apps.Raytracer.k_delta = Kernels.Aek_kernels.delta_prime;
      }
  in
  let vs name r =
    Printf.printf
      "%-16s %5d / %d pixels differ at 8 bits, %5d in full precision\n" name
      (Apps.Ppm.diff_count target.Apps.Raytracer.image r.Apps.Raytracer.image)
      (width * height)
      (Apps.Raytracer.radiance_diff_count target.Apps.Raytracer.radiance
         r.Apps.Raytracer.radiance)
  in
  print_newline ();
  vs "bitwise" bitwise;
  vs "lower_precision" lower;
  vs "invalid" invalid;
  print_endline "\nwrote dof_target.ppm dof_bitwise.ppm dof_lower_precision.ppm dof_invalid.ppm";
  print_endline "note the missing depth-of-field blur in dof_invalid.ppm"
