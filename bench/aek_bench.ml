(* Figures 6, 7 and 8: the aek vector kernels.

   Fig 6 — dot product: search at η=0 for a bit-wise-correct rewrite and
   prove it with the uninterpreted-function symbolic checker.
   Fig 7 — camera perturbation Δ: search with a small η; compare the MCMC
   validation bound (paper: 5 ULPs) against the static interval bound
   (paper: 1363.5 ULPs).
   Fig 8 — the summary table: per-kernel target/rewrite latency and LOC,
   speedup, bit-wise correctness, and end-to-end acceptability. *)

let searched ?(eta = 0L) ?(proposals = 120_000) ?(restarts = 2)
    (spec : Sandbox.Spec.t) =
  let config =
    { (Util.search_config ~proposals ~seed:61L ()) with
      Search.Optimizer.restarts }
  in
  let result = Stoke.optimize ~config ~eta spec in
  Util.best_rewrite spec result

let run_fig6 () =
  Util.subheading "Figure 6 — dot product <v1,v2>";
  let spec = Kernels.Aek_kernels.dot_spec in
  let rewrite = searched spec in
  Printf.printf "target (%d cycles):\n%s\n" (Latency.of_program spec.Sandbox.Spec.program)
    (Program.to_string spec.Sandbox.Spec.program);
  Printf.printf "\nSTOKE rewrite (%d cycles):\n%s\n" (Latency.of_program rewrite)
    (Program.to_string rewrite);
  (match Verify.Verifier.check spec ~rewrite ~eta:0L with
   | Verify.Verifier.Proved_bitwise ->
     Printf.printf "\nsearched rewrite: PROVED bit-wise correct via UF terms\n"
   | o ->
     Printf.printf "\nsearched rewrite: %s\n" (Verify.Verifier.outcome_to_string o));
  (* the paper's own rewrite, as transcription check *)
  match
    Verify.Symbolic.equivalent spec ~rewrite:Kernels.Aek_kernels.dot_rewrite
  with
  | Ok b -> Printf.printf "paper's Fig-6 rewrite bit-wise equivalent: %b\n" b
  | Error e -> Printf.printf "paper's Fig-6 rewrite not analyzable: %s\n" e

let run_fig7 () =
  Util.subheading "Figure 7 — camera perturbation Delta";
  let spec = Kernels.Aek_kernels.delta_spec in
  let rewrite = Kernels.Aek_kernels.delta_rewrite in
  Printf.printf "target: %d LOC, %d cycles; paper rewrite: %d LOC, %d cycles\n"
    (Program.length spec.Sandbox.Spec.program)
    (Latency.of_program spec.Sandbox.Spec.program)
    (Program.length rewrite) (Latency.of_program rewrite);
  let v =
    Validate.Driver.run
      ~config:(Util.validate_config ~proposals:80_000 ())
      ~eta:16L
      (Validate.Errfn.create spec ~rewrite)
  in
  Printf.printf "MCMC validation bound: %s ULPs (paper: 5)\n"
    (Ulp.to_string v.Validate.Driver.max_err);
  (match Verify.Interval.static_ulp_bound spec ~rewrite with
   | Ok a ->
     Printf.printf "static interval bound: %.1f scaled ULPs (paper: 1363.5)\n"
       a.Verify.Interval.bound_ulps
   | Error e -> Printf.printf "static bound unavailable: %s\n" e);
  (* a searched rewrite at the DOF-noise eta *)
  let searched_rw = searched ~eta:16L ~proposals:80_000 spec in
  Printf.printf "searched rewrite at eta=16: %d LOC, %d cycles (%.2fx)\n"
    (Program.length searched_rw) (Latency.of_program searched_rw)
    (Util.speedup_of spec searched_rw)

type row = {
  name : string;
  target_lat : int;
  rewrite_lat : int;
  target_loc : int;
  rewrite_loc : int;
  bitwise : bool;
  ok : bool;
}

let run_fig8 () =
  Util.subheading "Figure 8 — aek kernel summary table";
  let eval_kernel name (spec : Sandbox.Spec.t) ~eta ~ok =
    let rewrite = searched ~eta ~proposals:100_000 spec in
    let bitwise =
      match Verify.Symbolic.equivalent spec ~rewrite with
      | Ok b -> b
      | Error _ ->
        (* fall back to exhaustive-ish testing at eta 0 *)
        let e = Validate.Errfn.create spec ~rewrite in
        let g = Rng.Xoshiro256.create 3L in
        let all_zero = ref true in
        for _ = 1 to 2_000 do
          if
            Ulp.compare
              (Validate.Errfn.eval_ulp e (Sandbox.Spec.random_floats g spec))
              0L
            > 0
          then all_zero := false
        done;
        !all_zero
    in
    {
      name;
      target_lat = Latency.of_program spec.Sandbox.Spec.program;
      rewrite_lat = Latency.of_program rewrite;
      target_loc = Program.length spec.Sandbox.Spec.program;
      rewrite_loc = Program.length rewrite;
      bitwise;
      ok;
    }
  in
  let rows =
    [
      eval_kernel "k*v" Kernels.Aek_kernels.scale_spec ~eta:0L ~ok:true;
      eval_kernel "<v1,v2>" Kernels.Aek_kernels.dot_spec ~eta:0L ~ok:true;
      eval_kernel "v1+v2" Kernels.Aek_kernels.add_spec ~eta:0L ~ok:true;
      eval_kernel "D(v1,v2)" Kernels.Aek_kernels.delta_spec ~eta:16L ~ok:true;
    ]
  in
  (* Δ′: the over-aggressive rewrite (unbounded eta) *)
  let dp = Kernels.Aek_kernels.delta_prime in
  let rows =
    rows
    @ [
        {
          name = "D'(v1,v2)";
          target_lat =
            Latency.of_program Kernels.Aek_kernels.delta_spec.Sandbox.Spec.program;
          rewrite_lat = Latency.of_program dp;
          target_loc =
            Program.length Kernels.Aek_kernels.delta_spec.Sandbox.Spec.program;
          rewrite_loc = Program.length dp;
          bitwise = false;
          ok = false;
        };
      ]
  in
  Printf.printf "%-10s %8s %8s %6s %6s %9s %8s %4s\n" "kernel" "lat(T)"
    "lat(R)" "LOC(T)" "LOC(R)" "speedup" "bitwise" "OK";
  List.iter
    (fun r ->
      Printf.printf "%-10s %8d %8d %6d %6d %8.1f%% %8b %4s\n" r.name
        r.target_lat r.rewrite_lat r.target_loc r.rewrite_loc
        (100. *. (float_of_int r.target_lat /. float_of_int r.rewrite_lat -. 1.))
        r.bitwise
        (if r.ok then "yes" else "no"))
    rows

let run () =
  Util.heading "Figures 6-8 — aek ray tracer vector kernels";
  run_fig6 ();
  run_fig7 ();
  run_fig8 ()
