(* Shared helpers for the benchmark harness.

   Budgets here are deliberately far below the paper's 10M-proposal /
   100M-sample runs so the whole suite regenerates in minutes; every budget
   can be scaled with the STOKE_BENCH_SCALE environment variable (e.g.
   STOKE_BENCH_SCALE=10 for a 10x longer run). *)

let scale =
  match Sys.getenv_opt "STOKE_BENCH_SCALE" with
  | None -> 1.0
  | Some s -> (try float_of_string s with _ -> 1.0)

let scaled n = int_of_float (float_of_int n *. scale)

let search_config ?(proposals = 40_000) ?(seed = 1L) () =
  {
    Search.Optimizer.default_config with
    Search.Optimizer.proposals = scaled proposals;
    seed;
  }

let validate_config ?(proposals = 60_000) () =
  {
    Validate.Driver.default_config with
    Validate.Driver.max_proposals = scaled proposals;
    min_samples = scaled 15_000;
    check_every = scaled 15_000;
  }

(* Telemetry: each experiment streams the same JSONL events the CLI's
   --trace-out flag produces into BENCH_<name>.json next to the printed
   tables (directory overridable with STOKE_BENCH_TRACE_DIR).  Experiments
   fetch the current sink with [obs ()]; outside [with_trace] it is the
   null sink, so single-figure runs and unit tests pay nothing. *)

let trace_dir =
  match Sys.getenv_opt "STOKE_BENCH_TRACE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "."

let current_sink = ref Obs.Sink.null

let obs () = !current_sink

let with_trace name f =
  let path = Filename.concat trace_dir (Printf.sprintf "BENCH_%s.json" name) in
  let sink = Obs.Sink.to_file path in
  current_sink := sink;
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.emit sink "experiment_end" [ ("name", Obs.Json.String name) ];
      current_sink := Obs.Sink.null;
      Obs.Sink.close sink)
    (fun () ->
      Obs.Sink.emit sink "experiment_start"
        [
          ("name", Obs.Json.String name);
          ("scale", Obs.Json.Float scale);
        ];
      f ())

let heading title =
  Printf.printf "\n============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "============================================================\n"

let subheading title = Printf.printf "\n--- %s ---\n" title

let eta_to_string = Ulp.to_string

(* Best η-correct rewrite of a spec (falling back to the target). *)
let best_rewrite (spec : Sandbox.Spec.t) result =
  match result.Search.Optimizer.best_correct with
  | Some p when Latency.of_program p <= Latency.of_program spec.Sandbox.Spec.program -> p
  | _ -> spec.Sandbox.Spec.program

let speedup_of (spec : Sandbox.Spec.t) rewrite =
  float_of_int (Latency.of_program spec.Sandbox.Spec.program)
  /. float_of_int (Stdlib.max 1 (Latency.of_program rewrite))

(* A coarse log-spaced input grid across a 1-D kernel's range. *)
let input_grid (spec : Sandbox.Spec.t) n =
  let r = (Sandbox.Spec.input_ranges spec).(0) in
  Array.init n (fun i ->
      r.Sandbox.Spec.lo
      +. ((r.Sandbox.Spec.hi -. r.Sandbox.Spec.lo) *. float_of_int i
          /. float_of_int (n - 1)))
