(* §5.1-style throughput microbenchmarks (bechamel): test-case dispatch
   rate through the sandbox, proposal rate, and ULP-distance rate.  The
   paper's JIT reaches ~1M test cases/s on native hardware; our interpreter
   is the documented substitution, so the point of this bench is to report
   the actual substrate cost.  Also a Geweke-diagnostic trace for a
   validation chain (§5.3). *)

open Bechamel
open Toolkit

let dispatch_test =
  let spec = Kernels.S3d.exp_spec in
  let machine = Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size () in
  let pristine = Sandbox.Machine.copy machine in
  let tc = Sandbox.Spec.testcase_of_floats spec [| -1.25 |] in
  Test.make ~name:"exp kernel dispatch (48 instrs)"
    (Staged.stage (fun () ->
         Sandbox.Machine.restore_from ~src:pristine ~dst:machine;
         Sandbox.Testcase.apply tc machine;
         ignore (Sandbox.Exec.run machine spec.Sandbox.Spec.program)))

let compiled_dispatch_test =
  let spec = Kernels.S3d.exp_spec in
  let machine = Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size () in
  let pristine = Sandbox.Machine.copy machine in
  let tc = Sandbox.Spec.testcase_of_floats spec [| -1.25 |] in
  let cp = Sandbox.Compiled.compile machine spec.Sandbox.Spec.program in
  Test.make ~name:"exp kernel dispatch (compiled)"
    (Staged.stage (fun () ->
         Sandbox.Machine.restore_from ~src:pristine ~dst:machine;
         Sandbox.Testcase.apply tc machine;
         ignore (Sandbox.Compiled.exec cp)))

let dot_dispatch_test =
  let spec = Kernels.Aek_kernels.dot_spec in
  let runner = Apps.Kernel_runner.create () in
  let v = Apps.Vec3.make 1. 2. 3. in
  Test.make ~name:"dot kernel dispatch (8 instrs)"
    (Staged.stage (fun () ->
         ignore (Apps.Kernel_runner.dot runner spec.Sandbox.Spec.program v v)))

let proposal_test =
  let spec = Kernels.S3d.exp_spec in
  let pools = Search.Pools.make ~target:spec.Sandbox.Spec.program ~spec in
  let g = Rng.Xoshiro256.create 7L in
  let p = Program.with_padding 4 (Program.instrs spec.Sandbox.Spec.program) in
  Test.make ~name:"transform propose+undo"
    (Staged.stage (fun () ->
         match Search.Transform.propose g pools p with
         | None -> ()
         | Some (_, u) -> Search.Transform.undo p u))

let ulp_test =
  let g = Rng.Xoshiro256.create 9L in
  Test.make ~name:"ULP distance"
    (Staged.stage (fun () ->
         ignore
           (Ulp.dist64
              (Rng.Dist.uniform_bits_double g)
              (Rng.Dist.uniform_bits_double g))))

let encode_test =
  let p = Kernels.S3d.exp_program in
  Test.make ~name:"encode exp kernel to bytes"
    (Staged.stage (fun () -> ignore (Encoder.encode_program p)))

(* Head-to-head instrs/sec of the three engines on the loop the cost
   function drives — per-test restore + apply + run for the scalar
   engines, one amortized reset + lane-wise sweep for the batched one.
   Written to the tput telemetry stream so CI can track the speedups. *)
let run_engine_tput () =
  Util.subheading "execution engines: instrs/sec on the exp kernel";
  let spec = Kernels.S3d.exp_spec in
  let tc = Sandbox.Spec.testcase_of_floats spec [| -1.25 |] in
  (* The batched engine is measured at the batch width the optimizer
     actually uses it at: every lane is a test case, one reset + exec
     sweeps them all. *)
  let lanes = 32 in
  let measure_batched () =
    let machine =
      Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size ()
    in
    let tcs =
      Array.init lanes (fun i ->
          let x = -3.0 +. (3.0 *. float_of_int i /. float_of_int lanes) in
          Sandbox.Spec.testcase_of_floats spec [| x |])
    in
    let b = Sandbox.Batched.create_batch machine tcs in
    let bp = Sandbox.Batched.compile b spec.Sandbox.Spec.program in
    let once () =
      Sandbox.Batched.reset b;
      ignore (Sandbox.Batched.exec bp : bool)
    in
    for _ = 1 to 2_000 / lanes do
      once ()
    done;
    let iters = Util.scaled 300_000 / lanes in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      once ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    once ();
    let executed = (Sandbox.Batched.result b ~lane:0).Sandbox.Exec.executed in
    let runs = float_of_int iters *. float_of_int lanes in
    (runs *. float_of_int executed /. dt, runs /. dt)
  in
  (* The native engine at the same batch width: one encoded trampoline,
     one worker request per sweep.  [Error reason] when this platform
     can't run it — the caller reports the skip instead of failing. *)
  let measure_native () =
    if not (Sandbox.Native.available ()) then Error "mmap_exec_denied"
    else begin
      let machine =
        Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size ()
      in
      let tcs =
        Array.init lanes (fun i ->
            let x = -3.0 +. (3.0 *. float_of_int i /. float_of_int lanes) in
            Sandbox.Spec.testcase_of_floats spec [| x |])
      in
      match Sandbox.Native.create_batch machine tcs with
      | None -> Error "worker_unavailable"
      | Some b ->
        (match Sandbox.Native.compile b spec.Sandbox.Spec.program with
         | None -> Error "kernel_unencodable"
         | Some np ->
           let once () =
             Sandbox.Native.reset b;
             ignore (Sandbox.Native.exec np : bool)
           in
           for _ = 1 to 2_000 / lanes do
             once ()
           done;
           let iters = Util.scaled 300_000 / lanes in
           let t0 = Unix.gettimeofday () in
           for _ = 1 to iters do
             once ()
           done;
           let dt = Unix.gettimeofday () -. t0 in
           once ();
           let executed =
             (Sandbox.Native.result b ~lane:0).Sandbox.Exec.executed
           in
           let runs = float_of_int iters *. float_of_int lanes in
           Ok (runs *. float_of_int executed /. dt, runs /. dt))
    end
  in
  let measure engine =
    let machine =
      Sandbox.Machine.create ~mem_size:spec.Sandbox.Spec.mem_size ()
    in
    let pristine = Sandbox.Machine.copy machine in
    let run =
      match engine with
      | Sandbox.Exec.Interp ->
        fun () -> Sandbox.Exec.run machine spec.Sandbox.Spec.program
      | Sandbox.Exec.Compiled ->
        let cp = Sandbox.Compiled.compile machine spec.Sandbox.Spec.program in
        fun () -> Sandbox.Compiled.exec cp
      | Sandbox.Exec.Batched | Sandbox.Exec.Native ->
        assert false (* measured by measure_batched / measure_native *)
    in
    let once () =
      Sandbox.Machine.restore_from ~src:pristine ~dst:machine;
      Sandbox.Testcase.apply tc machine;
      run ()
    in
    for _ = 1 to 2_000 do
      ignore (once ())
    done;
    let iters = Util.scaled 300_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (once ())
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let r = once () in
    let instrs = float_of_int iters *. float_of_int r.Sandbox.Exec.executed in
    (instrs /. dt, float_of_int iters /. dt)
  in
  let report engine (ips, rps) =
    Printf.printf "%-36s %14.0f %14.0f\n"
      (Sandbox.Exec.engine_to_string engine ^ " instrs/s | runs/s")
      ips rps;
    Obs.Sink.emit (Util.obs ()) "engine_tput"
      [
        ("engine", Obs.Json.String (Sandbox.Exec.engine_to_string engine));
        ("kernel", Obs.Json.String "exp");
        ("instrs_per_sec", Obs.Json.Float ips);
        ("runs_per_sec", Obs.Json.Float rps);
      ]
  in
  let interp = measure Sandbox.Exec.Interp in
  let compiled = measure Sandbox.Exec.Compiled in
  let batched = measure_batched () in
  report Sandbox.Exec.Interp interp;
  report Sandbox.Exec.Compiled compiled;
  report Sandbox.Exec.Batched batched;
  let speedup pair num den =
    let s = fst num /. fst den in
    Printf.printf "%-36s %14.2fx\n" (pair ^ " speedup") s;
    Obs.Sink.emit (Util.obs ()) "engine_speedup"
      [
        ("kernel", Obs.Json.String "exp");
        ("pair", Obs.Json.String pair);
        ("speedup", Obs.Json.Float s);
      ]
  in
  speedup "compiled/interp" compiled interp;
  speedup "batched/compiled" batched compiled;
  match measure_native () with
  | Ok native ->
    report Sandbox.Exec.Native native;
    speedup "native/batched" native batched;
    speedup "native/interp" native interp
  | Error reason ->
    Printf.printf "%-36s %14s\n" "native instrs/s | runs/s"
      ("(skipped: " ^ reason ^ ")");
    Obs.Sink.emit (Util.obs ()) "engine_unavailable"
      [
        ("engine", Obs.Json.String "native");
        ("kernel", Obs.Json.String "exp");
        ("reason", Obs.Json.String reason);
      ]

(* Per-proposal cost of the static undef-read screen, measured over the
   same propose/undo stream the optimizer sees, plus the fraction of
   proposals it rejects — the two numbers that justify (or indict) having
   it on by default. *)
let run_screen_tput () =
  Util.subheading "static screen: checks/sec over the proposal stream";
  let spec = Kernels.S3d.exp_spec in
  let pools = Search.Pools.make ~target:spec.Sandbox.Spec.program ~spec in
  let env = Analysis.Screen.env_of_spec spec in
  let g = Rng.Xoshiro256.create 21L in
  let p = Program.with_padding 4 (Program.instrs spec.Sandbox.Spec.program) in
  let step () =
    match Search.Transform.propose g pools p with
    | None -> false
    | Some (_, u) ->
      let rejected = Analysis.Screen.has_undef_read env p in
      Search.Transform.undo p u;
      rejected
  in
  for _ = 1 to 2_000 do
    ignore (step ())
  done;
  let iters = Util.scaled 300_000 in
  let rejects = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    if step () then incr rejects
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let checks_per_sec = float_of_int iters /. dt in
  let reject_frac = float_of_int !rejects /. float_of_int iters in
  Printf.printf "%-36s %14.0f %14.3f\n"
    "screen checks/s | reject fraction" checks_per_sec reject_frac;
  Obs.Sink.emit (Util.obs ()) "static_screen"
    [
      ("kernel", Obs.Json.String "exp");
      ("checks_per_sec", Obs.Json.Float checks_per_sec);
      ("reject_fraction", Obs.Json.Float reject_frac);
      ("proposals", Obs.Json.Int iters);
    ]

(* The two numbers that justify the orchestrator's control plane: the
   amortized poll must be free (same proposals/s with the scoreboard
   attached, bit-identical winner), and cooperative early-stop must
   actually return wall-clock when a policy fires.  Both go into the tput
   telemetry stream so CI can watch for control-plane creep. *)
let run_orchestrator_tput () =
  Util.subheading "orchestrator control plane: poll overhead & early-stop";
  let spec = Kernels.Aek_kernels.add_spec in
  let tests = Stoke.make_tests ~n:8 ~seed:51L spec in
  let params = Search.Cost.default_params ~eta:0L in
  let proposals = Util.scaled 60_000 in
  let base =
    { Search.Optimizer.default_config with Search.Optimizer.proposals }
  in
  (* 1. poll overhead: the same single chain with and without the control
     plane (a Cost_below policy that can never fire, since totals are
     non-negative).  The winner must be bit-identical — the poll never
     touches an RNG — so any proposals/s gap is pure control-plane cost. *)
  let timed config =
    let ctx = Search.Cost.create spec params tests in
    let t0 = Unix.gettimeofday () in
    let r = Search.Optimizer.run ctx config in
    (r, float_of_int r.Search.Optimizer.proposals_made
        /. (Unix.gettimeofday () -. t0))
  in
  let plain, plain_pps = timed base in
  let policed, policed_pps =
    timed
      { base with Search.Optimizer.stop_when = Search.Control.Cost_below (-1.) }
  in
  if
    not
      (Program.equal plain.Search.Optimizer.best_overall
         policed.Search.Optimizer.best_overall)
  then failwith "orchestrator tput: control plane changed the winner";
  let overhead = 1. -. (policed_pps /. plain_pps) in
  Printf.printf "%-36s %14.0f %14.0f\n" "proposals/s: bare | polled" plain_pps
    policed_pps;
  Printf.printf "%-36s %13.1f%%\n" "poll overhead" (100. *. overhead);
  Obs.Sink.emit (Util.obs ()) "orchestrator"
    [
      ("probe", Obs.Json.String "poll_overhead");
      ("kernel", Obs.Json.String "add");
      ("proposals", Obs.Json.Int proposals);
      ("bare_proposals_per_sec", Obs.Json.Float plain_pps);
      ("polled_proposals_per_sec", Obs.Json.Float policed_pps);
      ("overhead_frac", Obs.Json.Float overhead);
    ];
  (* 2. early-stop saving: four chains hunting an easy win (huge eta) under
     First_correct vs. running the budget out. *)
  let domains = 4 in
  let loose = Search.Cost.default_params ~eta:(Ulp.of_float 1e6) in
  let timed_parallel config =
    let t0 = Unix.gettimeofday () in
    let r =
      Search.Parallel.run ~domains ~spec ~params:loose ~tests ~config ()
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let exhaust, exhaust_s = timed_parallel base in
  let stopped, stopped_s =
    timed_parallel
      { base with Search.Optimizer.stop_when = Search.Control.First_correct }
  in
  Printf.printf "%-36s %13.3fs %13.3fs\n" "4 chains: exhaust | first-correct"
    exhaust_s stopped_s;
  Printf.printf "%-36s %14d %14d\n" "proposals made"
    exhaust.Search.Optimizer.proposals_made
    stopped.Search.Optimizer.proposals_made;
  Obs.Sink.emit (Util.obs ()) "orchestrator"
    [
      ("probe", Obs.Json.String "early_stop");
      ("kernel", Obs.Json.String "add");
      ("domains", Obs.Json.Int domains);
      ("budget_per_chain", Obs.Json.Int proposals);
      ("exhaust_s", Obs.Json.Float exhaust_s);
      ("first_correct_s", Obs.Json.Float stopped_s);
      ( "stop_reason",
        Obs.Json.String
          (Search.Control.stop_reason_to_string
             stopped.Search.Optimizer.stop_reason) );
      ( "proposals_saved",
        Obs.Json.Int
          (exhaust.Search.Optimizer.proposals_made
          - stopped.Search.Optimizer.proposals_made) );
    ]

(* Warm-start saving: the frontier's whole pitch is that one warm walk
   buys the same curve for a fraction of the cold per-point budget.
   Measure both on a small grid and emit the ratio as a [frontier_saving]
   event so CI can watch the saving (and the quality guard: no warm point
   dominated by its cold counterpart). *)
let run_frontier_tput () =
  Util.subheading "frontier: warm vs cold proposal budget";
  let spec = Kernels.Aek_kernels.add_spec in
  let etas = [ 0L; Ulp.of_float 1e4; Ulp.of_float 1e8; Ulp.of_float 1e12 ] in
  let seed = 31L in
  let config = Util.search_config ~proposals:20_000 ~seed () in
  let run_mode warm =
    Stoke.frontier ~config ~validate_results:false ~etas ~tests:16 ~warm
      ~obs:(Util.obs ()) ~seed spec
  in
  let cold = run_mode false in
  let warm = run_mode true in
  let dominated =
    List.fold_left
      (fun n (wp : Search.Frontier.point) ->
        let cp =
          List.find
            (fun (c : Search.Frontier.point) ->
              Ulp.compare c.Search.Frontier.eta wp.Search.Frontier.eta = 0)
            cold.Search.Frontier.points
        in
        if cp.Search.Frontier.latency < wp.Search.Frontier.latency then n + 1
        else n)
      0 warm.Search.Frontier.points
  in
  let saving =
    1.
    -. float_of_int warm.Search.Frontier.total_proposals
       /. float_of_int (max 1 cold.Search.Frontier.total_proposals)
  in
  Printf.printf "%-36s %14d %14d\n" "proposals: cold | warm"
    cold.Search.Frontier.total_proposals warm.Search.Frontier.total_proposals;
  Printf.printf "%-36s %13.1f%% %14d\n" "saving | warm points dominated"
    (100. *. saving) dominated;
  Obs.Sink.emit (Util.obs ()) "frontier_saving"
    [
      ("kernel", Obs.Json.String "add");
      ("etas", Obs.Json.Int (List.length etas));
      ("cold_proposals", Obs.Json.Int cold.Search.Frontier.total_proposals);
      ("warm_proposals", Obs.Json.Int warm.Search.Frontier.total_proposals);
      ("saving_frac", Obs.Json.Float saving);
      ("dominated_points", Obs.Json.Int dominated);
    ]

let run_bechamel () =
  let tests =
    [ dispatch_test; compiled_dispatch_test; dot_dispatch_test; proposal_test;
      ulp_test; encode_test ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  Printf.printf "%-36s %14s %14s\n" "benchmark" "ns/op" "ops/s";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "%-36s %14.1f %14.0f\n" name est (1e9 /. est)
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests

let run_geweke_trace () =
  Util.subheading "Geweke diagnostic trace for a validation chain";
  (* exp with its last refinement dropped, eta 0 *)
  let instrs = Program.instrs Kernels.S3d.exp_program in
  let truncated = Program.of_instrs (List.filteri (fun i _ -> i < 15 || i >= 19) instrs) in
  let e = Validate.Errfn.create Kernels.S3d.exp_spec ~rewrite:truncated in
  let g = Rng.Xoshiro256.create 77L in
  let proposal = Validate.Proposal.create Kernels.S3d.exp_spec in
  let cur = ref (Validate.Proposal.initial g proposal) in
  let cur_err = ref (Validate.Errfn.eval e !cur) in
  let samples = ref [] in
  Printf.printf "%-10s %12s %10s\n" "samples" "|Z|" "mixed";
  for iter = 1 to Util.scaled 50_000 do
    let cand = Validate.Proposal.step g proposal !cur in
    let err = Validate.Errfn.eval e cand in
    if
      err >= !cur_err
      || Rng.Dist.float g 1.0 < (err +. 1.) /. (!cur_err +. 1.)
    then begin
      cur := cand;
      cur_err := err
    end;
    samples := !cur_err :: !samples;
    if iter mod Util.scaled 10_000 = 0 then begin
      let chain = Array.of_list (List.rev !samples) in
      let v = Stats.Geweke.z_statistic chain in
      Printf.printf "%-10d %12.4f %10b\n" iter
        (Float.abs v.Stats.Geweke.z)
        (Stats.Geweke.converged ~threshold:0.5 v)
    end
  done

let run () =
  Util.heading "Throughput microbenchmarks (bechamel) and Geweke trace";
  run_bechamel ();
  run_engine_tput ();
  run_screen_tput ();
  run_orchestrator_tput ();
  run_frontier_tput ();
  run_geweke_trace ()
