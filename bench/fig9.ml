(* Figure 9: end-to-end aek renders.

   (a) bit-wise correct kernel rewrites — image identical to the original;
   (b,c) the valid lower-precision Δ rewrite — visually identical (often
   byte-identical at our reduced resolution), but the underlying radiance
   floats differ;
   (d,e) the invalid Δ′ — depth-of-field blur disappears, many pixels
   differ.  Also the cumulative cycle-model speedups of §6.3 (bit-wise
   30.2%, +Δ 36.6% in the paper). *)

let width = 64
let height = 48
let samples = 6
let seed = 9L

let render ks =
  Apps.Raytracer.render_full ~width ~height ~samples ~seed
    (Apps.Raytracer.kernel_ops ks)

(* The paper's headline curve (speedup vs η) for the kernel the renders
   above tell the story about: one warm frontier invocation emits every
   point with its validated error, instead of |grid| separate sweeps.
   The η = 16 point is the Δ rewrite the (b,c) renders use. *)
let run_frontier_curve () =
  Util.subheading
    "one-run frontier curve for the delta kernel (speedup vs eta)";
  let spec = Kernels.Aek_kernels.delta_spec in
  let etas = [ 0L; 4L; 16L; 64L; Ulp.of_float 1e4 ] in
  let config = Util.search_config ~proposals:20_000 ~seed:91L () in
  let r =
    Stoke.frontier ~config
      ~validation:(Util.validate_config ())
      ~etas ~tests:16 ~obs:(Util.obs ()) ~seed:91L spec
  in
  Printf.printf "%-10s %6s %8s %8s %14s %10s\n" "eta" "LOC" "cycles"
    "speedup" "validated-err" "proposals";
  List.iter
    (fun (p : Search.Frontier.point) ->
      Printf.printf "%-10s %6d %8d %8.2f %14s %10d\n"
        (Ulp.to_string p.Search.Frontier.eta)
        p.Search.Frontier.loc p.Search.Frontier.latency
        p.Search.Frontier.speedup
        (match p.Search.Frontier.validated_err with
         | None -> "-"
         | Some e -> Ulp.to_string e)
        p.Search.Frontier.proposals_used)
    r.Search.Frontier.points;
  Printf.printf
    "full curve from one run: %d of %d cold proposals (%.0f%%), pareto %d \
     points\n"
    r.Search.Frontier.total_proposals r.Search.Frontier.cold_budget
    (100.
    *. float_of_int r.Search.Frontier.total_proposals
    /. float_of_int (max 1 r.Search.Frontier.cold_budget))
    (List.length r.Search.Frontier.pareto)

let run () =
  Util.heading "Figure 9 — aek end-to-end images and speedups";
  let targets = Apps.Raytracer.target_kernels in
  let bitwise =
    {
      Apps.Raytracer.k_scale = Kernels.Aek_kernels.scale_rewrite;
      k_dot = Kernels.Aek_kernels.dot_rewrite;
      k_add = Kernels.Aek_kernels.add_rewrite;
      k_delta = Kernels.Aek_kernels.delta_spec.Sandbox.Spec.program;
    }
  in
  let lower_precision =
    { bitwise with Apps.Raytracer.k_delta = Kernels.Aek_kernels.delta_rewrite }
  in
  let invalid =
    { bitwise with Apps.Raytracer.k_delta = Kernels.Aek_kernels.delta_prime }
  in
  let r_t = render targets in
  let r_b = render bitwise in
  let r_l = render lower_precision in
  let r_i = render invalid in
  Apps.Ppm.write r_t.Apps.Raytracer.image "aek_target.ppm";
  Apps.Ppm.write r_b.Apps.Raytracer.image "aek_bitwise.ppm";
  Apps.Ppm.write r_l.Apps.Raytracer.image "aek_lower_precision.ppm";
  Apps.Ppm.write r_i.Apps.Raytracer.image "aek_invalid.ppm";
  Apps.Ppm.write
    (Apps.Ppm.diff_image r_t.Apps.Raytracer.image r_l.Apps.Raytracer.image)
    "aek_diff_valid.ppm";
  Apps.Ppm.write
    (Apps.Ppm.diff_image r_t.Apps.Raytracer.image r_i.Apps.Raytracer.image)
    "aek_diff_invalid.ppm";
  let total = width * height in
  let img_diff a b =
    Apps.Ppm.diff_count a.Apps.Raytracer.image b.Apps.Raytracer.image
  in
  let rad_diff a b =
    Apps.Raytracer.radiance_diff_count a.Apps.Raytracer.radiance
      b.Apps.Raytracer.radiance
  in
  Printf.printf "rendered %dx%d with %d samples -> aek_*.ppm\n" width height samples;
  Printf.printf "pixels differing vs target render (of %d): 8-bit / radiance\n" total;
  Printf.printf "  bit-wise rewrites      : %5d / %5d (paper: identical)\n"
    (img_diff r_t r_b) (rad_diff r_t r_b);
  Printf.printf
    "  + lower-precision Delta: %5d / %5d (paper: visually identical, floats differ)\n"
    (img_diff r_t r_l) (rad_diff r_t r_l);
  Printf.printf "  + invalid Delta'       : %5d / %5d (paper: dramatic, DOF blur gone)\n"
    (img_diff r_t r_i) (rad_diff r_t r_i);
  (* cycle-model end-to-end speedups: kernel cycles + fixed non-kernel
     overhead (calibrated at 80% of the target render's kernel cycles) *)
  let overhead =
    float_of_int r_t.Apps.Raytracer.stats.Apps.Raytracer.kernel_cycles *. 0.8
  in
  let total_cycles (r : Apps.Raytracer.full) =
    float_of_int r.Apps.Raytracer.stats.Apps.Raytracer.kernel_cycles +. overhead
  in
  let speedup r = (total_cycles r_t /. total_cycles r -. 1.) *. 100. in
  Printf.printf "end-to-end cycle-model speedup:\n";
  Printf.printf "  bit-wise rewrites      : %.1f%% (paper: 30.2%%)\n" (speedup r_b);
  Printf.printf "  + lower-precision Delta: %.1f%% (paper: 36.6%%)\n" (speedup r_l);
  run_frontier_curve ()
