(* Figure 4: LOC and speedup versus η for the libimf kernels sin, log, tan
   (a–c), and the ULP error curves of the discovered rewrites (d–f).

   Paper shape: as η grows from 1 to 10^18, rewrites interpolate from the
   full double-precision kernel down to (nearly) the empty program, with
   speedups growing smoothly toward ~6x; the η = 5·10^9 and 4·10^12 lines
   correspond to single- and half-precision budgets. *)

let kernels = [ ("sin", Kernels.Libimf.sin_spec); ("log", Kernels.Libimf.log_spec);
                ("tan", Kernels.Libimf.tan_spec) ]

let run_sweep name (spec : Sandbox.Spec.t) =
  Util.subheading (Printf.sprintf "Fig 4: %s — LOC / speedup vs eta" name);
  let target_loc = Program.length spec.Sandbox.Spec.program in
  let target_lat = Latency.of_program spec.Sandbox.Spec.program in
  Printf.printf "ref: LOC=%d cycles=%d speedup=1.00\n" target_loc target_lat;
  Printf.printf "%-10s %5s %7s %8s %14s\n" "eta" "LOC" "cycles" "speedup" "validated-err";
  let points =
    Stoke.precision_sweep
      ~config:(Util.search_config ~proposals:40_000 ())
      ~validate_results:false ~tests:24 ~obs:(Util.obs ()) ~seed:41L spec
  in
  let rewrites =
    List.map
      (fun (p : Stoke.sweep_point) ->
        (* quick validation pass per point *)
        let v =
          Validate.Driver.run
            ~obs:(Util.obs ())
            ~config:(Util.validate_config ~proposals:30_000 ())
            ~eta:p.Stoke.eta
            (Validate.Errfn.create spec ~rewrite:p.Stoke.rewrite)
        in
        Printf.printf "%-10s %5d %7d %8.2f %14s\n"
          (Util.eta_to_string p.Stoke.eta)
          p.Stoke.loc p.Stoke.latency p.Stoke.speedup
          (Ulp.to_string v.Validate.Driver.max_err);
        (p.Stoke.eta, p.Stoke.rewrite))
      points
  in
  (* error curves over the input range for a subset of rewrites (Fig 4 d-f) *)
  Util.subheading (Printf.sprintf "Fig 4: %s — ULP error curves" name);
  let grid = Util.input_grid spec 9 in
  Printf.printf "%-10s" "eta\\x";
  Array.iter (fun x -> Printf.printf " %9.3f" x) grid;
  print_newline ();
  List.iteri
    (fun i (eta, rewrite) ->
      if i mod 2 = 1 then begin
        let curve = Stoke.error_curve spec rewrite ~inputs:grid in
        Printf.printf "%-10s" (Util.eta_to_string eta);
        Array.iter (fun u -> Printf.printf " %9.2e" (Ulp.to_float u)) curve;
        print_newline ()
      end)
    rewrites

let run () =
  Util.heading
    "Figure 4 — libimf kernels: precision/performance interpolation";
  Printf.printf
    "(reference lines: eta = 5e9 ~ single precision, 4e12 ~ half precision)\n";
  List.iter (fun (name, spec) -> run_sweep name spec) kernels
