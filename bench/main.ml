(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6).  Run everything with `dune exec bench/main.exe`, or a
   single experiment by name, e.g. `dune exec bench/main.exe -- fig9`.
   Budgets scale with the STOKE_BENCH_SCALE environment variable. *)

let experiments =
  [
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6-8", Aek_bench.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("tput", Tput.run);
    ("ablations", Ablations.run);
    ("verify", Verify_bench.run);
    ("smoke", Smoke.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: args when args <> [] -> args
    | _ -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> Util.with_trace name run
      | None ->
        Printf.eprintf "unknown experiment %S (known: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    requested;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
