(* Figure 5: the S3D diffusion leaf task.

   (a) LOC/speedup of the exp kernel versus η, with the whole-task speedup
   of the diffusion leaf task (dashed curve in the paper) and the largest
   η the task tolerates end-to-end (vertical bar; paper: η = 10^7 giving a
   2x exp speedup and a 27% task speedup).
   (b) error curves of the exp rewrites; the paper reports a validated
   maximum of 1,730,391 ULPs for its chosen rewrite. *)

let spec = Kernels.S3d.exp_spec

let run () =
  Util.heading "Figure 5 — S3D diffusion leaf task (exp kernel)";
  let diffusion_cfg =
    { Apps.Diffusion.default_config with Apps.Diffusion.nx = 12; ny = 12 }
  in
  let baseline = Apps.Diffusion.run diffusion_cfg in
  Printf.printf
    "diffusion baseline: %d exp calls, exp fraction %.0f%% of %d cycles\n"
    baseline.Apps.Diffusion.exp_calls
    (100.
    *. float_of_int baseline.Apps.Diffusion.exp_cycles
    /. float_of_int baseline.Apps.Diffusion.total_cycles)
    baseline.Apps.Diffusion.total_cycles;
  Printf.printf "%-10s %5s %7s %11s %13s %9s\n" "eta" "LOC" "cycles"
    "exp-speedup" "task-speedup" "tolerated";
  let points =
    Stoke.precision_sweep
      ~config:(Util.search_config ~proposals:40_000 ())
      ~tests:24 ~obs:(Util.obs ()) ~seed:51L spec
  in
  let chosen = ref None in
  let rewrites =
    List.map
      (fun (p : Stoke.sweep_point) ->
        let o = Apps.Diffusion.run ~exp_program:p.Stoke.rewrite diffusion_cfg in
        let task_speedup = Apps.Diffusion.speedup ~baseline o in
        let ok = Apps.Diffusion.tolerates ~baseline o in
        if ok then begin
          match !chosen with
          | Some (_, s) when s >= task_speedup -> ()
          | _ -> chosen := Some (p, task_speedup)
        end;
        Printf.printf "%-10s %5d %7d %11.2f %13.2f %9b\n"
          (Util.eta_to_string p.Stoke.eta)
          p.Stoke.loc p.Stoke.latency p.Stoke.speedup task_speedup ok;
        (p.Stoke.eta, p.Stoke.rewrite))
      points
  in
  (match !chosen with
   | None -> Printf.printf "no tolerated rewrite beats the target\n"
   | Some (p, s) ->
     Printf.printf
       "max tolerated point: eta=%s -> exp %.2fx, task %.2fx (paper: eta=1e7, exp 2x, task 1.27x)\n"
       (Util.eta_to_string p.Stoke.eta) p.Stoke.speedup s;
     (* validated bound for the chosen rewrite, as in Fig 5(b)'s highlighted
        curve (paper: 1,730,391 ULPs for its eta=1e7 rewrite) *)
     let v =
       Validate.Driver.run
         ~obs:(Util.obs ())
         ~config:(Util.validate_config ~proposals:80_000 ())
         ~eta:p.Stoke.eta
         (Validate.Errfn.create spec ~rewrite:p.Stoke.rewrite)
     in
     Printf.printf "validated max error of chosen rewrite: %s ULPs (Geweke Z=%.2f)\n"
       (Ulp.to_string v.Validate.Driver.max_err)
       v.Validate.Driver.geweke_z);
  Util.subheading "Fig 5(b): exp rewrite error curves";
  let grid = Util.input_grid spec 9 in
  Printf.printf "%-10s" "eta\\x";
  Array.iter (fun x -> Printf.printf " %9.3f" x) grid;
  print_newline ();
  List.iteri
    (fun i (eta, rewrite) ->
      if i mod 2 = 1 then begin
        let curve = Stoke.error_curve spec rewrite ~inputs:grid in
        Printf.printf "%-10s" (Util.eta_to_string eta);
        Array.iter (fun u -> Printf.printf " %9.2e" (Ulp.to_float u)) curve;
        print_newline ()
      end)
    rewrites
