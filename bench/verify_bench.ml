(* Static-verification bench: run the three-tier verifier over every
   shipped kernel/rewrite pair with a deterministic branch-and-bound
   budget, print the per-kernel table, and stream one [verify_kernel]
   event per pair into BENCH_verify.json.  The interval column is the old
   single-tier bound, so the table doubles as a record of how much the
   Taylor tier tightens it. *)

let pairs =
  List.map
    (fun (kname, spec) ->
      let shipped =
        match kname with
        | "sin" -> Some ("sin_assoc", Kernels.Libimf.sin_assoc_rewrite)
        | "scale" -> Some ("scale_rewrite", Kernels.Aek_kernels.scale_rewrite)
        | "dot" -> Some ("dot_rewrite", Kernels.Aek_kernels.dot_rewrite)
        | "add" -> Some ("add_rewrite", Kernels.Aek_kernels.add_rewrite)
        | "delta" -> Some ("delta_rewrite", Kernels.Aek_kernels.delta_rewrite)
        | _ -> None
      in
      match shipped with
      | Some (label, p) -> (kname, spec, label, p)
      | None -> (kname, spec, "self", spec.Sandbox.Spec.program))
    (Kernels.Libimf.all
    @ [ ("s3d_exp", Kernels.S3d.exp_spec) ]
    @ Kernels.Aek_kernels.all_specs)

let taylor =
  (* deterministic: budget by boxes, not wall clock *)
  { Verify.Bbound.default_config with Verify.Bbound.timeout_s = 0. }

let tier = function
  | Verify.Verifier.Proved_bitwise -> "bitwise"
  | Verify.Verifier.Taylor_bound _ -> "taylor"
  | Verify.Verifier.Static_bound _ -> "interval"
  | Verify.Verifier.Refuted_bitwise | Verify.Verifier.Not_verifiable _ -> "-"

let run () =
  Util.heading "Static verification: per-kernel tiers and sound bounds";
  Printf.printf "%-10s %-16s %-9s %13s %13s %8s %7s %9s\n" "kernel" "rewrite"
    "tier" "sound-ulps" "interval-ulps" "boxes" "depth" "secs";
  List.iter
    (fun (kname, spec, label, rewrite) ->
      let t0 = Unix.gettimeofday () in
      let outcome = Stoke.verify ~taylor ~eta:0L spec rewrite in
      let elapsed = Unix.gettimeofday () -. t0 in
      let sound = Verify.Verifier.sound_ulps outcome in
      let interval_ulps =
        match Verify.Interval.static_ulp_bound spec ~rewrite with
        | Ok a -> Some a.Verify.Interval.bound_ulps
        | Error _ -> None
      in
      let boxes, depth =
        match outcome with
        | Verify.Verifier.Taylor_bound a ->
          (a.Verify.Taylor.boxes_explored, a.Verify.Taylor.depth)
        | _ -> (0, 0)
      in
      let fmt_opt = function
        | None -> "-"
        | Some x -> Printf.sprintf "%.3g" x
      in
      Printf.printf "%-10s %-16s %-9s %13s %13s %8d %7d %9.3f\n" kname label
        (tier outcome) (fmt_opt sound) (fmt_opt interval_ulps) boxes depth
        elapsed;
      Obs.Sink.emit (Util.obs ()) "verify_kernel"
        [
          ("kernel", Obs.Json.String kname);
          ("rewrite", Obs.Json.String label);
          ("tier", Obs.Json.String (tier outcome));
          ( "sound_ulps",
            match sound with
            | None -> Obs.Json.Null
            | Some s -> Obs.Json.Float s );
          ( "interval_ulps",
            match interval_ulps with
            | None -> Obs.Json.Null
            | Some i -> Obs.Json.Float i );
          ("boxes_explored", Obs.Json.Int boxes);
          ("depth", Obs.Json.Int depth);
          ("elapsed_s", Obs.Json.Float elapsed);
        ])
    pairs
