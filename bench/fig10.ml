(* Figure 10: comparison of alternate stochastic search procedures — pure
   random search, greedy hill-climbing, simulated annealing, and MCMC —
   for both optimization (a–d) and validation (e–h), on the libimf kernels
   at η = 10^6.

   Paper shape: for optimization, random search never improves on the
   target while MCMC wins (hill-climbing close behind, annealing slower);
   for validation, MCMC and hill-climbing find comparable maxima and random
   search is inconsistent. *)

let eta = Ulp.of_float 1e6

let kernels =
  [ ("sin", Kernels.Libimf.sin_spec); ("log", Kernels.Libimf.log_spec);
    ("tan", Kernels.Libimf.tan_spec) ]

let strategies =
  [
    ("rand", Search.Strategy.Random_walk);
    ("hill", Search.Strategy.Hill);
    ("anneal", Search.Strategy.default_anneal);
    ("mcmc", Search.Strategy.Mcmc { beta = 1.0 });
  ]

let run_optimization () =
  Util.subheading "Fig 10(a-d): optimization, normalized best cost vs iterations";
  List.iter
    (fun (kname, spec) ->
      Printf.printf "\n[%s] eta=1e6\n" kname;
      let tests = Stoke.make_tests ~n:16 ~seed:101L spec in
      let results =
        List.map
          (fun (sname, strategy) ->
            let ctx =
              Search.Cost.create spec (Search.Cost.default_params ~eta) tests
            in
            let config =
              {
                (Util.search_config ~proposals:30_000 ~seed:102L ()) with
                Search.Optimizer.strategy;
                trace_points = 10;
              }
            in
            (sname, Search.Optimizer.run ~obs:(Util.obs ()) ctx config))
          strategies
      in
      (* normalize to the target's initial cost *)
      let init_cost =
        let ctx = Search.Cost.create spec (Search.Cost.default_params ~eta) tests in
        (Search.Cost.eval_full ctx spec.Sandbox.Spec.program).Search.Cost.total
      in
      Printf.printf "%-8s" "iter";
      List.iter (fun (sname, _) -> Printf.printf " %10s" sname) results;
      print_newline ();
      let iters =
        match results with
        | (_, r) :: _ -> List.map (fun t -> t.Search.Optimizer.iter) r.Search.Optimizer.trace
        | [] -> []
      in
      List.iteri
        (fun i iter ->
          Printf.printf "%-8d" iter;
          List.iter
            (fun (_, r) ->
              let t = List.nth r.Search.Optimizer.trace i in
              Printf.printf " %10.1f" (100. *. t.Search.Optimizer.best_total /. init_cost))
            results;
          print_newline ())
        iters;
      List.iter
        (fun (sname, r) ->
          let final =
            match r.Search.Optimizer.best_correct with
            | Some p -> Printf.sprintf "%d LOC / %d cycles" (Program.length p) (Latency.of_program p)
            | None -> "no eta-correct rewrite"
          in
          Printf.printf "  %-7s best: %s\n" sname final)
        results)
    kernels

(* When the budgeted search cannot improve a kernel at this η (sin cannot
   drop terms at 1e6 — its ULP error near the ±π zeros explodes), fall back
   to a hand-truncated variant (first Horner refinement removed) so the
   validation comparison still has a real error surface to explore. *)
let drop_first_horner_step (p : Program.t) =
  let instrs = Array.of_list (Program.instrs p) in
  let is op i = Opcode.equal (instrs.(i) : Instr.t).Instr.op op in
  let rec find i =
    if i + 3 >= Array.length instrs then None
    else if
      is Opcode.Mulsd i && is Opcode.Movabs (i + 1) && is Opcode.Movq (i + 2)
      && is Opcode.Addsd (i + 3)
    then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> p
  | Some i ->
    Program.of_instrs
      (Array.to_list instrs |> List.filteri (fun j _ -> j < i || j > i + 3))

let run_validation () =
  Util.subheading "Fig 10(e-h): validation, max error found vs iterations";
  List.iter
    (fun (kname, (spec : Sandbox.Spec.t)) ->
      (* fixed representative rewrite: the best MCMC result at eta=1e6 *)
      let rewrite =
        Util.best_rewrite spec
          (Stoke.optimize
             ~config:(Util.search_config ~proposals:30_000 ~seed:103L ())
             ~eta spec)
      in
      let rewrite =
        (* a same-length result means the search only reordered the target;
           fall back to the hand truncation so there is error to find *)
        if Program.length rewrite >= Program.length spec.Sandbox.Spec.program
        then drop_first_horner_step rewrite
        else rewrite
      in
      Printf.printf "\n[%s] rewrite: %d LOC (target %d)\n" kname
        (Program.length rewrite)
        (Program.length spec.Sandbox.Spec.program);
      let config =
        {
          (Util.validate_config ~proposals:40_000 ()) with
          Validate.Driver.z_threshold = 0.;  (* disable early exit: fixed budget *)
          trace_points = 8;
        }
      in
      let runs =
        List.map
          (fun strategy ->
            let e = Validate.Errfn.create spec ~rewrite in
            let name =
              match strategy with
              | `Random -> "rand"
              | `Hill -> "hill"
              | `Anneal -> "anneal"
              | `Mcmc -> "mcmc"
            in
            ( name,
              Validate.Driver.run_strategy ~obs:(Util.obs ()) ~config ~strategy
                ~eta e ))
          [ `Random; `Hill; `Anneal; `Mcmc ]
      in
      Printf.printf "%-8s" "iter";
      List.iter (fun (name, _) -> Printf.printf " %12s" name) runs;
      print_newline ();
      let iters =
        match runs with
        | (_, v) :: _ -> List.map (fun t -> t.Validate.Driver.iter) v.Validate.Driver.trace
        | [] -> []
      in
      List.iteri
        (fun i iter ->
          Printf.printf "%-8d" iter;
          List.iter
            (fun (_, v) ->
              match List.nth_opt v.Validate.Driver.trace i with
              | Some t -> Printf.printf " %12.3e" t.Validate.Driver.best_err
              | None -> Printf.printf " %12s" "-")
            runs;
          print_newline ())
        iters;
      List.iter
        (fun (name, v) ->
          Printf.printf "  %-7s max err: %s ULPs\n" name
            (Ulp.to_string v.Validate.Driver.max_err))
        runs)
    kernels

(* Acceptance check for the frontier mode: one warm `Stoke.frontier` run
   on the S3D exp kernel must emit the full speedup-vs-η curve with
   per-point validated error while spending ≤ 50% of the cold per-point
   sweep's summed proposal budget, and no warm point may be dominated by
   the cold run's (latency, validated error) pair at the same η. *)
let run_frontier_acceptance () =
  Util.subheading
    "frontier acceptance: warm vs cold full-curve run on the exp kernel";
  let spec = Kernels.S3d.exp_spec in
  let etas =
    [ 0L; Ulp.of_float 1e2; Ulp.of_float 1e4; Ulp.of_float 1e6;
      Ulp.of_float 1e8; Ulp.of_float 1e10; Ulp.of_float 1e12;
      Ulp.of_float 1e14 ]
  in
  let seed = 105L in
  let config = Util.search_config ~proposals:20_000 ~seed () in
  let validation = Util.validate_config () in
  let obs = Util.obs () in
  let run_mode warm =
    Stoke.frontier ~config ~validation ~etas ~tests:16 ~warm ~obs ~seed spec
  in
  let cold = run_mode false in
  let warm = run_mode true in
  let print_curve label (r : Search.Frontier.result) =
    Printf.printf "\n%s curve (%d proposals):\n" label
      r.Search.Frontier.total_proposals;
    Printf.printf "  %-10s %6s %8s %8s %14s %10s %4s\n" "eta" "LOC" "cycles"
      "speedup" "validated-err" "proposals" "dem";
    List.iter
      (fun (p : Search.Frontier.point) ->
        Printf.printf "  %-10s %6d %8d %8.2f %14s %10d %4d\n"
          (Ulp.to_string p.Search.Frontier.eta)
          p.Search.Frontier.loc p.Search.Frontier.latency
          p.Search.Frontier.speedup
          (match p.Search.Frontier.validated_err with
           | None -> "-"
           | Some e -> Ulp.to_string e)
          p.Search.Frontier.proposals_used p.Search.Frontier.demotions)
      r.Search.Frontier.points
  in
  print_curve "cold (one sweep per eta)" cold;
  print_curve "warm (single frontier walk)" warm;
  (* quality: at each η, the cold point must not strictly dominate the
     warm one on (latency, validated error bound) *)
  let dominated =
    List.fold_left
      (fun acc (w : Search.Frontier.point) ->
        match
          List.find_opt
            (fun (c : Search.Frontier.point) ->
              Int64.equal c.Search.Frontier.eta w.Search.Frontier.eta)
            cold.Search.Frontier.points
        with
        | Some c when Search.Frontier.dominates c w -> acc + 1
        | _ -> acc)
      0 warm.Search.Frontier.points
  in
  let frac =
    float_of_int warm.Search.Frontier.total_proposals
    /. float_of_int (max 1 cold.Search.Frontier.total_proposals)
  in
  let pass = frac <= 0.5 && dominated = 0 in
  Printf.printf
    "\nwarm run: %d of %d cold proposals (%.1f%%), %d demotions, %d \
     counterexamples, %d points dominated by cold -> %s (target: <=50%%, 0 \
     dominated)\n"
    warm.Search.Frontier.total_proposals cold.Search.Frontier.total_proposals
    (100. *. frac) warm.Search.Frontier.demotions
    warm.Search.Frontier.tests_added dominated
    (if pass then "PASS" else "WARN");
  Obs.Sink.emit obs "frontier_acceptance"
    [
      ("kernel", Obs.Json.String "s3d_exp");
      ("etas", Obs.Json.Int (List.length etas));
      ("cold_proposals", Obs.Json.Int cold.Search.Frontier.total_proposals);
      ("warm_proposals", Obs.Json.Int warm.Search.Frontier.total_proposals);
      ("budget_frac", Obs.Json.Float frac);
      ("dominated_points", Obs.Json.Int dominated);
      ("pass", Obs.Json.Bool pass);
    ]

let run () =
  Util.heading "Figure 10 — alternate search strategy comparison";
  run_optimization ();
  run_validation ();
  run_frontier_acceptance ()
