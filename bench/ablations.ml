(* Ablations of the design choices DESIGN.md calls out:

   1. the ⊕ reduction of Eq. 11: max (the paper's §5.2 choice) vs sum;
   2. the error metric of the cost function: ULP vs absolute vs relative
      (the paper's Figure 2 motivates ULPs) — run on log, whose outputs
      cross zero, which is exactly where the three metrics disagree;
   3. the annealing constant β of Eq. 4 (β→0 degenerates to a random walk,
      β→∞ to greedy hill-climbing);
   4. the proposal σ of the validation Gaussian (Eq. 16). *)

let spec = Kernels.Libimf.log_spec
let eta = Ulp.of_float 1e10

let describe name (r : Search.Optimizer.result) rewrite =
  Printf.printf "%-8s %6d %8d %7.1f%%\n" name (Program.length rewrite)
    (Latency.of_program rewrite)
    (100.
    *. float_of_int r.Search.Optimizer.accepted
    /. float_of_int (Stdlib.max 1 r.Search.Optimizer.proposals_made))

let search_with ?(params = Search.Cost.default_params ~eta)
    ?(strategy = Search.Strategy.Mcmc { beta = 1.0 }) ~seed () =
  let tests = Stoke.make_tests ~n:24 ~seed:201L spec in
  let ctx = Search.Cost.create spec params tests in
  let config =
    { (Util.search_config ~proposals:40_000 ~seed ()) with
      Search.Optimizer.strategy }
  in
  let r = Search.Optimizer.run ctx config in
  (r, Util.best_rewrite spec r)

let ablate_reduction () =
  Util.subheading "ablation: eq reduction operator (max vs sum), log @ eta=1e10";
  Printf.printf "%-8s %6s %8s %8s\n" "op" "LOC" "cycles" "accept";
  List.iter
    (fun (name, reduction) ->
      let params = { (Search.Cost.default_params ~eta) with Search.Cost.reduction } in
      let r, rewrite = search_with ~params ~seed:211L () in
      describe name r rewrite)
    [ ("max", Search.Cost.Max); ("sum", Search.Cost.Sum) ]

let ablate_metric () =
  Util.subheading "ablation: error metric (ULP vs abs vs rel), log @ eta=1e10";
  Printf.printf "%-8s %6s %8s %8s %18s\n" "metric" "LOC" "cycles" "accept"
    "true-max-ULP-err";
  List.iter
    (fun (name, metric) ->
      let params = { (Search.Cost.default_params ~eta) with Search.Cost.metric } in
      let r, rewrite = search_with ~params ~seed:212L () in
      (* measure the chosen rewrite's actual ULP error regardless of the
         metric used during search *)
      let v =
        Validate.Driver.run
          ~config:(Util.validate_config ~proposals:20_000 ())
          ~eta
          (Validate.Errfn.create spec ~rewrite)
      in
      Printf.printf "%-8s %6d %8d %7.1f%% %18s\n" name (Program.length rewrite)
        (Latency.of_program rewrite)
        (100.
        *. float_of_int r.Search.Optimizer.accepted
        /. float_of_int (Stdlib.max 1 r.Search.Optimizer.proposals_made))
        (Ulp.to_string v.Validate.Driver.max_err))
    [ ("ulp", Search.Cost.Ulp_metric); ("abs", Search.Cost.Abs_metric);
      ("rel", Search.Cost.Rel_metric) ]

let ablate_beta () =
  Util.subheading
    "ablation: annealing constant beta (Eq. 4), log @ eta=1e10";
  Printf.printf "%-8s %6s %8s %8s\n" "beta" "LOC" "cycles" "accept";
  List.iter
    (fun beta ->
      let r, rewrite =
        search_with ~strategy:(Search.Strategy.Mcmc { beta }) ~seed:213L ()
      in
      describe (Printf.sprintf "%g" beta) r rewrite)
    [ 1e-6; 0.01; 1.0; 1e6 ]

let ablate_sigma () =
  Util.subheading "ablation: validation proposal sigma (Eq. 16), truncated exp";
  let instrs = Program.instrs Kernels.S3d.exp_program in
  let truncated =
    Program.of_instrs (List.filteri (fun i _ -> i < 15 || i >= 19) instrs)
  in
  Printf.printf "%-6s %16s %10s %8s\n" "sigma" "max-ULP-found" "iterations"
    "mixed";
  List.iter
    (fun sigma ->
      let config =
        { (Util.validate_config ~proposals:30_000 ()) with Validate.Driver.sigma }
      in
      let v =
        Validate.Driver.run ~config ~eta:0L
          (Validate.Errfn.create Kernels.S3d.exp_spec ~rewrite:truncated)
      in
      Printf.printf "%-6.2f %16s %10d %8b\n" sigma
        (Ulp.to_string v.Validate.Driver.max_err)
        v.Validate.Driver.iterations v.Validate.Driver.mixed)
    [ 0.05; 0.5; 1.0; 3.0 ]

let ablate_perf_model () =
  Util.subheading
    "ablation: perf model (latency sum vs critical path), log @ eta=1e10";
  Printf.printf "%-6s %6s %8s %8s %8s\n" "model" "LOC" "sum" "path" "accept";
  List.iter
    (fun (name, perf_model) ->
      let params = { (Search.Cost.default_params ~eta) with Search.Cost.perf_model } in
      let r, rewrite = search_with ~params ~seed:214L () in
      Printf.printf "%-6s %6d %8d %8d %7.1f%%\n" name (Program.length rewrite)
        (Latency.of_program rewrite)
        (Critical_path.of_program rewrite)
        (100.
        *. float_of_int r.Search.Optimizer.accepted
        /. float_of_int (Stdlib.max 1 r.Search.Optimizer.proposals_made)))
    [ ("sum", Search.Cost.Sum_latency); ("path", Search.Cost.Critical_path) ]

(* Baseline comparison (§7's related work): mechanical double→single
   lowering versus STOKE at the single-precision budget η = 5e9. *)
let baseline_lowering () =
  Util.subheading
    "baseline: mechanical f64->f32 lowering vs STOKE @ eta_single";
  Printf.printf "%-8s %-28s %6s %8s %16s\n" "kernel" "method" "LOC" "cycles"
    "validated-err";
  List.iter
    (fun (name, (kspec : Sandbox.Spec.t)) ->
      let validated rewrite =
        let v =
          Validate.Driver.run
            ~config:(Util.validate_config ~proposals:20_000 ())
            ~eta:Ulp.eta_single
            (Validate.Errfn.create kspec ~rewrite)
        in
        Ulp.to_string v.Validate.Driver.max_err
      in
      Printf.printf "%-8s %-28s %6d %8d %16s\n" name "target (double)"
        (Program.length kspec.Sandbox.Spec.program)
        (Latency.of_program kspec.Sandbox.Spec.program)
        "0";
      (match Lowering.lower_to_single kspec.Sandbox.Spec.program ~abi:[ Reg.Xmm0 ] with
       | Ok lowered ->
         Printf.printf "%-8s %-28s %6d %8d %16s\n" name "mechanical lowering"
           (Program.length lowered) (Latency.of_program lowered)
           (validated lowered)
       | Error e -> Printf.printf "%-8s %-28s %s\n" name "mechanical lowering" e);
      let tests = Stoke.make_tests ~n:24 ~seed:201L kspec in
      let ctx =
        Search.Cost.create kspec (Search.Cost.default_params ~eta:Ulp.eta_single) tests
      in
      let r =
        Search.Optimizer.run ctx (Util.search_config ~proposals:40_000 ~seed:215L ())
      in
      let rewrite = Util.best_rewrite kspec r in
      Printf.printf "%-8s %-28s %6d %8d %16s\n" name "STOKE @ eta=5e9"
        (Program.length rewrite) (Latency.of_program rewrite)
        (validated rewrite))
    [ ("sin", Kernels.Libimf.sin_spec); ("tan", Kernels.Libimf.tan_spec);
      ("log", Kernels.Libimf.log_spec) ]

let run () =
  Util.heading "Ablation benches";
  ablate_reduction ();
  ablate_metric ();
  ablate_beta ();
  ablate_perf_model ();
  ablate_sigma ();
  baseline_lowering ()
