(* Pruning smoke check: run the same fixed-seed search with early
   termination on and off, assert the winners are bit-identical, and
   report how many test-case executions the cutoff + cache saved.  Small
   enough to ride along in `dune runtest` as an end-to-end guard on the
   search loop's equivalence invariant. *)

let kernels =
  [
    ("add", Kernels.Aek_kernels.add_spec);
    ("scale", Kernels.Aek_kernels.scale_spec);
  ]

let run_one name (spec : Sandbox.Spec.t) =
  let tests = Stoke.make_tests ~n:16 ~seed:7L spec in
  let params = Search.Cost.default_params ~eta:0L in
  let search prune =
    let ctx = Search.Cost.create ~use_cache:prune spec params tests in
    let config =
      { (Util.search_config ~proposals:3_000 ()) with
        Search.Optimizer.prune }
    in
    Search.Optimizer.run ~obs:(Util.obs ()) ctx config
  in
  let pruned = search true in
  let full = search false in
  let same =
    Program.equal pruned.Search.Optimizer.best_overall
      full.Search.Optimizer.best_overall
    && Int64.equal
         (Int64.bits_of_float
            pruned.Search.Optimizer.best_overall_cost.Search.Cost.total)
         (Int64.bits_of_float
            full.Search.Optimizer.best_overall_cost.Search.Cost.total)
    && (match
          pruned.Search.Optimizer.best_correct,
          full.Search.Optimizer.best_correct
        with
        | None, None -> true
        | Some p, Some q -> Program.equal p q
        | _ -> false)
  in
  if not same then begin
    Printf.eprintf "smoke: %s: pruned and full searches disagree!\n" name;
    exit 1
  end;
  let tp = pruned.Search.Optimizer.tests_executed in
  let tf = full.Search.Optimizer.tests_executed in
  let saved = 100. *. (1. -. (float_of_int tp /. float_of_int tf)) in
  Printf.printf
    "%-8s identical winners; tests executed %8d -> %8d  (%.1f%% saved, %d \
     pruned, %d cache hits)\n"
    name tf tp saved
    pruned.Search.Optimizer.pruned_evals
    pruned.Search.Optimizer.cache_hits

let run () =
  Util.heading "pruning smoke check (bit-identical winners, fewer test runs)";
  List.iter (fun (name, spec) -> run_one name spec) kernels
