(* Equivalence smoke check: run the same fixed-seed search under every
   engine × pruning combination, assert the winners are bit-identical,
   and report how many test-case executions the cutoff + cache saved.
   Small enough to ride along in `dune runtest` as an end-to-end guard on
   both equivalence invariants — pruned vs. full, and compiled vs.
   interpreted. *)

let kernels =
  [
    ("add", Kernels.Aek_kernels.add_spec);
    ("scale", Kernels.Aek_kernels.scale_spec);
  ]

let run_one name (spec : Sandbox.Spec.t) =
  let tests = Stoke.make_tests ~n:16 ~seed:7L spec in
  let params = Search.Cost.default_params ~eta:0L in
  let search engine prune =
    let ctx =
      Search.Cost.create ~use_cache:prune ~engine spec params tests
    in
    let config =
      { (Util.search_config ~proposals:3_000 ()) with
        Search.Optimizer.prune;
        engine }
    in
    Search.Optimizer.run ~obs:(Util.obs ()) ctx config
  in
  let full = search Sandbox.Exec.Interp false in
  let agrees (r : Search.Optimizer.result) =
    Program.equal r.Search.Optimizer.best_overall
      full.Search.Optimizer.best_overall
    && Int64.equal
         (Int64.bits_of_float
            r.Search.Optimizer.best_overall_cost.Search.Cost.total)
         (Int64.bits_of_float
            full.Search.Optimizer.best_overall_cost.Search.Cost.total)
    && r.Search.Optimizer.accepted = full.Search.Optimizer.accepted
    && (match
          r.Search.Optimizer.best_correct, full.Search.Optimizer.best_correct
        with
        | None, None -> true
        | Some p, Some q -> Program.equal p q
        | _ -> false)
  in
  let pruned = search Sandbox.Exec.Compiled true in
  let native = Sandbox.Native.available () in
  if not native then
    Printf.printf
      "%-8s native engine unavailable here (mmap-exec denied); checking 3 \
       engines\n"
      name;
  List.iter
    (fun (label, r) ->
      if not (agrees r) then begin
        Printf.eprintf "smoke: %s: %s search disagrees with interp/full!\n"
          name label;
        exit 1
      end)
    ([
       ("interp+prune", search Sandbox.Exec.Interp true);
       ("compiled", search Sandbox.Exec.Compiled false);
       ("compiled+prune", pruned);
       ("batched", search Sandbox.Exec.Batched false);
       ("batched+prune", search Sandbox.Exec.Batched true);
     ]
    @
    if native then
      [
        ("native", search Sandbox.Exec.Native false);
        ("native+prune", search Sandbox.Exec.Native true);
      ]
    else []);
  let tp = pruned.Search.Optimizer.tests_executed in
  let tf = full.Search.Optimizer.tests_executed in
  let saved = 100. *. (1. -. (float_of_int tp /. float_of_int tf)) in
  Printf.printf
    "%-8s identical winners (%d engines x prune on/off); tests executed %8d \
     -> %8d  (%.1f%% saved, %d pruned, %d cache hits, %d compiles)\n"
    name
    (if native then 4 else 3)
    tf tp saved
    pruned.Search.Optimizer.pruned_evals
    pruned.Search.Optimizer.cache_hits
    pruned.Search.Optimizer.compile_count

(* Frontier smoke: the cold frontier walk must reproduce the historical
   per-point sweep bit-identically (the sweep is now a wrapper over it),
   and a warm walk on the same grid must stay within the cold proposal
   budget while keeping its Pareto set free of dominated points. *)
let run_frontier () =
  let spec = Kernels.Aek_kernels.add_spec in
  let etas = [ 0L; Ulp.of_float 1e6; Ulp.of_float 1e12 ] in
  let seed = 11L in
  let config = Util.search_config ~proposals:3_000 ~seed () in
  let tests = Stoke.make_tests ~n:16 ~seed spec in
  let target = spec.Sandbox.Spec.program in
  let target_latency = Latency.of_program target in
  (* the pre-frontier sweep, inlined: one cold search per η, falling back
     to the target when nothing η-correct and no slower appears *)
  let legacy =
    List.map
      (fun eta ->
        let params = Search.Cost.default_params ~eta in
        let ctx =
          Search.Cost.create ~use_cache:config.Search.Optimizer.prune
            ~engine:config.Search.Optimizer.engine spec params tests
        in
        let r = Search.Optimizer.run ~obs:(Util.obs ()) ctx config in
        match r.Search.Optimizer.best_correct with
        | Some p when Latency.of_program p <= target_latency -> p
        | _ -> target)
      etas
  in
  let points = Stoke.precision_sweep ~config ~etas ~tests:16 ~seed spec in
  List.iter2
    (fun expected (p : Stoke.sweep_point) ->
      if not (Program.equal expected p.Stoke.rewrite) then begin
        Printf.eprintf
          "smoke: cold frontier diverged from the legacy sweep at eta %s!\n"
          (Ulp.to_string p.Stoke.eta);
        exit 1
      end)
    legacy points;
  let fr =
    Stoke.frontier ~config ~validate_results:false ~etas ~tests:16 ~seed spec
  in
  if fr.Search.Frontier.total_proposals > fr.Search.Frontier.cold_budget then begin
    Printf.eprintf "smoke: warm frontier exceeded the cold budget!\n";
    exit 1
  end;
  let pareto = fr.Search.Frontier.pareto in
  List.iter
    (fun p ->
      if
        List.exists
          (fun q -> p != q && Search.Frontier.dominates q p)
          pareto
      then begin
        Printf.eprintf "smoke: frontier retained a dominated point!\n";
        exit 1
      end)
    pareto;
  Printf.printf
    "frontier cold walk == legacy sweep (3 etas, bit-identical); warm walk \
     spent %d of %d cold proposals (%.0f%%), pareto %d points, none dominated\n"
    fr.Search.Frontier.total_proposals fr.Search.Frontier.cold_budget
    (100.
    *. float_of_int fr.Search.Frontier.total_proposals
    /. float_of_int fr.Search.Frontier.cold_budget)
    (List.length pareto)

let run () =
  Util.heading
    "equivalence smoke check (bit-identical winners across engines and \
     pruning)";
  List.iter (fun (name, spec) -> run_one name spec) kernels;
  run_frontier ()
