(* Serve daemon tests: protocol round-trips, an end-to-end smoke test
   over a real Unix-domain socket, memo-table hits (zero new proposals,
   surviving restarts), and kill-and-resume durability (the resumed
   winner is bit-identical to an uninterrupted run).

   Socket tests skip gracefully on platforms where Unix-domain sockets
   are unavailable. *)

let ctr = ref 0

let tmpdir () =
  incr ctr;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stoke-serve-%d-%d" (Unix.getpid ()) !ctr)
  in
  Unix.mkdir d 0o755;
  d

let sockets_available =
  lazy
    (let d = tmpdir () in
     let path = Filename.concat d "probe.sock" in
     match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
     | exception _ -> false
     | fd -> (
       match
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 1
       with
       | () ->
         Unix.close fd;
         (try Unix.unlink path with Unix.Unix_error _ -> ());
         true
       | exception _ ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         false))

let require_sockets () =
  if not (Lazy.force sockets_available) then Alcotest.skip ()

let wait_for ~timeout_s ~what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.01;
      loop ()
    end
  in
  loop ()

let get_ok ~what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let field ev name = List.assoc_opt name ev.Obs.Sink.fields

let bool_field ev name =
  match field ev name with Some (Obs.Json.Bool b) -> b | _ -> false

let test_kernels = [ ("add", Kernels.Aek_kernels.add_spec) ]

let mk_config dir =
  let cfg =
    Serve.Server.default_config
      ~socket_path:(Filename.concat dir "s.sock")
      ~state_dir:(Filename.concat dir "state")
      ~kernels:test_kernels
  in
  { cfg with Serve.Server.checkpoint_every_s = 0.02 }

let opt_request ?(proposals = 2000) ?(seed = 3) () =
  {
    Serve.Protocol.kernel = "add";
    tenant = Serve.Protocol.default_tenant;
    deadline_s = None;
    action = Serve.Protocol.Optimize { eta = 0.; proposals; seed; domains = 1 };
  }

let control_request action =
  {
    Serve.Protocol.kernel = "";
    tenant = Serve.Protocol.default_tenant;
    deadline_s = None;
    action;
  }

(* Run the daemon on a thread inside this process; returns once the
   socket is listening. *)
let start_inproc cfg =
  let started = ref false in
  let th =
    Thread.create
      (fun () ->
        Serve.Server.run ~on_ready:(fun (_ : Serve.Server.t) -> started := true)
          cfg)
      ()
  in
  wait_for ~timeout_s:10. ~what:"server startup" (fun () -> !started);
  th

let stop_inproc cfg th =
  let term =
    get_ok ~what:"shutdown"
      (Serve.Client.submit
         ~socket_path:cfg.Serve.Server.socket_path
         (control_request Serve.Protocol.Shutdown))
  in
  Alcotest.(check string) "shutdown acknowledged" "ok" (Serve.Client.job_status term);
  Thread.join th

(* Fork the daemon as a real child process (so it can be SIGKILLed);
   returns its pid once the socket is listening. *)
let fork_server cfg =
  (* a SIGKILLed daemon leaves its socket file behind; remove it so the
     file reappearing means the new daemon is listening *)
  (try Unix.unlink cfg.Serve.Server.socket_path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
    (try Serve.Server.run cfg with _ -> ());
    Unix._exit 0
  | pid ->
    wait_for ~timeout_s:10. ~what:"forked server socket" (fun () ->
        Sys.file_exists cfg.Serve.Server.socket_path);
    pid

let protocol_tests =
  [
    Alcotest.test_case "requests round-trip through JSON" `Quick (fun () ->
        let reqs =
          [
            opt_request ();
            {
              Serve.Protocol.kernel = "dot";
              tenant = "team-a";
              deadline_s = Some 2.5;
              action =
                Serve.Protocol.Frontier
                  { etas = [ 0.; 1e6 ]; proposals = 500; seed = 9 };
            };
            {
              Serve.Protocol.kernel = "add";
              tenant = Serve.Protocol.default_tenant;
              deadline_s = None;
              action =
                Serve.Protocol.Validate
                  { eta = 4.; rewrite = "addsd xmm0, xmm1"; seed = 7 };
            };
            control_request Serve.Protocol.Ping;
            control_request Serve.Protocol.Shutdown;
          ]
        in
        List.iter
          (fun req ->
            let line = Serve.Protocol.request_to_string req in
            let back =
              get_ok ~what:"parse" (Serve.Protocol.request_of_string line)
            in
            Alcotest.(check string)
              (Serve.Protocol.op_name req.Serve.Protocol.action
              ^ " round-trips")
              line
              (Serve.Protocol.request_to_string back))
          reqs);
    Alcotest.test_case "garbage lines are rejected" `Quick (fun () ->
        (match Serve.Protocol.request_of_string "not json" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "parsed garbage");
        match Serve.Protocol.request_of_string {|{"op": "launch_missiles"}|} with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "parsed unknown op");
    Alcotest.test_case "job-defining fields are strict" `Quick (fun () ->
        (* present-but-malformed fields must reject the request, not
           silently run an expensive job with unintended parameters *)
        let reject what line =
          match Serve.Protocol.request_of_string line with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted %s" what
        in
        reject "optimize without eta" {|{"op":"optimize","kernel":"add"}|};
        reject "optimize without kernel" {|{"op":"optimize","eta":0}|};
        reject "non-numeric proposals"
          {|{"op":"optimize","kernel":"add","eta":0,"proposals":"many"}|};
        reject "non-numeric seed"
          {|{"op":"optimize","kernel":"add","eta":0,"seed":null}|};
        reject "non-numeric deadline"
          {|{"op":"optimize","kernel":"add","eta":0,"deadline_s":"soon"}|};
        reject "validate without eta"
          {|{"op":"validate","kernel":"add","rewrite":"addsd xmm0, xmm1"}|};
        reject "frontier with a non-numeric eta"
          {|{"op":"frontier","kernel":"add","etas":[0,"tight"]}|};
        (* absent optional fields still default *)
        match
          Serve.Protocol.request_of_string
            {|{"op":"optimize","kernel":"add","eta":0}|}
        with
        | Ok
            {
              Serve.Protocol.action =
                Serve.Protocol.Optimize { proposals; seed; domains; _ };
              _;
            } ->
          Alcotest.(check int) "default proposals" 200_000 proposals;
          Alcotest.(check int) "default seed" 1 seed;
          Alcotest.(check int) "default domains" 1 domains
        | Ok _ -> Alcotest.fail "parsed to a different action"
        | Error e -> Alcotest.failf "rejected a minimal request: %s" e);
  ]

(* Kill-and-resume durability.  This test forks, so it runs before any
   test that spawns threads in this process. *)
let durability_tests =
  [
    Alcotest.test_case "SIGKILL mid-job, resume matches uninterrupted run"
      `Slow (fun () ->
        require_sockets ();
        let spec = List.assoc "add" test_kernels in
        let proposals = 60_000 and seed = 11 in
        let req = opt_request ~proposals ~seed () in
        (* Unix.fork is forbidden once any domain has been spawned in
           this process, so the forking happens first and the in-process
           reference run (which spawns a search domain) last. *)
        let cfg = mk_config (tmpdir ()) in
        let sock = cfg.Serve.Server.socket_path in
        let state = cfg.Serve.Server.state_dir in
        let state_files suffix () =
          Sys.file_exists state
          && Array.exists
               (fun f -> Filename.check_suffix f suffix)
               (Sys.readdir state)
        in
        (* First daemon: submit, wait for a checkpoint, SIGKILL. *)
        let pid1 = fork_server cfg in
        let conn = get_ok ~what:"connect" (Serve.Client.connect ~socket_path:sock) in
        get_ok ~what:"send" (Serve.Client.send conn req);
        wait_for ~timeout_s:60. ~what:"a checkpoint on disk" (fun () ->
            state_files ".snap" () || state_files ".result.json" ());
        let finished_before_kill = state_files ".result.json" () in
        Unix.kill pid1 Sys.sigkill;
        ignore (Unix.waitpid [] pid1);
        Serve.Client.close conn;
        (* Second daemon, same state dir: the resubmitted job resumes
           from the checkpoint and lands on the same winner. *)
        let pid2 = fork_server cfg in
        let term =
          get_ok ~what:"resubmit" (Serve.Client.submit ~socket_path:sock req)
        in
        Alcotest.(check string) "job ok" "ok" (Serve.Client.job_status term);
        if not finished_before_kill then begin
          Alcotest.(check bool)
            "resumed from the checkpoint" true (bool_field term "resumed");
          Alcotest.(check bool) "not a cache hit" false (bool_field term "cached")
        end;
        let result =
          match Serve.Client.job_result term with
          | Some r -> Obs.Json.to_string r
          | None -> Alcotest.fail "job_end carried no result"
        in
        let term =
          get_ok ~what:"shutdown"
            (Serve.Client.submit ~socket_path:sock
               (control_request Serve.Protocol.Shutdown))
        in
        Alcotest.(check string) "shutdown ok" "ok" (Serve.Client.job_status term);
        ignore (Unix.waitpid [] pid2);
        (* The uninterrupted reference: exactly the run the daemon plans
           for this request (same config, params, tests, domains). *)
        let config =
          {
            Search.Optimizer.default_config with
            Search.Optimizer.proposals;
            seed = Int64.of_int seed;
          }
        in
        let tests = Stoke.make_tests ~seed:(Int64.of_int (seed + 100)) spec in
        let params = Search.Cost.default_params ~eta:0L in
        let reference =
          Search.Parallel.run ~domains:1 ~spec ~params ~tests ~config ()
        in
        let expected =
          Obs.Json.to_string (Serve.Protocol.optimize_result_json spec reference)
        in
        Alcotest.(check string)
          "resumed result is bit-identical to the uninterrupted run" expected
          result);
  ]

let smoke_tests =
  [
    Alcotest.test_case "ping, optimize, memo hit, restart persistence"
      `Slow (fun () ->
        require_sockets ();
        let cfg = mk_config (tmpdir ()) in
        let sock = cfg.Serve.Server.socket_path in
        let th = start_inproc cfg in
        (* liveness *)
        let term =
          get_ok ~what:"ping"
            (Serve.Client.submit ~socket_path:sock
               (control_request Serve.Protocol.Ping))
        in
        Alcotest.(check string) "pong" "pong" term.Obs.Sink.name;
        (* unknown kernels are refused, not crashed on *)
        let term =
          get_ok ~what:"bad kernel"
            (Serve.Client.submit ~socket_path:sock
               { (opt_request ()) with Serve.Protocol.kernel = "no-such" })
        in
        Alcotest.(check string)
          "unknown kernel is an error" "error" (Serve.Client.job_status term);
        (* a real job streams its telemetry and ends with the result *)
        let req = opt_request ~proposals:2000 ~seed:3 () in
        let names = ref [] in
        let term =
          get_ok ~what:"optimize"
            (Serve.Client.submit ~socket_path:sock
               ~on_event:(fun ev -> names := ev.Obs.Sink.name :: !names)
               req)
        in
        Alcotest.(check string) "job ok" "ok" (Serve.Client.job_status term);
        Alcotest.(check bool) "fresh run" false (bool_field term "cached");
        List.iter
          (fun n ->
            Alcotest.(check bool)
              (Printf.sprintf "stream contains %s" n)
              true (List.mem n !names))
          [ "job_submit"; "job_start"; "search_start"; "search_end"; "job_end" ];
        let first_result =
          match Serve.Client.job_result term with
          | Some r -> Obs.Json.to_string r
          | None -> Alcotest.fail "no result payload"
        in
        (* the identical request is a memo hit: no search runs at all *)
        let names2 = ref [] in
        let term2 =
          get_ok ~what:"memo hit"
            (Serve.Client.submit ~socket_path:sock
               ~on_event:(fun ev -> names2 := ev.Obs.Sink.name :: !names2)
               req)
        in
        Alcotest.(check string) "cached job ok" "ok" (Serve.Client.job_status term2);
        Alcotest.(check bool) "cached flag" true (bool_field term2 "cached");
        Alcotest.(check bool) "cache_hit event" true (List.mem "cache_hit" !names2);
        List.iter
          (fun n ->
            Alcotest.(check bool)
              (Printf.sprintf "no %s on a cache hit" n)
              false (List.mem n !names2))
          [ "search_start"; "progress"; "chain_start"; "job_start" ];
        (match Serve.Client.job_result term2 with
        | Some r ->
          Alcotest.(check string)
            "cached result is byte-identical" first_result
            (Obs.Json.to_string r)
        | None -> Alcotest.fail "cached job_end carried no result");
        stop_inproc cfg th;
        (* the memo survives a daemon restart *)
        let th = start_inproc cfg in
        let term3 =
          get_ok ~what:"memo after restart"
            (Serve.Client.submit ~socket_path:sock req)
        in
        Alcotest.(check bool)
          "memo hit after restart" true (bool_field term3 "cached");
        stop_inproc cfg th);
    Alcotest.test_case "a deadline-truncated run is not memoized" `Slow
      (fun () ->
        require_sockets ();
        let cfg = mk_config (tmpdir ()) in
        let sock = cfg.Serve.Server.socket_path in
        let th = start_inproc cfg in
        let req = opt_request ~proposals:500_000 ~seed:5 () in
        let truncated = { req with Serve.Protocol.deadline_s = Some 0.05 } in
        let term =
          get_ok ~what:"truncated job"
            (Serve.Client.submit ~socket_path:sock truncated)
        in
        Alcotest.(check string)
          "partial result still delivered" "ok" (Serve.Client.job_status term);
        let stop_reason =
          match Serve.Client.job_result term with
          | Some r -> (
            match Obs.Json.member "stop_reason" r with
            | Some (Obs.Json.String s) -> s
            | _ -> "")
          | None -> ""
        in
        (* 500k proposals in 50 ms is beyond this hardware; but if the
           run somehow completed, memoizing it was correct and the
           regression below is vacuous *)
        if stop_reason = "deadline" then begin
          let term2 =
            get_ok ~what:"resubmit"
              (Serve.Client.submit ~socket_path:sock truncated)
          in
          Alcotest.(check bool)
            "the truncation was not served from the memo" false
            (bool_field term2 "cached")
        end;
        stop_inproc cfg th);
    Alcotest.test_case "graceful drain pauses a job instead of memoizing it"
      `Slow (fun () ->
        require_sockets ();
        let cfg = mk_config (tmpdir ()) in
        let sock = cfg.Serve.Server.socket_path in
        let th = start_inproc cfg in
        let req = opt_request ~proposals:200_000 ~seed:13 () in
        (* submit a long job, then shut the daemon down mid-run: the job
           is cancelled, its partial result delivered but NOT memoized *)
        let started = ref false in
        let terminal = ref None in
        let submitter =
          Thread.create
            (fun () ->
              terminal :=
                Some
                  (Serve.Client.submit ~socket_path:sock
                     ~on_event:(fun ev ->
                       if ev.Obs.Sink.name = "job_start" then started := true)
                     req))
            ()
        in
        wait_for ~timeout_s:30. ~what:"job_start" (fun () -> !started);
        Unix.sleepf 0.1 (* let a checkpoint land *);
        stop_inproc cfg th;
        Thread.join submitter;
        let term =
          match !terminal with
          | Some t -> get_ok ~what:"cancelled job" t
          | None -> Alcotest.fail "submitter returned nothing"
        in
        Alcotest.(check string)
          "partial result still delivered" "ok" (Serve.Client.job_status term);
        let stop_reason =
          match Serve.Client.job_result term with
          | Some r -> (
            match Obs.Json.member "stop_reason" r with
            | Some (Obs.Json.String s) -> s
            | _ -> "")
          | None -> ""
        in
        (* restart on the same state dir and resubmit: the job must
           resume from its checkpoint, not hit the memo with the
           truncated result *)
        let th = start_inproc cfg in
        let term2 =
          get_ok ~what:"resubmit after drain"
            (Serve.Client.submit ~socket_path:sock req)
        in
        Alcotest.(check string)
          "resumed job completes" "ok" (Serve.Client.job_status term2);
        if stop_reason = "cancelled" then
          Alcotest.(check bool)
            "the truncation was not served from the memo" false
            (bool_field term2 "cached");
        (match Serve.Client.job_result term2 with
        | Some r ->
          Alcotest.(check string) "second run finishes its budget" "exhausted"
            (match Obs.Json.member "stop_reason" r with
            | Some (Obs.Json.String s) -> s
            | _ -> "")
        | None -> Alcotest.fail "no result payload");
        stop_inproc cfg th);
    Alcotest.test_case "an idle connection does not wedge shutdown" `Slow
      (fun () ->
        require_sockets ();
        let cfg =
          { (mk_config (tmpdir ())) with Serve.Server.io_timeout_s = 0.3 }
        in
        let sock = cfg.Serve.Server.socket_path in
        let th = start_inproc cfg in
        (* connect and never send a request: the read timeout must
           reclaim the handler so the drain below can finish *)
        let idle =
          get_ok ~what:"idle connect" (Serve.Client.connect ~socket_path:sock)
        in
        let stopped = ref false in
        let _watchdog =
          Thread.create
            (fun () ->
              stop_inproc cfg th;
              stopped := true)
            ()
        in
        wait_for ~timeout_s:10. ~what:"shutdown despite an idle connection"
          (fun () -> !stopped);
        Serve.Client.close idle);
    Alcotest.test_case "two tenants share the pool fairly" `Slow (fun () ->
        require_sockets ();
        let cfg = mk_config (tmpdir ()) in
        let sock = cfg.Serve.Server.socket_path in
        let th = start_inproc cfg in
        (* One worker.  While a long job of tenant a runs, queue a:22,
           a:23, then b:24 — in that submission order.  Pure FIFO would
           start a:22, a:23, b:24; fair share consults each tenant once
           per round, so b:24 must start before a's second queued job. *)
        let req tenant seed proposals =
          { (opt_request ~proposals ~seed ()) with Serve.Protocol.tenant }
        in
        let order = Mutex.create () in
        let started : string list ref = ref [] in
        let submit tenant seed proposals =
          Thread.create
            (fun () ->
              ignore
                (Serve.Client.submit ~socket_path:sock
                   ~on_event:(fun ev ->
                     if ev.Obs.Sink.name = "job_start" then begin
                       Mutex.lock order;
                       started := Printf.sprintf "%s:%d" tenant seed :: !started;
                       Mutex.unlock order
                     end)
                   (req tenant seed proposals)))
            ()
        in
        let busy = submit "a" 21 150_000 in
        Unix.sleepf 0.3 (* let the busy job occupy the worker *);
        let t1 = submit "a" 22 400 in
        Unix.sleepf 0.05;
        let t2 = submit "a" 23 400 in
        Unix.sleepf 0.05;
        let t3 = submit "b" 24 400 in
        List.iter Thread.join [ busy; t1; t2; t3 ];
        Alcotest.(check (list string))
          "round-robin across tenants"
          [ "a:21"; "a:22"; "b:24"; "a:23" ]
          (List.rev !started);
        stop_inproc cfg th);
  ]

let () =
  Alcotest.run "serve"
    [
      ("protocol", protocol_tests);
      ("durability", durability_tests);
      ("daemon", smoke_tests);
    ]
