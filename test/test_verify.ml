(* Tests for the verify library: symbolic UF equivalence (Figure 6),
   interval abstract interpretation, and the two-tier dispatch. *)

let dot_spec = Kernels.Aek_kernels.dot_spec
let delta_spec = Kernels.Aek_kernels.delta_spec

let term_tests =
  [
    Alcotest.test_case "commutative normalization" `Quick (fun () ->
        let a = Verify.Symbolic.Sym "a" and b = Verify.Symbolic.Sym "b" in
        Alcotest.(check bool)
          "addss commutes" true
          (Verify.Symbolic.equal_term
             (Verify.Symbolic.App ("addss", [ a; b ]))
             (Verify.Symbolic.App ("addss", [ b; a ]))));
    Alcotest.test_case "subss does not commute" `Quick (fun () ->
        let a = Verify.Symbolic.Sym "a" and b = Verify.Symbolic.Sym "b" in
        Alcotest.(check bool)
          "ordered" false
          (Verify.Symbolic.equal_term
             (Verify.Symbolic.App ("subss", [ a; b ]))
             (Verify.Symbolic.App ("subss", [ b; a ]))));
    Alcotest.test_case "pack64 of lo32/hi32 collapses" `Quick (fun () ->
        let t = Verify.Symbolic.Sym "x" in
        let packed =
          Verify.Symbolic.App
            ("pack64",
             [ Verify.Symbolic.App ("lo32", [ t ]); Verify.Symbolic.App ("hi32", [ t ]) ])
        in
        Alcotest.(check bool) "collapsed" true (Verify.Symbolic.equal_term packed t));
    Alcotest.test_case "xor of equal terms is zero" `Quick (fun () ->
        let t = Verify.Symbolic.Sym "x" in
        Alcotest.(check bool)
          "zero" true
          (Verify.Symbolic.equal_term
             (Verify.Symbolic.App ("xor32", [ t; t ]))
             (Verify.Symbolic.Cst 0L)));
    Alcotest.test_case "constant folding of logicals" `Quick (fun () ->
        Alcotest.(check bool)
          "and" true
          (Verify.Symbolic.equal_term
             (Verify.Symbolic.App ("and32", [ Verify.Symbolic.Cst 0xff0L; Verify.Symbolic.Cst 0x0ffL ]))
             (Verify.Symbolic.Cst 0x0f0L)));
  ]

let symbolic_tests =
  [
    Alcotest.test_case "dot rewrite is bit-wise equivalent (Fig 6)" `Quick (fun () ->
        match Verify.Symbolic.equivalent dot_spec ~rewrite:Kernels.Aek_kernels.dot_rewrite with
        | Ok b -> Alcotest.(check bool) "equivalent" true b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "target is equivalent to itself" `Quick (fun () ->
        List.iter
          (fun (name, (spec : Sandbox.Spec.t)) ->
            match Verify.Symbolic.equivalent spec ~rewrite:spec.Sandbox.Spec.program with
            | Ok b -> Alcotest.(check bool) name true b
            | Error e -> Alcotest.failf "%s: %s" name e)
          [ ("dot", dot_spec);
            ("scale", Kernels.Aek_kernels.scale_spec);
            ("add", Kernels.Aek_kernels.add_spec);
            ("delta", delta_spec) ]);
    Alcotest.test_case "scale rewrite is bit-wise equivalent" `Quick (fun () ->
        match
          Verify.Symbolic.equivalent Kernels.Aek_kernels.scale_spec
            ~rewrite:Kernels.Aek_kernels.scale_rewrite
        with
        | Ok b -> Alcotest.(check bool) "equivalent" true b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "wrong rewrite is refuted" `Quick (fun () ->
        let wrong =
          Parser.parse_program_exn "mulss (rdi), xmm0\nmulss 8(rdi), xmm1\naddss xmm1, xmm0"
        in
        match Verify.Symbolic.equivalent dot_spec ~rewrite:wrong with
        | Ok b -> Alcotest.(check bool) "different" false b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "delta rewrite is NOT bit-wise equivalent" `Quick (fun () ->
        match
          Verify.Symbolic.equivalent delta_spec ~rewrite:Kernels.Aek_kernels.delta_rewrite
        with
        | Ok b -> Alcotest.(check bool) "reassociated" false b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "bit-manipulating kernels abort analysis" `Quick (fun () ->
        (* libimf log extracts exponent bits — beyond the fragment *)
        match
          Verify.Symbolic.exec Kernels.Libimf.log_spec
            Kernels.Libimf.log_spec.Sandbox.Spec.program
        with
        | Ok _ -> Alcotest.fail "expected unsupported"
        | Error _ -> ());
    Alcotest.test_case "add rewrite differs only in dead lanes" `Quick (fun () ->
        (* the lddqu/addps rewrite puts garbage in lanes 2–3 but our
           outputs only read lanes 0–1 of xmm0 and lane 0 of xmm1 *)
        match
          Verify.Symbolic.equivalent Kernels.Aek_kernels.add_spec
            ~rewrite:Kernels.Aek_kernels.add_rewrite
        with
        | Ok b -> Alcotest.(check bool) "equivalent on live outputs" true b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
  ]

let itv a b = { Verify.Interval.lo = a; hi = b }

let interval_tests =
  [
    Alcotest.test_case "add intervals" `Quick (fun () ->
        let r = Verify.Interval.add (itv 1. 2.) (itv 10. 20.) in
        Alcotest.(check bool) "contains" true (Verify.Interval.contains r 11.);
        Alcotest.(check bool) "contains" true (Verify.Interval.contains r 22.);
        Alcotest.(check bool) "inflated" true (r.Verify.Interval.lo < 11.));
    Alcotest.test_case "mul with sign crossing" `Quick (fun () ->
        let r = Verify.Interval.mul (itv (-2.) 3.) (itv (-1.) 4.) in
        Alcotest.(check bool) "lo" true (r.Verify.Interval.lo <= -8.);
        Alcotest.(check bool) "hi" true (r.Verify.Interval.hi >= 12.));
    Alcotest.test_case "div by interval containing zero is top" `Quick (fun () ->
        Alcotest.(check bool)
          "top" true
          (Verify.Interval.is_top (Verify.Interval.div (itv 1. 2.) (itv (-1.) 1.))));
    Alcotest.test_case "operations on top stay top" `Quick (fun () ->
        Alcotest.(check bool)
          "top" true
          (Verify.Interval.is_top (Verify.Interval.add Verify.Interval.top (itv 0. 1.))));
    Alcotest.test_case "delta rewrite gets a finite static bound" `Quick (fun () ->
        match
          Verify.Interval.static_ulp_bound delta_spec
            ~rewrite:Kernels.Aek_kernels.delta_rewrite
        with
        | Ok a ->
          Alcotest.(check bool)
            (Printf.sprintf "bound %.1f finite and positive" a.Verify.Interval.bound_ulps)
            true
            (Float.is_finite a.Verify.Interval.bound_ulps
            && a.Verify.Interval.bound_ulps >= 0.)
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "static bound is much weaker than validation (§6.3)" `Quick
      (fun () ->
        match
          Verify.Interval.static_ulp_bound delta_spec
            ~rewrite:Kernels.Aek_kernels.delta_rewrite
        with
        | Error e -> Alcotest.failf "not analyzable: %s" e
        | Ok a ->
          let e = Validate.Errfn.create delta_spec ~rewrite:Kernels.Aek_kernels.delta_rewrite in
          let config =
            { Validate.Driver.default_config with
              Validate.Driver.max_proposals = 30_000; min_samples = 5_000;
              check_every = 5_000 }
          in
          let v = Validate.Driver.run ~config ~eta:0L e in
          Alcotest.(check bool)
            (Printf.sprintf "static %.1f >> observed %s" a.Verify.Interval.bound_ulps
               (Ulp.to_string v.Validate.Driver.max_err))
            true
            (a.Verify.Interval.bound_ulps
             > 10. *. Ulp.to_float v.Validate.Driver.max_err));
    Alcotest.test_case "bit-level terms defeat interval analysis" `Quick (fun () ->
        match
          Verify.Interval.static_ulp_bound Kernels.Libimf.log_spec
            ~rewrite:Kernels.Libimf.log_spec.Sandbox.Spec.program
        with
        | Ok _ -> Alcotest.fail "expected failure"
        | Error _ -> ());
  ]

(* soundness property: for random concrete points inside the operand
   intervals, the concrete result lies inside the abstract result *)
let prop_interval_sound =
  let pair_range = QCheck.float_range (-1e3) 1e3 in
  let gen = QCheck.(triple (pair pair_range pair_range) (pair pair_range pair_range) (pair (float_range 0. 1.) (float_range 0. 1.))) in
  QCheck.Test.make ~name:"interval arithmetic is sound on samples" ~count:500 gen
    (fun ((a1, a2), (b1, b2), (ta, tb)) ->
      let ia = { Verify.Interval.lo = Float.min a1 a2; hi = Float.max a1 a2 } in
      let ib = { Verify.Interval.lo = Float.min b1 b2; hi = Float.max b1 b2 } in
      let xa = ia.Verify.Interval.lo +. (ta *. Verify.Interval.width ia) in
      let xb = ib.Verify.Interval.lo +. (tb *. Verify.Interval.width ib) in
      Verify.Interval.contains (Verify.Interval.add ia ib) (xa +. xb)
      && Verify.Interval.contains (Verify.Interval.sub ia ib) (xa -. xb)
      && Verify.Interval.contains (Verify.Interval.mul ia ib) (xa *. xb)
      && (Verify.Interval.is_top (Verify.Interval.div ia ib)
          || Verify.Interval.contains (Verify.Interval.div ia ib) (xa /. xb)))

(* agreement property: when the symbolic executor supports a program and
   claims bit-wise equivalence, the interpreter agrees on random inputs *)
let prop_symbolic_agrees_with_interpreter =
  QCheck.Test.make ~name:"proved-equivalent programs agree concretely" ~count:200
    QCheck.int64 (fun seed ->
      let g = Rng.Xoshiro256.create seed in
      let spec = Kernels.Aek_kernels.dot_spec in
      let xs = Sandbox.Spec.random_floats g spec in
      let e = Validate.Errfn.create spec ~rewrite:Kernels.Aek_kernels.dot_rewrite in
      Int64.equal (Validate.Errfn.eval_ulp e xs) 0L)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_interval_sound; prop_symbolic_agrees_with_interpreter ]

let verifier_tests =
  [
    Alcotest.test_case "dispatch proves dot bitwise" `Quick (fun () ->
        match
          Verify.Verifier.check dot_spec ~rewrite:Kernels.Aek_kernels.dot_rewrite ~eta:0L
        with
        | Verify.Verifier.Proved_bitwise -> ()
        | o -> Alcotest.failf "unexpected: %s" (Verify.Verifier.outcome_to_string o));
    Alcotest.test_case "dispatch bounds delta statically" `Quick (fun () ->
        match
          Verify.Verifier.check delta_spec ~rewrite:Kernels.Aek_kernels.delta_rewrite
            ~eta:0L
        with
        | Verify.Verifier.Static_bound _ -> ()
        | o -> Alcotest.failf "unexpected: %s" (Verify.Verifier.outcome_to_string o));
    Alcotest.test_case "dispatch gives up on libimf kernels" `Quick (fun () ->
        match
          Verify.Verifier.check Kernels.Libimf.log_spec
            ~rewrite:Kernels.Libimf.log_spec.Sandbox.Spec.program ~eta:0L
        with
        | Verify.Verifier.Not_verifiable _ -> ()
        | o -> Alcotest.failf "unexpected: %s" (Verify.Verifier.outcome_to_string o));
    Alcotest.test_case "verified_within semantics" `Quick (fun () ->
        Alcotest.(check bool)
          "bitwise within any eta" true
          (Verify.Verifier.verified_within Verify.Verifier.Proved_bitwise 0L);
        Alcotest.(check bool)
          "refuted never" false
          (Verify.Verifier.verified_within Verify.Verifier.Refuted_bitwise Ulp.max_value));
  ]

let () =
  Alcotest.run "verify"
    [
      ("terms", term_tests);
      ("symbolic", symbolic_tests);
      ("interval", interval_tests);
      ("verifier", verifier_tests);
      ("properties", props);
    ]
