(* Tests for the verify library: symbolic UF equivalence (Figure 6),
   interval abstract interpretation, and the two-tier dispatch. *)

let dot_spec = Kernels.Aek_kernels.dot_spec
let delta_spec = Kernels.Aek_kernels.delta_spec

let term_tests =
  [
    Alcotest.test_case "commutative normalization" `Quick (fun () ->
        let a = Verify.Symbolic.Sym "a" and b = Verify.Symbolic.Sym "b" in
        Alcotest.(check bool)
          "addss commutes" true
          (Verify.Symbolic.equal_term
             (Verify.Symbolic.App ("addss", [ a; b ]))
             (Verify.Symbolic.App ("addss", [ b; a ]))));
    Alcotest.test_case "subss does not commute" `Quick (fun () ->
        let a = Verify.Symbolic.Sym "a" and b = Verify.Symbolic.Sym "b" in
        Alcotest.(check bool)
          "ordered" false
          (Verify.Symbolic.equal_term
             (Verify.Symbolic.App ("subss", [ a; b ]))
             (Verify.Symbolic.App ("subss", [ b; a ]))));
    Alcotest.test_case "pack64 of lo32/hi32 collapses" `Quick (fun () ->
        let t = Verify.Symbolic.Sym "x" in
        let packed =
          Verify.Symbolic.App
            ("pack64",
             [ Verify.Symbolic.App ("lo32", [ t ]); Verify.Symbolic.App ("hi32", [ t ]) ])
        in
        Alcotest.(check bool) "collapsed" true (Verify.Symbolic.equal_term packed t));
    Alcotest.test_case "xor of equal terms is zero" `Quick (fun () ->
        let t = Verify.Symbolic.Sym "x" in
        Alcotest.(check bool)
          "zero" true
          (Verify.Symbolic.equal_term
             (Verify.Symbolic.App ("xor32", [ t; t ]))
             (Verify.Symbolic.Cst 0L)));
    Alcotest.test_case "constant folding of logicals" `Quick (fun () ->
        Alcotest.(check bool)
          "and" true
          (Verify.Symbolic.equal_term
             (Verify.Symbolic.App ("and32", [ Verify.Symbolic.Cst 0xff0L; Verify.Symbolic.Cst 0x0ffL ]))
             (Verify.Symbolic.Cst 0x0f0L)));
  ]

let symbolic_tests =
  [
    Alcotest.test_case "dot rewrite is bit-wise equivalent (Fig 6)" `Quick (fun () ->
        match Verify.Symbolic.equivalent dot_spec ~rewrite:Kernels.Aek_kernels.dot_rewrite with
        | Ok b -> Alcotest.(check bool) "equivalent" true b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "target is equivalent to itself" `Quick (fun () ->
        List.iter
          (fun (name, (spec : Sandbox.Spec.t)) ->
            match Verify.Symbolic.equivalent spec ~rewrite:spec.Sandbox.Spec.program with
            | Ok b -> Alcotest.(check bool) name true b
            | Error e -> Alcotest.failf "%s: %s" name e)
          [ ("dot", dot_spec);
            ("scale", Kernels.Aek_kernels.scale_spec);
            ("add", Kernels.Aek_kernels.add_spec);
            ("delta", delta_spec) ]);
    Alcotest.test_case "scale rewrite is bit-wise equivalent" `Quick (fun () ->
        match
          Verify.Symbolic.equivalent Kernels.Aek_kernels.scale_spec
            ~rewrite:Kernels.Aek_kernels.scale_rewrite
        with
        | Ok b -> Alcotest.(check bool) "equivalent" true b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "wrong rewrite is refuted" `Quick (fun () ->
        let wrong =
          Parser.parse_program_exn "mulss (rdi), xmm0\nmulss 8(rdi), xmm1\naddss xmm1, xmm0"
        in
        match Verify.Symbolic.equivalent dot_spec ~rewrite:wrong with
        | Ok b -> Alcotest.(check bool) "different" false b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "delta rewrite is NOT bit-wise equivalent" `Quick (fun () ->
        match
          Verify.Symbolic.equivalent delta_spec ~rewrite:Kernels.Aek_kernels.delta_rewrite
        with
        | Ok b -> Alcotest.(check bool) "reassociated" false b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "bit-manipulating kernels execute symbolically" `Quick
      (fun () ->
        (* libimf log extracts exponent bits with shifts, logicals, and
           int<->float converts — all interpreted now, so self-pairs
           prove bit-wise equivalent *)
        List.iter
          (fun (name, (spec : Sandbox.Spec.t)) ->
            match
              Verify.Symbolic.equivalent spec
                ~rewrite:spec.Sandbox.Spec.program
            with
            | Ok b -> Alcotest.(check bool) name true b
            | Error e -> Alcotest.failf "%s: %s" name e)
          [ ("log", Kernels.Libimf.log_spec);
            ("exp", Kernels.Libimf.exp_spec);
            ("s3d_exp", Kernels.S3d.exp_spec) ]);
    Alcotest.test_case "flag-dependent instructions abort analysis" `Quick
      (fun () ->
        let p =
          Parser.parse_program_exn "ucomisd xmm1, xmm0\naddsd xmm1, xmm0"
        in
        match Verify.Symbolic.exec Kernels.Libimf.sin_spec p with
        | Ok _ -> Alcotest.fail "expected unsupported"
        | Error _ -> ());
    Alcotest.test_case "add rewrite differs only in dead lanes" `Quick (fun () ->
        (* the lddqu/addps rewrite puts garbage in lanes 2–3 but our
           outputs only read lanes 0–1 of xmm0 and lane 0 of xmm1 *)
        match
          Verify.Symbolic.equivalent Kernels.Aek_kernels.add_spec
            ~rewrite:Kernels.Aek_kernels.add_rewrite
        with
        | Ok b -> Alcotest.(check bool) "equivalent on live outputs" true b
        | Error e -> Alcotest.failf "not analyzable: %s" e);
  ]

let itv a b = { Verify.Interval.lo = a; hi = b }

let interval_tests =
  [
    Alcotest.test_case "add intervals" `Quick (fun () ->
        let r = Verify.Interval.add (itv 1. 2.) (itv 10. 20.) in
        Alcotest.(check bool) "contains" true (Verify.Interval.contains r 11.);
        Alcotest.(check bool) "contains" true (Verify.Interval.contains r 22.);
        Alcotest.(check bool) "inflated" true (r.Verify.Interval.lo < 11.));
    Alcotest.test_case "mul with sign crossing" `Quick (fun () ->
        let r = Verify.Interval.mul (itv (-2.) 3.) (itv (-1.) 4.) in
        Alcotest.(check bool) "lo" true (r.Verify.Interval.lo <= -8.);
        Alcotest.(check bool) "hi" true (r.Verify.Interval.hi >= 12.));
    Alcotest.test_case "div by interval containing zero is top" `Quick (fun () ->
        Alcotest.(check bool)
          "top" true
          (Verify.Interval.is_top (Verify.Interval.div (itv 1. 2.) (itv (-1.) 1.))));
    Alcotest.test_case "operations on top stay top" `Quick (fun () ->
        Alcotest.(check bool)
          "top" true
          (Verify.Interval.is_top (Verify.Interval.add Verify.Interval.top (itv 0. 1.))));
    Alcotest.test_case "delta rewrite gets a finite static bound" `Quick (fun () ->
        match
          Verify.Interval.static_ulp_bound delta_spec
            ~rewrite:Kernels.Aek_kernels.delta_rewrite
        with
        | Ok a ->
          Alcotest.(check bool)
            (Printf.sprintf "bound %.1f finite and positive" a.Verify.Interval.bound_ulps)
            true
            (Float.is_finite a.Verify.Interval.bound_ulps
            && a.Verify.Interval.bound_ulps >= 0.)
        | Error e -> Alcotest.failf "not analyzable: %s" e);
    Alcotest.test_case "static bound is much weaker than validation (§6.3)" `Quick
      (fun () ->
        match
          Verify.Interval.static_ulp_bound delta_spec
            ~rewrite:Kernels.Aek_kernels.delta_rewrite
        with
        | Error e -> Alcotest.failf "not analyzable: %s" e
        | Ok a ->
          let e = Validate.Errfn.create delta_spec ~rewrite:Kernels.Aek_kernels.delta_rewrite in
          let config =
            { Validate.Driver.default_config with
              Validate.Driver.max_proposals = 30_000; min_samples = 5_000;
              check_every = 5_000 }
          in
          let v = Validate.Driver.run ~config ~eta:0L e in
          Alcotest.(check bool)
            (Printf.sprintf "static %.1f >> observed %s" a.Verify.Interval.bound_ulps
               (Ulp.to_string v.Validate.Driver.max_err))
            true
            (a.Verify.Interval.bound_ulps
             > 10. *. Ulp.to_float v.Validate.Driver.max_err));
    Alcotest.test_case "bit-level terms defeat interval analysis" `Quick (fun () ->
        match
          Verify.Interval.static_ulp_bound Kernels.Libimf.log_spec
            ~rewrite:Kernels.Libimf.log_spec.Sandbox.Spec.program
        with
        | Ok _ -> Alcotest.fail "expected failure"
        | Error _ -> ());
    Alcotest.test_case "f32 ops widen on the binary32 grid (regression)" `Quick
      (fun () ->
        (* 1.0 +. 2^-24 rounds to 1.0 in binary32 (tie to even), a full
           f32-ulp below the exact sum.  The old double-ulp widening
           produced an interval a binary64 ulp wide around the exact sum,
           which does NOT contain the value the hardware computes. *)
        let p x = Verify.Interval.make x x in
        let tie = Float.pow 2. (-24.) in
        let hw =
          Int32.float_of_bits (Int32.bits_of_float (1.0 +. tie))
        in
        Alcotest.(check (float 0.)) "hardware rounds the tie to 1.0" 1.0 hw;
        let r = Verify.Interval.add32 (p 1.0) (p tie) in
        Alcotest.(check bool)
          (Printf.sprintf "[%h, %h] contains %h" r.Verify.Interval.lo
             r.Verify.Interval.hi hw)
          true
          (Verify.Interval.contains r hw);
        (* sanity: double-ulp widening around the exact sum indeed misses
           the hardware result, i.e. this test pins a real bug *)
        let exact = 1.0 +. tie in
        Alcotest.(check bool)
          "binary64 widening would be unsound" true
          (Fp64.pred exact > hw);
        (* and the binary64 variant still widens on the binary64 grid *)
        let r64 = Verify.Interval.add (p 1.0) (p tie) in
        Alcotest.(check bool)
          "f64 interval stays tight" true
          (not (Verify.Interval.contains r64 hw)));
  ]

(* ----- Taylor-form round-off bounds ----- *)

(* Deterministic branch-and-bound: budget by boxes, never by wall clock. *)
let det_config =
  { Verify.Bbound.default_config with Verify.Bbound.timeout_s = 0. }

(* Largest absolute output difference between target and rewrite on one
   input vector, by running both programs in the sandbox. *)
let observed_abs_error (spec : Sandbox.Spec.t) rewrite xs =
  let tc = Sandbox.Spec.testcase_of_floats spec xs in
  let run p =
    let m, r =
      Sandbox.Exec.run_testcase ~mem_size:spec.Sandbox.Spec.mem_size p tc
    in
    (match r.Sandbox.Exec.outcome with
     | Sandbox.Exec.Finished -> ()
     | Sandbox.Exec.Faulted _ -> Alcotest.fail "program faulted");
    Sandbox.Spec.read_outputs spec m
  in
  let vt = run spec.Sandbox.Spec.program and vr = run rewrite in
  let worst = ref 0. in
  Array.iter2
    (fun a b ->
      match a, b with
      | Sandbox.Spec.Vf64 x, Sandbox.Spec.Vf64 y
      | Sandbox.Spec.Vf32 x, Sandbox.Spec.Vf32 y ->
        worst := Float.max !worst (Float.abs (x -. y))
      | _ -> Alcotest.fail "output type mismatch")
    vt vr;
  !worst

(* The sound bound back in absolute terms, using the same unit the
   analysis divided by. *)
let sound_abs_of (spec : Sandbox.Spec.t) (a : Verify.Taylor.analysis) =
  let single =
    List.exists
      (fun o ->
        match o with
        | Sandbox.Spec.Out_xmm_f32 _ | Sandbox.Spec.Out_xmm_f32_hi _ -> true
        | _ -> false)
      spec.Sandbox.Spec.outputs
  in
  a.Verify.Taylor.sound_ulps
  *. Verify.Interval.ulp_size_at
       (Verify.Interval.mag a.Verify.Taylor.target_range)
       ~single

let check_sound_on_samples ?(n = 200) name spec rewrite =
  match Verify.Taylor.bound ~config:det_config spec ~rewrite with
  | Error e -> Alcotest.failf "%s: not analyzable: %s" name e
  | Ok a ->
    let sound_abs = sound_abs_of spec a in
    let g = Rng.Xoshiro256.create 42L in
    for _ = 1 to n do
      let xs = Sandbox.Spec.random_floats g spec in
      let obs = observed_abs_error spec rewrite xs in
      if obs > sound_abs then
        Alcotest.failf "%s: observed |diff| %h exceeds sound bound %h" name
          obs sound_abs
    done

let taylor_tests =
  [
    Alcotest.test_case "identical programs prove real-equal with bound 0" `Quick
      (fun () ->
        match
          Verify.Taylor.bound ~config:det_config delta_spec
            ~rewrite:delta_spec.Sandbox.Spec.program
        with
        | Error e -> Alcotest.failf "not analyzable: %s" e
        | Ok a ->
          Alcotest.(check (float 0.)) "zero" 0. a.Verify.Taylor.sound_ulps;
          Alcotest.(check bool) "real-equal" true
            a.Verify.Taylor.proved_real_equal);
    Alcotest.test_case "sin reassociation: tight bound, >= 10x over interval"
      `Quick (fun () ->
        let spec = Kernels.Libimf.sin_spec in
        let rewrite = Kernels.Libimf.sin_assoc_rewrite in
        match
          ( Verify.Taylor.bound ~config:det_config spec ~rewrite,
            Verify.Interval.static_ulp_bound spec ~rewrite )
        with
        | Error e, _ -> Alcotest.failf "taylor: %s" e
        | _, Error e -> Alcotest.failf "interval: %s" e
        | Ok t, Ok i ->
          Alcotest.(check bool)
            "reassociation cancels in the polynomial normal form" true
            t.Verify.Taylor.proved_real_equal;
          Alcotest.(check bool)
            (Printf.sprintf "taylor %.3g ULPs is a handful"
               t.Verify.Taylor.sound_ulps)
            true
            (t.Verify.Taylor.sound_ulps < 10.);
          Alcotest.(check bool)
            (Printf.sprintf "taylor %.3g at least 10x tighter than interval %.3g"
               t.Verify.Taylor.sound_ulps i.Verify.Interval.bound_ulps)
            true
            (t.Verify.Taylor.sound_ulps *. 10. <= i.Verify.Interval.bound_ulps));
    Alcotest.test_case "delta rewrite: finite bound, tighter than interval"
      `Quick (fun () ->
        match
          ( Verify.Taylor.bound ~config:det_config delta_spec
              ~rewrite:Kernels.Aek_kernels.delta_rewrite,
            Verify.Interval.static_ulp_bound delta_spec
              ~rewrite:Kernels.Aek_kernels.delta_rewrite )
        with
        | Error e, _ -> Alcotest.failf "taylor: %s" e
        | _, Error e -> Alcotest.failf "interval: %s" e
        | Ok t, Ok i ->
          Alcotest.(check bool)
            (Printf.sprintf "finite (%.3g)" t.Verify.Taylor.sound_ulps)
            true
            (Float.is_finite t.Verify.Taylor.sound_ulps);
          Alcotest.(check bool)
            (Printf.sprintf "taylor %.3g at least 10x tighter than interval %.3g"
               t.Verify.Taylor.sound_ulps i.Verify.Interval.bound_ulps)
            true
            (t.Verify.Taylor.sound_ulps *. 10. <= i.Verify.Interval.bound_ulps));
    Alcotest.test_case "observed error never exceeds the sound bound" `Quick
      (fun () ->
        check_sound_on_samples "sin_assoc" Kernels.Libimf.sin_spec
          Kernels.Libimf.sin_assoc_rewrite;
        check_sound_on_samples "delta" delta_spec
          Kernels.Aek_kernels.delta_rewrite);
    Alcotest.test_case "deeper branch-and-bound never loosens the bound"
      `Quick (fun () ->
        let bound_at depth =
          match
            Verify.Taylor.bound
              ~config:{ det_config with Verify.Bbound.max_depth = depth }
              Kernels.Libimf.sin_spec ~rewrite:Kernels.Libimf.sin_assoc_rewrite
          with
          | Ok a -> a.Verify.Taylor.sound_ulps
          | Error e -> Alcotest.failf "depth %d: %s" depth e
        in
        let bounds = List.map bound_at [ 0; 2; 4; 8; 12 ] in
        let rec check_monotone = function
          | a :: (b :: _ as rest) ->
            Alcotest.(check bool)
              (Printf.sprintf "%.6g >= %.6g" a b)
              true (a >= b);
            check_monotone rest
          | _ -> ()
        in
        check_monotone bounds;
        (* and subdivision actually buys something on this kernel *)
        Alcotest.(check bool) "depth tightened the root bound" true
          (List.nth bounds 4 < List.hd bounds));
    Alcotest.test_case "bit-level float flow defeats the Taylor tier" `Quick
      (fun () ->
        match
          Verify.Taylor.bound Kernels.Libimf.log_spec
            ~rewrite:Kernels.Libimf.log_spec.Sandbox.Spec.program
        with
        | Ok _ -> Alcotest.fail "expected failure"
        | Error _ -> ());
  ]

(* Random Horner-polynomial pairs: the target evaluates a random
   polynomial, the rewrite drops its lowest-order term, and the sound
   bounds of BOTH numeric analyses must cover the error actually observed
   on random inputs — the end-to-end soundness harness. *)
let prop_taylor_sound_random_programs =
  let open QCheck in
  let coeff = float_range (-2.) 2. in
  let gen = pair (list_of_size (Gen.int_range 2 5) coeff) (float_range 0.25 4.) in
  Test.make ~name:"taylor and interval bounds cover sampled error" ~count:30
    gen (fun (coeffs, half_range) ->
      QCheck.assume (List.length coeffs >= 2);
      QCheck.assume (List.for_all (fun c -> Float.abs c > 1e-6) coeffs);
      let x = Reg.Xmm0 and acc = Reg.Xmm1 and tmp = Reg.Xmm2 in
      let via = Reg.Rax in
      let horner cs =
        Kernels.Builder.program
          [
            Kernels.Builder.horner_f64 ~x ~acc ~tmp ~via cs;
            [ Kernels.Builder.binop Opcode.Movsd (Kernels.Builder.xmm acc)
                (Kernels.Builder.xmm x) ];
          ]
      in
      let target = horner coeffs in
      let rewrite = horner (List.filteri (fun i _ -> i > 0) coeffs) in
      let spec =
        Sandbox.Spec.make ~name:"randpoly" ~program:target
          ~float_inputs:
            [ Sandbox.Spec.Fin_xmm_f64
                (x, { Sandbox.Spec.lo = -.half_range; hi = half_range }) ]
          ~outputs:[ Sandbox.Spec.Out_xmm_f64 x ]
          ()
      in
      let sound_abs =
        match Verify.Taylor.bound ~config:det_config spec ~rewrite with
        | Ok a -> sound_abs_of spec a
        | Error e -> Test.fail_reportf "taylor: %s" e
      in
      let interval_abs =
        match Verify.Interval.static_ulp_bound spec ~rewrite with
        | Ok a ->
          a.Verify.Interval.bound_ulps
          *. Verify.Interval.ulp_size_at
               (Verify.Interval.mag a.Verify.Interval.target_range)
               ~single:false
        | Error e -> Test.fail_reportf "interval: %s" e
      in
      let g = Rng.Xoshiro256.create 7L in
      let ok = ref true in
      for _ = 1 to 50 do
        let xs = Sandbox.Spec.random_floats g spec in
        let obs = observed_abs_error spec rewrite xs in
        if obs > sound_abs || obs > interval_abs then ok := false
      done;
      !ok)

(* soundness property: for random concrete points inside the operand
   intervals, the concrete result lies inside the abstract result *)
let prop_interval_sound =
  let pair_range = QCheck.float_range (-1e3) 1e3 in
  let gen = QCheck.(triple (pair pair_range pair_range) (pair pair_range pair_range) (pair (float_range 0. 1.) (float_range 0. 1.))) in
  QCheck.Test.make ~name:"interval arithmetic is sound on samples" ~count:500 gen
    (fun ((a1, a2), (b1, b2), (ta, tb)) ->
      let ia = { Verify.Interval.lo = Float.min a1 a2; hi = Float.max a1 a2 } in
      let ib = { Verify.Interval.lo = Float.min b1 b2; hi = Float.max b1 b2 } in
      let xa = ia.Verify.Interval.lo +. (ta *. Verify.Interval.width ia) in
      let xb = ib.Verify.Interval.lo +. (tb *. Verify.Interval.width ib) in
      Verify.Interval.contains (Verify.Interval.add ia ib) (xa +. xb)
      && Verify.Interval.contains (Verify.Interval.sub ia ib) (xa -. xb)
      && Verify.Interval.contains (Verify.Interval.mul ia ib) (xa *. xb)
      && (Verify.Interval.is_top (Verify.Interval.div ia ib)
          || Verify.Interval.contains (Verify.Interval.div ia ib) (xa /. xb)))

(* agreement property: when the symbolic executor supports a program and
   claims bit-wise equivalence, the interpreter agrees on random inputs *)
let prop_symbolic_agrees_with_interpreter =
  QCheck.Test.make ~name:"proved-equivalent programs agree concretely" ~count:200
    QCheck.int64 (fun seed ->
      let g = Rng.Xoshiro256.create seed in
      let spec = Kernels.Aek_kernels.dot_spec in
      let xs = Sandbox.Spec.random_floats g spec in
      let e = Validate.Errfn.create spec ~rewrite:Kernels.Aek_kernels.dot_rewrite in
      Int64.equal (Validate.Errfn.eval_ulp e xs) 0L)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_interval_sound;
      prop_symbolic_agrees_with_interpreter;
      prop_taylor_sound_random_programs;
    ]

(* ----- FPCore export ----- *)

let fpcore_tests =
  [
    Alcotest.test_case "sin pair exports a well-formed difference" `Quick
      (fun () ->
        match
          Verify.Fpcore.difference Kernels.Libimf.sin_spec
            ~rewrite:Kernels.Libimf.sin_assoc_rewrite
        with
        | Error e -> Alcotest.failf "export failed: %s" e
        | Ok s ->
          let contains needle =
            let nl = String.length needle and sl = String.length s in
            let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "FPCore header" true (contains "(FPCore");
          Alcotest.(check bool) "precision annotation" true
            (contains ":precision binary64");
          Alcotest.(check bool) "input range precondition" true (contains ":pre"));
    Alcotest.test_case "identical terms export the zero difference" `Quick
      (fun () ->
        match
          Verify.Fpcore.difference dot_spec
            ~rewrite:Kernels.Aek_kernels.dot_rewrite
        with
        | Error e -> Alcotest.failf "export failed: %s" e
        | Ok s ->
          let contains needle =
            let nl = String.length needle and sl = String.length s in
            let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "body is the literal zero" true (contains " 0)"));
    Alcotest.test_case "bit-level kernels are not exportable" `Quick (fun () ->
        match
          Verify.Fpcore.difference Kernels.Libimf.log_spec
            ~rewrite:Kernels.Libimf.log_spec.Sandbox.Spec.program
        with
        | Ok _ -> Alcotest.fail "expected Not_exportable"
        | Error _ -> ());
  ]

let verifier_tests =
  [
    Alcotest.test_case "dispatch proves dot bitwise" `Quick (fun () ->
        match
          Verify.Verifier.check dot_spec ~rewrite:Kernels.Aek_kernels.dot_rewrite ~eta:0L
        with
        | Verify.Verifier.Proved_bitwise -> ()
        | o -> Alcotest.failf "unexpected: %s" (Verify.Verifier.outcome_to_string o));
    Alcotest.test_case "dispatch bounds delta with the Taylor tier" `Quick
      (fun () ->
        match
          Verify.Verifier.check delta_spec ~rewrite:Kernels.Aek_kernels.delta_rewrite
            ~eta:0L
        with
        | Verify.Verifier.Taylor_bound a ->
          (* min-clamped against the interval tier: never looser *)
          (match
             Verify.Interval.static_ulp_bound delta_spec
               ~rewrite:Kernels.Aek_kernels.delta_rewrite
           with
           | Error e -> Alcotest.failf "interval tier: %s" e
           | Ok i ->
             Alcotest.(check bool)
               (Printf.sprintf "taylor %.3g <= interval %.3g"
                  a.Verify.Taylor.sound_ulps i.Verify.Interval.bound_ulps)
               true
               (a.Verify.Taylor.sound_ulps <= i.Verify.Interval.bound_ulps))
        | o -> Alcotest.failf "unexpected: %s" (Verify.Verifier.outcome_to_string o));
    Alcotest.test_case "dispatch proves libimf self-pairs bitwise" `Quick (fun () ->
        match
          Verify.Verifier.check Kernels.Libimf.log_spec
            ~rewrite:Kernels.Libimf.log_spec.Sandbox.Spec.program ~eta:0L
        with
        | Verify.Verifier.Proved_bitwise -> ()
        | o -> Alcotest.failf "unexpected: %s" (Verify.Verifier.outcome_to_string o));
    Alcotest.test_case "dispatch gives up outside the fragment" `Quick (fun () ->
        let p =
          Parser.parse_program_exn "ucomisd xmm1, xmm0\naddsd xmm1, xmm0"
        in
        match Verify.Verifier.check Kernels.Libimf.sin_spec ~rewrite:p ~eta:0L with
        | Verify.Verifier.Not_verifiable _ -> ()
        | o -> Alcotest.failf "unexpected: %s" (Verify.Verifier.outcome_to_string o));
    Alcotest.test_case "verified_within semantics" `Quick (fun () ->
        Alcotest.(check bool)
          "bitwise within any eta" true
          (Verify.Verifier.verified_within Verify.Verifier.Proved_bitwise 0L);
        Alcotest.(check bool)
          "refuted never" false
          (Verify.Verifier.verified_within Verify.Verifier.Refuted_bitwise Ulp.max_value));
  ]

let () =
  Alcotest.run "verify"
    [
      ("terms", term_tests);
      ("symbolic", symbolic_tests);
      ("interval", interval_tests);
      ("taylor", taylor_tests);
      ("verifier", verifier_tests);
      ("fpcore", fpcore_tests);
      ("properties", props);
    ]
